// Bank-transfer scenario: the classic check-then-act datarace, its
// lock-protected fix, and how seed sweeps interact with lockset-based
// detection.
//
// The racy version reads and writes account balances with no lock; the
// fixed version acquires a global ledger lock around every transfer.
// Because the detector is lockset-based (not happens-before), it flags
// the racy version on *every* schedule — no lucky interleaving hides
// the bug — which is the paper's precision argument in §2.2.
//
// Run with:
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"racedet"
)

const racyBank = `
class Account {
    int id;
    int balance;

    Account(int id0, int start) {
        id = id0;
        balance = start;
    }
}

class Teller extends Thread {
    Account[] accounts;
    int shift;
    int transfers;

    Teller(Account[] all, int s) {
        accounts = all;
        shift = s;
        transfers = 0;
    }

    void transfer(Account from, Account to, int amount) {
        // RACY: no lock around the read-modify-write.
        if (from.balance >= amount) {
            from.balance = from.balance - amount;
            to.balance = to.balance + amount;
            transfers = transfers + 1;
        }
    }

    void run() {
        int i = 0;
        int n = accounts.length;
        while (i < 200) {
            Account from = accounts[(i + shift) % n];
            Account to = accounts[(i * 3 + shift + 1) % n];
            if (from != to) {
                transfer(from, to, 7);
            }
            i = i + 1;
        }
    }
}

class Main {
    static void main() {
        Account[] accounts = new Account[4];
        int i = 0;
        while (i < 4) {
            accounts[i] = new Account(i, 1000);
            i = i + 1;
        }
        Teller t1 = new Teller(accounts, 0);
        Teller t2 = new Teller(accounts, 2);
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        int total = 0;
        int k = 0;
        while (k < 4) {
            total = total + accounts[k].balance;
            k = k + 1;
        }
        print(total);
    }
}
`

const fixedBank = `
class Account {
    int id;
    int balance;

    Account(int id0, int start) {
        id = id0;
        balance = start;
    }
}

class Ledger {
    int operations;
}

class Teller extends Thread {
    Account[] accounts;
    Ledger ledger;
    int shift;
    int transfers;

    Teller(Account[] all, Ledger l, int s) {
        accounts = all;
        ledger = l;
        shift = s;
        transfers = 0;
    }

    void transfer(Account from, Account to, int amount) {
        // FIXED: the ledger lock covers the whole read-modify-write.
        synchronized (ledger) {
            if (from.balance >= amount) {
                from.balance = from.balance - amount;
                to.balance = to.balance + amount;
                ledger.operations = ledger.operations + 1;
            }
        }
        transfers = transfers + 1;
    }

    void run() {
        int i = 0;
        int n = accounts.length;
        while (i < 200) {
            Account from = accounts[(i + shift) % n];
            Account to = accounts[(i * 3 + shift + 1) % n];
            if (from != to) {
                transfer(from, to, 7);
            }
            i = i + 1;
        }
    }
}

class Main {
    static void main() {
        Account[] accounts = new Account[4];
        Ledger ledger = new Ledger();
        int i = 0;
        while (i < 4) {
            accounts[i] = new Account(i, 1000);
            i = i + 1;
        }
        Teller t1 = new Teller(accounts, ledger, 0);
        Teller t2 = new Teller(accounts, ledger, 2);
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        int total = 0;
        int k = 0;
        while (k < 4) {
            total = total + accounts[k].balance;
            k = k + 1;
        }
        print(total);
    }
}
`

func main() {
	fmt.Println("== racy bank, five scheduler seeds ==")
	compiled, err := racedet.Compile("bank.mj", racyBank, racedet.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		res, err := compiled.RunSeed(seed)
		if err != nil {
			log.Fatal(err)
		}
		fields := map[string]bool{}
		for _, r := range res.Races {
			fields[r.Field] = true
		}
		fmt.Printf("seed %d: total=%s races on %d objects, fields %v\n",
			seed, trim(res.Output), res.RacyObjects, keys(fields))
	}

	fmt.Println()
	fmt.Println("== fixed bank ==")
	res, err := racedet.Detect("bank_fixed.mj", fixedBank, racedet.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total=%s races on %d objects\n", trim(res.Output), res.RacyObjects)
	if res.RacyObjects == 0 {
		fmt.Println("the ledger lock silences every report — and the total is always conserved")
	}
}

func trim(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
