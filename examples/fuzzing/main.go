// Fuzzing: why one schedule is not enough, and what to do about it.
//
// Lockset detection is schedule-insensitive once a racy access
// executes — but an access that never executes cannot be checked. The
// second program below hides its racing write behind a publication
// window: Racer only writes s.data if it sampled the flag before
// Setter published it, and the default round-robin schedule always
// lets Setter publish first. A single run reports nothing.
//
// racedet.Fuzz runs the program under many scheduler seeds, unions the
// races, and classifies each finding:
//
//   - STABLE: reported by every schedule (the common case — here, the
//     plain counter race).
//   - SCHEDULE-DEPENDENT: reported only when the interleaving opens
//     the window. The finding carries the exposing seeds and a witness
//     schedule trace that replays the racy run deterministically.
//
// Run with:
//
//	go run ./examples/fuzzing
package main

import (
	"fmt"
	"log"

	"racedet"
)

// stable: both workers increment without a lock — every interleaving
// has the two unordered writes, so every seed reports Counter.n.
const stable = `
class Counter { int n; }
class Inc extends Thread {
    Counter c;
    Inc(Counter c0) { c = c0; }
    void run() { c.n = c.n + 1; }
}
class Main {
    static void main() {
        Counter c = new Counter();
        c.n = 0;
        Inc a = new Inc(c);
        Inc b = new Inc(c);
        a.start(); b.start(); a.join(); b.join();
        print(c.n);
    }
}`

// windowed: the racing write s.data=1 only runs when Racer reads the
// flag before Setter sets it. Most schedules never execute it.
const windowed = `
class Shared { int flag; int data; }
class Mutex { int x; }
class Setter extends Thread {
    Shared s; Mutex m;
    Setter(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        synchronized (m) { s.flag = 1; }
        s.data = 2;
    }
}
class Racer extends Thread {
    Shared s; Mutex m;
    Racer(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        int f;
        synchronized (m) { f = s.flag; }
        if (f == 0) { s.data = 1; }
    }
}
class Main {
    static void main() {
        Shared s = new Shared();
        Mutex m = new Mutex();
        s.data = 0;
        Setter a = new Setter(s, m);
        Racer b = new Racer(s, m);
        a.start(); b.start(); a.join(); b.join();
        print(s.data);
    }
}`

func main() {
	fuzz("stable counter race", stable)
	witness := fuzz("publication-window race", windowed)

	// The schedule-dependent finding is reproducible on demand: replay
	// its witness trace and the race reappears at the same position,
	// every time.
	fmt.Println("replaying the witness schedule 3 times:")
	for i := 0; i < 3; i++ {
		res, err := racedet.Detect("windowed.mj", windowed,
			racedet.Options{ReplaySchedule: witness})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range res.Races {
			fmt.Printf("  replay %d: %s\n", i+1, r)
		}
	}
}

// fuzz explores 16 seeds and prints the classified findings; it
// returns the witness schedule of the last schedule-dependent one.
func fuzz(title, src string) []byte {
	fmt.Printf("== %s ==\n", title)

	// Single run first, to show what fuzzing adds.
	one, err := racedet.Detect("prog.mj", src, racedet.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single run (fixed schedule): %d racy object(s)\n", one.RacyObjects)

	res, err := racedet.Fuzz("prog.mj", src, racedet.FuzzOptions{Count: 16})
	if err != nil {
		log.Fatal(err)
	}
	var witness []byte
	for _, f := range res.Findings {
		if f.Stable {
			fmt.Printf("fuzz 16 seeds: %s\n  STABLE — exposed by all %d schedules\n",
				f.Race, res.Completed)
			continue
		}
		fmt.Printf("fuzz 16 seeds: %s\n  SCHEDULE-DEPENDENT — exposed by %d/%d schedules (seeds %v)\n",
			f.Race, len(f.Seeds), res.Completed, f.Seeds)
		witness = f.Schedule
	}
	if len(res.Findings) == 0 {
		fmt.Println("fuzz 16 seeds: no races")
	}
	fmt.Println()
	return witness
}
