// Co-analysis tour: the paper's §10 closes by planning to "broaden the
// static/dynamic coanalysis approach to tackle other problems such as
// deadlock detection and immutability analysis", and §1/§2.6 sketch a
// post-mortem mode. This example runs all three extensions on one
// program:
//
//   - the race detector finds the unsynchronized counter;
//   - the lock-order analysis flags an AB-BA inversion that the
//     observed (join-serialized) run never turns into an actual hang;
//   - the immutability analysis certifies the config fields as
//     observed-immutable, documenting why their unlocked cross-thread
//     reads are harmless;
//   - the recorded event log is replayed off-line and its FullRace set
//     reconstructed.
//
// Run with:
//
//	go run ./examples/coanalysis
package main

import (
	"fmt"
	"log"
	"strings"

	"racedet"
)

const program = `
class Config {
    int retries;   // written once by main, read by everyone: immutable
    int timeout;   // likewise
}

class Stats {
    int processed; // RACY: updated with no lock
}

class LockA { int pad; }
class LockB { int pad; }

class Worker extends Thread {
    Config cfg;
    Stats stats;
    LockA a;
    LockB b;
    boolean inverted;

    Worker(Config c, Stats s, LockA a0, LockB b0, boolean inv) {
        cfg = c;
        stats = s;
        a = a0;
        b = b0;
        inverted = inv;
    }

    void step() {
        // Lock-order inversion hazard: the late worker locks B then A
        // while the others lock A then B. The join below serializes
        // the inverted worker, so the observed run never hangs — but
        // the lock-order graph still records the cycle.
        if (inverted) {
            synchronized (b) { synchronized (a) { touch(); } }
        } else {
            synchronized (a) { synchronized (b) { touch(); } }
        }
        // The counter update happens OUTSIDE the critical sections:
        // this is the datarace.
        int work = cfg.retries + cfg.timeout;   // immutable reads
        stats.processed = stats.processed + work % 3 + 1;
    }

    void touch() {
        int probe = cfg.retries;                // immutable read
        if (probe < 0) { print(probe); }
    }

    void run() {
        for (int i = 0; i < 5; i++) { step(); }
    }
}

class Main {
    static void main() {
        Config cfg = new Config();
        cfg.retries = 3;
        cfg.timeout = 100;
        Stats stats = new Stats();
        LockA a = new LockA();
        LockB b = new LockB();
        Worker w1 = new Worker(cfg, stats, a, b, false);
        Worker w2 = new Worker(cfg, stats, a, b, false);
        Worker w3 = new Worker(cfg, stats, a, b, true);
        w1.start();
        w2.start();      // w1 and w2 overlap: the race is observed
        w1.join();
        w2.join();
        w3.start();      // serialized: the inversion never hangs
        w3.join();
        print(stats.processed);
    }
}
`

func main() {
	var eventLog strings.Builder
	res, err := racedet.Detect("coanalysis.mj", program, racedet.Options{
		DetectDeadlocks:     true,
		AnalyzeImmutability: true,
		RecordTo:            &eventLog,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== dataraces ==")
	for _, r := range res.Races {
		fmt.Println(" ", r)
		for _, p := range r.StaticPartners {
			fmt.Println("    may race with code at", p)
		}
	}

	fmt.Println()
	fmt.Println("== potential deadlocks (lock-order graph) ==")
	for _, r := range res.PotentialDeadlocks {
		fmt.Println(" ", r)
	}

	fmt.Println()
	fmt.Println("== immutability (§10 future work) ==")
	for _, r := range res.Immutability {
		fmt.Println(" ", r)
	}

	fmt.Println()
	fmt.Println("== post-mortem (§1/§2.6) ==")
	replayed, err := racedet.Replay(strings.NewReader(eventLog.String()), racedet.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  off-line replay reports %d racy object(s) — same as on-the-fly (%d)\n",
		replayed.RacyObjects, res.RacyObjects)
	pairs, err := racedet.FullRace(strings.NewReader(eventLog.String()), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FullRace reconstruction: %d racing pair(s) (the raw §2.4 definition,\n", len(pairs))
	fmt.Println("  with no ownership approximation: initialization hand-offs count too)")
	if len(pairs) > 0 {
		fmt.Printf("  first pair:\n    %s\n    %s\n", pairs[0].First, pairs[0].Second)
	}
}
