// Quickstart: detect the dataraces in the paper's Figure 2 example.
//
// The program below is the MJ rendition of Figure 2: thread main
// writes x.f before starting T1 and T2; T1 writes a.f unprotected and
// reads b.f under lock p; T2 writes d.f under lock q. With a, b, d,
// and x aliased to the same object and p ≠ q, the accesses T11:a.f
// and T14:b.f race with T21:d.f — while T01:x.f does not race because
// thread start orders it before the children (the ownership model
// captures this).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"racedet"
)

const figure2 = `
class Shared {
    int f;
    int g;
}

class T1 extends Thread {
    Shared a;
    Shared b;
    Shared p; // lock p

    T1(Shared obj, Shared lock) {
        a = obj;
        b = obj;
        p = lock;
    }

    // T10: synchronized void foo(...)
    synchronized void foo() {
        a.f = 50;             // T11: unprotected write (races with T21)
        synchronized (p) {    // T13
            b.g = b.f;        // T14: read of b.f under lock p (races with T21)
        }
    }

    void run() {
        foo();
    }
}

class T2 extends Thread {
    Shared d;
    Shared q; // lock q

    T2(Shared obj, Shared lock) {
        d = obj;
        q = lock;
    }

    void bar() {
        synchronized (q) {    // T20
            d.f = 10;         // T21: write of d.f under lock q
        }
    }

    void run() {
        bar();
    }
}

class Main {
    static Shared x;

    static void main() {
        x = new Shared();
        x.f = 100;            // T01: ordered before the children by start()
        Shared lockP = new Shared();
        Shared lockQ = new Shared();
        Thread t1 = new T1(x, lockP);   // T02
        Thread t2 = new T2(x, lockQ);   // T03
        t1.start();           // T04
        t2.start();           // T05
        t1.join();
        t2.join();
        print(x.f);
    }
}
`

func main() {
	res, err := racedet.Detect("figure2.mj", figure2, racedet.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program output: %q\n", res.Output)
	fmt.Printf("dataraces reported on %d object(s):\n", res.RacyObjects)
	for _, r := range res.Races {
		fmt.Println("  ", r)
		for _, p := range r.StaticPartners {
			fmt.Println("     may race with code at", p)
		}
	}
	fmt.Println()
	fmt.Printf("pipeline: %d access sites, %d in the static race set, "+
		"%d traces inserted, %d eliminated statically\n",
		res.Stats.AccessSites, res.Stats.StaticRaceSet,
		res.Stats.TracesInserted, res.Stats.TracesEliminated)
	fmt.Printf("runtime: %d trace events, %d cache hits, %d absorbed by ownership, %d reached the trie\n",
		res.Stats.TraceEvents, res.Stats.CacheHits, res.Stats.OwnerSkips, res.Stats.TrieEvents)
}
