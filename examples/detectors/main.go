// Detector comparison on the paper's §8.3 join idiom: two child
// threads update shared statistics under a common lock, and the parent
// reads the statistics after joining both children with no lock.
//
// The execution is perfectly safe (join orders the parent's reads
// after the children), but detectors disagree:
//
//   - the paper's detector models join with pseudolocks S1/S2: the
//     three locksets {S1, sync}, {S2, sync}, {S1, S2} are mutually
//     intersecting, so it stays quiet;
//   - Eraser demands one common lock over all accesses — the three
//     locksets have empty intersection, so it reports a spurious race;
//   - the happens-before detector is quiet here, but on the second
//     program (a feasible race hidden by accidental lock ordering) it
//     misses what the lockset detectors catch.
//
// Run with:
//
//	go run ./examples/detectors
package main

import (
	"fmt"
	"log"

	"racedet"
)

const joinIdiom = `
class Stats {
    int total;
}

class Child extends Thread {
    Stats stats;
    Stats syncObject;
    int work;

    Child(Stats s, Stats lock, int w) {
        stats = s;
        syncObject = lock;
        work = w;
    }

    void run() {
        synchronized (syncObject) {
            stats.total = stats.total + work;
        }
    }
}

class Main {
    static void main() {
        Stats stats = new Stats();
        Stats lock = new Stats();
        Child c1 = new Child(stats, lock, 10);
        Child c2 = new Child(stats, lock, 20);
        c1.start();
        c2.start();
        c1.join();
        c2.join();
        print(stats.total); // safe: ordered by the joins, no lock held
    }
}
`

// feasibleRace is §2.2's point, in the exact shape of Figure 2 with
// T13:p and T20:q aliased: T1 writes data.f with no lock and then
// enters a critical section on m; T2 writes data.f inside its own
// critical section on m. When T1's critical section completes before
// T2's (which the deterministic schedule makes typical), a
// happens-before detector derives T1.write → T13 → T20 → T2.write and
// stays silent — yet had T2 acquired m first, the accesses would have
// raced. The lockset view reports the feasible race on every schedule.
const feasibleRace = `
class Data {
    int f;
    int g;
}

class T1 extends Thread {
    Data data;
    Data m;

    T1(Data d, Data lock) {
        data = d;
        m = lock;
    }

    void run() {
        data.f = 50;          // T11: unprotected write
        synchronized (m) {    // T13
            data.g = data.f;  // T14
        }
    }
}

class T2 extends Thread {
    Data data;
    Data m;

    T2(Data d, Data lock) {
        data = d;
        m = lock;
    }

    void run() {
        synchronized (m) {    // T20
            data.f = 10;      // T21
        }
    }
}

class Main {
    static void main() {
        Data d = new Data();
        d.f = 100;            // T01: ordered before the children by start()
        Data m = new Data();
        T1 t1 = new T1(d, m);
        T2 t2 = new T2(d, m);
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        print(d.f);
    }
}
`

func run(name, src string, det racedet.Detector) (int, []string) {
	res, err := racedet.Detect(name, src, racedet.Options{Detector: det})
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, r := range res.Races {
		lines = append(lines, "    "+r.String())
	}
	for _, r := range res.BaselineReports {
		lines = append(lines, "    "+r)
	}
	return res.RacyObjects, lines
}

func main() {
	detectors := []struct {
		name string
		det  racedet.Detector
	}{
		{"paper (trie + pseudolocks)", racedet.Trie},
		{"Eraser (single common lock)", racedet.Eraser},
		{"object-granularity", racedet.ObjectRace},
		{"happens-before (vector clocks)", racedet.HappensBefore},
	}

	fmt.Println("== join idiom (safe; §8.3) ==")
	for _, d := range detectors {
		n, lines := run("join.mj", joinIdiom, d.det)
		fmt.Printf("%-32s -> %d racy object(s)\n", d.name, n)
		for _, l := range lines {
			fmt.Println(l)
		}
	}

	fmt.Println()
	fmt.Println("== feasible race (buggy; §2.2) ==")
	for _, d := range detectors {
		n, lines := run("feasible.mj", feasibleRace, d.det)
		fmt.Printf("%-32s -> %d racy object(s)\n", d.name, n)
		for _, l := range lines {
			fmt.Println(l)
		}
	}

	// Coverage: the lockset view reports the feasible race on every
	// schedule; the happens-before view only when the observed
	// execution leaves the accesses unordered.
	fmt.Println()
	fmt.Println("== schedule sweep over 10 seeds (feasible race) ==")
	for _, d := range []struct {
		name string
		det  racedet.Detector
	}{
		{"paper (lockset)", racedet.Trie},
		{"happens-before", racedet.HappensBefore},
	} {
		found := 0
		for seed := int64(0); seed < 10; seed++ {
			res, err := racedet.Detect("feasible.mj", feasibleRace,
				racedet.Options{Detector: d.det, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			if res.RacyObjects > 0 {
				found++
			}
		}
		fmt.Printf("%-32s -> reported in %d/10 schedules\n", d.name, found)
	}
}
