// Optimizations tour: shows what each of the paper's optimization
// phases contributes on an array-relaxation kernel (the sor2 pattern)
// by running the same program under Table 2's configurations and
// printing the deterministic work counters.
//
// Expected shape (mirroring the paper's Table 2 for sor2): disabling
// the static weaker-than elimination or loop peeling multiplies the
// number of executed trace instructions, while disabling the cache
// multiplies the number of events that reach the trie detector.
//
// Run with:
//
//	go run ./examples/optimizations
package main

import (
	"fmt"
	"log"

	"racedet"
)

const kernel = `
class Grid {
    int[][] rows;

    Grid(int h, int w) {
        rows = new int[h][];
        int i = 0;
        while (i < h) {
            int[] row = new int[w];
            int j = 0;
            while (j < w) {
                row[j] = (i * 31 + j * 7) % 100;
                j = j + 1;
            }
            rows[i] = row;
            i = i + 1;
        }
    }
}

class Relaxer extends Thread {
    Grid grid;
    int from;
    int to;
    int width;

    Relaxer(Grid g, int f, int t, int w) {
        grid = g;
        from = f;
        to = t;
        width = w;
    }

    void run() {
        int[][] rows = grid.rows;
        int i = from;
        while (i < to) {
            int[] row = rows[i];
            int[] up = rows[i - 1];
            int j = 1;
            while (j < width - 1) {
                row[j] = (row[j - 1] + row[j + 1] + up[j]) / 3;
                j = j + 1;
            }
            i = i + 1;
        }
    }
}

class Main {
    static void main() {
        Grid g = new Grid(60, 40);
        Relaxer r1 = new Relaxer(g, 1, 30, 40);
        Relaxer r2 = new Relaxer(g, 30, 60, 40);
        r1.start();
        r2.start();
        r1.join();
        r2.join();
        print(g.rows[15][20]);
    }
}
`

func main() {
	configs := []struct {
		name string
		opts racedet.Options
	}{
		{"Full", racedet.Options{}},
		{"NoStatic", racedet.Options{DisableStaticAnalysis: true}},
		{"NoDominators", racedet.Options{DisableWeakerThan: true}},
		{"NoPeeling", racedet.Options{DisablePeeling: true}},
		{"NoCache", racedet.Options{DisableCache: true}},
		{"NoOwnership", racedet.Options{DisableOwnership: true}},
	}

	fmt.Printf("%-14s %9s %11s %11s %10s %10s %7s\n",
		"config", "traces", "eliminated", "traceEvents", "cacheHits", "trieEvents", "races")
	for _, c := range configs {
		res, err := racedet.Detect("kernel.mj", kernel, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("%-14s %9d %11d %11d %10d %10d %7d\n",
			c.name, s.TracesInserted, s.TracesEliminated, s.TraceEvents,
			s.CacheHits, s.TrieEvents, res.RacyObjects)
	}
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  * NoDominators/NoPeeling: the per-element traces in the inner loop")
	fmt.Println("    survive, so executed trace events explode (the paper's sor2 row).")
	fmt.Println("  * NoCache: every event skips the cache, so more of them reach the trie.")
	fmt.Println("  * NoOwnership: races are reported on the rows the main thread")
	fmt.Println("    initialized (spurious; Table 3's NoOwnership column).")
	fmt.Println("  * Full reports the boundary row shared by both relaxers (row 29/30")
	fmt.Println("    neighborhood) — a true unordered access in this program.")
}
