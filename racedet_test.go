package racedet

import (
	"strings"
	"testing"
)

const racyProgram = `
class Data { int f; }
class Worker extends Thread {
    Data d;
    Worker(Data d0) { d = d0; }
    void run() { d.f = d.f + 1; }
}
class Main {
    static void main() {
        Data x = new Data();
        x.f = 0;
        Worker a = new Worker(x);
        Worker b = new Worker(x);
        a.start(); b.start();
        a.join(); b.join();
        print(x.f);
    }
}`

const quietProgram = `
class Data { int f; }
class Worker extends Thread {
    Data d;
    Worker(Data d0) { d = d0; }
    void run() { synchronized (d) { d.f = d.f + 1; } }
}
class Main {
    static void main() {
        Data x = new Data();
        Worker a = new Worker(x);
        Worker b = new Worker(x);
        a.start(); b.start();
        a.join(); b.join();
        print(x.f);
    }
}`

func TestDetectFindsRace(t *testing.T) {
	res, err := Detect("racy.mj", racyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RacyObjects != 1 || len(res.Races) == 0 {
		t.Fatalf("races = %v", res.Races)
	}
	r := res.Races[0]
	if r.Field != "Data.f" {
		t.Errorf("race field = %q", r.Field)
	}
	if !strings.Contains(r.Object, "Data#") {
		t.Errorf("race object = %q", r.Object)
	}
	if !strings.Contains(r.Pos, "racy.mj:") {
		t.Errorf("race pos = %q", r.Pos)
	}
	if !strings.Contains(r.String(), "datarace on Data.f") {
		t.Errorf("render = %q", r.String())
	}
}

func TestDetectQuietOnSynchronized(t *testing.T) {
	res, err := Detect("quiet.mj", quietProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RacyObjects != 0 {
		t.Fatalf("unexpected races: %v", res.Races)
	}
	if strings.TrimSpace(res.Output) != "2" {
		t.Errorf("output = %q", res.Output)
	}
	if res.Stats.Instructions == 0 || res.Stats.Threads != 3 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestCompileOnceRunMany(t *testing.T) {
	c, err := Compile("racy.mj", racyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 4; seed++ {
		res, err := c.RunSeed(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.RacyObjects != 1 {
			t.Errorf("seed %d: racy objects = %d", seed, res.RacyObjects)
		}
	}
}

func TestBaselineDetectors(t *testing.T) {
	for _, det := range []Detector{Eraser, ObjectRace, HappensBefore} {
		res, err := Detect("racy.mj", racyProgram, Options{Detector: det})
		if err != nil {
			t.Fatalf("detector %v: %v", det, err)
		}
		if res.RacyObjects == 0 {
			t.Errorf("detector %v missed the race", det)
		}
		if det != HappensBefore && len(res.BaselineReports) == 0 {
			t.Errorf("detector %v produced no textual reports", det)
		}
	}
}

func TestOptionKnobs(t *testing.T) {
	// Every ablation still detects the same racy object on this
	// program (§7.2's stability claim, through the public API).
	opts := []Options{
		{},
		{DisableStaticAnalysis: true},
		{DisableWeakerThan: true},
		{DisablePeeling: true},
		{DisableCache: true},
	}
	for i, o := range opts {
		res, err := Detect("racy.mj", racyProgram, o)
		if err != nil {
			t.Fatalf("opts %d: %v", i, err)
		}
		if res.RacyObjects != 1 {
			t.Errorf("opts %d: racy objects = %d, want 1", i, res.RacyObjects)
		}
	}
}

func TestErrorsSurface(t *testing.T) {
	if _, err := Detect("bad.mj", "class {", Options{}); err == nil {
		t.Error("syntax error must surface")
	}
	if _, err := Detect("bad.mj", `class M { static void main() { int[] a = new int[1]; a[5] = 0; } }`, Options{}); err == nil {
		t.Error("runtime error must surface")
	}
}

func TestStatsExposed(t *testing.T) {
	res, err := Detect("racy.mj", racyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.AccessSites == 0 || s.StaticRaceSet == 0 || s.TracesInserted == 0 {
		t.Errorf("static stats empty: %+v", s)
	}
	if s.TraceEvents == 0 {
		t.Errorf("runtime stats empty: %+v", s)
	}
}
