package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestRacebenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "racebench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-table", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("-table 1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Table 1") || !strings.Contains(string(out), "hedc") {
		t.Errorf("table 1 output wrong:\n%s", out)
	}
	out, err = exec.Command(bin, "-table", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("-table 3: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "NoOwnership") {
		t.Errorf("table 3 output wrong:\n%s", out)
	}
	if err := exec.Command(bin, "-table", "9").Run(); err == nil {
		t.Error("unknown table must fail")
	}
}
