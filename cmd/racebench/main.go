// Command racebench regenerates the evaluation of the paper: Table 1
// (benchmark characteristics), Table 2 (runtime performance of the
// optimization ablations), Table 3 (objects with dataraces under the
// accuracy variants), and the §8.3/§9 detector comparison.
//
// Usage:
//
//	racebench -table all            # everything
//	racebench -table 2 -runs 5      # Table 2, best of five runs
//	racebench -compare              # trie vs Eraser/ObjectRace/HB
//	racebench -json BENCH_PR2.json  # machine-readable ns/op + allocs/op
package main

import (
	"flag"
	"fmt"
	"os"

	"racedet/internal/bench"
	"racedet/internal/profiling"
)

func main() {
	var (
		table       = flag.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
		runs        = flag.Int("runs", 5, "Table 2: runs per configuration (best is reported, as in the paper)")
		compare     = flag.Bool("compare", false, "also print the detector comparison (§8.3/§9)")
		jsonPath    = flag.String("json", "", "write machine-readable results (ns/op, allocs/op per benchmark and config) to this file and skip the tables")
		shards      = flag.Int("shards", 4, "worker count of the sharded configurations in the -json matrix")
		batchSize   = flag.Int("batch", 64, "access batch size of the batched configurations in the -json matrix")
		journalCap  = flag.Int("journal", 4096, "per-shard journal capacity of the supervised -json configuration")
		retryBudget = flag.Int("retry-budget", 3, "restart attempts per shard of the supervised -json configuration")
		benchReps   = flag.Int("benchreps", 1, "measurement reps per -json cell, interleaved across configurations; the report carries median ns/op with min/max spread")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	// A bad flag is a usage error (exit 3), consistent with racedet.
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(3)
	}
	var flagErr error
	flag.Visit(func(f *flag.Flag) {
		if flagErr != nil {
			return
		}
		switch f.Name {
		case "shards":
			if *shards <= 0 {
				flagErr = fmt.Errorf("-shards must be >= 1 (got %d)", *shards)
			}
		case "batch":
			if *batchSize <= 0 {
				flagErr = fmt.Errorf("-batch must be >= 1 (got %d)", *batchSize)
			}
		case "journal":
			if *journalCap <= 0 {
				flagErr = fmt.Errorf("-journal must be >= 1 (got %d)", *journalCap)
			}
		case "retry-budget":
			if *retryBudget < 0 {
				flagErr = fmt.Errorf("-retry-budget must be >= 0 (got %d)", *retryBudget)
			}
		case "runs":
			if *runs <= 0 {
				flagErr = fmt.Errorf("-runs must be >= 1 (got %d)", *runs)
			}
		case "benchreps":
			if *benchReps <= 0 {
				flagErr = fmt.Errorf("-benchreps must be >= 1 (got %d)", *benchReps)
			}
		}
	})
	if flagErr != nil {
		fmt.Fprintln(os.Stderr, "racebench:", flagErr)
		os.Exit(3)
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racebench:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "racebench:", err)
		stopProfiles()
		os.Exit(1)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		jopts := bench.JSONOptions{
			Shards:      *shards,
			BatchSize:   *batchSize,
			JournalCap:  *journalCap,
			RetryBudget: *retryBudget,
			BenchReps:   *benchReps,
		}
		if err := bench.WriteJSON(f, jopts); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *jsonPath)
		return
	}

	w := os.Stdout
	switch *table {
	case "1":
		bench.Table1(w)
	case "2":
		if err := bench.Table2(w, *runs); err != nil {
			fail(err)
		}
	case "3":
		if err := bench.Table3(w); err != nil {
			fail(err)
		}
	case "all":
		bench.Table1(w)
		fmt.Fprintln(w)
		if err := bench.Table2(w, *runs); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		if err := bench.Table3(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		if err := bench.CompareDetectors(w); err != nil {
			fail(err)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "racebench: unknown table %q\n", *table)
		os.Exit(2)
	}
	if *compare {
		fmt.Fprintln(w)
		if err := bench.CompareDetectors(w); err != nil {
			fail(err)
		}
	}
}
