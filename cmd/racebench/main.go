// Command racebench regenerates the evaluation of the paper: Table 1
// (benchmark characteristics), Table 2 (runtime performance of the
// optimization ablations), Table 3 (objects with dataraces under the
// accuracy variants), and the §8.3/§9 detector comparison.
//
// Usage:
//
//	racebench -table all          # everything
//	racebench -table 2 -runs 5    # Table 2, best of five runs
//	racebench -compare            # trie vs Eraser/ObjectRace/HB
package main

import (
	"flag"
	"fmt"
	"os"

	"racedet/internal/bench"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
		runs    = flag.Int("runs", 5, "Table 2: runs per configuration (best is reported, as in the paper)")
		compare = flag.Bool("compare", false, "also print the detector comparison (§8.3/§9)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "racebench:", err)
		os.Exit(1)
	}

	w := os.Stdout
	switch *table {
	case "1":
		bench.Table1(w)
	case "2":
		if err := bench.Table2(w, *runs); err != nil {
			fail(err)
		}
	case "3":
		if err := bench.Table3(w); err != nil {
			fail(err)
		}
	case "all":
		bench.Table1(w)
		fmt.Fprintln(w)
		if err := bench.Table2(w, *runs); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		if err := bench.Table3(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		if err := bench.CompareDetectors(w); err != nil {
			fail(err)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "racebench: unknown table %q\n", *table)
		os.Exit(2)
	}
	if *compare {
		fmt.Fprintln(w)
		if err := bench.CompareDetectors(w); err != nil {
			fail(err)
		}
	}
}
