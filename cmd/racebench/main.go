// Command racebench regenerates the evaluation of the paper: Table 1
// (benchmark characteristics), Table 2 (runtime performance of the
// optimization ablations), Table 3 (objects with dataraces under the
// accuracy variants), and the §8.3/§9 detector comparison.
//
// Usage:
//
//	racebench -table all            # everything
//	racebench -table 2 -runs 5      # Table 2, best of five runs
//	racebench -compare              # trie vs Eraser/ObjectRace/HB
//	racebench -json BENCH_PR2.json  # machine-readable ns/op + allocs/op
package main

import (
	"flag"
	"fmt"
	"os"

	"racedet/internal/bench"
	"racedet/internal/profiling"
)

func main() {
	var (
		table      = flag.String("table", "all", "which table to regenerate: 1, 2, 3, or all")
		runs       = flag.Int("runs", 5, "Table 2: runs per configuration (best is reported, as in the paper)")
		compare    = flag.Bool("compare", false, "also print the detector comparison (§8.3/§9)")
		jsonPath   = flag.String("json", "", "write machine-readable results (ns/op, allocs/op per benchmark and config) to this file and skip the tables")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racebench:", err)
		os.Exit(1)
	}
	defer stopProfiles()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "racebench:", err)
		stopProfiles()
		os.Exit(1)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fail(err)
		}
		if err := bench.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *jsonPath)
		return
	}

	w := os.Stdout
	switch *table {
	case "1":
		bench.Table1(w)
	case "2":
		if err := bench.Table2(w, *runs); err != nil {
			fail(err)
		}
	case "3":
		if err := bench.Table3(w); err != nil {
			fail(err)
		}
	case "all":
		bench.Table1(w)
		fmt.Fprintln(w)
		if err := bench.Table2(w, *runs); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		if err := bench.Table3(w); err != nil {
			fail(err)
		}
		fmt.Fprintln(w)
		if err := bench.CompareDetectors(w); err != nil {
			fail(err)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "racebench: unknown table %q\n", *table)
		os.Exit(2)
	}
	if *compare {
		fmt.Fprintln(w)
		if err := bench.CompareDetectors(w); err != nil {
			fail(err)
		}
	}
}
