package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchFlagValidation pins racebench's usage-error contract,
// mirroring racedet's: explicit nonsense values exit 3 with a message
// on stderr, before any (expensive) benchmarking starts.
func TestBenchFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "racebench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"shards zero", []string{"-shards", "0"}, "-shards must be >= 1"},
		{"batch negative", []string{"-batch", "-64"}, "-batch must be >= 1"},
		{"journal zero", []string{"-journal", "0"}, "-journal must be >= 1"},
		{"retry budget negative", []string{"-retry-budget", "-2"}, "-retry-budget must be >= 0"},
		{"runs zero", []string{"-runs", "0"}, "-runs must be >= 1"},
		{"benchreps zero", []string{"-benchreps", "0"}, "-benchreps must be >= 1"},
		{"unknown flag", []string{"-no-such-flag"}, "flag"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected a usage failure, got err=%v\n%s", err, out)
			}
			if ee.ExitCode() != 3 {
				t.Fatalf("exit = %d, want 3 (usage error)\n%s", ee.ExitCode(), out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}
}
