// Command racedetd is the detection-as-a-service daemon: a persistent
// process that accepts compile+analyze jobs from many concurrent
// clients over a local HTTP API and runs each in an isolated,
// supervised detector session (see internal/service). A job may also
// upload a recorded binary trace (racedet -record prog.mjtrace)
// instead of source; the session then replays the trace through its
// detector without compiling or running anything — the daemon side of
// the record-once/analyze-many workflow.
//
//	racedetd -listen 127.0.0.1:7421 -factcache /var/cache/racedet
//
// Endpoints: POST /analyze, GET /healthz, GET /metrics.
//
// Exit codes:
//
//	0  clean drain: every in-flight job finished before the deadline
//	2  drain deadline exceeded: remaining jobs were counted aborted
//	3  usage / flag / listener error
//	4  forced exit on a second signal before the drain finished
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"racedet/internal/faultinject"
	"racedet/internal/service"
)

const (
	exitClean         = 0
	exitDrainDeadline = 2
	exitUsage         = 3
	exitForced        = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("racedetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1:7421", "TCP listen address (host:port; port 0 picks a free port)")
		socket   = fs.String("socket", "", "listen on a unix socket at this path instead of TCP")
		sessions = fs.Int("max-sessions", 0, "max concurrently running sessions (0 = GOMAXPROCS)")
		queue    = fs.Int("queue-depth", 0, "jobs allowed to wait for a slot before load-shedding (0 = default 16, negative = no queue)")
		jobTO    = fs.Duration("job-timeout", 0, "per-job wall-clock watchdog (0 = default 30s, negative = off)")
		livelock = fs.Int("livelock", 0, "per-job livelock watchdog window in scheduler slices (0 = default, negative = off)")
		retries  = fs.Int("retry-budget", 0, "session panic retries before degrading to the Eraser pass (0 = default 3)")
		backoff  = fs.Duration("retry-backoff", 0, "base of the exponential session retry backoff (0 = default 5ms)")
		factDir  = fs.String("factcache", "", "shared fact cache directory for warm compiles across sessions")
		inject   = fs.String("inject", "", "deterministic fault plan (testing), e.g. 'session-panic:job=2,times=1'")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on SIGTERM before counting them aborted")
		shards   = fs.Int("shards", 0, "per-session detector shards (0 = default 2, negative = serial back end)")
		batch    = fs.Int("batch", 0, "per-session event batch size (0 = default)")
		journal  = fs.Int("journal", 0, "per-shard journal capacity for crash replay (0 = default, negative = off)")
		maxTrace = fs.Int("max-trace-bytes", 0, "max uploaded trace size for replay jobs (0 = default 8MiB, negative = request-body limit only)")
		sampleK  = fs.Int("sample-k", 0, "per-session adaptive throttling: demote an access site after K clean observations (0 = off; jobs may override)")
		sampleB  = fs.Float64("sample-budget", 0, "per-session adaptive throttling: target shipped-events ratio in (0,1] (0 = off; jobs may override)")
		stateDir = fs.String("state-dir", "", "durable state directory: admitted jobs are journaled to a WAL here and recovered after a crash")
		walSync  = fs.String("wal-sync", "always", "WAL durability: 'always' fsyncs every append, 'none' trusts the page cache")
		quiet    = fs.Bool("q", false, "suppress the per-job lifecycle log on stderr")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: racedetd [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "racedetd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return exitUsage
	}

	if *walSync != "always" && *walSync != "none" {
		fmt.Fprintf(stderr, "racedetd: -wal-sync: unknown mode %q (want 'always' or 'none')\n", *walSync)
		return exitUsage
	}
	if *sampleK < 0 {
		fmt.Fprintf(stderr, "racedetd: -sample-k must be >= 0 (got %d); 0 disables throttling\n", *sampleK)
		return exitUsage
	}
	if *sampleB < 0 || *sampleB > 1 {
		fmt.Fprintf(stderr, "racedetd: -sample-budget must be in [0, 1] (got %g); 0 disables the adaptive controller\n", *sampleB)
		return exitUsage
	}

	var plan *faultinject.Plan
	if *inject != "" {
		p, err := faultinject.Parse(*inject)
		if err != nil {
			fmt.Fprintf(stderr, "racedetd: -inject: %v\n", err)
			return exitUsage
		}
		plan = p
	}

	logw := io.Writer(stderr)
	if *quiet {
		logw = io.Discard
	}
	srv := service.New(service.Options{
		MaxSessions:    *sessions,
		QueueDepth:     *queue,
		JobTimeout:     *jobTO,
		LivelockWindow: *livelock,
		RetryBudget:    *retries,
		RetryBackoff:   *backoff,
		FactCacheDir:   *factDir,
		Shards:         *shards,
		BatchSize:      *batch,
		JournalCap:     *journal,
		MaxTraceBytes:  *maxTrace,
		SampleK:        *sampleK,
		SampleBudget:   *sampleB,
		StateDir:       *stateDir,
		WalSync:        *walSync,
		// The shard-level half of the plan reaches each session's
		// sharded back end by spec, re-parsed per run (fresh counters).
		DetectorFaultSpec: *inject,
		Faults:            plan,
		Log:               logw,
	})

	// Crash recovery runs to completion before the daemon accepts or
	// even listens for work: every job acknowledged by the previous
	// incarnation has a result again once the listening line prints.
	rec, err := srv.Recover()
	if err != nil {
		fmt.Fprintf(stderr, "racedetd: recover: %v\n", err)
		return exitUsage
	}
	if rec.Enabled {
		fmt.Fprintf(stderr, "racedetd: recovered state: replayed=%d completed=%d rerun=%d deduped=%d tail_truncated=%v\n",
			rec.Replayed, rec.Completed, rec.Rerun, rec.Deduped, rec.TailTruncated)
	}

	var (
		l   net.Listener
		url string
	)
	if *socket != "" {
		l, err = net.Listen("unix", *socket)
		url = "unix://" + *socket
	} else {
		l, err = net.Listen("tcp", *listen)
		if err == nil {
			url = "http://" + l.Addr().String()
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "racedetd: listen: %v\n", err)
		return exitUsage
	}

	// The one line tooling depends on: the resolved address (port 0 is
	// common in tests and CI smokes).
	fmt.Fprintf(stdout, "racedetd listening on %s\n", url)
	if f, ok := stdout.(interface{ Sync() error }); ok {
		f.Sync()
	}

	// First SIGTERM/SIGINT: graceful drain. Second: force exit 4.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	drained := make(chan service.DrainReport, 1)
	go func() {
		sig := <-sigCh
		fmt.Fprintf(stderr, "racedetd: %v: draining (up to %v)\n", sig, *drainTO)
		go func() { drained <- srv.Drain(*drainTO) }()
		sig = <-sigCh
		fmt.Fprintf(stderr, "racedetd: second %v: forcing exit\n", sig)
		srv.ForceClose()
		os.Exit(exitForced)
	}()

	if err := srv.Serve(l); err != nil {
		fmt.Fprintf(stderr, "racedetd: serve: %v\n", err)
		return exitUsage
	}
	// Serve only returns nil once Drain closed the listeners, so the
	// report is already (or imminently) available.
	rep := <-drained
	snap := srv.Metrics()
	fmt.Fprintf(stdout, "racedetd drained: clean=%v admitted=%d completed=%d failed=%d degraded=%d aborted=%d\n",
		rep.Clean, snap.JobsAdmitted, snap.JobsCompleted, snap.JobsFailed,
		snap.JobsDegraded, snap.JobsAbortedAtDrain)
	if !rep.Clean {
		return exitDrainDeadline
	}
	return exitClean
}
