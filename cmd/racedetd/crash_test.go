// Crash-recovery end-to-end: kill the daemon -9 (via the deterministic
// crash fault) at chosen WAL disk operations, restart it on the same
// state dir, and prove the durability contract a client relies on:
//
//   - crash after the admit was durable → the restarted daemon re-runs
//     the job, and the client's idempotent retry gets the stored
//     verdict, byte-identical to a fresh analysis of the same request.
//   - crash before the admit was durable → nothing was acknowledged,
//     nothing recovers, the retry simply runs fresh.
package main

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"racedet/internal/service"
)

// waitDeath waits for a crash-injected daemon to SIGKILL itself.
func waitDeath(t *testing.T, d *daemon, within time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		<-d.readDone
		d.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(within):
		t.Fatalf("crash-injected racedetd still alive after %v", within)
	}
}

func TestDaemonCrashAfterDurableAdmit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildDaemon(t)
	state := t.TempDir()

	// WAL disk op 1 is the log magic, op 2 the job's admit record, op 3
	// its result record: the crash fires after the analysis ran but
	// before its result became durable — the worst-timed kill -9.
	d1 := startDaemon(t, bin, "-state-dir", state, "-inject", "crash:disk=wal,at=3", "-q")
	req := service.JobRequest{File: "racy.mj", Source: racyProg, Seed: 5, IdempotencyKey: "crash-1"}
	if _, err := d1.client.Analyze(req); err == nil {
		t.Fatal("analyze survived a daemon that killed itself mid-result")
	}
	waitDeath(t, d1, 10*time.Second)

	// Restart: the admitted-but-incomplete job re-runs before the
	// listening line prints, so the client's retry is answered from the
	// recovered result without a third execution.
	d2 := startDaemon(t, bin, "-state-dir", state, "-q")
	res, err := d2.client.Analyze(req)
	if err != nil {
		t.Fatalf("retry after restart: %v", err)
	}
	if !res.Deduped {
		t.Fatalf("retry was re-analyzed, want the recovered job's stored result: %+v", res)
	}
	if len(res.Races) == 0 {
		t.Fatalf("recovered verdict lost the race: %+v", res)
	}

	// Byte-identical recovery: a fresh keyless run of the same request
	// in the same daemon must produce the same race report.
	fresh, err := d2.client.Analyze(service.JobRequest{File: "racy.mj", Source: racyProg, Seed: 5})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	got, _ := json.Marshal(res.Races)
	want, _ := json.Marshal(fresh.Races)
	if !bytes.Equal(got, want) {
		t.Errorf("recovered races not byte-identical to a fresh run:\n got %s\nwant %s", got, want)
	}

	m, err := d2.client.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["jobs_recovered"] != 1 || m["jobs_deduped"] != 1 {
		t.Errorf("jobs_recovered=%d jobs_deduped=%d, want 1/1", m["jobs_recovered"], m["jobs_deduped"])
	}
	if m["jobs_admitted"] != m["jobs_completed"]+m["jobs_failed"]+m["jobs_degraded"]+m["jobs_aborted_at_drain"]+m["jobs_deduped"] {
		t.Errorf("terminal-state invariant broken after recovery: %v", m)
	}
}

func TestDaemonCrashBeforeDurableAdmit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildDaemon(t)
	state := t.TempDir()

	// Crash at op 2: the admit record never lands, so the client never
	// got (and never could have gotten) an acknowledgment.
	d1 := startDaemon(t, bin, "-state-dir", state, "-inject", "crash:disk=wal,at=2", "-q")
	req := service.JobRequest{File: "racy.mj", Source: racyProg, IdempotencyKey: "crash-2"}
	if _, err := d1.client.Analyze(req); err == nil {
		t.Fatal("analyze survived a daemon that killed itself mid-admit")
	}
	waitDeath(t, d1, 10*time.Second)

	d2 := startDaemon(t, bin, "-state-dir", state, "-q")
	res, err := d2.client.Analyze(req)
	if err != nil {
		t.Fatalf("retry after restart: %v", err)
	}
	if res.Deduped {
		t.Fatalf("nothing was admitted, yet the retry was deduped: %+v", res)
	}
	if len(res.Races) == 0 {
		t.Errorf("retry lost the verdict: %+v", res)
	}
	m, err := d2.client.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["jobs_recovered"] != 0 {
		t.Errorf("jobs_recovered = %d, want 0 (no durable admit to recover)", m["jobs_recovered"])
	}
}
