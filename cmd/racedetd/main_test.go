package main

import (
	"bufio"
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"racedet/internal/service"
)

// buildDaemon compiles the racedetd binary once per test.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "racedetd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const racyProg = `
class Data { int f; }
class Worker extends Thread {
    Data d;
    Worker(Data d0) { d = d0; }
    void run() { d.f = d.f + 1; }
}
class Main {
    static void main() {
        Data x = new Data();
        x.f = 0;
        Worker a = new Worker(x);
        Worker b = new Worker(x);
        a.start(); b.start(); a.join(); b.join();
        print(x.f);
    }
}`

var cleanProg = strings.Replace(racyProg,
	"void run() { d.f = d.f + 1; }",
	"void run() { synchronized (d) { d.f = d.f + 1; } }", 1)

// daemon is one running racedetd subprocess under test.
type daemon struct {
	cmd      *exec.Cmd
	client   *service.Client
	readDone chan struct{}

	mu     sync.Mutex
	stdout bytes.Buffer
}

// startDaemon launches racedetd with port 0 and returns once the
// daemon printed its resolved listen address.
func startDaemon(t *testing.T, bin string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0"}, extra...)
	d := &daemon{cmd: exec.Command(bin, args...)}
	pipe, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = nil
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("starting racedetd: %v", err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})

	sc := bufio.NewScanner(pipe)
	if !sc.Scan() {
		d.cmd.Wait()
		t.Fatalf("racedetd exited before announcing its address")
	}
	line := sc.Text()
	const prefix = "racedetd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("first stdout line = %q, want %q...", line, prefix)
	}
	d.client = &service.Client{Base: strings.TrimPrefix(line, prefix)}
	d.readDone = make(chan struct{})
	go func() {
		defer close(d.readDone)
		for sc.Scan() {
			d.mu.Lock()
			d.stdout.WriteString(sc.Text() + "\n")
			d.mu.Unlock()
		}
	}()
	return d
}

func (d *daemon) tail() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stdout.String()
}

// waitExit waits for the daemon to exit and returns its exit code.
func (d *daemon) waitExit(t *testing.T, within time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		// Drain stdout to EOF before Wait: Wait closes the pipe and
		// would race the reader out of the final drain-summary line.
		<-d.readDone
		done <- d.cmd.Wait()
	}()
	select {
	case <-done:
		return d.cmd.ProcessState.ExitCode()
	case <-time.After(within):
		d.cmd.Process.Kill()
		t.Fatalf("racedetd did not exit within %v", within)
		return -1
	}
}

// waitMetric polls /metrics until pred is satisfied.
func (d *daemon) waitMetric(t *testing.T, name string, pred func(int64) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := d.client.Metrics()
		if err == nil && pred(m[name]) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never satisfied predicate (last: %v, err %v)", name, m[name], err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonEndToEnd is the CI smoke: start the daemon, run two
// concurrent jobs with a session fault injected into the first
// admitted one, scrape /metrics, then SIGTERM for a clean drain.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin,
		"-inject", "session-panic:job=1,times=1",
		"-retry-backoff", "1ms", "-q")

	if err := d.client.Health(); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	jobs := []service.JobRequest{
		{File: "racy.mj", Source: racyProg},
		{File: "clean.mj", Source: cleanProg},
	}
	results := make([]*service.JobResult, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, req := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = d.client.Analyze(req)
		}()
	}
	wg.Wait()

	retries := 0
	for i, req := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %s: %v", req.File, errs[i])
		}
		if results[i].Degraded || results[i].CompileError != "" || results[i].RuntimeError != "" {
			t.Errorf("job %s not clean: %+v", req.File, results[i])
		}
		racy := len(results[i].Races) > 0
		if want := req.File == "racy.mj"; racy != want {
			t.Errorf("job %s racy=%v, want %v", req.File, racy, want)
		}
		retries += results[i].Retries
	}
	if retries != 1 {
		t.Errorf("total retries = %d, want 1 (the injected panic)", retries)
	}

	m, err := d.client.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m["jobs_admitted"] != 2 || m["jobs_completed"] != 2 {
		t.Errorf("admitted=%d completed=%d, want 2/2", m["jobs_admitted"], m["jobs_completed"])
	}
	if m["session_panics"] != 1 {
		t.Errorf("session_panics = %d, want 1", m["session_panics"])
	}
	if m["races_reported"] == 0 {
		t.Error("races_reported = 0")
	}

	d.cmd.Process.Signal(syscall.SIGTERM)
	if code := d.waitExit(t, 10*time.Second); code != 0 {
		t.Fatalf("clean drain exit = %d, want 0\n%s", code, d.tail())
	}
	if !strings.Contains(d.tail(), "clean=true") {
		t.Errorf("drain summary missing:\n%s", d.tail())
	}
}

// TestDaemonDrainDeadline proves a stuck job cannot hold shutdown
// hostage: the drain deadline expires, the job is counted aborted,
// and the daemon exits 2.
func TestDaemonDrainDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin,
		"-inject", "slow-client:job=*,delay=5s",
		"-drain-timeout", "100ms", "-q")

	go d.client.Analyze(service.JobRequest{File: "stuck.mj", Source: cleanProg})
	d.waitMetric(t, "sessions_active", func(v int64) bool { return v >= 1 })

	d.cmd.Process.Signal(syscall.SIGTERM)
	if code := d.waitExit(t, 10*time.Second); code != 2 {
		t.Fatalf("deadline drain exit = %d, want 2\n%s", code, d.tail())
	}
	out := d.tail()
	if !strings.Contains(out, "clean=false") || !strings.Contains(out, "aborted=1") {
		t.Errorf("drain summary should count the aborted job:\n%s", out)
	}
}

// TestDaemonDoubleSignal: a second SIGTERM during the drain forces an
// immediate exit with the distinct code 4.
func TestDaemonDoubleSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin,
		"-inject", "slow-client:job=*,delay=10s",
		"-drain-timeout", "30s", "-q")

	go d.client.Analyze(service.JobRequest{File: "stuck.mj", Source: cleanProg})
	d.waitMetric(t, "sessions_active", func(v int64) bool { return v >= 1 })

	d.cmd.Process.Signal(syscall.SIGTERM)
	time.Sleep(100 * time.Millisecond) // let the drain start
	d.cmd.Process.Signal(syscall.SIGTERM)
	if code := d.waitExit(t, 10*time.Second); code != 4 {
		t.Fatalf("double-signal exit = %d, want 4\n%s", code, d.tail())
	}
}
