package main

import (
	"os/exec"
	"strings"
	"testing"
)

// exitCode extracts the subprocess exit code from exec's error.
func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("not an exit error: %v", err)
	return -1
}

// TestFlagValidation: every usage error must exit 3 (distinct from
// drain outcomes 0/2 and forced exit 4) with a diagnostic on stderr.
func TestFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildDaemon(t)

	cases := []struct {
		name string
		args []string
		want string // stderr fragment
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"bad inject spec", []string{"-inject", "session-panic:job=banana"}, "-inject"},
		{"unknown fault kind", []string{"-inject", "meteor-strike:shard=1"}, "-inject"},
		{"positional arg", []string{"prog.mj"}, "unexpected argument"},
		{"bad listen address", []string{"-listen", "127.0.0.1:notaport"}, "listen"},
		{"bad duration", []string{"-job-timeout", "fast"}, "invalid value"},
		{"bad max-trace-bytes", []string{"-max-trace-bytes", "lots"}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			if code := exitCode(t, err); code != 3 {
				t.Fatalf("exit = %d, want 3\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}
}
