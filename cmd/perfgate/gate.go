package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"racedet/internal/bench"
)

func loadReport(path string) (*bench.JSONReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bench.ReadJSON(f)
}

// row is one (benchmark, config) comparison between the two artifacts.
type row struct {
	Benchmark string
	Config    string
	BaseNs    int64
	CurNs     int64
	Gated     bool
	Missing   bool // cell present in the baseline but not measured now
}

// Ratio is current/baseline ns/op; 1.0 means unchanged, 1.30 means 30%
// slower than the baseline.
func (r row) Ratio() float64 { return float64(r.CurNs) / float64(r.BaseNs) }

// compare walks every cell of the baseline and looks it up in the
// current artifact. A gated cell missing from the current artifact is
// a violation (a gate that silently skips cells protects nothing), as
// is a gated cell whose ns/op grew beyond the threshold.
//
// Degenerate artifacts downgrade to warnings instead of blowing up
// the gate: a baseline cell with no measurement (ns/op <= 0, e.g. a
// hand-edited or truncated baseline) is skipped with a warning rather
// than producing an infinite ratio; cells that exist only in the
// current artifact are reported as warnings (adding a configuration
// must not require regenerating the baseline first, but the gap
// should be visible); and a gated configuration with zero usable
// baseline cells is warned about, because a gate with nothing to
// compare against protects nothing.
func compare(base, cur *bench.JSONReport, gated map[string]bool, threshold float64) (rows []row, violations, warnings []string) {
	curNs := make(map[string]int64, len(cur.Results))
	for _, r := range cur.Results {
		curNs[r.Benchmark+"/"+r.Config] = r.NsPerOp
	}
	baseSeen := make(map[string]bool, len(base.Results))
	gatedCells := make(map[string]int, len(gated))
	for _, b := range base.Results {
		key := b.Benchmark + "/" + b.Config
		baseSeen[key] = true
		if b.NsPerOp <= 0 {
			warnings = append(warnings,
				fmt.Sprintf("%s: baseline has no measurement (ns/op=%d); cell skipped", key, b.NsPerOp))
			continue
		}
		r := row{
			Benchmark: b.Benchmark,
			Config:    b.Config,
			BaseNs:    b.NsPerOp,
			Gated:     gated[b.Config],
		}
		if r.Gated {
			gatedCells[b.Config]++
		}
		ns, ok := curNs[key]
		if !ok {
			r.Missing = true
			if r.Gated {
				violations = append(violations,
					fmt.Sprintf("%s: gated cell missing from current artifact", key))
			}
		} else {
			r.CurNs = ns
			if r.Gated && r.Ratio() > 1+threshold {
				violations = append(violations,
					fmt.Sprintf("%s: %d -> %d ns/op (%.2fx, limit %.2fx)",
						key, r.BaseNs, r.CurNs, r.Ratio(), 1+threshold))
			}
		}
		rows = append(rows, r)
	}
	gatedNames := make([]string, 0, len(gated))
	for c := range gated {
		gatedNames = append(gatedNames, c)
	}
	sort.Strings(gatedNames)
	for _, c := range gatedNames {
		if gatedCells[c] == 0 {
			warnings = append(warnings,
				fmt.Sprintf("gated config %q has no usable baseline cells; the gate cannot protect it", c))
		}
	}
	for _, r := range cur.Results {
		if key := r.Benchmark + "/" + r.Config; !baseSeen[key] {
			warnings = append(warnings,
				fmt.Sprintf("%s: present only in current artifact (no baseline, not gated)", key))
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Gated != rows[j].Gated {
			return rows[i].Gated
		}
		if rows[i].Benchmark != rows[j].Benchmark {
			return rows[i].Benchmark < rows[j].Benchmark
		}
		return rows[i].Config < rows[j].Config
	})
	return rows, violations, warnings
}

func countGated(rows []row) int {
	n := 0
	for _, r := range rows {
		if r.Gated {
			n++
		}
	}
	return n
}

func printRows(w io.Writer, rows []row) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tconfig\tbaseline ns/op\tcurrent ns/op\tratio\tgated")
	for _, r := range rows {
		gate := ""
		if r.Gated {
			gate = "*"
		}
		if r.Missing {
			fmt.Fprintf(tw, "%s\t%s\t%d\t(missing)\t\t%s\n", r.Benchmark, r.Config, r.BaseNs, gate)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2fx\t%s\n", r.Benchmark, r.Config, r.BaseNs, r.CurNs, r.Ratio(), gate)
	}
	tw.Flush()
}
