package main

import (
	"strings"
	"testing"

	"racedet/internal/bench"
)

func report(cells ...bench.JSONResult) *bench.JSONReport {
	return &bench.JSONReport{Results: cells}
}

func cell(b, c string, ns int64) bench.JSONResult {
	return bench.JSONResult{Benchmark: b, Config: c, NsPerOp: ns}
}

var gateConfigs = map[string]bool{"Full": true, "FullSharded4Batched64": true}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := report(
		cell("mtrt", "Full", 1000),
		cell("mtrt", "FullSharded4Batched64", 1100),
		cell("mtrt", "Empty", 100),
	)
	cur := report(
		cell("mtrt", "Full", 1240),                  // +24%, inside 25%
		cell("mtrt", "FullSharded4Batched64", 1000), // improvement
		cell("mtrt", "Empty", 900),                  // 9x, but not gated
	)
	rows, violations := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	if got := countGated(rows); got != 2 {
		t.Errorf("countGated = %d, want 2", got)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := report(cell("tsp", "Full", 1000), cell("tsp", "FullSharded4Batched64", 1000))
	cur := report(cell("tsp", "Full", 1300), cell("tsp", "FullSharded4Batched64", 990))
	_, violations := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly one (tsp/Full)", violations)
	}
	if !strings.Contains(violations[0], "tsp/Full") || !strings.Contains(violations[0], "1.30x") {
		t.Errorf("violation message %q missing cell or ratio", violations[0])
	}
}

func TestGateFailsOnMissingGatedCell(t *testing.T) {
	base := report(cell("sor", "Full", 1000), cell("sor", "FullSharded4Batched64", 1000))
	cur := report(cell("sor", "Full", 1000)) // sharded cell absent
	_, violations := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 1 || !strings.Contains(violations[0], "missing") {
		t.Fatalf("violations = %v, want one missing-cell violation", violations)
	}
}

func TestGateIgnoresExtraCurrentCells(t *testing.T) {
	base := report(cell("hedc", "Full", 1000))
	cur := report(cell("hedc", "Full", 1000), cell("hedc", "FullSharded8Batched64", 9999))
	rows, violations := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1 (extra current-only cells ignored)", len(rows))
	}
}

func TestReadJSONRejectsEmpty(t *testing.T) {
	if _, err := bench.ReadJSON(strings.NewReader(`{"results": []}`)); err == nil {
		t.Error("ReadJSON accepted a report with no results")
	}
	if _, err := bench.ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("ReadJSON accepted malformed input")
	}
}
