package main

import (
	"strings"
	"testing"

	"racedet/internal/bench"
)

func report(cells ...bench.JSONResult) *bench.JSONReport {
	return &bench.JSONReport{Results: cells}
}

func cell(b, c string, ns int64) bench.JSONResult {
	return bench.JSONResult{Benchmark: b, Config: c, NsPerOp: ns}
}

var gateConfigs = map[string]bool{"Full": true, "FullSharded4Batched64": true}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := report(
		cell("mtrt", "Full", 1000),
		cell("mtrt", "FullSharded4Batched64", 1100),
		cell("mtrt", "Empty", 100),
	)
	cur := report(
		cell("mtrt", "Full", 1240),                  // +24%, inside 25%
		cell("mtrt", "FullSharded4Batched64", 1000), // improvement
		cell("mtrt", "Empty", 900),                  // 9x, but not gated
	)
	rows, violations, warnings := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
	if got := countGated(rows); got != 2 {
		t.Errorf("countGated = %d, want 2", got)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	base := report(cell("tsp", "Full", 1000), cell("tsp", "FullSharded4Batched64", 1000))
	cur := report(cell("tsp", "Full", 1300), cell("tsp", "FullSharded4Batched64", 990))
	_, violations, _ := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly one (tsp/Full)", violations)
	}
	if !strings.Contains(violations[0], "tsp/Full") || !strings.Contains(violations[0], "1.30x") {
		t.Errorf("violation message %q missing cell or ratio", violations[0])
	}
}

func TestGateFailsOnMissingGatedCell(t *testing.T) {
	base := report(cell("sor", "Full", 1000), cell("sor", "FullSharded4Batched64", 1000))
	cur := report(cell("sor", "Full", 1000)) // sharded cell absent
	_, violations, _ := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 1 || !strings.Contains(violations[0], "missing") {
		t.Fatalf("violations = %v, want one missing-cell violation", violations)
	}
}

func TestGateWarnsOnExtraCurrentCells(t *testing.T) {
	base := report(cell("hedc", "Full", 1000), cell("hedc", "FullSharded4Batched64", 1000))
	cur := report(
		cell("hedc", "Full", 1000),
		cell("hedc", "FullSharded4Batched64", 1000),
		cell("hedc", "FullSharded8Batched64", 9999),
	)
	rows, violations, warnings := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %d, want 2 (current-only cells are not compared)", len(rows))
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "hedc/FullSharded8Batched64") {
		t.Errorf("warnings = %v, want one naming the current-only cell", warnings)
	}
}

func TestGateWarnsOnUnmeasuredBaselineCell(t *testing.T) {
	// A baseline edited or truncated by hand can carry cells without a
	// measurement; those must be skipped with a warning, never produce
	// an infinite ratio or a panic.
	base := report(
		cell("moldyn", "Full", 0), // missing ns/op key in the JSON
		cell("moldyn", "FullSharded4Batched64", 1000),
	)
	cur := report(
		cell("moldyn", "Full", 1200),
		cell("moldyn", "FullSharded4Batched64", 1000),
	)
	rows, violations, warnings := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1 (unmeasured baseline cell skipped)", len(rows))
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, "moldyn/Full") && strings.Contains(w, "no measurement") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v, want one about moldyn/Full's missing measurement", warnings)
	}
}

func TestGateWarnsOnUncoveredGatedConfig(t *testing.T) {
	// The baseline has zero usable cells for a gated config (here the
	// sharded one): the gate cannot protect it and must say so.
	base := report(cell("crypt", "Full", 1000), cell("crypt", "FullSharded4Batched64", 0))
	cur := report(cell("crypt", "Full", 1000))
	_, violations, warnings := compare(base, cur, gateConfigs, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	found := false
	for _, w := range warnings {
		if strings.Contains(w, `"FullSharded4Batched64"`) && strings.Contains(w, "cannot protect") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v, want one about the uncovered gated config", warnings)
	}
}

func TestReadJSONRejectsEmpty(t *testing.T) {
	if _, err := bench.ReadJSON(strings.NewReader(`{"results": []}`)); err == nil {
		t.Error("ReadJSON accepted a report with no results")
	}
	if _, err := bench.ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("ReadJSON accepted malformed input")
	}
}
