// Command perfgate is the CI performance-regression gate. It compares
// a freshly measured racebench -json artifact against the checked-in
// baseline (BENCH_PR10.json) and fails if any gated configuration got
// more than -threshold slower (ns/op) on any benchmark.
//
// Only the configurations named by -configs are gated — by default the
// serial Full detector, the sharded+batched back end, the
// StaticAnalysis pseudo-configuration (compile-phase ns/op, so the
// interprocedural analyses cannot silently blow up compile time),
// ReplayFull (trace-replay throughput, so the record-once/analyze-many
// path cannot silently lose its speed advantage), and
// FullSampledAdaptive (the bounded-overhead production mode, so
// throttling cannot silently lose its suppression), and
// FullSampledPriors (the adaptive mode seeded with static
// lock-discipline tiers, so the prior plumbing cannot silently become
// a per-event tax). The remaining
// configurations are reported but never fail the gate, because on a
// noisy shared runner gating every ablation would make the gate cry
// wolf.
//
// Usage:
//
//	racebench -json fresh.json -benchreps 3
//	perfgate -baseline BENCH_PR10.json -current fresh.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_PR10.json", "checked-in racebench -json artifact to compare against")
		current   = flag.String("current", "", "freshly measured racebench -json artifact (required)")
		threshold = flag.Float64("threshold", 0.25, "maximum tolerated ns/op regression ratio of a gated configuration")
		configs   = flag.String("configs", "Full,FullSharded4Batched64,StaticAnalysis,ReplayFull,FullSampledAdaptive,FullSampledPriors", "comma-separated configuration names that fail the gate on regression")
	)
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		os.Exit(3)
	}
	if *current == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -current is required")
		os.Exit(3)
	}
	if *threshold <= 0 {
		fmt.Fprintf(os.Stderr, "perfgate: -threshold must be > 0 (got %g)\n", *threshold)
		os.Exit(3)
	}

	base, err := loadReport(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	cur, err := loadReport(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	gated := map[string]bool{}
	for _, c := range strings.Split(*configs, ",") {
		if c = strings.TrimSpace(c); c != "" {
			gated[c] = true
		}
	}

	rows, violations, warnings := compare(base, cur, gated, *threshold)
	printRows(os.Stdout, rows)
	for _, w := range warnings {
		fmt.Fprintf(os.Stderr, "perfgate: warning: %s\n", w)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "perfgate: %d regression(s) beyond %.0f%%:\n", len(violations), *threshold*100)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Printf("perfgate: ok (%d gated cells within %.0f%%)\n", countGated(rows), *threshold*100)
}
