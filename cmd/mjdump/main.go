// Command mjdump inspects the MJ toolchain's intermediate artifacts
// for a program: tokens, AST, IR (before/after instrumentation),
// points-to sets, the interthread call graph, escape classification,
// and the static datarace set.
//
// Usage:
//
//	mjdump -ir program.mj
//	mjdump -raceset -pointsto program.mj
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"racedet/internal/core"
	"racedet/internal/lang/ast"
	"racedet/internal/lang/lexer"
)

func main() {
	var (
		tokens   = flag.Bool("tokens", false, "dump the token stream")
		dumpAST  = flag.Bool("ast", false, "dump the (possibly peeled) AST as source")
		dumpIR   = flag.Bool("ir", false, "dump the instrumented IR of every function")
		pointsTo = flag.Bool("pointsto", false, "dump may points-to sets of abstract objects")
		raceSet  = flag.Bool("raceset", false, "dump the static datarace set and pruning stats")
		icgDump  = flag.Bool("icg", false, "dump the interthread call graph analyses")
		facts    = flag.Bool("facts", false, "dump the per-access-site keep/kill report of the static phase")
		tiers    = flag.Bool("discipline", false, "dump the severity-ranked lock-discipline pair report")
		noOpt    = flag.Bool("noopt", false, "disable peeling and the static weaker-than elimination")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mjdump [flags] program.mj")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file := flag.Arg(0)
	srcBytes, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mjdump:", err)
		os.Exit(1)
	}
	src := string(srcBytes)

	if *tokens {
		toks, errs := lexer.ScanAll(file, src)
		for _, t := range toks {
			fmt.Printf("%-16s %s\n", t.Pos, t)
		}
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "mjdump:", e)
		}
		if !*dumpAST && !*dumpIR && !*pointsTo && !*raceSet && !*icgDump && !*facts && !*tiers {
			return
		}
	}

	cfg := core.Full()
	if *noOpt {
		cfg = cfg.NoDominators()
	}
	pipe, err := core.Compile(file, src, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mjdump:", err)
		os.Exit(1)
	}

	if *dumpAST {
		ast.Fprint(os.Stdout, pipe.AST)
	}
	if *dumpIR {
		for _, fn := range pipe.Prog.Funcs {
			fmt.Println(fn.String())
		}
	}
	if *pointsTo {
		for _, o := range pipe.Pts.Objects() {
			fmt.Printf("obj %-30s single=%v escaped=%v\n", o, o.SingleInstance, pipe.Esc.Escaped(o))
		}
	}
	if *icgDump {
		names := make([]string, 0, len(pipe.Prog.Funcs))
		byName := map[string]int{}
		for i, fn := range pipe.Prog.Funcs {
			names = append(names, fn.Name)
			byName[fn.Name] = i
		}
		sort.Strings(names)
		for _, name := range names {
			fn := pipe.Prog.Funcs[byName[name]]
			fmt.Printf("fn %-30s mustThread=%v roots=%v\n", fn.Name, pipe.ICG.MustThreadOf(fn).Sorted(), pipe.ICG.ReachingRoots(fn))
		}
	}
	if *facts {
		fmt.Print(pipe.FactsReport())
	}
	if *tiers {
		fmt.Print(pipe.DisciplineReport())
	}
	if *raceSet {
		if pipe.Static == nil {
			fmt.Println("static analysis disabled")
			return
		}
		fmt.Printf("access sites: %d, in race set: %d\n", len(pipe.Static.Sites), len(pipe.Static.InRaceSet))
		fmt.Printf("pruned: thread-local=%d same-thread=%d common-sync=%d\n",
			pipe.Static.PrunedThreadLocal, pipe.Static.PrunedSameThread, pipe.Static.PrunedCommonSync)
		fmt.Printf("instrumentation: inserted=%d eliminated=%d peeled=%d\n",
			pipe.InstrStats.Inserted, pipe.InstrStats.Eliminated, pipe.InstrStats.LoopsPeeled)
		for _, pair := range pipe.Static.Pairs {
			fmt.Printf("may-race: %s <-> %s\n", pair[0], pair[1])
		}
	}
}
