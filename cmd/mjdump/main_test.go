package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestMjdumpCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "mjdump")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	prog := filepath.Join(t.TempDir(), "p.mj")
	src := `
class Data { int f; }
class W extends Thread {
    Data d;
    W(Data d0) { d = d0; }
    void run() { d.f = d.f + 1; }
}
class Main {
    static void main() {
        Data x = new Data();
        W a = new W(x);
        W b = new W(x);
        a.start(); b.start(); a.join(); b.join();
        print(x.f);
    }
}`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"-tokens":   {"class", "IDENT"},
		"-ast":      {"class Main {", "extends Thread"},
		"-ir":       {"func Main.main", "trace", "start", "join"},
		"-pointsto": {"Data@", "escaped=true"},
		"-icg":      {"mustThread", "W.run"},
		"-raceset":  {"may-race", "Data.f"},
	}
	for flag, wants := range cases {
		out, err := exec.Command(bin, flag, prog).CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", flag, err, out)
		}
		for _, w := range wants {
			if !strings.Contains(string(out), w) {
				t.Errorf("%s output missing %q:\n%s", flag, w, out)
			}
		}
	}
}
