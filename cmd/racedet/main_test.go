package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the racedet binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "racedet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const racyProg = `
class Data { int f; }
class Worker extends Thread {
    Data d;
    Worker(Data d0) { d = d0; }
    void run() { d.f = d.f + 1; }
}
class Main {
    static void main() {
        Data x = new Data();
        x.f = 0;
        Worker a = new Worker(x);
        Worker b = new Worker(x);
        a.start(); b.start(); a.join(); b.join();
        print(x.f);
    }
}`

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mj")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)

	// Racy program: exit code 1, report on stdout.
	out, err := exec.Command(bin, "-q", "-stats", prog).CombinedOutput()
	if err == nil {
		t.Fatalf("racy program should exit non-zero\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v, want 1\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "datarace on Data.f") {
		t.Errorf("missing race report:\n%s", text)
	}
	if !strings.Contains(text, "stats:") || !strings.Contains(text, "static:") {
		t.Errorf("missing -stats output:\n%s", text)
	}

	// Record + replay round trip.
	log := filepath.Join(t.TempDir(), "events.log")
	out, _ = exec.Command(bin, "-q", "-record", log, prog).CombinedOutput()
	if _, err := os.Stat(log); err != nil {
		t.Fatalf("no event log written: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "-replay", log).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("replay exit = %v, want 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "datarace on Data.f") {
		t.Errorf("replay missing report:\n%s", out)
	}
	out, err = exec.Command(bin, "-replay", log, "-fullrace").CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("fullrace exit = %v, want 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "racing pair") {
		t.Errorf("fullrace missing pairs:\n%s", out)
	}

	// Baseline detector flag.
	out, _ = exec.Command(bin, "-q", "-detector", "eraser", prog).CombinedOutput()
	if !strings.Contains(string(out), "ERASER RACE") {
		t.Errorf("eraser flag broken:\n%s", out)
	}

	// Unknown detector: usage error.
	if err := exec.Command(bin, "-detector", "bogus", prog).Run(); err == nil {
		t.Error("unknown detector must fail")
	}

	// Quiet, race-free program: exit 0.
	quiet := writeProg(t, strings.Replace(racyProg,
		"void run() { d.f = d.f + 1; }",
		"void run() { synchronized (d) { d.f = d.f + 1; } }", 1))
	if out, err := exec.Command(bin, "-q", quiet).CombinedOutput(); err != nil {
		t.Fatalf("quiet program should exit 0: %v\n%s", err, out)
	}
}

func TestCLIDeadlockFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, `
class Lock { int pad; }
class W extends Thread {
    Lock p; Lock q; int n;
    W(Lock p0, Lock q0) { p = p0; q = q0; }
    void run() {
        synchronized (p) { synchronized (q) { n = n + 1; } }
    }
}
class Main {
    static void main() {
        Lock a = new Lock();
        Lock b = new Lock();
        W w1 = new W(a, b);
        W w2 = new W(b, a);
        w1.start(); w1.join();
        w2.start(); w2.join();
        print(w1.n + w2.n);
    }
}`)
	out, _ := exec.Command(bin, "-q", "-deadlock", prog).CombinedOutput()
	if !strings.Contains(string(out), "POTENTIAL DEADLOCK") {
		t.Errorf("deadlock flag broken:\n%s", out)
	}
}
