package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run executes the built CLI and returns combined output + exit code.
func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("racedet %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out), ee.ExitCode()
}

// stripStaticHints drops the "may race with code at ..." lines, which
// come from the compile-time static analysis and are deliberately not
// part of the recorded event trace.
func stripStaticHints(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "may race with code at") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestCLITraceRoundTrip is the record-once/analyze-many contract at
// the CLI level: -record prog.mjtrace captures the run, and
// -replay-trace reproduces its race reports byte for byte (modulo
// static hints) through the serial and the sharded back end, plus an
// -ablate sweep, all without re-running the program.
func TestCLITraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)
	tracePath := filepath.Join(t.TempDir(), "run.mjtrace")

	liveOut, liveCode := run(t, bin, "-q", "-record", tracePath, prog)
	if liveCode != exitRaces {
		t.Fatalf("live run exit = %d, want %d\n%s", liveCode, exitRaces, liveOut)
	}
	if st, err := os.Stat(tracePath); err != nil || st.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	want := stripStaticHints(liveOut)

	for _, extra := range [][]string{
		nil,
		{"-shards", "4"},
		{"-shards", "2", "-batch", "64"},
		{"-replay-workers", "2"},
	} {
		args := append([]string{"-replay-trace", tracePath}, extra...)
		got, code := run(t, bin, args...)
		if code != exitRaces {
			t.Fatalf("%v: exit = %d, want %d\n%s", extra, code, exitRaces, got)
		}
		if got != want {
			t.Errorf("%v: replay output differs from live:\n--- live\n%s\n--- replay\n%s", extra, want, got)
		}
	}

	// Ablation sweep: one process, several configurations.
	got, code := run(t, bin, "-replay-trace", tracePath, "-ablate", "Full,NoCache,Sharded2")
	if code != exitRaces {
		t.Fatalf("-ablate exit = %d, want %d\n%s", code, exitRaces, got)
	}
	for _, marker := range []string{"== Full ==", "== NoCache ==", "== Sharded2 =="} {
		if !strings.Contains(got, marker) {
			t.Errorf("-ablate output missing %q:\n%s", marker, got)
		}
	}
	if strings.Count(got, "datarace on Data.f") != 3 {
		t.Errorf("-ablate should report the race in all three configs:\n%s", got)
	}

	// Unknown ablation name: usage error.
	got, code = run(t, bin, "-replay-trace", tracePath, "-ablate", "NoSuchConfig")
	if code != exitInternal || !strings.Contains(got, "unknown ablation") {
		t.Errorf("bad ablation: exit = %d, out:\n%s", code, got)
	}
}

// TestCLITraceCorrupt pins the hardening contract end to end: a
// missing, truncated, or not-a-trace file fed to -replay-trace is a
// clean structured failure with exit 3 — never a panic, never a bogus
// verdict.
func TestCLITraceCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.mjtrace")
	if out, code := run(t, bin, "-q", "-record", tracePath, prog); code != exitRaces {
		t.Fatalf("recording run exit = %d\n%s", code, out)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		bytes []byte
		want  string
	}{
		{"truncated", data[:len(data)/2], "truncated or unfinalized"},
		{"bad magic", []byte(strings.Repeat("this is not a trace file. ", 4)), "bad magic"},
		{"empty", nil, "too small"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name)
			if err := os.WriteFile(p, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			out, code := run(t, bin, "-replay-trace", p)
			if code != exitInternal {
				t.Fatalf("exit = %d, want %d\n%s", code, exitInternal, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
			if strings.Contains(out, "panic") {
				t.Errorf("corrupt trace caused a panic:\n%s", out)
			}
		})
	}

	if out, code := run(t, bin, "-replay-trace", filepath.Join(dir, "missing.mjtrace")); code != exitInternal {
		t.Errorf("missing file: exit = %d, want %d\n%s", code, exitInternal, out)
	}
}
