package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// schedDepProg hides its race behind a publication window: the racing
// write only executes when Racer samples the flag before Setter
// publishes it, which the fixed round-robin schedule never does. See
// internal/corpus/testdata/racy_publish_window.mj.
const schedDepProg = `
class Shared { int flag; int data; }
class Mutex { int x; }
class Setter extends Thread {
    Shared s; Mutex m;
    Setter(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        synchronized (m) { s.flag = 1; }
        s.data = 2;
    }
}
class Racer extends Thread {
    Shared s; Mutex m;
    Racer(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        int f;
        synchronized (m) { f = s.flag; }
        if (f == 0) { s.data = 1; }
    }
}
class Main {
    static void main() {
        Shared s = new Shared();
        Mutex m = new Mutex();
        s.data = 0;
        Setter a = new Setter(s, m);
        Racer b = new Racer(s, m);
        a.start(); b.start(); a.join(); b.join();
        print(s.data);
    }
}`

const deadlockProg = `
class A { int f; }
class W extends Thread {
    A p; A q;
    W(A p0, A q0) { p = p0; q = q0; }
    void run() {
        for (int i = 0; i < 200; i++) {
            synchronized (p) { synchronized (q) { p.f = p.f + 1; } }
        }
    }
}
class Main {
    static void main() {
        A x = new A(); A y = new A();
        W a = new W(x, y); W b = new W(y, x);
        a.start(); b.start(); a.join(); b.join();
    }
}`

const spinProg = `
class Flag { int go; }
class Spinner extends Thread {
    Flag f;
    Spinner(Flag f0) { f = f0; }
    void run() { while (f.go == 0) { int x = 1; } }
}
class Main {
    static void main() {
        Flag f = new Flag();
        Spinner s = new Spinner(f);
        s.start(); s.join();
    }
}`

func exitCode(t *testing.T, err error, out []byte) int {
	t.Helper()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("command did not run: %v\n%s", err, out)
	}
	return ee.ExitCode()
}

// TestCLIExitCodes pins the exit-code contract: 0 = clean, 1 = races,
// 2 = execution failure, 3 = internal failure.
func TestCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)

	// 0: clean program.
	clean := writeProg(t, strings.Replace(racyProg,
		"void run() { d.f = d.f + 1; }",
		"void run() { synchronized (d) { d.f = d.f + 1; } }", 1))
	out, err := exec.Command(bin, "-q", clean).CombinedOutput()
	if code := exitCode(t, err, out); code != 0 {
		t.Errorf("clean program: exit %d, want 0\n%s", code, out)
	}

	// 1: racy program.
	racy := writeProg(t, racyProg)
	out, err = exec.Command(bin, "-q", racy).CombinedOutput()
	if code := exitCode(t, err, out); code != 1 {
		t.Errorf("racy program: exit %d, want 1\n%s", code, out)
	}

	// 2: deadlocking program (execution failure, with a thread dump).
	// Seed 1 with a short quantum interleaves the two lock acquisitions.
	dead := writeProg(t, deadlockProg)
	out, err = exec.Command(bin, "-q", "-seed", "1", "-quantum", "3", dead).CombinedOutput()
	if code := exitCode(t, err, out); code != 2 {
		t.Errorf("deadlocking program: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "deadlock") || !strings.Contains(string(out), "blocked") {
		t.Errorf("deadlock diagnostic lacks structure:\n%s", out)
	}

	// 2: livelocking program cut short by the livelock heuristic.
	spin := writeProg(t, spinProg)
	out, err = exec.Command(bin, "-q", "-livelock", "500", spin).CombinedOutput()
	if code := exitCode(t, err, out); code != 2 {
		t.Errorf("livelocking program: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "livelock") {
		t.Errorf("missing livelock diagnostic:\n%s", out)
	}

	// 3: internal failures — no args, missing file, compile error.
	out, err = exec.Command(bin).CombinedOutput()
	if code := exitCode(t, err, out); code != 3 {
		t.Errorf("usage error: exit %d, want 3\n%s", code, out)
	}
	out, err = exec.Command(bin, filepath.Join(t.TempDir(), "missing.mj")).CombinedOutput()
	if code := exitCode(t, err, out); code != 3 {
		t.Errorf("missing file: exit %d, want 3\n%s", code, out)
	}
	broken := writeProg(t, "class Main { static void main() { this is not mj } }")
	out, err = exec.Command(bin, "-q", broken).CombinedOutput()
	if code := exitCode(t, err, out); code != 3 {
		t.Errorf("compile error: exit %d, want 3\n%s", code, out)
	}
	out, err = exec.Command(bin, "-no-such-flag", racy).CombinedOutput()
	if code := exitCode(t, err, out); code != 3 {
		t.Errorf("unknown flag: exit %d, want 3\n%s", code, out)
	}
}

// TestCLIBoundedMemoryStats drives the degradation caps from the
// command line and checks the degraded: counters surface in -stats.
func TestCLIBoundedMemoryStats(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)
	out, err := exec.Command(bin, "-q", "-stats",
		"-max-trie-nodes", "1", "-max-cache-threads", "1", "-max-owner-locations", "1",
		prog).CombinedOutput()
	if code := exitCode(t, err, out); code != 1 {
		t.Fatalf("bounded run: exit %d, want 1 (must still report)\n%s", code, out)
	}
	if !strings.Contains(string(out), "degraded:") {
		t.Errorf("tiny bounds produced no degraded: stats line:\n%s", out)
	}
}

// TestCLIFuzzReplayDeterminism is the end-to-end acceptance flow: the
// fixed schedule misses the race, -fuzz 16 finds it and emits a
// witness trace, and five consecutive -replay-schedule runs reproduce
// the identical race at the identical source position.
func TestCLIFuzzReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, schedDepProg)

	// Baseline: the default schedule reports nothing.
	out, err := exec.Command(bin, "-q", prog).CombinedOutput()
	if code := exitCode(t, err, out); code != 0 {
		t.Fatalf("fixed schedule already reports the race (exit %d):\n%s", code, out)
	}

	// Fuzz finds it and classifies it schedule-dependent.
	traceDir := t.TempDir()
	out, err = exec.Command(bin, "-fuzz", "16", "-trace-dir", traceDir, prog).CombinedOutput()
	if code := exitCode(t, err, out); code != 1 {
		t.Fatalf("fuzz: exit %d, want 1\n%s", code, out)
	}
	text := string(out)
	if !strings.Contains(text, "datarace on Shared.data") {
		t.Fatalf("fuzz missed the race:\n%s", text)
	}
	if !strings.Contains(text, "SCHEDULE-DEPENDENT") {
		t.Fatalf("race not classified schedule-dependent:\n%s", text)
	}
	trace := filepath.Join(traceDir, "Shared.data.mjsched")
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("witness trace not written: %v\n%s", err, text)
	}

	// Five consecutive replays: identical report, identical position.
	raceLine := func(out []byte) string {
		for _, line := range strings.Split(string(out), "\n") {
			if strings.Contains(line, "datarace on Shared.data") {
				return line
			}
		}
		return ""
	}
	var want string
	for i := 0; i < 5; i++ {
		out, err = exec.Command(bin, "-q", "-replay-schedule", trace, prog).CombinedOutput()
		if code := exitCode(t, err, out); code != 1 {
			t.Fatalf("replay %d: exit %d, want 1\n%s", i, code, out)
		}
		line := raceLine(out)
		if line == "" {
			t.Fatalf("replay %d did not reproduce the race:\n%s", i, out)
		}
		if i == 0 {
			want = line
		} else if line != want {
			t.Fatalf("replay %d diverged:\n  %s\nvs\n  %s", i, line, want)
		}
	}
	if !strings.Contains(want, schedDepProgPos(t, bin, prog, trace)) {
		t.Fatalf("replayed race line lacks a stable source position: %q", want)
	}
}

// schedDepProgPos extracts the reported source position from one more
// replay, cross-checking that the line carries a file:line:col.
func schedDepProgPos(t *testing.T, bin, prog, trace string) string {
	t.Helper()
	out, _ := exec.Command(bin, "-q", "-replay-schedule", trace, prog).CombinedOutput()
	idx := bytes.Index(out, []byte("prog.mj:"))
	if idx < 0 {
		t.Fatalf("no source position in replay output:\n%s", out)
	}
	end := idx
	for end < len(out) && out[end] != ' ' && out[end] != '\n' && out[end] != ';' {
		end++
	}
	return string(out[idx:end])
}

// TestCLIScheduleRoundTrip records a schedule with -schedule-out and
// replays it with -replay-schedule, expecting identical output.
func TestCLIScheduleRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)
	trace := filepath.Join(t.TempDir(), "run.mjsched")

	out1, err := exec.Command(bin, "-seed", "9", "-schedule-out", trace, prog).CombinedOutput()
	if code := exitCode(t, err, out1); code != 1 {
		t.Fatalf("record run: exit %d\n%s", code, out1)
	}
	data, err := os.ReadFile(trace)
	if err != nil || !bytes.HasPrefix(data, []byte("mjsched 1 ")) {
		t.Fatalf("bad schedule trace (%v): %q", err, data)
	}
	out2, err := exec.Command(bin, "-replay-schedule", trace, prog).CombinedOutput()
	if code := exitCode(t, err, out2); code != 1 {
		t.Fatalf("replay run: exit %d\n%s", code, out2)
	}
	if !bytes.Equal(out1, out2) {
		t.Errorf("replay output differs:\n%s\nvs\n%s", out1, out2)
	}

	// A corrupt trace is an internal failure, not a crash.
	bad := filepath.Join(t.TempDir(), "bad.mjsched")
	os.WriteFile(bad, []byte("not a trace\n"), 0o644)
	out3, err := exec.Command(bin, "-q", "-replay-schedule", bad, prog).CombinedOutput()
	if code := exitCode(t, err, out3); code != 3 {
		t.Errorf("corrupt trace: exit %d, want 3\n%s", code, out3)
	}
}

// TestCLITimeoutFlag checks the wall-clock watchdog on a productive
// infinite loop the livelock heuristic cannot catch.
func TestCLITimeoutFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, `
class Cell { int v; }
class Main {
    static void main() {
        Cell c = new Cell();
        while (true) { c.v = c.v + 1; }
    }
}`)
	out, err := exec.Command(bin, "-q", "-timeout", "100ms", prog).CombinedOutput()
	if code := exitCode(t, err, out); code != 2 {
		t.Fatalf("timeout: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "watchdog") {
		t.Errorf("missing watchdog diagnostic:\n%s", out)
	}
}

// TestCLIWatchdogPartialReport: a program that races and then hangs
// must still print the races it produced before the watchdog fired —
// an aborted analysis keeps its partial verdicts — and then exit 2.
func TestCLIWatchdogPartialReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, strings.Replace(racyProg,
		"print(x.f);",
		"print(x.f); while (true) { x.f = x.f + 1; }", 1))

	out, err := exec.Command(bin, "-q", "-timeout", "100ms", prog).CombinedOutput()
	text := string(out)
	if code := exitCode(t, err, out); code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, text)
	}
	if !strings.Contains(text, "datarace on Data.f") {
		t.Errorf("partial race report lost on watchdog abort:\n%s", text)
	}
	if !strings.Contains(text, "partial report") {
		t.Errorf("missing partial-report summary line:\n%s", text)
	}
	if !strings.Contains(text, "watchdog") {
		t.Errorf("missing watchdog diagnostic:\n%s", text)
	}
}
