// Command racedet detects dataraces in an MJ program.
//
// Usage:
//
//	racedet [flags] program.mj
//
// The default configuration is the paper's full pipeline: static
// datarace analysis, optimized instrumentation with the static
// weaker-than relation and loop peeling, the runtime access cache, the
// ownership model, and the trie-based detector. Flags disable
// individual phases (matching the paper's Table 2/3 ablations) or
// switch to a baseline detector.
package main

import (
	"flag"
	"fmt"
	"os"

	"racedet"
)

func main() {
	var (
		detName    = flag.String("detector", "trie", "runtime detector: trie, eraser, objectrace, hb")
		noStatic   = flag.Bool("nostatic", false, "disable static datarace analysis (instrument everything)")
		noDom      = flag.Bool("nodominators", false, "disable static weaker-than elimination and loop peeling")
		noPeel     = flag.Bool("nopeeling", false, "disable loop peeling only")
		noCache    = flag.Bool("nocache", false, "disable the runtime access cache")
		noOwner    = flag.Bool("noownership", false, "disable the ownership model")
		noPseudo   = flag.Bool("nopseudolocks", false, "disable join pseudolocks")
		merged     = flag.Bool("fieldsmerged", false, "detect at object granularity")
		reportAll  = flag.Bool("all", false, "report every racing access, not one per location")
		seed       = flag.Int64("seed", 0, "scheduler seed (0 = fixed round-robin)")
		quantum    = flag.Int("quantum", 0, "scheduler preemption quantum in instructions")
		maxSteps   = flag.Uint64("maxsteps", 0, "instruction budget (0 = default 200M)")
		quiet      = flag.Bool("q", false, "suppress program output")
		showStats  = flag.Bool("stats", false, "print pipeline statistics")
		recordPath = flag.String("record", "", "write the event log to this file for post-mortem analysis")
		replayPath = flag.String("replay", "", "post-mortem: replay a recorded event log instead of running a program")
		fullRace   = flag.Bool("fullrace", false, "with -replay: reconstruct every racing access pair (O(N^2))")
		deadlocks  = flag.Bool("deadlock", false, "also run the lock-order potential-deadlock analysis")
		immut      = flag.Bool("immutability", false, "also classify shared fields as observed-immutable or mutable")
	)
	flag.Parse()

	if *replayPath != "" {
		replay(*replayPath, *fullRace)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedet [flags] program.mj")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		os.Exit(1)
	}

	var recordFile *os.File
	if *recordPath != "" {
		recordFile, err = os.Create(*recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racedet:", err)
			os.Exit(1)
		}
		defer recordFile.Close()
	}

	opts := racedet.Options{
		DisableStaticAnalysis:  *noStatic,
		DisableWeakerThan:      *noDom,
		DisablePeeling:         *noPeel,
		DisableCache:           *noCache,
		DisableOwnership:       *noOwner,
		DisableJoinPseudoLocks: *noPseudo,
		MergeFields:            *merged,
		ReportAllAccesses:      *reportAll,
		DetectDeadlocks:        *deadlocks,
		AnalyzeImmutability:    *immut,
		Seed:                   *seed,
		Quantum:                *quantum,
		MaxSteps:               *maxSteps,
	}
	if !*quiet {
		opts.Stdout = os.Stdout
	}
	if recordFile != nil {
		opts.RecordTo = recordFile
	}
	switch *detName {
	case "trie":
		opts.Detector = racedet.Trie
	case "eraser":
		opts.Detector = racedet.Eraser
	case "objectrace":
		opts.Detector = racedet.ObjectRace
	case "hb", "vclock":
		opts.Detector = racedet.HappensBefore
	default:
		fmt.Fprintf(os.Stderr, "racedet: unknown detector %q\n", *detName)
		os.Exit(2)
	}

	res, err := racedet.Detect(file, string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		os.Exit(1)
	}

	for _, r := range res.Races {
		fmt.Println(r)
		for _, p := range r.StaticPartners {
			fmt.Printf("    may race with code at %s\n", p)
		}
	}
	for _, r := range res.BaselineReports {
		fmt.Println(r)
	}
	for _, r := range res.PotentialDeadlocks {
		fmt.Println(r)
	}
	for _, r := range res.Immutability {
		fmt.Println(r)
	}
	if *showStats {
		s := res.Stats
		fmt.Printf("stats: threads=%d instructions=%d traceEvents=%d cacheHits=%d ownerSkips=%d trieEvents=%d trieNodes=%d\n",
			s.Threads, s.Instructions, s.TraceEvents, s.CacheHits, s.OwnerSkips, s.TrieEvents, s.TrieNodes)
		fmt.Printf("static: accessSites=%d raceSet=%d threadLocalPruned=%d traces=%d eliminated=%d peeled=%d\n",
			s.AccessSites, s.StaticRaceSet, s.ThreadLocalPruned, s.TracesInserted, s.TracesEliminated, s.LoopsPeeled)
	}
	n := res.RacyObjects
	switch {
	case n == 0 && len(res.BaselineReports) == 0:
		fmt.Fprintln(os.Stderr, "racedet: no dataraces detected")
	case n > 0:
		fmt.Fprintf(os.Stderr, "racedet: dataraces reported on %d object(s)\n", n)
		os.Exit(3)
	}
}

// replay performs post-mortem detection on a recorded event log.
func replay(path string, fullRace bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		os.Exit(1)
	}
	defer f.Close()

	if fullRace {
		pairs, err := racedet.FullRace(f, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racedet:", err)
			os.Exit(1)
		}
		for _, p := range pairs {
			fmt.Printf("%s\n  <races with>\n%s\n\n", p.First, p.Second)
		}
		fmt.Fprintf(os.Stderr, "racedet: %d racing pair(s) reconstructed\n", len(pairs))
		if len(pairs) > 0 {
			os.Exit(3)
		}
		return
	}

	res, err := racedet.Replay(f, racedet.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		os.Exit(1)
	}
	for _, r := range res.Races {
		fmt.Println(r)
	}
	if res.RacyObjects > 0 {
		fmt.Fprintf(os.Stderr, "racedet: dataraces reported on %d object(s)\n", res.RacyObjects)
		os.Exit(3)
	}
	fmt.Fprintln(os.Stderr, "racedet: no dataraces detected")
}
