// Command racedet detects dataraces in an MJ program.
//
// Usage:
//
//	racedet [flags] program.mj
//
// The default configuration is the paper's full pipeline: static
// datarace analysis, optimized instrumentation with the static
// weaker-than relation and loop peeling, the runtime access cache, the
// ownership model, and the trie-based detector. Flags disable
// individual phases (matching the paper's Table 2/3 ablations) or
// switch to a baseline detector.
//
// Schedule fuzzing (-fuzz N) runs the program under N scheduler seeds
// in parallel, unions the races, and classifies each as stable or
// schedule-dependent; -trace-dir saves each finding's witness schedule,
// and -replay-schedule re-executes one deterministically.
//
// Record once, analyze many: -record run.mjtrace captures the run as a
// compact binary event trace (a .mjtrace extension selects the binary
// format; any other extension keeps the text event log). The trace
// replays offline into any detector configuration without re-executing
// the program: -replay-trace run.mjtrace honors the usual ablation and
// back-end flags (-nocache, -shards, -batch, ...), and -ablate
// "Full,NoCache,Sharded4" sweeps several named configurations over one
// trace in a single process. -replay-workers bounds the parallel
// segment decoders.
//
// Exit codes:
//
//	0  no dataraces detected
//	1  dataraces reported
//	2  the program's execution failed (deadlock, watchdog, livelock,
//	   step budget, interpreter panic)
//	3  internal failure: usage, compile, or I/O error
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"racedet"
	"racedet/internal/profiling"
)

// Exit codes.
const (
	exitClean    = 0
	exitRaces    = 1
	exitRuntime  = 2
	exitInternal = 3
)

func main() {
	var (
		detName         = flag.String("detector", "trie", "runtime detector: trie, eraser, objectrace, hb")
		noStatic        = flag.Bool("nostatic", false, "disable static datarace analysis (instrument everything)")
		noDom           = flag.Bool("nodominators", false, "disable static weaker-than elimination and loop peeling")
		noPeel          = flag.Bool("nopeeling", false, "disable loop peeling only")
		noInterproc     = flag.Bool("nointerproc", false, "disable the interprocedural static strengthenings (must-lock dataflow, cross-call elimination)")
		noCache         = flag.Bool("nocache", false, "disable the runtime access cache")
		noOwner         = flag.Bool("noownership", false, "disable the ownership model")
		noPseudo        = flag.Bool("nopseudolocks", false, "disable join pseudolocks")
		merged          = flag.Bool("fieldsmerged", false, "detect at object granularity")
		reportAll       = flag.Bool("all", false, "report every racing access, not one per location")
		seed            = flag.Int64("seed", 0, "scheduler seed (0 = fixed round-robin)")
		quantum         = flag.Int("quantum", 0, "scheduler preemption quantum in instructions")
		maxSteps        = flag.Uint64("maxsteps", 0, "instruction budget (0 = default 200M)")
		quiet           = flag.Bool("q", false, "suppress program output")
		showStats       = flag.Bool("stats", false, "print pipeline statistics")
		recordPath      = flag.String("record", "", "write the event log to this file for post-mortem analysis (.mjtrace extension selects the compact binary trace)")
		replayPath      = flag.String("replay", "", "post-mortem: replay a recorded event log instead of running a program")
		replayTracePath = flag.String("replay-trace", "", "offline detection: replay a recorded binary trace (.mjtrace) through the configured detector instead of running a program")
		ablateList      = flag.String("ablate", "", `with -replay-trace: comma-separated named configurations to sweep over the trace in one process, e.g. "Full,NoCache,Sharded4"`)
		replayWorkers   = flag.Int("replay-workers", 0, "with -replay-trace: parallel trace-segment decoders (0 = one per CPU)")
		fullRace        = flag.Bool("fullrace", false, "with -replay: reconstruct every racing access pair (O(N^2))")
		deadlocks       = flag.Bool("deadlock", false, "also run the lock-order potential-deadlock analysis")
		immut           = flag.Bool("immutability", false, "also classify shared fields as observed-immutable or mutable")

		fuzzN       = flag.Int("fuzz", 0, "explore N scheduler seeds and classify races as stable or schedule-dependent")
		workers     = flag.Int("workers", 0, "parallel workers for -fuzz (0 = one per CPU)")
		timeout     = flag.Duration("timeout", 0, "per-run wall-clock watchdog (0 = none; -fuzz defaults to 30s)")
		livelock    = flag.Int("livelock", 0, "terminate after N scheduler slices without progress (0 = off; -fuzz defaults to 100000)")
		schedOut    = flag.String("schedule-out", "", "write the run's schedule trace to this file (mjsched text)")
		schedIn     = flag.String("replay-schedule", "", "replay a recorded schedule trace (deterministic reproduction)")
		traceDir    = flag.String("trace-dir", "", "with -fuzz: write each finding's witness schedule trace into this directory")
		maxTrie     = flag.Int("max-trie-nodes", 0, "bound trie memory: collapse per-location history over this many nodes (0 = unbounded; may over-report)")
		maxCacheT   = flag.Int("max-cache-threads", 0, "bound cache memory: keep at most N per-thread caches, evicting LRU (0 = unbounded)")
		maxOwner    = flag.Int("max-owner-locations", 0, "bound ownership memory: locations past N are born shared (0 = unbounded; may over-report)")
		shards      = flag.Int("shards", 0, "run detection on N location-sharded workers (0/1 = serial; reports are identical)")
		batchSize   = flag.Int("batch", 0, "buffer up to N access events per thread before calling the detector (0 = unbatched)")
		journalCap  = flag.Int("journal", 4096, "with -shards: per-shard event journal capacity for crash recovery (0 = no fault tolerance)")
		retryBudget = flag.Int("retry-budget", 3, "with -shards and -journal: worker restart attempts before a shard degrades to the Eraser path")
		inject      = flag.String("inject", "", `fault-injection spec for robustness testing, e.g. "panic:shard=1,event=100" (see docs/robustness.md)`)
		sampleK     = flag.Int("sample-k", 0, "adaptive throttling: demote an access site after K consecutive clean observations (0 = off; see docs/performance.md)")
		sampleBud   = flag.Float64("sample-budget", 0, "adaptive throttling: target shipped-events ratio in (0,1]; the throttle adapts K per window (implies -sample-k 16 when set alone)")
		priorsMode  = flag.String("priors", "", `seed sampling with static lock-discipline priors: "on" pins unguarded/guarded-inconsistent sites armed and demotes guarded-consistent sites early, "invert" swaps the two (ablation), "off"/"" ignores the tiers; requires -sample-k/-sample-budget`)
		factCache   = flag.String("factcache", "", "persist static-analysis results under this directory and reuse them for unchanged functions")
		ptsWorkers  = flag.Int("pts-workers", 0, "parallel workers for the points-to solver (0 = serial; the result is identical)")
		explain     = flag.Bool("explain-static", false, "print the per-access-site keep/kill report of the static phase and exit")
		staticRep   = flag.Bool("static-report", false, "print the severity-ranked lock-discipline race report of the static phase and exit")
		staticOnly  = flag.Bool("static-only", false, "static-only detection: print the lock-discipline report, exit 1 when statically unguarded pairs exist, 0 otherwise")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	// A bad flag is a usage error (exit 3), not an execution failure
	// (exit 2, the flag package's ExitOnError default).
	flag.CommandLine.Init(os.Args[0], flag.ContinueOnError)
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			os.Exit(exitClean)
		}
		os.Exit(exitInternal)
	}
	// Validate flag values that parse fine but make no sense. Only
	// explicitly-passed flags are checked (flag.Visit), so the zero
	// defaults — which mean "serial" / "unbatched" — stay legal.
	var flagErr error
	flag.Visit(func(f *flag.Flag) {
		if flagErr != nil {
			return
		}
		switch f.Name {
		case "shards":
			if *shards <= 0 {
				flagErr = fmt.Errorf("-shards must be >= 1 (got %d); omit the flag for the serial back end", *shards)
			}
		case "batch":
			if *batchSize <= 0 {
				flagErr = fmt.Errorf("-batch must be >= 1 (got %d); omit the flag for unbatched delivery", *batchSize)
			}
		case "journal":
			if *journalCap < 0 {
				flagErr = fmt.Errorf("-journal must be >= 0 (got %d); 0 disables fault tolerance", *journalCap)
			}
		case "retry-budget":
			if *retryBudget < 0 {
				flagErr = fmt.Errorf("-retry-budget must be >= 0 (got %d)", *retryBudget)
			}
		case "replay-workers":
			if *replayWorkers <= 0 {
				flagErr = fmt.Errorf("-replay-workers must be >= 1 (got %d); omit the flag for one per CPU", *replayWorkers)
			}
		case "sample-k":
			if *sampleK < 1 {
				flagErr = fmt.Errorf("-sample-k must be >= 1 (got %d); omit the flag to disable throttling", *sampleK)
			}
		case "sample-budget":
			if *sampleBud <= 0 || *sampleBud > 1 {
				flagErr = fmt.Errorf("-sample-budget must be in (0, 1] (got %g); omit the flag to disable the adaptive controller", *sampleBud)
			}
		case "priors":
			switch *priorsMode {
			case "on", "off", "invert", "":
			default:
				flagErr = fmt.Errorf(`-priors must be "on", "off", or "invert" (got %q)`, *priorsMode)
			}
		}
	})
	samplingOn := *sampleK > 0 || *sampleBud > 0
	if flagErr == nil && samplingOn && *noOwner {
		flagErr = fmt.Errorf("-sample-k/-sample-budget require the ownership filter; drop -noownership")
	}
	priorsOn := *priorsMode == "on" || *priorsMode == "invert"
	if flagErr == nil && priorsOn {
		switch {
		case !samplingOn:
			flagErr = fmt.Errorf("-priors %s seeds the sampler and needs -sample-k or -sample-budget", *priorsMode)
		case *noStatic:
			flagErr = fmt.Errorf("-priors come from the static lock-discipline tiers; drop -nostatic")
		case *replayTracePath != "":
			flagErr = fmt.Errorf("-priors need a compiled program to take tiers from and cannot be combined with -replay-trace")
		}
	}
	if flagErr == nil && (*staticRep || *staticOnly) {
		switch {
		case *noStatic:
			flagErr = fmt.Errorf("-static-report/-static-only run the static phase; drop -nostatic")
		case *replayTracePath != "" || *replayPath != "":
			flagErr = fmt.Errorf("-static-report/-static-only analyze a program, not a recorded trace")
		case *fuzzN > 0:
			flagErr = fmt.Errorf("-static-report/-static-only are purely static and cannot be combined with -fuzz")
		}
	}
	if flagErr == nil && *inject != "" && *shards < 1 {
		flagErr = fmt.Errorf("-inject targets the sharded back end; add -shards N")
	}
	if flagErr == nil && *replayTracePath != "" {
		switch {
		case *recordPath != "":
			flagErr = fmt.Errorf("-record and -replay-trace are mutually exclusive: a replay consumes a trace, it does not produce one")
		case *replayPath != "":
			flagErr = fmt.Errorf("-replay and -replay-trace are mutually exclusive: pick the text event log or the binary trace")
		case *fuzzN > 0:
			flagErr = fmt.Errorf("-fuzz explores live schedules and cannot be combined with -replay-trace")
		case *fullRace:
			flagErr = fmt.Errorf("-fullrace works on text event logs (-replay), not binary traces")
		}
	}
	if flagErr == nil && *ablateList != "" && *replayTracePath == "" {
		flagErr = fmt.Errorf("-ablate requires -replay-trace")
	}
	if flagErr == nil && *ablateList != "" && samplingOn {
		flagErr = fmt.Errorf("-ablate sweeps named configurations and cannot be combined with -sample-k/-sample-budget; replay the trace with the sampling flags and no -ablate instead")
	}
	if flagErr != nil {
		fmt.Fprintln(os.Stderr, "racedet:", flagErr)
		os.Exit(exitInternal)
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	opts := racedet.Options{
		DisableStaticAnalysis:  *noStatic,
		DisableWeakerThan:      *noDom,
		DisablePeeling:         *noPeel,
		DisableInterproc:       *noInterproc,
		PointsToWorkers:        *ptsWorkers,
		FactCacheDir:           *factCache,
		DisableCache:           *noCache,
		DisableOwnership:       *noOwner,
		DisableJoinPseudoLocks: *noPseudo,
		MergeFields:            *merged,
		ReportAllAccesses:      *reportAll,
		DetectDeadlocks:        *deadlocks,
		AnalyzeImmutability:    *immut,
		Seed:                   *seed,
		Quantum:                *quantum,
		MaxSteps:               *maxSteps,
		Timeout:                *timeout,
		LivelockWindow:         *livelock,
		MaxTrieNodes:           *maxTrie,
		MaxCacheThreads:        *maxCacheT,
		MaxOwnerLocations:      *maxOwner,
		Shards:                 *shards,
		BatchSize:              *batchSize,
		JournalCap:             *journalCap,
		RetryBudget:            *retryBudget,
		FaultInjection:         *inject,
		SampleK:                *sampleK,
		SampleBudget:           *sampleBud,
		Priors:                 *priorsMode,
	}
	switch *detName {
	case "trie":
		opts.Detector = racedet.Trie
	case "eraser":
		opts.Detector = racedet.Eraser
	case "objectrace":
		opts.Detector = racedet.ObjectRace
	case "hb", "vclock":
		opts.Detector = racedet.HappensBefore
	default:
		fmt.Fprintf(os.Stderr, "racedet: unknown detector %q\n", *detName)
		os.Exit(exitInternal)
	}

	if *replayPath != "" {
		exit(replay(*replayPath, *fullRace))
	}
	if *replayTracePath != "" {
		exit(replayTrace(*replayTracePath, opts, *ablateList, *replayWorkers))
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedet [flags] program.mj")
		flag.PrintDefaults()
		os.Exit(exitInternal)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	if *explain {
		c, err := racedet.Compile(file, string(src), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(c.StaticReport())
		exit(exitClean)
	}

	if *staticRep || *staticOnly {
		// Detection before a single execution: the ranked lock-discipline
		// report. -static-only turns it into a verdict — statically
		// unguarded pairs are the "report" of the static-only detector.
		c, err := racedet.Compile(file, string(src), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Print(c.DisciplineReport())
		if *staticOnly {
			if n := c.UnguardedPairs(); n > 0 {
				fmt.Fprintf(os.Stderr, "racedet: %d statically unguarded may-race pair(s)\n", n)
				exit(exitRaces)
			}
			fmt.Fprintln(os.Stderr, "racedet: no statically unguarded pairs")
		}
		exit(exitClean)
	}

	if *fuzzN > 0 {
		exit(fuzz(file, string(src), opts, *fuzzN, *workers, *traceDir))
	}

	if !*quiet {
		opts.Stdout = os.Stdout
	}
	var recordFile *os.File
	var recordTmp string
	if *recordPath != "" {
		// Crash-safe capture: record into a sibling temp file and
		// atomically rename it over the requested path only once the
		// trace is complete and fsync'd. An interrupted run leaves at
		// most a .tmp — never a torn half-trace under the name a later
		// -replay-trace or racedetd upload would trust.
		recordTmp = *recordPath + ".tmp"
		recordFile, err = os.Create(recordTmp)
		if err != nil {
			fatal(err)
		}
		// The extension picks the format: .mjtrace records the compact
		// binary trace (replay with -replay-trace), anything else the
		// legacy text event log (replay with -replay).
		if strings.HasSuffix(*recordPath, ".mjtrace") {
			opts.TraceTo = recordFile
		} else {
			opts.RecordTo = recordFile
		}
	}
	if *schedIn != "" {
		trace, err := os.ReadFile(*schedIn)
		if err != nil {
			if recordTmp != "" {
				recordFile.Close()
				os.Remove(recordTmp)
			}
			fatal(err)
		}
		opts.ReplaySchedule = trace
	}
	if *schedOut != "" {
		opts.RecordSchedule = true
	}

	res, err := racedet.Detect(file, string(src), opts)
	var runtimeErr *racedet.RuntimeError
	if err != nil {
		// A runtime failure (deadlock, watchdog, livelock, step budget)
		// still carries a partial result: the races observed before the
		// run was cut short. Print the report below, then exit 2.
		if !errors.As(err, &runtimeErr) || res == nil {
			if recordTmp != "" {
				recordFile.Close()
				os.Remove(recordTmp)
			}
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "racedet: execution failed:", runtimeErr)
	}

	if recordTmp != "" {
		// Seal the capture. Partial-run traces (watchdog, deadlock) are
		// sealed too — they replay up to the cut, and the trace footer
		// marks them honestly.
		if ferr := finishRecording(recordFile, recordTmp, *recordPath); ferr != nil {
			fatal(ferr)
		}
	}

	if *schedOut != "" {
		if err := os.WriteFile(*schedOut, res.Schedule, 0o644); err != nil {
			fatal(err)
		}
	}

	for _, r := range res.Races {
		fmt.Println(r)
		for _, p := range r.StaticPartners {
			fmt.Printf("    may race with code at %s\n", p)
		}
	}
	for _, r := range res.BaselineReports {
		fmt.Println(r)
	}
	for _, r := range res.PotentialDeadlocks {
		fmt.Println(r)
	}
	for _, r := range res.Immutability {
		fmt.Println(r)
	}
	if *showStats {
		s := res.Stats
		fmt.Printf("stats: threads=%d instructions=%d traceEvents=%d cacheHits=%d ownerSkips=%d trieEvents=%d trieNodes=%d\n",
			s.Threads, s.Instructions, s.TraceEvents, s.CacheHits, s.OwnerSkips, s.TrieEvents, s.TrieNodes)
		fmt.Printf("static: accessSites=%d raceSet=%d threadLocalPruned=%d traces=%d eliminated=%d peeled=%d\n",
			s.AccessSites, s.StaticRaceSet, s.ThreadLocalPruned, s.TracesInserted, s.TracesEliminated, s.LoopsPeeled)
		if s.TrieCollapses > 0 || s.CacheThreadEvictions > 0 || s.OwnerOverflows > 0 {
			fmt.Printf("degraded: trieCollapses=%d cacheThreadEvictions=%d ownerOverflows=%d (bounded memory; may over-report)\n",
				s.TrieCollapses, s.CacheThreadEvictions, s.OwnerOverflows)
		}
		if s.SitesSampled > 0 {
			// traceEvents == shipped + cacheHits + ownerSkips + suppressed:
			// every observed event is accounted for exactly once.
			fmt.Printf("sampling: shipped=%d suppressed=%d sites=%d demoted=%d rearmed=%d k=%d\n",
				s.EventsShipped, s.EventsSuppressed, s.SitesSampled, s.SitesDemoted, s.SitesRearmed, s.SampleK)
			if s.PriorHighSites > 0 || s.PriorLowSites > 0 {
				fmt.Printf("priors: high=%d low=%d fastDemotions=%d\n",
					s.PriorHighSites, s.PriorLowSites, s.PriorFastDemotions)
			}
		}
		if s.WorkerRestarts > 0 || s.DegradedShards > 0 || s.DroppedEvents > 0 {
			fmt.Printf("recovery: restarts=%d replayed=%d checkpoints=%d degradedShards=%d degradedEvents=%d droppedEvents=%d queueHighWater=%d\n",
				s.WorkerRestarts, s.EventsReplayed, s.Checkpoints, s.DegradedShards,
				s.DegradedEvents, s.DroppedEvents, s.QueueHighWater)
		}
	}
	n := res.RacyObjects
	if runtimeErr != nil {
		fmt.Fprintf(os.Stderr, "racedet: partial report: dataraces on %d object(s) before the run was cut short\n", n)
		exit(exitRuntime)
	}
	switch {
	case n == 0 && len(res.BaselineReports) == 0:
		fmt.Fprintln(os.Stderr, "racedet: no dataraces detected")
	case n > 0 || len(res.BaselineReports) > 0:
		fmt.Fprintf(os.Stderr, "racedet: dataraces reported on %d object(s)\n", n)
		exit(exitRaces)
	}
	exit(exitClean)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedet:", err)
	os.Exit(exitInternal)
}

// finishRecording makes a finished -record capture durable: fsync the
// temp file, close it, and atomically rename it to the requested
// path. Any failure removes the temp so no torn capture survives.
func finishRecording(f *os.File, tmp, dst string) error {
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// fuzz runs the schedule-exploration harness and reports per-seed
// outcomes plus the classified findings.
func fuzz(file, src string, opts racedet.Options, count, workers int, traceDir string) int {
	res, err := racedet.Fuzz(file, src, racedet.FuzzOptions{
		Options: opts,
		Count:   count,
		Workers: workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		return exitInternal
	}

	for _, oc := range res.Outcomes {
		status := "ok"
		if oc.Err != nil {
			status = oc.Err.Error()
		}
		fmt.Printf("seed %4d: races=%d %s\n", oc.Seed, oc.Races, status)
	}
	for _, f := range res.Findings {
		class := "STABLE (all schedules)"
		if !f.Stable {
			class = fmt.Sprintf("SCHEDULE-DEPENDENT (%d/%d schedules, first seed %d)",
				len(f.Seeds), res.Completed, f.MinSeed)
		}
		fmt.Printf("%s\n    %s\n", f.Race, class)
		if traceDir != "" {
			path := filepath.Join(traceDir, traceName(f.Race.Field))
			if err := os.MkdirAll(traceDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "racedet:", err)
				return exitInternal
			}
			if err := os.WriteFile(path, f.Schedule, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "racedet:", err)
				return exitInternal
			}
			fmt.Printf("    witness schedule: %s (reproduce with -replay-schedule %s)\n", path, path)
		}
	}
	fmt.Fprintf(os.Stderr, "racedet: %d seed(s): %d completed, %d failed; %d distinct race(s) (%d stable, %d schedule-dependent)\n",
		len(res.Outcomes), res.Completed, res.Failed,
		len(res.Findings), len(res.Stable()), len(res.ScheduleDependent()))

	switch {
	case len(res.Findings) > 0:
		return exitRaces
	case res.Completed == 0 && res.Failed > 0:
		return exitRuntime
	default:
		return exitClean
	}
}

// traceName maps a field name to a witness trace filename.
func traceName(field string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, field)
	return clean + ".mjsched"
}

// ablationOpts maps a named configuration onto base — the ablations of
// the paper's Tables 2/3 plus the back-end variants. Base flags still
// apply: -replay-trace -nocache -ablate Sharded4 replays NoCache on
// four shards.
func ablationOpts(base racedet.Options, name string) (racedet.Options, error) {
	o := base
	switch {
	case name == "Full":
	case name == "NoCache":
		o.DisableCache = true
	case name == "NoOwnership":
		o.DisableOwnership = true
	case name == "FieldsMerged":
		o.MergeFields = true
	case name == "NoPseudoLocks":
		o.DisableJoinPseudoLocks = true
	case name == "ReportAll":
		o.ReportAllAccesses = true
	case name == "Eraser":
		o.Detector = racedet.Eraser
	case name == "ObjectRace":
		o.Detector = racedet.ObjectRace
	case name == "HappensBefore" || name == "HB":
		o.Detector = racedet.HappensBefore
	case strings.HasPrefix(name, "Sharded"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "Sharded"))
		if err != nil || n < 1 {
			return o, fmt.Errorf("bad shard count in ablation %q", name)
		}
		o.Shards = n
	default:
		return o, fmt.Errorf("unknown ablation %q (want Full, NoCache, NoOwnership, FieldsMerged, NoPseudoLocks, ReportAll, Eraser, ObjectRace, HappensBefore, or ShardedN)", name)
	}
	return o, nil
}

// replayTrace performs offline detection on a recorded binary trace:
// one pass with opts as configured, or — with -ablate — one pass per
// named configuration over the same trace, all in one process. The
// exit code aggregates the passes: races anywhere exit 1.
func replayTrace(path string, opts racedet.Options, ablate string, workers int) int {
	names := []string{""}
	if ablate != "" {
		names = strings.Split(ablate, ",")
	}
	races := 0
	for _, name := range names {
		o := opts
		name = strings.TrimSpace(name)
		if name != "" {
			var err error
			if o, err = ablationOpts(opts, name); err != nil {
				fmt.Fprintln(os.Stderr, "racedet:", err)
				return exitInternal
			}
			fmt.Printf("== %s ==\n", name)
		}
		res, err := racedet.ReplayTrace(path, o, workers)
		if err != nil {
			var runtimeErr *racedet.RuntimeError
			if errors.As(err, &runtimeErr) {
				fmt.Fprintln(os.Stderr, "racedet: replay failed:", runtimeErr)
				return exitRuntime
			}
			fmt.Fprintln(os.Stderr, "racedet:", err)
			return exitInternal
		}
		for _, r := range res.Races {
			fmt.Println(r)
		}
		for _, r := range res.BaselineReports {
			fmt.Println(r)
		}
		n := res.RacyObjects
		if n == 0 && len(res.BaselineReports) > 0 {
			n = len(res.BaselineReports)
		}
		races += n
		if name != "" {
			fmt.Fprintf(os.Stderr, "racedet: %s: dataraces on %d object(s)\n", name, n)
		}
	}
	if races > 0 {
		fmt.Fprintf(os.Stderr, "racedet: dataraces reported on %d object(s)\n", races)
		return exitRaces
	}
	fmt.Fprintln(os.Stderr, "racedet: no dataraces detected")
	return exitClean
}

// replay performs post-mortem detection on a recorded event log.
func replay(path string, fullRace bool) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		return exitInternal
	}
	defer f.Close()

	if fullRace {
		pairs, err := racedet.FullRace(f, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "racedet:", err)
			return exitInternal
		}
		for _, p := range pairs {
			fmt.Printf("%s\n  <races with>\n%s\n\n", p.First, p.Second)
		}
		fmt.Fprintf(os.Stderr, "racedet: %d racing pair(s) reconstructed\n", len(pairs))
		if len(pairs) > 0 {
			return exitRaces
		}
		return exitClean
	}

	res, err := racedet.Replay(f, racedet.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "racedet:", err)
		return exitInternal
	}
	for _, r := range res.Races {
		fmt.Println(r)
	}
	if res.RacyObjects > 0 {
		fmt.Fprintf(os.Stderr, "racedet: dataraces reported on %d object(s)\n", res.RacyObjects)
		return exitRaces
	}
	fmt.Fprintln(os.Stderr, "racedet: no dataraces detected")
	return exitClean
}
