package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestCLIFlagValidation pins the usage-error contract: explicit
// nonsense values for the back-end flags are rejected up front with a
// clear message on stderr and exit code 3, before any compilation or
// execution happens.
func TestCLIFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)

	cases := []struct {
		name string
		args []string
		want string // substring required on stderr
	}{
		{"shards zero", []string{"-shards", "0", prog}, "-shards must be >= 1"},
		{"shards negative", []string{"-shards", "-4", prog}, "-shards must be >= 1"},
		{"batch zero", []string{"-batch", "0", prog}, "-batch must be >= 1"},
		{"batch negative", []string{"-shards", "2", "-batch", "-8", prog}, "-batch must be >= 1"},
		{"journal negative", []string{"-shards", "2", "-journal", "-1", prog}, "-journal must be >= 0"},
		{"retry budget negative", []string{"-shards", "2", "-retry-budget", "-1", prog}, "-retry-budget must be >= 0"},
		{"inject without shards", []string{"-inject", "panic:shard=0,event=1", prog}, "-inject targets the sharded back end"},
		{"inject bad spec", []string{"-shards", "2", "-inject", "panic:shard=0", prog}, "fault"},
		{"unknown flag", []string{"-no-such-flag", prog}, "flag"},
		{"record and replay-trace", []string{"-record", "t.mjtrace", "-replay-trace", "t.mjtrace"}, "-record and -replay-trace are mutually exclusive"},
		{"replay and replay-trace", []string{"-replay", "t.log", "-replay-trace", "t.mjtrace"}, "-replay and -replay-trace are mutually exclusive"},
		{"fuzz and replay-trace", []string{"-fuzz", "4", "-replay-trace", "t.mjtrace"}, "-fuzz explores live schedules"},
		{"fullrace and replay-trace", []string{"-fullrace", "-replay-trace", "t.mjtrace"}, "-fullrace works on text event logs"},
		{"ablate without replay-trace", []string{"-ablate", "Full,NoCache", prog}, "-ablate requires -replay-trace"},
		{"replay-workers zero", []string{"-replay-workers", "0", "-replay-trace", "t.mjtrace"}, "-replay-workers must be >= 1"},
		{"replay-workers negative", []string{"-replay-workers", "-2", "-replay-trace", "t.mjtrace"}, "-replay-workers must be >= 1"},
		{"sample-k zero", []string{"-sample-k", "0", prog}, "-sample-k must be >= 1"},
		{"sample-k negative", []string{"-sample-k", "-4", prog}, "-sample-k must be >= 1"},
		{"sample-budget zero", []string{"-sample-budget", "0", prog}, "-sample-budget must be in (0, 1]"},
		{"sample-budget negative", []string{"-sample-budget", "-0.5", prog}, "-sample-budget must be in (0, 1]"},
		{"sample-budget over one", []string{"-sample-budget", "1.5", prog}, "-sample-budget must be in (0, 1]"},
		{"sampling without ownership", []string{"-sample-k", "4", "-noownership", prog}, "require the ownership filter"},
		{"sampling and ablate", []string{"-sample-k", "4", "-replay-trace", "t.mjtrace", "-ablate", "Full"}, "cannot be combined with -sample-k"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected a usage failure, got err=%v\n%s", err, out)
			}
			if ee.ExitCode() != exitInternal {
				t.Fatalf("exit = %d, want %d (usage error)\n%s", ee.ExitCode(), exitInternal, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}

	// Defaults stay legal: not passing the flags at all must not trip
	// the explicit-value validation.
	if out, err := exec.Command(bin, "-q", prog).CombinedOutput(); err != nil {
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != exitRaces {
			t.Fatalf("default flags: exit = %v, want %d\n%s", err, exitRaces, out)
		}
	}
}

// TestCLISamplingSmoke runs adaptive throttling end to end: the racy
// program is still reported with sampling on (serial and sharded), and
// -stats surfaces the sampling counters.
func TestCLISamplingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)

	for _, args := range [][]string{
		{"-q", "-stats", "-sample-k", "4", prog},
		{"-q", "-stats", "-sample-budget", "0.25", prog},
		{"-q", "-stats", "-sample-k", "4", "-shards", "2", prog},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != exitRaces {
			t.Fatalf("%v: exit = %v, want %d\n%s", args, err, exitRaces, out)
		}
		text := string(out)
		if !strings.Contains(text, "datarace on Data.f") {
			t.Errorf("%v: sampled run lost the race report:\n%s", args, text)
		}
		if !strings.Contains(text, "sampling: shipped=") {
			t.Errorf("%v: -stats missing the sampling line:\n%s", args, text)
		}
	}
}

// TestCLIInjectSmoke runs the fault-injection path end to end: a
// worker panic is injected mid-stream, the supervisor recovers, and
// the race is still reported exactly as without the fault.
func TestCLIInjectSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildCLI(t)
	prog := writeProg(t, racyProg)

	// Recovered run: same verdict and report as an undisturbed one.
	out, err := exec.Command(bin, "-q", "-stats", "-shards", "2",
		"-inject", "panic:shard=*,event=1", prog).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != exitRaces {
		t.Fatalf("recovered run exit = %v, want %d\n%s", err, exitRaces, out)
	}
	text := string(out)
	if !strings.Contains(text, "datarace on Data.f") {
		t.Errorf("recovered run lost the race report:\n%s", text)
	}
	if !strings.Contains(text, "recovery:") || !strings.Contains(text, "restarts=1") {
		t.Errorf("-stats missing the recovery line:\n%s", text)
	}

	// Budget-zero run: the shard degrades but the analysis completes.
	out, err = exec.Command(bin, "-q", "-stats", "-shards", "2", "-retry-budget", "0",
		"-inject", "panic:shard=*,event=1", prog).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != exitRaces {
		t.Fatalf("degraded run exit = %v, want %d (analysis must survive)\n%s", err, exitRaces, out)
	}
	if !strings.Contains(string(out), "degradedShards=1") {
		t.Errorf("degraded run missing the degradation counter:\n%s", out)
	}
}
