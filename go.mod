module racedet

go 1.22
