// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus the ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Table 2 benches report wall time per full benchmark execution under
// each configuration; compare a benchmark's Full time against its Base
// time to get the paper's overhead percentages. The deterministic
// counters behind the same table are asserted in
// internal/bench/bench_test.go and printed by cmd/racebench.
package racedet

import (
	"fmt"
	"math/rand"
	"testing"

	"racedet/internal/bench"
	"racedet/internal/core"
	"racedet/internal/rt/cache"
	"racedet/internal/rt/event"
	"racedet/internal/rt/trie"
)

// runPipeline benchmarks repeated executions of a compiled benchmark.
func runPipeline(b *testing.B, name string, cfg core.Config) {
	bm, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := core.Compile(name+".mj", bm.Source(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// ---------------------------------------------------------------------------
// Table 1: benchmark characteristics — front-end + static pipeline cost.

func BenchmarkTable1Compile(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			src := bm.Source()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(bm.Name+".mj", src, core.Full()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 2: runtime performance of the optimization ablations on the
// CPU-bound benchmarks (mtrt, tsp, sor2).

func BenchmarkTable2(b *testing.B) {
	for _, bm := range bench.All() {
		if !bm.CPUBound {
			continue
		}
		for _, c := range bench.Table2Configs() {
			name := fmt.Sprintf("%s/%s", bm.Name, c.Name)
			cfg := c.Cfg
			b.Run(name, func(b *testing.B) {
				runPipeline(b, bm.Name, cfg)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Sharded/batched back end: the same Full-configuration runs through
// the location-sharded detector and the per-thread batching front end.
// Compare against BenchmarkTable2/<name>/Full for the speedup; the
// differential test in internal/corpus pins the reports as identical.

func BenchmarkSharded(b *testing.B) {
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"Shards1", func() core.Config { c := core.Full(); c.Shards = 1; return c }()},
		{"Shards4", func() core.Config { c := core.Full(); c.Shards = 4; return c }()},
		{"Batch64", func() core.Config { c := core.Full(); c.BatchSize = 64; return c }()},
		{"Shards4Batch64", func() core.Config {
			c := core.Full()
			c.Shards = 4
			c.BatchSize = 64
			return c
		}()},
	}
	for _, bm := range bench.All() {
		if !bm.CPUBound {
			continue
		}
		for _, v := range variants {
			name := fmt.Sprintf("%s/%s", bm.Name, v.name)
			cfg := v.cfg
			b.Run(name, func(b *testing.B) {
				runPipeline(b, bm.Name, cfg)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Table 3: accuracy variants (the run must also produce the counts; we
// benchmark the detection cost of each variant on every benchmark).

func BenchmarkTable3(b *testing.B) {
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"Full", core.Full()},
		{"FieldsMerged", core.Full().MergedFields()},
		{"NoOwnership", core.Full().NoOwnership()},
	}
	for _, bm := range bench.All() {
		for _, v := range variants {
			name := fmt.Sprintf("%s/%s", bm.Name, v.name)
			cfg := v.cfg
			b.Run(name, func(b *testing.B) {
				runPipeline(b, bm.Name, cfg)
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 2: the three-thread example through the whole pipeline.

const figure2Src = `
class Shared { int f; int g; }
class T1 extends Thread {
    Shared a; Shared b; Shared p;
    T1(Shared obj, Shared lock) { a = obj; b = obj; p = lock; }
    synchronized void foo() {
        a.f = 50;
        synchronized (p) { b.g = b.f; }
    }
    void run() { foo(); }
}
class T2 extends Thread {
    Shared d; Shared q;
    T2(Shared obj, Shared lock) { d = obj; q = lock; }
    void bar() { synchronized (q) { d.f = 10; } }
    void run() { bar(); }
}
class Main {
    static Shared x;
    static void main() {
        x = new Shared();
        x.f = 100;
        Shared lockP = new Shared();
        Shared lockQ = new Shared();
        Thread t1 = new T1(x, lockP);
        Thread t2 = new T2(x, lockQ);
        t1.start(); t2.start();
        t1.join(); t2.join();
        print(x.f);
    }
}`

func BenchmarkFigure2Detection(b *testing.B) {
	pipe, err := core.Compile("fig2.mj", figure2Src, core.Full())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Run()
		if err != nil || res.Err != nil {
			b.Fatalf("%v/%v", err, res.Err)
		}
		if len(res.RacyObjects) != 1 {
			b.Fatal("figure 2 race lost")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 3: loop peeling — the array kernel with and without peeling.

const figure3Src = `
class A {
    int total;
    void fill(int[] a, int n) {
        for (int i = 0; i < n; i++) {
            a[i] = i;
        }
        total = n;
    }
}
class W extends Thread {
    A a; int[] buf;
    W(A a0, int[] b0) { a = a0; buf = b0; }
    void run() { a.fill(buf, buf.length); }
}
class Main {
    static void main() {
        A a = new A();
        int[] shared = new int[512];
        W w1 = new W(a, shared);
        W w2 = new W(a, shared);
        w1.start(); w2.start();
        w1.join(); w2.join();
        print(a.total);
    }
}`

func BenchmarkFigure3Peeling(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  core.Config
	}{
		{"WithPeeling", core.Full()},
		{"NoPeeling", core.Full().NoPeeling()},
		{"NoDominators", core.Full().NoDominators()},
	} {
		cfg := v.cfg
		b.Run(v.name, func(b *testing.B) {
			pipe, err := core.Compile("fig3.mj", figure3Src, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := pipe.Run()
				if err != nil || res.Err != nil {
					b.Fatalf("%v/%v", err, res.Err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Detector comparison (§8.3/§9): same program, four algorithms.

func BenchmarkDetectorComparison(b *testing.B) {
	for _, v := range []struct {
		name string
		cfg  core.Config
	}{
		{"Trie", core.Full()},
		{"Eraser", core.Full().WithDetector(core.DetEraser)},
		{"ObjectRace", core.Full().WithDetector(core.DetObjectRace)},
		{"HappensBefore", core.Full().WithDetector(core.DetVClock)},
	} {
		cfg := v.cfg
		b.Run(v.name, func(b *testing.B) {
			runPipeline(b, "hedc", cfg)
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: trie vs flat history (DESIGN.md §4.1). The flat reference
// stores every access per location and scans it on each event.

type flatDetector struct {
	history map[event.Loc][]event.Access
}

func (f *flatDetector) process(e event.Access) bool {
	h := f.history[e.Loc]
	race := false
	for _, p := range h {
		if event.IsRace(p, e) {
			race = true
			break
		}
	}
	f.history[e.Loc] = append(h, e)
	return race
}

// syntheticStream builds an event stream with heavy same-lockset
// repetition (what real programs produce).
func syntheticStream(n int) []event.Access {
	rng := rand.New(rand.NewSource(42))
	out := make([]event.Access, n)
	locksets := []event.Lockset{
		event.NewLockset(),
		event.NewLockset(100),
		event.NewLockset(100, 200),
		event.NewLockset(300),
	}
	for i := range out {
		out[i] = event.Access{
			Loc:    event.Loc{Obj: event.ObjID(rng.Intn(8) + 1), Slot: 0},
			Thread: event.ThreadID(rng.Intn(3)),
			Kind:   event.Kind(rng.Intn(2)),
			Locks:  locksets[rng.Intn(len(locksets))],
		}
	}
	return out
}

func BenchmarkAblationTrieVsFlat(b *testing.B) {
	stream := syntheticStream(20000)
	b.Run("Trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := trie.New()
			for _, e := range stream {
				d.Process(e)
			}
		}
	})
	b.Run("FlatHistory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := &flatDetector{history: make(map[event.Loc][]event.Access)}
			for _, e := range stream {
				d.process(e)
			}
		}
	})
}

// Ablation: the t⊥ space optimization (DESIGN.md §4.2).
func BenchmarkAblationTBot(b *testing.B) {
	stream := syntheticStream(20000)
	b.Run("WithTBot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := trie.New()
			for _, e := range stream {
				d.Process(e)
			}
		}
	})
	b.Run("NoTBot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := trie.NewNoTBot()
			for _, e := range stream {
				d.Process(e)
			}
		}
	})
}

// Ablation: §8.2's multi-location packing vs the per-location trie.
func BenchmarkAblationPackedTrie(b *testing.B) {
	stream := syntheticStream(20000)
	b.Run("PerLocation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := trie.New()
			for _, e := range stream {
				d.Process(e)
			}
		}
	})
	b.Run("Packed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := trie.NewPacked()
			for _, e := range stream {
				d.Process(e)
			}
		}
	})
}

// Ablation: the cache hit path (the paper's "ten PowerPC instructions").
func BenchmarkCacheHitPath(b *testing.B) {
	c := cache.New()
	loc := event.Loc{Obj: 7, Slot: 0}
	c.Insert(1, loc, event.Read, 0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Lookup(1, loc, event.Read) {
			b.Fatal("must hit")
		}
	}
}

// Baseline interpreter speed (events per second context for Table 2).
func BenchmarkInterpreterBase(b *testing.B) {
	runPipeline(b, "sor2", core.Base())
}
