package racedet

import (
	"strings"
	"testing"
)

// TestPublicPostMortem exercises Options.RecordTo + Replay + FullRace
// through the public API.
func TestPublicPostMortem(t *testing.T) {
	var log strings.Builder
	res, err := Detect("racy.mj", racyProgram, Options{RecordTo: &log})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("no event log recorded")
	}
	replayed, err := Replay(strings.NewReader(log.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.RacyObjects != res.RacyObjects {
		t.Fatalf("replay reports %d racy objects, original %d", replayed.RacyObjects, res.RacyObjects)
	}
	pairs, err := FullRace(strings.NewReader(log.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("FullRace empty on a racy log")
	}
	if pairs[0].First == "" || pairs[0].Second == "" {
		t.Fatalf("pair rendering empty: %+v", pairs[0])
	}
	capped, err := FullRace(strings.NewReader(log.String()), 1)
	if err != nil || len(capped) != 1 {
		t.Fatalf("maxPairs not honored: %d, %v", len(capped), err)
	}
}

// TestPublicDeadlockAndImmutability exercises the §10 extensions
// through the public API.
func TestPublicDeadlockAndImmutability(t *testing.T) {
	const src = `
class Lock { int pad; }
class Cfg { int n; }
class W extends Thread {
    Lock p; Lock q; Cfg cfg; int acc;
    W(Lock p0, Lock q0, Cfg c) { p = p0; q = q0; cfg = c; }
    void run() {
        synchronized (p) { synchronized (q) { acc = acc + cfg.n; } }
    }
}
class Main {
    static void main() {
        Lock a = new Lock();
        Lock b = new Lock();
        Cfg cfg = new Cfg();
        cfg.n = 5;
        W w1 = new W(a, b, cfg);
        W w2 = new W(b, a, cfg);
        w1.start(); w1.join();
        w2.start(); w2.join();
        print(w1.acc + w2.acc);
    }
}`
	res, err := Detect("ext.mj", src, Options{
		DetectDeadlocks:     true,
		AnalyzeImmutability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PotentialDeadlocks) != 1 {
		t.Errorf("deadlocks = %v, want the AB-BA cycle", res.PotentialDeadlocks)
	}
	found := false
	for _, r := range res.Immutability {
		if strings.Contains(r, "OBSERVED-IMMUTABLE Cfg.n") {
			found = true
		}
	}
	if !found {
		t.Errorf("Cfg.n should be observed immutable: %v", res.Immutability)
	}
}

// TestPublicPackedTrie: same reports, smaller history.
func TestPublicPackedTrie(t *testing.T) {
	plain, err := Detect("racy.mj", racyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := Detect("racy.mj", racyProgram, Options{UsePackedTrie: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.RacyObjects != packed.RacyObjects {
		t.Fatalf("packed trie changed detection: %d vs %d", packed.RacyObjects, plain.RacyObjects)
	}
	if packed.Stats.TrieNodes > plain.Stats.TrieNodes {
		t.Errorf("packed nodes %d > plain %d", packed.Stats.TrieNodes, plain.Stats.TrieNodes)
	}
}

// TestPublicStaticPartners: the §2.6 debugging hints reach the API.
func TestPublicStaticPartners(t *testing.T) {
	res, err := Detect("racy.mj", racyProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) == 0 || len(res.Races[0].StaticPartners) == 0 {
		t.Fatalf("races lack static partner hints: %+v", res.Races)
	}
	if !strings.Contains(res.Races[0].StaticPartners[0], "racy.mj:") {
		t.Errorf("partner hint lacks position: %q", res.Races[0].StaticPartners[0])
	}
}
