package racedet

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// schedDepProgram hides its race behind a publication window; the
// fixed round-robin schedule (seed 0) never executes the racing write.
const schedDepProgram = `
class Shared { int flag; int data; }
class Mutex { int x; }
class Setter extends Thread {
    Shared s; Mutex m;
    Setter(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        synchronized (m) { s.flag = 1; }
        s.data = 2;
    }
}
class Racer extends Thread {
    Shared s; Mutex m;
    Racer(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        int f;
        synchronized (m) { f = s.flag; }
        if (f == 0) { s.data = 1; }
    }
}
class Main {
    static void main() {
        Shared s = new Shared();
        Mutex m = new Mutex();
        s.data = 0;
        Setter a = new Setter(s, m);
        Racer b = new Racer(s, m);
        a.start(); b.start(); a.join(); b.join();
        print(s.data);
    }
}`

func TestFuzzClassifiesStableRace(t *testing.T) {
	res, err := Fuzz("racy.mj", racyProgram, FuzzOptions{Count: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 || res.Failed != 0 {
		t.Fatalf("completed=%d failed=%d", res.Completed, res.Failed)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	f := res.Findings[0]
	if f.Race.Field != "Data.f" || !f.Stable || f.MinSeed != 0 {
		t.Errorf("finding = %+v", f)
	}
	if len(f.Seeds) != 8 {
		t.Errorf("seeds = %v", f.Seeds)
	}
	if !bytes.HasPrefix(f.Schedule, []byte("mjsched 1 ")) {
		t.Errorf("witness schedule = %q", f.Schedule)
	}
	if len(res.Stable()) != 1 || len(res.ScheduleDependent()) != 0 {
		t.Errorf("classification accessors disagree")
	}
}

func TestFuzzFindsScheduleDependentRace(t *testing.T) {
	// Sanity: the fixed schedule misses it.
	base, err := Detect("prog.mj", schedDepProgram, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.RacyObjects != 0 {
		t.Fatalf("fixed schedule already reports: %v", base.Races)
	}

	res, err := Fuzz("prog.mj", schedDepProgram, FuzzOptions{Count: 16})
	if err != nil {
		t.Fatal(err)
	}
	var f *FuzzFinding
	for i := range res.Findings {
		if res.Findings[i].Race.Field == "Shared.data" {
			f = &res.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("fuzz missed Shared.data: %+v", res.Findings)
	}
	if f.Stable {
		t.Errorf("publication-window race classified stable")
	}
	if f.MinSeed == 0 {
		t.Errorf("seed 0 should not expose it (seeds %v)", f.Seeds)
	}

	// The witness schedule replays to the identical race, repeatedly.
	var pos string
	for i := 0; i < 5; i++ {
		rr, err := Detect("prog.mj", schedDepProgram, Options{ReplaySchedule: f.Schedule})
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		var got string
		for _, r := range rr.Races {
			if r.Field == "Shared.data" {
				got = r.Pos
			}
		}
		if got == "" {
			t.Fatalf("replay %d missed the race: %v", i, rr.Races)
		}
		if i == 0 {
			pos = got
		} else if got != pos {
			t.Fatalf("replay %d diverged: %q vs %q", i, got, pos)
		}
	}
}

func TestDetectRuntimeErrorCarriesDump(t *testing.T) {
	const deadlock = `
class A { int f; }
class W extends Thread {
    A p; A q;
    W(A p0, A q0) { p = p0; q = q0; }
    void run() {
        for (int i = 0; i < 200; i++) {
            synchronized (p) { synchronized (q) { p.f = p.f + 1; } }
        }
    }
}
class Main {
    static void main() {
        A x = new A(); A y = new A();
        W a = new W(x, y); W b = new W(y, x);
        a.start(); b.start(); a.join(); b.join();
    }
}`
	_, err := Detect("dead.mj", deadlock, Options{Seed: 1, Quantum: 3})
	if err == nil {
		t.Fatal("AB-BA program should deadlock under seed 1, quantum 3")
	}
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RuntimeError", err, err)
	}
	if re.Kind != "deadlock" {
		t.Errorf("Kind = %q", re.Kind)
	}
	if re.ThreadDump == "" || !strings.Contains(re.ThreadDump, "blocked") {
		t.Errorf("ThreadDump = %q", re.ThreadDump)
	}
}

func TestDetectScheduleRecordReplay(t *testing.T) {
	rec, err := Detect("racy.mj", racyProgram, Options{Seed: 9, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(rec.Schedule, []byte("mjsched 1 seed=9")) {
		t.Fatalf("recorded schedule = %q", rec.Schedule)
	}
	rep, err := Detect("racy.mj", racyProgram, Options{ReplaySchedule: rec.Schedule})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output != rec.Output || rep.RacyObjects != rec.RacyObjects {
		t.Errorf("replay diverged: output %q vs %q, racy %d vs %d",
			rep.Output, rec.Output, rep.RacyObjects, rec.RacyObjects)
	}

	if _, err := Detect("racy.mj", racyProgram, Options{ReplaySchedule: []byte("garbage")}); err == nil {
		t.Error("corrupt schedule must be rejected")
	}
}

func TestDetectBoundedMemoryStillReports(t *testing.T) {
	res, err := Detect("racy.mj", racyProgram, Options{
		MaxTrieNodes:      1,
		MaxCacheThreads:   1,
		MaxOwnerLocations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RacyObjects == 0 {
		t.Fatal("bounded mode dropped the race (must only over-report)")
	}
	s := res.Stats
	if s.TrieCollapses == 0 && s.CacheThreadEvictions == 0 && s.OwnerOverflows == 0 {
		t.Errorf("tiny bounds produced no degradation counters: %+v", s)
	}
}
