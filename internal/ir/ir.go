// Package ir defines the register-based intermediate representation
// that MJ methods are lowered into, and the control-flow-graph
// utilities shared by the analysis and instrumentation phases.
//
// The IR plays the role of Jalapeño's HIR in the paper: it is where
// trace pseudo-instructions are inserted (§6), where dominators and
// value numbers are computed for the static weaker-than elimination,
// and what the interpreter executes.
//
// Shape: each function is a CFG of basic blocks; each block holds a
// sequence of Instr values and ends with exactly one terminator
// (Jump, Branch, or Return). Virtual registers are dense ints;
// registers 0..NumParams-1 hold the parameters (register 0 is the
// receiver for instance methods).
package ir

import (
	"fmt"
	"sort"
	"strings"

	"racedet/internal/lang/sem"
	"racedet/internal/lang/token"
)

// Op enumerates IR operations.
type Op int

// IR operations. Terminators are grouped at the end; IsTerminator
// relies on that.
const (
	OpInvalid Op = iota

	OpConst     // Dst = Value
	OpBoolConst // Dst = Value (0/1)
	OpNull      // Dst = null
	OpStrConst  // Dst = Str (print operands only)
	OpMove      // Dst = Src[0]

	OpBin // Dst = Src[0] <BinKind> Src[1]
	OpNeg // Dst = -Src[0]
	OpNot // Dst = !Src[0]

	OpNew      // Dst = new Class (fields zeroed; constructor called separately)
	OpNewArray // Dst = new array, length Src[0], element Elem
	OpArrayLen // Dst = Src[0].length
	OpClassRef // Dst = the class object of Class (used as a static-method lock)

	OpGetField   // Dst = Src[0].Field
	OpPutField   // Src[0].Field = Src[1]
	OpGetStatic  // Dst = Field (static)
	OpPutStatic  // Field = Src[0] (static)
	OpArrayLoad  // Dst = Src[0][Src[1]]
	OpArrayStore // Src[0][Src[1]] = Src[2]

	OpCall // Dst? = call Callee(Src...); Src[0] is the receiver unless Callee.Static

	OpMonEnter  // monitorenter Src[0]
	OpMonExit   // monitorexit Src[0]
	OpStart     // Src[0].start()
	OpJoin      // Src[0].join()
	OpWait      // Src[0].wait(): release the monitor, sleep until notified
	OpNotify    // Src[0].notify(): wake one waiter
	OpNotifyAll // Src[0].notifyAll(): wake every waiter

	OpPrint // print Src[0] (or Str if Src empty)

	// OpTrace is the trace(o, f, L, a) pseudo-instruction of §6. It is
	// inserted by internal/instrument after each memory access that
	// the static datarace set says might race, and lowered by the
	// interpreter into a call to the runtime detector.
	OpTrace

	// Terminators.
	OpJump   // goto Targets[0]
	OpBranch // if Src[0] goto Targets[0] else Targets[1]
	OpReturn // return Src[0]? (Src empty for void)
)

var opNames = [...]string{
	OpInvalid:    "invalid",
	OpConst:      "const",
	OpBoolConst:  "bconst",
	OpNull:       "null",
	OpStrConst:   "sconst",
	OpMove:       "move",
	OpBin:        "bin",
	OpNeg:        "neg",
	OpNot:        "not",
	OpNew:        "new",
	OpNewArray:   "newarray",
	OpArrayLen:   "arraylen",
	OpClassRef:   "classref",
	OpGetField:   "getfield",
	OpPutField:   "putfield",
	OpGetStatic:  "getstatic",
	OpPutStatic:  "putstatic",
	OpArrayLoad:  "aload",
	OpArrayStore: "astore",
	OpCall:       "call",
	OpMonEnter:   "monenter",
	OpMonExit:    "monexit",
	OpStart:      "start",
	OpJoin:       "join",
	OpWait:       "wait",
	OpNotify:     "notify",
	OpNotifyAll:  "notifyall",
	OpPrint:      "print",
	OpTrace:      "trace",
	OpJump:       "jump",
	OpBranch:     "branch",
	OpReturn:     "return",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpJump || o == OpBranch || o == OpReturn }

// BinKind enumerates binary arithmetic/comparison operators. Logical
// && and || are lowered to control flow and never appear here.
type BinKind int

// Binary operator kinds.
const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinEq
	BinNeq
	BinLt
	BinLeq
	BinGt
	BinGeq
)

var binNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="}

func (b BinKind) String() string { return binNames[b] }

// AccessKind distinguishes reads from writes in trace instructions and
// access events.
type AccessKind int

// Access kinds. Write is the ⊑-bottom of the access lattice
// (Write ⊑ anything).
const (
	Read AccessKind = iota
	Write
)

func (a AccessKind) String() string {
	if a == Write {
		return "WRITE"
	}
	return "READ"
}

// NoReg marks an absent register operand.
const NoReg = -1

// Instr is one IR instruction. Which fields are meaningful depends on
// Op; unused fields are zero.
type Instr struct {
	Op  Op
	Dst int   // destination register, or NoReg
	Src []int // source registers

	Value   int64       // OpConst/OpBoolConst
	Str     string      // OpStrConst
	Bin     BinKind     // OpBin
	Class   *sem.Class  // OpNew/OpClassRef
	Elem    sem.Type    // OpNewArray element type
	Field   *sem.Field  // field ops and field traces
	Callee  *sem.Method // OpCall: static target; dynamic dispatch if !Callee.Static
	Virtual bool        // OpCall: dispatch on the receiver's dynamic class

	// Trace payload (OpTrace). IsArrayTrace distinguishes array-element
	// traces (Field == nil, Src[0] = array ref) from field traces. For
	// static-field traces Src is empty and Field.Static is true.
	// TraceName is the precomputed human-readable location name
	// ("Class.field" or "[]") so the per-event runtime path never
	// allocates.
	Access       AccessKind
	IsArrayTrace bool
	TraceName    string

	// SyncRegions is the stack of lexical synchronized-region IDs
	// enclosing this instruction (outermost first). Populated during
	// lowering for every instruction; the static weaker-than check
	// uses prefix ordering on it to establish e_i.L ⊆ e_j.L (§6.1).
	SyncRegions []int

	// Pos is the source location, used in race reports.
	Pos token.Pos

	// targets holds the control-flow targets of a terminator
	// (OpJump/OpBranch), set via Func.SetTargets. They live on the
	// instruction so the interpreter's branch dispatch is a field load
	// instead of a map lookup — Targets is on the interpreter's
	// per-instruction path and the map probe showed up at ~9% of total
	// CPU on the paper benchmarks.
	targets []*Block
}

// HasDst reports whether the instruction defines its Dst register.
func (in *Instr) HasDst() bool { return in.Dst != NoReg }

// IsAccess reports whether the instruction reads or writes heap memory
// that datarace detection cares about (field or array element).
func (in *Instr) IsAccess() bool {
	switch in.Op {
	case OpGetField, OpPutField, OpGetStatic, OpPutStatic, OpArrayLoad, OpArrayStore:
		return true
	}
	return false
}

// AccessInfo describes the memory access performed by an access
// instruction: its kind, whether it is an array-element access, the
// register holding the object/array reference (NoReg for statics), and
// the field (nil for arrays).
func (in *Instr) AccessInfo() (kind AccessKind, isArray bool, refReg int, field *sem.Field) {
	switch in.Op {
	case OpGetField:
		return Read, false, in.Src[0], in.Field
	case OpPutField:
		return Write, false, in.Src[0], in.Field
	case OpGetStatic:
		return Read, false, NoReg, in.Field
	case OpPutStatic:
		return Write, false, NoReg, in.Field
	case OpArrayLoad:
		return Read, true, in.Src[0], nil
	case OpArrayStore:
		return Write, true, in.Src[0], nil
	}
	panic("ir: AccessInfo on non-access instruction " + in.Op.String())
}

// IsCallLike reports whether the instruction transfers control to
// another method or thread operation; the static weaker-than Exec
// condition (§6, Def. 4) forbids these between the two statements.
func (in *Instr) IsCallLike() bool {
	switch in.Op {
	case OpCall, OpStart, OpJoin, OpWait, OpNotify, OpNotifyAll:
		return true
	}
	return false
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block

	// Comment labels the block's origin (e.g. "while.cond") in dumps.
	Comment string
}

// Terminator returns the block's final instruction, or nil if the
// block is still under construction.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Func is one lowered method.
type Func struct {
	Method    *sem.Method
	Name      string // "Class.method"
	NumParams int    // receiver included for instance methods
	NumRegs   int
	Blocks    []*Block // Blocks[0] is entry
	Entry     *Block

	// SyncRegionCount is the number of lexical synchronized regions in
	// the method (method-level synchronization counts as region 0).
	SyncRegionCount int
}

// NewFunc creates an empty function shell for lowering.
func NewFunc(m *sem.Method, name string, numParams int) *Func {
	return &Func{
		Method:    m,
		Name:      name,
		NumParams: numParams,
		NumRegs:   numParams,
	}
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() int {
	r := f.NumRegs
	f.NumRegs++
	return r
}

// NewBlock appends a new empty block.
func (f *Func) NewBlock(comment string) *Block {
	b := &Block{ID: len(f.Blocks), Comment: comment}
	f.Blocks = append(f.Blocks, b)
	if f.Entry == nil {
		f.Entry = b
	}
	return b
}

// SetTargets records the control-flow targets of a terminator and
// wires predecessor/successor edges.
func (f *Func) SetTargets(from *Block, in *Instr, targets ...*Block) {
	in.targets = targets
	for _, t := range targets {
		from.Succs = append(from.Succs, t)
		t.Preds = append(t.Preds, from)
	}
}

// Targets returns the control-flow targets of a terminator.
func (f *Func) Targets(in *Instr) []*Block { return in.targets }

// Targets returns the instruction's control-flow targets (terminators
// only; nil otherwise).
func (in *Instr) Targets() []*Block { return in.targets }

// RecomputeEdges rebuilds Preds/Succs from terminator targets; the
// instrumentation phases call it after CFG surgery.
func (f *Func) RecomputeEdges() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		for _, s := range t.targets {
			b.Succs = append(b.Succs, s)
			s.Preds = append(s.Preds, b)
		}
	}
}

// ReachableBlocks returns the set of blocks reachable from entry in
// reverse-postorder.
func (f *Func) ReachableBlocks() []*Block {
	seen := make([]bool, len(f.Blocks))
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		order = append(order, b)
	}
	if f.Entry != nil {
		dfs(f.Entry)
	}
	// reverse to get RPO
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Program is the whole lowered program.
type Program struct {
	Sem    *sem.Program
	Funcs  []*Func
	FuncOf map[*sem.Method]*Func
}

// FuncByName finds a function by its "Class.method" name (tests and
// tooling).
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Dumping

// String renders the function as readable text.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d regs=%d)\n", f.Name, f.NumParams, f.NumRegs)
	for _, blk := range f.Blocks {
		comment := ""
		if blk.Comment != "" {
			comment = " ; " + blk.Comment
		}
		fmt.Fprintf(&b, "b%d:%s\n", blk.ID, comment)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", f.InstrString(in))
		}
	}
	return b.String()
}

// InstrString renders one instruction.
func (f *Func) InstrString(in *Instr) string {
	reg := func(r int) string { return fmt.Sprintf("r%d", r) }
	srcs := func() string {
		parts := make([]string, len(in.Src))
		for i, s := range in.Src {
			parts[i] = reg(s)
		}
		return strings.Join(parts, ", ")
	}
	dst := ""
	if in.HasDst() {
		dst = reg(in.Dst) + " = "
	}
	body := ""
	switch in.Op {
	case OpConst, OpBoolConst:
		body = fmt.Sprintf("%s %d", in.Op, in.Value)
	case OpStrConst:
		body = fmt.Sprintf("%s %q", in.Op, in.Str)
	case OpBin:
		body = fmt.Sprintf("%s %s %s", reg(in.Src[0]), in.Bin, reg(in.Src[1]))
	case OpNew:
		body = fmt.Sprintf("new %s", in.Class.Name)
	case OpClassRef:
		body = fmt.Sprintf("classref %s", in.Class.Name)
	case OpNewArray:
		body = fmt.Sprintf("newarray %s[%s]", in.Elem, reg(in.Src[0]))
	case OpGetField, OpPutField:
		body = fmt.Sprintf("%s %s [%s]", in.Op, in.Field.QualifiedName(), srcs())
	case OpGetStatic, OpPutStatic:
		body = fmt.Sprintf("%s %s [%s]", in.Op, in.Field.QualifiedName(), srcs())
	case OpCall:
		v := ""
		if in.Virtual {
			v = " virtual"
		}
		body = fmt.Sprintf("call%s %s(%s)", v, in.Callee.QualifiedName(), srcs())
	case OpTrace:
		what := "?"
		switch {
		case in.IsArrayTrace:
			what = fmt.Sprintf("array %s", srcs())
		case in.Field != nil && in.Field.Static:
			what = fmt.Sprintf("static %s", in.Field.QualifiedName())
		case in.Field != nil:
			what = fmt.Sprintf("%s.%s", srcs(), in.Field.Name)
		}
		body = fmt.Sprintf("trace %s %s sync=%v", what, in.Access, in.SyncRegions)
	case OpJump:
		body = fmt.Sprintf("jump b%d", in.targets[0].ID)
	case OpBranch:
		body = fmt.Sprintf("branch %s b%d b%d", reg(in.Src[0]), in.targets[0].ID, in.targets[1].ID)
	case OpReturn:
		if len(in.Src) > 0 {
			body = fmt.Sprintf("return %s", reg(in.Src[0]))
		} else {
			body = "return"
		}
	default:
		if len(in.Src) > 0 {
			body = fmt.Sprintf("%s %s", in.Op, srcs())
		} else {
			body = in.Op.String()
		}
	}
	return dst + body
}

// CountInstrs returns the number of instructions satisfying pred
// across all reachable blocks (test/bench helper).
func (f *Func) CountInstrs(pred func(*Instr) bool) int {
	n := 0
	for _, b := range f.ReachableBlocks() {
		for _, in := range b.Instrs {
			if pred(in) {
				n++
			}
		}
	}
	return n
}

// SortedFuncNames lists function names in sorted order (test helper).
func (p *Program) SortedFuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}
