package ir_test

import (
	"strings"
	"testing"

	"racedet/internal/instrument"
	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
)

// TestDumpCoversInstructionForms lowers a program exercising every
// instruction family and checks the textual dump renders each form —
// the dump is what cmd/mjdump and failing analyses show humans.
func TestDumpCoversInstructionForms(t *testing.T) {
	src := `
class Other { int g; static int sg; }
class A extends Thread {
    int f;
    int[] arr;
    static boolean flag;

    synchronized int work(Other o, int n) {
        int x = n + 1;
        int y = -x;
        boolean b = !flag;
        flag = false;
        f = x * y % 3;
        int r = f;
        o.g = r / 1;
        Other.sg = o.g - 2;
        arr = new int[n];
        arr[0] = arr.length;
        int w = arr[0];
        arr[0] = w + 1;
        Other p = new Other();
        synchronized (p) {
            p.g = helper(p);
        }
        if (b) { return r; }
        while (x > 0) { x = x - 1; }
        print("done");
        print(x);
        return x;
    }

    int helper(Other o) { return o.g; }

    void run() { }
}
class M {
    static void main() {
        A a = new A();
        a.start();
        a.join();
    }
}`
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	low := lower.Lower(sp)
	work := low.Prog.FuncByName("A.work")
	instrument.InsertTraces(work, nil)

	dump := work.String()
	for _, want := range []string{
		"func A.work",
		"const", "neg", "not", "bconst",
		"getfield A.f", "putfield A.f",
		"getfield Other.g", "putfield Other.g",
		"getstatic A.flag", "putstatic Other.sg",
		"newarray", "astore", "aload", "arraylen",
		"new Other",
		"monenter", "monexit",
		"call virtual A.helper",
		"trace", "WRITE", "READ", "sync=",
		"branch", "jump", "return",
		"print",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}

	main := low.Prog.FuncByName("M.main")
	mdump := main.String()
	for _, want := range []string{"start", "join", "call virtual"} {
		if !strings.Contains(mdump, want) {
			// start/join are not virtual calls; check separately below.
			if want == "call virtual" {
				continue
			}
			t.Errorf("main dump missing %q:\n%s", want, mdump)
		}
	}

	// classref appears in static synchronized methods.
	src2 := `
class B { static synchronized void s() { } }
class M { static void main() { B.s(); } }`
	prog2 := parser.MustParse("t.mj", src2)
	sp2 := sem.MustCheck(prog2)
	low2 := lower.Lower(sp2)
	if !strings.Contains(low2.Prog.FuncByName("B.s").String(), "classref B") {
		t.Error("classref missing from static synchronized dump")
	}
}

// TestCountInstrs sanity-checks the test helper itself.
func TestCountInstrs(t *testing.T) {
	src := `
class A {
    int f;
    void m() { f = 1; f = 2; }
}
class M { static void main() { } }`
	prog := parser.MustParse("t.mj", src)
	sp := sem.MustCheck(prog)
	low := lower.Lower(sp)
	f := low.Prog.FuncByName("A.m")
	if n := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpPutField }); n != 2 {
		t.Errorf("putfield count = %d", n)
	}
	if names := low.Prog.SortedFuncNames(); len(names) != 2 || names[0] != "A.m" {
		t.Errorf("sorted names = %v", names)
	}
	if low.Prog.FuncByName("missing") != nil {
		t.Error("FuncByName should return nil for unknown names")
	}
}
