package ir

import (
	"strings"
	"testing"

	"racedet/internal/lang/sem"
)

func TestOpStrings(t *testing.T) {
	for op := OpInvalid; op <= OpReturn; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has no name", int(op))
		}
	}
}

func TestIsTerminator(t *testing.T) {
	for _, op := range []Op{OpJump, OpBranch, OpReturn} {
		if !op.IsTerminator() {
			t.Errorf("%v must be a terminator", op)
		}
	}
	for _, op := range []Op{OpConst, OpCall, OpTrace, OpMonExit} {
		if op.IsTerminator() {
			t.Errorf("%v must not be a terminator", op)
		}
	}
}

func TestAccessInfo(t *testing.T) {
	f := &sem.Field{Name: "f"}
	cases := []struct {
		in      *Instr
		kind    AccessKind
		isArray bool
		refReg  int
		field   *sem.Field
	}{
		{&Instr{Op: OpGetField, Src: []int{3}, Field: f}, Read, false, 3, f},
		{&Instr{Op: OpPutField, Src: []int{3, 4}, Field: f}, Write, false, 3, f},
		{&Instr{Op: OpGetStatic, Field: f}, Read, false, NoReg, f},
		{&Instr{Op: OpPutStatic, Src: []int{5}, Field: f}, Write, false, NoReg, f},
		{&Instr{Op: OpArrayLoad, Src: []int{6, 7}}, Read, true, 6, nil},
		{&Instr{Op: OpArrayStore, Src: []int{6, 7, 8}}, Write, true, 6, nil},
	}
	for _, c := range cases {
		kind, isArray, refReg, field := c.in.AccessInfo()
		if kind != c.kind || isArray != c.isArray || refReg != c.refReg || field != c.field {
			t.Errorf("%v: AccessInfo = (%v,%v,%v,%v)", c.in.Op, kind, isArray, refReg, field)
		}
		if !c.in.IsAccess() {
			t.Errorf("%v must be an access", c.in.Op)
		}
	}
	if (&Instr{Op: OpConst}).IsAccess() {
		t.Error("const is not an access")
	}
}

func TestAccessInfoPanicsOnNonAccess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	(&Instr{Op: OpConst}).AccessInfo()
}

func TestIsCallLike(t *testing.T) {
	for _, op := range []Op{OpCall, OpStart, OpJoin} {
		if !(&Instr{Op: op}).IsCallLike() {
			t.Errorf("%v must be call-like", op)
		}
	}
	if (&Instr{Op: OpMonEnter}).IsCallLike() {
		t.Error("monitorenter is not call-like")
	}
}

func TestFuncConstruction(t *testing.T) {
	f := NewFunc(nil, "T.m", 2)
	if r := f.NewReg(); r != 2 {
		t.Errorf("first fresh reg = %d, want 2 (params occupy 0..1)", r)
	}
	b0 := f.NewBlock("entry")
	b1 := f.NewBlock("next")
	if f.Entry != b0 {
		t.Error("first block must be entry")
	}
	j := &Instr{Op: OpJump, Dst: NoReg}
	b0.Instrs = append(b0.Instrs, j)
	f.SetTargets(b0, j, b1)
	if len(b0.Succs) != 1 || b0.Succs[0] != b1 || len(b1.Preds) != 1 {
		t.Error("edges not wired")
	}
	if got := f.Targets(j); len(got) != 1 || got[0] != b1 {
		t.Error("Targets lookup failed")
	}
	ret := &Instr{Op: OpReturn, Dst: NoReg}
	b1.Instrs = append(b1.Instrs, ret)

	rb := f.ReachableBlocks()
	if len(rb) != 2 || rb[0] != b0 {
		t.Errorf("reachable = %v", rb)
	}

	// RecomputeEdges reproduces the same edges.
	f.RecomputeEdges()
	if len(b0.Succs) != 1 || b0.Succs[0] != b1 {
		t.Error("RecomputeEdges lost the edge")
	}
}

func TestUnreachableBlockExcluded(t *testing.T) {
	f := NewFunc(nil, "T.m", 0)
	b0 := f.NewBlock("entry")
	b0.Instrs = append(b0.Instrs, &Instr{Op: OpReturn, Dst: NoReg})
	dead := f.NewBlock("dead")
	dead.Instrs = append(dead.Instrs, &Instr{Op: OpReturn, Dst: NoReg})
	rb := f.ReachableBlocks()
	if len(rb) != 1 {
		t.Errorf("reachable = %d blocks, want 1", len(rb))
	}
}

func TestTerminatorNilWhileOpen(t *testing.T) {
	f := NewFunc(nil, "T.m", 0)
	b := f.NewBlock("entry")
	if b.Terminator() != nil {
		t.Error("empty block has no terminator")
	}
	b.Instrs = append(b.Instrs, &Instr{Op: OpConst, Dst: 0})
	if b.Terminator() != nil {
		t.Error("open block has no terminator")
	}
	b.Instrs = append(b.Instrs, &Instr{Op: OpReturn, Dst: NoReg})
	if b.Terminator() == nil {
		t.Error("terminated block must report its terminator")
	}
}
