package interp

import (
	"strings"
	"testing"

	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
	"racedet/internal/rt/event"
)

// runSrc executes src and returns its print output.
func runSrc(t *testing.T, src string, opts Options) (string, Result) {
	t.Helper()
	out, res, err := tryRun(t, src, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out, res
}

func tryRun(t *testing.T, src string, opts Options) (string, Result, error) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	low := lower.Lower(sp)
	var buf strings.Builder
	opts.Out = &buf
	m := New(low.Prog, opts)
	res, err := m.Run()
	return buf.String(), res, err
}

func TestArithmeticAndControlFlow(t *testing.T) {
	out, _ := runSrc(t, `
class M {
    static void main() {
        int sum = 0;
        for (int i = 1; i <= 10; i++) { sum += i; }
        print(sum);                    // 55
        print(7 / 2);                  // 3
        print(-7 / 2);                 // -3 (truncating)
        print(7 % 3);                  // 1
        print(2 * 3 - 4);              // 2
        int x = 5;
        if (x > 3 && x < 10) { print(100); } else { print(200); }
        boolean b = !(x == 5) || x >= 5;
        print(b);
        print('A');                    // 65
        print("hello");
    }
}`, Options{})
	want := "55\n3\n-3\n1\n2\n100\ntrue\n65\nhello\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	out, _ := runSrc(t, `
class M {
    static void main() {
        int i = 0;
        int sum = 0;
        while (true) {
            i++;
            if (i % 2 == 0) { continue; }
            if (i > 9) { break; }
            sum += i;
        }
        print(sum); // 1+3+5+7+9 = 25
    }
}`, Options{})
	if strings.TrimSpace(out) != "25" {
		t.Errorf("output = %q", out)
	}
}

func TestObjectsAndVirtualDispatch(t *testing.T) {
	out, _ := runSrc(t, `
class Shape { int area() { return 0; } }
class Square extends Shape {
    int side;
    Square(int s) { side = s; }
    int area() { return side * side; }
}
class Rect extends Square {
    int h;
    Rect(int w, int hh) { side = w; h = hh; }
    int area() { return side * h; }
}
class M {
    static void main() {
        Shape[] shapes = new Shape[3];
        shapes[0] = new Shape();
        shapes[1] = new Square(4);
        shapes[2] = new Rect(3, 5);
        int total = 0;
        for (int i = 0; i < shapes.length; i++) {
            total += shapes[i].area();
        }
        print(total); // 0 + 16 + 15
    }
}`, Options{})
	if strings.TrimSpace(out) != "31" {
		t.Errorf("output = %q", out)
	}
}

func TestRecursion(t *testing.T) {
	out, _ := runSrc(t, `
class M {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static void main() { print(fib(15)); }
}`, Options{})
	if strings.TrimSpace(out) != "610" {
		t.Errorf("fib(15) = %q, want 610", out)
	}
}

func TestFieldsDefaultValues(t *testing.T) {
	out, _ := runSrc(t, `
class A { int i; boolean b; A next; int[] arr; }
class M {
    static void main() {
        A a = new A();
        print(a.i);
        print(a.b);
        print(a.next == null);
        print(a.arr == null);
        int[] fresh = new int[3];
        print(fresh[1]);
    }
}`, Options{})
	want := "0\nfalse\ntrue\ntrue\n0\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestThreadsAndJoin(t *testing.T) {
	out, _ := runSrc(t, `
class Counter { int n; }
class W extends Thread {
    Counter c;
    int times;
    W(Counter c0, int k) { c = c0; times = k; }
    void run() {
        for (int i = 0; i < times; i++) {
            synchronized (c) { c.n = c.n + 1; }
        }
    }
}
class M {
    static void main() {
        Counter c = new Counter();
        W a = new W(c, 100);
        W b = new W(c, 50);
        a.start();
        b.start();
        a.join();
        b.join();
        print(c.n);
    }
}`, Options{})
	if strings.TrimSpace(out) != "150" {
		t.Errorf("output = %q, want 150", out)
	}
}

func TestMonitorsAreReentrant(t *testing.T) {
	out, _ := runSrc(t, `
class A {
    int f;
    synchronized void outer() { inner(); }
    synchronized void inner() { synchronized (this) { f = 42; } }
}
class M {
    static void main() {
        A a = new A();
        a.outer();
        print(a.f);
    }
}`, Options{})
	if strings.TrimSpace(out) != "42" {
		t.Errorf("output = %q", out)
	}
}

func TestMonitorMutualExclusion(t *testing.T) {
	// Two threads increment a counter 500 times each under a lock;
	// the total must be exact under every quantum and seed.
	src := `
class Counter { int n; }
class W extends Thread {
    Counter c;
    W(Counter c0) { c = c0; }
    void run() {
        for (int i = 0; i < 500; i++) {
            synchronized (c) {
                int v = c.n;
                c.n = v + 1;
            }
        }
    }
}
class M {
    static void main() {
        Counter c = new Counter();
        W a = new W(c);
        W b = new W(c);
        a.start(); b.start(); a.join(); b.join();
        print(c.n);
    }
}`
	for _, o := range []Options{{}, {Quantum: 1}, {Quantum: 7}, {Seed: 3}, {Seed: 99, Quantum: 13}} {
		out, _ := runSrc(t, src, o)
		if strings.TrimSpace(out) != "1000" {
			t.Errorf("opts %+v: output %q, want 1000", o, out)
		}
	}
}

func TestUnsynchronizedLostUpdateIsPossible(t *testing.T) {
	// Same program without the lock: with a small quantum, updates
	// interleave and some are lost. This demonstrates the interpreter
	// actually interleaves threads mid-read-modify-write.
	src := `
class Counter { int n; }
class W extends Thread {
    Counter c;
    W(Counter c0) { c = c0; }
    void run() {
        for (int i = 0; i < 500; i++) {
            int v = c.n;
            c.n = v + 1;
        }
    }
}
class M {
    static void main() {
        Counter c = new Counter();
        W a = new W(c);
        W b = new W(c);
        a.start(); b.start(); a.join(); b.join();
        print(c.n);
    }
}`
	out, _ := runSrc(t, src, Options{Quantum: 3})
	if strings.TrimSpace(out) == "1000" {
		t.Errorf("expected lost updates with quantum 3, got exact 1000")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
class W extends Thread {
    int id; int acc;
    W(int i) { id = i; acc = 0; }
    void run() { for (int i = 0; i < 100; i++) { acc = acc + id * i; } }
}
class M {
    static void main() {
        W a = new W(1); W b = new W(2);
        a.start(); b.start(); a.join(); b.join();
        print(a.acc + b.acc);
    }
}`
	_, res1 := runSrc(t, src, Options{Seed: 42})
	_, res2 := runSrc(t, src, Options{Seed: 42})
	if res1.Steps != res2.Steps || res1.ContextSwaps != res2.ContextSwaps {
		t.Errorf("same seed differs: %+v vs %+v", res1, res2)
	}
	_, res3 := runSrc(t, src, Options{Seed: 43})
	if res3.ContextSwaps == res1.ContextSwaps && res3.Steps == res1.Steps {
		t.Logf("note: different seeds produced identical schedules (possible but unusual)")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"null field", `
class A { int f; }
class M { static void main() { A a = null; a.f = 1; } }`, "null pointer"},
		{"null array", `
class M { static void main() { int[] a = null; a[0] = 1; } }`, "null pointer"},
		{"bounds", `
class M { static void main() { int[] a = new int[2]; a[2] = 1; } }`, "out of bounds"},
		{"negative index", `
class M { static void main() { int[] a = new int[2]; a[0 - 1] = 1; } }`, "out of bounds"},
		{"div zero", `
class M { static void main() { int z = 0; print(1 / z); } }`, "division by zero"},
		{"mod zero", `
class M { static void main() { int z = 0; print(1 % z); } }`, "division by zero"},
		{"negative array size", `
class M { static void main() { int n = 0 - 3; int[] a = new int[n]; } }`, "negative array size"},
		{"double start", `
class W extends Thread { void run() { } }
class M { static void main() { W w = new W(); w.start(); w.join(); w.start(); } }`, "started twice"},
		{"stack overflow", `
class M {
    static int boom(int x) { return boom(x + 1); }
    static void main() { print(boom(0)); }
}`, "stack overflow"},
		{"deadlock", `
class A { int f; }
class W extends Thread {
    A p; A q;
    W(A p0, A q0) { p = p0; q = q0; }
    void run() {
        for (int i = 0; i < 50; i++) {
            synchronized (p) { synchronized (q) { p.f = p.f + 1; } }
        }
    }
}
class M {
    static void main() {
        A x = new A(); A y = new A();
        W w1 = new W(x, y);
        W w2 = new W(y, x);
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`, "deadlock"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			opts := Options{Quantum: 3}
			_, _, err := tryRun(t, c.src, opts)
			if err == nil {
				t.Fatalf("want runtime error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), c.want)
			}
		})
	}
}

func TestJoinBeforeStartIsNoop(t *testing.T) {
	out, _ := runSrc(t, `
class W extends Thread { void run() { } }
class M {
    static void main() {
        W w = new W();
        w.join();
        print(1);
    }
}`, Options{})
	if strings.TrimSpace(out) != "1" {
		t.Errorf("output = %q", out)
	}
}

func TestThreadWithDefaultRunFinishesImmediately(t *testing.T) {
	out, _ := runSrc(t, `
class W extends Thread { }
class M {
    static void main() {
        W w = new W();
        w.start();
        w.join();
        print(2);
    }
}`, Options{})
	if strings.TrimSpace(out) != "2" {
		t.Errorf("output = %q", out)
	}
}

// recordingSink captures the event stream for assertions.
type recordingSink struct {
	started  []event.ThreadID
	finished []event.ThreadID
	joins    [][2]event.ThreadID
	enters   int
	exits    int
	accesses int
}

func (r *recordingSink) ThreadStarted(c, p event.ThreadID) { r.started = append(r.started, c) }
func (r *recordingSink) ThreadFinished(t event.ThreadID)   { r.finished = append(r.finished, t) }
func (r *recordingSink) Joined(a, b event.ThreadID) {
	r.joins = append(r.joins, [2]event.ThreadID{a, b})
}
func (r *recordingSink) MonitorEnter(t event.ThreadID, l event.ObjID, d int) {
	if d == 1 {
		r.enters++
	}
}
func (r *recordingSink) MonitorExit(t event.ThreadID, l event.ObjID, d int) {
	if d == 0 {
		r.exits++
	}
}
func (r *recordingSink) Access(a event.Access) { r.accesses++ }

func TestSinkEventStream(t *testing.T) {
	src := `
class W extends Thread {
    int n;
    void run() { synchronized (this) { n = 1; } }
}
class M {
    static void main() {
        W w1 = new W();
        W w2 = new W();
        w1.start(); w2.start();
        w1.join(); w2.join();
    }
}`
	prog, _ := parser.Parse("t.mj", src)
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	low := lower.Lower(sp)
	sink := &recordingSink{}
	m := New(low.Prog, Options{Sink: sink})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.started) != 3 { // main + two workers
		t.Errorf("started = %v", sink.started)
	}
	if len(sink.finished) != 3 {
		t.Errorf("finished = %v", sink.finished)
	}
	if len(sink.joins) != 2 {
		t.Errorf("joins = %v", sink.joins)
	}
	if sink.enters != sink.exits || sink.enters != 2 {
		t.Errorf("enters/exits = %d/%d, want 2/2", sink.enters, sink.exits)
	}
	// No instrumentation inserted, so no access events.
	if sink.accesses != 0 {
		t.Errorf("accesses = %d, want 0 without instrumentation", sink.accesses)
	}
}

func TestObjectIdentityAndDescribe(t *testing.T) {
	src := `
class A { int f; }
class M { static void main() { A a = new A(); a.f = 1; } }`
	prog, _ := parser.Parse("t.mj", src)
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	low := lower.Lower(sp)
	m := New(low.Prog, Options{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	obj := m.ObjectByID(1)
	if obj == nil || obj.Class == nil || obj.Class.Name != "A" {
		t.Fatalf("object 1 = %+v", obj)
	}
	if !strings.Contains(m.DescribeObj(1), "A#1") {
		t.Errorf("describe = %q", m.DescribeObj(1))
	}
	if m.ObjectByID(999) != nil {
		t.Error("out-of-range ID should be nil")
	}
	if !strings.Contains(m.DescribeObj(event.PseudoLock(2)), "S2") {
		t.Errorf("pseudolock describe = %q", m.DescribeObj(event.PseudoLock(2)))
	}
}

func TestStepBudget(t *testing.T) {
	src := `
class M { static void main() { while (true) { } } }`
	_, _, err := tryRun(t, src, Options{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("want step-budget error, got %v", err)
	}
}
