// Schedule traces: a compact record of every scheduling decision the
// interpreter made, sufficient to re-execute the exact interleaving.
//
// The interpreter is deterministic given its scheduling decisions: a
// slice is fully described by (thread, quantum bound) — the slice ends
// early, deterministically, if the thread blocks, finishes, or yields.
// Recording that pair per slice therefore captures the whole
// interleaving, and replaying the sequence reproduces the run
// instruction for instruction, including every access event the
// detector sees. This is what turns a schedule-dependent race found by
// the fuzzing harness into a reproducible artifact: the witness trace
// replays the racy interleaving on demand.
//
// The on-disk format is line-oriented text, run-length encoded:
//
//	mjsched 1 seed=<seed> quantum=<quantum>
//	<thread> <quantum> [<repeat>]
//	...
//
// Consecutive identical (thread, quantum) decisions collapse into one
// line with a repeat count, so fixed-quantum round-robin phases cost a
// few bytes regardless of length.
package interp

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"racedet/internal/rt/event"
)

// scheduleMagic identifies schedule trace files (version 1).
const scheduleMagic = "mjsched 1"

// ScheduleSlice is one scheduling decision: run Thread for at most
// Quantum counted instructions.
type ScheduleSlice struct {
	Thread  event.ThreadID
	Quantum int32
}

// ScheduleTrace is the full decision sequence of one execution plus
// the scheduler parameters that produced it (informational; replay
// only consumes Slices and Quantum).
type ScheduleTrace struct {
	Seed    int64
	Quantum int
	Slices  []ScheduleSlice
}

// Encode writes the trace in the mjsched text format.
func (tr *ScheduleTrace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s seed=%d quantum=%d\n", scheduleMagic, tr.Seed, tr.Quantum)
	for i := 0; i < len(tr.Slices); {
		s := tr.Slices[i]
		j := i + 1
		for j < len(tr.Slices) && tr.Slices[j] == s {
			j++
		}
		if n := j - i; n > 1 {
			fmt.Fprintf(bw, "%d %d %d\n", int32(s.Thread), s.Quantum, n)
		} else {
			fmt.Fprintf(bw, "%d %d\n", int32(s.Thread), s.Quantum)
		}
		i = j
	}
	return bw.Flush()
}

// String renders the trace in the mjsched format.
func (tr *ScheduleTrace) String() string {
	var b strings.Builder
	tr.Encode(&b)
	return b.String()
}

// DecodeSchedule parses a trace in the mjsched text format.
func DecodeSchedule(r io.Reader) (*ScheduleTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("schedule trace: empty input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, scheduleMagic) {
		return nil, fmt.Errorf("schedule trace: bad header %q (want %q ...)", header, scheduleMagic)
	}
	tr := &ScheduleTrace{}
	if _, err := fmt.Sscanf(strings.TrimPrefix(header, scheduleMagic),
		" seed=%d quantum=%d", &tr.Seed, &tr.Quantum); err != nil {
		return nil, fmt.Errorf("schedule trace: bad header %q: %v", header, err)
	}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var thread, quantum int32
		repeat := 1
		switch n, err := fmt.Sscanf(text, "%d %d %d", &thread, &quantum, &repeat); {
		case n >= 2:
			// ok (repeat optional)
		default:
			return nil, fmt.Errorf("schedule trace line %d: %q: %v", line, text, err)
		}
		if quantum <= 0 || repeat <= 0 {
			return nil, fmt.Errorf("schedule trace line %d: non-positive quantum/repeat in %q", line, text)
		}
		for i := 0; i < repeat; i++ {
			tr.Slices = append(tr.Slices, ScheduleSlice{Thread: event.ThreadID(thread), Quantum: quantum})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("schedule trace: %w", err)
	}
	return tr, nil
}
