package interp

import (
	"strings"
	"testing"
)

func TestWaitNotifyProducerConsumer(t *testing.T) {
	// Classic bounded hand-off: the consumer waits for the producer's
	// value; the producer notifies after publishing.
	src := `
class Box {
    int value;
    boolean full;

    synchronized void put(int v) {
        while (full) { this.wait(); }
        value = v;
        full = true;
        this.notifyAll();
    }

    synchronized int take() {
        while (!full) { this.wait(); }
        full = false;
        this.notifyAll();
        return value;
    }
}
class Producer extends Thread {
    Box box;
    Producer(Box b) { box = b; }
    void run() {
        for (int i = 1; i <= 20; i++) { box.put(i); }
    }
}
class Consumer extends Thread {
    Box box;
    int sum;
    Consumer(Box b) { box = b; sum = 0; }
    void run() {
        for (int i = 0; i < 20; i++) { sum = sum + box.take(); }
    }
}
class Main {
    static void main() {
        Box b = new Box();
        Producer p = new Producer(b);
        Consumer c = new Consumer(b);
        c.start();
        p.start();
        p.join();
        c.join();
        print(c.sum); // 1+2+...+20 = 210
    }
}`
	for _, o := range []Options{{}, {Quantum: 3}, {Seed: 7}, {Seed: 11, Quantum: 5}} {
		out, _ := runSrc(t, src, o)
		if strings.TrimSpace(out) != "210" {
			t.Errorf("opts %+v: output = %q, want 210", o, out)
		}
	}
}

func TestWaitRestoresReentrancy(t *testing.T) {
	src := `
class Box {
    boolean ready;
    int out;

    synchronized void outer() {
        inner(); // depth 2 during wait
    }
    synchronized void inner() {
        while (!ready) { this.wait(); }
        out = 42;
    }
    synchronized void fire() {
        ready = true;
        this.notify();
    }
}
class Waiter extends Thread {
    Box b;
    Waiter(Box b0) { b = b0; }
    void run() { b.outer(); }
}
class Main {
    static void main() {
        Box b = new Box();
        Waiter w = new Waiter(b);
        w.start();
        b.fire();
        w.join();
        print(b.out);
    }
}`
	out, _ := runSrc(t, src, Options{})
	if strings.TrimSpace(out) != "42" {
		t.Errorf("output = %q, want 42", out)
	}
}

func TestWaitErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"wait without monitor", `
class A { int f; }
class M { static void main() { A a = new A(); a.wait(); } }`, "not held"},
		{"notify without monitor", `
class A { int f; }
class M { static void main() { A a = new A(); a.notify(); } }`, "not held"},
		{"lost wakeup deadlock", `
class A { int f; }
class W extends Thread {
    A a;
    W(A a0) { a = a0; }
    void run() { synchronized (a) { a.wait(); } }
}
class M {
    static void main() {
        A a = new A();
        W w = new W(a);
        w.start();
        w.join(); // nobody ever notifies
    }
}`, "deadlock"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := tryRun(t, c.src, Options{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestNotifyWakesOne(t *testing.T) {
	// Two waiters, one notify: exactly one proceeds; a second notify
	// releases the other.
	src := `
class Gate {
    int passed;
    synchronized void await() {
        this.wait();
        passed = passed + 1;
    }
    synchronized void open() { this.notify(); }
    synchronized int count() { return passed; }
}
class Waiter extends Thread {
    Gate g;
    Waiter(Gate g0) { g = g0; }
    void run() { g.await(); }
}
class Main {
    static void main() {
        Gate g = new Gate();
        Waiter w1 = new Waiter(g);
        Waiter w2 = new Waiter(g);
        w1.start();
        w2.start();
        // Let both park, then open twice.
        int spin = 0;
        while (spin < 200) { spin = spin + 1; }
        g.open();
        g.open();
        w1.join();
        w2.join();
        print(g.count());
    }
}`
	out, _ := runSrc(t, src, Options{})
	if strings.TrimSpace(out) != "2" {
		t.Errorf("output = %q, want 2", out)
	}
}
