package interp

import (
	"errors"
	"strings"
	"testing"

	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
)

// contended is a program whose output genuinely depends on the
// schedule: two threads append their IDs to a shared log array without
// synchronization, so the final contents record the interleaving.
const contended = `
class Log {
    int[] slots;
    int n;
    Log() { slots = new int[400]; n = 0; }
}
class Writer extends Thread {
    Log log; int id;
    Writer(Log l, int i) { log = l; id = i; }
    void run() {
        for (int i = 0; i < 100; i++) {
            int k = log.n;
            if (k < 400) { log.slots[k] = id; log.n = k + 1; }
        }
    }
}
class Main {
    static void main() {
        Log l = new Log();
        Writer a = new Writer(l, 1);
        Writer b = new Writer(l, 2);
        a.start(); b.start();
        a.join(); b.join();
        int sum = 0;
        for (int i = 0; i < l.n; i++) { sum = sum + l.slots[i] * (i + 1); }
        print(sum);
        print(l.n);
    }
}`

func runWithOpts(t *testing.T, src string, opts Options) (string, Result, *Machine, error) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	low := lower.Lower(sp)
	var buf strings.Builder
	opts.Out = &buf
	m := New(low.Prog, opts)
	res, err := m.Run()
	return buf.String(), res, m, err
}

func TestScheduleRecordReplayRoundTrip(t *testing.T) {
	for _, seed := range []int64{0, 7, 42, 1234} {
		out1, res1, m1, err := runWithOpts(t, contended, Options{Seed: seed, RecordSchedule: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := m1.Schedule()
		if tr == nil || len(tr.Slices) == 0 {
			t.Fatalf("seed %d: no schedule recorded", seed)
		}

		// Replay must reproduce the run exactly: output, steps, swaps.
		out2, res2, _, err := runWithOpts(t, contended, Options{Replay: tr, Quantum: tr.Quantum})
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if out1 != out2 {
			t.Errorf("seed %d: replay output %q != recorded %q", seed, out2, out1)
		}
		if res1.Steps != res2.Steps || res1.ContextSwaps != res2.ContextSwaps {
			t.Errorf("seed %d: replay work differs: %+v vs %+v", seed, res2, res1)
		}
	}
}

func TestScheduleEncodeDecodeRoundTrip(t *testing.T) {
	_, _, m, err := runWithOpts(t, contended, Options{Seed: 99, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Schedule()
	text := tr.String()
	if !strings.HasPrefix(text, "mjsched 1 seed=99") {
		t.Fatalf("bad header: %q", strings.SplitN(text, "\n", 2)[0])
	}
	got, err := DecodeSchedule(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != tr.Seed || got.Quantum != tr.Quantum || len(got.Slices) != len(tr.Slices) {
		t.Fatalf("decode mismatch: %d/%d/%d vs %d/%d/%d",
			got.Seed, got.Quantum, len(got.Slices), tr.Seed, tr.Quantum, len(tr.Slices))
	}
	for i := range got.Slices {
		if got.Slices[i] != tr.Slices[i] {
			t.Fatalf("slice %d: %+v != %+v", i, got.Slices[i], tr.Slices[i])
		}
	}

	// Replaying the decoded trace still reproduces the execution.
	out1, _, _, _ := runWithOpts(t, contended, Options{Seed: 99})
	out2, _, _, err := runWithOpts(t, contended, Options{Replay: got, Quantum: got.Quantum})
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Errorf("decoded replay output %q != original %q", out2, out1)
	}
}

func TestScheduleReplayDivergence(t *testing.T) {
	// A trace recorded from a different program must fail with a
	// structured divergence error, not a crash or a silent wrong run.
	_, _, m, err := runWithOpts(t, contended, Options{Seed: 5, RecordSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Schedule()
	single := `
class Main { static void main() { print(1); } }`
	_, _, _, err = runWithOpts(t, single, Options{Replay: tr, Quantum: tr.Quantum})
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != ErrScheduleDivergence {
		t.Fatalf("want schedule-divergence error, got %v", err)
	}
}

func TestScheduleDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"not a trace\n0 40\n",
		"mjsched 1 seed=x quantum=40\n",
		"mjsched 1 seed=0 quantum=40\n0 -3\n",
		"mjsched 1 seed=0 quantum=40\nbogus line\n",
	}
	for _, c := range cases {
		if _, err := DecodeSchedule(strings.NewReader(c)); err == nil {
			t.Errorf("DecodeSchedule(%q) succeeded, want error", c)
		}
	}
}
