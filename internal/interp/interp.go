// Package interp executes lowered MJ programs on a deterministic
// multithreaded interpreter.
//
// The interpreter plays the role of the paper's Jalapeño runtime: it
// provides reentrant monitors, thread start/join, a heap with stable
// object identities (no GC, mirroring the paper's "enough memory that
// GC does not occur"), and it feeds the runtime detector through the
// event.Sink interface — monitor enter/exit, thread lifecycle, and one
// Access event per executed trace pseudo-instruction.
//
// Scheduling is deterministic: a seeded scheduler preempts threads at
// a fixed (or seed-jittered) instruction quantum, so every experiment
// in EXPERIMENTS.md reproduces exactly. Determinism is safe here
// because the detector's race definition is lockset-based, not
// order-based: any interleaving exposes the same locksets.
package interp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"racedet/internal/ir"
	"racedet/internal/lang/sem"
	"racedet/internal/lang/token"
	"racedet/internal/rt/event"
)

// Value is an MJ runtime value: an int/bool payload or an object
// reference. The invariant is I == 0 for references and Ref == nil for
// primitives, so equality can compare both fields.
type Value struct {
	I   int64
	Ref *Object
}

// IntVal makes an int value.
func IntVal(i int64) Value { return Value{I: i} }

// BoolVal makes a boolean value.
func BoolVal(b bool) Value {
	if b {
		return Value{I: 1}
	}
	return Value{}
}

// Bool reads the value as a boolean.
func (v Value) Bool() bool { return v.I != 0 }

// Object is a heap object: a class instance, an array, or a class
// object (the per-class lock-and-statics holder).
type Object struct {
	ID       event.ObjID
	Class    *sem.Class // instance class, or the class a class-object represents
	IsArray  bool
	IsClass  bool
	Fields   []Value // instance slots, or static slots for class objects
	Elems    []Value // array storage
	ElemType sem.Type
	Str      string // string literals
	AllocPos token.Pos

	// Monitor state.
	monOwner *Thread
	monDepth int
	waitSet  []*Thread // threads parked in Object.wait

	// Thread-object state.
	thread  *Thread // the running thread, once started
	started bool
}

// Describe renders the object for race reports.
func (o *Object) Describe() string {
	switch {
	case o.IsClass:
		return fmt.Sprintf("class %s", o.Class.Name)
	case o.IsArray:
		return fmt.Sprintf("array#%d (alloc %s)", int64(o.ID), o.AllocPos)
	default:
		return fmt.Sprintf("%s#%d (alloc %s)", o.Class.Name, int64(o.ID), o.AllocPos)
	}
}

// threadState is a thread's scheduler state.
type threadState int8

const (
	stateRunnable threadState = iota
	stateBlocked              // waiting to acquire a monitor
	stateJoining              // waiting for another thread to finish
	stateWaiting              // in a monitor's wait set (Object.wait)
	stateFinished
)

// Thread is one interpreter thread.
type Thread struct {
	ID      event.ThreadID
	Obj     *Object // the Thread object; nil for main
	frames  []frame
	state   threadState
	waitMon *Object // monitor being waited for (stateBlocked/stateWaiting)
	waitThr *Thread // thread being joined (stateJoining)
	// savedDepth preserves the reentrancy depth across Object.wait:
	// wait releases the monitor fully and re-acquires to this depth
	// after being notified.
	savedDepth int
	steps      uint64

	// regArena backs the frames' register windows: calls carve a
	// window off the end instead of allocating a fresh slice per frame
	// (the dominant allocation in call-heavy programs). See pushWindow.
	regArena []Value
}

type frame struct {
	fn      *ir.Func
	regs    []Value
	block   *ir.Block
	pc      int
	retReg  int // register in the caller frame receiving the return value
	regBase int // offset of this frame's register window in the arena
}

// pushWindow carves an n-register zeroed window off the thread's
// register arena. When the arena must grow, a fresh backing array is
// allocated and older frames simply keep their windows in the previous
// one — every register access goes through frame.regs, so stale arena
// prefixes are never read, and the space is reclaimed as those frames
// pop.
func (t *Thread) pushWindow(n int) ([]Value, int) {
	base := len(t.regArena)
	if base+n > cap(t.regArena) {
		size := cap(t.regArena)*2 + 64
		if size < base+n {
			size = base + n
		}
		t.regArena = make([]Value, base, size)
	}
	t.regArena = t.regArena[:base+n]
	regs := t.regArena[base : base+n : base+n]
	for i := range regs {
		regs[i] = Value{}
	}
	return regs, base
}

// popWindow releases the most recent window (called when its frame
// returns).
func (t *Thread) popWindow(base int) { t.regArena = t.regArena[:base] }

// ErrKind classifies a RuntimeError so callers (the fuzzing harness,
// the CLI exit-code logic) can react without parsing messages.
type ErrKind uint8

// RuntimeError kinds.
const (
	// ErrFault is a language-level fault: null dereference, index out
	// of bounds, division by zero, monitor misuse, stack overflow.
	ErrFault ErrKind = iota
	// ErrDeadlock: every unfinished thread is blocked.
	ErrDeadlock
	// ErrLivelock: no thread made observable progress for
	// Options.LivelockWindow consecutive slices.
	ErrLivelock
	// ErrWatchdog: the wall-clock deadline passed.
	ErrWatchdog
	// ErrStepBudget: Options.MaxSteps instructions executed.
	ErrStepBudget
	// ErrPanic: an interpreter (or detector) panic was recovered.
	ErrPanic
	// ErrScheduleDivergence: a replayed schedule named a thread that
	// does not exist or cannot run — the program or configuration does
	// not match the recording.
	ErrScheduleDivergence
)

func (k ErrKind) String() string {
	switch k {
	case ErrDeadlock:
		return "deadlock"
	case ErrLivelock:
		return "livelock"
	case ErrWatchdog:
		return "watchdog"
	case ErrStepBudget:
		return "step-budget"
	case ErrPanic:
		return "panic"
	case ErrScheduleDivergence:
		return "schedule-divergence"
	}
	return "fault"
}

// RuntimeError is a fatal execution error (null dereference, index out
// of bounds, division by zero, deadlock, livelock, watchdog timeout,
// step-budget exhaustion, or a recovered interpreter panic). Dump
// carries the scheduler's thread dump for every scheduler-level kind,
// so a postmortem is self-contained.
type RuntimeError struct {
	Kind   ErrKind
	Pos    token.Pos
	Thread event.ThreadID
	Msg    string
	Dump   string // thread dump at failure time ("" for plain faults)
}

func (e *RuntimeError) Error() string {
	s := fmt.Sprintf("%s: runtime error in %s: %s", e.Pos, e.Thread, e.Msg)
	if e.Dump != "" {
		s += "; threads: " + e.Dump
	}
	return s
}

// Options configures a Machine.
type Options struct {
	// Sink receives runtime events; nil means event.NullSink.
	Sink event.Sink
	// Out receives print output; nil discards it.
	Out io.Writer
	// Quantum is the preemption interval in instructions (default 40).
	Quantum int
	// Seed jitters per-slice quanta for schedule diversity; 0 keeps
	// the fixed quantum.
	Seed int64
	// MaxSteps bounds total executed instructions (default 200M).
	MaxSteps uint64

	// RecordSchedule captures every scheduling decision; the trace is
	// available from Machine.Schedule after the run and replays the
	// exact interleaving via Replay.
	RecordSchedule bool
	// Replay re-executes a recorded schedule instead of consulting the
	// scheduler: each slice runs the recorded thread for the recorded
	// quantum. Seed is ignored while the trace lasts; if the trace is
	// exhausted with threads still runnable (e.g. it was recorded from
	// a run that aborted), execution falls back to fixed round-robin.
	Replay *ScheduleTrace
	// Deadline, when non-zero, is a wall-clock watchdog: the run aborts
	// with an ErrWatchdog RuntimeError (and a thread dump) once the
	// deadline passes. Checked between slices, so a slice's worth of
	// instructions may still execute after the deadline.
	Deadline time.Time
	// LivelockWindow, when positive, terminates the run with an
	// ErrLivelock RuntimeError after that many consecutive slices in
	// which no thread made observable progress (heap write, allocation,
	// I/O, or a thread lifecycle/wait-set transition). Spinning
	// programs die in O(window) slices instead of burning the full
	// step budget. 0 disables the heuristic.
	LivelockWindow int
	// SliceHook, when non-nil, runs before each scheduling slice with
	// the slice ordinal. It exists for diagnostics and fault-injection
	// tests; a panic inside it is recovered like any interpreter panic.
	SliceHook func(slice uint64)

	// BatchSize, when positive, buffers access events per thread and
	// delivers them to the sink in batches of up to this size instead of
	// one call per access. Buffers are flushed before every non-access
	// sink callback, at every context switch, and when the run ends, so
	// the sink observes exactly the unbatched event order (see
	// event.Batcher). The inlined QuickCheck fast path keeps consulting
	// the unwrapped sink; the context-switch flush guarantees buffered
	// events always belong to the thread being checked, which keeps the
	// fast path's cache view consistent.
	BatchSize int
}

// Result summarizes an execution.
type Result struct {
	Steps        uint64 // instructions executed (deterministic work metric)
	ThreadsUsed  int
	ObjectsMade  int64
	TraceEvents  uint64 // Access events delivered to the sink
	MonitorOps   uint64
	ContextSwaps uint64
}

// AccessFastPath is the optional inlined cache check of §4: when the
// sink implements it, the interpreter consults it before building the
// access event, mirroring the paper's inlined ten-instruction cache
// hit that never calls into the detector.
type AccessFastPath interface {
	QuickCheck(t event.ThreadID, loc event.Loc, kind event.Kind) bool
}

// Machine executes one program.
type Machine struct {
	prog    *ir.Program
	opts    Options
	sink    event.Sink
	fast    AccessFastPath // non-nil when sink implements AccessFastPath
	batcher *event.Batcher // non-nil when Options.BatchSize > 0
	out     io.Writer

	threads   []*Thread
	classObjs map[*sem.Class]*Object
	objects   []*Object // index = ObjID-1 (IDs are dense, starting at 1)
	nextObj   event.ObjID
	rngState  uint64

	res Result
	err *RuntimeError

	// yield ends the current thread's quantum early. It is set when a
	// monitor release wakes blocked threads: without it, a fixed
	// quantum can pause a lock-cycling thread inside its critical
	// section at the same point every slice, so woken waiters always
	// find the lock held again (deterministic lockstep starvation).
	yield bool

	// progress ticks on every observable state change (heap write,
	// allocation, print, thread lifecycle or wait-set transition); the
	// livelock heuristic fires when it stalls across many slices.
	progress uint64
	// cur is the thread currently holding the scheduler slice; panic
	// recovery attributes the failure to it.
	cur *Thread
	// sched accumulates the schedule trace when RecordSchedule is set.
	sched *ScheduleTrace
	// replayIdx is the cursor into opts.Replay.Slices.
	replayIdx int
}

// New prepares a machine for the lowered program.
func New(prog *ir.Program, opts Options) *Machine {
	if opts.Sink == nil {
		opts.Sink = event.NullSink{}
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	if opts.Quantum <= 0 {
		opts.Quantum = 40
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	m := &Machine{
		prog:      prog,
		opts:      opts,
		sink:      opts.Sink,
		out:       opts.Out,
		classObjs: make(map[*sem.Class]*Object),
		nextObj:   1,
		rngState:  uint64(opts.Seed)*2654435761 + 1,
	}
	if f, ok := opts.Sink.(AccessFastPath); ok {
		m.fast = f
	}
	if opts.BatchSize > 0 {
		m.batcher = event.NewBatcher(opts.Sink, opts.BatchSize)
		m.sink = m.batcher
	}
	if opts.RecordSchedule {
		m.sched = &ScheduleTrace{Seed: opts.Seed, Quantum: m.opts.Quantum}
	}
	return m
}

// Schedule returns the recorded schedule trace (nil unless
// Options.RecordSchedule was set).
func (m *Machine) Schedule() *ScheduleTrace { return m.sched }

// DescribeObj renders an object ID for reports (detector callback).
func (m *Machine) DescribeObj(id event.ObjID) string {
	if o := m.ObjectByID(id); o != nil {
		return o.Describe()
	}
	if id.IsPseudoLock() {
		return id.String()
	}
	return fmt.Sprintf("obj#%d", int64(id))
}

// ObjectByID returns the heap object with the given ID (tests).
func (m *Machine) ObjectByID(id event.ObjID) *Object {
	if id < 1 || int64(id) > int64(len(m.objects)) {
		return nil
	}
	return m.objects[id-1]
}

// register adds an object to the dense registry and assigns its ID.
func (m *Machine) register(o *Object) {
	o.ID = m.nextObj
	m.nextObj++
	m.objects = append(m.objects, o)
}

// rand returns a deterministic pseudo-random uint64 (xorshift*).
func (m *Machine) rand() uint64 {
	x := m.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	m.rngState = x
	return x * 2685821657736338717
}

// Run executes the program from its static main() to completion. Any
// panic in the interpreter or the attached detector stack is recovered
// and surfaced as an ErrPanic RuntimeError with a thread dump, so a
// harness running many programs survives an interpreter bug on one.
func (m *Machine) Run() (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			re := &RuntimeError{
				Kind: ErrPanic,
				Msg:  fmt.Sprintf("interpreter panic: %v", r),
				Dump: m.threadDump(),
			}
			if m.cur != nil {
				re.Thread = m.cur.ID
			}
			res, err = m.res, re
		}
	}()
	// Close the batcher on every exit path (including aborts): the
	// final flush delivers trailing buffered accesses so the detector's
	// results are complete when Run returns, and Close then recycles
	// the batch buffers to the package pool for the next run.
	// Registered after the recover defer, so a detector panic during
	// this final flush is still converted to an ErrPanic result.
	if m.batcher != nil {
		defer m.batcher.Close()
	}
	mainFn := m.prog.FuncOf[m.prog.Sem.Main]
	if mainFn == nil {
		return m.res, fmt.Errorf("interp: program has no lowered main")
	}
	main := &Thread{ID: 0}
	mregs, mbase := main.pushWindow(mainFn.NumRegs)
	main.frames = append(main.frames, frame{
		fn:      mainFn,
		regs:    mregs,
		block:   mainFn.Entry,
		retReg:  ir.NoReg,
		regBase: mbase,
	})
	m.threads = append(m.threads, main)
	m.res.ThreadsUsed = 1
	m.sink.ThreadStarted(0, event.NoThread)

	cur := 0
	var slice uint64
	idleSlices := 0
	for {
		t, quantum := m.nextSlice(&cur)
		if m.err != nil {
			// nextSlice detected a replay divergence.
			return m.res, m.err
		}
		if t == nil {
			break
		}
		if m.sched != nil {
			m.sched.Slices = append(m.sched.Slices, ScheduleSlice{Thread: t.ID, Quantum: int32(quantum)})
		}
		if m.opts.SliceHook != nil {
			m.opts.SliceHook(slice)
		}
		m.cur = t
		progressBefore := m.progress
		m.yield = false
		for i := 0; i < quantum && t.state == stateRunnable && !m.yield; {
			if m.step(t) {
				// Trace pseudo-instructions do not consume quantum:
				// instrumentation must not perturb the schedule, so
				// every configuration of the same program preempts at
				// identical program points (making reports comparable
				// across ablations).
				i++
			}
			if m.err != nil {
				return m.res, m.err
			}
			if m.res.Steps >= m.opts.MaxSteps {
				return m.res, &RuntimeError{
					Kind:   ErrStepBudget,
					Thread: t.ID,
					Msg:    fmt.Sprintf("step budget exhausted after %d instructions (possible livelock)", m.res.Steps),
					Dump:   m.threadDump(),
				}
			}
		}
		// Flush buffered accesses at the slice boundary: the invariant
		// that pending events always belong to the currently running
		// thread is what keeps the QuickCheck fast path sound under
		// batching (a cross-thread ownership transition can never hide
		// in a buffer while the cache answers for another thread).
		if m.batcher != nil {
			m.batcher.Flush()
		}
		m.res.ContextSwaps++
		slice++

		// Wall-clock watchdog. time.Now is off the per-step path: one
		// check per 64 slices keeps the overhead unmeasurable while
		// bounding overrun to ~64 quanta of instructions.
		if !m.opts.Deadline.IsZero() && slice&63 == 0 && time.Now().After(m.opts.Deadline) {
			return m.res, &RuntimeError{
				Kind:   ErrWatchdog,
				Thread: t.ID,
				Msg:    fmt.Sprintf("watchdog: wall-clock deadline exceeded after %d instructions", m.res.Steps),
				Dump:   m.threadDump(),
			}
		}
		// Livelock heuristic: if no thread made observable progress for
		// a full window of slices, the program is spinning (threads
		// reading flags nobody will ever write). Terminate gracefully
		// instead of burning the remaining step budget.
		if m.opts.LivelockWindow > 0 {
			if m.progress != progressBefore {
				idleSlices = 0
			} else if idleSlices++; idleSlices >= m.opts.LivelockWindow {
				return m.res, &RuntimeError{
					Kind:   ErrLivelock,
					Thread: t.ID,
					Msg:    fmt.Sprintf("livelock suspected: no thread made progress for %d consecutive slices", idleSlices),
					Dump:   m.threadDump(),
				}
			}
		}
	}

	// All threads finished, or some are stuck.
	for _, t := range m.threads {
		if t.state != stateFinished {
			return m.res, &RuntimeError{
				Kind:   ErrDeadlock,
				Thread: t.ID,
				Msg:    "deadlock: thread is blocked and no thread can run",
				Dump:   m.threadDump(),
			}
		}
	}
	return m.res, nil
}

// nextSlice chooses the next thread and quantum: from the replay trace
// while it lasts, otherwise from the live scheduler. A nil thread with
// m.err set signals replay divergence; plain nil means no runnable
// thread remains.
func (m *Machine) nextSlice(cur *int) (*Thread, int) {
	if r := m.opts.Replay; r != nil && m.replayIdx < len(r.Slices) {
		sl := r.Slices[m.replayIdx]
		m.replayIdx++
		var t *Thread
		if int(sl.Thread) >= 0 && int(sl.Thread) < len(m.threads) {
			t = m.threads[sl.Thread]
		}
		if t == nil || t.state != stateRunnable {
			m.err = &RuntimeError{
				Kind:   ErrScheduleDivergence,
				Thread: sl.Thread,
				Msg: fmt.Sprintf("schedule replay diverged at slice %d: thread %s is not runnable (program or configuration does not match the recording)",
					m.replayIdx-1, sl.Thread),
				Dump: m.threadDump(),
			}
			return nil, 0
		}
		return t, int(sl.Quantum)
	}
	t := m.pickRunnable(cur)
	if t == nil {
		return nil, 0
	}
	quantum := m.opts.Quantum
	// An exhausted replay trace falls back to fixed round-robin (no
	// seeded jitter): the RNG state no longer corresponds to the
	// recording, so determinism comes from the fixed policy instead.
	if m.opts.Seed != 0 && m.opts.Replay == nil {
		quantum = 1 + int(m.rand()%uint64(m.opts.Quantum*2))
	}
	return t, quantum
}

// threadDump renders scheduler state for livelock diagnostics.
func (m *Machine) threadDump() string {
	var b strings.Builder
	for _, t := range m.threads {
		st := "runnable"
		switch t.state {
		case stateBlocked:
			st = "blocked"
		case stateJoining:
			st = "joining"
		case stateWaiting:
			st = "waiting"
		case stateFinished:
			st = "finished"
		}
		loc := "-"
		if len(t.frames) > 0 {
			f := t.frames[len(t.frames)-1]
			loc = fmt.Sprintf("%s b%d pc%d", f.fn.Name, f.block.ID, f.pc)
			if f.pc < len(f.block.Instrs) {
				loc += " " + f.block.Instrs[f.pc].Op.String()
			}
		}
		fmt.Fprintf(&b, "[%s %s steps=%d at %s] ", t.ID, st, t.steps, loc)
	}
	return b.String()
}

// pickRunnable selects the next runnable thread round-robin starting
// after *cur; returns nil if none.
func (m *Machine) pickRunnable(cur *int) *Thread {
	n := len(m.threads)
	if n == 0 {
		return nil
	}
	if m.opts.Seed != 0 && m.opts.Replay == nil {
		// Seeded policy: random start point, then scan. Disabled when
		// replaying: past the trace the fixed policy keeps the run
		// deterministic.
		*cur = int(m.rand() % uint64(n))
	}
	for i := 1; i <= n; i++ {
		idx := (*cur + i) % n
		t := m.threads[idx]
		if t.state == stateRunnable {
			*cur = idx
			return t
		}
	}
	return nil
}

// fail records a fatal runtime error.
func (m *Machine) fail(t *Thread, pos token.Pos, format string, args ...interface{}) {
	if m.err == nil {
		m.err = &RuntimeError{Pos: pos, Thread: t.ID, Msg: fmt.Sprintf(format, args...)}
	}
}

// ---------------------------------------------------------------------------
// Heap

func (m *Machine) allocObject(cl *sem.Class, pos token.Pos) *Object {
	o := &Object{
		Class:    cl,
		Fields:   make([]Value, len(cl.InstanceSlots())),
		AllocPos: pos,
	}
	m.register(o)
	m.res.ObjectsMade++
	m.progress++
	return o
}

func (m *Machine) allocArray(elem sem.Type, n int64, pos token.Pos) *Object {
	o := &Object{
		IsArray:  true,
		Elems:    make([]Value, n),
		ElemType: elem,
		AllocPos: pos,
	}
	m.register(o)
	m.res.ObjectsMade++
	m.progress++
	return o
}

// classObject returns (creating on first use) the class object holding
// cl's static fields and serving as the lock of static synchronized
// methods.
func (m *Machine) classObject(cl *sem.Class) *Object {
	if o := m.classObjs[cl]; o != nil {
		return o
	}
	o := &Object{
		Class:   cl,
		IsClass: true,
		Fields:  make([]Value, len(cl.StaticSlots())),
	}
	m.register(o)
	m.classObjs[cl] = o
	return o
}

// ---------------------------------------------------------------------------
// Execution

// step executes one instruction of t and reports whether it counts
// toward the scheduling quantum (trace pseudo-instructions do not; see
// Run).
func (m *Machine) step(t *Thread) bool {
	f := &t.frames[len(t.frames)-1]
	if f.pc >= len(f.block.Instrs) {
		m.fail(t, token.Pos{}, "fell off the end of block b%d in %s", f.block.ID, f.fn.Name)
		return true
	}
	in := f.block.Instrs[f.pc]
	m.res.Steps++
	t.steps++
	counts := in.Op != ir.OpTrace

	switch in.Op {
	case ir.OpConst, ir.OpBoolConst:
		f.regs[in.Dst] = Value{I: in.Value}
	case ir.OpNull:
		f.regs[in.Dst] = Value{}
	case ir.OpStrConst:
		f.regs[in.Dst] = Value{Ref: &Object{Str: in.Str}}
	case ir.OpMove:
		f.regs[in.Dst] = f.regs[in.Src[0]]

	case ir.OpBin:
		m.binOp(t, f, in)
	case ir.OpNeg:
		f.regs[in.Dst] = Value{I: -f.regs[in.Src[0]].I}
	case ir.OpNot:
		f.regs[in.Dst] = BoolVal(!f.regs[in.Src[0]].Bool())

	case ir.OpNew:
		f.regs[in.Dst] = Value{Ref: m.allocObject(in.Class, in.Pos)}
	case ir.OpNewArray:
		n := f.regs[in.Src[0]].I
		if n < 0 {
			m.fail(t, in.Pos, "negative array size %d", n)
			return counts
		}
		f.regs[in.Dst] = Value{Ref: m.allocArray(in.Elem, n, in.Pos)}
	case ir.OpArrayLen:
		arr := f.regs[in.Src[0]].Ref
		if arr == nil {
			m.fail(t, in.Pos, "null pointer dereference (.length)")
			return counts
		}
		f.regs[in.Dst] = Value{I: int64(len(arr.Elems))}
	case ir.OpClassRef:
		f.regs[in.Dst] = Value{Ref: m.classObject(in.Class)}

	case ir.OpGetField:
		obj := f.regs[in.Src[0]].Ref
		if obj == nil {
			m.fail(t, in.Pos, "null pointer dereference (read of %s)", in.Field.QualifiedName())
			return counts
		}
		f.regs[in.Dst] = obj.Fields[in.Field.Index]
	case ir.OpPutField:
		obj := f.regs[in.Src[0]].Ref
		if obj == nil {
			m.fail(t, in.Pos, "null pointer dereference (write of %s)", in.Field.QualifiedName())
			return counts
		}
		obj.Fields[in.Field.Index] = f.regs[in.Src[1]]
		m.progress++
	case ir.OpGetStatic:
		f.regs[in.Dst] = m.classObject(in.Field.Class).Fields[in.Field.Index]
	case ir.OpPutStatic:
		m.classObject(in.Field.Class).Fields[in.Field.Index] = f.regs[in.Src[0]]
		m.progress++
	case ir.OpArrayLoad:
		arr := f.regs[in.Src[0]].Ref
		idx := f.regs[in.Src[1]].I
		if arr == nil {
			m.fail(t, in.Pos, "null pointer dereference (array read)")
			return counts
		}
		if idx < 0 || idx >= int64(len(arr.Elems)) {
			m.fail(t, in.Pos, "array index %d out of bounds [0,%d)", idx, len(arr.Elems))
			return counts
		}
		f.regs[in.Dst] = arr.Elems[idx]
	case ir.OpArrayStore:
		arr := f.regs[in.Src[0]].Ref
		idx := f.regs[in.Src[1]].I
		if arr == nil {
			m.fail(t, in.Pos, "null pointer dereference (array write)")
			return counts
		}
		if idx < 0 || idx >= int64(len(arr.Elems)) {
			m.fail(t, in.Pos, "array index %d out of bounds [0,%d)", idx, len(arr.Elems))
			return counts
		}
		arr.Elems[idx] = f.regs[in.Src[2]]
		m.progress++

	case ir.OpCall:
		m.call(t, f, in)
		return counts // call manages pc itself
	case ir.OpMonEnter:
		if !m.monEnter(t, f, in) {
			return counts // blocked; retry this instruction when woken
		}
	case ir.OpMonExit:
		m.monExit(t, f, in)
	case ir.OpStart:
		m.startThread(t, f, in)
	case ir.OpJoin:
		if !m.join(t, f, in) {
			return counts // waiting; retry when joinee finishes
		}
	case ir.OpWait:
		if !m.monWait(t, f, in) {
			return counts // parked or re-acquiring; retry on wake
		}
	case ir.OpNotify:
		m.monNotify(t, f, in, false)
	case ir.OpNotifyAll:
		m.monNotify(t, f, in, true)
	case ir.OpPrint:
		m.print(f, in)

	case ir.OpTrace:
		m.trace(t, f, in)

	case ir.OpJump:
		f.block = in.Targets()[0]
		f.pc = 0
		return counts
	case ir.OpBranch:
		targets := in.Targets()
		if f.regs[in.Src[0]].Bool() {
			f.block = targets[0]
		} else {
			f.block = targets[1]
		}
		f.pc = 0
		return counts
	case ir.OpReturn:
		m.ret(t, f, in)
		return counts

	default:
		m.fail(t, in.Pos, "unhandled instruction %s", in.Op)
		return counts
	}
	f.pc++
	return counts
}

func (m *Machine) binOp(t *Thread, f *frame, in *ir.Instr) {
	a, b := f.regs[in.Src[0]], f.regs[in.Src[1]]
	switch in.Bin {
	case ir.BinAdd:
		f.regs[in.Dst] = Value{I: a.I + b.I}
	case ir.BinSub:
		f.regs[in.Dst] = Value{I: a.I - b.I}
	case ir.BinMul:
		f.regs[in.Dst] = Value{I: a.I * b.I}
	case ir.BinDiv:
		if b.I == 0 {
			m.fail(t, in.Pos, "division by zero")
			return
		}
		f.regs[in.Dst] = Value{I: a.I / b.I}
	case ir.BinMod:
		if b.I == 0 {
			m.fail(t, in.Pos, "division by zero (%%)")
			return
		}
		f.regs[in.Dst] = Value{I: a.I % b.I}
	case ir.BinEq:
		f.regs[in.Dst] = BoolVal(a.I == b.I && a.Ref == b.Ref)
	case ir.BinNeq:
		f.regs[in.Dst] = BoolVal(a.I != b.I || a.Ref != b.Ref)
	case ir.BinLt:
		f.regs[in.Dst] = BoolVal(a.I < b.I)
	case ir.BinLeq:
		f.regs[in.Dst] = BoolVal(a.I <= b.I)
	case ir.BinGt:
		f.regs[in.Dst] = BoolVal(a.I > b.I)
	case ir.BinGeq:
		f.regs[in.Dst] = BoolVal(a.I >= b.I)
	}
}

// call pushes a frame for the callee, resolving virtual dispatch on
// the receiver's dynamic class.
func (m *Machine) call(t *Thread, f *frame, in *ir.Instr) {
	callee := in.Callee
	if in.Virtual {
		recv := f.regs[in.Src[0]].Ref
		if recv == nil {
			m.fail(t, in.Pos, "null pointer dereference (call of %s)", callee.QualifiedName())
			return
		}
		callee = recv.Class.ResolveOverride(callee.Name)
		if callee == nil {
			m.fail(t, in.Pos, "no implementation of %s for %s", in.Callee.Name, recv.Class.Name)
			return
		}
	}
	if callee.Builtin == sem.BuiltinRunStub {
		// Explicit run() on a class that never overrides it: no-op.
		f.pc++
		return
	}
	fn := m.prog.FuncOf[callee]
	if fn == nil {
		m.fail(t, in.Pos, "call of unlowered method %s", callee.QualifiedName())
		return
	}
	if len(t.frames) >= 4096 {
		m.fail(t, in.Pos, "stack overflow calling %s", callee.QualifiedName())
		return
	}
	regs, base := t.pushWindow(fn.NumRegs)
	nf := frame{
		fn:      fn,
		regs:    regs,
		block:   fn.Entry,
		retReg:  in.Dst,
		regBase: base,
	}
	for i, src := range in.Src {
		nf.regs[i] = f.regs[src]
	}
	f.pc++ // resume after the call on return
	t.frames = append(t.frames, nf)
}

// ret pops the current frame, writing the return value into the
// caller, and finishes the thread when the last frame pops.
func (m *Machine) ret(t *Thread, f *frame, in *ir.Instr) {
	var rv Value
	if len(in.Src) > 0 {
		rv = f.regs[in.Src[0]]
	}
	retReg := f.retReg
	t.frames = t.frames[:len(t.frames)-1]
	t.popWindow(f.regBase)
	if len(t.frames) == 0 {
		t.state = stateFinished
		m.progress++
		m.sink.ThreadFinished(t.ID)
		m.wakeJoiners(t)
		return
	}
	caller := &t.frames[len(t.frames)-1]
	if retReg != ir.NoReg {
		caller.regs[retReg] = rv
	}
}

func (m *Machine) monEnter(t *Thread, f *frame, in *ir.Instr) bool {
	lock := f.regs[in.Src[0]].Ref
	if lock == nil {
		m.fail(t, in.Pos, "null pointer dereference (synchronized)")
		return false
	}
	if lock.monOwner != nil && lock.monOwner != t {
		t.state = stateBlocked
		t.waitMon = lock
		return false
	}
	lock.monOwner = t
	lock.monDepth++
	t.waitMon = nil // clear any stale blocked-wait marker
	m.res.MonitorOps++
	m.sink.MonitorEnter(t.ID, lock.ID, lock.monDepth)
	return true
}

func (m *Machine) monExit(t *Thread, f *frame, in *ir.Instr) {
	lock := f.regs[in.Src[0]].Ref
	if lock == nil {
		m.fail(t, in.Pos, "null pointer dereference (monitorexit)")
		return
	}
	if lock.monOwner != t || lock.monDepth == 0 {
		m.fail(t, in.Pos, "monitorexit of a lock not held by %s", t.ID)
		return
	}
	lock.monDepth--
	m.res.MonitorOps++
	m.sink.MonitorExit(t.ID, lock.ID, lock.monDepth)
	if lock.monDepth == 0 {
		lock.monOwner = nil
		// Wake every thread blocked on this monitor; they re-contend.
		// waitMon stays set: for threads re-acquiring after
		// Object.wait it marks the re-acquire phase, and the
		// monitorenter retry clears it on success. Yield so a woken
		// waiter gets to run before this thread can re-acquire the
		// lock (see Machine.yield).
		for _, w := range m.threads {
			if w.state == stateBlocked && w.waitMon == lock {
				w.state = stateRunnable
				m.yield = true
			}
		}
	}
}

// monWait implements Object.wait: the caller must hold the monitor;
// it is released fully (one MonitorExit event at depth 0), the thread
// parks in the wait set, and after a notify it re-contends for the
// monitor and restores its reentrancy depth. Returns true when the
// wait has completed and the instruction may advance.
func (m *Machine) monWait(t *Thread, f *frame, in *ir.Instr) bool {
	lock := f.regs[in.Src[0]].Ref
	if lock == nil {
		m.fail(t, in.Pos, "null pointer dereference (wait)")
		return false
	}
	switch {
	case t.state == stateRunnable && t.waitMon == nil:
		// First execution: park.
		if lock.monOwner != t {
			m.fail(t, in.Pos, "wait on a monitor not held by %s", t.ID)
			return false
		}
		t.savedDepth = lock.monDepth
		lock.monDepth = 0
		lock.monOwner = nil
		m.res.MonitorOps++
		m.sink.MonitorExit(t.ID, lock.ID, 0)
		t.state = stateWaiting
		t.waitMon = lock
		lock.waitSet = append(lock.waitSet, t)
		m.progress++
		// Releasing may unblock a monitor-acquire waiter.
		for _, w := range m.threads {
			if w.state == stateBlocked && w.waitMon == lock {
				w.state = stateRunnable
				m.yield = true
			}
		}
		return false
	default:
		// Woken by notify (state was reset to runnable, waitMon kept):
		// re-acquire the monitor, restoring the saved depth.
		if lock.monOwner != nil && lock.monOwner != t {
			t.state = stateBlocked
			return false
		}
		lock.monOwner = t
		lock.monDepth = t.savedDepth
		t.waitMon = nil
		t.savedDepth = 0
		m.res.MonitorOps++
		m.sink.MonitorEnter(t.ID, lock.ID, 1)
		return true
	}
}

// monNotify implements Object.notify/notifyAll: wakes one (the
// longest-waiting) or all threads in the receiver's wait set. The
// woken threads re-contend for the monitor once the notifier releases
// it.
func (m *Machine) monNotify(t *Thread, f *frame, in *ir.Instr, all bool) {
	lock := f.regs[in.Src[0]].Ref
	if lock == nil {
		m.fail(t, in.Pos, "null pointer dereference (notify)")
		return
	}
	if lock.monOwner != t {
		m.fail(t, in.Pos, "notify on a monitor not held by %s", t.ID)
		return
	}
	n := 1
	if all {
		n = len(lock.waitSet)
	}
	for i := 0; i < n && len(lock.waitSet) > 0; i++ {
		w := lock.waitSet[0]
		lock.waitSet = lock.waitSet[1:]
		// The woken thread stays at its OpWait instruction; when it is
		// next scheduled it re-contends for the monitor (waitMon still
		// set marks the re-acquire phase).
		w.state = stateRunnable
		m.progress++
	}
}

func (m *Machine) startThread(t *Thread, f *frame, in *ir.Instr) {
	obj := f.regs[in.Src[0]].Ref
	if obj == nil {
		m.fail(t, in.Pos, "null pointer dereference (start)")
		return
	}
	if obj.started {
		m.fail(t, in.Pos, "thread %s#%d started twice", obj.Class.Name, int64(obj.ID))
		return
	}
	obj.started = true

	child := &Thread{ID: event.ThreadID(len(m.threads)), Obj: obj}
	obj.thread = child
	run := obj.Class.ResolveOverride("run")
	if run != nil && run.Builtin == sem.NotBuiltin {
		fn := m.prog.FuncOf[run]
		if fn == nil {
			m.fail(t, in.Pos, "run method of %s not lowered", obj.Class.Name)
			return
		}
		cregs, cbase := child.pushWindow(fn.NumRegs)
		cf := frame{
			fn:      fn,
			regs:    cregs,
			block:   fn.Entry,
			retReg:  ir.NoReg,
			regBase: cbase,
		}
		cf.regs[0] = Value{Ref: obj}
		child.frames = append(child.frames, cf)
	} else {
		// Default empty run(): the thread finishes immediately.
		child.state = stateFinished
	}
	m.threads = append(m.threads, child)
	m.res.ThreadsUsed++
	m.progress++
	m.sink.ThreadStarted(child.ID, t.ID)
	if child.state == stateFinished {
		m.sink.ThreadFinished(child.ID)
	}
}

// join returns true when the join completed (the instruction may then
// advance); false when the thread must wait.
func (m *Machine) join(t *Thread, f *frame, in *ir.Instr) bool {
	obj := f.regs[in.Src[0]].Ref
	if obj == nil {
		m.fail(t, in.Pos, "null pointer dereference (join)")
		return false
	}
	child := obj.thread
	if child == nil {
		// Joining a never-started thread returns immediately (Java
		// semantics) and establishes no ordering.
		return true
	}
	if child.state != stateFinished {
		t.state = stateJoining
		t.waitThr = child
		return false
	}
	m.sink.Joined(t.ID, child.ID)
	return true
}

func (m *Machine) wakeJoiners(finished *Thread) {
	for _, w := range m.threads {
		if w.state == stateJoining && w.waitThr == finished {
			w.state = stateRunnable
			w.waitThr = nil
			m.progress++
		}
	}
}

func (m *Machine) print(f *frame, in *ir.Instr) {
	m.progress++
	if len(in.Src) == 0 {
		fmt.Fprintln(m.out, in.Str)
		return
	}
	v := f.regs[in.Src[0]]
	if in.Elem != nil && sem.Same(in.Elem, sem.TypBool) {
		fmt.Fprintln(m.out, v.Bool())
		return
	}
	if v.Ref != nil && v.Ref.Str != "" {
		fmt.Fprintln(m.out, v.Ref.Str)
		return
	}
	fmt.Fprintln(m.out, v.I)
}

// trace delivers one access event to the sink (§2.4's 5-tuple; the
// lockset component is reconstructed by the sink from monitor events).
func (m *Machine) trace(t *Thread, f *frame, in *ir.Instr) {
	var loc event.Loc
	switch {
	case in.IsArrayTrace:
		arr := f.regs[in.Src[0]].Ref
		if arr == nil {
			return // the access itself already failed
		}
		loc = event.Loc{Obj: arr.ID, Slot: event.ArraySlot}
	case in.Field.Static:
		co := m.classObject(in.Field.Class)
		loc = event.Loc{Obj: co.ID, Slot: event.StaticSlot(in.Field.Index)}
	default:
		obj := f.regs[in.Src[0]].Ref
		if obj == nil {
			return
		}
		loc = event.Loc{Obj: obj.ID, Slot: int32(in.Field.Index)}
	}
	kind := event.Read
	if in.Access == ir.Write {
		kind = event.Write
	}
	m.res.TraceEvents++
	if m.fast != nil && m.fast.QuickCheck(t.ID, loc, kind) {
		return // absorbed by the inlined cache hit path
	}
	m.sink.Access(event.Access{
		Loc:       loc,
		Thread:    t.ID,
		Kind:      kind,
		Pos:       in.Pos,
		FieldName: in.TraceName,
	})
}
