package interp

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// spinSrc spins forever reading a flag no thread will ever set: the
// canonical livelock. The main thread joins, so nothing makes progress
// once the spinner enters its loop.
const spinSrc = `
class Flag { int go; }
class Spinner extends Thread {
    Flag f;
    Spinner(Flag f0) { f = f0; }
    void run() {
        while (f.go == 0) { int x = 1; }
    }
}
class Main {
    static void main() {
        Flag f = new Flag();
        Spinner s = new Spinner(f);
        s.start();
        s.join();
    }
}`

func TestLivelockHeuristic(t *testing.T) {
	_, _, err := tryRun(t, spinSrc, Options{LivelockWindow: 200})
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
	if re.Kind != ErrLivelock {
		t.Fatalf("kind = %s, want livelock (err: %v)", re.Kind, re)
	}
	if re.Dump == "" || !strings.Contains(re.Dump, "joining") {
		t.Errorf("livelock diagnostic lacks a useful thread dump: %q", re.Dump)
	}
	// The heuristic must fire in O(window) slices, far below the step
	// budget it replaces.
	_, res, _ := tryRun(t, spinSrc, Options{LivelockWindow: 200})
	if res.Steps > 1_000_000 {
		t.Errorf("livelock burned %d steps; the window should cap it around quantum*window", res.Steps)
	}
}

func TestLivelockWindowDoesNotFireOnProgress(t *testing.T) {
	// A long-running but productive program (heap writes every
	// iteration) must not trip the heuristic even with a small window.
	src := `
class Cell { int v; }
class Main {
    static void main() {
        Cell c = new Cell();
        for (int i = 0; i < 5000; i++) { c.v = c.v + 1; }
        print(c.v);
    }
}`
	out, _, err := tryRun(t, src, Options{LivelockWindow: 10})
	if err != nil {
		t.Fatalf("false livelock: %v", err)
	}
	if strings.TrimSpace(out) != "5000" {
		t.Errorf("output = %q", out)
	}
}

func TestWatchdogDeadline(t *testing.T) {
	// Productive infinite loop (writes every iteration), so only the
	// wall-clock watchdog can stop it before the step budget.
	src := `
class Cell { int v; }
class Main {
    static void main() {
        Cell c = new Cell();
        while (true) { c.v = c.v + 1; }
    }
}`
	start := time.Now()
	_, _, err := tryRun(t, src, Options{
		Deadline: time.Now().Add(50 * time.Millisecond),
		MaxSteps: 1 << 62,
	})
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != ErrWatchdog {
		t.Fatalf("want watchdog RuntimeError, got %v", err)
	}
	if re.Dump == "" {
		t.Error("watchdog diagnostic lacks a thread dump")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog took %v to fire", elapsed)
	}
}

func TestPanicRecoveredAsRuntimeError(t *testing.T) {
	src := `
class Main {
    static void main() {
        int x = 0;
        for (int i = 0; i < 100000; i++) { x = x + 1; }
        print(x);
    }
}`
	_, _, err := tryRun(t, src, Options{
		SliceHook: func(slice uint64) {
			if slice == 5 {
				panic("injected interpreter fault")
			}
		},
	})
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("want RuntimeError, got %v", err)
	}
	if re.Kind != ErrPanic {
		t.Fatalf("kind = %s, want panic", re.Kind)
	}
	if !strings.Contains(re.Msg, "injected interpreter fault") {
		t.Errorf("panic message lost: %q", re.Msg)
	}
	if re.Dump == "" || !strings.Contains(re.Dump, "T0") {
		t.Errorf("panic diagnostic lacks a thread dump: %q", re.Dump)
	}
}

func TestDeadlockAndBudgetErrorsCarryThreadDump(t *testing.T) {
	deadlock := `
class A { int f; }
class W extends Thread {
    A p; A q;
    W(A p0, A q0) { p = p0; q = q0; }
    void run() {
        for (int i = 0; i < 50; i++) {
            synchronized (p) { synchronized (q) { p.f = p.f + 1; } }
        }
    }
}
class M {
    static void main() {
        A x = new A(); A y = new A();
        W w1 = new W(x, y);
        W w2 = new W(y, x);
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`
	_, _, err := tryRun(t, deadlock, Options{Quantum: 3})
	var re *RuntimeError
	if !errors.As(err, &re) || re.Kind != ErrDeadlock {
		t.Fatalf("want deadlock RuntimeError, got %v", err)
	}
	if re.Dump == "" || !strings.Contains(re.Dump, "blocked") {
		t.Errorf("deadlock postmortem not self-contained, dump = %q", re.Dump)
	}
	if !strings.Contains(re.Error(), "threads:") {
		t.Errorf("rendered error must include the dump: %q", re.Error())
	}

	_, _, err = tryRun(t, spinSrc, Options{MaxSteps: 10_000})
	if !errors.As(err, &re) || re.Kind != ErrStepBudget {
		t.Fatalf("want step-budget RuntimeError, got %v", err)
	}
	if re.Dump == "" {
		t.Error("step-budget postmortem lacks a thread dump")
	}
}
