// Package instrument implements the optimized-instrumentation phase
// of the paper (§6): inserting trace pseudo-instructions after memory
// accesses, eliminating statically redundant traces with the static
// weaker-than relation, and the loop-peeling transformation (§6.3)
// that exposes in-loop traces to that elimination.
package instrument

import (
	"racedet/internal/ir"
)

// Stats reports what instrumentation did to one function or program.
type Stats struct {
	Accesses    int // heap access instructions seen
	Inserted    int // traces inserted
	Eliminated  int // traces removed by the static weaker-than relation
	LoopsPeeled int
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Accesses += s2.Accesses
	s.Inserted += s2.Inserted
	s.Eliminated += s2.Eliminated
	s.LoopsPeeled += s2.LoopsPeeled
}

// Filter decides whether an access instruction gets a trace. A nil
// Filter instruments everything (the paper's default when static
// datarace analysis is skipped).
type Filter func(*ir.Instr) bool

// InsertTraces inserts one OpTrace after every heap-access instruction
// accepted by filter. The trace copies the access's object register,
// field, kind, source position, and synchronized-region stack.
func InsertTraces(f *ir.Func, filter Filter) Stats {
	var st Stats
	for _, b := range f.Blocks {
		out := make([]*ir.Instr, 0, len(b.Instrs)*2)
		for _, in := range b.Instrs {
			out = append(out, in)
			if !in.IsAccess() {
				continue
			}
			st.Accesses++
			if filter != nil && !filter(in) {
				continue
			}
			kind, isArray, refReg, field := in.AccessInfo()
			name := "[]"
			if field != nil {
				name = field.QualifiedName()
			}
			tr := &ir.Instr{
				Op:           ir.OpTrace,
				Dst:          ir.NoReg,
				Access:       kind,
				IsArrayTrace: isArray,
				Field:        field,
				TraceName:    name,
				SyncRegions:  in.SyncRegions,
				Pos:          in.Pos,
			}
			if refReg != ir.NoReg {
				tr.Src = []int{refReg}
			}
			out = append(out, tr)
			st.Inserted++
		}
		b.Instrs = out
	}
	return st
}

// Options configures the static elimination.
type Options struct {
	// NoDominators disables the §6.1 static weaker-than elimination
	// (Table 2 "NoDominators").
	NoDominators bool
}

// EliminateRedundant removes trace instructions S_j for which a
// statically weaker trace S_i exists (Definition 3):
//
//	S_i ⊑ S_j ⟺ Exec(S_i, S_j) ∧ a_i ⊑ a_j ∧ outer(S_i, S_j)
//	            ∧ valnum(o_i) = valnum(o_j) ∧ f_i = f_j
//
// Exec(S_i, S_j) (Definition 4) holds when S_i dominates S_j and no
// method invocation lies on any intraprocedural path between them; we
// additionally reject monitorenter/monitorexit between the two, which
// closes the lock-reentry corner the lexical outer() check leaves open
// (strictly more conservative than the paper).
//
// This is the single-function intraprocedural form; EliminateProgram
// runs the same engine over a whole program, optionally with the
// interprocedural strengthenings of interproc.go.
//
// It returns the number of traces removed.
func EliminateRedundant(f *ir.Func) int {
	c := newElimCtx(f, nil)
	c.pairLoop(nil)
	return c.removeEliminated()
}

// outer implements outer(S_i, S_j): S_j is at the same synchronized
// nesting level as S_i or deeper within S_i's innermost region —
// lexically, S_i's region stack is a prefix of S_j's.
func outer(si, sj []int) bool {
	if len(si) > len(sj) {
		return false
	}
	for k := range si {
		if si[k] != sj[k] {
			return false
		}
	}
	return true
}

// reachability is a dense transitive-closure over blocks.
type reachability struct {
	n    int
	bits []uint64 // n x ceil(n/64)
	w    int
}

func blockReachability(f *ir.Func) *reachability {
	n := len(f.Blocks)
	w := (n + 63) / 64
	r := &reachability{n: n, bits: make([]uint64, n*w), w: w}
	// DFS from each block following successor edges.
	for _, b := range f.Blocks {
		stack := []*ir.Block{b}
		seen := make([]bool, n)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range x.Succs {
				if !seen[s.ID] {
					seen[s.ID] = true
					r.bits[b.ID*w+s.ID/64] |= 1 << (uint(s.ID) % 64)
					stack = append(stack, s)
				}
			}
		}
	}
	return r
}

// reaches reports whether b can reach c via one or more edges.
func (r *reachability) reaches(b, c *ir.Block) bool {
	return r.bits[b.ID*r.w+c.ID/64]&(1<<(uint(c.ID)%64)) != 0
}
