// Package instrument implements the optimized-instrumentation phase
// of the paper (§6): inserting trace pseudo-instructions after memory
// accesses, eliminating statically redundant traces with the static
// weaker-than relation, and the loop-peeling transformation (§6.3)
// that exposes in-loop traces to that elimination.
package instrument

import (
	"racedet/internal/ir"
	"racedet/internal/ssa"
)

// Stats reports what instrumentation did to one function or program.
type Stats struct {
	Accesses    int // heap access instructions seen
	Inserted    int // traces inserted
	Eliminated  int // traces removed by the static weaker-than relation
	LoopsPeeled int
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Accesses += s2.Accesses
	s.Inserted += s2.Inserted
	s.Eliminated += s2.Eliminated
	s.LoopsPeeled += s2.LoopsPeeled
}

// Filter decides whether an access instruction gets a trace. A nil
// Filter instruments everything (the paper's default when static
// datarace analysis is skipped).
type Filter func(*ir.Instr) bool

// InsertTraces inserts one OpTrace after every heap-access instruction
// accepted by filter. The trace copies the access's object register,
// field, kind, source position, and synchronized-region stack.
func InsertTraces(f *ir.Func, filter Filter) Stats {
	var st Stats
	for _, b := range f.Blocks {
		out := make([]*ir.Instr, 0, len(b.Instrs)*2)
		for _, in := range b.Instrs {
			out = append(out, in)
			if !in.IsAccess() {
				continue
			}
			st.Accesses++
			if filter != nil && !filter(in) {
				continue
			}
			kind, isArray, refReg, field := in.AccessInfo()
			name := "[]"
			if field != nil {
				name = field.QualifiedName()
			}
			tr := &ir.Instr{
				Op:           ir.OpTrace,
				Dst:          ir.NoReg,
				Access:       kind,
				IsArrayTrace: isArray,
				Field:        field,
				TraceName:    name,
				SyncRegions:  in.SyncRegions,
				Pos:          in.Pos,
			}
			if refReg != ir.NoReg {
				tr.Src = []int{refReg}
			}
			out = append(out, tr)
			st.Inserted++
		}
		b.Instrs = out
	}
	return st
}

// Options configures the static elimination.
type Options struct {
	// NoDominators disables the §6.1 static weaker-than elimination
	// (Table 2 "NoDominators").
	NoDominators bool
}

// EliminateRedundant removes trace instructions S_j for which a
// statically weaker trace S_i exists (Definition 3):
//
//	S_i ⊑ S_j ⟺ Exec(S_i, S_j) ∧ a_i ⊑ a_j ∧ outer(S_i, S_j)
//	            ∧ valnum(o_i) = valnum(o_j) ∧ f_i = f_j
//
// Exec(S_i, S_j) (Definition 4) holds when S_i dominates S_j and no
// method invocation lies on any intraprocedural path between them; we
// additionally reject monitorenter/monitorexit between the two, which
// closes the lock-reentry corner the lexical outer() check leaves open
// (strictly more conservative than the paper).
//
// It returns the number of traces removed.
func EliminateRedundant(f *ir.Func) int {
	dom := ssa.BuildDomTree(f)
	ov := ssa.Build(f, dom)
	gvn := ssa.BuildGVN(ov)
	reach := blockReachability(f)

	type tracePoint struct {
		in    *ir.Instr
		block *ir.Block
		pos   int
	}
	var traces []tracePoint
	for _, b := range dom.RPO() {
		for i, in := range b.Instrs {
			if in.Op == ir.OpTrace {
				traces = append(traces, tracePoint{in, b, i})
			}
		}
	}

	// barrier[b][i] = true if instruction i of block b is a call-like
	// or monitor instruction ("barrier" for Exec).
	isBarrier := func(in *ir.Instr) bool {
		return in.IsCallLike() || in.Op == ir.OpMonEnter || in.Op == ir.OpMonExit
	}
	// blockHasBarrier over the whole block.
	blockBarrier := make([]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if isBarrier(in) {
				blockBarrier[b.ID] = true
				break
			}
		}
	}
	rangeBarrier := func(b *ir.Block, from, to int) bool { // [from, to)
		for i := from; i < to && i < len(b.Instrs); i++ {
			if isBarrier(b.Instrs[i]) {
				return true
			}
		}
		return false
	}

	// exec reports Exec(Si, Sj).
	exec := func(si, sj tracePoint) bool {
		if !dom.DominatesInstr(si.block, si.pos, sj.block, sj.pos) {
			return false
		}
		if si.block == sj.block {
			// Also handle the loop case: if the block is in a cycle
			// with itself, a path can leave after Sj and come back
			// before Si; the direct segment is what matters for the
			// most recent Si execution.
			return !rangeBarrier(si.block, si.pos+1, sj.pos)
		}
		// Tail of Si's block and head of Sj's block must be clean.
		if rangeBarrier(si.block, si.pos+1, len(si.block.Instrs)) {
			return false
		}
		if rangeBarrier(sj.block, 0, sj.pos) {
			return false
		}
		// Every block strictly between (reachable from Si's block and
		// reaching Sj's block) must be clean. This over-approximates
		// paths (it tolerates passes through cycles), erring safe.
		for _, b := range f.Blocks {
			if b == si.block || b == sj.block {
				continue
			}
			if reach.reaches(si.block, b) && reach.reaches(b, sj.block) && blockBarrier[b.ID] {
				return false
			}
		}
		// If the two blocks sit on a common cycle, a path may traverse
		// the full blocks; require them clean too.
		if reach.reaches(sj.block, si.block) {
			if blockBarrier[si.block.ID] || blockBarrier[sj.block.ID] {
				return false
			}
		}
		return true
	}

	sameLocation := func(si, sj tracePoint) bool {
		a, b := si.in, sj.in
		if a.IsArrayTrace != b.IsArrayTrace {
			return false
		}
		if a.IsArrayTrace {
			// The detector treats a whole array as one location, so
			// matching array references suffices (the paper compares
			// index value numbers because its trace models f as the
			// index; under the one-location-per-array model reference
			// equality is the right condition).
			va := gvn.OperandVN(a, 0)
			vb := gvn.OperandVN(b, 0)
			return va != ssa.NoVN && va == vb
		}
		if a.Field != b.Field {
			return false
		}
		if a.Field.Static {
			return true // class-qualified: same field ⇒ same location
		}
		va := gvn.OperandVN(a, 0)
		vb := gvn.OperandVN(b, 0)
		return va != ssa.NoVN && va == vb
	}

	// Traces are collected in RPO order, so any dominating S_i appears
	// before S_j in the slice. Scanning only i < j guarantees the
	// eliminator's own fate was already decided, so every elimination
	// is justified by a trace that survives (weaker-than is used
	// pointwise, never through an eliminated intermediary).
	eliminated := make(map[*ir.Instr]bool)
	for j, sj := range traces {
		for i := 0; i < j; i++ {
			si := traces[i]
			if eliminated[si.in] {
				continue
			}
			// a_i ⊑ a_j
			if !(si.in.Access == sj.in.Access || si.in.Access == ir.Write) {
				continue
			}
			if !outer(si.in.SyncRegions, sj.in.SyncRegions) {
				continue
			}
			if !sameLocation(si, sj) {
				continue
			}
			if !exec(si, sj) {
				continue
			}
			eliminated[sj.in] = true
			break
		}
	}

	if len(eliminated) == 0 {
		return 0
	}
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !eliminated[in] {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	return len(eliminated)
}

// outer implements outer(S_i, S_j): S_j is at the same synchronized
// nesting level as S_i or deeper within S_i's innermost region —
// lexically, S_i's region stack is a prefix of S_j's.
func outer(si, sj []int) bool {
	if len(si) > len(sj) {
		return false
	}
	for k := range si {
		if si[k] != sj[k] {
			return false
		}
	}
	return true
}

// reachability is a dense transitive-closure over blocks.
type reachability struct {
	n    int
	bits []uint64 // n x ceil(n/64)
	w    int
}

func blockReachability(f *ir.Func) *reachability {
	n := len(f.Blocks)
	w := (n + 63) / 64
	r := &reachability{n: n, bits: make([]uint64, n*w), w: w}
	// DFS from each block following successor edges.
	for _, b := range f.Blocks {
		stack := []*ir.Block{b}
		seen := make([]bool, n)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range x.Succs {
				if !seen[s.ID] {
					seen[s.ID] = true
					r.bits[b.ID*w+s.ID/64] |= 1 << (uint(s.ID) % 64)
					stack = append(stack, s)
				}
			}
		}
	}
	return r
}

// reaches reports whether b can reach c via one or more edges.
func (r *reachability) reaches(b, c *ir.Block) bool {
	return r.bits[b.ID*r.w+c.ID/64]&(1<<(uint(c.ID)%64)) != 0
}
