// Interprocedural extension of the §6 static weaker-than elimination.
//
// The paper's Definition 3/4 redundancy is intraprocedural: any method
// invocation between S_i and S_j is a barrier, because the callee could
// enter a monitor and change the lockset. This file recovers the
// eliminations that conservatism loses, in three coordinated steps:
//
//  1. Sync-free calls are not barriers. A call whose every resolved
//     target is transitively free of monitor/thread operations cannot
//     change the lockset, so Exec may cross it (the "relaxed" barrier
//     predicate). Calls with unresolved targets stay barriers.
//
//  2. Stable-field value numbering. Loads of init-only fields (written
//     exactly once, through `this`, in a constructor, not in a loop)
//     are value-numbered by (field, receiver), so two loads of the same
//     field off the same object compare equal. Under the §5.4
//     constructor-publication assumption the field has one published
//     value; within the constructing invocation it steps null→v once,
//     and a null access aborts before any later access it could cover.
//
//  3. Cross-call coverage. Bottom-up over the call graph, each
//     sync-free non-recursive function exports MustTrace facts —
//     locations (parameter, field) provably traced on every path from
//     entry to return. At a call site with a single resolved sync-free
//     target, the callee's facts become *virtual* trace points that can
//     eliminate caller traces after the call (pass 1). Conversely, a
//     surviving trace of a parameter location in a sync-free callee is
//     eliminated when every call site is preceded by a covering trace
//     of the argument (pass 2, entry coverage). Pass-2 covers are
//     pinned so a cover is never itself eliminated later; pass-1 fact
//     sources need no pinning — if pass 2 kills a fact's source, the
//     entry cover that justified the kill covers the caller's victim
//     transitively (prefix outer(), concatenated barrier-free paths,
//     Write-bottom access lattice).
package instrument

import (
	"sort"

	"racedet/internal/ir"
	"racedet/internal/lang/sem"
	"racedet/internal/lang/token"
	"racedet/internal/pointsto"
	"racedet/internal/ssa"
)

// Fact is one MustTrace summary entry of a sync-free function: the
// location (Param, Field, IsArray) is traced with access kind Acc on
// every path from entry to return. Param is the parameter index whose
// entry value is the traced object; -1 for static fields. Src/SrcFn
// name a representative source trace for reporting.
type Fact struct {
	Param   int
	Field   *sem.Field
	IsArray bool
	Acc     ir.AccessKind
	Src     *ir.Instr
	SrcFn   *ir.Func
}

// callRef is one OpCall occurrence: the calling function, the block
// and instruction index of the call, and the instruction itself.
type callRef struct {
	fn    *ir.Func
	block *ir.Block
	pos   int
	in    *ir.Instr
}

// Interproc holds the whole-program facts the interprocedural
// elimination needs: which functions are sync-free, which fields are
// init-only, the thread roots, call sites per callee, a bottom-up
// processing order, and the per-function MustTrace summaries.
type Interproc struct {
	prog       *ir.Program
	pts        *pointsto.Result
	syncFree   map[*ir.Func]bool
	stable     map[*sem.Field]bool
	threadRoot map[*ir.Func]bool
	callSites  map[*ir.Func][]callRef
	order      []*ir.Func // callees before callers (SCCs contiguous)
	recursive  map[*ir.Func]bool
	summaries  map[*ir.Func][]Fact
}

// BuildInterproc computes the whole-program side tables.
func BuildInterproc(prog *ir.Program, pts *pointsto.Result) *Interproc {
	ip := &Interproc{
		prog:       prog,
		pts:        pts,
		syncFree:   make(map[*ir.Func]bool),
		stable:     make(map[*sem.Field]bool),
		threadRoot: make(map[*ir.Func]bool),
		callSites:  make(map[*ir.Func][]callRef),
		recursive:  make(map[*ir.Func]bool),
		summaries:  make(map[*ir.Func][]Fact),
	}
	ip.findStableFields()
	ip.findSyncFree()
	if main := prog.FuncOf[prog.Sem.Main]; main != nil {
		ip.threadRoot[main] = true
	}
	for _, runs := range pts.StartTargets {
		for _, f := range runs {
			ip.threadRoot[f] = true
		}
	}
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				for _, callee := range pts.Callees[in] {
					ip.callSites[callee] = append(ip.callSites[callee], callRef{fn, b, i, in})
				}
			}
		}
	}
	ip.orderFuncs()
	return ip
}

// findStableFields marks instance fields that are provably init-only:
// exactly one putfield instruction program-wide, whose receiver is the
// literal `this` register of a constructor, not inside a loop. Such a
// field steps default(null) → v at most once per object; a load that
// observes null aborts the access that would use it, so merging load
// value numbers by (field, receiver) never equates two live objects.
func (ip *Interproc) findStableFields() {
	writes := make(map[*sem.Field]int)
	bad := make(map[*sem.Field]bool)
	seen := make(map[*sem.Field]bool)
	for _, fn := range ip.prog.Funcs {
		var reach *reachability
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpGetField:
					seen[in.Field] = true
				case ir.OpPutField:
					seen[in.Field] = true
					writes[in.Field]++
					if fn.Method == nil || !fn.Method.IsCtor || in.Src[0] != 0 {
						bad[in.Field] = true
						continue
					}
					if reach == nil {
						reach = blockReachability(fn)
					}
					if reach.reaches(b, b) {
						bad[in.Field] = true // written in a loop
					}
				}
			}
		}
	}
	for f := range seen {
		if !f.Static && !bad[f] && writes[f] <= 1 {
			ip.stable[f] = true
		}
	}
}

// findSyncFree computes the greatest set of functions containing no
// monitor or thread operation, transitively: a pessimistic fixpoint
// that demotes a function if it has a monitor/wait/notify/start/join
// instruction, a call with no resolved target, or a call to a function
// already demoted.
func (ip *Interproc) findSyncFree() {
	for _, fn := range ip.prog.Funcs {
		ip.syncFree[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range ip.prog.Funcs {
			if !ip.syncFree[fn] {
				continue
			}
			if !ip.fnSyncFree(fn) {
				ip.syncFree[fn] = false
				changed = true
			}
		}
	}
}

func (ip *Interproc) fnSyncFree(fn *ir.Func) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpMonEnter, ir.OpMonExit, ir.OpWait, ir.OpNotify, ir.OpNotifyAll,
				ir.OpStart, ir.OpJoin:
				return false
			case ir.OpCall:
				cs := ip.pts.Callees[in]
				if len(cs) == 0 {
					return false
				}
				for _, c := range cs {
					if !ip.syncFree[c] {
						return false
					}
				}
			}
		}
	}
	return true
}

// orderFuncs runs Tarjan's SCC algorithm over the call graph and emits
// functions callees-first (Tarjan pops an SCC only after every SCC it
// reaches), marking recursive functions (SCC size > 1 or self-loop).
func (ip *Interproc) orderFuncs() {
	n := len(ip.prog.Funcs)
	idx := make(map[*ir.Func]int, n)
	for i, f := range ip.prog.Funcs {
		idx[f] = i
	}
	succs := make([][]int, n)
	self := make([]bool, n)
	for i, f := range ip.prog.Funcs {
		dedup := make(map[int]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				for _, c := range ip.pts.Callees[in] {
					j := idx[c]
					if j == i {
						self[i] = true
					}
					if !dedup[j] {
						dedup[j] = true
						succs[i] = append(succs[i], j)
					}
				}
			}
		}
		sort.Ints(succs[i])
	}

	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	next := 0
	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(succs[f.v]) {
				w := succs[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				for _, w := range comp {
					if len(comp) > 1 || self[w] {
						ip.recursive[ip.prog.Funcs[w]] = true
					}
					ip.order = append(ip.order, ip.prog.Funcs[w])
				}
			}
		}
	}
}

// ElimKind classifies an elimination for the -facts report.
type ElimKind int

// Elimination kinds, by what justified the kill.
const (
	KindIntra     ElimKind = iota // Definition 3 within one method
	KindPeel                      // intra, enabled by §6.3 loop peeling
	KindInterproc                 // needed relaxed barriers, stable fields, or summaries
)

func (k ElimKind) String() string {
	switch k {
	case KindPeel:
		return "peel"
	case KindInterproc:
		return "interproc"
	}
	return "intra"
}

// Elim records one eliminated trace and what eliminated it.
type Elim struct {
	Fn     string // function the victim trace was in
	Name   string // traced location ("Class.field" or "[]")
	Access ir.AccessKind
	Pos    token.Pos
	Kind   ElimKind
	ByFn   string // function holding the justifying trace
	ByPos  token.Pos
}

// Report lists every elimination, sorted by (function, position).
type Report struct {
	Elims []Elim
}

// Counts tallies eliminations per kind.
func (r *Report) Counts() (intra, peel, interproc int) {
	for _, e := range r.Elims {
		switch e.Kind {
		case KindPeel:
			peel++
		case KindInterproc:
			interproc++
		default:
			intra++
		}
	}
	return
}

// Sort orders the report by (function, position, trace name) so that
// rendered output is deterministic; callers that merge entries from
// several sources must re-sort.
func (r *Report) Sort() { r.sortElims() }

func (r *Report) sortElims() {
	sort.Slice(r.Elims, func(i, j int) bool {
		a, b := r.Elims[i], r.Elims[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Name < b.Name
	})
}

// tracePoint is one elimination-relevant point: a real OpTrace, or a
// virtual point (fact != nil) standing for a callee MustTrace fact at
// an OpCall. Virtual points eliminate; they are never victims.
type tracePoint struct {
	in    *ir.Instr
	block *ir.Block
	pos   int
	fact  *Fact
}

// elimCtx is the per-function elimination engine. With ip == nil it
// reproduces the intraprocedural PR-4 behavior exactly (plain GVN,
// every call a barrier, no virtual points).
type elimCtx struct {
	fn         *ir.Func
	ip         *Interproc
	dom        *ssa.DomTree
	ov         *ssa.Overlay
	gvn        *ssa.ValueNumbering // stable-field GVN when interprocedural
	strictGvn  *ssa.ValueNumbering // plain GVN, for report-kind attribution
	reach      *reachability
	relaxedBB  []bool // block contains a relaxed barrier
	strictBB   []bool // block contains a strict barrier
	traces     []tracePoint
	eliminated map[*ir.Instr]bool
}

func newElimCtx(fn *ir.Func, ip *Interproc) *elimCtx {
	c := &elimCtx{fn: fn, ip: ip, eliminated: make(map[*ir.Instr]bool)}
	c.dom = ssa.BuildDomTree(fn)
	c.ov = ssa.Build(fn, c.dom)
	if ip != nil {
		c.gvn = ssa.BuildGVNStable(c.ov, func(f *sem.Field) bool { return ip.stable[f] })
		c.strictGvn = ssa.BuildGVN(c.ov)
	} else {
		c.gvn = ssa.BuildGVN(c.ov)
		c.strictGvn = c.gvn
	}
	c.reach = blockReachability(fn)
	c.relaxedBB = make([]bool, len(fn.Blocks))
	c.strictBB = make([]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if c.barrier(in, false) {
				c.relaxedBB[b.ID] = true
			}
			if c.barrier(in, true) {
				c.strictBB[b.ID] = true
			}
		}
	}
	// Trace points in RPO, so a dominating point always precedes its
	// victims in the slice; virtual points sit at their call's index.
	for _, b := range c.dom.RPO() {
		for i, in := range b.Instrs {
			switch {
			case in.Op == ir.OpTrace:
				c.traces = append(c.traces, tracePoint{in: in, block: b, pos: i})
			case ip != nil && in.Op == ir.OpCall:
				cs := ip.pts.Callees[in]
				if len(cs) != 1 {
					continue
				}
				sum := ip.summaries[cs[0]]
				for k := range sum {
					c.traces = append(c.traces, tracePoint{in: in, block: b, pos: i, fact: &sum[k]})
				}
			}
		}
	}
	return c
}

// barrier is the Exec barrier predicate. Strict mode is the paper's
// Definition 4 plus monitors; relaxed mode additionally lets Exec
// cross calls whose every resolved target is sync-free.
func (c *elimCtx) barrier(in *ir.Instr, strict bool) bool {
	if in.Op == ir.OpMonEnter || in.Op == ir.OpMonExit {
		return true
	}
	if !in.IsCallLike() {
		return false
	}
	if strict || c.ip == nil || in.Op != ir.OpCall {
		return true
	}
	cs := c.ip.pts.Callees[in]
	if len(cs) == 0 {
		return true
	}
	for _, f := range cs {
		if !c.ip.syncFree[f] {
			return true
		}
	}
	return false
}

func (c *elimCtx) rangeBarrier(b *ir.Block, from, to int, strict bool) bool { // [from, to)
	for i := from; i < to && i < len(b.Instrs); i++ {
		if c.barrier(b.Instrs[i], strict) {
			return true
		}
	}
	return false
}

// exec reports Exec(Si, Sj): Si dominates Sj and no barrier lies on
// any intraprocedural path between them (same algorithm as PR 4; the
// barrier predicate is what varies).
func (c *elimCtx) exec(si, sj tracePoint, strict bool) bool {
	bb := c.relaxedBB
	if strict {
		bb = c.strictBB
	}
	if !c.dom.DominatesInstr(si.block, si.pos, sj.block, sj.pos) {
		return false
	}
	if si.block == sj.block {
		return !c.rangeBarrier(si.block, si.pos+1, sj.pos, strict)
	}
	if c.rangeBarrier(si.block, si.pos+1, len(si.block.Instrs), strict) {
		return false
	}
	if c.rangeBarrier(sj.block, 0, sj.pos, strict) {
		return false
	}
	for _, b := range c.fn.Blocks {
		if b == si.block || b == sj.block {
			continue
		}
		if c.reach.reaches(si.block, b) && c.reach.reaches(b, sj.block) && bb[b.ID] {
			return false
		}
	}
	if c.reach.reaches(sj.block, si.block) {
		if bb[si.block.ID] || bb[sj.block.ID] {
			return false
		}
	}
	return true
}

func accLeq(ai, aj ir.AccessKind) bool { return ai == aj || ai == ir.Write }

func (c *elimCtx) pointAccess(p tracePoint) ir.AccessKind {
	if p.fact != nil {
		return p.fact.Acc
	}
	return p.in.Access
}

func (c *elimCtx) pointIsArray(p tracePoint) bool {
	if p.fact != nil {
		return p.fact.IsArray
	}
	return p.in.IsArrayTrace
}

func (c *elimCtx) pointField(p tracePoint) *sem.Field {
	if p.fact != nil {
		return p.fact.Field
	}
	return p.in.Field
}

// pointVN is the value number of the point's traced object: the trace
// operand for real points, the call argument feeding the fact's
// parameter for virtual ones.
func (c *elimCtx) pointVN(p tracePoint, g *ssa.ValueNumbering) ssa.VN {
	if p.fact == nil {
		return g.OperandVN(p.in, 0)
	}
	if p.fact.Param < 0 || p.fact.Param >= len(p.in.Src) {
		return ssa.NoVN
	}
	return g.OperandVN(p.in, p.fact.Param)
}

// sameLocation: same field with matching receiver value numbers, or
// same array reference. The victim sj is always a real trace.
func (c *elimCtx) sameLocation(si, sj tracePoint, strict bool) bool {
	g := c.gvn
	if strict {
		g = c.strictGvn
	}
	b := sj.in
	if b.IsArrayTrace {
		if !c.pointIsArray(si) {
			return false
		}
		va, vb := c.pointVN(si, g), g.OperandVN(b, 0)
		return va != ssa.NoVN && va == vb
	}
	if c.pointIsArray(si) || c.pointField(si) != b.Field {
		return false
	}
	if b.Field.Static {
		return true // class-qualified: same field ⇒ same location
	}
	va, vb := c.pointVN(si, g), g.OperandVN(b, 0)
	return va != ssa.NoVN && va == vb
}

// pairLoop runs the Definition 3 sweep: for each trace S_j in RPO
// order, find an earlier surviving point S_i with S_i ⊑ S_j. Virtual
// points carry the call's region stack (si.in is the OpCall).
func (c *elimCtx) pairLoop(rep *Report) {
	for j, sj := range c.traces {
		if sj.fact != nil {
			continue
		}
		for i := 0; i < j; i++ {
			si := c.traces[i]
			if si.fact == nil && c.eliminated[si.in] {
				continue
			}
			if !accLeq(c.pointAccess(si), sj.in.Access) {
				continue
			}
			if !outer(si.in.SyncRegions, sj.in.SyncRegions) {
				continue
			}
			if !c.sameLocation(si, sj, false) {
				continue
			}
			if !c.exec(si, sj, false) {
				continue
			}
			c.eliminated[sj.in] = true
			if rep != nil {
				rep.Elims = append(rep.Elims, c.elim(si, sj))
			}
			break
		}
	}
}

// elim builds the report record, classifying the kill: interproc if a
// virtual point or any relaxed-only condition justified it, peel if
// eliminator and victim share a source position (a peeled iteration),
// intra otherwise.
func (c *elimCtx) elim(si, sj tracePoint) Elim {
	e := Elim{
		Fn:     c.fn.Name,
		Name:   sj.in.TraceName,
		Access: sj.in.Access,
		Pos:    sj.in.Pos,
	}
	if si.fact != nil {
		e.Kind = KindInterproc
		e.ByFn = si.fact.SrcFn.Name
		e.ByPos = si.fact.Src.Pos
		return e
	}
	e.ByFn = c.fn.Name
	e.ByPos = si.in.Pos
	switch {
	case c.ip != nil && !(c.sameLocation(si, sj, true) && c.exec(si, sj, true)):
		e.Kind = KindInterproc
	case si.in.Pos == sj.in.Pos:
		e.Kind = KindPeel
	default:
		e.Kind = KindIntra
	}
	return e
}

func (c *elimCtx) removeEliminated() int {
	if len(c.eliminated) == 0 {
		return 0
	}
	for _, b := range c.fn.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !c.eliminated[in] {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	return len(c.eliminated)
}

// MustTrace summary dataflow ------------------------------------------

type factKey struct {
	param   int
	field   *sem.Field
	isArray bool
}

type factVal struct {
	acc   ir.AccessKind
	src   *ir.Instr
	srcFn *ir.Func
}

func cloneFacts(m map[factKey]factVal) map[factKey]factVal {
	out := make(map[factKey]factVal, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// intersectFacts joins two states: a location survives if traced in
// both, with access Write only if written in both (Read covers less).
func intersectFacts(a, b map[factKey]factVal) map[factKey]factVal {
	out := make(map[factKey]factVal)
	for k, av := range a {
		bv, ok := b[k]
		switch {
		case !ok:
		case av.acc == ir.Read:
			out[k] = av
		case bv.acc == ir.Read:
			out[k] = bv
		default:
			out[k] = av
		}
	}
	return out
}

func sameFacts(a, b map[factKey]factVal) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		if bv, ok := b[k]; !ok || av != bv {
			return false
		}
	}
	return true
}

func genFact(st map[factKey]factVal, k factKey, v factVal) {
	if old, ok := st[k]; ok && old.acc == ir.Write && v.acc == ir.Read {
		return // an existing write fact covers reads too
	}
	st[k] = v
}

// paramVNs maps the entry value number of each parameter to its index
// (lowest index wins on aliased parameters).
func (c *elimCtx) paramVNs() map[ssa.VN]int {
	m := make(map[ssa.VN]int, c.fn.NumParams)
	for i := c.fn.NumParams - 1; i >= 0; i-- {
		if v := c.gvn.ParamVN(i); v != ssa.NoVN {
			m[v] = i
		}
	}
	return m
}

// traceKey maps a trace to a summary location, if its object is a
// parameter's entry value (or the field is static).
func (c *elimCtx) traceKey(in *ir.Instr, paramOf map[ssa.VN]int) (factKey, bool) {
	if in.IsArrayTrace {
		vn := c.gvn.OperandVN(in, 0)
		if pi, ok := paramOf[vn]; ok && vn != ssa.NoVN {
			return factKey{param: pi, isArray: true}, true
		}
		return factKey{}, false
	}
	if in.Field.Static {
		return factKey{param: -1, field: in.Field}, true
	}
	vn := c.gvn.OperandVN(in, 0)
	if pi, ok := paramOf[vn]; ok && vn != ssa.NoVN {
		return factKey{param: pi, field: in.Field}, true
	}
	return factKey{}, false
}

func (c *elimCtx) sumTransfer(st map[factKey]factVal, in *ir.Instr, paramOf map[ssa.VN]int) {
	switch in.Op {
	case ir.OpTrace:
		if c.eliminated[in] {
			return
		}
		if k, ok := c.traceKey(in, paramOf); ok {
			genFact(st, k, factVal{in.Access, in, c.fn})
		}
	case ir.OpCall:
		cs := c.ip.pts.Callees[in]
		if len(cs) != 1 {
			return
		}
		sum := c.ip.summaries[cs[0]]
		for i := range sum {
			f := &sum[i]
			if f.Param < 0 {
				genFact(st, factKey{param: -1, field: f.Field}, factVal{f.Acc, f.Src, f.SrcFn})
				continue
			}
			if f.Param >= len(in.Src) {
				continue
			}
			vn := c.gvn.OperandVN(in, f.Param)
			pi, ok := paramOf[vn]
			if vn == ssa.NoVN || !ok {
				continue
			}
			genFact(st, factKey{param: pi, field: f.Field, isArray: f.IsArray},
				factVal{f.Acc, f.Src, f.SrcFn})
		}
	}
}

// summary runs the forward must-dataflow (intersection at joins,
// optimistic ⊤ for unvisited predecessors, ∅ at entry) and exports the
// intersection of the states at every return, sorted for determinism.
// Callee facts at single-target sync-free calls propagate through, so
// summaries compose up the (acyclic part of the) call graph.
func (c *elimCtx) summary() []Fact {
	paramOf := c.paramVNs()
	out := make(map[*ir.Block]map[factKey]factVal, len(c.fn.Blocks))
	blockIn := func(b *ir.Block) map[factKey]factVal {
		if b == c.fn.Entry {
			return make(map[factKey]factVal)
		}
		var st map[factKey]factVal
		for _, p := range b.Preds {
			po, ok := out[p]
			if !ok {
				continue // optimistic: not yet computed
			}
			if st == nil {
				st = cloneFacts(po)
			} else {
				st = intersectFacts(st, po)
			}
		}
		if st == nil {
			st = make(map[factKey]factVal)
		}
		return st
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.dom.RPO() {
			st := blockIn(b)
			for _, in := range b.Instrs {
				c.sumTransfer(st, in, paramOf)
			}
			if prev, ok := out[b]; !ok || !sameFacts(prev, st) {
				out[b] = st
				changed = true
			}
		}
	}
	var ret map[factKey]factVal
	have := false
	for _, b := range c.dom.RPO() {
		st := blockIn(b)
		for _, in := range b.Instrs {
			if in.Op == ir.OpReturn {
				if !have {
					ret, have = cloneFacts(st), true
				} else {
					ret = intersectFacts(ret, st)
				}
			}
			c.sumTransfer(st, in, paramOf)
		}
	}
	if len(ret) == 0 {
		return nil
	}
	facts := make([]Fact, 0, len(ret))
	for k, v := range ret {
		facts = append(facts, Fact{Param: k.param, Field: k.field, IsArray: k.isArray,
			Acc: v.acc, Src: v.src, SrcFn: v.srcFn})
	}
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Param != b.Param {
			return a.Param < b.Param
		}
		an, bn := "", ""
		if a.Field != nil {
			an = a.Field.QualifiedName()
		}
		if b.Field != nil {
			bn = b.Field.QualifiedName()
		}
		if an != bn {
			return an < bn
		}
		return !a.IsArray && b.IsArray
	})
	return facts
}

// Pass 2: entry coverage ----------------------------------------------

// passEntryCoverage eliminates a surviving trace of a parameter (or
// static) location inside a sync-free, non-thread-root function when
// every call site is preceded by a surviving covering trace of the
// corresponding argument. A sync-free function contains no barrier at
// all, so the path call → entry → access is barrier-free and the §6
// conditions concatenate with the cover's. Covers are pinned: a pinned
// trace is never chosen as a later pass-2 victim, so no mutual-kill
// cycle can arise.
func passEntryCoverage(ip *Interproc, ctxs map[*ir.Func]*elimCtx, rep *Report, skip func(*ir.Func) bool) {
	pinned := make(map[*ir.Instr]bool)
	for _, fn := range ip.prog.Funcs {
		if !ip.syncFree[fn] || ip.threadRoot[fn] {
			continue
		}
		if skip != nil && skip(fn) {
			continue // cached traces are final
		}
		sites := ip.callSites[fn]
		if len(sites) == 0 {
			continue
		}
		c := ctxs[fn]
		paramOf := c.paramVNs()
		for _, tp := range c.traces {
			if tp.fact != nil || c.eliminated[tp.in] || pinned[tp.in] {
				continue
			}
			loc, ok := c.traceKey(tp.in, paramOf)
			if !ok {
				continue
			}
			covers := make([]*ir.Instr, 0, len(sites))
			good := true
			for _, s := range sites {
				cov := findCover(ctxs[s.fn], s, loc, tp.in.Access, tp.in)
				if cov == nil {
					good = false
					break
				}
				covers = append(covers, cov)
			}
			if !good {
				continue
			}
			c.eliminated[tp.in] = true
			for _, cv := range covers {
				pinned[cv] = true
			}
			if rep != nil {
				rep.Elims = append(rep.Elims, Elim{
					Fn: fn.Name, Name: tp.in.TraceName, Access: tp.in.Access,
					Pos: tp.in.Pos, Kind: KindInterproc,
					ByFn: sites[0].fn.Name, ByPos: covers[0].Pos,
				})
			}
		}
	}
}

// findCover searches the caller for a surviving trace of the call
// argument feeding loc, with covering access kind, region stack a
// prefix of the call's, and a barrier-free path to the call.
func findCover(gc *elimCtx, s callRef, loc factKey, acc ir.AccessKind, candidate *ir.Instr) *ir.Instr {
	if gc == nil {
		return nil
	}
	callPt := tracePoint{in: s.in, block: s.block, pos: s.pos}
	argVN := ssa.NoVN
	if loc.param >= 0 {
		if loc.param >= len(s.in.Src) {
			return nil
		}
		argVN = gc.gvn.OperandVN(s.in, loc.param)
		if argVN == ssa.NoVN {
			return nil
		}
	}
	for _, t0 := range gc.traces {
		if t0.fact != nil || t0.in == candidate || gc.eliminated[t0.in] {
			continue
		}
		a := t0.in
		if !accLeq(a.Access, acc) {
			continue
		}
		if loc.isArray {
			if !a.IsArrayTrace || gc.gvn.OperandVN(a, 0) != argVN {
				continue
			}
		} else if a.IsArrayTrace || a.Field != loc.field {
			continue
		} else if loc.param >= 0 && gc.gvn.OperandVN(a, 0) != argVN {
			continue
		}
		if !outer(a.SyncRegions, s.in.SyncRegions) {
			continue
		}
		if !gc.exec(t0, callPt, false) {
			continue
		}
		return a
	}
	return nil
}

// EliminateProgram ----------------------------------------------------

// EliminateProgram runs the weaker-than elimination over the whole
// program. With interproc false (or pts nil) it is exactly the per-
// function Definition 3 sweep; with interproc true it additionally
// applies the relaxed barriers, stable-field value numbering, and
// cross-call coverage described at the top of this file. It returns
// the number of traces removed and the per-elimination report.
func EliminateProgram(prog *ir.Program, pts *pointsto.Result, interproc bool) (int, *Report) {
	var ip *Interproc
	if interproc && pts != nil {
		ip = BuildInterproc(prog, pts)
	}
	return EliminateProgramWith(prog, ip, nil)
}

// EliminateProgramWith is EliminateProgram with a prebuilt Interproc
// (nil = intraprocedural only) and an optional skip predicate for the
// fact cache: a skipped function's current traces are taken as final —
// it runs no elimination of its own and offers no pass-2 candidates,
// but still provides context (summaries, covers, relaxed barriers) to
// the functions that do. Skipping is sound only when the skipped
// function's traces came from a prior elimination of an identical
// dependency cone; internal/static/factcache computes that.
func EliminateProgramWith(prog *ir.Program, ip *Interproc, skip func(*ir.Func) bool) (int, *Report) {
	rep := &Report{}
	ctxs := make(map[*ir.Func]*elimCtx, len(prog.Funcs))
	order := prog.Funcs
	if ip != nil {
		order = ip.order // callees first: summaries ready at each caller
	}
	for _, fn := range order {
		skipped := skip != nil && skip(fn)
		if ip == nil && skipped {
			continue // no cross-function context needed
		}
		c := newElimCtx(fn, ip)
		if !skipped {
			c.pairLoop(rep)
		}
		ctxs[fn] = c
		if ip != nil && ip.syncFree[fn] && !ip.recursive[fn] {
			if sum := c.summary(); sum != nil {
				ip.summaries[fn] = sum
			}
		}
	}
	if ip != nil {
		passEntryCoverage(ip, ctxs, rep, skip)
	}
	total := 0
	for _, fn := range prog.Funcs {
		if c := ctxs[fn]; c != nil {
			total += c.removeEliminated()
		}
	}
	rep.sortElims()
	return total, rep
}

// StableFields returns the sorted qualified names of the init-only
// fields (the fact cache folds them into its dependency digests).
func (ip *Interproc) StableFields() []string {
	out := make([]string, 0, len(ip.stable))
	for f := range ip.stable {
		out = append(out, f.QualifiedName())
	}
	sort.Strings(out)
	return out
}

// SyncFree reports whether fn is transitively free of monitor and
// thread operations.
func (ip *Interproc) SyncFree(fn *ir.Func) bool { return ip.syncFree[fn] }
