package instrument

import (
	"testing"

	"racedet/internal/ir"
	"racedet/internal/lang/ast"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
)

// buildInstrumented parses, optionally peels, lowers, instruments
// everything, and runs the elimination; it returns the named function
// and the elimination count.
func buildInstrumented(t *testing.T, src, name string, peel bool) (*ir.Func, int) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if peel {
		isField := func(id *ast.Ident) bool { return sp.IdentRef[id].Kind == sem.RefField }
		PeelLoops(prog, isField)
		sp, err = sem.Check(prog)
		if err != nil {
			t.Fatalf("re-check: %v", err)
		}
	}
	low := lower.Lower(sp)
	fn := low.Prog.FuncByName(name)
	if fn == nil {
		t.Fatalf("no function %s", name)
	}
	InsertTraces(fn, nil)
	n := EliminateRedundant(fn)
	return fn, n
}

func traceCount(fn *ir.Func) int {
	return fn.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpTrace })
}

func TestInsertTracesCoversAllAccessKinds(t *testing.T) {
	src := `
class A {
    int f;
    static int s;
    void m(int[] arr, A other) {
        f = 1;           // putfield (implicit this)
        int x = f;       // getfield
        s = 2;           // putstatic
        int y = s;       // getstatic
        arr[0] = 3;      // astore
        int z = arr[1];  // aload
        other.f = x + y + z;
    }
}
class M { static void main() { } }`
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	low := lower.Lower(sp)
	fn := low.Prog.FuncByName("A.m")
	st := InsertTraces(fn, nil)
	if st.Accesses != 7 || st.Inserted != 7 {
		t.Errorf("accesses/inserted = %d/%d, want 7/7", st.Accesses, st.Inserted)
	}
	// Each trace must immediately follow its access and carry its kind.
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in.Op != ir.OpTrace {
				continue
			}
			prev := b.Instrs[i-1]
			if !prev.IsAccess() {
				t.Fatalf("trace not immediately after an access: preceded by %s", fn.InstrString(prev))
			}
			kind, isArray, _, field := prev.AccessInfo()
			if in.Access != kind || in.IsArrayTrace != isArray || in.Field != field {
				t.Fatalf("trace payload mismatch for %s", fn.InstrString(prev))
			}
		}
	}
}

func TestFilterLimitsInsertion(t *testing.T) {
	src := `
class A {
    int f;
    int g;
    void m() { f = 1; g = 2; }
}
class M { static void main() { } }`
	prog, _ := parser.Parse("t.mj", src)
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	low := lower.Lower(sp)
	fn := low.Prog.FuncByName("A.m")
	st := InsertTraces(fn, func(in *ir.Instr) bool {
		return in.Field != nil && in.Field.Name == "f"
	})
	if st.Inserted != 1 {
		t.Errorf("inserted = %d, want 1 (filtered)", st.Inserted)
	}
}

func TestEliminateStraightLine(t *testing.T) {
	// Second access to the same object+field with no call between:
	// the second trace dies; a WRITE also kills a following READ
	// (a_i ⊑ a_j).
	src := `
class A {
    int f;
    void m() {
        f = 1;        // write trace survives
        int x = f;    // read of same location: eliminated
        f = x + 1;    // write: eliminated (write ⊑ write)
    }
}
class M { static void main() { } }`
	fn, n := buildInstrumented(t, src, "A.m", false)
	if n != 2 {
		t.Errorf("eliminated = %d, want 2", n)
	}
	if tc := traceCount(fn); tc != 1 {
		t.Errorf("surviving traces = %d, want 1", tc)
	}
}

func TestReadDoesNotEliminateWrite(t *testing.T) {
	src := `
class A {
    int f;
    void m() {
        int x = f;    // read trace survives
        f = x + 1;    // write: NOT eliminable by a read (WRITE ⋢ via READ)
    }
}
class M { static void main() { } }`
	fn, n := buildInstrumented(t, src, "A.m", false)
	if n != 0 {
		t.Errorf("eliminated = %d, want 0", n)
	}
	if tc := traceCount(fn); tc != 2 {
		t.Errorf("traces = %d, want 2", tc)
	}
}

func TestCallBarsElimination(t *testing.T) {
	src := `
class A {
    int f;
    void other() { }
    void m() {
        f = 1;
        other();      // Exec fails: method invocation between
        f = 2;
    }
}
class M { static void main() { } }`
	fn, n := buildInstrumented(t, src, "A.m", false)
	if n != 0 {
		t.Errorf("eliminated = %d, want 0 (call between)", n)
	}
	if tc := traceCount(fn); tc != 2 {
		t.Errorf("traces = %d", tc)
	}
}

func TestMonitorBarsElimination(t *testing.T) {
	// Stricter than the paper: a monitorenter between the accesses
	// also blocks elimination (closes the lock-reentry corner).
	src := `
class A {
    int f;
    void m(A p) {
        f = 1;
        synchronized (p) { int x = 0; print(x); }
        f = 2;
    }
}
class M { static void main() { } }`
	_, n := buildInstrumented(t, src, "A.m", false)
	if n != 0 {
		t.Errorf("eliminated = %d, want 0 (monitor ops between)", n)
	}
}

func TestOuterSyncNesting(t *testing.T) {
	// A trace outside a sync block eliminates one inside it (deeper
	// nesting: e_i.L ⊆ e_j.L)... but our conservative Exec also
	// rejects the monitorenter between them, so instead check the
	// allowed direction *within* the same block: same nesting level.
	src := `
class A {
    int f;
    void m(A p) {
        synchronized (p) {
            f = 1;
            int x = f;   // same region, dominated: eliminated
        }
    }
}
class M { static void main() { } }`
	_, n := buildInstrumented(t, src, "A.m", false)
	if n != 1 {
		t.Errorf("eliminated = %d, want 1", n)
	}
	// And the inside→outside direction must never eliminate: the
	// inner lockset is larger.
	src2 := `
class A {
    int f;
    void m(A p) {
        synchronized (p) {
            f = 1;
        }
        f = 2;    // smaller lockset: must survive
    }
}
class M { static void main() { } }`
	_, n2 := buildInstrumented(t, src2, "A.m", false)
	if n2 != 0 {
		t.Errorf("eliminated = %d, want 0 (outer trace is not covered by inner)", n2)
	}
}

func TestDifferentObjectsNotEliminated(t *testing.T) {
	src := `
class A {
    int f;
    void m(A p, A q) {
        p.f = 1;
        q.f = 2;   // different value number: survives
    }
}
class M { static void main() { } }`
	_, n := buildInstrumented(t, src, "A.m", false)
	if n != 0 {
		t.Errorf("eliminated = %d, want 0", n)
	}
}

func TestSameObjectThroughCopyEliminated(t *testing.T) {
	src := `
class A {
    int f;
    void m(A p) {
        A q = p;   // copy: same value number
        p.f = 1;
        q.f = 2;   // same location: eliminated
    }
}
class M { static void main() { } }`
	_, n := buildInstrumented(t, src, "A.m", false)
	if n != 1 {
		t.Errorf("eliminated = %d, want 1", n)
	}
}

func TestBranchesDoNotDominate(t *testing.T) {
	src := `
class A {
    int f;
    void m(boolean c) {
        if (c) { f = 1; } else { f = 2; }
        f = 3;    // not dominated by either branch write: survives
    }
}
class M { static void main() { } }`
	fn, n := buildInstrumented(t, src, "A.m", false)
	if n != 0 {
		t.Errorf("eliminated = %d, want 0", n)
	}
	if tc := traceCount(fn); tc != 3 {
		t.Errorf("traces = %d, want 3", tc)
	}
}

// TestFigure3LoopPeeling reproduces the paper's Figure 3: a loop whose
// body writes a.f on every iteration. Without peeling the in-loop
// trace cannot be eliminated (the first iteration's event is not
// redundant); with peeling the cloned first iteration's trace
// statically covers the loop body's, which is removed.
func TestFigure3LoopPeeling(t *testing.T) {
	src := `
class A {
    int f;
    void m(A a, int n) {
        for (int i = 0; i < n; i++) {
            a.f = i;
        }
    }
}
class M { static void main() { } }`

	// Without peeling: the in-loop trace survives.
	fnNoPeel, _ := buildInstrumented(t, src, "A.m", false)
	inLoop := 0
	for _, b := range fnNoPeel.ReachableBlocks() {
		for _, in := range b.Instrs {
			if in.Op == ir.OpTrace && blockInCycle(fnNoPeel, b) {
				inLoop++
			}
		}
	}
	if inLoop == 0 {
		t.Fatal("without peeling the loop body must keep its trace")
	}

	// With peeling: no trace remains inside any cycle.
	fnPeel, n := buildInstrumented(t, src, "A.m", true)
	if n == 0 {
		t.Fatal("peeling should enable at least one elimination")
	}
	for _, b := range fnPeel.ReachableBlocks() {
		for _, in := range b.Instrs {
			if in.Op == ir.OpTrace && blockInCycle(fnPeel, b) {
				t.Fatalf("trace still inside the loop after peeling: %s in b%d", fnPeel.InstrString(in), b.ID)
			}
		}
	}
	// The peeled copy still traces the access at most once.
	if tc := traceCount(fnPeel); tc != 1 {
		t.Errorf("surviving traces = %d, want 1", tc)
	}
}

// blockInCycle reports whether b can reach itself.
func blockInCycle(f *ir.Func, b *ir.Block) bool {
	seen := map[*ir.Block]bool{}
	stack := append([]*ir.Block(nil), b.Succs...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, x.Succs...)
	}
	return false
}

func TestPeelCountsAndEligibility(t *testing.T) {
	parse := func(src string) (*ast.Program, *sem.Program) {
		prog, err := parser.Parse("t.mj", src)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := sem.Check(prog)
		if err != nil {
			t.Fatal(err)
		}
		return prog, sp
	}

	// Loop with a heap access: peeled.
	prog, sp := parse(`
class A {
    int f;
    void m() { while (f < 3) { f = f + 1; } }
}
class M { static void main() { } }`)
	isField := func(id *ast.Ident) bool { return sp.IdentRef[id].Kind == sem.RefField }
	if n := PeelLoops(prog, isField); n != 1 {
		t.Errorf("peeled = %d, want 1", n)
	}

	// Loop with only local arithmetic: not peeled.
	prog2, _ := parse(`
class M {
    static void main() {
        int s = 0;
        for (int i = 0; i < 3; i++) { s = s + i; }
        print(s);
    }
}`)
	if n := PeelLoops(prog2, nil); n != 0 {
		t.Errorf("peeled = %d, want 0 (no heap access)", n)
	}

	// Loop containing a break bound to it: not peeled.
	prog3, _ := parse(`
class A {
    int f;
    void m(int[] a) {
        for (int i = 0; i < 10; i++) {
            a[i] = i;
            if (i == 5) { break; }
        }
    }
}
class M { static void main() { } }`)
	if n := PeelLoops(prog3, nil); n != 0 {
		t.Errorf("peeled = %d, want 0 (break binds to the loop)", n)
	}

	// A break bound to an inner loop does not block peeling the
	// OUTER loop (but the inner loop itself is skipped).
	prog4, _ := parse(`
class A {
    void m(int[] a) {
        for (int i = 0; i < 4; i++) {
            a[i] = i;
            while (true) { break; }
        }
    }
}
class M { static void main() { } }`)
	if n := PeelLoops(prog4, nil); n != 1 {
		t.Errorf("peeled = %d, want 1 (outer only)", n)
	}
}

func TestPeelingPreservesSemantics(t *testing.T) {
	// Peel and check the transformed AST still typechecks and the
	// loop runs the same number of iterations (validated structurally:
	// the guard + cloned body + original loop).
	src := `
class A {
    int f;
    int m(int n) {
        for (int i = 0; i < n; i++) { f = f + i; }
        return f;
    }
}
class M { static void main() { } }`
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	isField := func(id *ast.Ident) bool { return sp.IdentRef[id].Kind == sem.RefField }
	PeelLoops(prog, isField)
	if _, err := sem.Check(prog); err != nil {
		t.Fatalf("peeled program no longer typechecks: %v\n%s", err, prog.String())
	}
}

func TestEliminationJustifiedByDominatingSurvivor(t *testing.T) {
	// Regression guard for the eliminator-must-survive rule: in a
	// chain f;f;f the first trace must survive and justify the rest.
	src := `
class A {
    int f;
    void m() { f = 1; f = 2; f = 3; f = 4; }
}
class M { static void main() { } }`
	fn, n := buildInstrumented(t, src, "A.m", false)
	if n != 3 {
		t.Fatalf("eliminated = %d, want 3", n)
	}
	// The survivor must be the first trace (position check: it must
	// precede every putfield except the first).
	var sawTrace bool
	for _, b := range fn.ReachableBlocks() {
		for i, in := range b.Instrs {
			if in.Op == ir.OpTrace {
				sawTrace = true
				if i == 0 || b.Instrs[i-1].Op != ir.OpPutField {
					t.Fatal("survivor is not attached to its access")
				}
				// Everything before it must contain exactly one putfield.
				puts := 0
				for j := 0; j < i; j++ {
					if b.Instrs[j].Op == ir.OpPutField {
						puts++
					}
				}
				if puts != 1 {
					t.Fatalf("survivor after %d writes, want after the first", puts)
				}
			}
		}
	}
	if !sawTrace {
		t.Fatal("no trace survived")
	}
}
