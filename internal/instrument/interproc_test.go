package instrument

import (
	"fmt"
	"testing"

	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
	"racedet/internal/pointsto"
)

// buildProgram parses, lowers, runs points-to, and instruments every
// function with traces (no static filter).
func buildProgram(t *testing.T, src string) (*ir.Program, *pointsto.Result) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	low := lower.Lower(sp)
	pts := pointsto.Analyze(low.Prog)
	for _, fn := range low.Prog.Funcs {
		InsertTraces(fn, nil)
	}
	return low.Prog, pts
}

func tracesNamed(fn *ir.Func, name string) int {
	return fn.CountInstrs(func(in *ir.Instr) bool {
		return in.Op == ir.OpTrace && in.TraceName == name
	})
}

// A call to a transitively sync-free callee is no longer an Exec
// barrier, so the second access to the same object is eliminated.
func TestSyncFreeCallNotABarrier(t *testing.T) {
	src := `
class A { int f; }
class B {
    void m(A other) {
        other.f = 1;
        helper();
        int x = other.f;
    }
    void helper() { int y = 3; }
}
class M { static void main() { B b = new B(); A a = new A(); b.m(a); } }`

	prog, pts := buildProgram(t, src)
	n, rep := EliminateProgram(prog, pts, true)
	if n == 0 {
		t.Fatal("no eliminations")
	}
	m := prog.FuncByName("B.m")
	if got := tracesNamed(m, "A.f"); got != 1 {
		t.Errorf("B.m A.f traces = %d, want 1 (read covered across sync-free call)", got)
	}
	_, _, interproc := rep.Counts()
	if interproc == 0 {
		t.Errorf("report has no interproc eliminations: %+v", rep.Elims)
	}

	// Without the interprocedural extension the call is a barrier.
	prog2, pts2 := buildProgram(t, src)
	EliminateProgram(prog2, pts2, false)
	if got := tracesNamed(prog2.FuncByName("B.m"), "A.f"); got != 2 {
		t.Errorf("NoInterproc B.m A.f traces = %d, want 2", got)
	}
}

// Loads of an init-only field off the same receiver share a value
// number, so accesses through repeated loads merge.
func TestStableFieldLoadsMerge(t *testing.T) {
	src := `
class A { int f; }
class B {
    A a;
    B() { a = new A(); }
    void m() {
        a.f = 1;
        int x = a.f;
    }
}
class M { static void main() { B b = new B(); b.m(); } }`

	prog, pts := buildProgram(t, src)
	EliminateProgram(prog, pts, true)
	if got := tracesNamed(prog.FuncByName("B.m"), "A.f"); got != 1 {
		t.Errorf("B.m A.f traces = %d, want 1 (stable-field loads merged)", got)
	}

	// Plain GVN gives the two loads of B.a fresh numbers: both A.f
	// traces survive.
	prog2, pts2 := buildProgram(t, src)
	EliminateProgram(prog2, pts2, false)
	if got := tracesNamed(prog2.FuncByName("B.m"), "A.f"); got != 2 {
		t.Errorf("NoInterproc B.m A.f traces = %d, want 2", got)
	}
}

// A field written outside a constructor is not stable: the merge must
// not fire.
func TestMutableFieldLoadsDoNotMerge(t *testing.T) {
	src := `
class A { int f; }
class B {
    A a;
    B() { a = new A(); }
    void swap(A n) { a = n; }
    void m() {
        a.f = 1;
        int x = a.f;
    }
}
class M { static void main() { B b = new B(); b.swap(new A()); b.m(); } }`

	prog, pts := buildProgram(t, src)
	EliminateProgram(prog, pts, true)
	if got := tracesNamed(prog.FuncByName("B.m"), "A.f"); got != 2 {
		t.Errorf("B.m A.f traces = %d, want 2 (B.a is mutable)", got)
	}
}

// Entry coverage: a callee access to a parameter location is covered
// when every call site traces the argument first.
func TestEntryCoverageEliminatesCalleeTrace(t *testing.T) {
	src := `
class A { int f; }
class B {
    void m(A s) {
        s.f = 1;
        helper(s);
    }
    void helper(A s) { int x = s.f; }
}
class M { static void main() { B b = new B(); A a = new A(); b.m(a); } }`

	prog, pts := buildProgram(t, src)
	_, rep := EliminateProgram(prog, pts, true)
	helper := prog.FuncByName("B.helper")
	if got := tracesNamed(helper, "A.f"); got != 0 {
		t.Errorf("B.helper A.f traces = %d, want 0 (entry-covered)", got)
	}
	// The cover in the caller must survive (it is pinned).
	if got := tracesNamed(prog.FuncByName("B.m"), "A.f"); got != 1 {
		t.Errorf("B.m A.f traces = %d, want 1 (cover survives)", got)
	}
	found := false
	for _, e := range rep.Elims {
		if e.Fn == "B.helper" && e.Kind == KindInterproc && e.ByFn == "B.m" {
			found = true
		}
	}
	if !found {
		t.Errorf("no interproc elim recorded for B.helper: %+v", rep.Elims)
	}

	prog2, pts2 := buildProgram(t, src)
	EliminateProgram(prog2, pts2, false)
	if got := tracesNamed(prog2.FuncByName("B.helper"), "A.f"); got != 1 {
		t.Errorf("NoInterproc B.helper A.f traces = %d, want 1", got)
	}
}

// Entry coverage must not fire when one call site lacks a cover.
func TestEntryCoverageNeedsEverySite(t *testing.T) {
	src := `
class A { int f; }
class B {
    void m(A s) {
        s.f = 1;
        helper(s);
    }
    void bare(A s) { helper(s); }
    void helper(A s) { int x = s.f; }
}
class M {
    static void main() {
        B b = new B(); A a = new A();
        b.m(a); b.bare(a);
    }
}`

	prog, pts := buildProgram(t, src)
	EliminateProgram(prog, pts, true)
	if got := tracesNamed(prog.FuncByName("B.helper"), "A.f"); got != 1 {
		t.Errorf("B.helper A.f traces = %d, want 1 (B.bare site has no cover)", got)
	}
}

// A callee MustTrace fact acts as a virtual trace point after the
// call, eliminating later caller traces of the same argument.
func TestCalleeFactEliminatesCallerTrace(t *testing.T) {
	src := `
class A { int f; }
class B {
    void m(A s) {
        helper(s);
        int x = s.f;
    }
    void helper(A s) { s.f = 2; }
}
class M { static void main() { B b = new B(); A a = new A(); b.m(a); } }`

	prog, pts := buildProgram(t, src)
	_, rep := EliminateProgram(prog, pts, true)
	if got := tracesNamed(prog.FuncByName("B.m"), "A.f"); got != 0 {
		t.Errorf("B.m A.f traces = %d, want 0 (covered by callee fact)", got)
	}
	// The fact's source in the callee survives.
	if got := tracesNamed(prog.FuncByName("B.helper"), "A.f"); got != 1 {
		t.Errorf("B.helper A.f traces = %d, want 1", got)
	}
	found := false
	for _, e := range rep.Elims {
		if e.Fn == "B.m" && e.Kind == KindInterproc && e.ByFn == "B.helper" {
			found = true
		}
	}
	if !found {
		t.Errorf("no fact-sourced elim recorded for B.m: %+v", rep.Elims)
	}
}

// A callee that synchronizes keeps the call a barrier and is itself
// ineligible for entry coverage.
func TestSynchronizedCalleeStaysBarrier(t *testing.T) {
	src := `
class A { int f; }
class B {
    void m(A other) {
        other.f = 1;
        locked(other);
        int x = other.f;
    }
    void locked(A o) { synchronized (o) { o.f = 3; } }
}
class M { static void main() { B b = new B(); A a = new A(); b.m(a); } }`

	prog, pts := buildProgram(t, src)
	EliminateProgram(prog, pts, true)
	if got := tracesNamed(prog.FuncByName("B.m"), "A.f"); got != 2 {
		t.Errorf("B.m A.f traces = %d, want 2 (locked call is a barrier)", got)
	}
	if got := tracesNamed(prog.FuncByName("B.locked"), "A.f"); got != 1 {
		t.Errorf("B.locked A.f traces = %d, want 1 (not sync-free)", got)
	}
}

// With interproc off, EliminateProgram must match the per-function
// EliminateRedundant sweep exactly.
func TestEliminateProgramMatchesPerFunction(t *testing.T) {
	src := `
class A { int f; int g; }
class B {
    void m(A s) {
        s.f = 1;
        int x = s.f;
        helper(s);
        s.g = x;
        int y = s.g;
    }
    void helper(A s) { s.f = 2; }
}
class M { static void main() { B b = new B(); A a = new A(); b.m(a); } }`

	prog, pts := buildProgram(t, src)
	nProg, _ := EliminateProgram(prog, pts, false)

	prog2, _ := buildProgram(t, src)
	nFn := 0
	for _, fn := range prog2.Funcs {
		nFn += EliminateRedundant(fn)
	}
	if nProg != nFn {
		t.Errorf("EliminateProgram = %d, per-function sweep = %d", nProg, nFn)
	}
	for _, fn := range prog.Funcs {
		if got, want := traceCount(fn), traceCount(prog2.FuncByName(fn.Name)); got != want {
			t.Errorf("%s: %d traces vs %d per-function", fn.Name, got, want)
		}
	}
}

// The elimination report is deterministic across rebuilds.
func TestReportDeterministic(t *testing.T) {
	src := `
class A { int f; int g; }
class B {
    void m(A s) {
        s.f = 1;
        helper(s);
        int x = s.f;
        s.g = x;
        int y = s.g;
    }
    void helper(A s) { s.f = 2; int z = s.g; }
}
class M { static void main() { B b = new B(); A a = new A(); b.m(a); } }`

	render := func() string {
		prog, pts := buildProgram(t, src)
		_, rep := EliminateProgram(prog, pts, true)
		out := ""
		for _, e := range rep.Elims {
			out += fmt.Sprintf("%s %s %s %s %s %s %s\n",
				e.Fn, e.Name, e.Access, e.Pos, e.Kind, e.ByFn, e.ByPos)
		}
		return out
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("report differs between runs:\n%s\nvs\n%s", first, got)
		}
	}
}
