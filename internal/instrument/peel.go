package instrument

import (
	"racedet/internal/lang/ast"
)

// PeelLoops applies the §6.3 loop-peeling transformation to every
// eligible loop of the program, returning the number of loops peeled.
// The transformation rewrites
//
//	while (c) { B }          →  if (c) { B' ; while (c) { B } }
//	for (i; c; p) { B }      →  { i; if (c) { B'; p'; for (; c; p) { B } } }
//
// where B' is a clone of the body. After peeling, the first
// iteration's traces dominate the in-loop traces, so the static
// weaker-than elimination can remove the latter — which plain
// loop-invariant code motion cannot do because potentially excepting
// instructions (null checks, bounds checks) may bypass the loop tail.
//
// A loop is eligible when its body contains a heap access (field or
// array) and no break/continue that binds to the loop itself (the
// clone would detach them from their loop). Peeling works bottom-up so
// inner loops are peeled before the outer loop's body is cloned.
//
// The transformation mutates the program in place; callers peel a
// cloned program when they need to preserve the original. isFieldIdent
// (optional) reports whether an unqualified identifier resolves to a
// field — it lets the eligibility scan see implicit-this heap accesses;
// nil treats only explicit x.f / a[i] syntax as heap accesses.
func PeelLoops(prog *ast.Program, isFieldIdent func(*ast.Ident) bool) int {
	p := &peeler{isFieldIdent: isFieldIdent}
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			if m.Body != nil {
				m.Body.Stmts = p.peelStmts(m.Body.Stmts)
			}
		}
	}
	return p.n
}

type peeler struct {
	n            int
	isFieldIdent func(*ast.Ident) bool
}

func (p *peeler) peelStmts(stmts []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(stmts))
	for _, s := range stmts {
		out = append(out, p.peelStmt(s))
	}
	return out
}

func (p *peeler) peelStmt(s ast.Stmt) ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		s.Stmts = p.peelStmts(s.Stmts)
		return s
	case *ast.IfStmt:
		s.Then.Stmts = p.peelStmts(s.Then.Stmts)
		if s.Else != nil {
			s.Else = p.peelStmt(s.Else)
		}
		return s
	case *ast.SyncStmt:
		s.Body.Stmts = p.peelStmts(s.Body.Stmts)
		return s
	case *ast.WhileStmt:
		s.Body.Stmts = p.peelStmts(s.Body.Stmts)
		if !p.eligible(s.Body) {
			return s
		}
		p.n++
		peeled := ast.CloneBlock(s.Body)
		return &ast.IfStmt{
			TokPos: s.TokPos,
			Cond:   ast.CloneExpr(s.Cond),
			Then: &ast.BlockStmt{
				TokPos: s.TokPos,
				Stmts:  append(peeled.Stmts, s),
			},
		}
	case *ast.ForStmt:
		s.Body.Stmts = p.peelStmts(s.Body.Stmts)
		if !p.eligible(s.Body) {
			return s
		}
		p.n++
		var pre []ast.Stmt
		if s.Init != nil {
			pre = append(pre, s.Init)
			s.Init = nil
		}
		peeled := ast.CloneBlock(s.Body)
		first := peeled.Stmts
		if s.Post != nil {
			first = append(first, ast.CloneStmt(s.Post))
		}
		inner := append(first, s)
		var guarded ast.Stmt
		if s.Cond != nil {
			guarded = &ast.IfStmt{
				TokPos: s.TokPos,
				Cond:   ast.CloneExpr(s.Cond),
				Then:   &ast.BlockStmt{TokPos: s.TokPos, Stmts: inner},
			}
		} else {
			guarded = &ast.BlockStmt{TokPos: s.TokPos, Stmts: inner}
		}
		return &ast.BlockStmt{TokPos: s.TokPos, Stmts: append(pre, guarded)}
	default:
		return s
	}
}

// eligible reports whether a loop body is worth (and safe for)
// peeling: it contains at least one heap access, and no break or
// continue that binds to this loop.
func (p *peeler) eligible(body *ast.BlockStmt) bool {
	return p.containsHeapAccess(body) && !containsLoopExit(body, 0)
}

// containsHeapAccess scans for field accesses or array indexing
// anywhere in the subtree (including conditions and nested loops).
func (p *peeler) containsHeapAccess(n ast.Node) bool {
	found := false
	ast.Walk(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch e := x.(type) {
		case *ast.FieldAccess, *ast.IndexExpr:
			found = true
			return false
		case *ast.Ident:
			// Unqualified identifiers may be implicit-this field
			// accesses; the resolver callback (when provided) tells
			// them apart from locals.
			if p.isFieldIdent != nil && p.isFieldIdent(e) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// containsLoopExit reports whether the statements contain a break or
// continue binding to the loop at nesting depth 0.
func containsLoopExit(s ast.Stmt, depth int) bool {
	switch s := s.(type) {
	case *ast.BreakStmt, *ast.ContinueStmt:
		return depth == 0
	case *ast.BlockStmt:
		for _, inner := range s.Stmts {
			if containsLoopExit(inner, depth) {
				return true
			}
		}
	case *ast.IfStmt:
		if containsLoopExit(s.Then, depth) {
			return true
		}
		if s.Else != nil && containsLoopExit(s.Else, depth) {
			return true
		}
	case *ast.SyncStmt:
		return containsLoopExit(s.Body, depth)
	case *ast.WhileStmt:
		return containsLoopExit(s.Body, depth+1)
	case *ast.ForStmt:
		return containsLoopExit(s.Body, depth+1)
	}
	return false
}
