// Package faultinject provides deterministic, seedable fault injection
// for the sharded detection back end's robustness tests and the CLI
// -inject flag.
//
// A Plan is a set of faults that fire at exact points in a run —
// "panic on shard 2's 157th access", "treat shard 0's queue as full
// the first three times", "corrupt shard 1's next checkpoint" — so a
// failing recovery scenario replays exactly. Plans implement the
// detector.FaultInjector interface structurally (this package imports
// no detector code); all trigger state is atomic because the hooks run
// on the router and every worker goroutine concurrently.
//
// The textual spec syntax (CLI -inject, semicolon-separated):
//
//	panic:shard=S,event=N        one-shot panic on shard S's N-th access
//	slow:shard=S,every=K,delay=D sleep D on every K-th access of shard S
//	queuefull:shard=S,times=T    report shard S's queue full T times
//	corrupt-checkpoint:shard=S   mark shard S's next checkpoint corrupt
//
// shard=* (or shard=any) matches every shard.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// anyShard is the wildcard shard selector.
const anyShard = -1

type panicFault struct {
	shard int
	event uint64
	done  atomic.Bool
}

type slowFault struct {
	shard int
	every uint64
	delay time.Duration
}

type queueFault struct {
	shard int
	left  atomic.Int64
}

type corruptFault struct {
	shard int
	done  atomic.Bool
}

// Plan is a deterministic set of faults; safe for concurrent use.
type Plan struct {
	panics   []*panicFault
	slows    []*slowFault
	qfulls   []*queueFault
	corrupts []*corruptFault
	fired    atomic.Uint64
}

func match(sel, shard int) bool { return sel == anyShard || sel == shard }

// WorkerEvent implements the worker-side hook: it panics when a panic
// fault matches (one-shot, so a journaled replay of the same event
// does not re-fire) and sleeps when a slow fault matches.
func (p *Plan) WorkerEvent(shard int, n uint64) {
	for _, f := range p.slows {
		if match(f.shard, shard) && f.every > 0 && n%f.every == 0 {
			p.fired.Add(1)
			time.Sleep(f.delay)
		}
	}
	for _, f := range p.panics {
		if match(f.shard, shard) && n == f.event && f.done.CompareAndSwap(false, true) {
			p.fired.Add(1)
			panic(fmt.Sprintf("faultinject: injected panic on shard %d event %d", shard, n))
		}
	}
}

// QueueFull implements the router-side hook: true while a matching
// queuefull fault has firings left.
func (p *Plan) QueueFull(shard int) bool {
	for _, f := range p.qfulls {
		if match(f.shard, shard) && f.left.Add(-1) >= 0 {
			p.fired.Add(1)
			return true
		}
	}
	return false
}

// CorruptCheckpoint implements the checkpoint hook: true once per
// matching corrupt-checkpoint fault.
func (p *Plan) CorruptCheckpoint(shard int) bool {
	for _, f := range p.corrupts {
		if match(f.shard, shard) && f.done.CompareAndSwap(false, true) {
			p.fired.Add(1)
			return true
		}
	}
	return false
}

// Fired returns how many injections have triggered so far. Tests use
// it to assert the plan actually disturbed the run (a panic planned
// past the end of the stream never fires).
func (p *Plan) Fired() uint64 { return p.fired.Load() }

// Empty reports whether the plan contains no faults at all.
func (p *Plan) Empty() bool {
	return len(p.panics) == 0 && len(p.slows) == 0 &&
		len(p.qfulls) == 0 && len(p.corrupts) == 0
}

// PanicPlan returns a plan with a single worker panic at a seed-chosen
// shard and event index in [1, maxEvent]. The corpus differential
// tests sweep seeds to cover panics at arbitrary points of the stream.
func PanicPlan(seed int64, shards int, maxEvent uint64) *Plan {
	r := rand.New(rand.NewSource(seed))
	if shards < 1 {
		shards = 1
	}
	if maxEvent < 1 {
		maxEvent = 1
	}
	p := &Plan{}
	p.panics = append(p.panics, &panicFault{
		shard: r.Intn(shards),
		event: 1 + uint64(r.Int63n(int64(maxEvent))),
	})
	return p
}

// Parse builds a Plan from the textual spec syntax documented at the
// top of the package. An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, argstr, _ := strings.Cut(part, ":")
		args, err := parseArgs(argstr)
		if err != nil {
			return nil, fmt.Errorf("fault %q: %w", part, err)
		}
		shard, err := args.shard()
		if err != nil {
			return nil, fmt.Errorf("fault %q: %w", part, err)
		}
		switch kind {
		case "panic":
			n, err := args.uintArg("event")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			p.panics = append(p.panics, &panicFault{shard: shard, event: n})
		case "slow":
			every, err := args.uintArg("every")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			d, err := time.ParseDuration(args["delay"])
			if err != nil {
				return nil, fmt.Errorf("fault %q: bad delay: %w", part, err)
			}
			p.slows = append(p.slows, &slowFault{shard: shard, every: every, delay: d})
		case "queuefull":
			times, err := args.uintArg("times")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			f := &queueFault{shard: shard}
			f.left.Store(int64(times))
			p.qfulls = append(p.qfulls, f)
		case "corrupt-checkpoint":
			p.corrupts = append(p.corrupts, &corruptFault{shard: shard})
		default:
			return nil, fmt.Errorf("fault %q: unknown kind %q", part, kind)
		}
	}
	return p, nil
}

type faultArgs map[string]string

func parseArgs(s string) (faultArgs, error) {
	args := faultArgs{}
	if strings.TrimSpace(s) == "" {
		return args, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("bad argument %q (want key=value)", kv)
		}
		args[k] = v
	}
	return args, nil
}

func (a faultArgs) shard() (int, error) {
	v, ok := a["shard"]
	if !ok || v == "*" || v == "any" {
		return anyShard, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad shard %q", v)
	}
	return n, nil
}

func (a faultArgs) uintArg(key string) (uint64, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("bad %s %q (want positive integer)", key, v)
	}
	return n, nil
}
