// Package faultinject provides deterministic, seedable fault injection
// for the sharded detection back end's robustness tests and the CLI
// -inject flag.
//
// A Plan is a set of faults that fire at exact points in a run —
// "panic on shard 2's 157th access", "treat shard 0's queue as full
// the first three times", "corrupt shard 1's next checkpoint" — so a
// failing recovery scenario replays exactly. Plans implement the
// detector.FaultInjector interface structurally (this package imports
// no detector code); all trigger state is atomic because the hooks run
// on the router and every worker goroutine concurrently.
//
// The textual spec syntax (CLI -inject, semicolon-separated):
//
//	panic:shard=S,event=N        one-shot panic on shard S's N-th access
//	slow:shard=S,every=K,delay=D sleep D on every K-th access of shard S
//	queuefull:shard=S,times=T    report shard S's queue full T times
//	corrupt-checkpoint:shard=S   mark shard S's next checkpoint corrupt
//
// shard=* (or shard=any) matches every shard.
//
// Session-level faults target the racedetd daemon (internal/service)
// instead of the sharded back end; job indices count admitted jobs
// from 1 and job=* matches every job:
//
//	session-panic:job=J[,times=T]  panic inside job J's session runner
//	                               (T firings, default 1; the service
//	                               retries and eventually degrades)
//	client-disconnect:job=J        drop job J's client mid-request; the
//	                               session must still complete
//	slow-client:job=J,delay=D      stall job J's request body by D
//	admission-full:times=T         report the admission queue full T
//	                               times (load-shed with retry-after)
//
// Disk-level faults target durable write paths (the racedetd WAL in
// internal/service/durable). The disk= selector names the stream
// ("wal"; * matches any); write and sync operations are counted per
// stream from 1, so at=N pins a fault to an exact operation and a
// failing crash-recovery scenario replays exactly:
//
//	enospc:disk=S,times=T      fail T writes of stream S with ENOSPC
//	shortwrite:disk=S,at=N     tear stream S's N-th write: half the
//	                           payload reaches the disk, then an error
//	fsyncfail:disk=S,times=T   fail T fsyncs of stream S
//	crash:disk=S,at=N          kill the whole process (SIGKILL, no
//	                           deferred cleanup) at stream S's N-th
//	                           write — the kill-9 harness
package faultinject

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// anyShard is the wildcard shard selector; anyJob likewise for the
// session-level faults.
const (
	anyShard = -1
	anyJob   = 0
)

type panicFault struct {
	shard int
	event uint64
	done  atomic.Bool
}

type slowFault struct {
	shard int
	every uint64
	delay time.Duration
}

type queueFault struct {
	shard int
	left  atomic.Int64
}

type corruptFault struct {
	shard int
	done  atomic.Bool
}

// Session-level fault types (racedetd daemon; see internal/service).

type sessionPanicFault struct {
	job  uint64 // anyJob = every job
	left atomic.Int64
}

type disconnectFault struct {
	job  uint64
	done atomic.Bool
}

type slowClientFault struct {
	job   uint64
	delay time.Duration
}

type admissionFault struct {
	left atomic.Int64
}

// Disk-level fault types (durable write paths; see
// internal/service/durable). disk = "*" matches every stream.

type enospcFault struct {
	disk string
	left atomic.Int64
}

type shortWriteFault struct {
	disk string
	at   uint64
	done atomic.Bool
}

type fsyncFault struct {
	disk string
	left atomic.Int64
}

type crashFault struct {
	disk string
	at   uint64
}

// Plan is a deterministic set of faults; safe for concurrent use.
type Plan struct {
	panics   []*panicFault
	slows    []*slowFault
	qfulls   []*queueFault
	corrupts []*corruptFault

	sessPanics  []*sessionPanicFault
	disconnects []*disconnectFault
	slowClients []*slowClientFault
	admissions  []*admissionFault

	enospcs     []*enospcFault
	shortWrites []*shortWriteFault
	fsyncFails  []*fsyncFault
	crashes     []*crashFault

	// Per-stream operation counters for the at= selectors; the maps are
	// keyed by the stream tag so independent streams count independently.
	diskWrites sync.Map // string -> *atomic.Uint64
	diskSyncs  sync.Map // string -> *atomic.Uint64

	fired atomic.Uint64
}

func match(sel, shard int) bool { return sel == anyShard || sel == shard }

func matchJob(sel, job uint64) bool { return sel == anyJob || sel == job }

func matchDisk(sel, disk string) bool { return sel == "*" || sel == disk }

func diskOp(m *sync.Map, tag string) uint64 {
	v, _ := m.LoadOrStore(tag, new(atomic.Uint64))
	return v.(*atomic.Uint64).Add(1)
}

// WorkerEvent implements the worker-side hook: it panics when a panic
// fault matches (one-shot, so a journaled replay of the same event
// does not re-fire) and sleeps when a slow fault matches.
func (p *Plan) WorkerEvent(shard int, n uint64) {
	for _, f := range p.slows {
		if match(f.shard, shard) && f.every > 0 && n%f.every == 0 {
			p.fired.Add(1)
			time.Sleep(f.delay)
		}
	}
	for _, f := range p.panics {
		if match(f.shard, shard) && n == f.event && f.done.CompareAndSwap(false, true) {
			p.fired.Add(1)
			panic(fmt.Sprintf("faultinject: injected panic on shard %d event %d", shard, n))
		}
	}
}

// QueueFull implements the router-side hook: true while a matching
// queuefull fault has firings left.
func (p *Plan) QueueFull(shard int) bool {
	for _, f := range p.qfulls {
		if match(f.shard, shard) && f.left.Add(-1) >= 0 {
			p.fired.Add(1)
			return true
		}
	}
	return false
}

// CorruptCheckpoint implements the checkpoint hook: true once per
// matching corrupt-checkpoint fault.
func (p *Plan) CorruptCheckpoint(shard int) bool {
	for _, f := range p.corrupts {
		if match(f.shard, shard) && f.done.CompareAndSwap(false, true) {
			p.fired.Add(1)
			return true
		}
	}
	return false
}

// SessionEvent implements the daemon's session hook: it panics while a
// matching session-panic fault has firings left. The service runs every
// session under a recover barrier, so the panic is contained, counted,
// retried, and eventually degraded — exactly the path the differential
// tests exercise.
func (p *Plan) SessionEvent(job uint64) {
	for _, f := range p.sessPanics {
		if matchJob(f.job, job) && f.left.Add(-1) >= 0 {
			p.fired.Add(1)
			panic(fmt.Sprintf("faultinject: injected session panic on job %d", job))
		}
	}
}

// ClientDisconnect reports whether the client of the given job should
// be treated as having dropped the connection mid-request (one-shot).
func (p *Plan) ClientDisconnect(job uint64) bool {
	for _, f := range p.disconnects {
		if matchJob(f.job, job) && f.done.CompareAndSwap(false, true) {
			p.fired.Add(1)
			return true
		}
	}
	return false
}

// SlowClient returns how long the given job's request handling should
// stall to simulate a slow client (0 = no matching fault).
func (p *Plan) SlowClient(job uint64) time.Duration {
	for _, f := range p.slowClients {
		if matchJob(f.job, job) {
			p.fired.Add(1)
			return f.delay
		}
	}
	return 0
}

// AdmissionFull implements the daemon's admission hook: true while an
// admission-full fault has firings left, forcing the load-shed path.
func (p *Plan) AdmissionFull() bool {
	for _, f := range p.admissions {
		if f.left.Add(-1) >= 0 {
			p.fired.Add(1)
			return true
		}
	}
	return false
}

// DiskWrite implements the durable-write hook: it is consulted once
// before every write of the tagged stream, counting operations from 1.
// A non-nil error means the write must fail; partial true additionally
// asks the caller to tear the write (persist roughly half the payload
// before failing), modeling a torn page. A matching crash fault does
// not return: it SIGKILLs the process at exactly this operation, so no
// deferred cleanup, rollback, or response can run — the only honest
// model of kill -9.
func (p *Plan) DiskWrite(tag string) (partial bool, err error) {
	n := diskOp(&p.diskWrites, tag)
	for _, f := range p.crashes {
		if matchDisk(f.disk, tag) && n == f.at {
			p.fired.Add(1)
			proc, _ := os.FindProcess(os.Getpid())
			proc.Kill() // SIGKILL: never returns
		}
	}
	for _, f := range p.shortWrites {
		if matchDisk(f.disk, tag) && n == f.at && f.done.CompareAndSwap(false, true) {
			p.fired.Add(1)
			return true, fmt.Errorf("faultinject: injected short write on %s op %d", tag, n)
		}
	}
	for _, f := range p.enospcs {
		if matchDisk(f.disk, tag) && f.left.Add(-1) >= 0 {
			p.fired.Add(1)
			return false, fmt.Errorf("faultinject: injected ENOSPC on %s op %d: %w", tag, n, syscall.ENOSPC)
		}
	}
	return false, nil
}

// DiskSync implements the fsync hook of durable streams: a non-nil
// error while a matching fsyncfail fault has firings left.
func (p *Plan) DiskSync(tag string) error {
	n := diskOp(&p.diskSyncs, tag)
	for _, f := range p.fsyncFails {
		if matchDisk(f.disk, tag) && f.left.Add(-1) >= 0 {
			p.fired.Add(1)
			return fmt.Errorf("faultinject: injected fsync failure on %s op %d", tag, n)
		}
	}
	return nil
}

// Fired returns how many injections have triggered so far. Tests use
// it to assert the plan actually disturbed the run (a panic planned
// past the end of the stream never fires).
func (p *Plan) Fired() uint64 { return p.fired.Load() }

// Empty reports whether the plan contains no faults at all.
func (p *Plan) Empty() bool {
	return len(p.panics) == 0 && len(p.slows) == 0 &&
		len(p.qfulls) == 0 && len(p.corrupts) == 0 &&
		!p.HasSessionFaults() && !p.HasDiskFaults()
}

// HasDiskFaults reports whether the plan contains durable-write faults
// (which neither the sharded back end nor the session hooks consult).
func (p *Plan) HasDiskFaults() bool {
	return len(p.enospcs) > 0 || len(p.shortWrites) > 0 ||
		len(p.fsyncFails) > 0 || len(p.crashes) > 0
}

// HasSessionFaults reports whether the plan contains daemon-level
// faults (which the sharded back end's hooks never consult).
func (p *Plan) HasSessionFaults() bool {
	return len(p.sessPanics) > 0 || len(p.disconnects) > 0 ||
		len(p.slowClients) > 0 || len(p.admissions) > 0
}

// PanicPlan returns a plan with a single worker panic at a seed-chosen
// shard and event index in [1, maxEvent]. The corpus differential
// tests sweep seeds to cover panics at arbitrary points of the stream.
func PanicPlan(seed int64, shards int, maxEvent uint64) *Plan {
	r := rand.New(rand.NewSource(seed))
	if shards < 1 {
		shards = 1
	}
	if maxEvent < 1 {
		maxEvent = 1
	}
	p := &Plan{}
	p.panics = append(p.panics, &panicFault{
		shard: r.Intn(shards),
		event: 1 + uint64(r.Int63n(int64(maxEvent))),
	})
	return p
}

// Parse builds a Plan from the textual spec syntax documented at the
// top of the package. An empty spec yields an empty plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, argstr, _ := strings.Cut(part, ":")
		args, err := parseArgs(argstr)
		if err != nil {
			return nil, fmt.Errorf("fault %q: %w", part, err)
		}
		// Session-level kinds take job=, not shard=.
		switch kind {
		case "session-panic":
			job, err := args.job()
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			times := uint64(1)
			if _, ok := args["times"]; ok {
				if times, err = args.uintArg("times"); err != nil {
					return nil, fmt.Errorf("fault %q: %w", part, err)
				}
			}
			f := &sessionPanicFault{job: job}
			f.left.Store(int64(times))
			p.sessPanics = append(p.sessPanics, f)
			continue
		case "client-disconnect":
			job, err := args.job()
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			p.disconnects = append(p.disconnects, &disconnectFault{job: job})
			continue
		case "slow-client":
			job, err := args.job()
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			d, err := time.ParseDuration(args["delay"])
			if err != nil {
				return nil, fmt.Errorf("fault %q: bad delay: %w", part, err)
			}
			p.slowClients = append(p.slowClients, &slowClientFault{job: job, delay: d})
			continue
		case "admission-full":
			times, err := args.uintArg("times")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			f := &admissionFault{}
			f.left.Store(int64(times))
			p.admissions = append(p.admissions, f)
			continue
		// Disk-level kinds take disk=, not shard=.
		case "enospc":
			times, err := args.uintArg("times")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			f := &enospcFault{disk: args.disk()}
			f.left.Store(int64(times))
			p.enospcs = append(p.enospcs, f)
			continue
		case "shortwrite":
			at, err := args.uintArg("at")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			p.shortWrites = append(p.shortWrites, &shortWriteFault{disk: args.disk(), at: at})
			continue
		case "fsyncfail":
			times, err := args.uintArg("times")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			f := &fsyncFault{disk: args.disk()}
			f.left.Store(int64(times))
			p.fsyncFails = append(p.fsyncFails, f)
			continue
		case "crash":
			at, err := args.uintArg("at")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			p.crashes = append(p.crashes, &crashFault{disk: args.disk(), at: at})
			continue
		}
		shard, err := args.shard()
		if err != nil {
			return nil, fmt.Errorf("fault %q: %w", part, err)
		}
		switch kind {
		case "panic":
			n, err := args.uintArg("event")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			p.panics = append(p.panics, &panicFault{shard: shard, event: n})
		case "slow":
			every, err := args.uintArg("every")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			d, err := time.ParseDuration(args["delay"])
			if err != nil {
				return nil, fmt.Errorf("fault %q: bad delay: %w", part, err)
			}
			p.slows = append(p.slows, &slowFault{shard: shard, every: every, delay: d})
		case "queuefull":
			times, err := args.uintArg("times")
			if err != nil {
				return nil, fmt.Errorf("fault %q: %w", part, err)
			}
			f := &queueFault{shard: shard}
			f.left.Store(int64(times))
			p.qfulls = append(p.qfulls, f)
		case "corrupt-checkpoint":
			p.corrupts = append(p.corrupts, &corruptFault{shard: shard})
		default:
			return nil, fmt.Errorf("fault %q: unknown kind %q", part, kind)
		}
	}
	return p, nil
}

type faultArgs map[string]string

func parseArgs(s string) (faultArgs, error) {
	args := faultArgs{}
	if strings.TrimSpace(s) == "" {
		return args, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("bad argument %q (want key=value)", kv)
		}
		args[k] = v
	}
	return args, nil
}

// job parses the job= selector of session-level faults: a 1-based
// admitted-job index, or * / any for every job.
func (a faultArgs) job() (uint64, error) {
	v, ok := a["job"]
	if !ok || v == "*" || v == "any" {
		return anyJob, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("bad job %q (want positive index, * or any)", v)
	}
	return n, nil
}

// disk parses the disk= selector of durable-write faults: a stream tag
// such as "wal", defaulting to * (any stream) when absent.
func (a faultArgs) disk() string {
	v, ok := a["disk"]
	if !ok || v == "any" {
		return "*"
	}
	return v
}

func (a faultArgs) shard() (int, error) {
	v, ok := a["shard"]
	if !ok || v == "*" || v == "any" {
		return anyShard, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad shard %q", v)
	}
	return n, nil
}

func (a faultArgs) uintArg(key string) (uint64, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("bad %s %q (want positive integer)", key, v)
	}
	return n, nil
}
