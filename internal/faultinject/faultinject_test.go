package faultinject

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	p, err := Parse("panic:shard=1,event=100; slow:shard=*,every=64,delay=1ms; queuefull:shard=2,times=3; corrupt-checkpoint:shard=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.panics) != 1 || p.panics[0].shard != 1 || p.panics[0].event != 100 {
		t.Errorf("panic fault = %+v", p.panics)
	}
	if len(p.slows) != 1 || p.slows[0].shard != anyShard || p.slows[0].every != 64 || p.slows[0].delay != time.Millisecond {
		t.Errorf("slow fault = %+v", p.slows)
	}
	if len(p.qfulls) != 1 || p.qfulls[0].shard != 2 || p.qfulls[0].left.Load() != 3 {
		t.Errorf("queuefull fault = %+v", p.qfulls)
	}
	if len(p.corrupts) != 1 || p.corrupts[0].shard != 0 {
		t.Errorf("corrupt fault = %+v", p.corrupts)
	}
	if p.Empty() {
		t.Error("plan should not be empty")
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	p, err := Parse("")
	if err != nil || !p.Empty() {
		t.Fatalf("empty spec: plan=%+v err=%v", p, err)
	}
	for _, bad := range []string{
		"explode:shard=0",
		"panic:shard=0",          // missing event
		"panic:shard=0,event=0",  // zero event
		"panic:shard=-2,event=1", // negative shard
		"slow:shard=0,every=8",   // missing delay
		"queuefull:shard=0",      // missing times
		"panic:shard=0 event=1",  // malformed args
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestPanicFiresOnceAtExactEvent(t *testing.T) {
	p, err := Parse("panic:shard=1,event=3")
	if err != nil {
		t.Fatal(err)
	}
	fire := func(shard int, n uint64) (panicked bool) {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				if !strings.Contains(r.(string), "injected panic") {
					t.Errorf("unexpected panic value %v", r)
				}
			}
		}()
		p.WorkerEvent(shard, n)
		return false
	}
	if fire(1, 2) || fire(0, 3) {
		t.Fatal("fired on wrong shard/event")
	}
	if !fire(1, 3) {
		t.Fatal("did not fire at shard=1 event=3")
	}
	if fire(1, 3) {
		t.Fatal("one-shot fault fired twice (replay would never converge)")
	}
	if p.Fired() != 1 {
		t.Errorf("Fired() = %d, want 1", p.Fired())
	}
}

func TestQueueFullBudget(t *testing.T) {
	p, err := Parse("queuefull:shard=0,times=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.QueueFull(1) {
		t.Error("wrong shard reported full")
	}
	if !p.QueueFull(0) || !p.QueueFull(0) {
		t.Error("expected two firings")
	}
	if p.QueueFull(0) {
		t.Error("budget exhausted but still firing")
	}
	if p.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", p.Fired())
	}
}

func TestCorruptCheckpointOneShot(t *testing.T) {
	p, err := Parse("corrupt-checkpoint:shard=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.CorruptCheckpoint(0) {
		t.Error("wrong shard corrupted")
	}
	if !p.CorruptCheckpoint(2) {
		t.Error("expected corruption")
	}
	if p.CorruptCheckpoint(2) {
		t.Error("one-shot corruption fired twice")
	}
}

func TestPanicPlanDeterministic(t *testing.T) {
	a, b := PanicPlan(42, 4, 1000), PanicPlan(42, 4, 1000)
	if a.panics[0].shard != b.panics[0].shard || a.panics[0].event != b.panics[0].event {
		t.Errorf("same seed diverged: %+v vs %+v", a.panics[0], b.panics[0])
	}
	if a.panics[0].shard < 0 || a.panics[0].shard >= 4 {
		t.Errorf("shard %d out of range", a.panics[0].shard)
	}
	if a.panics[0].event < 1 || a.panics[0].event > 1000 {
		t.Errorf("event %d out of range", a.panics[0].event)
	}
	seen := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		seen[PanicPlan(seed, 4, 1000).panics[0].shard] = true
	}
	if len(seen) < 2 {
		t.Error("20 seeds all chose the same shard; plan is not spreading")
	}
}

func TestSessionPanicBudget(t *testing.T) {
	p, err := Parse("session-panic:job=2,times=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Error("plan with session faults reported Empty")
	}
	if !p.HasSessionFaults() {
		t.Error("HasSessionFaults() = false")
	}
	p.SessionEvent(1) // wrong job: must not fire
	fires := 0
	for i := 0; i < 4; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fires++
				}
			}()
			p.SessionEvent(2)
		}()
	}
	if fires != 2 {
		t.Errorf("session panic fired %d times, want 2", fires)
	}
	if p.Fired() != 2 {
		t.Errorf("Fired() = %d, want 2", p.Fired())
	}
}

func TestSessionPanicWildcardDefaultsOnce(t *testing.T) {
	p, err := Parse("session-panic:job=*")
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	for job := uint64(1); job <= 3; job++ {
		func() {
			defer func() {
				if recover() != nil {
					fires++
				}
			}()
			p.SessionEvent(job)
		}()
	}
	if fires != 1 {
		t.Errorf("wildcard session panic fired %d times, want 1 (default times)", fires)
	}
}

func TestClientDisconnectOneShot(t *testing.T) {
	p, err := Parse("client-disconnect:job=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.ClientDisconnect(1) {
		t.Error("wrong job disconnected")
	}
	if !p.ClientDisconnect(3) {
		t.Error("expected disconnect")
	}
	if p.ClientDisconnect(3) {
		t.Error("one-shot disconnect fired twice")
	}
}

func TestSlowClientAndAdmission(t *testing.T) {
	p, err := Parse("slow-client:job=1,delay=5ms;admission-full:times=1")
	if err != nil {
		t.Fatal(err)
	}
	if d := p.SlowClient(2); d != 0 {
		t.Errorf("wrong job slowed: %v", d)
	}
	if d := p.SlowClient(1); d != 5*time.Millisecond {
		t.Errorf("SlowClient = %v, want 5ms", d)
	}
	if !p.AdmissionFull() {
		t.Error("expected one admission-full firing")
	}
	if p.AdmissionFull() {
		t.Error("admission budget exhausted but still firing")
	}
}

func TestDiskFaults(t *testing.T) {
	p, err := Parse("enospc:disk=wal,times=2; shortwrite:disk=wal,at=4; fsyncfail:times=1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Error("plan with disk faults reported Empty")
	}
	if !p.HasDiskFaults() {
		t.Error("HasDiskFaults() = false")
	}
	// Ops 1-2: ENOSPC budget; op 3: clean; op 4: the torn write.
	for i := 0; i < 2; i++ {
		partial, err := p.DiskWrite("wal")
		if err == nil || partial {
			t.Fatalf("op %d: partial=%v err=%v, want full-fail ENOSPC", i+1, partial, err)
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("op %d: error %v does not unwrap to ENOSPC", i+1, err)
		}
	}
	if partial, err := p.DiskWrite("wal"); err != nil || partial {
		t.Fatalf("op 3 should be clean, got partial=%v err=%v", partial, err)
	}
	if partial, err := p.DiskWrite("wal"); err == nil || !partial {
		t.Fatalf("op 4 should be the torn write, got partial=%v err=%v", partial, err)
	}
	if partial, err := p.DiskWrite("wal"); err != nil || partial {
		t.Fatalf("shortwrite must be one-shot, got partial=%v err=%v", partial, err)
	}
	// fsyncfail with no disk= matches any stream, once.
	if err := p.DiskSync("wal"); err == nil {
		t.Error("expected one fsync failure")
	}
	if err := p.DiskSync("wal"); err != nil {
		t.Errorf("fsync budget exhausted but still failing: %v", err)
	}
	if p.Fired() != 4 {
		t.Errorf("Fired() = %d, want 4", p.Fired())
	}
}

func TestDiskFaultStreamsCountIndependently(t *testing.T) {
	p, err := Parse("shortwrite:disk=wal,at=2")
	if err != nil {
		t.Fatal(err)
	}
	// Writes on another stream must not advance wal's op counter.
	if partial, err := p.DiskWrite("other"); err != nil || partial {
		t.Fatalf("other op 1: partial=%v err=%v", partial, err)
	}
	if partial, err := p.DiskWrite("wal"); err != nil || partial {
		t.Fatalf("wal op 1: partial=%v err=%v", partial, err)
	}
	if _, err := p.DiskWrite("wal"); err == nil {
		t.Fatal("wal op 2 should tear")
	}
	if _, err := p.DiskWrite("other"); err != nil {
		t.Fatalf("disk=wal fault leaked onto another stream: %v", err)
	}
}

func TestDiskSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"enospc:disk=wal",          // missing times
		"enospc:disk=wal,times=0",  // zero times
		"shortwrite:disk=wal",      // missing at
		"shortwrite:disk=wal,at=0", // zero at
		"fsyncfail:disk=wal",       // missing times
		"crash:disk=wal",           // missing at
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestSessionSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"session-panic:job=0",
		"session-panic:job=-1",
		"session-panic:job=1,times=0",
		"slow-client:job=1",
		"slow-client:job=1,delay=banana",
		"admission-full:",
		"client-disconnect:job=x",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}
