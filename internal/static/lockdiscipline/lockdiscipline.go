// Package lockdiscipline grades the static race set of §5 into a
// ranked whole-program report. racestatic answers a binary question —
// may this pair race? — but the surviving pairs differ wildly in
// urgency: a pair where both sides hold *some* lock (just never the
// same one) smells like a guard-selection bug, while a pair with a
// bare unsynchronized side is the classic unprotected access. The
// discipline tiers make that distinction explicit:
//
//	guarded-consistent   every conflicting pair shares a common
//	                     must-lockset (or is ordered by thread start);
//	                     racestatic already killed these pairs, so a
//	                     kept site earns this tier only when all of
//	                     its surviving pairs are start-ordered.
//	guarded-inconsistent some surviving pair holds disjoint nonempty
//	                     must-locksets — two locks guard one field.
//	unguarded            some surviving pair has an empty must-lockset
//	                     on at least one side.
//
// A may-happen-in-parallel refinement demotes pairs whose two sides
// are ordered by the start-before relation the escape pass computes:
// a safe thread class's constructor happens-before its run-side
// methods on the same instance, so a ctor-vs-run pair over a
// single-instance object cannot execute in parallel even though the
// lockset formulation keeps it.
//
// The tier of a site doubles as a sampling prior for the dynamic
// detector: unguarded and guarded-inconsistent sites are where the
// sampler's budget should go, guarded-consistent sites are safe to
// demote early.
package lockdiscipline

import (
	"fmt"
	"sort"
	"strings"

	"racedet/internal/escape"
	"racedet/internal/icfg"
	"racedet/internal/ir"
	"racedet/internal/pointsto"
	"racedet/internal/racestatic"
)

// Tier is the discipline verdict for a site or pair, ordered by
// severity: GuardedConsistent < GuardedInconsistent < Unguarded.
type Tier uint8

// Discipline tiers.
const (
	GuardedConsistent Tier = iota
	GuardedInconsistent
	Unguarded
)

func (t Tier) String() string {
	switch t {
	case GuardedConsistent:
		return "guarded-consistent"
	case GuardedInconsistent:
		return "guarded-inconsistent"
	case Unguarded:
		return "unguarded"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// Pair is one surviving may-race pair with its discipline verdict.
type Pair struct {
	X, Y racestatic.AccessSite
	// Field is the conflict key the pair raced on (Class.field, or
	// "[]" for array element conflicts).
	Field string
	// Tier grades the pair: Unguarded when a side holds no lock at
	// the access, GuardedInconsistent when both sides hold disjoint
	// nonempty must-locksets.
	Tier Tier
	// Demoted marks pairs proven start-ordered by the MHP refinement:
	// they keep their lockset tier for the report but do not raise
	// their sites' tiers and rank below all live pairs.
	Demoted bool
	// XLocks and YLocks name the must-held locks of each side
	// (deterministically ordered).
	XLocks, YLocks []string
}

// SiteTier is the portable (position-keyed) form of a site's tier,
// used to carry priors across the fact cache and into the runtime.
type SiteTier struct {
	File  string
	Line  int32
	Col   int32
	Write bool
	Tier  Tier
}

// Result is the whole-program discipline classification.
type Result struct {
	// Pairs lists every surviving may-race pair, severity-ranked:
	// unguarded first, then guarded-inconsistent, start-ordered
	// (demoted) pairs last; within a rank, source order. The order is
	// deterministic because racestatic normalizes its pair list.
	Pairs []Pair

	// Tier maps each kept (instrumented) access instruction to its
	// discipline tier: the maximum tier over its live surviving
	// pairs, GuardedConsistent when every pair was demoted.
	Tier map[*ir.Instr]Tier

	// UnguardedPairs, InconsistentPairs and DemotedPairs count the
	// live unguarded, live guarded-inconsistent and start-ordered
	// pairs (the three partitions of Pairs).
	UnguardedPairs    int
	InconsistentPairs int
	DemotedPairs      int

	// UnguardedSites, InconsistentSites and ConsistentSites count
	// kept sites per tier.
	UnguardedSites    int
	InconsistentSites int
	ConsistentSites   int
}

// Analyze grades every surviving may-race pair of the static result.
// ml may be nil (no flow-sensitive must-lock dataflow); esc and pts
// power the MHP start-order refinement.
func Analyze(st *racestatic.Result, g *icfg.Graph, ml *icfg.MustLock, esc *escape.Result, pts *pointsto.Result) *Result {
	r := &Result{Tier: make(map[*ir.Instr]Tier)}
	for in := range st.InRaceSet {
		r.Tier[in] = GuardedConsistent
	}
	for _, sp := range st.Pairs {
		x, y := sp[0], sp[1]
		xl := heldLocks(g, ml, x)
		yl := heldLocks(g, ml, y)
		p := Pair{
			X:      x,
			Y:      y,
			Field:  pairField(x.Instr),
			XLocks: lockNames(xl),
			YLocks: lockNames(yl),
		}
		if len(xl) == 0 || len(yl) == 0 {
			p.Tier = Unguarded
		} else {
			// racestatic pruned intersecting locksets, so both sides
			// nonempty means disjoint guards: two locks, one field.
			p.Tier = GuardedInconsistent
		}
		p.Demoted = startOrdered(esc, pts, x, y)
		switch {
		case p.Demoted:
			r.DemotedPairs++
		case p.Tier == Unguarded:
			r.UnguardedPairs++
		default:
			r.InconsistentPairs++
		}
		if !p.Demoted {
			if p.Tier > r.Tier[x.Instr] {
				r.Tier[x.Instr] = p.Tier
			}
			if p.Tier > r.Tier[y.Instr] {
				r.Tier[y.Instr] = p.Tier
			}
		}
		r.Pairs = append(r.Pairs, p)
	}
	// Severity rank: live unguarded, live inconsistent, demoted; the
	// underlying pair list is already in canonical source order, so a
	// stable sort keeps each rank deterministic.
	sort.SliceStable(r.Pairs, func(i, j int) bool {
		return pairRank(r.Pairs[i]) < pairRank(r.Pairs[j])
	})
	for _, t := range r.Tier {
		switch t {
		case Unguarded:
			r.UnguardedSites++
		case GuardedInconsistent:
			r.InconsistentSites++
		default:
			r.ConsistentSites++
		}
	}
	return r
}

func pairRank(p Pair) int {
	if p.Demoted {
		return 2
	}
	if p.Tier == Unguarded {
		return 0
	}
	return 1
}

// heldLocks is the must-lockset the §5 conditions judged the access
// by: the region-based MustSync objects plus, when available, the
// flow-sensitive must-held locks across call boundaries.
func heldLocks(g *icfg.Graph, ml *icfg.MustLock, s racestatic.AccessSite) pointsto.ObjSet {
	out := pointsto.ObjSet{}
	for o := range g.MustSyncOf(s.Fn, s.Instr) {
		out[o] = struct{}{}
	}
	if ml != nil {
		for o := range ml.At(s.Instr) {
			out[o] = struct{}{}
		}
	}
	return out
}

func lockNames(s pointsto.ObjSet) []string {
	if len(s) == 0 {
		return nil
	}
	out := make([]string, 0, len(s))
	for _, o := range s.Sorted() {
		out = append(out, o.String())
	}
	return out
}

func pairField(in *ir.Instr) string {
	_, isArray, _, field := in.AccessInfo()
	if isArray || field == nil {
		return "[]"
	}
	return field.QualifiedName()
}

// startOrdered is the MHP refinement: a safe thread class's
// constructor happens-before start(), which happens-before run — so
// an access in the ctor and an access in a thread-specific run-side
// method of the same class cannot overlap, provided they touch the
// same single instance. Unsafe thread classes (construction may
// overlap execution) never qualify.
func startOrdered(esc *escape.Result, pts *pointsto.Result, x, y racestatic.AccessSite) bool {
	ctor, run := x, y
	if m := ctor.Fn.Method; m == nil || !m.IsCtor {
		ctor, run = y, x
	}
	cm, rm := ctor.Fn.Method, run.Fn.Method
	if cm == nil || rm == nil || !cm.IsCtor || rm.IsCtor {
		return false
	}
	if cm.Class != rm.Class {
		return false
	}
	if !esc.ThreadSpecificMethod(cm) || !esc.ThreadSpecificMethod(rm) {
		return false
	}
	if esc.UnsafeThread(cm.Class) {
		return false
	}
	return singleInstanceTarget(pts, ctor) && singleInstanceTarget(pts, run)
}

// singleInstanceTarget requires every abstract object the access may
// touch to be a single-instance allocation: with at most one receiver
// object, "same class" implies "same instance", and the ctor→run
// ordering applies.
func singleInstanceTarget(pts *pointsto.Result, s racestatic.AccessSite) bool {
	_, isArray, reg, field := s.Instr.AccessInfo()
	if isArray || (field != nil && field.Static) {
		return false
	}
	objs := pts.VarPts(s.Fn, reg)
	if len(objs) == 0 {
		return false
	}
	for o := range objs {
		if !o.SingleInstance {
			return false
		}
	}
	return true
}

// SiteTiers renders the tier map in portable, position-keyed form,
// deterministically ordered. The fact cache stores these verbatim and
// the runtime turns them into sampling priors.
func (r *Result) SiteTiers() []SiteTier {
	out := make([]SiteTier, 0, len(r.Tier))
	for in, t := range r.Tier {
		kind, _, _, _ := in.AccessInfo()
		out = append(out, SiteTier{
			File:  in.Pos.File,
			Line:  in.Pos.Line,
			Col:   in.Pos.Col,
			Write: kind == ir.Write,
			Tier:  t,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return !a.Write && b.Write
	})
	return out
}

// Report renders the severity-ranked pair report. The output is
// byte-stable for a given program: pairs are ranked by tier, sites
// and locks are deterministically ordered.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "lock discipline: %d surviving may-race pair(s): %d unguarded, %d guarded-inconsistent, %d start-ordered (demoted)\n",
		len(r.Pairs), r.UnguardedPairs, r.InconsistentPairs, r.DemotedPairs)
	for _, p := range r.Pairs {
		label := p.Tier.String()
		if p.Demoted {
			label = "start-ordered"
		}
		fmt.Fprintf(&sb, "  [%-20s] %s: %s holds %s <-> %s holds %s\n",
			label, p.Field, p.X, renderLocks(p.XLocks), p.Y, renderLocks(p.YLocks))
	}
	fmt.Fprintf(&sb, "site tiers: %d unguarded, %d guarded-inconsistent, %d guarded-consistent\n",
		r.UnguardedSites, r.InconsistentSites, r.ConsistentSites)
	return sb.String()
}

func renderLocks(names []string) string {
	if len(names) == 0 {
		return "{}"
	}
	return "{" + strings.Join(names, ", ") + "}"
}
