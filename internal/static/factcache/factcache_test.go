package factcache

import (
	"os"
	"path/filepath"
	"testing"

	"racedet/internal/instrument"
	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return lower.Lower(sp).Prog
}

const roundtripSrc = `
class A { int f; int g; }
class B {
    void m(A s) {
        s.f = 1;
        int x = s.f;
        s.g = x;
        int y = s.g;
    }
}
class M { static void main() { B b = new B(); A a = new A(); b.m(a); } }`

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	base := Fingerprint(true, true, true, true, true)
	if base != Fingerprint(true, true, true, true, true) {
		t.Error("fingerprint not stable")
	}
	seen := map[string]bool{base: true}
	for i := 0; i < 5; i++ {
		knobs := [5]bool{true, true, true, true, true}
		knobs[i] = false
		fp := Fingerprint(knobs[0], knobs[1], knobs[2], knobs[3], knobs[4])
		if seen[fp] {
			t.Errorf("flipping knob %d did not change the fingerprint", i)
		}
		seen[fp] = true
	}
}

// TracedSet on an instrumented+eliminated function replays exactly on a
// fresh lowering of the same source.
func TestTracedSetReplayRoundtrip(t *testing.T) {
	prog := build(t, roundtripSrc)
	m := prog.FuncByName("B.m")
	instrument.InsertTraces(m, nil)
	if instrument.EliminateRedundant(m) == 0 {
		t.Fatal("expected eliminations in B.m")
	}
	traced := TracedSet(m)
	if len(traced) == 0 {
		t.Fatal("no surviving traces")
	}

	fresh := build(t, roundtripSrc).FuncByName("B.m")
	replay, ok := ReplayFilter(fresh, traced)
	if !ok {
		t.Fatal("replay filter did not resolve")
	}
	instrument.InsertTraces(fresh, replay)
	if got, want := fresh.String(), m.String(); got != want {
		t.Errorf("replayed function differs:\n%s\nvs\n%s", got, want)
	}
}

func TestReplayFilterRejectsStaleKeys(t *testing.T) {
	fn := build(t, roundtripSrc).FuncByName("B.m")
	if _, ok := ReplayFilter(fn, []InstrKey{{Block: 0, Index: 9999}}); ok {
		t.Error("out-of-range key must be stale")
	}
	if _, ok := ReplayFilter(fn, []InstrKey{{Block: 0, Index: 0}}); ok {
		t.Error("key addressing a non-access instruction must be stale")
	}
}

func TestDirty(t *testing.T) {
	f := func(name string) *ir.Func { return &ir.Func{Name: name} }
	a, b, c, d := f("a"), f("b"), f("c"), f("d")
	fns := []*ir.Func{a, b, c, d}
	sem := map[*ir.Func]string{a: "1", b: "2", c: "3", d: "4"}
	prior := &Entry{StableDigest: "s", Fns: []FnEntry{
		{Name: "a", Digest: "1"}, {Name: "b", Digest: "2"},
		{Name: "c", Digest: "changed"}, {Name: "d", Digest: "4"},
	}}
	// a—b—c one component, d isolated; c's digest differs.
	edges := map[*ir.Func][]*ir.Func{a: {b}, b: {a, c}, c: {b}}

	dirty := Dirty(prior, "s", fns, sem, edges)
	for fn, want := range map[*ir.Func]bool{a: true, b: true, c: true, d: false} {
		if dirty[fn] != want {
			t.Errorf("dirty[%s] = %v, want %v", fn.Name, dirty[fn], want)
		}
	}

	// Without edges only the changed function is dirty.
	dirty = Dirty(prior, "s", fns, sem, nil)
	for fn, want := range map[*ir.Func]bool{a: false, b: false, c: true, d: false} {
		if dirty[fn] != want {
			t.Errorf("no-edges dirty[%s] = %v, want %v", fn.Name, dirty[fn], want)
		}
	}

	// Stable-field drift or a missing prior dirties everything.
	for _, dirty := range []map[*ir.Func]bool{
		Dirty(prior, "other", fns, sem, edges),
		Dirty(nil, "s", fns, sem, edges),
	} {
		for _, fn := range fns {
			if !dirty[fn] {
				t.Errorf("dirty[%s] = false, want all dirty", fn.Name)
			}
		}
	}
}

func TestStoreLookupLatest(t *testing.T) {
	prog := build(t, roundtripSrc)
	dir := t.TempDir()
	c := Open(dir, Fingerprint(true, true, true, true, true))
	pd := c.ProgramDigest(prog)

	if _, ok := c.Lookup(pd); ok {
		t.Fatal("lookup on empty cache hit")
	}
	c.Store(pd, &Entry{StableDigest: "s", Fns: []FnEntry{{Name: "B.m", Digest: "d"}}})

	e, ok := c.Lookup(pd)
	if !ok || !c.Stats.ProgramHit {
		t.Fatal("lookup after store missed")
	}
	if e.StableDigest != "s" || len(e.Fns) != 1 {
		t.Errorf("entry roundtrip mangled: %+v", e)
	}
	if _, ok := c.Latest(); !ok {
		t.Error("latest pointer missing")
	}

	// A different configuration must not see the entry.
	c2 := Open(dir, Fingerprint(true, false, true, true, true))
	if _, ok := c2.Lookup(c2.ProgramDigest(prog)); ok {
		t.Error("lookup across configurations hit")
	}
	if _, ok := c2.Latest(); ok {
		t.Error("latest across configurations hit")
	}

	// Corrupt entries are misses, not errors.
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	for _, f := range files {
		if err := os.WriteFile(f, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c3 := Open(dir, Fingerprint(true, true, true, true, true))
	if _, ok := c3.Lookup(pd); ok {
		t.Error("corrupt entry treated as hit")
	}
}

func TestStoreFailureDegradesToCacheOff(t *testing.T) {
	// Point the cache at a path that is a regular file: MkdirAll fails
	// for root and non-root alike, exercising the degradation path.
	blocked := filepath.Join(t.TempDir(), "cache")
	if err := os.WriteFile(blocked, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := Open(blocked, Fingerprint(true, true, true, true, true))

	c.Store("pd", &Entry{StableDigest: "s"})
	if c.Stats.WriteErrors != 1 {
		t.Fatalf("WriteErrors = %d after failed store, want 1", c.Stats.WriteErrors)
	}

	// Degraded means cache-off, not repeated failures: later stores are
	// silent no-ops and the error stays counted exactly once.
	c.Store("pd2", &Entry{StableDigest: "s"})
	if c.Stats.WriteErrors != 1 {
		t.Errorf("WriteErrors = %d after degraded store, want still 1", c.Stats.WriteErrors)
	}
	if _, ok := c.Lookup("pd"); ok {
		t.Error("lookup hit on a cache that never persisted anything")
	}
}

func TestStoreLeavesNoTempFiles(t *testing.T) {
	prog := build(t, roundtripSrc)
	dir := t.TempDir()
	c := Open(dir, Fingerprint(true, true, true, true, true))
	c.Store(c.ProgramDigest(prog), &Entry{StableDigest: "s"})
	if c.Stats.WriteErrors != 0 {
		t.Fatalf("clean store counted WriteErrors = %d", c.Stats.WriteErrors)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("temp file %s left behind after a clean store", e.Name())
		}
	}
}
