// Package factcache persists static-analysis outcomes keyed by content
// digests of the lowered IR, so recompiles of unchanged code skip
// re-analysis (racedet -factcache <dir>).
//
// Two granularities:
//
//   - Program level: the digest covers the configuration fingerprint
//     and every function's lowered IR. On a hit the whole static phase
//     (points-to, call graph, escape, race analysis, elimination) is
//     skipped and the compile replays the traced-instruction sets,
//     static hints, and stats from the entry.
//
//   - Function level: on a program miss, the previous entry for the
//     same configuration seeds partial reuse. A function is *clean*
//     when its semantic digest — lowered IR, per-access race-set bits,
//     resolved callees per call site, thread-root bit — matches the
//     prior entry and so does every function in its connected
//     component of the (undirected) call graph; interprocedural facts
//     (summaries, relaxed barriers, entry covers, pass-2 pinning)
//     never cross component boundaries, so a fully-clean component's
//     elimination outcome is reproducible by construction. Clean
//     functions replay their traced sets and skip the elimination
//     sweep; only the dirty transitive closure recomputes. The global
//     stable-field set is part of the entry: if it changes, everything
//     is dirty.
//
// Entries are JSON files under the cache directory: one per program
// digest, plus a "latest" pointer per configuration fingerprint for
// the partial path.
package factcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"racedet/internal/instrument"
	"racedet/internal/ir"
)

// Stats reports what the cache did for one compile.
type Stats struct {
	// ProgramHit is true when the whole compile was replayed.
	ProgramHit bool
	// FnHits/FnMisses count functions replayed vs re-analyzed on the
	// partial path (both zero on a program hit).
	FnHits   int
	FnMisses int
	// WriteErrors counts failed Stores (full disk, unwritable dir).
	// A failed write degrades the cache to a no-op for the rest of the
	// compile — counted, never a failed analysis.
	WriteErrors int
}

// InstrKey addresses one instruction in pre-instrumentation IR: the
// block ID and the instruction's index counting non-trace instructions.
type InstrKey struct {
	Block int `json:"b"`
	Index int `json:"i"`
}

// FnEntry is one function's cached outcome.
type FnEntry struct {
	Name string `json:"name"`
	// Digest is the semantic digest (SemDigest).
	Digest string `json:"digest"`
	// Traced lists the access instructions whose traces survived
	// elimination, as pre-instrumentation positions.
	Traced []InstrKey `json:"traced,omitempty"`
	// Accesses/Inserted/Eliminated reproduce the per-function
	// instrumentation stats (Inserted counts pre-elimination traces).
	Accesses   int `json:"accesses"`
	Inserted   int `json:"inserted"`
	Eliminated int `json:"eliminated"`
}

// TierEntry is one kept access site's lock-discipline tier in
// portable position-keyed form (the cached counterpart of
// lockdiscipline.SiteTier; the runtime turns these into sampling
// priors on warm compiles).
type TierEntry struct {
	File  string `json:"file"`
	Line  int32  `json:"line"`
	Col   int32  `json:"col"`
	Write bool   `json:"write,omitempty"`
	Tier  uint8  `json:"tier"`
}

// Entry is one serialized compile outcome.
type Entry struct {
	Version       int                 `json:"version"`
	Config        string              `json:"config"`
	ProgramDigest string              `json:"program_digest"`
	StableDigest  string              `json:"stable_digest"`
	Fns           []FnEntry           `json:"fns"`
	HintIndex     map[string][]string `json:"hint_index,omitempty"`
	Elims         []instrument.Elim   `json:"elims,omitempty"`
	StaticStats   json.RawMessage     `json:"static_stats,omitempty"`
	LoopsPeeled   int                 `json:"loops_peeled"`
	// Discipline is the rendered lock-discipline report and Tiers the
	// per-site tier list; replaying them verbatim keeps -static-report
	// byte-identical on program-level hits.
	Discipline string      `json:"discipline,omitempty"`
	Tiers      []TierEntry `json:"tiers,omitempty"`
}

// entryVersion 2 added the discipline report, the tier entries, and
// the tier component of SemDigest; bumping it (it is part of the
// configuration fingerprint) invalidates every v1 cache.
const entryVersion = 2

// Cache is a handle on one cache directory + configuration.
type Cache struct {
	dir      string
	cfg      string
	disabled bool // a write failed; stores are skipped from then on
	Stats    Stats
}

// Fingerprint digests the configuration knobs that change static
// analysis output; entries only ever match within one fingerprint.
func Fingerprint(instrument, static, dominators, peeling, interproc bool) string {
	return digest(fmt.Sprintf("v%d:instr=%t:static=%t:dom=%t:peel=%t:interproc=%t",
		entryVersion, instrument, static, dominators, peeling, interproc))[:16]
}

// Open returns a cache handle; the directory is created lazily on the
// first Store.
func Open(dir, cfg string) *Cache {
	return &Cache{dir: dir, cfg: cfg}
}

func digest(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// FnDigest is the content digest of one function's lowered IR.
func FnDigest(fn *ir.Func) string {
	return digest(fn.String())
}

// SemDigest combines a function's content digest with the bits of
// whole-program analysis that feed its elimination and priors: which
// of its accesses are in the static race set (in program order), each
// access's discipline tier, the resolved callee names of each call
// site, and whether it is a thread root.
func SemDigest(irDigest string, filterBits []bool, tiers []uint8, calleeNames []string, threadRoot bool) string {
	var b strings.Builder
	b.WriteString(irDigest)
	b.WriteString("|f:")
	for _, bit := range filterBits {
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteString("|t:")
	for _, t := range tiers {
		b.WriteByte('0' + t)
	}
	b.WriteString("|c:")
	for _, n := range calleeNames {
		b.WriteString(n)
		b.WriteByte(',')
	}
	if threadRoot {
		b.WriteString("|root")
	}
	return digest(b.String())
}

// StableDigest digests the global init-only field set.
func StableDigest(fields []string) string {
	return digest(strings.Join(fields, "\n"))
}

// ProgramDigest covers the configuration and every function, in
// program order.
func (c *Cache) ProgramDigest(prog *ir.Program) string {
	var b strings.Builder
	b.WriteString(c.cfg)
	for _, fn := range prog.Funcs {
		b.WriteString(fn.Name)
		b.WriteByte('=')
		b.WriteString(FnDigest(fn))
		b.WriteByte('\n')
	}
	return digest(b.String())
}

func (c *Cache) entryPath(programDigest string) string {
	return filepath.Join(c.dir, "prog-"+programDigest+".json")
}

func (c *Cache) latestPath() string {
	return filepath.Join(c.dir, "latest-"+c.cfg+".json")
}

func readEntry(path string) (*Entry, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil || e.Version != entryVersion {
		return nil, false
	}
	return &e, true
}

// Lookup returns the entry for a program digest, if cached. The digest
// must be computed on the un-instrumented lowering (ProgramDigest before
// InsertTraces), since that is the state a later compile hashes. A hit
// sets Stats.ProgramHit.
func (c *Cache) Lookup(programDigest string) (*Entry, bool) {
	e, ok := readEntry(c.entryPath(programDigest))
	if !ok || e.Config != c.cfg {
		return nil, false
	}
	c.Stats.ProgramHit = true
	return e, true
}

// Latest returns the most recent entry stored under this
// configuration, for the partial-reuse path.
func (c *Cache) Latest() (*Entry, bool) {
	e, ok := readEntry(c.latestPath())
	if !ok || e.Config != c.cfg {
		return nil, false
	}
	return e, true
}

// Store persists the entry under the program digest (see Lookup: the
// digest of the un-instrumented lowering) and as the configuration's
// latest, via write-temp-fsync-then-atomic-rename so a crash or torn
// write never leaves a half-written entry where Lookup could read it.
// A failure (full disk, unwritable dir) is counted in Stats and
// degrades the cache to a no-op for the rest of the compile — a cache
// problem must cost warmth, never the analysis.
func (c *Cache) Store(programDigest string, e *Entry) {
	if c.disabled {
		return
	}
	e.Version = entryVersion
	e.Config = c.cfg
	e.ProgramDigest = programDigest
	data, err := json.Marshal(e)
	if err != nil {
		c.fail()
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.fail()
		return
	}
	write := func(path string) bool {
		tmp := path + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return false
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			os.Remove(tmp)
			return false
		}
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return false
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return false
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return false
		}
		return true
	}
	if !write(c.entryPath(e.ProgramDigest)) || !write(c.latestPath()) {
		c.fail()
	}
}

// fail records a degraded store: one counted error, then cache-off.
func (c *Cache) fail() {
	c.disabled = true
	c.Stats.WriteErrors++
}

// TracedSet captures a function's surviving traces as positions in
// pre-instrumentation IR: instruction indices that skip OpTrace, with
// a traced access identified by the OpTrace immediately after it.
func TracedSet(fn *ir.Func) []InstrKey {
	var out []InstrKey
	for _, b := range fn.Blocks {
		pre := 0
		for i, in := range b.Instrs {
			if in.Op == ir.OpTrace {
				continue
			}
			if in.IsAccess() && i+1 < len(b.Instrs) && b.Instrs[i+1].Op == ir.OpTrace {
				out = append(out, InstrKey{Block: b.ID, Index: pre})
			}
			pre++
		}
	}
	return out
}

// ReplayFilter turns a cached traced set into an InsertTraces filter
// for the same (un-instrumented) function. The second return value
// reports whether every key resolved; callers should treat false as a
// stale entry.
func ReplayFilter(fn *ir.Func, traced []InstrKey) (instrument.Filter, bool) {
	want := make(map[InstrKey]bool, len(traced))
	for _, k := range traced {
		want[k] = true
	}
	sel := make(map[*ir.Instr]bool, len(traced))
	found := 0
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if want[InstrKey{Block: b.ID, Index: i}] {
				if !in.IsAccess() {
					return nil, false
				}
				sel[in] = true
				found++
			}
		}
	}
	if found != len(want) {
		return nil, false
	}
	return func(in *ir.Instr) bool { return sel[in] }, true
}

// Dirty computes the set of functions that must re-run elimination:
// functions whose semantic digest differs from the prior entry (or are
// new), expanded to their connected components in the undirected call
// graph described by edges. Returns nil (everything dirty) when the
// stable-field digests differ.
func Dirty(prior *Entry, stableDigest string, fns []*ir.Func, semDigest map[*ir.Func]string,
	edges map[*ir.Func][]*ir.Func) map[*ir.Func]bool {
	if prior == nil || prior.StableDigest != stableDigest {
		all := make(map[*ir.Func]bool, len(fns))
		for _, f := range fns {
			all[f] = true
		}
		return all
	}
	priorFns := make(map[string]string, len(prior.Fns))
	for _, fe := range prior.Fns {
		priorFns[fe.Name] = fe.Digest
	}
	dirty := make(map[*ir.Func]bool)
	var queue []*ir.Func
	for _, f := range fns {
		if priorFns[f.Name] != semDigest[f] {
			dirty[f] = true
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, g := range edges[f] {
			if !dirty[g] {
				dirty[g] = true
				queue = append(queue, g)
			}
		}
	}
	return dirty
}

// UndirectedCallGraph builds the symmetric adjacency used by Dirty
// from resolved call targets.
func UndirectedCallGraph(prog *ir.Program, callees func(*ir.Instr) []*ir.Func) map[*ir.Func][]*ir.Func {
	adj := make(map[*ir.Func]map[*ir.Func]bool)
	add := func(a, b *ir.Func) {
		if adj[a] == nil {
			adj[a] = make(map[*ir.Func]bool)
		}
		adj[a][b] = true
	}
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				for _, callee := range callees(in) {
					add(fn, callee)
					add(callee, fn)
				}
			}
		}
	}
	out := make(map[*ir.Func][]*ir.Func, len(adj))
	for f, set := range adj {
		ns := make([]*ir.Func, 0, len(set))
		for g := range set {
			ns = append(ns, g)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i].Name < ns[j].Name })
		out[f] = ns
	}
	return out
}
