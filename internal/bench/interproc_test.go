package bench

import (
	"fmt"
	"sort"
	"testing"

	"racedet/internal/core"
)

// emitted returns the post-elimination trace-instruction budget of a
// benchmark's compile.
func emitted(t *testing.T, b Benchmark, cfg core.Config) int {
	t.Helper()
	pipe, err := core.Compile(b.Name+".mj", b.Source(), cfg)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return pipe.InstrStats.Inserted - pipe.InstrStats.Eliminated
}

// The interprocedural weaker-than elimination must be worth something
// on the paper benchmarks: sor2 exercises the stable-field merge (the
// grid matrix is assigned once in a constructor) and mtrt the
// entry-coverage pass, so Full must emit strictly fewer trace
// instructions than NoInterproc on both.
func TestInterprocShrinksTraceBudget(t *testing.T) {
	for _, name := range []string{"sor2", "mtrt"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		full := emitted(t, b, core.Full())
		noip := emitted(t, b, core.Full().NoInterproc())
		if full >= noip {
			t.Errorf("%s: Full emits %d traces, NoInterproc %d; interproc must shrink the budget",
				name, full, noip)
		} else {
			t.Logf("%s: Full %d traces vs NoInterproc %d", name, full, noip)
		}
	}
}

// Disabling the interprocedural analyses may only cost precision of
// the *instrumentation budget*, never reports: on every benchmark the
// racy-object sets of Full and NoInterproc are identical.
func TestInterprocPreservesReports(t *testing.T) {
	for _, b := range All() {
		rf, err := b.Run(core.Full())
		if err != nil {
			t.Fatalf("%s full: %v", b.Name, err)
		}
		rn, err := b.Run(core.Full().NoInterproc())
		if err != nil {
			t.Fatalf("%s nointerproc: %v", b.Name, err)
		}
		of, on := objStrings(rf.RacyObjects), objStrings(rn.RacyObjects)
		sort.Strings(of)
		sort.Strings(on)
		if fmt.Sprint(of) != fmt.Sprint(on) {
			t.Errorf("%s: racy objects differ:\nfull:        %v\nnointerproc: %v", b.Name, of, on)
		}
	}
}
