package bench

import (
	"sort"
	"strings"
	"testing"

	"racedet/internal/core"
	"racedet/internal/rt/event"
)

func TestAllBenchmarksRunClean(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			res, err := b.Run(core.Full())
			if err != nil {
				t.Fatal(err)
			}
			if res.Interp.ThreadsUsed != b.Threads {
				t.Errorf("dynamic threads = %d, want %d (Table 1)", res.Interp.ThreadsUsed, b.Threads)
			}
			if strings.TrimSpace(res.Output) == "" {
				t.Error("benchmark produced no output")
			}
		})
	}
}

// TestTable3Shape asserts the qualitative content of Table 3: the Full
// counts match the paper exactly for mtrt/tsp/sor2/elevator and
// closely for hedc, FieldsMerged inflates tsp and hedc, and
// NoOwnership inflates everything.
func TestTable3Shape(t *testing.T) {
	// Paper values (Full / FieldsMerged / NoOwnership):
	//   mtrt 2/2/12, tsp 5/20/241, sor2 4/4/1009, elevator 0/0/16,
	//   hedc 5/10/29.
	wantFull := map[string]int{"mtrt": 2, "tsp": 5, "sor2": 4, "elevator": 0, "hedc": 5}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			row, err := Table3Bench(b)
			if err != nil {
				t.Fatal(err)
			}
			if row.Full != wantFull[b.Name] {
				t.Errorf("Full = %d, want %d (paper)", row.Full, wantFull[b.Name])
			}
			if row.FieldsMerged < row.Full {
				t.Errorf("FieldsMerged (%d) must be >= Full (%d)", row.FieldsMerged, row.Full)
			}
			switch b.Name {
			case "tsp", "hedc":
				if row.FieldsMerged <= row.Full {
					t.Errorf("%s: FieldsMerged (%d) must strictly exceed Full (%d)", b.Name, row.FieldsMerged, row.Full)
				}
			case "mtrt", "sor2", "elevator":
				if row.FieldsMerged != row.Full {
					t.Errorf("%s: FieldsMerged (%d) should equal Full (%d) as in the paper", b.Name, row.FieldsMerged, row.Full)
				}
			}
			if row.NoOwnership <= row.Full {
				t.Errorf("NoOwnership (%d) must exceed Full (%d)", row.NoOwnership, row.Full)
			}
		})
	}
}

// TestKnownRaces asserts the specific bugs the paper discusses are the
// ones reported.
func TestKnownRaces(t *testing.T) {
	cases := map[string][]string{
		"mtrt":     {"RayTrace.threadCount", "ValidityCheckOutputStream.startOfLine"},
		"tsp":      {"TspSolver.MinTourLen"},
		"sor2":     {"[]"},
		"elevator": {},
		"hedc":     {"Pool.size", "Task.thread_"},
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			got, err := RacyFieldNames(b, core.Full())
			if err != nil {
				t.Fatal(err)
			}
			want := cases[b.Name]
			for _, w := range want {
				found := false
				for _, g := range got {
					if g == w {
						found = true
					}
				}
				if !found {
					t.Errorf("missing expected race on %s; got %v", w, got)
				}
			}
			if b.Name == "elevator" && len(got) != 0 {
				t.Errorf("elevator must be race-free, got %v", got)
			}
		})
	}
}

// TestDetectorComparisonShape asserts §8.3/§9's ordering: Eraser and
// object-granularity report supersets of our races; dropping the
// pseudolocks adds spurious reports; the HB baseline reports at most
// what we do.
func TestDetectorComparisonShape(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			count := func(cfg core.Config) int {
				res, err := b.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return len(res.RacyObjects)
			}
			full := count(core.Full())
			noPseudo := core.Full()
			noPseudo.PseudoLocks = false
			np := count(noPseudo)
			eraser := count(core.Full().WithDetector(core.DetEraser))
			objRace := count(core.Full().WithDetector(core.DetObjectRace))
			hb := count(core.Full().WithDetector(core.DetVClock))

			if np < full {
				t.Errorf("NoPseudo (%d) must be >= Full (%d)", np, full)
			}
			if eraser < full {
				t.Errorf("Eraser (%d) must be >= Full (%d)", eraser, full)
			}
			if objRace < full {
				t.Errorf("ObjectRace (%d) must be >= Full (%d)", objRace, full)
			}
			if hb > full {
				t.Errorf("HB (%d) must be <= Full (%d): it misses feasible races, never adds", hb, full)
			}
			switch b.Name {
			case "mtrt", "elevator":
				// The join idiom / lock discipline makes the gap visible.
				if np == full && b.Name == "mtrt" {
					t.Errorf("mtrt: pseudolocks should matter (full=%d nopseudo=%d)", full, np)
				}
			case "sor2", "tsp":
				if eraser <= full {
					t.Errorf("%s: Eraser (%d) should strictly exceed Full (%d)", b.Name, eraser, full)
				}
			}
		})
	}
}

// TestTable2WorkShape asserts the deterministic work counters behind
// Table 2: which ablation hurts which benchmark.
func TestTable2WorkShape(t *testing.T) {
	type work struct {
		traceEvents uint64
		trieEvents  uint64
		slowPath    uint64 // events not absorbed by the cache
	}
	measure := func(t *testing.T, b Benchmark, cfg core.Config) work {
		t.Helper()
		res, err := b.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return work{
			res.Interp.TraceEvents,
			res.DetectorStats.Trie.Events,
			res.DetectorStats.Accesses - res.DetectorStats.CacheHits,
		}
	}

	t.Run("sor2", func(t *testing.T) {
		t.Parallel()
		b, _ := ByName("sor2")
		full := measure(t, b, core.Full())
		noDom := measure(t, b, core.Full().NoDominators())
		noPeel := measure(t, b, core.Full().NoPeeling())
		noCache := measure(t, b, core.Full().NoCache())
		// The static weaker-than elimination + peeling remove the
		// dominant share of sor2's trace events (paper: 316%/226%
		// overhead without them vs 13% full).
		if noDom.traceEvents < 10*full.traceEvents {
			t.Errorf("NoDominators trace events %d vs Full %d: elimination should be ~order-of-magnitude",
				noDom.traceEvents, full.traceEvents)
		}
		if noPeel.traceEvents < 5*full.traceEvents {
			t.Errorf("NoPeeling trace events %d vs Full %d", noPeel.traceEvents, full.traceEvents)
		}
		// The cache matters much less for sor2.
		if noCache.trieEvents < full.trieEvents {
			t.Errorf("NoCache must not reduce trie events")
		}
	})

	t.Run("tsp", func(t *testing.T) {
		t.Parallel()
		b, _ := ByName("tsp")
		full := measure(t, b, core.Full())
		noDom := measure(t, b, core.Full().NoDominators())
		noStatic := measure(t, b, core.Full().NoStatic())
		noCache := measure(t, b, core.Full().NoCache())
		// The cache is tsp's big win (paper: 3722% without it vs
		// 57%/175% for the other ablations): every event skips the
		// ten-instruction hit path and pays the full detector entry.
		// NoCache must dominate the other ablations' slow-path work,
		// and trie-level work must grow substantially. (The margins
		// are below the paper's because the interprocedural weaker-
		// than elimination in Full also trims the ablations' traces.)
		if 2*noCache.slowPath < 3*full.slowPath {
			t.Errorf("NoCache slow-path events %d vs Full %d: cache should absorb most accesses",
				noCache.slowPath, full.slowPath)
		}
		worstOther := noDom.slowPath
		if noStatic.slowPath > worstOther {
			worstOther = noStatic.slowPath
		}
		if 2*noCache.slowPath < 3*worstOther {
			t.Errorf("NoCache slow path %d must dwarf the other ablations (worst other %d)",
				noCache.slowPath, worstOther)
		}
		if noCache.trieEvents < 2*full.trieEvents {
			t.Errorf("NoCache trie events %d vs Full %d", noCache.trieEvents, full.trieEvents)
		}
	})

	t.Run("mtrt", func(t *testing.T) {
		t.Parallel()
		b, _ := ByName("mtrt")
		full := measure(t, b, core.Full())
		noStatic := measure(t, b, core.Full().NoStatic())
		// Static pruning removes the thread-local scratch traffic
		// (paper: mtrt NoStatic ran out of memory). Interprocedural
		// elimination recovers part of the gap for NoStatic, so the
		// margin is tighter than the paper's.
		if 3*noStatic.traceEvents < 4*full.traceEvents {
			t.Errorf("NoStatic trace events %d vs Full %d: static analysis should prune substantially",
				noStatic.traceEvents, full.traceEvents)
		}
	})
}

func TestBenchmarkDeterminism(t *testing.T) {
	b, _ := ByName("tsp")
	r1, err := b.Run(core.Full())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(core.Full())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Interp.Steps != r2.Interp.Steps || r1.Output != r2.Output {
		t.Error("same config must reproduce exactly")
	}
	o1 := objStrings(r1.RacyObjects)
	o2 := objStrings(r2.RacyObjects)
	sort.Strings(o1)
	sort.Strings(o2)
	if strings.Join(o1, ",") != strings.Join(o2, ",") {
		t.Error("racy objects differ across identical runs")
	}
}

func objStrings(objs []event.ObjID) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.String()
	}
	return out
}

func TestByName(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark must error")
	}
	b, err := ByName("mtrt")
	if err != nil || b.Name != "mtrt" {
		t.Errorf("ByName(mtrt) = %v, %v", b, err)
	}
	if b.LineCount() < 50 {
		t.Errorf("mtrt LoC = %d, suspiciously small", b.LineCount())
	}
}
