package bench

import "testing"

// TestMedianLowerMiddle pins the -benchreps aggregation contract: the
// reported ns/op is an observed sample (the lower middle for even rep
// counts), never an interpolated value.
func TestMedianLowerMiddle(t *testing.T) {
	cases := []struct {
		xs   []int64
		want int64
	}{
		{[]int64{7}, 7},
		{[]int64{9, 1}, 1},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2},
		{[]int64{5, 5, 1, 9, 7}, 5},
	}
	for _, tc := range cases {
		in := append([]int64(nil), tc.xs...)
		if got := median(in); got != tc.want {
			t.Errorf("median(%v) = %d, want %d", tc.xs, got, tc.want)
		}
		// The input order must survive: WriteJSON reuses the samples
		// for the min/max spread after taking the median.
		for i := range in {
			if in[i] != tc.xs[i] {
				t.Errorf("median(%v) mutated its input to %v", tc.xs, in)
				break
			}
		}
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := minMax([]int64{5, 2, 9, 2, 7})
	if lo != 2 || hi != 9 {
		t.Errorf("minMax = (%d, %d), want (2, 9)", lo, hi)
	}
	lo, hi = minMax([]int64{4})
	if lo != 4 || hi != 4 {
		t.Errorf("minMax single = (%d, %d), want (4, 4)", lo, hi)
	}
}
