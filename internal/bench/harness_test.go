package bench

import (
	"strings"
	"testing"
)

func TestTable1Output(t *testing.T) {
	var buf strings.Builder
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "mtrt", "tsp", "sor2", "elevator", "hedc", "Threads"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 7 { // header x2 + 5 rows
		t.Errorf("Table 1 has %d lines, want 7", got)
	}
}

func TestTable2Output(t *testing.T) {
	var buf strings.Builder
	if err := Table2(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Base", "Full", "NoStatic", "NoDominators", "NoPeeling", "NoInterproc", "NoCache", "DetWork"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
	// Only the CPU-bound benchmarks appear.
	if strings.Contains(out, "elevator") || strings.Contains(out, "hedc") {
		t.Error("Table 2 must exclude the interactive benchmarks")
	}
	// 3 benchmarks x 7 configs = 21 data rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "mtrt") || strings.HasPrefix(line, "tsp") || strings.HasPrefix(line, "sor2") {
			rows++
		}
	}
	if rows != 21 {
		t.Errorf("Table 2 data rows = %d, want 21", rows)
	}
}

func TestTable3Output(t *testing.T) {
	var buf strings.Builder
	if err := Table3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 3", "FieldsMerged", "NoOwnership"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
	// The elevator row must report 0 under Full.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "elevator") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "0" {
				t.Errorf("elevator row = %q, want Full column 0", line)
			}
		}
	}
}

func TestCompareDetectorsOutput(t *testing.T) {
	var buf strings.Builder
	if err := CompareDetectors(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Trie", "NoPseudo", "Eraser", "ObjectRace", "VClock"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q", want)
		}
	}
}

func TestTable2BenchRowsConsistent(t *testing.T) {
	b, _ := ByName("sor2")
	rows, err := Table2Bench(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || rows[0].Config != "Base" {
		t.Fatalf("rows = %+v", rows)
	}
	base := rows[0]
	if base.TraceEvents != 0 || base.TrieEvents != 0 {
		t.Error("Base must have no detector work")
	}
	for _, r := range rows[1:] {
		if r.Steps < base.Steps {
			t.Errorf("%s executed fewer instructions than Base", r.Config)
		}
		if r.DetWork < r.Steps {
			t.Errorf("%s DetWork below instruction count", r.Config)
		}
		if r.SlowPath+r.CacheHits != r.TraceEvents {
			t.Errorf("%s: slow(%d) + hits(%d) != traceEvents(%d)",
				r.Config, r.SlowPath, r.CacheHits, r.TraceEvents)
		}
	}
}
