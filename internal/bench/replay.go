// Replay-throughput axis of the -json matrix: each benchmark is
// recorded once as a binary trace, then the trace is replayed through
// the detector back ends with no interpreter in the loop. The replay
// rows carry events/sec — the "hardware-speed" detection rate the
// record-once/analyze-many workflow buys — alongside ns/op, so the
// perf gate can watch replay throughput like any other configuration.
package bench

import (
	"bytes"
	"fmt"
	"testing"

	"racedet/internal/core"
	"racedet/internal/rt/trace"
)

// replayConfigs is the replayed half of the matrix: the serial Full
// detector with sequential segment decode, and the sharded+batched
// back end with parallel decode.
func replayConfigs(o JSONOptions) []struct {
	Name    string
	Cfg     core.Config
	Workers int
} {
	o = o.withDefaults()
	sharded := core.Full()
	sharded.Shards = o.Shards
	sharded.BatchSize = o.BatchSize
	add := func(name string, cfg core.Config, workers int) struct {
		Name    string
		Cfg     core.Config
		Workers int
	} {
		return struct {
			Name    string
			Cfg     core.Config
			Workers int
		}{name, cfg, workers}
	}
	return []struct {
		Name    string
		Cfg     core.Config
		Workers int
	}{
		add("ReplayFull", core.Full(), 1),
		add(fmt.Sprintf("ReplayFullSharded%dBatched%d", o.Shards, o.BatchSize), sharded, 0),
	}
}

// replayCell is one (benchmark, replay configuration) measurement: the
// trace is recorded once and re-replayed on every rep.
type replayCell struct {
	bench   string
	cfgName string
	cfg     core.Config
	workers int
	rd      *trace.Reader

	traceBytes        int
	ns, allocs, bytes []int64
	racy              int
	events            uint64
}

func (cl *replayCell) measure() error {
	var runErr error
	br := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			rr, err := core.ReplayTrace(cl.rd, cl.cfg, cl.workers)
			if err != nil {
				runErr = err
				tb.FailNow()
			}
			if rr.Err != nil {
				runErr = rr.Err
				tb.FailNow()
			}
			cl.racy = len(rr.RacyObjects)
			cl.events = rr.Interp.TraceEvents
		}
	})
	if runErr != nil {
		return fmt.Errorf("bench %s/%s: %w", cl.bench, cl.cfgName, runErr)
	}
	cl.ns = append(cl.ns, br.NsPerOp())
	cl.allocs = append(cl.allocs, br.AllocsPerOp())
	cl.bytes = append(cl.bytes, br.AllocedBytesPerOp())
	return nil
}

// replayCells records every benchmark once under the Full
// configuration with the trace sink attached, then builds one cell per
// replay configuration over the in-memory trace.
func replayCells(o JSONOptions) ([]*replayCell, error) {
	var out []*replayCell
	for _, b := range All() {
		var buf bytes.Buffer
		cfg := core.Full()
		cfg.TraceTo = &buf
		res, err := core.RunSource(b.Name+".mj", b.Source(), cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s: recording trace: %w", b.Name, err)
		}
		if res.Err != nil {
			return nil, fmt.Errorf("bench %s: recording trace: %w", b.Name, res.Err)
		}
		rd, err := trace.NewReader(buf.Bytes())
		if err != nil {
			return nil, fmt.Errorf("bench %s: reading recorded trace: %w", b.Name, err)
		}
		for _, c := range replayConfigs(o) {
			out = append(out, &replayCell{
				bench:      b.Name,
				cfgName:    c.Name,
				cfg:        c.Cfg,
				workers:    c.Workers,
				rd:         rd,
				traceBytes: buf.Len(),
			})
		}
	}
	return out, nil
}

// eventsPerSec converts an events-per-op count and a ns/op median into
// the throughput metric of the replay axis.
func eventsPerSec(events uint64, nsPerOp int64) int64 {
	if events == 0 || nsPerOp <= 0 {
		return 0
	}
	return int64(float64(events) * 1e9 / float64(nsPerOp))
}
