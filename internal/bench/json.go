package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"racedet/internal/core"
	"racedet/internal/rt/detector"
)

// JSONResult is one (benchmark, configuration) measurement in the
// machine-readable report: the Go benchmark metrics plus the detection
// outcome, so a performance regression and a precision regression are
// both visible from the same artifact.
type JSONResult struct {
	Benchmark   string `json:"benchmark"`
	Config      string `json:"config"`
	Shards      int    `json:"shards,omitempty"`
	BatchSize   int    `json:"batch_size,omitempty"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	RacyObjects int    `json:"racy_objects"`

	// Fault-tolerance counters of the supervised sharded configuration
	// (last run of the measurement; omitted when zero). Checkpoints and
	// JournaledEvents are the insurance overhead; the rest should stay
	// zero in an undisturbed benchmark run.
	Checkpoints     uint64 `json:"checkpoints,omitempty"`
	JournaledEvents uint64 `json:"journaled_events,omitempty"`
	WorkerRestarts  uint64 `json:"worker_restarts,omitempty"`
	DegradedShards  int    `json:"degraded_shards,omitempty"`
	DroppedEvents   uint64 `json:"dropped_events,omitempty"`
	QueueHighWater  int    `json:"queue_high_water,omitempty"`
}

// JSONReport is the top-level structure of the bench JSON artifact
// (BENCH_PR2.json and successors).
type JSONReport struct {
	Note    string       `json:"note"`
	Results []JSONResult `json:"results"`
}

// JSONOptions parameterizes the parallel variants of the measured
// matrix. The zero value selects the defaults (4 shards, batch 64,
// journal 4096, retry budget 3).
type JSONOptions struct {
	Shards      int
	BatchSize   int
	JournalCap  int
	RetryBudget int
}

func (o JSONOptions) withDefaults() JSONOptions {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.JournalCap <= 0 {
		o.JournalCap = 4096
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 3
	}
	return o
}

// jsonConfigs is the measured matrix: the paper's Table 2 ablations
// plus the parallel back-end variants introduced with the sharded
// detector and the supervised (fault-tolerant) configuration, which
// quantifies the journaling/checkpointing insurance premium.
func jsonConfigs(o JSONOptions) []struct {
	Name string
	Cfg  core.Config
} {
	o = o.withDefaults()
	configs := Table2Configs()
	sharded := core.Full()
	sharded.Shards = o.Shards
	batched := core.Full()
	batched.BatchSize = o.BatchSize
	both := core.Full()
	both.Shards = o.Shards
	both.BatchSize = o.BatchSize
	supervised := both
	supervised.JournalCap = o.JournalCap
	supervised.RetryBudget = o.RetryBudget
	add := func(name string, cfg core.Config) struct {
		Name string
		Cfg  core.Config
	} {
		return struct {
			Name string
			Cfg  core.Config
		}{name, cfg}
	}
	return append(configs,
		add(fmt.Sprintf("FullSharded%d", o.Shards), sharded),
		add(fmt.Sprintf("FullBatched%d", o.BatchSize), batched),
		add(fmt.Sprintf("FullSharded%dBatched%d", o.Shards, o.BatchSize), both),
		add("FullSupervised", supervised),
	)
}

// WriteJSON measures every CPU-bound benchmark under the JSON config
// matrix with the testing package's benchmark driver and writes the
// report to w.
func WriteJSON(w io.Writer, opts JSONOptions) error {
	rep := JSONReport{
		Note: "racebench machine-readable results; regenerate with: racebench -json <path>",
	}
	for _, b := range All() {
		if !b.CPUBound {
			continue
		}
		for _, c := range jsonConfigs(opts) {
			pipe, err := core.Compile(b.Name+".mj", b.Source(), c.Cfg)
			if err != nil {
				return fmt.Errorf("bench %s/%s: %w", b.Name, c.Name, err)
			}
			var racy int
			var rec detector.RecoveryStats
			var runErr error
			br := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					rr, err := pipe.RunConfig(c.Cfg)
					if err != nil {
						runErr = err
						tb.FailNow()
					}
					if rr.Err != nil {
						runErr = rr.Err
						tb.FailNow()
					}
					racy = len(rr.RacyObjects)
					rec = rr.DetectorStats.Recovery
				}
			})
			if runErr != nil {
				return fmt.Errorf("bench %s/%s: %w", b.Name, c.Name, runErr)
			}
			rep.Results = append(rep.Results, JSONResult{
				Benchmark:       b.Name,
				Config:          c.Name,
				Shards:          c.Cfg.Shards,
				BatchSize:       c.Cfg.BatchSize,
				NsPerOp:         br.NsPerOp(),
				AllocsPerOp:     br.AllocsPerOp(),
				BytesPerOp:      br.AllocedBytesPerOp(),
				RacyObjects:     racy,
				Checkpoints:     rec.Checkpoints,
				JournaledEvents: rec.Journaled,
				WorkerRestarts:  rec.Restarts,
				DegradedShards:  rec.DegradedShards,
				DroppedEvents:   rec.DroppedEvents,
				QueueHighWater:  rec.QueueHighWater,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
