package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"racedet/internal/core"
)

// JSONResult is one (benchmark, configuration) measurement in the
// machine-readable report: the Go benchmark metrics plus the detection
// outcome, so a performance regression and a precision regression are
// both visible from the same artifact.
type JSONResult struct {
	Benchmark   string `json:"benchmark"`
	Config      string `json:"config"`
	Shards      int    `json:"shards,omitempty"`
	BatchSize   int    `json:"batch_size,omitempty"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	RacyObjects int    `json:"racy_objects"`
}

// JSONReport is the top-level structure of the bench JSON artifact
// (BENCH_PR2.json and successors).
type JSONReport struct {
	Note    string       `json:"note"`
	Results []JSONResult `json:"results"`
}

// jsonConfigs is the measured matrix: the paper's Table 2 ablations
// plus the parallel back-end variants introduced with the sharded
// detector.
func jsonConfigs() []struct {
	Name string
	Cfg  core.Config
} {
	configs := Table2Configs()
	sharded := core.Full()
	sharded.Shards = 4
	batched := core.Full()
	batched.BatchSize = 64
	both := core.Full()
	both.Shards = 4
	both.BatchSize = 64
	return append(configs,
		struct {
			Name string
			Cfg  core.Config
		}{"FullSharded4", sharded},
		struct {
			Name string
			Cfg  core.Config
		}{"FullBatched64", batched},
		struct {
			Name string
			Cfg  core.Config
		}{"FullSharded4Batched64", both},
	)
}

// WriteJSON measures every CPU-bound benchmark under the JSON config
// matrix with the testing package's benchmark driver and writes the
// report to w.
func WriteJSON(w io.Writer) error {
	rep := JSONReport{
		Note: "racebench machine-readable results; regenerate with: racebench -json <path>",
	}
	for _, b := range All() {
		if !b.CPUBound {
			continue
		}
		for _, c := range jsonConfigs() {
			pipe, err := core.Compile(b.Name+".mj", b.Source(), c.Cfg)
			if err != nil {
				return fmt.Errorf("bench %s/%s: %w", b.Name, c.Name, err)
			}
			var racy int
			var runErr error
			br := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					rr, err := pipe.RunConfig(c.Cfg)
					if err != nil {
						runErr = err
						tb.FailNow()
					}
					if rr.Err != nil {
						runErr = rr.Err
						tb.FailNow()
					}
					racy = len(rr.RacyObjects)
				}
			})
			if runErr != nil {
				return fmt.Errorf("bench %s/%s: %w", b.Name, c.Name, runErr)
			}
			rep.Results = append(rep.Results, JSONResult{
				Benchmark:   b.Name,
				Config:      c.Name,
				Shards:      c.Cfg.Shards,
				BatchSize:   c.Cfg.BatchSize,
				NsPerOp:     br.NsPerOp(),
				AllocsPerOp: br.AllocsPerOp(),
				BytesPerOp:  br.AllocedBytesPerOp(),
				RacyObjects: racy,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
