package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"testing"

	"racedet/internal/core"
	"racedet/internal/rt/detector"
)

// JSONResult is one (benchmark, configuration) measurement in the
// machine-readable report: the Go benchmark metrics plus the detection
// outcome, so a performance regression and a precision regression are
// both visible from the same artifact.
type JSONResult struct {
	Benchmark string `json:"benchmark"`
	Config    string `json:"config"`
	Shards    int    `json:"shards,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`
	// NsPerOp is the median over Reps independent measurements (the
	// reps are interleaved across configurations so load drift on the
	// host hits every configuration equally); NsMin/NsMax give the
	// spread. With Reps <= 1 it is the single measurement and the
	// spread fields are omitted.
	NsPerOp     int64 `json:"ns_per_op"`
	Reps        int   `json:"reps,omitempty"`
	NsMin       int64 `json:"ns_min,omitempty"`
	NsMax       int64 `json:"ns_max,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	RacyObjects int   `json:"racy_objects"`

	// Replay-throughput axis. EventsPerSec is the detection rate
	// derived from the median ns/op (present on the Replay* rows and
	// on live rows that count trace events, so the replay-vs-live
	// speedup is one division away); TraceBytes is the size of the
	// recorded binary trace a Replay* row streams.
	EventsPerSec int64 `json:"events_per_sec,omitempty"`
	TraceBytes   int   `json:"trace_bytes,omitempty"`

	// Static-phase outcome of the cell's compile (identical across
	// reps): wall time of the analyses and the emitted-trace budget.
	// TracesEmitted = TracesInserted - TracesEliminated is the count
	// the NoInterproc-vs-Full comparison gates on.
	StaticAnalysisNs int64 `json:"static_analysis_ns,omitempty"`
	TracesInserted   int   `json:"traces_inserted,omitempty"`
	TracesEliminated int   `json:"traces_eliminated,omitempty"`
	TracesEmitted    int   `json:"traces_emitted,omitempty"`
	ElimInterproc    int   `json:"elim_interproc,omitempty"`

	// Fault-tolerance counters of the supervised sharded configuration
	// (last run of the measurement; omitted when zero). Checkpoints and
	// JournaledEvents are the insurance overhead; the rest should stay
	// zero in an undisturbed benchmark run.
	Checkpoints     uint64 `json:"checkpoints,omitempty"`
	JournaledEvents uint64 `json:"journaled_events,omitempty"`
	WorkerRestarts  uint64 `json:"worker_restarts,omitempty"`
	DegradedShards  int    `json:"degraded_shards,omitempty"`
	DroppedEvents   uint64 `json:"dropped_events,omitempty"`
	QueueHighWater  int    `json:"queue_high_water,omitempty"`

	// Adaptive-throttling axis (last run of the measurement). Every
	// observed event lands in exactly one filter bucket, so
	// EventsObserved == EventsShipped + cache hits + owner skips +
	// EventsSuppressed; the FullSampled* rows are compared against
	// Full's EventsShipped to quantify the trie work saved.
	// EventsShipped is present on every row (Full rows too) —
	// EventsSuppressed and the site counters only where throttling ran.
	EventsObserved   uint64 `json:"events_observed,omitempty"`
	EventsShipped    uint64 `json:"events_shipped,omitempty"`
	EventsSuppressed uint64 `json:"events_suppressed,omitempty"`
	SitesDemoted     uint64 `json:"sites_demoted,omitempty"`
	SitesRearmed     uint64 `json:"sites_rearmed,omitempty"`

	// Discipline-prior axis (FullSampledPriors rows only): sites
	// pinned / fast-demoting by static tier, and demotions that fired
	// earlier than the adaptive K thanks to a low prior.
	PriorHighSites     int    `json:"prior_high_sites,omitempty"`
	PriorLowSites      int    `json:"prior_low_sites,omitempty"`
	PriorFastDemotions uint64 `json:"prior_fast_demotions,omitempty"`
}

// JSONReport is the top-level structure of the bench JSON artifact
// (BENCH_PR2.json and successors).
type JSONReport struct {
	Note    string       `json:"note"`
	Results []JSONResult `json:"results"`
}

// ReadJSON parses a report previously written by WriteJSON, so tools
// downstream of the artifact (the CI perf gate) share the schema with
// the writer instead of re-declaring it.
func ReadJSON(r io.Reader) (*JSONReport, error) {
	var rep JSONReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("parsing bench report: %w", err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("parsing bench report: no results")
	}
	return &rep, nil
}

// JSONOptions parameterizes the parallel variants of the measured
// matrix. The zero value selects the defaults (4 shards, batch 64,
// journal 4096, retry budget 3, one measurement rep).
type JSONOptions struct {
	Shards      int
	BatchSize   int
	JournalCap  int
	RetryBudget int
	// BenchReps is how many times each (benchmark, config) cell is
	// measured. The reps are interleaved — every cell is measured once
	// before any cell is measured twice — so slow phases of a noisy
	// host spread across all configurations instead of biasing whichever
	// one they landed on; the report carries the median and the spread.
	BenchReps int
}

func (o JSONOptions) withDefaults() JSONOptions {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.JournalCap <= 0 {
		o.JournalCap = 4096
	}
	if o.RetryBudget < 0 {
		o.RetryBudget = 3
	}
	if o.BenchReps <= 0 {
		o.BenchReps = 1
	}
	return o
}

// jsonConfigs is the measured matrix: the paper's Table 2 ablations
// plus the parallel back-end variants introduced with the sharded
// detector and the supervised (fault-tolerant) configuration, which
// quantifies the journaling/checkpointing insurance premium.
func jsonConfigs(o JSONOptions) []struct {
	Name string
	Cfg  core.Config
} {
	o = o.withDefaults()
	configs := Table2Configs()
	sharded := core.Full()
	sharded.Shards = o.Shards
	batched := core.Full()
	batched.BatchSize = o.BatchSize
	both := core.Full()
	both.Shards = o.Shards
	both.BatchSize = o.BatchSize
	supervised := both
	supervised.JournalCap = o.JournalCap
	supervised.RetryBudget = o.RetryBudget
	sampled := func(k int, budget float64) core.Config {
		c := core.Full()
		c.SampleK = k
		c.SampleBudget = budget
		return c
	}
	sampledPriors := func(k int, budget float64) core.Config {
		c := sampled(k, budget)
		c.Priors = "on"
		return c
	}
	add := func(name string, cfg core.Config) struct {
		Name string
		Cfg  core.Config
	} {
		return struct {
			Name string
			Cfg  core.Config
		}{name, cfg}
	}
	return append(configs,
		add(fmt.Sprintf("FullSharded%d", o.Shards), sharded),
		add(fmt.Sprintf("FullBatched%d", o.BatchSize), batched),
		add(fmt.Sprintf("FullSharded%dBatched%d", o.Shards, o.BatchSize), both),
		add("FullSupervised", supervised),
		// The throttling sweep: fixed K at three demotion speeds plus
		// the adaptive controller, all on the serial back end so the
		// suppression effect is isolated from sharding.
		add("FullSampled4", sampled(4, 0)),
		add("FullSampled16", sampled(16, 0)),
		add("FullSampled64", sampled(64, 0)),
		add("FullSampledAdaptive", sampled(2, 0.25)),
		// The adaptive controller again, but seeded with the static
		// lock-discipline tiers as per-site priors: guarded-consistent
		// sites demote early, unguarded ones stay pinned.
		add("FullSampledPriors", sampledPriors(2, 0.25)),
	)
}

// measureStaticAnalysis adds one "StaticAnalysis" pseudo-configuration
// row per benchmark: ns/op of the whole compile phase (parse through
// instrumentation) under the Full configuration, so the perf gate can
// watch static-analysis wall time alongside the runtime columns.
func measureStaticAnalysis(o JSONOptions) ([]JSONResult, error) {
	var out []JSONResult
	for _, b := range All() {
		var ns, allocs, bytes []int64
		var pipe *core.Pipeline
		for rep := 0; rep < o.BenchReps; rep++ {
			var compErr error
			br := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					p, err := core.Compile(b.Name+".mj", b.Source(), core.Full())
					if err != nil {
						compErr = err
						tb.FailNow()
					}
					pipe = p
				}
			})
			if compErr != nil {
				return nil, fmt.Errorf("bench %s/StaticAnalysis: %w", b.Name, compErr)
			}
			ns = append(ns, br.NsPerOp())
			allocs = append(allocs, br.AllocsPerOp())
			bytes = append(bytes, br.AllocedBytesPerOp())
		}
		r := JSONResult{
			Benchmark:        b.Name,
			Config:           "StaticAnalysis",
			NsPerOp:          median(ns),
			AllocsPerOp:      median(allocs),
			BytesPerOp:       median(bytes),
			StaticAnalysisNs: pipe.StaticStats.AnalysisNs,
			TracesInserted:   pipe.InstrStats.Inserted,
			TracesEliminated: pipe.InstrStats.Eliminated,
			TracesEmitted:    pipe.InstrStats.Inserted - pipe.InstrStats.Eliminated,
			ElimInterproc:    pipe.StaticStats.ElimInterproc,
		}
		if o.BenchReps > 1 {
			r.Reps = o.BenchReps
			r.NsMin, r.NsMax = minMax(ns)
		}
		out = append(out, r)
	}
	return out, nil
}

// median returns the middle element of the samples (the lower middle
// for even counts, so the result is always an observed value).
func median(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

func minMax(xs []int64) (lo, hi int64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// jsonCell is one (benchmark, configuration) measurement target: the
// pipeline is compiled once and re-measured on every rep.
type jsonCell struct {
	bench   string
	cfgName string
	cfg     core.Config
	pipe    *core.Pipeline

	ns, allocs, bytes []int64
	racy              int
	events            uint64
	rec               detector.RecoveryStats
	det               detector.Stats
}

func (cl *jsonCell) measure() error {
	var runErr error
	br := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			rr, err := cl.pipe.RunConfig(cl.cfg)
			if err != nil {
				runErr = err
				tb.FailNow()
			}
			if rr.Err != nil {
				runErr = rr.Err
				tb.FailNow()
			}
			cl.racy = len(rr.RacyObjects)
			cl.events = rr.Interp.TraceEvents
			cl.rec = rr.DetectorStats.Recovery
			cl.det = rr.DetectorStats
		}
	})
	if runErr != nil {
		return fmt.Errorf("bench %s/%s: %w", cl.bench, cl.cfgName, runErr)
	}
	cl.ns = append(cl.ns, br.NsPerOp())
	cl.allocs = append(cl.allocs, br.AllocsPerOp())
	cl.bytes = append(cl.bytes, br.AllocedBytesPerOp())
	return nil
}

// WriteJSON measures all five paper benchmarks under the JSON config
// matrix with the testing package's benchmark driver and writes the
// report to w. With BenchReps > 1 every cell is measured that many
// times, reps interleaved across cells, and the report carries the
// median with min/max spread.
func WriteJSON(w io.Writer, opts JSONOptions) error {
	o := opts.withDefaults()
	var cells []*jsonCell
	for _, b := range All() {
		for _, c := range jsonConfigs(opts) {
			pipe, err := core.Compile(b.Name+".mj", b.Source(), c.Cfg)
			if err != nil {
				return fmt.Errorf("bench %s/%s: %w", b.Name, c.Name, err)
			}
			cells = append(cells, &jsonCell{bench: b.Name, cfgName: c.Name, cfg: c.Cfg, pipe: pipe})
		}
	}
	rcells, err := replayCells(opts)
	if err != nil {
		return err
	}
	for rep := 0; rep < o.BenchReps; rep++ {
		for _, cl := range cells {
			if err := cl.measure(); err != nil {
				return err
			}
		}
		for _, cl := range rcells {
			if err := cl.measure(); err != nil {
				return err
			}
		}
	}

	rep := JSONReport{
		Note: "racebench machine-readable results; regenerate with: racebench -json <path>",
	}
	for _, cl := range cells {
		r := JSONResult{
			Benchmark:        cl.bench,
			Config:           cl.cfgName,
			Shards:           cl.cfg.Shards,
			BatchSize:        cl.cfg.BatchSize,
			NsPerOp:          median(cl.ns),
			AllocsPerOp:      median(cl.allocs),
			BytesPerOp:       median(cl.bytes),
			RacyObjects:      cl.racy,
			StaticAnalysisNs: cl.pipe.StaticStats.AnalysisNs,
			TracesInserted:   cl.pipe.InstrStats.Inserted,
			TracesEliminated: cl.pipe.InstrStats.Eliminated,
			TracesEmitted:    cl.pipe.InstrStats.Inserted - cl.pipe.InstrStats.Eliminated,
			ElimInterproc:    cl.pipe.StaticStats.ElimInterproc,
			Checkpoints:      cl.rec.Checkpoints,
			JournaledEvents:  cl.rec.Journaled,
			WorkerRestarts:   cl.rec.Restarts,
			DegradedShards:   cl.rec.DegradedShards,
			DroppedEvents:    cl.rec.DroppedEvents,
			QueueHighWater:   cl.rec.QueueHighWater,
			EventsPerSec:     eventsPerSec(cl.events, median(cl.ns)),
			EventsObserved:   cl.det.Accesses,
			EventsShipped:    cl.det.Shipped,
			EventsSuppressed: cl.det.Sample.Suppressed,
			SitesDemoted:     cl.det.Sample.Demotions,
			SitesRearmed:     cl.det.Sample.Rearms,

			PriorHighSites:     cl.det.Sample.PriorHighSites,
			PriorLowSites:      cl.det.Sample.PriorLowSites,
			PriorFastDemotions: cl.det.Sample.PriorFastDemotions,
		}
		if o.BenchReps > 1 {
			r.Reps = o.BenchReps
			r.NsMin, r.NsMax = minMax(cl.ns)
		}
		rep.Results = append(rep.Results, r)
	}
	for _, cl := range rcells {
		r := JSONResult{
			Benchmark:    cl.bench,
			Config:       cl.cfgName,
			Shards:       cl.cfg.Shards,
			BatchSize:    cl.cfg.BatchSize,
			NsPerOp:      median(cl.ns),
			AllocsPerOp:  median(cl.allocs),
			BytesPerOp:   median(cl.bytes),
			RacyObjects:  cl.racy,
			EventsPerSec: eventsPerSec(cl.events, median(cl.ns)),
			TraceBytes:   cl.traceBytes,
		}
		if o.BenchReps > 1 {
			r.Reps = o.BenchReps
			r.NsMin, r.NsMax = minMax(cl.ns)
		}
		rep.Results = append(rep.Results, r)
	}
	static, err := measureStaticAnalysis(o)
	if err != nil {
		return err
	}
	rep.Results = append(rep.Results, static...)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
