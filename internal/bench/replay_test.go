package bench

import (
	"testing"

	"racedet/internal/core"
)

// TestReplayCellsMatchLive pins the replay axis's correctness claim:
// for every paper benchmark, replaying the recorded trace through each
// replay configuration finds exactly the racy objects the live run
// found — the measured cells are not allowed to drift from the
// detector they benchmark.
func TestReplayCellsMatchLive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every benchmark")
	}
	cells, err := replayCells(JSONOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for _, b := range All() {
		res, err := core.RunSource(b.Name+".mj", b.Source(), core.Full())
		if err != nil {
			t.Fatalf("live %s: %v", b.Name, err)
		}
		want[b.Name] = len(res.RacyObjects)
	}
	if len(cells) != 2*len(All()) {
		t.Fatalf("replayCells built %d cells, want %d", len(cells), 2*len(All()))
	}
	for _, cl := range cells {
		if cl.traceBytes == 0 {
			t.Errorf("%s/%s: empty trace", cl.bench, cl.cfgName)
		}
		rr, err := core.ReplayTrace(cl.rd, cl.cfg, cl.workers)
		if err != nil {
			t.Fatalf("%s/%s: %v", cl.bench, cl.cfgName, err)
		}
		if rr.Err != nil {
			t.Fatalf("%s/%s: %v", cl.bench, cl.cfgName, rr.Err)
		}
		if got := len(rr.RacyObjects); got != want[cl.bench] {
			t.Errorf("%s/%s: %d racy objects, live run found %d",
				cl.bench, cl.cfgName, got, want[cl.bench])
		}
		if rr.Interp.TraceEvents == 0 {
			t.Errorf("%s/%s: replay counted no events", cl.bench, cl.cfgName)
		}
	}
}

func TestEventsPerSec(t *testing.T) {
	if got := eventsPerSec(1000, 1_000_000); got != 1_000_000 {
		t.Errorf("eventsPerSec(1000, 1e6 ns) = %d, want 1000000", got)
	}
	if got := eventsPerSec(0, 100); got != 0 {
		t.Errorf("zero events: got %d", got)
	}
	if got := eventsPerSec(100, 0); got != 0 {
		t.Errorf("zero ns: got %d", got)
	}
}
