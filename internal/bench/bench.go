// Package bench holds the MJ translations of the paper's five
// benchmark programs and the harness that regenerates the evaluation
// tables (§8: Tables 1, 2, and 3).
//
// The programs preserve the sharing and locking structure of the
// originals — which is what Table 2's per-benchmark optimization
// sensitivities and Table 3's race-object counts are consequences of —
// while being small enough to interpret deterministically. DESIGN.md
// documents every substitution.
package bench

import (
	"embed"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"racedet/internal/core"
)

//go:embed testdata/*.mj
var sources embed.FS

// Benchmark describes one paper benchmark.
type Benchmark struct {
	Name        string
	File        string
	Threads     int // dynamic threads, as in Table 1
	Description string
	// CPUBound selects the programs Table 2 reports performance for
	// (elevator and hedc are interactive in the paper and excluded).
	CPUBound bool
}

// All lists the paper's benchmarks in Table 1 order.
func All() []Benchmark {
	return []Benchmark{
		{"mtrt", "testdata/mtrt.mj", 3, "MultiThreaded Ray Tracer analogue (SPECJVM98)", true},
		{"tsp", "testdata/tsp.mj", 5, "Traveling Salesman Problem solver analogue (ETH)", true},
		{"sor2", "testdata/sor2.mj", 4, "Modified Successive Over-Relaxation analogue (ETH)", true},
		{"elevator", "testdata/elevator.mj", 5, "Real-time discrete event elevator simulator analogue", false},
		{"hedc", "testdata/hedc.mj", 8, "Web-crawler application kernel analogue (ETH)", false},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Source returns the MJ source text of the benchmark.
func (b Benchmark) Source() string {
	data, err := sources.ReadFile(b.File)
	if err != nil {
		panic("bench: missing embedded source " + b.File)
	}
	return string(data)
}

// LineCount returns the benchmark's lines of code (Table 1 column).
func (b Benchmark) LineCount() int {
	return strings.Count(b.Source(), "\n")
}

// Run compiles and executes the benchmark under cfg.
func (b Benchmark) Run(cfg core.Config) (*core.RunResult, error) {
	res, err := core.RunSource(b.Name+".mj", b.Source(), cfg)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	if res.Err != nil {
		return res, fmt.Errorf("bench %s: runtime: %w", b.Name, res.Err)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Table 1

// Table1 prints the benchmark characteristics table.
func Table1(w io.Writer) {
	fmt.Fprintf(w, "Table 1: Benchmark programs and their characteristics\n")
	fmt.Fprintf(w, "%-10s %8s %9s  %s\n", "Example", "LoC(MJ)", "Threads", "Description")
	for _, b := range All() {
		fmt.Fprintf(w, "%-10s %8d %9d  %s\n", b.Name, b.LineCount(), b.Threads, b.Description)
	}
}

// ---------------------------------------------------------------------------
// Table 2

// Table2Row is the measurement of one benchmark under one
// configuration: wall time plus deterministic work counters. Wall time
// is environment-sensitive; the deterministic Work and DetWork columns
// are the reproducible shape witnesses (see EXPERIMENTS.md).
type Table2Row struct {
	Config      string
	Duration    time.Duration
	Steps       uint64 // interpreted instructions (includes traces)
	TraceEvents uint64
	CacheHits   uint64
	SlowPath    uint64 // events past the cache (miss or no cache)
	TrieEvents  uint64 // events that reached the trie layer
	TrieNodes   int
	TrackedLocs int // locations in the ownership table (memory growth)

	OverheadPct  float64 // vs Base, wall time
	WorkOverhead float64 // vs Base, interpreted instructions
	// DetWork models the detector cost deterministically:
	// instructions + 2·slow-path events + 10·trie events (weights from
	// the micro-benchmarks in bench_test.go; a cache hit costs about
	// one interpreted instruction, a trie traversal about ten).
	DetWork         uint64
	DetWorkOverhead float64 // vs Base, DetWork
}

// Table2Configs lists the paper's Table 2 configurations in order.
func Table2Configs() []struct {
	Name string
	Cfg  core.Config
} {
	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"Base", core.Base()},
		{"Full", core.Full()},
		{"NoStatic", core.Full().NoStatic()},
		{"NoDominators", core.Full().NoDominators()},
		{"NoPeeling", core.Full().NoPeeling()},
		{"NoInterproc", core.Full().NoInterproc()},
		{"NoCache", core.Full().NoCache()},
	}
}

// Table2Bench measures one benchmark under every Table 2
// configuration, running each config `runs` times and keeping the
// best wall time (the paper ran five times and reported the best).
func Table2Bench(b Benchmark, runs int) ([]Table2Row, error) {
	if runs <= 0 {
		runs = 1
	}
	var rows []Table2Row
	var base Table2Row
	for _, c := range Table2Configs() {
		pipe, err := core.Compile(b.Name+".mj", b.Source(), c.Cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s/%s: %w", b.Name, c.Name, err)
		}
		var best *core.RunResult
		for r := 0; r < runs; r++ {
			runtime.GC() // comparable heap state across timed runs
			res, err := pipe.Run()
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", b.Name, c.Name, err)
			}
			if res.Err != nil {
				return nil, fmt.Errorf("bench %s/%s: runtime: %w", b.Name, c.Name, res.Err)
			}
			if best == nil || res.Duration < best.Duration {
				best = res
			}
		}
		row := Table2Row{
			Config:      c.Name,
			Duration:    best.Duration,
			Steps:       best.Interp.Steps,
			TraceEvents: best.Interp.TraceEvents,
			CacheHits:   best.DetectorStats.CacheHits,
			SlowPath:    best.DetectorStats.Accesses - best.DetectorStats.CacheHits,
			TrieEvents:  best.DetectorStats.Trie.Events,
			TrieNodes:   best.TrieNodes,
			TrackedLocs: best.DetectorStats.OwnerLocations,
		}
		row.DetWork = row.Steps + 2*row.SlowPath + 10*row.TrieEvents
		if c.Name == "Base" {
			base = row
		}
		if base.Duration > 0 {
			row.OverheadPct = 100 * (float64(row.Duration) - float64(base.Duration)) / float64(base.Duration)
		}
		if base.Steps > 0 {
			row.WorkOverhead = 100 * (float64(row.Steps) - float64(base.Steps)) / float64(base.Steps)
			row.DetWorkOverhead = 100 * (float64(row.DetWork) - float64(base.DetWork)) / float64(base.DetWork)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 prints the runtime-performance table for the CPU-bound
// benchmarks.
func Table2(w io.Writer, runs int) error {
	fmt.Fprintf(w, "Table 2: Runtime Performance (wall time, best of %d; DetWork = instructions + 2*slow-path + 10*trie)\n", runs)
	fmt.Fprintf(w, "%-10s %-13s %12s %9s %12s %10s %10s %9s %10s %10s\n",
		"Example", "Config", "Time", "Ovhd%", "TraceEvents", "SlowPath", "TrieEvents", "Locs", "DetWork", "DetOvhd%")
	for _, b := range All() {
		if !b.CPUBound {
			continue
		}
		rows, err := Table2Bench(b, runs)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %-13s %12s %8.0f%% %12d %10d %10d %9d %10d %9.0f%%\n",
				b.Name, r.Config, r.Duration.Round(time.Microsecond), r.OverheadPct,
				r.TraceEvents, r.SlowPath, r.TrieEvents, r.TrackedLocs, r.DetWork, r.DetWorkOverhead)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Table 3

// Table3Row is one benchmark's racy-object counts under the accuracy
// variants.
type Table3Row struct {
	Name         string
	Full         int
	FieldsMerged int
	NoOwnership  int
}

// Table3Bench computes one benchmark's Table 3 row.
func Table3Bench(b Benchmark) (Table3Row, error) {
	row := Table3Row{Name: b.Name}
	for _, v := range []struct {
		cfg core.Config
		dst *int
	}{
		{core.Full(), &row.Full},
		{core.Full().MergedFields(), &row.FieldsMerged},
		{core.Full().NoOwnership(), &row.NoOwnership},
	} {
		res, err := b.Run(v.cfg)
		if err != nil {
			return row, err
		}
		*v.dst = len(res.RacyObjects)
	}
	return row, nil
}

// Table3 prints the accuracy table for all benchmarks.
func Table3(w io.Writer) error {
	fmt.Fprintf(w, "Table 3: Number of Objects With Dataraces Reported\n")
	fmt.Fprintf(w, "%-10s %6s %14s %13s\n", "Example", "Full", "FieldsMerged", "NoOwnership")
	for _, b := range All() {
		row, err := Table3Bench(b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %6d %14d %13d\n", row.Name, row.Full, row.FieldsMerged, row.NoOwnership)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Detector comparison (§8.3 / §9)

// CompareRow holds racy-object counts per detector for one benchmark.
type CompareRow struct {
	Name       string
	Trie       int
	NoPseudo   int
	Eraser     int
	ObjectRace int
	VClock     int
}

// CompareDetectors runs every benchmark under the paper's detector,
// the paper's detector without join pseudolocks, and the three
// baselines, reporting racy-object counts.
func CompareDetectors(w io.Writer) error {
	fmt.Fprintf(w, "Detector comparison (racy objects; §8.3/§9)\n")
	fmt.Fprintf(w, "%-10s %6s %10s %8s %12s %8s\n", "Example", "Trie", "NoPseudo", "Eraser", "ObjectRace", "VClock")
	for _, b := range All() {
		row := CompareRow{Name: b.Name}
		for _, v := range []struct {
			cfg core.Config
			dst *int
		}{
			{core.Full(), &row.Trie},
			{func() core.Config { c := core.Full(); c.PseudoLocks = false; return c }(), &row.NoPseudo},
			{core.Full().WithDetector(core.DetEraser), &row.Eraser},
			{core.Full().WithDetector(core.DetObjectRace), &row.ObjectRace},
			{core.Full().WithDetector(core.DetVClock), &row.VClock},
		} {
			res, err := b.Run(v.cfg)
			if err != nil {
				return err
			}
			*v.dst = len(res.RacyObjects)
		}
		fmt.Fprintf(w, "%-10s %6d %10d %8d %12d %8d\n",
			row.Name, row.Trie, row.NoPseudo, row.Eraser, row.ObjectRace, row.VClock)
	}
	return nil
}

// RacyFieldNames returns the distinct field names reported racy under
// cfg, sorted — handy for asserting which races are found.
func RacyFieldNames(b Benchmark, cfg core.Config) ([]string, error) {
	res, err := b.Run(cfg)
	if err != nil {
		return nil, err
	}
	set := map[string]struct{}{}
	for _, r := range res.Reports {
		set[r.Access.FieldName] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}
