package bench

import (
	"testing"

	"racedet/internal/core"
)

// TestPackedTrieSpace reproduces §8.2's space observation: the
// multi-location packing stores the same histories in fewer trie
// nodes (the paper reports 7967 nodes for 6562 tsp locations), while
// reporting exactly the same racy objects.
func TestPackedTrieSpace(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			plain, err := b.Run(core.Full())
			if err != nil {
				t.Fatal(err)
			}
			packedCfg := core.Full()
			packedCfg.PackedTrie = true
			packed, err := b.Run(packedCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(plain.RacyObjects) != len(packed.RacyObjects) {
				t.Fatalf("packing changed detection: %v vs %v", plain.RacyObjects, packed.RacyObjects)
			}
			if plain.TrieLocations != packed.TrieLocations {
				t.Errorf("location counts differ: %d vs %d", plain.TrieLocations, packed.TrieLocations)
			}
			if packed.TrieNodes > plain.TrieNodes {
				t.Errorf("packed nodes (%d) exceed plain (%d)", packed.TrieNodes, plain.TrieNodes)
			}
			t.Logf("%s: locations=%d plainNodes=%d packedNodes=%d (%.2f / %.2f nodes/loc)",
				b.Name, plain.TrieLocations, plain.TrieNodes, packed.TrieNodes,
				float64(plain.TrieNodes)/float64(max(1, plain.TrieLocations)),
				float64(packed.TrieNodes)/float64(max(1, plain.TrieLocations)))

		})
	}
}
