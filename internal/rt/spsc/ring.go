// Package spsc provides the bounded single-producer/single-consumer
// ring buffer behind the sharded detector's router→worker queues.
//
// The design is the classic Lamport ring with two monotonically
// increasing position counters: tail (next slot the producer writes)
// and head (next slot the consumer reads), each owned exclusively by
// one side and published through atomics. The counters live on
// separate cache lines so the producer's tail stores never invalidate
// the consumer's head line and vice versa. Parking is two-phase to
// avoid lost wakeups: a side that finds the ring empty (consumer) or
// full (producer) publishes a "sleeping" flag, re-checks the
// condition, and only then blocks on a buffered signal channel; the
// opposite side checks the flag after every position publish and
// posts a token when it is set. Because both the condition re-check
// and the flag check happen after sequentially consistent atomic
// publishes, one of the two sides always observes the other's write.
// Spurious wakeups are possible (the channel holds at most one stale
// token) and harmless — both loops re-check their condition.
//
// The contract is strictly SPSC: exactly one goroutine may push and
// exactly one may pop. Close belongs to the producer side; after
// Close, Pop drains the remaining items and then reports completion.
package spsc

import "sync/atomic"

// cacheLine is the assumed coherence granularity used to pad the
// producer- and consumer-owned counters apart (64 bytes on every
// platform this runs on; a wrong guess costs performance, not
// correctness).
const cacheLine = 64

// Ring is a bounded SPSC queue of T with park/unpark blocking.
// The zero value is not usable; call New.
type Ring[T any] struct {
	buf  []T
	mask uint64

	_    [cacheLine]byte
	head atomic.Uint64 // consumer position: next slot to pop
	_    [cacheLine - 8]byte
	tail atomic.Uint64 // producer position: next slot to push
	_    [cacheLine - 8]byte

	closed atomic.Bool

	consumerParked atomic.Bool
	producerParked atomic.Bool
	wakeConsumer   chan struct{} // capacity 1
	wakeProducer   chan struct{} // capacity 1
}

// New returns a ring holding at least capacity items (rounded up to a
// power of two so slot indexing is a mask, not a modulo).
func New[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring[T]{
		buf:          make([]T, n),
		mask:         uint64(n - 1),
		wakeConsumer: make(chan struct{}, 1),
		wakeProducer: make(chan struct{}, 1),
	}
}

// Cap returns the ring capacity in items.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the current queue depth. It is exact from within either
// the producer or the consumer goroutine; from anywhere else it is a
// racy snapshot (good enough for high-water marks).
func (r *Ring[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Full reports whether a push right now would block. Producer-side
// calls are conservative: the consumer may free a slot concurrently,
// so Full may report true for a push that would in fact succeed —
// never the reverse.
func (r *Ring[T]) Full() bool {
	t := r.tail.Load()
	return t-r.head.Load() >= uint64(len(r.buf))
}

// TryPush appends v without blocking; it reports false when the ring
// is full. Producer goroutine only.
func (r *Ring[T]) TryPush(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	if r.consumerParked.Load() {
		r.consumerParked.Store(false)
		select {
		case r.wakeConsumer <- struct{}{}:
		default:
		}
	}
	return true
}

// Push appends v, parking the producer only while the ring is full.
// Producer goroutine only; must not be called after Close.
func (r *Ring[T]) Push(v T) {
	for {
		if r.TryPush(v) {
			return
		}
		// Publish intent to sleep, then re-check: either we see the
		// consumer's head advance here, or the consumer sees the flag
		// after advancing and posts a token.
		r.producerParked.Store(true)
		if !r.Full() {
			r.producerParked.Store(false)
			continue
		}
		<-r.wakeProducer
	}
}

// TryPop removes the oldest item without blocking. ok is false when
// the ring is currently empty (closed or not). Consumer goroutine
// only.
func (r *Ring[T]) TryPop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return v, false
	}
	slot := &r.buf[h&r.mask]
	v = *slot
	var zero T
	*slot = zero // release the reference; the slot may sit idle for long
	r.head.Store(h + 1)
	if r.producerParked.Load() {
		r.producerParked.Store(false)
		select {
		case r.wakeProducer <- struct{}{}:
		default:
		}
	}
	return v, true
}

// Pop removes the oldest item, parking the consumer while the ring is
// empty. ok is false only when the ring is closed and fully drained —
// the consumer's termination signal. Consumer goroutine only.
func (r *Ring[T]) Pop() (v T, ok bool) {
	for {
		if v, ok = r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Close happens after the producer's final push; one more
			// poll after observing closed cannot miss a trailing item.
			if v, ok = r.TryPop(); ok {
				return v, true
			}
			return v, false
		}
		r.consumerParked.Store(true)
		if r.head.Load() != r.tail.Load() || r.closed.Load() {
			r.consumerParked.Store(false)
			continue
		}
		<-r.wakeConsumer
	}
}

// PopBatch fills dst with up to len(dst) items, publishing the head
// advance once for the whole run — the consumer-side analogue of
// batched publishing. It never blocks; n is 0 when the ring is empty.
// Consumer goroutine only.
func (r *Ring[T]) PopBatch(dst []T) (n int) {
	h := r.head.Load()
	avail := r.tail.Load() - h
	if avail == 0 {
		return 0
	}
	n = len(dst)
	if uint64(n) > avail {
		n = int(avail)
	}
	var zero T
	for i := 0; i < n; i++ {
		slot := &r.buf[(h+uint64(i))&r.mask]
		dst[i] = *slot
		*slot = zero
	}
	r.head.Store(h + uint64(n))
	if r.producerParked.Load() {
		r.producerParked.Store(false)
		select {
		case r.wakeProducer <- struct{}{}:
		default:
		}
	}
	return n
}

// Close marks the stream complete. Producer goroutine only; pushing
// after Close is a contract violation. The consumer drains whatever
// is still buffered and then sees Pop return ok == false.
func (r *Ring[T]) Close() {
	r.closed.Store(true)
	if r.consumerParked.Load() {
		r.consumerParked.Store(false)
		select {
		case r.wakeConsumer <- struct{}{}:
		default:
		}
	}
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }
