package spsc

import (
	"sync"
	"testing"
	"time"
)

// TestFIFOOrder pins the basic contract: a closed stream of N pushes
// pops as exactly the same N values in order.
func TestFIFOOrder(t *testing.T) {
	r := New[int](8)
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			r.Push(i)
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Pop()
		if !ok {
			t.Fatalf("ring closed after %d of %d items", i, n)
		}
		if v != i {
			t.Fatalf("item %d: got %d (reordered or duplicated)", i, v)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatalf("ring yielded an item past the end of the stream")
	}
	wg.Wait()
}

// TestWraparound forces the positions far past the buffer length on a
// tiny ring so slot indexing exercises the mask on every lap.
func TestWraparound(t *testing.T) {
	r := New[uint64](2)
	if r.Cap() != 2 {
		t.Fatalf("cap = %d, want 2", r.Cap())
	}
	const n = 30_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < n; i++ {
			r.Push(i)
		}
		r.Close()
	}()
	var got uint64
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("item %d: got %d", got, v)
		}
		got++
	}
	if got != n {
		t.Fatalf("popped %d items, want %d", got, n)
	}
	<-done
}

// TestCapacityRounding pins the power-of-two rounding.
func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {7, 8}, {8, 8}, {9, 16},
	} {
		if got := New[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestTryPushFull checks the non-blocking producer path: a full ring
// refuses the push and Full reports it, without disturbing contents.
func TestTryPushFull(t *testing.T) {
	r := New[int](2)
	if !r.TryPush(1) || !r.TryPush(2) {
		t.Fatalf("pushes into empty ring refused")
	}
	if !r.Full() {
		t.Fatalf("ring with cap items is not Full")
	}
	if r.TryPush(3) {
		t.Fatalf("TryPush succeeded on a full ring")
	}
	if v, ok := r.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = %d,%v want 1,true", v, ok)
	}
	if !r.TryPush(3) {
		t.Fatalf("TryPush refused after a slot freed")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

// TestSlowConsumerParksProducer injects a slow consumer so the
// producer repeatedly finds the ring full and takes the park path;
// every item must still arrive exactly once, in order. Run under
// -race this doubles as the producer-park memory-ordering test.
func TestSlowConsumerParksProducer(t *testing.T) {
	r := New[int](2)
	const n = 300
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			r.Push(i)
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			time.Sleep(time.Millisecond) // let the producer fill and park
		}
		v, ok := r.Pop()
		if !ok {
			t.Fatalf("stream ended at %d of %d", i, n)
		}
		if v != i {
			t.Fatalf("item %d: got %d", i, v)
		}
	}
	<-done
}

// TestSlowProducerParksConsumer is the mirror image: a trickling
// producer forces the consumer through the empty-ring park path.
func TestSlowProducerParksConsumer(t *testing.T) {
	r := New[int](8)
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			if i%8 == 0 {
				time.Sleep(time.Millisecond) // let the consumer drain and park
			}
			r.Push(i)
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Pop()
		if !ok {
			t.Fatalf("stream ended at %d of %d", i, n)
		}
		if v != i {
			t.Fatalf("item %d: got %d", i, v)
		}
	}
}

// TestPopBatch drains with the amortized consumer path and checks the
// stream is intact across batch boundaries.
func TestPopBatch(t *testing.T) {
	r := New[int](16)
	const n = 10_000
	go func() {
		for i := 0; i < n; i++ {
			r.Push(i)
		}
		r.Close()
	}()
	buf := make([]int, 5)
	next := 0
	for {
		k := r.PopBatch(buf)
		if k == 0 {
			if r.Closed() {
				// Trailing items may have landed between the failed
				// PopBatch and the Closed check.
				if k = r.PopBatch(buf); k == 0 {
					break
				}
			} else {
				continue
			}
		}
		for _, v := range buf[:k] {
			if v != next {
				t.Fatalf("item %d: got %d", next, v)
			}
			next++
		}
	}
	if next != n {
		t.Fatalf("popped %d items, want %d", next, n)
	}
}

// TestCloseDrainsTail pins the shutdown contract: items pushed before
// Close are all delivered before Pop reports completion, even when
// the consumer only starts after Close.
func TestCloseDrainsTail(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	r.Close()
	for i := 0; i < 5; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatalf("Pop returned an item after the drained tail")
	}
	if !r.Closed() {
		t.Fatalf("Closed() false after Close")
	}
}

// TestCloseWakesParkedConsumer ensures a consumer parked on an empty
// ring observes Close promptly instead of sleeping forever.
func TestCloseWakesParkedConsumer(t *testing.T) {
	r := New[int](4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := r.Pop(); ok {
			t.Error("Pop returned an item from an empty closed ring")
		}
	}()
	time.Sleep(2 * time.Millisecond) // consumer is (very likely) parked
	r.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("consumer still parked after Close (lost wakeup)")
	}
}

// TestReferenceRelease checks that popped slots do not pin their
// items: after a pop, the slot holds the zero value again. (Keeping
// batch buffers alive through idle ring slots would defeat the
// recycling the detector builds on top.)
func TestReferenceRelease(t *testing.T) {
	r := New[[]int](4)
	r.Push([]int{1, 2, 3})
	if v, ok := r.Pop(); !ok || len(v) != 3 {
		t.Fatalf("Pop = %v,%v", v, ok)
	}
	for i := range r.buf {
		if r.buf[i] != nil {
			t.Fatalf("slot %d still references the popped slice", i)
		}
	}
}
