package objectrace

import (
	"testing"

	"racedet/internal/rt/event"
)

func access(t event.ThreadID, obj int64, slot int32, k event.Kind) event.Access {
	return event.Access{Loc: event.Loc{Obj: event.ObjID(obj), Slot: slot}, Thread: t, Kind: k}
}

func TestOwnershipThenSharedLock(t *testing.T) {
	d := New()
	// Owner initializes, then two threads use a common lock: quiet.
	d.Access(access(0, 1, 0, event.Write))
	for i := 0; i < 4; i++ {
		tid := event.ThreadID(1 + i%2)
		d.MonitorEnter(tid, 100, 1)
		d.Access(access(tid, 1, 0, event.Write))
		d.MonitorExit(tid, 100, 0)
	}
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("reports = %d, want 0", n)
	}
}

func TestObjectGranularityConflatesFields(t *testing.T) {
	// Field 0 written by T1 under lock A; field 1 read by T2 with no
	// lock. Per field this is fine; at object granularity the
	// candidate set empties and a race is reported — the detector's
	// characteristic false positive.
	d := New()
	d.MonitorEnter(1, 100, 1)
	d.Access(access(1, 1, 0, event.Write))
	d.MonitorExit(1, 100, 0)
	d.Access(access(2, 1, 1, event.Read))
	d.MonitorEnter(1, 100, 1)
	d.Access(access(1, 1, 0, event.Write))
	d.MonitorExit(1, 100, 0)
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("object granularity should conflate the fields, got %d reports", n)
	}
}

func TestTrueRaceDetected(t *testing.T) {
	d := New()
	d.Access(access(1, 1, 0, event.Write))
	d.Access(access(2, 1, 0, event.Write))
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("reports = %d, want 1", n)
	}
	if objs := d.RacyObjects(); len(objs) != 1 || objs[0] != 1 {
		t.Fatalf("racy objects = %v", objs)
	}
}

func TestReadOnlySharingQuiet(t *testing.T) {
	d := New()
	d.Access(access(1, 1, 0, event.Read))
	d.Access(access(2, 1, 1, event.Read))
	d.Access(access(3, 1, 0, event.Read))
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("reads only: %d reports", n)
	}
}

func TestDistinctObjectsIndependent(t *testing.T) {
	d := New()
	d.Access(access(1, 1, 0, event.Write))
	d.Access(access(1, 2, 0, event.Write))
	d.Access(access(2, 2, 0, event.Write)) // only object 2 races
	objs := d.RacyObjects()
	if len(objs) != 1 || objs[0] != 2 {
		t.Fatalf("racy objects = %v", objs)
	}
}
