// Package objectrace implements a baseline in the style of Praun and
// Gross's object race detection (OOPSLA 2001), the main efficiency
// comparison point in §9 of the paper.
//
// Object race detection trades precision for speed by detecting races
// at object granularity instead of per memory location: all fields of
// an object share one detection state. It keeps an ownership model
// (first owner, then shared) and an Eraser-style single-common-lock
// candidate set per object. Its coarse granularity is why, on
// programs like hedc, it reports many "races" between unrelated
// fields of the same object that the paper's detector correctly
// distinguishes.
package objectrace

import (
	"fmt"
	"sort"

	"racedet/internal/rt/event"
)

type objState struct {
	owner     event.ThreadID
	shared    bool
	candidate event.Lockset
	anyWrite  bool
	reported  bool
}

// Report is one object-race report.
type Report struct {
	Obj    event.ObjID
	Access event.Access
}

func (r Report) String() string {
	return fmt.Sprintf("OBJECT RACE on %s via %s at %s by %s",
		r.Obj, r.Access.FieldName, r.Access.Pos, r.Access.Thread)
}

// Detector is the object-granularity baseline.
type Detector struct {
	locks *event.LockTracker
	objs  map[event.ObjID]*objState

	reports []Report
	racy    map[event.ObjID]struct{}
}

var _ event.Sink = (*Detector)(nil)

// New returns an empty object-race detector.
func New() *Detector {
	return &Detector{
		locks: event.NewLockTrackerInterned(event.NewInterner()),
		objs:  make(map[event.ObjID]*objState),
		racy:  make(map[event.ObjID]struct{}),
	}
}

// Reports returns the reports in detection order.
func (d *Detector) Reports() []Report { return d.reports }

// RacyObjects returns distinct racy objects, sorted.
func (d *Detector) RacyObjects() []event.ObjID {
	out := make([]event.ObjID, 0, len(d.racy))
	for o := range d.racy {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ThreadStarted implements event.Sink.
func (d *Detector) ThreadStarted(child, parent event.ThreadID) {}

// ThreadFinished implements event.Sink.
func (d *Detector) ThreadFinished(t event.ThreadID) {}

// Joined implements event.Sink (object race detection has no join
// pseudolocks either).
func (d *Detector) Joined(joiner, joinee event.ThreadID) {}

// MonitorEnter implements event.Sink.
func (d *Detector) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	d.locks.MonitorEnter(t, lock, depth)
}

// MonitorExit implements event.Sink.
func (d *Detector) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	d.locks.MonitorExit(t, lock, depth)
}

// Access implements event.Sink: per-object ownership + lockset check.
func (d *Detector) Access(a event.Access) {
	obj := a.Loc.Obj
	st := d.objs[obj]
	if st == nil {
		st = &objState{owner: a.Thread}
		d.objs[obj] = st
	}
	if !st.shared {
		if a.Thread == st.owner {
			return
		}
		st.shared = true
		// Interned tracker: Held returns an immutable canonical set.
		st.candidate = d.locks.Held(a.Thread)
		st.anyWrite = a.Kind == event.Write
	} else {
		st.candidate = st.candidate.Intersect(d.locks.Held(a.Thread))
		st.anyWrite = st.anyWrite || a.Kind == event.Write
	}
	if st.anyWrite && len(st.candidate) == 0 && !st.reported {
		st.reported = true
		a.Locks = d.locks.Held(a.Thread)
		d.reports = append(d.reports, Report{Obj: obj, Access: a})
		d.racy[obj] = struct{}{}
	}
}
