package trie

import (
	"math/rand"
	"testing"

	"racedet/internal/rt/event"
)

// TestPackedEquivalence drives random event streams through the
// per-location detector and the packed multi-location detector and
// asserts they agree on every per-location race verdict. This is the
// key property of §8.2's packing: it is a space representation change,
// not a semantics change.
func TestPackedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		plain := New()
		packed := NewPacked()
		plainRaced := map[event.Loc]bool{}
		packedRaced := map[event.Loc]bool{}

		for i := 0; i < 500; i++ {
			loc := event.Loc{
				Obj:  event.ObjID(rng.Intn(3) + 1),
				Slot: int32(rng.Intn(3)),
			}
			kind := event.Read
			if rng.Intn(2) == 0 {
				kind = event.Write
			}
			n := rng.Intn(3)
			locks := make([]event.ObjID, n)
			for j := range locks {
				locks[j] = event.ObjID(100 + rng.Intn(4))
			}
			e := event.Access{
				Loc:    loc,
				Thread: event.ThreadID(rng.Intn(3)),
				Kind:   kind,
				Locks:  event.NewLockset(locks...),
			}
			r1, _ := plain.Process(e)
			r2, _ := packed.Process(e)
			if r1 {
				plainRaced[loc] = true
			}
			if r2 {
				packedRaced[loc] = true
			}
		}
		for loc := range plainRaced {
			if !packedRaced[loc] {
				t.Fatalf("seed %d: plain raced on %v, packed missed it", seed, loc)
			}
		}
		for loc := range packedRaced {
			if !plainRaced[loc] {
				t.Fatalf("seed %d: packed raced on %v, plain did not", seed, loc)
			}
		}
	}
}

// TestPackedSharesNodesAcrossSlots is the point of the scheme: many
// fields of one object under one locking discipline share one chain.
func TestPackedSharesNodesAcrossSlots(t *testing.T) {
	plain := New()
	packed := NewPacked()
	// 16 fields of object 1, all accessed under locks {100, 200}.
	for slot := int32(0); slot < 16; slot++ {
		e := event.Access{
			Loc:    event.Loc{Obj: 1, Slot: slot},
			Thread: 1,
			Kind:   event.Write,
			Locks:  event.NewLockset(100, 200),
		}
		plain.Process(e)
		packed.Process(e)
	}
	pn := plain.NodeCount()  // 16 tries × 3 nodes
	kn := packed.NodeCount() // 1 trie × 3 nodes
	if kn >= pn {
		t.Fatalf("packed (%d nodes) should be smaller than plain (%d)", kn, pn)
	}
	if kn > 3 {
		t.Errorf("packed nodes = %d, want <= 3 (one shared chain)", kn)
	}
	if packed.LocationCount() != 16 {
		t.Errorf("locations = %d", packed.LocationCount())
	}
}

func TestPackedSlotsDoNotInteract(t *testing.T) {
	d := NewPacked()
	// Slot 0: two threads, no locks (race). Slot 1: single thread.
	d.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 1, Kind: event.Write, Locks: event.Lockset{}})
	d.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 1}, Thread: 2, Kind: event.Write, Locks: event.Lockset{}})
	// Slot 1 by thread 2 only: no race even though slot 0 was touched
	// by thread 1 on the same object.
	race, _ := d.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 1}, Thread: 2, Kind: event.Read, Locks: event.Lockset{}})
	if race {
		t.Fatal("slots must not interact")
	}
	// Slot 0 by thread 2: race.
	race, info := d.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 2, Kind: event.Write, Locks: event.Lockset{}})
	if !race {
		t.Fatal("slot 0 must race")
	}
	if info.PriorThread != 1 {
		t.Errorf("prior thread = %v", info.PriorThread)
	}
}

func TestPackedPruning(t *testing.T) {
	d := NewPacked()
	d.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 1, Kind: event.Read, Locks: event.NewLockset(100, 200)})
	d.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 1, Kind: event.Write, Locks: event.Lockset{}})
	if d.Stats().NodesPruned == 0 {
		t.Error("stronger slot entry should be pruned")
	}
	// The pruned chain is swept only if no other slot occupies it.
	d2 := NewPacked()
	d2.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 1, Kind: event.Read, Locks: event.NewLockset(100)})
	d2.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 1}, Thread: 1, Kind: event.Read, Locks: event.NewLockset(100)})
	before := d2.NodeCount()
	d2.Process(event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 1, Kind: event.Write, Locks: event.Lockset{}})
	after := d2.NodeCount()
	if after != before {
		t.Errorf("chain still hosting slot 1 must survive: %d -> %d", before, after)
	}
}
