package trie

import (
	"testing"

	"racedet/internal/rt/event"
)

// locAcc is acc with an explicit location, for multi-location tests.
func locAcc(obj event.ObjID, t event.ThreadID, kind event.Kind, locks ...event.ObjID) event.Access {
	return event.Access{
		Loc:    event.Loc{Obj: obj, Slot: 0},
		Thread: t,
		Kind:   kind,
		Locks:  event.NewLockset(locks...),
	}
}

func TestBoundedBehavesLikeUnboundedUnderBudget(t *testing.T) {
	// With a generous budget the bounded detector must be bit-identical
	// to the unbounded one: same verdicts, no degradation counters.
	d1, d2 := New(), NewBounded(1<<20)
	events := []event.Access{
		locAcc(1, 1, event.Write, 100),
		locAcc(1, 2, event.Write, 200),
		locAcc(2, 1, event.Read),
		locAcc(2, 2, event.Read),
		locAcc(3, 1, event.Write, 100, 300),
		locAcc(3, 2, event.Write, 100),
	}
	for i, e := range events {
		r1, _ := d1.Process(e)
		r2, _ := d2.Process(e)
		if r1 != r2 {
			t.Fatalf("event %d: unbounded=%v bounded=%v", i, r1, r2)
		}
	}
	s := d2.Stats()
	if s.Collapses != 0 || s.NodesCollapsed != 0 || s.CollapseHits != 0 {
		t.Errorf("under-budget run shows degradation: %+v", s)
	}
}

func TestBoundedCollapseNeverDropsRaces(t *testing.T) {
	// Drive the detector far over a tiny budget, then replay racy pairs
	// on fresh locations and on collapsed ones: every true race that the
	// unbounded detector reports must still be reported.
	d := NewBounded(8)
	// Fatten several locations with distinct-lock accesses so their
	// tries grow past the budget and collapses fire.
	for obj := event.ObjID(1); obj <= 6; obj++ {
		for l := event.ObjID(0); l < 5; l++ {
			d.Process(locAcc(obj, 1, event.Read, 100+l))
		}
	}
	s := d.Stats()
	if s.Collapses == 0 || s.NodesCollapsed == 0 {
		t.Fatalf("budget of 8 nodes never triggered a collapse: %+v", s)
	}

	// A collapsed location must now report a race for ANY access —
	// strictly more reporting than the truth, never less.
	race, info := d.Process(locAcc(1, 1, event.Read))
	if !race {
		t.Fatal("access to collapsed location not reported")
	}
	if info.PriorThread != event.TBot || info.PriorKind != event.Write {
		t.Errorf("collapsed summary should be (t⊥, WRITE): %+v", info)
	}
	if d.Stats().CollapseHits == 0 {
		t.Error("CollapseHits not counted")
	}

	// Genuine races on locations processed after the collapses are
	// still caught exactly.
	d.Process(locAcc(50, 1, event.Write, 100))
	if race, _ := d.Process(locAcc(50, 2, event.Write, 200)); !race {
		t.Fatal("real race missed after collapses")
	}
}

func TestBoundedStaysUnderBudget(t *testing.T) {
	// 8 locations × (root + 4 lock children) = 40 nodes unbounded; a
	// budget of 16 is reachable by collapsing six tries down to their
	// roots (every location keeps at least a root, so the floor is the
	// location count).
	const budget = 16
	d := NewBounded(budget)
	for obj := event.ObjID(1); obj <= 8; obj++ {
		for l := event.ObjID(0); l < 4; l++ {
			d.Process(locAcc(obj, event.ThreadID(1+l%2), event.Read, 100+l))
		}
	}
	if n := d.NodeCount(); n > budget {
		t.Errorf("live nodes %d exceed budget %d after enforcement", n, budget)
	}
	// The internal counter must agree with a fresh walk (accounting in
	// update/sweep/collapse is easy to get wrong silently).
	if d.liveNodes != d.NodeCount() {
		t.Errorf("liveNodes=%d but walk counts %d", d.liveNodes, d.NodeCount())
	}
}

func TestBoundedCollapsesLargestFirst(t *testing.T) {
	d := NewBounded(12)
	// Location 1: fat trie (5 distinct singleton locksets → 6 nodes).
	for l := event.ObjID(0); l < 5; l++ {
		d.Process(locAcc(1, 1, event.Read, 100+l))
	}
	// Locations 2..7: thin tries (1 node each), reaching the budget.
	for obj := event.ObjID(2); obj <= 7; obj++ {
		d.Process(locAcc(obj, 1, event.Read))
	}
	// Push over budget with one more thin location; the fat trie must be
	// the collapse victim while thin ones survive intact.
	d.Process(locAcc(8, 1, event.Read))
	if d.Stats().Collapses == 0 {
		t.Fatal("no collapse at 13 nodes with budget 12")
	}
	if race, _ := d.Process(locAcc(1, 1, event.Read)); !race {
		t.Error("fat location should have been collapsed")
	}
	if race, _ := d.Process(locAcc(2, 1, event.Read)); race {
		t.Error("thin location collapsed although the fat one sufficed")
	}
}
