package trie

import (
	"math/rand"
	"testing"

	"racedet/internal/rt/event"
)

func acc(t event.ThreadID, kind event.Kind, locks ...event.ObjID) event.Access {
	return event.Access{
		Loc:    event.Loc{Obj: 1, Slot: 0},
		Thread: t,
		Kind:   kind,
		Locks:  event.NewLockset(locks...),
	}
}

func TestNoRaceSingleThread(t *testing.T) {
	d := New()
	for i := 0; i < 10; i++ {
		if race, _ := d.Process(acc(1, event.Write)); race {
			t.Fatal("single-thread accesses cannot race")
		}
	}
}

func TestNoRaceCommonLock(t *testing.T) {
	d := New()
	d.Process(acc(1, event.Write, 100))
	if race, _ := d.Process(acc(2, event.Write, 100)); race {
		t.Fatal("common lock prevents the race")
	}
	if race, _ := d.Process(acc(3, event.Write, 100, 200)); race {
		t.Fatal("superset lockset still shares the common lock")
	}
}

func TestNoRaceTwoReads(t *testing.T) {
	d := New()
	d.Process(acc(1, event.Read))
	if race, _ := d.Process(acc(2, event.Read)); race {
		t.Fatal("two reads cannot race")
	}
}

func TestRaceWriteWrite(t *testing.T) {
	d := New()
	d.Process(acc(1, event.Write, 100))
	race, info := d.Process(acc(2, event.Write, 200))
	if !race {
		t.Fatal("disjoint locksets with writes must race")
	}
	if info.PriorThread != 1 {
		t.Errorf("prior thread = %v, want T1", info.PriorThread)
	}
	if !info.PriorLocks.Equal(event.NewLockset(100)) {
		t.Errorf("prior locks = %v", info.PriorLocks)
	}
	if info.PriorKind != event.Write {
		t.Errorf("prior kind = %v", info.PriorKind)
	}
}

func TestRaceReadThenWrite(t *testing.T) {
	d := New()
	d.Process(acc(1, event.Read))
	if race, _ := d.Process(acc(2, event.Write)); !race {
		t.Fatal("read then write by another thread must race")
	}
}

func TestWeaknessFilterCounts(t *testing.T) {
	d := New()
	d.Process(acc(1, event.Write))
	for i := 0; i < 5; i++ {
		d.Process(acc(1, event.Write))      // identical: filtered
		d.Process(acc(1, event.Read))       // weaker exists (write ⊑ read)
		d.Process(acc(1, event.Write, 100)) // superset lockset: filtered
	}
	st := d.Stats()
	if st.WeaknessHits != 15 {
		t.Errorf("weakness hits = %d, want 15", st.WeaknessHits)
	}
}

func TestTBotCollapsing(t *testing.T) {
	d := New()
	// Two threads, same lockset: node collapses to t⊥.
	d.Process(acc(1, event.Read, 100))
	d.Process(acc(2, event.Read, 100))
	// A third thread with the same lockset is now weaker-filtered
	// because t⊥ ⊑ anything.
	before := d.Stats().WeaknessHits
	d.Process(acc(3, event.Read, 100))
	if d.Stats().WeaknessHits != before+1 {
		t.Fatal("t⊥ node should subsume any thread")
	}
	// And a disjoint-lockset write races with the t⊥ node.
	race, info := d.Process(acc(4, event.Write, 200))
	if !race {
		t.Fatal("t⊥ read node vs disjoint write must race")
	}
	if info.PriorThread != event.TBot {
		t.Errorf("prior thread = %v, want t⊥", info.PriorThread)
	}
}

func TestCaseIPruning(t *testing.T) {
	// An access sharing a lock with the subtree must not race and the
	// traversal must prune (NodesVisited stays small).
	d := New()
	d.Process(acc(1, event.Write, 100))
	d.Process(acc(1, event.Write, 100, 200))
	d.Process(acc(1, event.Write, 100, 300))
	if race, _ := d.Process(acc(2, event.Write, 100, 400)); race {
		t.Fatal("lock 100 is shared with every stored access")
	}
}

func TestStrongerPruningAfterUpdate(t *testing.T) {
	d := New()
	d.Process(acc(1, event.Read, 100, 200)) // strong
	d.Process(acc(1, event.Write, 100))     // weaker: should prune the first
	if d.Stats().NodesPruned == 0 {
		t.Error("expected the stronger access to be pruned")
	}
	// The location still behaves correctly afterwards.
	if race, _ := d.Process(acc(2, event.Write, 300)); !race {
		t.Fatal("race lost after pruning")
	}
}

func TestDistinctLocationsIndependent(t *testing.T) {
	d := New()
	a := event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 1, Kind: event.Write, Locks: event.Lockset{}}
	b := event.Access{Loc: event.Loc{Obj: 1, Slot: 1}, Thread: 2, Kind: event.Write, Locks: event.Lockset{}}
	d.Process(a)
	if race, _ := d.Process(b); race {
		t.Fatal("different slots are different locations")
	}
	if d.LocationCount() != 2 {
		t.Errorf("locations = %d", d.LocationCount())
	}
}

// referenceDetector is a brute-force O(N²) oracle: it stores every
// access and answers "does e race with anything so far" by scanning.
type referenceDetector struct {
	history []event.Access
}

func (r *referenceDetector) process(e event.Access) bool {
	race := false
	for _, p := range r.history {
		if event.IsRace(p, e) {
			race = true
			break
		}
	}
	r.history = append(r.history, e)
	return race
}

// TestAgainstReference drives random event streams through the trie
// detector and the quadratic oracle, asserting the per-location
// guarantee of Definition 1: the trie must detect a race on a location
// iff the oracle sees any racing pair there. (The trie may report at a
// different access than the oracle's first hit, so the comparison is
// per location at stream end.)
func TestAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := New()
		refs := map[event.Loc]*referenceDetector{}
		trieRaced := map[event.Loc]bool{}
		refRaced := map[event.Loc]bool{}

		for i := 0; i < 400; i++ {
			loc := event.Loc{Obj: event.ObjID(rng.Intn(3) + 1), Slot: int32(rng.Intn(2))}
			kind := event.Read
			if rng.Intn(2) == 0 {
				kind = event.Write
			}
			n := rng.Intn(3)
			locks := make([]event.ObjID, n)
			for j := range locks {
				locks[j] = event.ObjID(100 + rng.Intn(4))
			}
			e := event.Access{
				Loc:    loc,
				Thread: event.ThreadID(rng.Intn(3)),
				Kind:   kind,
				Locks:  event.NewLockset(locks...),
			}
			if race, _ := d.Process(e); race {
				trieRaced[loc] = true
			}
			ref := refs[loc]
			if ref == nil {
				ref = &referenceDetector{}
				refs[loc] = ref
			}
			if ref.process(e) {
				refRaced[loc] = true
			}
		}

		for loc := range refRaced {
			if !trieRaced[loc] {
				t.Fatalf("seed %d: oracle found a race on %v, trie missed it", seed, loc)
			}
		}
		for loc := range trieRaced {
			if !refRaced[loc] {
				t.Fatalf("seed %d: trie reported a race on %v with no racing pair", seed, loc)
			}
		}
	}
}

// TestNoTBotReportsPreciseThread checks the ablation detector keeps
// exact thread identities.
func TestNoTBotReportsPreciseThread(t *testing.T) {
	d := NewNoTBot()
	d.Process(acc(1, event.Read, 100))
	d.Process(acc(2, event.Read, 100)) // collapses to t⊥ in the node
	race, info := d.Process(acc(3, event.Write, 200))
	if !race {
		t.Fatal("expected race")
	}
	if info.PriorThread == event.TBot {
		t.Errorf("NoTBot detector should recover a precise thread, got t⊥")
	}
	if info.PriorThread != 1 && info.PriorThread != 2 {
		t.Errorf("prior thread = %v", info.PriorThread)
	}
}

func TestNodeCountAndSweep(t *testing.T) {
	d := New()
	d.Process(acc(1, event.Read, 100, 200, 300)) // deep chain
	n1 := d.NodeCount()
	d.Process(acc(1, event.Write)) // root write prunes the chain
	n2 := d.NodeCount()
	if n2 >= n1 {
		t.Errorf("sweep did not shrink the trie: %d -> %d", n1, n2)
	}
}

func TestManyLocksetsShareTriePrefixes(t *testing.T) {
	d := New()
	// All locksets share lock 100; the trie should store them compactly.
	for i := 0; i < 8; i++ {
		d.Process(acc(1, event.Write, 100, event.ObjID(200+i)))
	}
	// 1 root + 1 node for {100} path + 8 leaves = 10 max.
	if n := d.NodeCount(); n > 10 {
		t.Errorf("trie too large: %d nodes", n)
	}
}
