package trie

import (
	"racedet/internal/rt/event"
)

// Packed is the multi-location trie of §8.2: the paper mentions "a
// scheme for packing information for multiple locations into one trie"
// without presenting it. This reconstruction shares one trie per
// *object*: nodes are still labeled with lock identities, but each
// node carries a small per-slot table of (thread, kind) lattice values
// instead of a single pair. Different fields of one object are almost
// always accessed under the same locking discipline, so their lockset
// paths coincide and the per-location node chains collapse into one —
// the space win the paper measured on tsp (7967 nodes for 6562
// locations ≈ 1.2 nodes/location).
//
// Semantics are identical to the per-location Detector: slots never
// interact (the weakness and race checks consult only the accessed
// slot), which the equivalence property test verifies on random
// streams.
type Packed struct {
	tries map[event.ObjID]*pnode
	stats Stats
	locs  map[event.Loc]struct{}

	// intern/pathBuf mirror the per-location Detector: interned report
	// locksets and a reusable traversal path scratch.
	intern  *event.Interner
	pathBuf event.Lockset
}

// pnode is a packed trie node: one lockset path, many locations.
type pnode struct {
	labels []event.ObjID
	kids   []*pnode
	slots  map[int32]slotState
}

type slotState struct {
	thread event.ThreadID
	kind   event.Kind
}

func newPnode() *pnode { return &pnode{} }

func (n *pnode) child(l event.ObjID) *pnode {
	for i, lab := range n.labels {
		if lab == l {
			return n.kids[i]
		}
		if lab > l {
			return nil
		}
	}
	return nil
}

func (n *pnode) ensureChild(l event.ObjID) (*pnode, bool) {
	i := 0
	for i < len(n.labels) && n.labels[i] < l {
		i++
	}
	if i < len(n.labels) && n.labels[i] == l {
		return n.kids[i], false
	}
	c := newPnode()
	n.labels = append(n.labels, 0)
	n.kids = append(n.kids, nil)
	copy(n.labels[i+1:], n.labels[i:])
	copy(n.kids[i+1:], n.kids[i:])
	n.labels[i] = l
	n.kids[i] = c
	return c, true
}

func (n *pnode) slot(s int32) (slotState, bool) {
	st, ok := n.slots[s]
	return st, ok
}

// NewPacked returns an empty packed detector.
func NewPacked() *Packed {
	return &Packed{
		tries:   make(map[event.ObjID]*pnode),
		locs:    make(map[event.Loc]struct{}),
		pathBuf: make(event.Lockset, 0, 64),
	}
}

// SetInterner attaches a lockset interner (see Detector.SetInterner).
func (d *Packed) SetInterner(it *event.Interner) { d.intern = it }

// Clone returns a deep copy for checkpointing (see Detector.Clone);
// the interner is shared for the same append-only reason.
func (d *Packed) Clone() *Packed {
	nd := &Packed{
		tries:   make(map[event.ObjID]*pnode, len(d.tries)),
		stats:   d.stats,
		locs:    make(map[event.Loc]struct{}, len(d.locs)),
		intern:  d.intern,
		pathBuf: make(event.Lockset, 0, cap(d.pathBuf)),
	}
	for loc := range d.locs {
		nd.locs[loc] = struct{}{}
	}
	for obj, root := range d.tries {
		nd.tries[obj] = clonePnode(root)
	}
	return nd
}

func clonePnode(x *pnode) *pnode {
	n := &pnode{}
	if len(x.labels) > 0 {
		n.labels = append([]event.ObjID(nil), x.labels...)
		n.kids = make([]*pnode, len(x.kids))
		for i, k := range x.kids {
			n.kids[i] = clonePnode(k)
		}
	}
	if x.slots != nil {
		n.slots = make(map[int32]slotState, len(x.slots))
		for s, st := range x.slots {
			n.slots[s] = st
		}
	}
	return n
}

func (d *Packed) priorLocks(path event.Lockset) event.Lockset {
	if d.intern != nil {
		return d.intern.Lockset(d.intern.Intern(path))
	}
	return path.Clone()
}

// Stats returns the work counters.
func (d *Packed) Stats() Stats { return d.stats }

// NodeCount returns the number of live trie nodes — the §8.2 space
// metric to compare against the per-location detector.
func (d *Packed) NodeCount() int {
	n := 0
	var walk func(*pnode)
	walk = func(x *pnode) {
		n++
		for _, k := range x.kids {
			walk(k)
		}
	}
	for _, root := range d.tries {
		walk(root)
	}
	return n
}

// LocationCount returns the number of distinct locations with history.
func (d *Packed) LocationCount() int { return len(d.locs) }

// Process runs the §3.2.1 algorithm for one access event against the
// packed representation.
func (d *Packed) Process(e event.Access) (bool, RaceInfo) {
	d.stats.Events++
	root := d.tries[e.Loc.Obj]
	if root == nil {
		root = newPnode()
		d.tries[e.Loc.Obj] = root
		d.stats.NodesAllocated++
	}
	if _, seen := d.locs[e.Loc]; !seen {
		d.locs[e.Loc] = struct{}{}
		d.stats.LocationsStored++
	}
	slot := e.Loc.Slot

	if d.weaker(root, e.Locks, slot, e) {
		d.stats.WeaknessHits++
		return false, RaceInfo{}
	}

	d.stats.RaceChecks++
	race, info := false, RaceInfo{}
	d.raceCheck(root, d.pathBuf[:0], slot, e, &race, &info)
	d.update(root, slot, e)
	if race {
		d.stats.Races++
	}
	return race, info
}

func (d *Packed) weaker(n *pnode, rest event.Lockset, slot int32, e event.Access) bool {
	d.stats.NodesVisited++
	if st, ok := n.slot(slot); ok &&
		event.ThreadLeq(st.thread, e.Thread) && event.KindLeq(st.kind, e.Kind) {
		return true
	}
	for i, l := range rest {
		if c := n.child(l); c != nil {
			if d.weaker(c, rest[i+1:], slot, e) {
				return true
			}
		}
	}
	return false
}

func (d *Packed) raceCheck(n *pnode, path event.Lockset, slot int32, e event.Access, race *bool, info *RaceInfo) {
	if *race {
		return
	}
	d.stats.NodesVisited++
	if st, ok := n.slot(slot); ok {
		tm := event.ThreadMeet(e.Thread, st.thread)
		am := event.KindMeet(e.Kind, st.kind)
		if tm == event.TBot && am == event.Write {
			*race = true
			*info = RaceInfo{
				PriorThread: st.thread,
				PriorLocks:  d.priorLocks(path),
				PriorKind:   st.kind,
			}
			return
		}
	}
	for i, l := range n.labels {
		if e.Locks.Contains(l) {
			continue // Case I
		}
		d.raceCheck(n.kids[i], append(path, l), slot, e, race, info)
		if *race {
			return
		}
	}
}

func (d *Packed) update(root *pnode, slot int32, e event.Access) {
	n := root
	for _, l := range e.Locks {
		c, created := n.ensureChild(l)
		if created {
			d.stats.NodesAllocated++
		}
		n = c
	}
	if n.slots == nil {
		n.slots = make(map[int32]slotState)
	}
	if st, ok := n.slots[slot]; ok {
		n.slots[slot] = slotState{
			thread: event.ThreadMeet(st.thread, e.Thread),
			kind:   event.KindMeet(st.kind, e.Kind),
		}
	} else {
		n.slots[slot] = slotState{thread: e.Thread, kind: e.Kind}
	}

	// Prune stronger entries of the same slot.
	cur := n.slots[slot]
	weak := event.Access{Loc: e.Loc, Thread: cur.thread, Locks: e.Locks, Kind: cur.kind}
	d.prune(root, d.pathBuf[:0], slot, weak, n)
	d.sweep(root)
}

func (d *Packed) prune(x *pnode, path event.Lockset, slot int32, w event.Access, keep *pnode) {
	if x != keep {
		if st, ok := x.slot(slot); ok {
			stored := event.Access{Loc: w.Loc, Thread: st.thread, Locks: path, Kind: st.kind}
			if event.WeakerThan(w, stored) {
				delete(x.slots, slot)
				d.stats.NodesPruned++
			}
		}
	}
	for i, l := range x.labels {
		d.prune(x.kids[i], append(path, l), slot, w, keep)
	}
}

func (d *Packed) sweep(x *pnode) bool {
	outL, outK := x.labels[:0], x.kids[:0]
	for i, k := range x.kids {
		if d.sweep(k) {
			outL = append(outL, x.labels[i])
			outK = append(outK, k)
		}
	}
	x.labels, x.kids = outL, outK
	return len(x.slots) > 0 || len(x.kids) > 0
}
