// Package trie implements the trie-based runtime datarace detection
// algorithm of §3.2 of the paper.
//
// For each memory location the detector keeps an edge-labeled trie.
// Edges are labeled with lock identities (in canonical increasing
// order, so every lockset has a unique path); each node carries thread
// and access-kind lattice values summarizing the accesses whose
// lockset equals the node's path. Internal nodes with no accesses hold
// (t⊤, READ), the identity of the meet.
//
// Processing an access e:
//
//  1. Weakness check: depth-first traversal following only edges
//     labeled with locks in e.L; if any visited node is weaker than e
//     (Definition 2), e is discarded — a previously recorded access
//     already subsumes it for all future races (Theorem 1).
//  2. Race check: depth-first traversal with the three cases of
//     §3.2.1 — prune subtrees that share a lock with e (Case I),
//     report a race when the thread meet is t⊥ and the kind meet is
//     WRITE (Case II), otherwise recurse (Case III).
//  3. Update: meet e into the node for exactly e.L, then prune all
//     stored accesses that are now stronger than the updated node.
package trie

import (
	"sort"

	"racedet/internal/rt/event"
)

// node is one trie node. Edge labels are kept sorted so traversals
// are deterministic and lockset paths are canonical.
type node struct {
	thread event.ThreadID // t⊤ if the node holds no accesses
	kind   event.Kind
	labels []event.ObjID
	kids   []*node
	// collapsed marks a root whose history was discarded under memory
	// pressure (bounded mode). The location degrades to the weakest
	// possible summary — (t⊥, WRITE, ∅) — so every later access to it
	// conservatively reports a race: the detector may over-report after
	// a collapse but can never silently drop a race.
	collapsed bool
}

func newNode() *node { return &node{thread: event.TTop, kind: event.Read} }

// hasAccess reports whether the node summarizes at least one access.
func (n *node) hasAccess() bool { return n.thread != event.TTop }

// clear resets the node to the no-access state.
func (n *node) clear() {
	n.thread = event.TTop
	n.kind = event.Read
}

// child returns the child along label l, or nil.
func (n *node) child(l event.ObjID) *node {
	for i, lab := range n.labels {
		if lab == l {
			return n.kids[i]
		}
		if lab > l {
			return nil
		}
	}
	return nil
}

// ensureChild returns the child along label l, creating it in sorted
// position if needed; created reports whether a new node was made.
func (n *node) ensureChild(l event.ObjID) (c *node, created bool) {
	i := 0
	for i < len(n.labels) && n.labels[i] < l {
		i++
	}
	if i < len(n.labels) && n.labels[i] == l {
		return n.kids[i], false
	}
	c = newNode()
	n.labels = append(n.labels, 0)
	n.kids = append(n.kids, nil)
	copy(n.labels[i+1:], n.labels[i:])
	copy(n.kids[i+1:], n.kids[i:])
	n.labels[i] = l
	n.kids[i] = c
	return c, true
}

// RaceInfo describes the stored prior access that a new access races
// with. Thread is t⊥ when the identity was collapsed (§3.1 explains
// why the earlier thread cannot always be reported).
type RaceInfo struct {
	PriorThread event.ThreadID
	PriorLocks  event.Lockset
	PriorKind   event.Kind
}

// Stats counts detector work; the Table 2 harness reports them as the
// deterministic complement to wall-clock time.
type Stats struct {
	Events          uint64 // accesses reaching the trie layer
	WeaknessHits    uint64 // filtered because a weaker access existed
	RaceChecks      uint64 // accesses that ran the full race traversal
	NodesVisited    uint64 // total trie nodes touched by traversals
	Races           uint64 // Case II hits
	NodesAllocated  uint64
	NodesPruned     uint64 // stronger accesses removed after updates
	LocationsStored uint64 // distinct locations with a trie

	// Bounded-mode degradation counters (zero in unbounded mode).
	// Collapses counts locations whose history was discarded under the
	// node budget; NodesCollapsed counts the trie nodes freed by those
	// collapses; CollapseHits counts accesses answered by a collapsed
	// root (each conservatively reported as racing). Together they
	// quantify by how much the detector may be over-reporting.
	Collapses      uint64
	NodesCollapsed uint64
	CollapseHits   uint64
}

// Detector is the per-program trie detector: one trie per location.
type Detector struct {
	tries map[event.Loc]*node
	stats Stats

	// UseTBot controls the t⊥ space optimization. The paper always
	// uses it; disabling it (ablation) stores a set of thread IDs per
	// node instead, which lets the detector always report the precise
	// earlier thread at the cost of space.
	UseTBot bool
	threads map[*node]map[event.ThreadID]struct{} // only when !UseTBot

	// maxNodes caps live trie nodes (0 = unbounded). When the budget
	// is exceeded, whole per-location tries are collapsed — largest
	// first — to a single root summarizing "some prior conflicting
	// access" (t⊥, WRITE, ∅). See node.collapsed.
	maxNodes  int
	liveNodes int

	// intern, when set, supplies immutable canonical locksets for race
	// reports so PriorLocks needs no defensive clone. pathBuf is the
	// reusable traversal scratch for raceCheck/prune paths.
	intern  *event.Interner
	pathBuf event.Lockset
}

// New returns an empty detector with the paper's configuration.
func New() *Detector {
	return &Detector{
		tries:   make(map[event.Loc]*node),
		UseTBot: true,
		pathBuf: make(event.Lockset, 0, 64),
	}
}

// SetInterner attaches a lockset interner. Reported PriorLocks are
// then interned canonical slices (immutable, shared) instead of
// per-report clones.
func (d *Detector) SetInterner(it *event.Interner) { d.intern = it }

// priorLocks materializes a traversal path for a race report. The
// traversal scratch buffer is reused across events, so the escaping
// copy must be either interned or cloned.
func (d *Detector) priorLocks(path event.Lockset) event.Lockset {
	if d.intern != nil {
		return d.intern.Lockset(d.intern.Intern(path))
	}
	return path.Clone()
}

// Clone returns a deep copy of the detector for checkpointing: the
// sharded back end's supervisor snapshots each worker's history
// between messages and restores it after a worker panic. The attached
// interner is shared, not copied — it is content-addressed and append-
// only, so entries added by a later-discarded execution attempt can
// never change what any future Intern call returns.
func (d *Detector) Clone() *Detector {
	nd := &Detector{
		tries:     make(map[event.Loc]*node, len(d.tries)),
		stats:     d.stats,
		UseTBot:   d.UseTBot,
		maxNodes:  d.maxNodes,
		liveNodes: d.liveNodes,
		intern:    d.intern,
		pathBuf:   make(event.Lockset, 0, cap(d.pathBuf)),
	}
	if !d.UseTBot {
		nd.threads = make(map[*node]map[event.ThreadID]struct{}, len(d.threads))
	}
	for loc, root := range d.tries {
		nd.tries[loc] = d.cloneNode(root, nd)
	}
	return nd
}

// cloneNode deep-copies a subtree, carrying the NoTBot thread sets
// over to the clone's table keyed by the new nodes.
func (d *Detector) cloneNode(x *node, dst *Detector) *node {
	n := &node{thread: x.thread, kind: x.kind, collapsed: x.collapsed}
	if len(x.labels) > 0 {
		n.labels = append([]event.ObjID(nil), x.labels...)
		n.kids = make([]*node, len(x.kids))
		for i, k := range x.kids {
			n.kids[i] = d.cloneNode(k, dst)
		}
	}
	if !d.UseTBot {
		if set := d.threads[x]; set != nil {
			ns := make(map[event.ThreadID]struct{}, len(set))
			for t := range set {
				ns[t] = struct{}{}
			}
			dst.threads[n] = ns
		}
	}
	return n
}

// NewNoTBot returns a detector that keeps exact thread sets per node
// (the t⊥ ablation).
func NewNoTBot() *Detector {
	d := New()
	d.UseTBot = false
	d.threads = make(map[*node]map[event.ThreadID]struct{})
	return d
}

// NewBounded returns a detector whose history is capped at maxNodes
// live trie nodes. Under the cap the behavior is identical to New;
// over it, per-location histories are collapsed to a conservative
// summary and the affected locations report strictly more races, never
// fewer (degradation is graceful and quantified in Stats).
func NewBounded(maxNodes int) *Detector {
	d := New()
	d.maxNodes = maxNodes
	return d
}

// Stats returns a copy of the work counters.
func (d *Detector) Stats() Stats { return d.stats }

// NodeCount returns the total number of live trie nodes (space
// metric, compare with the paper's 7967 trie nodes for tsp).
func (d *Detector) NodeCount() int {
	n := 0
	var walk func(*node)
	walk = func(x *node) {
		n++
		for _, k := range x.kids {
			walk(k)
		}
	}
	for _, root := range d.tries {
		walk(root)
	}
	return n
}

// LocationCount returns the number of distinct locations with history.
func (d *Detector) LocationCount() int { return len(d.tries) }

// Process runs the full §3.2.1 algorithm on one access event. It
// returns (race, info) where race reports whether e races with some
// stored access; info describes the prior access.
//
// The caller is responsible for lockset canonicalization (e.Locks
// sorted, duplicate-free).
func (d *Detector) Process(e event.Access) (bool, RaceInfo) {
	d.stats.Events++
	root := d.tries[e.Loc]
	if root == nil {
		root = newNode()
		d.tries[e.Loc] = root
		d.stats.NodesAllocated++
		d.stats.LocationsStored++
		d.liveNodes++
	}

	// Collapsed location (bounded mode): the discarded history is
	// summarized as "a conflicting access by some other thread with no
	// common lock", so every access conservatively races. Never a
	// silent miss — at worst an over-report, counted in CollapseHits.
	if root.collapsed {
		d.stats.CollapseHits++
		d.stats.Races++
		return true, RaceInfo{PriorThread: event.TBot, PriorLocks: event.Lockset{}, PriorKind: event.Write}
	}

	// 1. Weakness check.
	if d.weaker(root, e.Locks, e) {
		d.stats.WeaknessHits++
		return false, RaceInfo{}
	}

	// 2. Race check.
	d.stats.RaceChecks++
	race, info := false, RaceInfo{}
	d.raceCheck(root, d.pathBuf[:0], e, &race, &info)

	// 3. Update and prune.
	d.update(root, e)

	// 4. Bounded mode: stay under the node budget by collapsing the
	// fattest histories.
	if d.maxNodes > 0 && d.liveNodes > d.maxNodes {
		d.enforceBudget()
	}

	if race {
		d.stats.Races++
	}
	return race, info
}

// subtreeSize counts the nodes of a (sub)trie.
func subtreeSize(x *node) int {
	n := 1
	for _, k := range x.kids {
		n += subtreeSize(k)
	}
	return n
}

// enforceBudget collapses per-location histories, largest first, until
// the live node count is back under the budget. Collapsing replaces a
// trie with a single root holding the weakest summary (t⊥, WRITE, ∅):
// sound for Definition 1 reporting because the summary is weaker than
// everything it replaced — any future access that would have raced
// with the discarded history also "races" with the summary.
func (d *Detector) enforceBudget() {
	type fat struct {
		loc  event.Loc
		size int
	}
	var tries []fat
	for loc, root := range d.tries {
		if !root.collapsed {
			tries = append(tries, fat{loc, subtreeSize(root)})
		}
	}
	// Largest first; ties broken by location so the map iteration
	// order above cannot leak into behavior (replay determinism).
	sort.Slice(tries, func(i, j int) bool {
		if tries[i].size != tries[j].size {
			return tries[i].size > tries[j].size
		}
		if tries[i].loc.Obj != tries[j].loc.Obj {
			return tries[i].loc.Obj < tries[j].loc.Obj
		}
		return tries[i].loc.Slot < tries[j].loc.Slot
	})
	for _, f := range tries {
		if d.liveNodes <= d.maxNodes {
			return
		}
		d.collapse(d.tries[f.loc], f.size)
	}
}

// collapse discards root's history, freeing size-1 nodes.
func (d *Detector) collapse(root *node, size int) {
	if !d.UseTBot {
		d.dropThreadSets(root)
	}
	root.labels, root.kids = nil, nil
	root.thread = event.TBot
	root.kind = event.Write
	root.collapsed = true
	d.liveNodes -= size - 1
	d.stats.Collapses++
	d.stats.NodesCollapsed += uint64(size - 1)
}

// dropThreadSets removes the subtree's entries from the NoTBot thread
// table so collapsed nodes do not leak.
func (d *Detector) dropThreadSets(x *node) {
	delete(d.threads, x)
	for _, k := range x.kids {
		d.dropThreadSets(k)
	}
}

// weaker reports whether some stored access weaker than e exists. It
// walks only edges labeled with locks in rest (a suffix of e.Locks in
// canonical order), so every visited node's lockset is a subset of
// e.Locks.
func (d *Detector) weaker(n *node, rest event.Lockset, e event.Access) bool {
	d.stats.NodesVisited++
	if n.hasAccess() && event.ThreadLeq(n.thread, e.Thread) && event.KindLeq(n.kind, e.Kind) {
		return true
	}
	for i, l := range rest {
		if c := n.child(l); c != nil {
			if d.weaker(c, rest[i+1:], e) {
				return true
			}
		}
	}
	return false
}

// raceCheck performs the Case I/II/III traversal. path is the lockset
// along the way (for reporting).
func (d *Detector) raceCheck(n *node, path event.Lockset, e event.Access, race *bool, info *RaceInfo) {
	if *race {
		return
	}
	d.stats.NodesVisited++
	// Case II at this node?
	if n.hasAccess() {
		tm := event.ThreadMeet(e.Thread, n.thread)
		am := event.KindMeet(e.Kind, n.kind)
		if tm == event.TBot && am == event.Write {
			*race = true
			*info = RaceInfo{
				PriorThread: d.reportableThread(n, e.Thread),
				PriorLocks:  d.priorLocks(path),
				PriorKind:   n.kind,
			}
			return
		}
	}
	// Case III: traverse children, skipping Case I subtrees.
	for i, l := range n.labels {
		if e.Locks.Contains(l) {
			continue // Case I: shares a lock with everything below
		}
		d.raceCheck(n.kids[i], append(path, l), e, race, info)
		if *race {
			return
		}
	}
}

// reportableThread returns the prior thread to include in the report.
// With the t⊥ optimization the stored value may already be t⊥; the
// ablation detector recovers a precise thread distinct from cur.
func (d *Detector) reportableThread(n *node, cur event.ThreadID) event.ThreadID {
	if d.UseTBot || n.thread != event.TBot {
		return n.thread
	}
	for t := range d.threads[n] {
		if t != cur {
			return t
		}
	}
	return event.TBot
}

// update meets e into the node for exactly e.Locks and prunes stored
// accesses that the updated node makes redundant.
func (d *Detector) update(root *node, e event.Access) {
	n := root
	for _, l := range e.Locks {
		c, created := n.ensureChild(l)
		if created {
			d.stats.NodesAllocated++
			d.liveNodes++
		}
		n = c
	}
	if !n.hasAccess() {
		n.thread = e.Thread
		n.kind = e.Kind
	} else {
		n.thread = event.ThreadMeet(n.thread, e.Thread)
		n.kind = event.KindMeet(n.kind, e.Kind)
	}
	if !d.UseTBot {
		set := d.threads[n]
		if set == nil {
			set = make(map[event.ThreadID]struct{})
			d.threads[n] = set
		}
		set[e.Thread] = struct{}{}
	}

	// Prune accesses stronger than the updated node: every stored
	// access p with n ⊑ p (n weaker) can be dropped. Such p live at
	// nodes whose path is a superset of e.Locks, i.e. in the subtree
	// reachable from root via supersets — we walk the whole trie and
	// match Definition 2 per node.
	weak := event.Access{Loc: e.Loc, Thread: n.thread, Locks: e.Locks, Kind: n.kind}
	d.prune(root, d.pathBuf[:0], weak, n)
	d.sweep(root)
}

// prune clears nodes holding accesses stronger than w (skipping keep,
// the node just updated).
func (d *Detector) prune(x *node, path event.Lockset, w event.Access, keep *node) {
	if x != keep && x.hasAccess() {
		stored := event.Access{Loc: w.Loc, Thread: x.thread, Locks: path, Kind: x.kind}
		if event.WeakerThan(w, stored) {
			x.clear()
			if !d.UseTBot {
				delete(d.threads, x)
			}
			d.stats.NodesPruned++
		}
	}
	// A full walk is simple and the per-location tries are small;
	// WeakerThan's subset check rejects non-superset paths anyway.
	for i, l := range x.labels {
		d.prune(x.kids[i], append(path, l), w, keep)
	}
}

// sweep removes childless no-access nodes bottom-up.
func (d *Detector) sweep(x *node) bool {
	outL, outK := x.labels[:0], x.kids[:0]
	for i, k := range x.kids {
		if d.sweep(k) {
			outL = append(outL, x.labels[i])
			outK = append(outK, k)
		} else {
			d.liveNodes--
		}
	}
	x.labels, x.kids = outL, outK
	return x.hasAccess() || len(x.kids) > 0
}
