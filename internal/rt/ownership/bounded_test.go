package ownership

import (
	"testing"

	"racedet/internal/rt/event"
)

func TestBoundedOverflowForwardsAsShared(t *testing.T) {
	tb := NewBounded(2)
	l1 := event.Loc{Obj: 1}
	l2 := event.Loc{Obj: 2}
	l3 := event.Loc{Obj: 3}

	// Tracked locations behave exactly as in the unbounded table.
	if fwd, _ := tb.Filter(1, l1); fwd {
		t.Fatal("first access to a tracked location must be absorbed")
	}
	if fwd, _ := tb.Filter(1, l2); fwd {
		t.Fatal("first access to a tracked location must be absorbed")
	}

	// The third location overflows: every access forwards, starting
	// with the very first — the filter may never absorb an access it
	// cannot track, or it could silently hide a race.
	fwd, became := tb.Filter(1, l3)
	if !fwd || became {
		t.Fatalf("overflow access: forward=%v becameShared=%v, want true,false", fwd, became)
	}
	if fwd, _ := tb.Filter(2, l3); !fwd {
		t.Fatal("later overflow accesses must keep forwarding")
	}
	if tb.Overflows() != 2 {
		t.Errorf("Overflows = %d, want 2", tb.Overflows())
	}
	if tb.StateOf(l3) != Unowned {
		t.Errorf("overflow location must stay untracked, state = %v", tb.StateOf(l3))
	}

	// Tracked locations still transition normally after overflow.
	fwd, became = tb.Filter(2, l1)
	if !fwd || !became {
		t.Errorf("tracked owned→shared transition broken: %v %v", fwd, became)
	}
}

func TestUnboundedNeverOverflows(t *testing.T) {
	tb := New()
	for i := 0; i < 1000; i++ {
		tb.Filter(1, event.Loc{Obj: event.ObjID(i)})
	}
	if tb.Overflows() != 0 {
		t.Fatalf("unbounded table overflowed: %d", tb.Overflows())
	}
	if tb.Locations() != 1000 {
		t.Fatalf("Locations = %d, want 1000", tb.Locations())
	}
}
