package ownership

import (
	"testing"

	"racedet/internal/rt/event"
)

func loc(o int64) event.Loc { return event.Loc{Obj: event.ObjID(o), Slot: 0} }

func TestStateMachine(t *testing.T) {
	tb := New()
	l := loc(1)
	if tb.StateOf(l) != Unowned {
		t.Fatal("fresh location must be unowned")
	}

	// First access claims ownership; forwarded = false.
	fwd, became := tb.Filter(1, l)
	if fwd || became {
		t.Fatalf("first access: fwd=%v became=%v", fwd, became)
	}
	if tb.StateOf(l) != Owned {
		t.Fatal("should be owned")
	}

	// Owner keeps accessing quietly.
	for i := 0; i < 5; i++ {
		fwd, became = tb.Filter(1, l)
		if fwd || became {
			t.Fatal("owner accesses must be absorbed")
		}
	}

	// Second thread: shared transition, both flags set.
	fwd, became = tb.Filter(2, l)
	if !fwd || !became {
		t.Fatalf("transition: fwd=%v became=%v", fwd, became)
	}
	if tb.StateOf(l) != Shared {
		t.Fatal("should be shared")
	}

	// Everyone (including the old owner) is forwarded afterwards.
	for _, tid := range []event.ThreadID{1, 2, 3} {
		fwd, became = tb.Filter(tid, l)
		if !fwd || became {
			t.Fatalf("post-share %v: fwd=%v became=%v", tid, fwd, became)
		}
	}
	if tb.Transitions() != 1 {
		t.Errorf("transitions = %d", tb.Transitions())
	}
}

func TestLocationsIndependent(t *testing.T) {
	tb := New()
	tb.Filter(1, loc(1))
	tb.Filter(2, loc(2))
	if tb.StateOf(loc(1)) != Owned || tb.StateOf(loc(2)) != Owned {
		t.Fatal("distinct locations share state")
	}
	tb.Filter(2, loc(1))
	if tb.StateOf(loc(1)) != Shared {
		t.Fatal("loc1 should be shared")
	}
	if tb.StateOf(loc(2)) != Owned {
		t.Fatal("loc2 must be unaffected")
	}
	if tb.Locations() != 2 {
		t.Errorf("locations = %d", tb.Locations())
	}
}

func TestSharedCount(t *testing.T) {
	tb := New()
	for i := int64(1); i <= 4; i++ {
		tb.Filter(1, loc(i))
	}
	tb.Filter(2, loc(1))
	tb.Filter(2, loc(2))
	if tb.SharedCount() != 2 {
		t.Errorf("shared count = %d, want 2", tb.SharedCount())
	}
}

func TestStateString(t *testing.T) {
	// The states are also used in diagnostics; make sure they're
	// distinct values.
	if Unowned == Owned || Owned == Shared {
		t.Fatal("states must be distinct")
	}
}

func TestOnContactFiresOncePerTransition(t *testing.T) {
	tb := New()
	var contacts []event.Loc
	tb.SetOnContact(func(l event.Loc) { contacts = append(contacts, l) })

	tb.Filter(1, loc(1)) // claim
	tb.Filter(1, loc(1)) // owner re-access: no contact
	if len(contacts) != 0 {
		t.Fatalf("contact fired before any transition: %v", contacts)
	}
	tb.Filter(2, loc(1)) // owned→shared: contact
	if len(contacts) != 1 || contacts[0] != loc(1) {
		t.Fatalf("contacts = %v, want exactly [loc1]", contacts)
	}
	tb.Filter(3, loc(1)) // already shared: no second contact
	tb.Filter(1, loc(1))
	if len(contacts) != 1 {
		t.Fatalf("contact fired on an already-shared location: %v", contacts)
	}
}

func TestOnContactNotFiredOnOverflow(t *testing.T) {
	tb := NewBounded(1)
	fired := 0
	tb.SetOnContact(func(event.Loc) { fired++ })
	tb.Filter(1, loc(1)) // tracked
	tb.Filter(1, loc(2)) // overflow: born shared, no transition
	tb.Filter(2, loc(2)) // still no transition
	if fired != 0 {
		t.Fatalf("contact fired %d times for overflow traffic, want 0", fired)
	}
	tb.Filter(2, loc(1))
	if fired != 1 {
		t.Fatalf("tracked location transition fired %d times, want 1", fired)
	}
}

func TestCloneDropsOnContact(t *testing.T) {
	tb := New()
	fired := 0
	tb.SetOnContact(func(event.Loc) { fired++ })
	tb.Filter(1, loc(1))
	cl := tb.Clone()
	cl.Filter(2, loc(1)) // transition in the clone must not notify the live run
	if fired != 0 {
		t.Fatalf("clone transition fired the original's callback")
	}
}
