package ownership

import (
	"testing"

	"racedet/internal/rt/event"
)

func loc(o int64) event.Loc { return event.Loc{Obj: event.ObjID(o), Slot: 0} }

func TestStateMachine(t *testing.T) {
	tb := New()
	l := loc(1)
	if tb.StateOf(l) != Unowned {
		t.Fatal("fresh location must be unowned")
	}

	// First access claims ownership; forwarded = false.
	fwd, became := tb.Filter(1, l)
	if fwd || became {
		t.Fatalf("first access: fwd=%v became=%v", fwd, became)
	}
	if tb.StateOf(l) != Owned {
		t.Fatal("should be owned")
	}

	// Owner keeps accessing quietly.
	for i := 0; i < 5; i++ {
		fwd, became = tb.Filter(1, l)
		if fwd || became {
			t.Fatal("owner accesses must be absorbed")
		}
	}

	// Second thread: shared transition, both flags set.
	fwd, became = tb.Filter(2, l)
	if !fwd || !became {
		t.Fatalf("transition: fwd=%v became=%v", fwd, became)
	}
	if tb.StateOf(l) != Shared {
		t.Fatal("should be shared")
	}

	// Everyone (including the old owner) is forwarded afterwards.
	for _, tid := range []event.ThreadID{1, 2, 3} {
		fwd, became = tb.Filter(tid, l)
		if !fwd || became {
			t.Fatalf("post-share %v: fwd=%v became=%v", tid, fwd, became)
		}
	}
	if tb.Transitions() != 1 {
		t.Errorf("transitions = %d", tb.Transitions())
	}
}

func TestLocationsIndependent(t *testing.T) {
	tb := New()
	tb.Filter(1, loc(1))
	tb.Filter(2, loc(2))
	if tb.StateOf(loc(1)) != Owned || tb.StateOf(loc(2)) != Owned {
		t.Fatal("distinct locations share state")
	}
	tb.Filter(2, loc(1))
	if tb.StateOf(loc(1)) != Shared {
		t.Fatal("loc1 should be shared")
	}
	if tb.StateOf(loc(2)) != Owned {
		t.Fatal("loc2 must be unaffected")
	}
	if tb.Locations() != 2 {
		t.Errorf("locations = %d", tb.Locations())
	}
}

func TestSharedCount(t *testing.T) {
	tb := New()
	for i := int64(1); i <= 4; i++ {
		tb.Filter(1, loc(i))
	}
	tb.Filter(2, loc(1))
	tb.Filter(2, loc(2))
	if tb.SharedCount() != 2 {
		t.Errorf("shared count = %d, want 2", tb.SharedCount())
	}
}

func TestStateString(t *testing.T) {
	// The states are also used in diagnostics; make sure they're
	// distinct values.
	if Unowned == Owned || Owned == Shared {
		t.Fatal("states must be distinct")
	}
}
