// Package ownership implements the ownership model of §2.3/§7: the
// first thread to touch a location owns it, and accesses by the owner
// are invisible to the detector until a second thread touches the
// location, at which point it becomes shared and all subsequent
// accesses flow through.
//
// This approximates the happened-before ordering created by thread
// start: the common idiom of a parent initializing data and handing it
// to a child produces no false races, without tracking start edges.
package ownership

import "racedet/internal/rt/event"

// State is the ownership state of a location.
type State int8

// Ownership states.
const (
	Unowned State = iota // never accessed
	Owned                // accessed by exactly one thread so far
	Shared               // accessed by at least two threads
)

// sharedOwner is the in-table marker for the shared state; it keeps
// the table a single map so the per-access path does one lookup.
const sharedOwner event.ThreadID = -9

// Table tracks per-location owners.
type Table struct {
	owner       map[event.Loc]event.ThreadID
	transitions uint64

	// maxLocations caps the table (0 = unbounded). Locations that
	// arrive once the table is full are never tracked: they behave as
	// immediately shared, so every access flows to the detector. The
	// filter loses its benefit for those locations but can never absorb
	// a racing access — degradation is strictly more reporting.
	maxLocations int
	overflows    uint64

	// onContact, when set, is invoked synchronously on every
	// owned→shared transition — the moment a second thread first
	// touches a location. The sampling layer uses it to re-arm
	// throttled sites (see internal/rt/sitestate); overflow locations
	// never fire it (they are born shared, no transition happens).
	onContact func(event.Loc)
}

// initialLocations pre-sizes the owner map. Growing a Go map to n
// entries through incremental doubling allocates roughly twice the
// final bucket footprint in garbage; on the paper benchmarks the
// ownership table was the single largest allocation site (44% of
// bytes on tsp), so starting at a realistic size is an easy win — a
// few KB of fixed cost for small programs, half the table garbage for
// big ones.
const initialLocations = 1 << 10

// New returns an empty ownership table.
func New() *Table {
	return &Table{owner: make(map[event.Loc]event.ThreadID, initialLocations)}
}

// NewBounded returns an ownership table tracking at most maxLocations
// locations; overflow locations are treated as born-shared.
func NewBounded(maxLocations int) *Table {
	t := New()
	t.maxLocations = maxLocations
	return t
}

// Clone returns a deep copy of the table for checkpointing. The
// onContact callback is deliberately not copied: a checkpoint is
// passive state and must not fire notifications into the live run.
func (tb *Table) Clone() *Table {
	nt := &Table{
		owner:        make(map[event.Loc]event.ThreadID, len(tb.owner)),
		transitions:  tb.transitions,
		maxLocations: tb.maxLocations,
		overflows:    tb.overflows,
	}
	for loc, o := range tb.owner {
		nt.owner[loc] = o
	}
	return nt
}

// Filter processes an access by thread t to loc. It returns true if
// the access must be forwarded to the detector (the location is
// shared), false if the access is absorbed by the ownership model.
// becameShared additionally signals the owned→shared transition so the
// caller can evict the location from all caches (§7.2).
func (tb *Table) Filter(t event.ThreadID, loc event.Loc) (forward, becameShared bool) {
	owner, seen := tb.owner[loc]
	switch {
	case !seen:
		if tb.maxLocations > 0 && len(tb.owner) >= tb.maxLocations {
			// Table full: the location is never tracked and acts as
			// shared from its first access on.
			tb.overflows++
			return true, false
		}
		tb.owner[loc] = t
		return false, false
	case owner == t:
		return false, false
	case owner == sharedOwner:
		return true, false
	default:
		// Second thread: the location becomes shared; this access and
		// all subsequent ones go to the detector.
		tb.owner[loc] = sharedOwner
		tb.transitions++
		if tb.onContact != nil {
			tb.onContact(loc)
		}
		return true, true
	}
}

// SetOnContact installs the owned→shared transition callback.
func (tb *Table) SetOnContact(fn func(event.Loc)) { tb.onContact = fn }

// StateOf reports the current ownership state of loc (tests).
func (tb *Table) StateOf(loc event.Loc) State {
	owner, seen := tb.owner[loc]
	switch {
	case !seen:
		return Unowned
	case owner == sharedOwner:
		return Shared
	default:
		return Owned
	}
}

// SharedCount returns how many locations have become shared.
func (tb *Table) SharedCount() int { return int(tb.transitions) }

// Transitions returns the number of owned→shared transitions.
func (tb *Table) Transitions() uint64 { return tb.transitions }

// Locations returns the number of tracked locations (space metric).
func (tb *Table) Locations() int { return len(tb.owner) }

// Overflows returns the number of accesses forwarded because the
// bounded table was full (0 in unbounded mode).
func (tb *Table) Overflows() uint64 { return tb.overflows }
