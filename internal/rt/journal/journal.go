// Package journal provides the bounded write-ahead event journal and
// checkpoint bookkeeping behind the fault-tolerant sharded back end.
//
// Each shard worker owns one Log: every routed message is appended to
// the journal *before* it is processed, so that after a worker panic
// the shard's state can be reconstructed exactly — restore the last
// checkpoint snapshot, then replay the journal suffix in order. The
// journal is bounded: when it reaches capacity the owner must take a
// checkpoint (a deep snapshot of the downstream state) and truncate,
// so journal memory never grows with the run and a restart replays at
// most one journal's worth of messages.
//
// The Log is generic over the message type: the detector journals its
// internal routed-message representation without this package needing
// to know its shape, and the package stays free of detector imports.
//
// A Log is owned by a single goroutine (the shard worker); it is not
// safe for concurrent use. Checkpoints carry a caller-supplied stamp
// and an integrity bit so restore paths can detect (injected or real)
// checkpoint corruption instead of silently replaying onto bad state.
package journal

// DefaultCap is the journal capacity used when a caller enables
// journaling without choosing one. Entries are routed messages
// (typically whole access batches), so the replay window this buys is
// large while the journal itself stays small.
const DefaultCap = 4096

// Stats counts journal work for the recovery accounting surfaced in
// detector statistics.
type Stats struct {
	// Appended is the total number of messages journaled.
	Appended uint64
	// Truncations counts checkpoint-driven truncations.
	Truncations uint64
	// Replayed counts messages re-delivered by Replay calls.
	Replayed uint64
}

// Log is a bounded write-ahead journal of routed messages for one
// shard. Base tracks how many messages earlier checkpoints have
// absorbed, so positions are global over the shard's whole stream.
type Log[T any] struct {
	entries []T
	cap     int
	base    uint64 // messages absorbed by checkpoints so far
	stats   Stats
}

// New returns an empty journal holding at most capacity messages
// between checkpoints (capacity <= 0 selects DefaultCap).
func New[T any](capacity int) *Log[T] {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Log[T]{entries: make([]T, 0, capacity), cap: capacity}
}

// Cap returns the journal capacity.
func (l *Log[T]) Cap() int { return l.cap }

// Len returns the number of journaled messages since the last
// truncation (the replay suffix length).
func (l *Log[T]) Len() int { return len(l.entries) }

// Full reports whether the next Append would exceed capacity; the
// owner must checkpoint and truncate first.
func (l *Log[T]) Full() bool { return len(l.entries) >= l.cap }

// Pos returns the global position of the next message: base plus the
// suffix length. Checkpoint stamps record it.
func (l *Log[T]) Pos() uint64 { return l.base + uint64(len(l.entries)) }

// Stats returns a copy of the work counters.
func (l *Log[T]) Stats() Stats { return l.stats }

// Append journals one message. The caller must have resolved fullness
// first (checkpoint + Truncate); appending to a full journal still
// succeeds — the bound is advisory at this layer so a fault mid-
// checkpoint can never lose the message — but keeps Full true.
func (l *Log[T]) Append(m T) {
	l.entries = append(l.entries, m)
	l.stats.Appended++
}

// Each visits the journaled suffix in order without touching the
// replay accounting. The owner uses it just before Truncate to
// reclaim per-message resources (the detector recycles batch buffers
// into its freelist once a checkpoint has absorbed them); Replay is
// the recovery path, Each is the housekeeping path.
func (l *Log[T]) Each(fn func(T)) {
	for _, m := range l.entries {
		fn(m)
	}
}

// Truncate discards the journaled suffix after a checkpoint has
// absorbed it.
func (l *Log[T]) Truncate() {
	l.base += uint64(len(l.entries))
	l.entries = l.entries[:0]
	l.stats.Truncations++
}

// Replay delivers the journaled suffix, in order, to fn. It is the
// restore path's second half: the caller restores the checkpoint
// snapshot first, then replays. fn may panic (the replayed message may
// be the one that killed the worker); the delivery count is accounted
// before each call so partial replays are visible in Stats.
func (l *Log[T]) Replay(fn func(T)) {
	for _, m := range l.entries {
		l.stats.Replayed++
		fn(m)
	}
}

// Checkpoint pairs an opaque snapshot of downstream state with the
// journal position it covers and an integrity bit. The zero value is
// "no checkpoint yet": restoring it means rebuilding from scratch and
// replaying the whole journal.
type Checkpoint[S any] struct {
	// State is the snapshot (a deep copy made by the owner).
	State S
	// Pos is the journal position the snapshot covers: the state is the
	// result of processing exactly the first Pos messages.
	Pos uint64
	// taken distinguishes a real checkpoint from the zero value;
	// corrupt marks a checkpoint that must not be restored.
	taken   bool
	corrupt bool
}

// Capture records a checkpoint of state at position pos.
func Capture[S any](state S, pos uint64) Checkpoint[S] {
	return Checkpoint[S]{State: state, Pos: pos, taken: true}
}

// Taken reports whether the checkpoint holds a real snapshot.
func (c *Checkpoint[S]) Taken() bool { return c.taken }

// Corrupt marks the checkpoint unusable (fault injection, or a real
// integrity failure detected by the owner).
func (c *Checkpoint[S]) Corrupt() { c.corrupt = true }

// Valid reports whether the checkpoint may be restored: it was taken
// and has not been marked corrupt.
func (c *Checkpoint[S]) Valid() bool { return c.taken && !c.corrupt }
