package journal

import "testing"

func TestAppendTruncateReplay(t *testing.T) {
	l := New[int](4)
	if l.Cap() != 4 || l.Len() != 0 || l.Full() || l.Pos() != 0 {
		t.Fatalf("fresh log: cap=%d len=%d full=%v pos=%d", l.Cap(), l.Len(), l.Full(), l.Pos())
	}
	for i := 0; i < 4; i++ {
		l.Append(i)
	}
	if !l.Full() || l.Len() != 4 || l.Pos() != 4 {
		t.Fatalf("after 4 appends: len=%d full=%v pos=%d", l.Len(), l.Full(), l.Pos())
	}

	var got []int
	l.Replay(func(m int) { got = append(got, m) })
	for i, m := range got {
		if m != i {
			t.Fatalf("replay[%d] = %d", i, m)
		}
	}

	l.Truncate()
	if l.Len() != 0 || l.Full() || l.Pos() != 4 {
		t.Fatalf("after truncate: len=%d full=%v pos=%d", l.Len(), l.Full(), l.Pos())
	}
	l.Append(9)
	if l.Pos() != 5 {
		t.Fatalf("pos after post-truncate append = %d", l.Pos())
	}

	st := l.Stats()
	if st.Appended != 5 || st.Truncations != 1 || st.Replayed != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAppendPastCapNeverDrops: the bound is advisory at this layer so
// a fault between "journal full" and "checkpoint taken" cannot lose a
// message.
func TestAppendPastCapNeverDrops(t *testing.T) {
	l := New[int](2)
	for i := 0; i < 5; i++ {
		l.Append(i)
	}
	if l.Len() != 5 || !l.Full() {
		t.Fatalf("len=%d full=%v", l.Len(), l.Full())
	}
}

func TestDefaultCap(t *testing.T) {
	if got := New[int](0).Cap(); got != DefaultCap {
		t.Fatalf("cap = %d, want %d", got, DefaultCap)
	}
	if got := New[int](-3).Cap(); got != DefaultCap {
		t.Fatalf("cap = %d, want %d", got, DefaultCap)
	}
}

// TestReplayPartialOnPanic: a replayed message may be the one that
// killed the worker; the counts delivered before the panic stay
// accounted.
func TestReplayPartialOnPanic(t *testing.T) {
	l := New[int](8)
	for i := 0; i < 4; i++ {
		l.Append(i)
	}
	var seen []int
	func() {
		defer func() { recover() }()
		l.Replay(func(m int) {
			if m == 2 {
				panic("boom")
			}
			seen = append(seen, m)
		})
	}()
	if len(seen) != 2 {
		t.Fatalf("delivered before panic: %v", seen)
	}
	if l.Stats().Replayed != 3 {
		t.Fatalf("replayed count = %d, want 3 (panicking delivery accounted)", l.Stats().Replayed)
	}
}

func TestCheckpointLifecycle(t *testing.T) {
	var c Checkpoint[string]
	if c.Taken() || c.Valid() {
		t.Fatal("zero checkpoint must be untaken and invalid")
	}
	c = Capture("state", 7)
	if !c.Taken() || !c.Valid() || c.Pos != 7 || c.State != "state" {
		t.Fatalf("captured checkpoint: %+v", c)
	}
	c.Corrupt()
	if c.Valid() {
		t.Fatal("corrupted checkpoint must be invalid")
	}
	if !c.Taken() {
		t.Fatal("corruption does not untake the checkpoint")
	}
}
