// Package sitestate implements the adaptive per-site throttling table
// behind -sample-k/-sample-budget: LiteRace/Pacer-style cold-site
// sampling at the granularity of static access sites.
//
// A site is one instrumented access in the program text — keyed by
// source position plus access kind, the same identity the per-site
// static facts use — interned to a dense index. Each site carries a
// saturating clean-observation counter: after K consecutive clean
// armed observations (full-pipeline passes with no re-arm signal in
// between) the site is demoted to a cheap counting-only stub that
// bypasses the trie layer. Demotion is revoked — the site is
// re-armed, its counter reset — when the ownership table reports
// new-thread contact on a location the site touched while demoted
// (the Contact callback).
//
// Suppression itself is write-aware and per-location (races are
// per-location: the trie pairs same-location events only). Each
// touched location remembers the thread sets that read and wrote it
// through demoted stubs, and separately which threads ever had an
// access SHIPPED to the trie there: read-read sharing can never race,
// so any number of reader threads may join a location's
// suppressed-reader set, while a write is only ever suppressed for a
// location's sole toucher — counting both suppressed and shipped
// history, since the trie remembers shipped events forever. An access
// that could complete a race pair is never suppressed; it ships, and
// once shipped the location's history only grows, so its recurrences
// keep shipping (cache-filtered) without any site re-arm.
//
// The one deliberate exception is a location whose shipped history
// already PROVES a race: a shipped pair from two distinct threads,
// one of them a write, at least one of them lock-free. The empty
// lockset is disjoint with every lockset, so the trie is guaranteed
// to report that location (Definition 1 reports per location); every
// further access there is redundant for detection and is suppressed
// outright.
//
// The degradation contract mirrors the detector's bounded-memory
// modes: throttling may suppress redundant events but is engineered
// to never miss a stable (recurring) race — an access that could
// complete a race pair against anything the location has seen is
// never suppressed, so a recurring pair always ships and reaches the
// trie. A truly one-shot racing access at a demoted site can still be
// missed; that is the inherent LiteRace-class trade and is documented
// in docs/performance.md.
//
// The table is deliberately deterministic: its evolution is a pure
// function of the event stream (no clocks, no randomness), so a
// sampled run reproduces bit-for-bit under the seeded scheduler, and
// the serial and sharded back ends — which both run it router-side, in
// serial event order — stay byte-identical to each other. The state is
// pointer-free arrays plus bounded maps, and Clone produces a deep
// copy for journal checkpoints.
package sitestate

import (
	"racedet/internal/lang/token"
	"racedet/internal/rt/event"
)

// Tuning bounds of the adaptive controller.
const (
	// DefaultK is the initial demotion threshold when -sample-budget is
	// given without an explicit -sample-k.
	DefaultK = 16
	// MinK / MaxK clamp the adaptive controller.
	MinK = 2
	MaxK = 1024
	// DefaultWindow is the controller's measurement window in observed
	// events.
	DefaultWindow = 4096
	// DefaultMaxTouched bounds the suppressed-touch index; once full,
	// further stub accesses are forwarded instead of suppressed (pure
	// loss of throttling, never of detection).
	DefaultMaxTouched = 8192
)

// Prior is a static confidence hint for one site, seeded from the
// lock-discipline tiers: PriorLow marks guarded-consistent sites
// (static analysis found no live inconsistency — cheap to demote),
// PriorHigh marks unguarded and guarded-inconsistent sites (the
// statically suspicious ones — pinned armed, never demoted). Priors
// bias WHERE the budget goes; the coverage contract is enforced by
// the write-aware suppression machinery regardless, so even an
// inverted prior map cannot hide a stable race.
type Prior uint8

// Priors.
const (
	PriorNone Prior = iota
	PriorLow
	PriorHigh
)

// Config configures a Table.
type Config struct {
	// K is the demotion threshold: consecutive clean armed
	// observations before a site demotes. <= 0 with a Budget selects
	// DefaultK.
	K int
	// Budget, when > 0, enables the adaptive controller: every Window
	// observations the shipped ratio is compared against Budget and K
	// is halved (ship too much) or doubled (well under budget), clamped
	// to [MinK, MaxK].
	Budget float64
	// Window is the controller window in observations (0 = DefaultWindow).
	Window int
	// MaxTouched bounds the suppressed-touch index (0 = DefaultMaxTouched).
	MaxTouched int
	// Priors maps site keys to their static discipline prior; sites
	// absent from the map get PriorNone. The map is read-only and may
	// be shared between tables.
	Priors map[Key]Prior
	// InvertPriors swaps PriorLow and PriorHigh at intern time — the
	// ablation mode that proves the coverage contract does not depend
	// on the priors pointing the right way.
	InvertPriors bool
}

// Key is the identity of a static access site: source position plus
// access kind (a read and a write at the same position are distinct
// sites, since their race potential differs).
type Key struct {
	File      string
	Line, Col int32
	Kind      event.Kind
}

// Stats reports the table's work counters.
type Stats struct {
	// Sites is the number of distinct static sites seen.
	Sites int
	// Demotions / Rearms count site state transitions (a site may
	// demote and re-arm many times).
	Demotions uint64
	Rearms    uint64
	// Suppressed counts accesses absorbed by demoted-site stubs — the
	// events the unsampled detector would have shipped to the trie.
	Suppressed uint64
	// ForcedShips counts stub accesses forwarded despite demotion
	// (contact, overflow, armed location, full touch index).
	ForcedShips uint64
	// CurrentK is the live demotion threshold (moves under Budget).
	CurrentK int
	// WindowRatio is the shipped ratio of the last completed controller
	// window (0 before the first window completes).
	WindowRatio float64
	// PriorHighSites / PriorLowSites count interned sites carrying a
	// high (pinned armed) resp. low (fast-demoting) static prior.
	PriorHighSites int
	PriorLowSites  int
	// PriorFastDemotions counts demotions that fired at the reduced
	// PriorLow threshold before the default K would have.
	PriorFastDemotions uint64
}

// state is one site's throttling state; pointer-free so the states
// array costs the GC nothing to scan.
type state struct {
	clean   uint32 // consecutive clean armed observations since last re-arm
	demoted bool
	prior   Prior // static discipline prior, fixed at intern time
}

// touchEntry remembers suppressed stub traffic on one location: which
// sites touched it (a 64-bit Bloom-style site signature, so an
// ownership contact can re-arm them) and which threads read / wrote
// it (exact bitmasks for thread ids below 64; larger ids never
// suppress, see threadBit). CanSuppress consults the masks so that a
// write meeting foreign touchers — or any access meeting a foreign
// writer — is never suppressed.
type touchEntry struct {
	sites   uint64
	readers uint64
	writers uint64
}

// threadBit maps a thread id to its mask bit. Ids outside [0, 64) are
// unrepresentable; callers must treat them as "cannot prove anything
// about this thread" — never suppress, conservatively contact.
func threadBit(t event.ThreadID) (uint64, bool) {
	if t < 0 || t >= 64 {
		return 0, false
	}
	return 1 << uint(t), true
}

// shipEntry remembers, per location, which threads ever had an access
// SHIPPED to the trie (reads and writes separately), plus the subset
// that shipped holding no locks. The trie remembers shipped events
// forever, so a suppressed access could race with a long-gone
// one-shot event; suppression must therefore also be refused whenever
// the location's shipped history could complete a race pair with the
// access at hand. Races are per-location (the trie pairs
// same-location events only), so location granularity is exact.
type shipEntry struct {
	readers uint64
	writers uint64
	// uwriters/uaccess are the threads whose shipped write (resp. any
	// shipped access) held no locks. Never poisoned: proven() must
	// under-approximate.
	uwriters uint64
	uaccess  uint64
}

// pairAcross reports whether masks a and b contain a pair of DISTINCT
// threads (one from each): both non-empty and their union has at
// least two bits.
func pairAcross(a, b uint64) bool {
	u := a | b
	return a != 0 && b != 0 && u&(u-1) != 0
}

// proven reports whether the location's shipped history already
// guarantees a race report: two shipped accesses from distinct
// threads, one a write, at least one lock-free. The empty lockset is
// disjoint with every lockset, so such a pair always satisfies the
// trie's race condition, and the detector reports at least once per
// racy location (Definition 1) no matter what else ships. Every
// further access on a proven location is redundant for detection.
func (e shipEntry) proven() bool {
	return pairAcross(e.uaccess, e.writers) || pairAcross(e.uwriters, e.readers|e.writers)
}

// Table is the per-site throttling table. Not safe for concurrent use;
// it belongs to the (single) filter owner — the serial detector or the
// sharded router — exactly like the interner.
type Table struct {
	k          int
	budget     float64
	window     int
	maxTouched int
	priors     map[Key]Prior // shared, read-only
	invert     bool

	index  map[Key]int32
	states []state

	// touched indexes locations with suppressed stub traffic; armed
	// marks locations whose next demoted-site access must ship (set at
	// ownership contact, consumed on use); shipped is the per-location
	// shipped-thread history (see shipEntry). shipped grows with the
	// number of locations that ever shipped an event — strictly
	// dominated by the trie those events grow anyway.
	touched map[event.Loc]touchEntry
	armed   map[event.Loc]struct{}
	shipped map[event.Loc]shipEntry

	// Controller window accounting.
	windowN       int
	windowShipped int
	lastRatio     float64

	stats Stats
}

// New builds a table from cfg; K and Budget must not both be zero.
func New(cfg Config) *Table {
	k := cfg.K
	if k <= 0 {
		k = DefaultK
	}
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	mt := cfg.MaxTouched
	if mt <= 0 {
		mt = DefaultMaxTouched
	}
	return &Table{
		k:          k,
		budget:     cfg.Budget,
		window:     w,
		maxTouched: mt,
		priors:     cfg.Priors,
		invert:     cfg.InvertPriors,
		index:      make(map[Key]int32, 256),
		touched:    make(map[event.Loc]touchEntry),
		armed:      make(map[event.Loc]struct{}),
		shipped:    make(map[event.Loc]shipEntry),
	}
}

// SiteID interns a site and returns its dense index.
func (st *Table) SiteID(pos token.Pos, kind event.Kind) int32 {
	k := Key{File: pos.File, Line: pos.Line, Col: pos.Col, Kind: kind}
	if id, ok := st.index[k]; ok {
		return id
	}
	id := int32(len(st.states))
	st.index[k] = id
	p := st.priors[k]
	if st.invert {
		switch p {
		case PriorLow:
			p = PriorHigh
		case PriorHigh:
			p = PriorLow
		}
	}
	switch p {
	case PriorHigh:
		st.stats.PriorHighSites++
	case PriorLow:
		st.stats.PriorLowSites++
	}
	st.states = append(st.states, state{prior: p})
	return id
}

// Demoted reports whether the site runs in counting-only stub mode.
func (st *Table) Demoted(id int32) bool { return st.states[id].demoted }

// Observe records an armed-site observation: the access ran the full
// pipeline and was shipped to the trie or absorbed by a filter layer.
// K consecutive observations with no intervening re-arm demote the
// site; thread and lockset churn deliberately do NOT reset the
// counter — cache-defeating churn is exactly the repeat traffic the
// throttle exists to absorb, and the cross-thread re-arm web (not a
// per-site environment) is what keeps recurring races reported.
// The site's static prior bends the threshold: PriorHigh sites are
// pinned armed (statically unguarded traffic is exactly what the trie
// must see), PriorLow sites demote at a quarter of the live K —
// statically consistent sites earn the cheap stub sooner.
func (st *Table) Observe(id int32, shipped bool) {
	s := &st.states[id]
	if s.clean != ^uint32(0) {
		s.clean++
	}
	if !s.demoted {
		switch s.prior {
		case PriorHigh:
			// Pinned: never demotes.
		case PriorLow:
			if int(s.clean) >= lowK(st.k) {
				s.demoted = true
				st.stats.Demotions++
				if int(s.clean) < st.k {
					st.stats.PriorFastDemotions++
				}
			}
		default:
			if int(s.clean) >= st.k {
				s.demoted = true
				st.stats.Demotions++
			}
		}
	}
	st.tick(shipped)
}

// lowK is the PriorLow demotion threshold: K/4, floored at MinK, and
// tracking the adaptive controller's live K.
func lowK(k int) int {
	k /= 4
	if k < MinK {
		k = MinK
	}
	return k
}

// Rearm revokes a site's demotion and resets its counter (idempotent
// on armed sites, which only get their counter reset).
func (st *Table) Rearm(id int32) {
	s := &st.states[id]
	if s.demoted {
		s.demoted = false
		st.stats.Rearms++
	}
	s.clean = 0
}

// Contact is the ownership table's owned→shared callback: loc just saw
// its first cross-thread access. Every site that touched the location
// while demoted is re-armed, and the location itself is armed so a
// site that re-demotes before revisiting it still ships its next
// access there.
func (st *Table) Contact(loc event.Loc) {
	st.ContactLoc(loc)
	st.armed[loc] = struct{}{}
}

// ContactLoc re-arms the demoted sites recorded in loc's touch entry
// and forgets the entry. Sites are matched by their signature bit, so
// an over-full signature re-arms conservatively (never too few).
func (st *Table) ContactLoc(loc event.Loc) {
	e, ok := st.touched[loc]
	if !ok {
		return
	}
	delete(st.touched, loc)
	for i := range st.states {
		s := &st.states[i]
		if s.demoted && e.sites&(1<<(uint(i)&63)) != 0 {
			s.demoted = false
			s.clean = 0
			st.stats.Rearms++
		}
	}
}

// ConsumeArmed consumes loc's armed marker if present.
func (st *Table) ConsumeArmed(loc event.Loc) bool {
	if _, ok := st.armed[loc]; !ok {
		return false
	}
	delete(st.armed, loc)
	return true
}

// RecordShip records that an access by t (a write iff write, holding
// no locks iff unlocked) on loc was shipped to the trie.
// Unrepresentable threads poison the readers/writers masks — every
// thread is then treated as a foreign shipped toucher — but never the
// unlocked masks, which must under-approximate for proven().
func (st *Table) RecordShip(loc event.Loc, t event.ThreadID, write, unlocked bool) {
	bit, repr := threadBit(t)
	e := st.shipped[loc]
	if repr && unlocked {
		e.uaccess |= bit
		if write {
			e.uwriters |= bit
		}
	}
	if !repr {
		bit = ^uint64(0)
	}
	if write {
		e.writers |= bit
	} else {
		e.readers |= bit
	}
	st.shipped[loc] = e
}

// CanSuppress reports whether a stub access by t (a write iff write)
// on loc is suppressible: suppression must not hide half of a
// potential race pair, against either concurrent suppressed traffic
// or the trie's memory of shipped events:
//
//   - a location whose shipped history already proves a race (see
//     shipEntry.proven) suppresses everything — any thread, any kind;
//   - a write is only suppressible when t is the location's sole
//     suppressed toucher AND its sole shipped toucher;
//   - a read only when no foreign writer touched the location, either
//     suppressed or shipped (reads may freely join an all-reader set).
//
// It also refuses for unrepresentable threads and when recording
// would overflow the touch index. It does not mutate the table.
func (st *Table) CanSuppress(loc event.Loc, t event.ThreadID, write bool) bool {
	sh := st.shipped[loc]
	if sh.proven() {
		return true
	}
	bit, repr := threadBit(t)
	if !repr {
		return false
	}
	e, ok := st.touched[loc]
	if !ok && len(st.touched) >= st.maxTouched {
		return false
	}
	if write {
		return (e.readers|e.writers|sh.readers|sh.writers)&^bit == 0
	}
	return (e.writers|sh.writers)&^bit == 0
}

// Touch records a suppressed stub access: site id by thread t on loc,
// a write iff write. It returns false — the caller must forward the
// access instead of suppressing it — exactly when CanSuppress does.
func (st *Table) Touch(id int32, loc event.Loc, t event.ThreadID, write bool) bool {
	if !st.CanSuppress(loc, t, write) {
		return false
	}
	if st.shipped[loc].proven() {
		// Settled location: nothing left to remember.
		return true
	}
	bit, _ := threadBit(t)
	e := st.touched[loc]
	if write {
		e.writers |= bit
	} else {
		e.readers |= bit
	}
	e.sites |= 1 << (uint(id) & 63)
	st.touched[loc] = e
	return true
}

// Suppress accounts one stub-suppressed access.
func (st *Table) Suppress() {
	st.stats.Suppressed++
	st.tick(false)
}

// ForcedShip accounts one stub access forwarded despite demotion.
func (st *Table) ForcedShip() {
	st.stats.ForcedShips++
	st.tick(true)
}

// Skipped accounts one stub access absorbed by the ownership filter —
// an event the unsampled pipeline would have absorbed identically.
func (st *Table) Skipped() { st.tick(false) }

// tick is the adaptive controller: once per observed event; every
// window the shipped ratio is compared against the budget and K moves
// by powers of two. Deterministic — a pure function of the stream.
func (st *Table) tick(shipped bool) {
	st.windowN++
	if shipped {
		st.windowShipped++
	}
	if st.windowN < st.window {
		return
	}
	st.lastRatio = float64(st.windowShipped) / float64(st.windowN)
	st.windowN, st.windowShipped = 0, 0
	if st.budget <= 0 {
		return
	}
	switch {
	case st.lastRatio > st.budget:
		// Shipping over budget: demote sites twice as eagerly.
		if st.k > MinK {
			st.k /= 2
			if st.k < MinK {
				st.k = MinK
			}
		}
	case st.lastRatio < st.budget/2:
		// Comfortably under budget: buy back coverage.
		if st.k < MaxK {
			st.k *= 2
		}
	}
}

// Stats returns the table's counters.
func (st *Table) Stats() Stats {
	s := st.stats
	s.Sites = len(st.states)
	s.CurrentK = st.k
	s.WindowRatio = st.lastRatio
	return s
}

// Clone returns a deep copy for checkpointing: the copy's evolution is
// independent of the original's.
func (st *Table) Clone() *Table {
	nt := &Table{
		k:             st.k,
		budget:        st.budget,
		window:        st.window,
		maxTouched:    st.maxTouched,
		priors:        st.priors, // read-only, safely shared
		invert:        st.invert,
		index:         make(map[Key]int32, len(st.index)),
		states:        append([]state(nil), st.states...),
		touched:       make(map[event.Loc]touchEntry, len(st.touched)),
		armed:         make(map[event.Loc]struct{}, len(st.armed)),
		shipped:       make(map[event.Loc]shipEntry, len(st.shipped)),
		windowN:       st.windowN,
		windowShipped: st.windowShipped,
		lastRatio:     st.lastRatio,
		stats:         st.stats,
	}
	for k, v := range st.index {
		nt.index[k] = v
	}
	for o, e := range st.touched {
		nt.touched[o] = e
	}
	for l := range st.armed {
		nt.armed[l] = struct{}{}
	}
	for o, e := range st.shipped {
		nt.shipped[o] = e
	}
	return nt
}
