package sitestate

import (
	"testing"

	"racedet/internal/lang/token"
	"racedet/internal/rt/event"
)

func pos(line int32) token.Pos { return token.Pos{File: "t.mj", Line: line, Col: 1} }

func TestSiteInterning(t *testing.T) {
	st := New(Config{K: 4})
	a := st.SiteID(pos(1), event.Read)
	if b := st.SiteID(pos(1), event.Read); b != a {
		t.Fatalf("same site interned twice: %d vs %d", a, b)
	}
	if w := st.SiteID(pos(1), event.Write); w == a {
		t.Fatalf("read and write at one position must be distinct sites")
	}
	if c := st.SiteID(pos(2), event.Read); c == a {
		t.Fatalf("distinct positions must be distinct sites")
	}
	if got := st.Stats().Sites; got != 3 {
		t.Fatalf("Sites = %d, want 3", got)
	}
}

func TestDemoteAfterKCleanObservations(t *testing.T) {
	st := New(Config{K: 3})
	id := st.SiteID(pos(1), event.Read)
	for i := 0; i < 2; i++ {
		st.Observe(id, true)
		if st.Demoted(id) {
			t.Fatalf("demoted after %d observations, want 3", i+1)
		}
	}
	st.Observe(id, true)
	if !st.Demoted(id) {
		t.Fatalf("not demoted after K=3 clean observations")
	}
	if s := st.Stats(); s.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", s.Demotions)
	}
}

func TestRearmResetsCounter(t *testing.T) {
	st := New(Config{K: 3})
	id := st.SiteID(pos(1), event.Read)
	st.Observe(id, true)
	st.Observe(id, true)
	st.Rearm(id) // re-arm signal on an armed site: counter restarts
	st.Observe(id, true)
	st.Observe(id, true)
	if st.Demoted(id) {
		t.Fatalf("demoted across a re-arm reset")
	}
	st.Observe(id, true)
	if !st.Demoted(id) {
		t.Fatalf("not demoted after 3 clean observations post-reset")
	}
	// Demotion deliberately ignores thread and lockset churn: the
	// counter advances on every armed observation regardless of who
	// made it; only the re-arm web resets it.
	st.Rearm(id)
	if st.Demoted(id) {
		t.Fatalf("Rearm left the site demoted")
	}
	if s := st.Stats(); s.Rearms != 1 {
		t.Fatalf("Rearms = %d, want 1 (resetting an armed site is not a re-arm)", s.Rearms)
	}
}

func TestContactRearmsTouchingSites(t *testing.T) {
	st := New(Config{K: 1})
	a := st.SiteID(pos(1), event.Read)
	b := st.SiteID(pos(2), event.Write)
	st.Observe(a, true)
	st.Observe(b, true)
	if !st.Demoted(a) || !st.Demoted(b) {
		t.Fatalf("K=1 sites must demote on first observation")
	}
	loc := event.Loc{Obj: 42, Slot: 0}
	if !st.Touch(a, loc, 1, false) || !st.Touch(b, loc, 1, true) {
		t.Fatalf("touches on a fresh location must record")
	}
	st.Contact(loc)
	if st.Demoted(a) || st.Demoted(b) {
		t.Fatalf("contact did not re-arm the touching sites")
	}
	if s := st.Stats(); s.Rearms != 2 {
		t.Fatalf("Rearms = %d, want 2", s.Rearms)
	}
	if !st.ConsumeArmed(loc) {
		t.Fatalf("contact must arm the location")
	}
	if st.ConsumeArmed(loc) {
		t.Fatalf("armed marker must be consumed exactly once")
	}
}

func TestCrossThreadTouchDetection(t *testing.T) {
	st := New(Config{K: 1})
	r := st.SiteID(pos(1), event.Read)
	w := st.SiteID(pos(2), event.Write)

	// Reader sets: read-read sharing cannot race and may join freely.
	loc := event.Loc{Obj: 7, Slot: 0}
	if !st.Touch(r, loc, 1, false) {
		t.Fatalf("first read touch must record")
	}
	if !st.CanSuppress(loc, 1, false) || !st.CanSuppress(loc, 1, true) {
		t.Fatalf("sole toucher must keep suppressing")
	}
	if !st.Touch(r, loc, 2, false) {
		t.Fatalf("a second reader must be allowed to join")
	}
	// A write meeting foreign readers could race and never suppresses.
	if st.Touch(w, loc, 3, true) {
		t.Fatalf("write with foreign touchers must refuse to suppress")
	}
	// Even a member of the reader set may not write while others read.
	if st.CanSuppress(loc, 1, true) {
		t.Fatalf("write by one of several readers must refuse")
	}
	// Sibling slots of the same object are independent locations.
	if !st.CanSuppress(event.Loc{Obj: 7, Slot: 1}, 3, true) {
		t.Fatalf("a write to a sibling slot must be independent")
	}

	// Writer entries: any foreign access could race.
	loc2 := event.Loc{Obj: 8, Slot: 0}
	if !st.Touch(w, loc2, 1, true) {
		t.Fatalf("sole-toucher write must record")
	}
	if !st.Touch(r, loc2, 1, false) {
		t.Fatalf("sole toucher may keep reading its own location")
	}
	if st.Touch(r, loc2, 2, false) {
		t.Fatalf("read with a foreign writer must refuse to suppress")
	}

	// Shipped history: a location with a foreign shipped write refuses
	// read suppression; with any foreign shipped access it refuses
	// write suppression. Refusal needs no re-arm — the forwarded event
	// itself pairs in the trie.
	loc3 := event.Loc{Obj: 9, Slot: 0}
	st.RecordShip(loc3, 2, true, false)
	if st.CanSuppress(loc3, 1, false) || st.CanSuppress(loc3, 1, true) {
		t.Fatalf("foreign shipped write must refuse suppression")
	}
	if !st.CanSuppress(loc3, 2, true) {
		t.Fatalf("a thread may suppress against its own shipped history")
	}
	loc4 := event.Loc{Obj: 10, Slot: 0}
	st.RecordShip(loc4, 2, false, false)
	if !st.CanSuppress(loc4, 1, false) {
		t.Fatalf("foreign shipped READS must not block read suppression")
	}
	if st.CanSuppress(loc4, 1, true) {
		t.Fatalf("foreign shipped read must refuse write suppression")
	}

	// Threads outside the representable range never suppress.
	if st.Touch(r, loc, 64, false) {
		t.Fatalf("unrepresentable thread must not suppress")
	}
}

func TestProvenRaceSuppressesEverything(t *testing.T) {
	st := New(Config{K: 1})
	id := st.SiteID(pos(1), event.Write)

	// An unlocked write by t1 plus a LOCKED read by t2: the empty
	// lockset is disjoint with every lockset, so the trie must report
	// this location — everything after is redundant.
	loc := event.Loc{Obj: 1, Slot: 0}
	st.RecordShip(loc, 1, true, true)
	if st.CanSuppress(loc, 2, true) {
		t.Fatalf("one shipped access must not prove a race")
	}
	st.RecordShip(loc, 2, false, false)
	for _, tid := range []event.ThreadID{1, 2, 3, 64} {
		if !st.CanSuppress(loc, tid, true) || !st.CanSuppress(loc, tid, false) {
			t.Fatalf("proven location must suppress thread %d", tid)
		}
	}
	if !st.Touch(id, loc, 3, true) {
		t.Fatalf("Touch on a proven location must suppress")
	}
	if len(st.touched) != 0 {
		t.Fatalf("proven Touch must not grow the touch index")
	}

	// A LOCKED write by t1 plus an unlocked read by t2 also proves.
	loc2 := event.Loc{Obj: 2, Slot: 0}
	st.RecordShip(loc2, 1, true, false)
	st.RecordShip(loc2, 2, false, true)
	if !st.CanSuppress(loc2, 3, true) {
		t.Fatalf("locked write + unlocked foreign read must prove")
	}

	// Two LOCKED accesses never prove: their locksets may overlap.
	loc3 := event.Loc{Obj: 3, Slot: 0}
	st.RecordShip(loc3, 1, true, false)
	st.RecordShip(loc3, 2, true, false)
	if st.CanSuppress(loc3, 3, true) {
		t.Fatalf("two locked writes must not prove a race")
	}

	// Unlocked write + unlocked read by the SAME thread never proves.
	loc4 := event.Loc{Obj: 4, Slot: 0}
	st.RecordShip(loc4, 1, true, true)
	st.RecordShip(loc4, 1, false, true)
	if st.CanSuppress(loc4, 2, false) {
		t.Fatalf("a single thread's shipped history must not prove a race")
	}

	// An unrepresentable thread's ships never enter the unlocked masks
	// (proven must under-approximate), so two unrepresentable threads
	// can never prove. Paired with a representable unlocked access the
	// poison IS sound — it stands for a real thread that is distinct
	// from every representable one.
	loc5 := event.Loc{Obj: 5, Slot: 0}
	st.RecordShip(loc5, 64, true, true)
	st.RecordShip(loc5, 65, false, true)
	if st.CanSuppress(loc5, 2, false) {
		t.Fatalf("unrepresentable-only history must not prove a race")
	}
	st.RecordShip(loc5, 1, false, true)
	if !st.CanSuppress(loc5, 2, false) {
		t.Fatalf("unlocked access + poisoned foreign writer must prove")
	}
}

func TestTouchIndexBound(t *testing.T) {
	st := New(Config{K: 1, MaxTouched: 2})
	id := st.SiteID(pos(1), event.Read)
	lc := func(o event.ObjID) event.Loc { return event.Loc{Obj: o, Slot: 0} }
	if !st.Touch(id, lc(1), 1, false) || !st.Touch(id, lc(2), 1, false) {
		t.Fatalf("touches under the bound must record")
	}
	if st.Touch(id, lc(3), 1, false) {
		t.Fatalf("touch over the bound must refuse (caller forwards)")
	}
	if !st.Touch(id, lc(2), 1, false) {
		t.Fatalf("existing entries must keep recording at the bound")
	}
}

func TestAdaptiveControllerMovesK(t *testing.T) {
	st := New(Config{K: 16, Budget: 0.25, Window: 8})
	id := st.SiteID(pos(1), event.Read)
	// A full window of shipped events: ratio 1.0 > 0.25 → K halves.
	for i := 0; i < 8; i++ {
		st.Observe(id, true)
	}
	if k := st.Stats().CurrentK; k != 8 {
		t.Fatalf("CurrentK = %d after over-budget window, want 8", k)
	}
	if r := st.Stats().WindowRatio; r != 1.0 {
		t.Fatalf("WindowRatio = %v, want 1.0", r)
	}
	// A full window of suppressed events: ratio 0 < 0.125 → K doubles.
	for i := 0; i < 8; i++ {
		st.Suppress()
	}
	if k := st.Stats().CurrentK; k != 16 {
		t.Fatalf("CurrentK = %d after under-budget window, want 16", k)
	}
	// K is clamped at MinK no matter how many hot windows pass.
	for w := 0; w < 20; w++ {
		for i := 0; i < 8; i++ {
			st.Observe(id, true)
		}
	}
	if k := st.Stats().CurrentK; k != MinK {
		t.Fatalf("CurrentK = %d, want clamp at MinK=%d", k, MinK)
	}
}

func TestFixedKWithoutBudget(t *testing.T) {
	st := New(Config{K: 4, Window: 4})
	id := st.SiteID(pos(1), event.Read)
	for i := 0; i < 64; i++ {
		st.Observe(id, true)
	}
	if k := st.Stats().CurrentK; k != 4 {
		t.Fatalf("CurrentK moved to %d without a budget", k)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	st := New(Config{K: 2, Budget: 0.5})
	a := st.SiteID(pos(1), event.Read)
	st.Observe(a, true)
	st.Observe(a, true)
	st.Touch(a, event.Loc{Obj: 9, Slot: 0}, 1, false)
	st.RecordShip(event.Loc{Obj: 11, Slot: 0}, 1, true, false)
	st.Contact(event.Loc{Obj: 5, Slot: 0})

	cl := st.Clone()
	if !cl.Demoted(a) {
		t.Fatalf("clone lost the demoted state")
	}
	// Diverge the original; the clone must not move.
	st.Rearm(a)
	st.SiteID(pos(99), event.Write)
	st.Touch(a, event.Loc{Obj: 10, Slot: 0}, 2, false)
	st.RecordShip(event.Loc{Obj: 11, Slot: 0}, 2, true, false)
	st.ConsumeArmed(event.Loc{Obj: 5, Slot: 0})

	if !cl.Demoted(a) {
		t.Fatalf("rearming the original re-armed the clone")
	}
	if got := cl.Stats().Sites; got != 1 {
		t.Fatalf("clone Sites = %d, want 1", got)
	}
	if !cl.CanSuppress(event.Loc{Obj: 10, Slot: 0}, 1, true) {
		t.Fatalf("original's touch leaked into the clone")
	}
	if !cl.CanSuppress(event.Loc{Obj: 11, Slot: 0}, 1, true) {
		t.Fatalf("original's post-clone shipped history leaked into the clone")
	}
	if !cl.ConsumeArmed(event.Loc{Obj: 5, Slot: 0}) {
		t.Fatalf("clone lost the armed location")
	}
	// And the other direction: mutating the clone leaves the original alone.
	cl.Rearm(a)
	cl2 := st.Clone()
	_ = cl2
	if st.Stats().Rearms != 1 {
		t.Fatalf("clone rearm leaked into the original")
	}
}

func TestSaturatingCounter(t *testing.T) {
	st := New(Config{K: 2})
	id := st.SiteID(pos(1), event.Read)
	st.states[id].clean = ^uint32(0) - 1
	st.Observe(id, true)
	st.Observe(id, true) // must not wrap to 0
	if st.states[id].clean != ^uint32(0) {
		t.Fatalf("counter wrapped: %d", st.states[id].clean)
	}
}
