// Package vclock implements a vector-clock happens-before race
// detector (in the style of Djit/TRaDe) as the baseline that
// illustrates §2.2's actual-vs-feasible distinction: a happens-before
// detector misses feasible races that are ordered in the observed
// execution only by accidental lock acquisition order, which the
// paper's lockset-based detector reports.
//
// Synchronization transfers clocks through monitor release/acquire,
// thread start, and join. Per location the detector keeps the vector
// clock of every thread's latest read and the latest write epoch;
// unordered conflicting accesses are races.
package vclock

import (
	"fmt"
	"sort"

	"racedet/internal/rt/event"
)

// VC is a vector clock: thread → logical time.
type VC map[event.ThreadID]uint64

// Clone copies the clock.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	for t, c := range v {
		out[t] = c
	}
	return out
}

// Join merges other into v (pointwise max).
func (v VC) Join(other VC) {
	for t, c := range other {
		if v[t] < c {
			v[t] = c
		}
	}
}

// HappensBefore reports whether epoch (t, c) ⊑ v.
func (v VC) HappensBefore(t event.ThreadID, c uint64) bool { return v[t] >= c }

// String renders deterministically for tests.
func (v VC) String() string {
	ts := make([]event.ThreadID, 0, len(v))
	for t := range v {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	s := "["
	for i, t := range ts {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", t, v[t])
	}
	return s + "]"
}

type epoch struct {
	t event.ThreadID
	c uint64
}

type locState struct {
	lastWrite epoch
	hasWrite  bool
	writePos  string
	reads     map[event.ThreadID]uint64
	reported  bool
}

// Report is one happens-before race.
type Report struct {
	Access event.Access
	Prior  event.ThreadID
}

func (r Report) String() string {
	return fmt.Sprintf("HB RACE %s at %s: %s by %s unordered with %s",
		r.Access.FieldName, r.Access.Pos, r.Access.Kind, r.Access.Thread, r.Prior)
}

// Detector is the vector-clock baseline.
type Detector struct {
	threads map[event.ThreadID]VC
	lockVC  map[event.ObjID]VC
	locs    map[event.Loc]*locState

	reports []Report
	racy    map[event.ObjID]struct{}
}

var _ event.Sink = (*Detector)(nil)

// New returns an empty happens-before detector.
func New() *Detector {
	return &Detector{
		threads: make(map[event.ThreadID]VC),
		lockVC:  make(map[event.ObjID]VC),
		locs:    make(map[event.Loc]*locState),
		racy:    make(map[event.ObjID]struct{}),
	}
}

// Reports returns the race reports in detection order.
func (d *Detector) Reports() []Report { return d.reports }

// RacyObjects returns distinct racy objects, sorted.
func (d *Detector) RacyObjects() []event.ObjID {
	out := make([]event.ObjID, 0, len(d.racy))
	for o := range d.racy {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Detector) clock(t event.ThreadID) VC {
	vc := d.threads[t]
	if vc == nil {
		vc = VC{t: 1}
		d.threads[t] = vc
	}
	return vc
}

func (d *Detector) tick(t event.ThreadID) { d.clock(t)[t]++ }

// ThreadStarted implements event.Sink: the child inherits the
// parent's clock (start edge), and the parent ticks.
func (d *Detector) ThreadStarted(child, parent event.ThreadID) {
	cvc := d.clock(child)
	if parent != event.NoThread {
		cvc.Join(d.clock(parent))
		d.tick(parent)
	}
}

// ThreadFinished implements event.Sink.
func (d *Detector) ThreadFinished(t event.ThreadID) {}

// Joined implements event.Sink: the joiner inherits the joinee's
// final clock (join edge).
func (d *Detector) Joined(joiner, joinee event.ThreadID) {
	d.clock(joiner).Join(d.clock(joinee))
}

// MonitorEnter implements event.Sink: acquire joins the lock's clock
// into the thread (release→acquire edge).
func (d *Detector) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	if depth != 1 {
		return
	}
	if lvc := d.lockVC[lock]; lvc != nil {
		d.clock(t).Join(lvc)
	}
}

// MonitorExit implements event.Sink: release publishes the thread's
// clock on the lock and ticks the thread.
func (d *Detector) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	if depth != 0 {
		return
	}
	d.lockVC[lock] = d.clock(t).Clone()
	d.tick(t)
}

// Access implements event.Sink: the Djit-style per-location check.
func (d *Detector) Access(a event.Access) {
	st := d.locs[a.Loc]
	if st == nil {
		st = &locState{reads: make(map[event.ThreadID]uint64)}
		d.locs[a.Loc] = st
	}
	vc := d.clock(a.Thread)

	race := false
	var prior event.ThreadID
	// A write must be ordered after every previous read and write; a
	// read after the last write.
	if st.hasWrite && st.lastWrite.t != a.Thread && !vc.HappensBefore(st.lastWrite.t, st.lastWrite.c) {
		race = true
		prior = st.lastWrite.t
	}
	if a.Kind == event.Write {
		for rt, rc := range st.reads {
			if rt != a.Thread && !vc.HappensBefore(rt, rc) {
				race = true
				prior = rt
				break
			}
		}
	}
	if race && !st.reported {
		st.reported = true
		d.reports = append(d.reports, Report{Access: a, Prior: prior})
		d.racy[a.Loc.Obj] = struct{}{}
	}

	// Record this access.
	now := vc[a.Thread]
	if a.Kind == event.Write {
		st.lastWrite = epoch{a.Thread, now}
		st.hasWrite = true
		st.writePos = a.Pos.String()
		// A write supersedes previous reads for ordering purposes
		// only if they happened-before it; keep the map bounded by
		// clearing reads ordered before this write.
		for rt, rc := range st.reads {
			if vc.HappensBefore(rt, rc) {
				delete(st.reads, rt)
			}
		}
	} else {
		st.reads[a.Thread] = now
	}
}
