package vclock

import (
	"testing"

	"racedet/internal/rt/event"
)

func access(t event.ThreadID, obj int64, k event.Kind) event.Access {
	return event.Access{Loc: event.Loc{Obj: event.ObjID(obj), Slot: 0}, Thread: t, Kind: k}
}

func TestVCOperations(t *testing.T) {
	a := VC{1: 3, 2: 1}
	b := VC{2: 5, 3: 2}
	c := a.Clone()
	c.Join(b)
	if c[1] != 3 || c[2] != 5 || c[3] != 2 {
		t.Fatalf("join = %v", c)
	}
	if a[2] != 1 {
		t.Fatal("Join must not mutate the source's clone origin")
	}
	if !c.HappensBefore(2, 5) || c.HappensBefore(2, 6) {
		t.Fatal("HappensBefore wrong")
	}
}

func TestStartEdgeOrders(t *testing.T) {
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.Access(access(0, 1, event.Write)) // parent init
	d.ThreadStarted(1, 0)               // start edge
	d.Access(access(1, 1, event.Write)) // ordered after the init
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("start edge must order init vs child, got %d reports", n)
	}
}

func TestUnorderedWritesRace(t *testing.T) {
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.ThreadStarted(2, 0)
	d.Access(access(1, 1, event.Write))
	d.Access(access(2, 1, event.Write))
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("unordered sibling writes must race, got %d", n)
	}
}

func TestLockTransfersClock(t *testing.T) {
	// T1 writes inside a critical section; T2 reads inside a critical
	// section on the same lock afterwards: release→acquire edge orders
	// them, no race.
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.ThreadStarted(2, 0)
	d.MonitorEnter(1, 100, 1)
	d.Access(access(1, 1, event.Write))
	d.MonitorExit(1, 100, 0)
	d.MonitorEnter(2, 100, 1)
	d.Access(access(2, 1, event.Read))
	d.MonitorExit(2, 100, 0)
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("lock edge must order the accesses, got %d reports", n)
	}
}

func TestAccidentalOrderingHidesFeasibleRace(t *testing.T) {
	// §2.2: T1's unprotected write precedes its critical section on m;
	// T2 writes inside its own critical section on m. In the observed
	// order (T1's CS first) the HB detector derives an ordering and
	// stays silent, even though swapping the lock acquisitions would
	// race. This is exactly the feasible race the paper's lockset
	// detector reports and HB misses.
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.ThreadStarted(2, 0)
	d.Access(access(1, 1, event.Write)) // T11: unprotected
	d.MonitorEnter(1, 100, 1)           // T13
	d.MonitorExit(1, 100, 0)
	d.MonitorEnter(2, 100, 1)           // T20: acquires after T1's release
	d.Access(access(2, 1, event.Write)) // T21
	d.MonitorExit(2, 100, 0)
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("HB must consider these ordered (feasible race missed by design), got %d reports", n)
	}
}

func TestJoinEdgeOrders(t *testing.T) {
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.Access(access(1, 1, event.Write))
	d.ThreadFinished(1)
	d.Joined(0, 1)
	d.Access(access(0, 1, event.Read)) // ordered by the join
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("join edge must order the read, got %d reports", n)
	}
}

func TestWriteAfterUnorderedReadsRaces(t *testing.T) {
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.ThreadStarted(2, 0)
	d.Access(access(1, 1, event.Read))
	d.Access(access(2, 1, event.Write)) // unordered with T1's read
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("write unordered with a read must race, got %d", n)
	}
}

func TestReadsDoNotRaceWithReads(t *testing.T) {
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.ThreadStarted(2, 0)
	d.Access(access(1, 1, event.Read))
	d.Access(access(2, 1, event.Read))
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("reads never race, got %d", n)
	}
}

func TestReentrantLockIgnored(t *testing.T) {
	d := New()
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.MonitorEnter(1, 100, 1)
	d.MonitorEnter(1, 100, 2) // reentrant: no clock effects
	d.MonitorExit(1, 100, 1)
	d.Access(access(1, 1, event.Write))
	d.MonitorExit(1, 100, 0)
	d.MonitorEnter(2, 100, 1)
	d.Access(access(2, 1, event.Write))
	d.MonitorExit(2, 100, 0)
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("reentrancy confused the clocks: %d reports", n)
	}
}
