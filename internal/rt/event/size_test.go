//go:build amd64 || arm64

// Size regression guard for the hot-path event record. The zero-
// allocation pipeline (PR5) and the binary trace encoder both lean on
// Access staying compact and cache-friendly: at 96 bytes, two records
// span exactly three 64-byte cache lines and a 4096-entry batch is
// 384 KiB. Growing the struct is sometimes the right call — but it
// must be a deliberate one, so this file fails to COMPILE (not just a
// test failure) the moment the size drifts on 64-bit platforms.
package event

import (
	"testing"
	"unsafe"
)

const _accessSize = unsafe.Sizeof(Access{})

// Both directions of the inequality: a negative array length is a
// compile error, so these two declarations together pin equality.
var (
	_ [_accessSize - 96]struct{} // fails to compile if Access shrinks below 96 bytes
	_ [96 - _accessSize]struct{} // fails to compile if Access grows past 96 bytes
)

// TestAccessSize restates the assertion at run time with a readable
// message, for humans who get here via a test log rather than a
// compile error.
func TestAccessSize(t *testing.T) {
	if s := unsafe.Sizeof(Access{}); s != 96 {
		t.Fatalf("unsafe.Sizeof(event.Access) = %d bytes, want 96: the trace encoder and batch sizing assume this layout", s)
	}
}
