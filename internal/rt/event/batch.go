// Per-thread access batching: instead of calling Sink.Access once per
// executed trace instruction, the interpreter appends accesses to
// fixed-size per-thread buffers and hands whole batches to the sink.
//
// The equivalence argument is structural: a buffer only ever holds a
// run of consecutive accesses by one thread, and it is flushed before
// any other sink callback (monitor, lifecycle, join) and before a
// different thread's access is appended. The downstream sink therefore
// observes exactly the event sequence it would have seen unbatched —
// batching changes call granularity, never order. Because every lock
// operation forces a flush, all accesses in one batch were executed
// under the same lock environment, which is what lets batch-aware
// detectors materialize the (interned) lockset once per batch instead
// of once per access.
package event

// BatchSink is implemented by sinks that can consume a run of
// consecutive accesses by a single thread in one call. All accesses in
// the batch share the thread and the lock environment (flushes are
// forced on every monitor and lifecycle event).
type BatchSink interface {
	Sink
	AccessBatch(batch []Access)
}

// AccessBatch implements BatchSink for MultiSink: batch-aware children
// receive the whole batch, the rest receive the accesses one by one —
// in both cases in original order.
func (m MultiSink) AccessBatch(batch []Access) {
	for _, s := range m {
		if bs, ok := s.(BatchSink); ok {
			bs.AccessBatch(batch)
			continue
		}
		for _, a := range batch {
			s.Access(a)
		}
	}
}

// AccessBatch implements BatchSink.
func (NullSink) AccessBatch(batch []Access) {}

// DefaultBatchSize is the per-thread buffer capacity used when batching
// is requested without an explicit size.
const DefaultBatchSize = 128

// Batcher wraps a sink with per-thread access batching. It implements
// Sink itself; the owner (the interpreter) must additionally call
// Flush at context switches and when the run ends.
type Batcher struct {
	sink  Sink
	batch BatchSink // non-nil when sink is batch-aware
	size  int
	bufs  [][]Access // per thread, lazily sized; at most one non-empty
	live  ThreadID   // thread owning the single non-empty buffer
	any   bool       // some buffer is non-empty
}

// NewBatcher wraps sink; size <= 0 selects DefaultBatchSize.
func NewBatcher(sink Sink, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	b := &Batcher{sink: sink, size: size}
	if bs, ok := sink.(BatchSink); ok {
		b.batch = bs
	}
	return b
}

var _ BatchSink = (*Batcher)(nil)

func (b *Batcher) buf(t ThreadID) *[]Access {
	for int(t) >= len(b.bufs) {
		b.bufs = append(b.bufs, nil)
	}
	return &b.bufs[t]
}

// Flush delivers every buffered access downstream, preserving order.
// A no-op when nothing is buffered: downstream batch sinks never see
// an empty AccessBatch call.
func (b *Batcher) Flush() {
	if !b.any {
		return
	}
	b.any = false
	buf := &b.bufs[b.live]
	// The buffer is truncated via defer: if the sink panics mid-
	// delivery, the run counts as consumed, so a caller that recovers
	// and keeps going can never re-deliver the prefix the sink already
	// saw (the fault-tolerant back end journals upstream of us and
	// re-drives delivery itself).
	defer func() { *buf = (*buf)[:0] }()
	if b.batch != nil {
		b.batch.AccessBatch(*buf)
		return
	}
	for _, a := range *buf {
		b.sink.Access(a)
	}
}

// Close flushes any buffered accesses. Producers that end early — an
// interpreter error, a cancelled run — must call it (or Flush) so the
// tail of the access stream is not silently dropped. Idempotent; the
// batcher remains usable afterwards.
func (b *Batcher) Close() {
	b.Flush()
}

// Access implements Sink: append to t's buffer, flushing another
// thread's pending run first so global order is preserved.
func (b *Batcher) Access(a Access) {
	if b.any && b.live != a.Thread {
		b.Flush()
	}
	buf := b.buf(a.Thread)
	if *buf == nil {
		*buf = make([]Access, 0, b.size)
	}
	*buf = append(*buf, a)
	b.live = a.Thread
	b.any = true
	if len(*buf) >= b.size {
		b.Flush()
	}
}

// AccessBatch implements BatchSink (an already-batched producer short-
// circuits through, after flushing pending accesses).
func (b *Batcher) AccessBatch(batch []Access) {
	for _, a := range batch {
		b.Access(a)
	}
}

// ThreadStarted implements Sink.
func (b *Batcher) ThreadStarted(child, parent ThreadID) {
	b.Flush()
	b.sink.ThreadStarted(child, parent)
}

// ThreadFinished implements Sink.
func (b *Batcher) ThreadFinished(t ThreadID) {
	b.Flush()
	b.sink.ThreadFinished(t)
}

// Joined implements Sink.
func (b *Batcher) Joined(joiner, joinee ThreadID) {
	b.Flush()
	b.sink.Joined(joiner, joinee)
}

// MonitorEnter implements Sink.
func (b *Batcher) MonitorEnter(t ThreadID, lock ObjID, depth int) {
	b.Flush()
	b.sink.MonitorEnter(t, lock, depth)
}

// MonitorExit implements Sink.
func (b *Batcher) MonitorExit(t ThreadID, lock ObjID, depth int) {
	b.Flush()
	b.sink.MonitorExit(t, lock, depth)
}
