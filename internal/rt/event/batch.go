// Per-thread access batching: instead of calling Sink.Access once per
// executed trace instruction, the interpreter appends accesses to
// fixed-size per-thread buffers and hands whole batches to the sink.
//
// The equivalence argument is structural: a buffer only ever holds a
// run of consecutive accesses by one thread, and it is flushed before
// any other sink callback (monitor, lifecycle, join) and before a
// different thread's access is appended. The downstream sink therefore
// observes exactly the event sequence it would have seen unbatched —
// batching changes call granularity, never order. Because every lock
// operation forces a flush, all accesses in one batch were executed
// under the same lock environment, which is what lets batch-aware
// detectors materialize the (interned) lockset once per batch instead
// of once per access.
package event

import "sync"

// BatchSink is implemented by sinks that can consume a run of
// consecutive accesses by a single thread in one call. All accesses in
// the batch share the thread and the lock environment (flushes are
// forced on every monitor and lifecycle event). The batch slice is
// only valid for the duration of the call: the producer truncates and
// reuses (and eventually pool-recycles) the backing buffer.
type BatchSink interface {
	Sink
	AccessBatch(batch []Access)
}

// AccessBatch implements BatchSink for MultiSink: batch-aware children
// receive the whole batch, the rest receive the accesses one by one —
// in both cases in original order.
func (m MultiSink) AccessBatch(batch []Access) {
	for _, s := range m {
		if bs, ok := s.(BatchSink); ok {
			bs.AccessBatch(batch)
			continue
		}
		for _, a := range batch {
			s.Access(a)
		}
	}
}

// AccessBatch implements BatchSink.
func (NullSink) AccessBatch(batch []Access) {}

// DefaultBatchSize is the per-thread buffer capacity used when batching
// is requested without an explicit size.
const DefaultBatchSize = 128

// accessBufPool recycles per-thread batch buffers across Batcher
// lifetimes (one Batcher per interpreter run): Close returns every
// buffer here, so in steady state batched runs allocate no buffers at
// all.
var accessBufPool = sync.Pool{New: func() any { return []Access(nil) }}

func getAccessBuf(want int) []Access {
	b := accessBufPool.Get().([]Access)
	if cap(b) < want {
		return make([]Access, 0, want)
	}
	return b[:0]
}

func putAccessBuf(b []Access) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = Access{} // do not pin a dead run's locksets or strings
	}
	accessBufPool.Put(b[:0])
}

// Batcher wraps a sink with per-thread access batching. It implements
// Sink itself; the owner (the interpreter) must additionally call
// Flush at context switches and Close when the run ends.
type Batcher struct {
	sink      Sink
	batch     BatchSink // non-nil when sink is batch-aware
	size      int
	bufs      [][]Access // per thread, pool-backed, lazily sized; at most one non-empty
	live      ThreadID   // thread owning the single non-empty buffer
	any       bool       // some buffer is non-empty
	closed    bool       // Close ran: buffers recycled, late events dropped
	lateDrops uint64     // accesses dropped because they arrived after Close
}

// NewBatcher wraps sink; size <= 0 selects DefaultBatchSize.
func NewBatcher(sink Sink, size int) *Batcher {
	if size <= 0 {
		size = DefaultBatchSize
	}
	b := &Batcher{sink: sink, size: size}
	if bs, ok := sink.(BatchSink); ok {
		b.batch = bs
	}
	return b
}

var _ BatchSink = (*Batcher)(nil)

func (b *Batcher) buf(t ThreadID) *[]Access {
	for int(t) >= len(b.bufs) {
		b.bufs = append(b.bufs, nil)
	}
	return &b.bufs[t]
}

// Flush delivers every buffered access downstream, preserving order.
// A no-op when nothing is buffered: downstream batch sinks never see
// an empty AccessBatch call.
func (b *Batcher) Flush() {
	if !b.any {
		return
	}
	b.any = false
	buf := &b.bufs[b.live]
	// The buffer is truncated via defer: if the sink panics mid-
	// delivery, the run counts as consumed, so a caller that recovers
	// and keeps going can never re-deliver the prefix the sink already
	// saw (the fault-tolerant back end journals upstream of us and
	// re-drives delivery itself).
	defer func() { *buf = (*buf)[:0] }()
	if b.batch != nil {
		b.batch.AccessBatch(*buf)
		return
	}
	for _, a := range *buf {
		b.sink.Access(a)
	}
}

// Close flushes any buffered accesses, returns every per-thread
// buffer to the package pool, and marks the batcher terminal.
// Producers must call it when the run ends — including early ends (an
// interpreter error, a cancelled run) — so the tail of the access
// stream is not silently dropped. Idempotent. After Close the batcher
// is inert: late Access/AccessBatch calls are dropped (counted by
// LateDrops) rather than written into a buffer that another run may
// already have obtained from the pool; lifecycle and monitor events
// still pass through to the sink.
func (b *Batcher) Close() {
	if b.closed {
		return
	}
	b.Flush()
	b.closed = true
	for i, buf := range b.bufs {
		b.bufs[i] = nil
		putAccessBuf(buf)
	}
	b.bufs = nil
}

// LateDrops reports how many accesses arrived after Close and were
// dropped under the post-Close contract.
func (b *Batcher) LateDrops() uint64 { return b.lateDrops }

// Access implements Sink: append to t's buffer, flushing another
// thread's pending run first so global order is preserved.
func (b *Batcher) Access(a Access) {
	if b.closed {
		b.lateDrops++
		return
	}
	if b.any && b.live != a.Thread {
		b.Flush()
	}
	buf := b.buf(a.Thread)
	if *buf == nil {
		*buf = getAccessBuf(b.size)
	}
	*buf = append(*buf, a)
	b.live = a.Thread
	b.any = true
	if len(*buf) >= b.size {
		b.Flush()
	}
}

// AccessBatch implements BatchSink (an already-batched producer short-
// circuits through, after flushing pending accesses).
func (b *Batcher) AccessBatch(batch []Access) {
	if b.closed {
		b.lateDrops += uint64(len(batch))
		return
	}
	for _, a := range batch {
		b.Access(a)
	}
}

// ThreadStarted implements Sink.
func (b *Batcher) ThreadStarted(child, parent ThreadID) {
	b.Flush()
	b.sink.ThreadStarted(child, parent)
}

// ThreadFinished implements Sink.
func (b *Batcher) ThreadFinished(t ThreadID) {
	b.Flush()
	b.sink.ThreadFinished(t)
}

// Joined implements Sink.
func (b *Batcher) Joined(joiner, joinee ThreadID) {
	b.Flush()
	b.sink.Joined(joiner, joinee)
}

// MonitorEnter implements Sink.
func (b *Batcher) MonitorEnter(t ThreadID, lock ObjID, depth int) {
	b.Flush()
	b.sink.MonitorEnter(t, lock, depth)
}

// MonitorExit implements Sink.
func (b *Batcher) MonitorExit(t ThreadID, lock ObjID, depth int) {
	b.Flush()
	b.sink.MonitorExit(t, lock, depth)
}
