package event

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestInternerCanonicalization(t *testing.T) {
	it := NewInterner()
	if it.Intern(nil) != EmptyLocksetID {
		t.Fatalf("empty lockset must intern to EmptyLocksetID")
	}
	a := it.Intern([]ObjID{3, 1, 2})
	b := it.Intern([]ObjID{1, 2, 3})
	c := it.Intern([]ObjID{2, 1, 3, 3, 1})
	if a != b || b != c {
		t.Fatalf("permutations/duplicates must intern identically: %d %d %d", a, b, c)
	}
	if got := it.Lockset(a); !got.Equal(Lockset{1, 2, 3}) {
		t.Fatalf("canonical set = %v, want [1 2 3]", got)
	}
	d := it.Intern([]ObjID{1, 2})
	if d == a {
		t.Fatalf("distinct sets must get distinct ids")
	}
	if it.Size() != 3 { // ∅, {1,2,3}, {1,2}
		t.Fatalf("Size = %d, want 3", it.Size())
	}
}

func TestInternerStableIDs(t *testing.T) {
	it := NewInterner()
	id := it.Intern([]ObjID{7, 9})
	for i := 0; i < 100; i++ {
		if got := it.Intern([]ObjID{9, 7}); got != id {
			t.Fatalf("re-intern changed id: %d -> %d", id, got)
		}
	}
}

func TestInternerRelationsMatchSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	it := NewInterner()
	var ids []LocksetID
	var sets []Lockset
	for i := 0; i < 60; i++ {
		n := rng.Intn(5)
		ls := make([]ObjID, n)
		for j := range ls {
			ls[j] = ObjID(rng.Intn(8))
		}
		id := it.Intern(ls)
		ids = append(ids, id)
		sets = append(sets, it.Lockset(id))
	}
	for i := range ids {
		for j := range ids {
			if got, want := it.Subset(ids[i], ids[j]), sets[i].SubsetOf(sets[j]); got != want {
				t.Fatalf("Subset(%v, %v) = %v, want %v", sets[i], sets[j], got, want)
			}
			if got, want := it.Intersects(ids[i], ids[j]), sets[i].Intersects(sets[j]); got != want {
				t.Fatalf("Intersects(%v, %v) = %v, want %v", sets[i], sets[j], got, want)
			}
			// Memoized second call must agree.
			if got, want := it.Subset(ids[i], ids[j]), sets[i].SubsetOf(sets[j]); got != want {
				t.Fatalf("memoized Subset(%v, %v) = %v, want %v", sets[i], sets[j], got, want)
			}
		}
	}
}

func TestInternerInternAllocFree(t *testing.T) {
	it := NewInterner()
	it.Intern([]ObjID{5, 6, 7})
	locks := []ObjID{7, 5, 6}
	allocs := testing.AllocsPerRun(200, func() {
		it.Intern(locks)
	})
	if allocs != 0 {
		t.Fatalf("re-interning a known set allocated %.1f objects/op, want 0", allocs)
	}
}

func TestLockTrackerInterned(t *testing.T) {
	it := NewInterner()
	lt := NewLockTrackerInterned(it)
	const tid = ThreadID(0)
	lt.MonitorEnter(tid, 10, 1)
	lt.MonitorEnter(tid, 4, 1)
	held := lt.Held(tid)
	id := lt.HeldID(tid)
	if !held.Equal(Lockset{4, 10}) {
		t.Fatalf("Held = %v, want [4 10]", held)
	}
	if got := it.Lockset(id); !got.Equal(held) {
		t.Fatalf("HeldID resolves to %v, want %v", got, held)
	}
	// The tracker must hand out the interner's canonical slice, so two
	// threads with equal locksets share identity.
	lt.MonitorEnter(1, 4, 1)
	lt.MonitorEnter(1, 10, 1)
	if lt.HeldID(1) != id {
		t.Fatalf("equal locksets must share one id")
	}
	lt.MonitorExit(tid, 4, 0)
	if lt.HeldID(tid) == id {
		t.Fatalf("releasing a lock must change the interned id")
	}
	if got := it.Lockset(lt.HeldID(tid)); !got.Equal(Lockset{10}) {
		t.Fatalf("after exit Held = %v, want [10]", got)
	}
}

func TestBatcherPreservesOrder(t *testing.T) {
	// A recording sink sees the same sequence batched and unbatched.
	var got, want []string
	feed := func(s Sink) {
		s.ThreadStarted(0, NoThread)
		for i := 0; i < 5; i++ {
			s.Access(Access{Loc: Loc{Obj: 1, Slot: int32(i)}, Thread: 0, Kind: Read})
		}
		s.MonitorEnter(0, 7, 0)
		s.Access(Access{Loc: Loc{Obj: 2}, Thread: 0, Kind: Write})
		s.Access(Access{Loc: Loc{Obj: 3}, Thread: 1, Kind: Write}) // thread switch
		s.MonitorExit(0, 7, 0)
		s.ThreadFinished(0)
	}
	feed(recorderSink{&want})
	b := NewBatcher(recorderSink{&got}, 3)
	feed(b)
	b.Flush()
	if len(got) != len(want) {
		t.Fatalf("batched sequence has %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: batched %q, unbatched %q", i, got[i], want[i])
		}
	}
}

type recorderSink struct {
	out *[]string
}

func (r recorderSink) push(s string) { *r.out = append(*r.out, s) }

func (r recorderSink) ThreadStarted(c, p ThreadID) {
	r.push(fmt.Sprintf("start %s<-%s", c, p))
}
func (r recorderSink) ThreadFinished(t ThreadID) { r.push(fmt.Sprintf("finish %s", t)) }
func (r recorderSink) Joined(a, b ThreadID)      { r.push(fmt.Sprintf("join %s %s", a, b)) }
func (r recorderSink) MonitorEnter(t ThreadID, l ObjID, d int) {
	r.push(fmt.Sprintf("enter %s %d %d", t, l, d))
}
func (r recorderSink) MonitorExit(t ThreadID, l ObjID, d int) {
	r.push(fmt.Sprintf("exit %s %d %d", t, l, d))
}
func (r recorderSink) Access(a Access) {
	r.push(fmt.Sprintf("access %s %v %s %s", a.Thread, a.Loc, a.Kind, a.Locks))
}
