package event

import (
	"testing"
)

// recordingSink captures the delivered event sequence, optionally
// panicking partway through one AccessBatch delivery.
type recordingSink struct {
	accesses []Access
	batches  int

	panicInBatch int // panic after delivering this many accesses of a batch (0 = never)
	panicked     bool
}

func (r *recordingSink) Access(a Access) { r.accesses = append(r.accesses, a) }

func (r *recordingSink) AccessBatch(batch []Access) {
	r.batches++
	if len(batch) == 0 {
		panic("empty AccessBatch delivered")
	}
	for i, a := range batch {
		if r.panicInBatch > 0 && !r.panicked && i == r.panicInBatch {
			r.panicked = true
			panic("recordingSink: injected mid-flush failure")
		}
		r.accesses = append(r.accesses, a)
	}
}

func (r *recordingSink) ThreadStarted(child, parent ThreadID)       {}
func (r *recordingSink) ThreadFinished(t ThreadID)                  {}
func (r *recordingSink) Joined(joiner, joinee ThreadID)             {}
func (r *recordingSink) MonitorEnter(t ThreadID, lock ObjID, d int) {}
func (r *recordingSink) MonitorExit(t ThreadID, lock ObjID, d int)  {}

func acc(t ThreadID, slot int32) Access {
	return Access{Loc: Loc{Obj: 1, Slot: slot}, Thread: t, Kind: Write}
}

// TestBatcherCloseFlushesTail: a producer that stops mid-batch (early
// Close) must not lose the buffered suffix.
func TestBatcherCloseFlushesTail(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	for i := int32(0); i < 3; i++ {
		b.Access(acc(0, i))
	}
	if len(sink.accesses) != 0 {
		t.Fatalf("accesses delivered before any flush: %d", len(sink.accesses))
	}
	b.Close()
	if len(sink.accesses) != 3 {
		t.Fatalf("Close delivered %d accesses, want 3", len(sink.accesses))
	}
	// Idempotent: a second Close delivers nothing more.
	b.Close()
	if len(sink.accesses) != 3 || sink.batches != 1 {
		t.Fatalf("second Close re-delivered: %d accesses, %d batches", len(sink.accesses), sink.batches)
	}
}

// TestBatcherNoEmptyBatchAtContextSwitch: monitor and lifecycle events
// force flushes; when nothing is buffered those flushes must not turn
// into empty AccessBatch deliveries (recordingSink panics on one).
func TestBatcherNoEmptyBatchAtContextSwitch(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	b.MonitorEnter(0, 500, 1) // nothing buffered: flush is a no-op
	b.Access(acc(0, 0))
	b.MonitorExit(0, 500, 0) // flushes the single access
	b.MonitorExit(0, 501, 0) // nothing buffered again
	b.ThreadFinished(0)
	if sink.batches != 1 {
		t.Fatalf("%d batch deliveries, want 1", sink.batches)
	}
	if len(sink.accesses) != 1 {
		t.Fatalf("%d accesses delivered, want 1", len(sink.accesses))
	}
}

// TestBatcherThreadSwitchOrdering: interleaved threads produce flushes
// on every switch, and the delivered order equals program order.
func TestBatcherThreadSwitchOrdering(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	want := []Access{acc(0, 0), acc(0, 1), acc(1, 2), acc(0, 3)}
	for _, a := range want {
		b.Access(a)
	}
	b.Flush()
	if len(sink.accesses) != len(want) {
		t.Fatalf("%d accesses delivered, want %d", len(sink.accesses), len(want))
	}
	for i, a := range want {
		got := sink.accesses[i]
		if got.Thread != a.Thread || got.Loc != a.Loc {
			t.Fatalf("access %d = %+v, want %+v", i, got, a)
		}
	}
	if sink.batches != 3 {
		t.Fatalf("%d batches, want 3 (run per thread switch)", sink.batches)
	}
}

// TestBatcherPanicMidFlushNoRedelivery: if the sink fails partway
// through a batch, the buffered run counts as consumed — a recovering
// producer's next Flush must not re-deliver the prefix the sink
// already processed.
func TestBatcherPanicMidFlushNoRedelivery(t *testing.T) {
	sink := &recordingSink{panicInBatch: 2}
	b := NewBatcher(sink, 8)
	for i := int32(0); i < 4; i++ {
		b.Access(acc(0, i))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("sink panic did not propagate")
			}
		}()
		b.Flush()
	}()
	delivered := len(sink.accesses) // prefix before the failure
	// The producer recovers and continues with new accesses.
	b.Access(acc(0, 9))
	b.Flush()
	if len(sink.accesses) != delivered+1 {
		t.Fatalf("after recovery %d accesses, want %d (prefix must not re-deliver)",
			len(sink.accesses), delivered+1)
	}
	if last := sink.accesses[len(sink.accesses)-1]; last.Loc.Slot != 9 {
		t.Fatalf("last delivered access = %+v, want slot 9", last)
	}
}

// TestBatcherSizeTrigger: the buffer flushes exactly when it reaches
// the configured size.
func TestBatcherSizeTrigger(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 2)
	b.Access(acc(0, 0))
	if sink.batches != 0 {
		t.Fatal("flushed before reaching size")
	}
	b.Access(acc(0, 1))
	if sink.batches != 1 || len(sink.accesses) != 2 {
		t.Fatalf("size-2 buffer: %d batches / %d accesses after 2 appends", sink.batches, len(sink.accesses))
	}
}
