package event

import (
	"testing"
)

// recordingSink captures the delivered event sequence, optionally
// panicking partway through one AccessBatch delivery.
type recordingSink struct {
	accesses []Access
	batches  int

	panicInBatch int // panic after delivering this many accesses of a batch (0 = never)
	panicked     bool
}

func (r *recordingSink) Access(a Access) { r.accesses = append(r.accesses, a) }

func (r *recordingSink) AccessBatch(batch []Access) {
	r.batches++
	if len(batch) == 0 {
		panic("empty AccessBatch delivered")
	}
	for i, a := range batch {
		if r.panicInBatch > 0 && !r.panicked && i == r.panicInBatch {
			r.panicked = true
			panic("recordingSink: injected mid-flush failure")
		}
		r.accesses = append(r.accesses, a)
	}
}

func (r *recordingSink) ThreadStarted(child, parent ThreadID)       {}
func (r *recordingSink) ThreadFinished(t ThreadID)                  {}
func (r *recordingSink) Joined(joiner, joinee ThreadID)             {}
func (r *recordingSink) MonitorEnter(t ThreadID, lock ObjID, d int) {}
func (r *recordingSink) MonitorExit(t ThreadID, lock ObjID, d int)  {}

func acc(t ThreadID, slot int32) Access {
	return Access{Loc: Loc{Obj: 1, Slot: slot}, Thread: t, Kind: Write}
}

// TestBatcherCloseFlushesTail: a producer that stops mid-batch (early
// Close) must not lose the buffered suffix.
func TestBatcherCloseFlushesTail(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	for i := int32(0); i < 3; i++ {
		b.Access(acc(0, i))
	}
	if len(sink.accesses) != 0 {
		t.Fatalf("accesses delivered before any flush: %d", len(sink.accesses))
	}
	b.Close()
	if len(sink.accesses) != 3 {
		t.Fatalf("Close delivered %d accesses, want 3", len(sink.accesses))
	}
	// Idempotent: a second Close delivers nothing more.
	b.Close()
	if len(sink.accesses) != 3 || sink.batches != 1 {
		t.Fatalf("second Close re-delivered: %d accesses, %d batches", len(sink.accesses), sink.batches)
	}
}

// TestBatcherNoEmptyBatchAtContextSwitch: monitor and lifecycle events
// force flushes; when nothing is buffered those flushes must not turn
// into empty AccessBatch deliveries (recordingSink panics on one).
func TestBatcherNoEmptyBatchAtContextSwitch(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	b.MonitorEnter(0, 500, 1) // nothing buffered: flush is a no-op
	b.Access(acc(0, 0))
	b.MonitorExit(0, 500, 0) // flushes the single access
	b.MonitorExit(0, 501, 0) // nothing buffered again
	b.ThreadFinished(0)
	if sink.batches != 1 {
		t.Fatalf("%d batch deliveries, want 1", sink.batches)
	}
	if len(sink.accesses) != 1 {
		t.Fatalf("%d accesses delivered, want 1", len(sink.accesses))
	}
}

// TestBatcherThreadSwitchOrdering: interleaved threads produce flushes
// on every switch, and the delivered order equals program order.
func TestBatcherThreadSwitchOrdering(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	want := []Access{acc(0, 0), acc(0, 1), acc(1, 2), acc(0, 3)}
	for _, a := range want {
		b.Access(a)
	}
	b.Flush()
	if len(sink.accesses) != len(want) {
		t.Fatalf("%d accesses delivered, want %d", len(sink.accesses), len(want))
	}
	for i, a := range want {
		got := sink.accesses[i]
		if got.Thread != a.Thread || got.Loc != a.Loc {
			t.Fatalf("access %d = %+v, want %+v", i, got, a)
		}
	}
	if sink.batches != 3 {
		t.Fatalf("%d batches, want 3 (run per thread switch)", sink.batches)
	}
}

// TestBatcherPanicMidFlushNoRedelivery: if the sink fails partway
// through a batch, the buffered run counts as consumed — a recovering
// producer's next Flush must not re-deliver the prefix the sink
// already processed.
func TestBatcherPanicMidFlushNoRedelivery(t *testing.T) {
	sink := &recordingSink{panicInBatch: 2}
	b := NewBatcher(sink, 8)
	for i := int32(0); i < 4; i++ {
		b.Access(acc(0, i))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("sink panic did not propagate")
			}
		}()
		b.Flush()
	}()
	delivered := len(sink.accesses) // prefix before the failure
	// The producer recovers and continues with new accesses.
	b.Access(acc(0, 9))
	b.Flush()
	if len(sink.accesses) != delivered+1 {
		t.Fatalf("after recovery %d accesses, want %d (prefix must not re-deliver)",
			len(sink.accesses), delivered+1)
	}
	if last := sink.accesses[len(sink.accesses)-1]; last.Loc.Slot != 9 {
		t.Fatalf("last delivered access = %+v, want slot 9", last)
	}
}

// TestBatcherPostCloseDrops pins the post-Close contract: Close is
// terminal, and accesses arriving afterwards are dropped and counted
// instead of delivered or buffered.
func TestBatcherPostCloseDrops(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 8)
	b.Access(acc(0, 0))
	b.Close()
	if got := len(sink.accesses); got != 1 {
		t.Fatalf("Close delivered %d accesses, want 1", got)
	}
	b.Access(acc(0, 1))
	b.AccessBatch([]Access{acc(0, 2), acc(1, 3)})
	b.Flush()
	b.Close()
	if got := len(sink.accesses); got != 1 {
		t.Fatalf("post-Close events leaked downstream: %d accesses, want 1", got)
	}
	if got := b.LateDrops(); got != 3 {
		t.Fatalf("LateDrops = %d, want 3", got)
	}
}

// TestBatcherCloseDoesNotScribbleRecycledBuffer is the aliasing test
// for the pooled buffers: Close hands the first batcher's buffer to
// the package pool, a second batcher picks it up, and a late Access on
// the first batcher must not write into what is now the second
// batcher's live buffer.
func TestBatcherCloseDoesNotScribbleRecycledBuffer(t *testing.T) {
	first := NewBatcher(&recordingSink{}, 8)
	first.Access(acc(0, 0))
	first.Close()

	// Drain anything else in the pool so the second batcher gets the
	// first one's buffer (same capacity class) with high probability;
	// correctness must hold regardless.
	second := NewBatcher(&recordingSink{}, 8)
	second.Access(acc(0, 10))
	second.Access(acc(0, 11))

	first.Access(acc(0, 99)) // must be dropped, not appended anywhere

	sink := &recordingSink{}
	second.sink, second.batch = sink, sink
	second.Flush()
	if len(sink.accesses) != 2 {
		t.Fatalf("second batcher delivered %d accesses, want 2", len(sink.accesses))
	}
	for i, want := range []int32{10, 11} {
		if got := sink.accesses[i].Loc.Slot; got != want {
			t.Fatalf("access %d slot = %d, want %d (recycled buffer scribbled)", i, got, want)
		}
	}
	if first.LateDrops() != 1 {
		t.Fatalf("first.LateDrops = %d, want 1", first.LateDrops())
	}
}

// TestBatcherPoolReuse: a Close/NewBatcher cycle reuses the pooled
// buffer rather than allocating a fresh one each run.
func TestBatcherPoolReuse(t *testing.T) {
	// Prime the pool with a buffer of the right capacity class.
	b := NewBatcher(&recordingSink{}, 64)
	b.Access(acc(0, 0))
	b.Close()

	allocs := testing.AllocsPerRun(20, func() {
		nb := NewBatcher(NullSink{}, 64)
		nb.Access(acc(0, 1))
		nb.Close()
	})
	// NewBatcher allocates the Batcher itself and the bufs spine; the
	// 64-entry access buffer (the dominant cost) must come from the pool.
	if allocs > 4 {
		t.Fatalf("%v allocs per run cycle: access buffers are not being pool-recycled", allocs)
	}
}

// TestBatcherSizeTrigger: the buffer flushes exactly when it reaches
// the configured size.
func TestBatcherSizeTrigger(t *testing.T) {
	sink := &recordingSink{}
	b := NewBatcher(sink, 2)
	b.Access(acc(0, 0))
	if sink.batches != 0 {
		t.Fatal("flushed before reaching size")
	}
	b.Access(acc(0, 1))
	if sink.batches != 1 || len(sink.accesses) != 2 {
		t.Fatalf("size-2 buffer: %d batches / %d accesses after 2 appends", sink.batches, len(sink.accesses))
	}
}
