// Package event defines the runtime vocabulary shared by the
// interpreter and the datarace detectors: thread and object
// identities, logical memory locations, locksets, access events, and
// the weaker-than partial order of §3.1 of the paper.
//
// An access event is the 5-tuple (m, t, L, a, s) of §2.4: memory
// location, thread, lockset, access kind, and source location. The
// IsRace predicate and the weaker-than order are defined here exactly
// as in the paper, including the t⊥ ("at least two distinct threads")
// and t⊤ ("no threads") pseudothreads used by the trie detector.
package event

import (
	"fmt"
	"sort"
	"strings"

	"racedet/internal/lang/token"
)

// ThreadID identifies a thread. Real threads are >= 0; TBot and TTop
// are the lattice pseudothreads.
type ThreadID int32

// Pseudothreads of the thread lattice (§3.1, §3.2.1).
const (
	// TBot is t⊥: "at least two distinct threads". Once a location has
	// been accessed by two threads under the same lockset, the precise
	// identities no longer matter for future race decisions.
	TBot ThreadID = -2
	// TTop is t⊤: "no threads". Trie nodes that represent no accesses
	// hold it; it is the identity of the thread meet.
	TTop ThreadID = -3
	// NoThread marks an absent parent in lifecycle callbacks.
	NoThread ThreadID = -1
)

func (t ThreadID) String() string {
	switch t {
	case TBot:
		return "t⊥"
	case TTop:
		return "t⊤"
	case NoThread:
		return "-"
	}
	return fmt.Sprintf("T%d", int32(t))
}

// ThreadLeq is the partial order t_i ⊑ t_j of §3.1:
// t_i ⊑ t_j ⟺ t_i = t_j ∨ t_i = t⊥.
func ThreadLeq(ti, tj ThreadID) bool { return ti == tj || ti == TBot }

// ThreadMeet is the meet operator ⊓ on the thread lattice (§3.2.1).
func ThreadMeet(ti, tj ThreadID) ThreadID {
	switch {
	case ti == tj:
		return ti
	case ti == TTop:
		return tj
	case tj == TTop:
		return ti
	default:
		return TBot
	}
}

// Kind is the access type: READ or WRITE.
type Kind uint8

// Access kinds. WRITE is the bottom of the access lattice:
// a_i ⊑ a_j ⟺ a_i = a_j ∨ a_i = WRITE.
const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Write {
		return "WRITE"
	}
	return "READ"
}

// KindLeq is a_i ⊑ a_j.
func KindLeq(ai, aj Kind) bool { return ai == aj || ai == Write }

// KindMeet is the meet: equal kinds stay, differing kinds meet at WRITE.
func KindMeet(ai, aj Kind) Kind {
	if ai == aj {
		return ai
	}
	return Write
}

// ObjID identifies a heap object, array, or class object. Real objects
// are positive; join pseudolocks (§2.3) are negative.
type ObjID int64

// PseudoLock returns the dummy synchronization object S_t introduced
// for thread t to model join ordering with mutual exclusion (§2.3).
func PseudoLock(t ThreadID) ObjID { return ObjID(-int64(t) - 1) }

// IsPseudoLock reports whether the object is a join pseudolock.
func (o ObjID) IsPseudoLock() bool { return o < 0 }

func (o ObjID) String() string {
	if o.IsPseudoLock() {
		return fmt.Sprintf("S%d", -int64(o)-1)
	}
	return fmt.Sprintf("o%d", int64(o))
}

// ArraySlot is the Loc.Slot value for array-element accesses: the
// paper associates one memory location with all elements of an array.
const ArraySlot int32 = -1

// StaticSlotBase is the first static-field slot value; static field i
// of a class maps to StaticSlot(i). Keeping statics below ArraySlot
// lets the FieldsMerged variant collapse instance fields while leaving
// static fields of the same class distinct, as the paper specifies.
const StaticSlotBase int32 = -2

// StaticSlot maps a static field index to its Loc.Slot encoding.
func StaticSlot(i int) int32 { return StaticSlotBase - int32(i) }

// Loc is a logical memory location: an object plus a field slot.
// Static fields use the class object as Obj. Array accesses use
// ArraySlot, collapsing all elements of one array to one location.
type Loc struct {
	Obj  ObjID
	Slot int32
}

func (l Loc) String() string {
	if l.Slot == ArraySlot {
		return fmt.Sprintf("%s[]", l.Obj)
	}
	return fmt.Sprintf("%s.#%d", l.Obj, l.Slot)
}

// Lockset is a canonically sorted, duplicate-free set of lock
// identities. The zero value is the empty lockset.
type Lockset []ObjID

// NewLockset builds a canonical lockset from arbitrary lock IDs.
func NewLockset(locks ...ObjID) Lockset {
	ls := append(Lockset(nil), locks...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	// dedupe
	out := ls[:0]
	for i, l := range ls {
		if i == 0 || ls[i-1] != l {
			out = append(out, l)
		}
	}
	return out
}

// Contains reports whether l holds lock x.
func (l Lockset) Contains(x ObjID) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= x })
	return i < len(l) && l[i] == x
}

// SubsetOf reports l ⊆ other.
func (l Lockset) SubsetOf(other Lockset) bool {
	i, j := 0, 0
	for i < len(l) && j < len(other) {
		switch {
		case l[i] == other[j]:
			i++
			j++
		case l[i] > other[j]:
			j++
		default:
			return false
		}
	}
	return i == len(l)
}

// Intersects reports l ∩ other ≠ ∅.
func (l Lockset) Intersects(other Lockset) bool {
	i, j := 0, 0
	for i < len(l) && j < len(other) {
		switch {
		case l[i] == other[j]:
			return true
		case l[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Intersect returns l ∩ other as a new canonical lockset.
func (l Lockset) Intersect(other Lockset) Lockset {
	var out Lockset
	i, j := 0, 0
	for i < len(l) && j < len(other) {
		switch {
		case l[i] == other[j]:
			out = append(out, l[i])
			i++
			j++
		case l[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Equal reports set equality.
func (l Lockset) Equal(other Lockset) bool {
	if len(l) != len(other) {
		return false
	}
	for i := range l {
		if l[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (l Lockset) Clone() Lockset { return append(Lockset(nil), l...) }

func (l Lockset) String() string {
	parts := make([]string, len(l))
	for i, x := range l {
		parts[i] = x.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Access is an access event (m, t, L, a, s).
//
// Field order is chosen for cache density, not readability: the event
// pipeline buffers Access values by the thousand (Batcher runs, shard
// ring batches, journal suffixes), so the struct keeps the wide
// pointer-bearing fields together and packs the narrow scalars into
// one trailing word — with the int32 token.Pos fields this is 96
// bytes per event instead of the previous layout's 104.
type Access struct {
	Loc   Loc       // 16 bytes (12 used)
	Locks Lockset   // 24
	Pos   token.Pos // 24
	// FieldName is the human-readable location name ("Class.field" or
	// "[]") used only in reports.
	FieldName string // 16
	Thread    ThreadID
	// LockID is the interned identity of Locks when the producing
	// detector back end interns locksets (LockID and Locks are then set
	// together and Locks is the interner's immutable canonical slice).
	// Zero-valued events carry the empty lockset, consistently.
	LockID LocksetID
	Kind   Kind
}

func (a Access) String() string {
	return fmt.Sprintf("%s %s by %s locks=%s at %s", a.Kind, a.Loc, a.Thread, a.Locks, a.Pos)
}

// IsRace implements the IsRace(e_i, e_j) predicate of §2.4: same
// location, different threads, disjoint locksets, at least one write.
func IsRace(ei, ej Access) bool {
	return ei.Loc == ej.Loc &&
		ei.Thread != ej.Thread &&
		!ei.Locks.Intersects(ej.Locks) &&
		(ei.Kind == Write || ej.Kind == Write)
}

// WeakerThan implements the weaker-than partial order p ⊑ q of
// Definition 2: p.m = q.m ∧ p.L ⊆ q.L ∧ p.t ⊑ q.t ∧ p.a ⊑ q.a.
// By Theorem 1, if p ⊑ q then any future access racing with q also
// races with p, so q need not be remembered.
func WeakerThan(p, q Access) bool {
	return p.Loc == q.Loc &&
		p.Locks.SubsetOf(q.Locks) &&
		ThreadLeq(p.Thread, q.Thread) &&
		KindLeq(p.Kind, q.Kind)
}

// Sink consumes the runtime event stream produced by the interpreter.
// The full detector stack (ownership → cache → trie), each baseline
// detector, and the post-mortem logger all implement it.
type Sink interface {
	// ThreadStarted fires when a thread begins execution, including
	// the main thread (parent == NoThread). Conceptually the thread
	// performs mon-enter(S_child) as its first action (§2.3).
	ThreadStarted(child, parent ThreadID)
	// ThreadFinished fires when a thread's run method returns
	// (mon-exit(S_t)).
	ThreadFinished(t ThreadID)
	// Joined fires in the joining thread after join(t) completes; the
	// joiner conceptually performs mon-enter(S_joinee) and holds it
	// for the rest of the execution.
	Joined(joiner, joinee ThreadID)
	// MonitorEnter fires after t acquires lock; depth is the
	// post-acquire reentrancy depth (1 = outermost).
	MonitorEnter(t ThreadID, lock ObjID, depth int)
	// MonitorExit fires after t releases lock; depth is the
	// post-release reentrancy depth (0 = fully released).
	MonitorExit(t ThreadID, lock ObjID, depth int)
	// Access fires for each executed trace instruction. Locks is nil:
	// sinks maintain per-thread locksets from the monitor callbacks
	// (this keeps the common path allocation-free; a sink materializes
	// the lockset only when it actually needs it).
	Access(a Access)
}

// MultiSink fans the event stream out to several sinks (e.g. the real
// detector plus a post-mortem logger).
type MultiSink []Sink

// ThreadStarted implements Sink.
func (m MultiSink) ThreadStarted(child, parent ThreadID) {
	for _, s := range m {
		s.ThreadStarted(child, parent)
	}
}

// ThreadFinished implements Sink.
func (m MultiSink) ThreadFinished(t ThreadID) {
	for _, s := range m {
		s.ThreadFinished(t)
	}
}

// Joined implements Sink.
func (m MultiSink) Joined(joiner, joinee ThreadID) {
	for _, s := range m {
		s.Joined(joiner, joinee)
	}
}

// MonitorEnter implements Sink.
func (m MultiSink) MonitorEnter(t ThreadID, lock ObjID, depth int) {
	for _, s := range m {
		s.MonitorEnter(t, lock, depth)
	}
}

// MonitorExit implements Sink.
func (m MultiSink) MonitorExit(t ThreadID, lock ObjID, depth int) {
	for _, s := range m {
		s.MonitorExit(t, lock, depth)
	}
}

// Access implements Sink.
func (m MultiSink) Access(a Access) {
	for _, s := range m {
		s.Access(a)
	}
}

// NullSink discards all events; the Base configuration uses it.
type NullSink struct{}

// ThreadStarted implements Sink.
func (NullSink) ThreadStarted(child, parent ThreadID) {}

// ThreadFinished implements Sink.
func (NullSink) ThreadFinished(t ThreadID) {}

// Joined implements Sink.
func (NullSink) Joined(joiner, joinee ThreadID) {}

// MonitorEnter implements Sink.
func (NullSink) MonitorEnter(t ThreadID, lock ObjID, depth int) {}

// MonitorExit implements Sink.
func (NullSink) MonitorExit(t ThreadID, lock ObjID, depth int) {}

// Access implements Sink.
func (NullSink) Access(a Access) {}

// LockTracker maintains per-thread locksets (including join
// pseudolocks) from the lifecycle and monitor callbacks. Detector
// sinks embed it so they observe exactly the lock environment the
// paper's detector sees. Thread IDs are small dense ints, so the
// per-thread state lives in slices for a short hot path.
type LockTracker struct {
	stacks [][]ObjID // per thread: acquisition order, outermost first
	sorted []Lockset // memoized canonical lockset; nil = stale
	ids    []LocksetID
	intern *Interner // nil: Held allocates fresh canonical sets
}

// NewLockTracker returns an empty tracker.
func NewLockTracker() *LockTracker {
	return &LockTracker{}
}

// NewLockTrackerInterned returns a tracker that materializes locksets
// through it: Held returns the interner's immutable canonical slice
// (allocation-free after the first sight of each lockset) and HeldID
// returns its dense identity.
func NewLockTrackerInterned(it *Interner) *LockTracker {
	return &LockTracker{intern: it}
}

func (lt *LockTracker) grow(t ThreadID) {
	for int(t) >= len(lt.stacks) {
		lt.stacks = append(lt.stacks, nil)
		lt.sorted = append(lt.sorted, nil)
		lt.ids = append(lt.ids, EmptyLocksetID)
	}
}

// ThreadStarted installs the thread's own pseudolock.
func (lt *LockTracker) ThreadStarted(child, parent ThreadID) {
	lt.push(child, PseudoLock(child))
}

// ThreadFinished releases the thread's pseudolock (mon-exit(S_t)).
func (lt *LockTracker) ThreadFinished(t ThreadID) {
	lt.remove(t, PseudoLock(t))
}

// Joined grants the joiner the joinee's pseudolock permanently.
func (lt *LockTracker) Joined(joiner, joinee ThreadID) {
	lt.push(joiner, PseudoLock(joinee))
}

// MonitorEnter records an outermost acquisition; reentrant
// acquisitions (depth > 1) are ignored.
func (lt *LockTracker) MonitorEnter(t ThreadID, lock ObjID, depth int) {
	if depth == 1 {
		lt.push(t, lock)
	}
}

// MonitorExit records a full release; nested exits (depth > 0) are
// ignored.
func (lt *LockTracker) MonitorExit(t ThreadID, lock ObjID, depth int) {
	if depth == 0 {
		lt.remove(t, lock)
	}
}

func (lt *LockTracker) push(t ThreadID, lock ObjID) {
	lt.grow(t)
	lt.stacks[t] = append(lt.stacks[t], lock)
	lt.sorted[t] = nil
}

func (lt *LockTracker) remove(t ThreadID, lock ObjID) {
	lt.grow(t)
	st := lt.stacks[t]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i] == lock {
			lt.stacks[t] = append(st[:i], st[i+1:]...)
			lt.sorted[t] = nil
			return
		}
	}
}

// Held returns the canonical lockset currently held by t. The result
// is memoized until the lock environment changes; callers must not
// mutate it. With an interner attached, the result is the interner's
// immutable canonical slice — repeated lock environments allocate
// nothing.
func (lt *LockTracker) Held(t ThreadID) Lockset {
	lt.grow(t)
	if ls := lt.sorted[t]; ls != nil {
		return ls
	}
	if lt.intern != nil {
		id := lt.intern.Intern(lt.stacks[t])
		lt.ids[t] = id
		ls := lt.intern.Lockset(id)
		lt.sorted[t] = ls
		return ls
	}
	ls := NewLockset(lt.stacks[t]...)
	if ls == nil {
		ls = Lockset{}
	}
	lt.sorted[t] = ls
	return ls
}

// HeldID returns the interned identity of t's current lockset. The
// tracker must have been built with NewLockTrackerInterned.
func (lt *LockTracker) HeldID(t ThreadID) LocksetID {
	lt.grow(t)
	if lt.sorted[t] == nil {
		lt.Held(t)
	}
	return lt.ids[t]
}

// Stack returns t's lock acquisition stack, outermost first; callers
// must not mutate it. The cache's per-lock eviction lists key off its
// top element.
func (lt *LockTracker) Stack(t ThreadID) []ObjID {
	if int(t) >= len(lt.stacks) {
		return nil
	}
	return lt.stacks[t]
}

// Top returns the most recently acquired lock of t, or (0, false) if
// t holds no locks.
func (lt *LockTracker) Top(t ThreadID) (ObjID, bool) {
	if int(t) >= len(lt.stacks) {
		return 0, false
	}
	st := lt.stacks[t]
	if len(st) == 0 {
		return 0, false
	}
	return st[len(st)-1], true
}
