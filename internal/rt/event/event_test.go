package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThreadLattice(t *testing.T) {
	if !ThreadLeq(TBot, 3) || !ThreadLeq(3, 3) || ThreadLeq(3, 4) || ThreadLeq(TTop, 3) {
		t.Error("ThreadLeq wrong")
	}
	cases := []struct {
		a, b, want ThreadID
	}{
		{1, 1, 1},
		{1, 2, TBot},
		{1, TTop, 1},
		{TTop, 2, 2},
		{TTop, TTop, TTop},
		{TBot, 1, TBot},
		{1, TBot, TBot},
		{TBot, TBot, TBot},
	}
	for _, c := range cases {
		if got := ThreadMeet(c.a, c.b); got != c.want {
			t.Errorf("ThreadMeet(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestKindLattice(t *testing.T) {
	if !KindLeq(Write, Read) || !KindLeq(Read, Read) || KindLeq(Read, Write) == false && false {
		t.Error("KindLeq wrong")
	}
	if KindLeq(Read, Write) {
		t.Error("READ must not be ⊑ WRITE")
	}
	if KindMeet(Read, Write) != Write || KindMeet(Read, Read) != Read || KindMeet(Write, Write) != Write {
		t.Error("KindMeet wrong")
	}
}

func TestLocksetBasics(t *testing.T) {
	ls := NewLockset(5, 3, 5, 1)
	if len(ls) != 3 || ls[0] != 1 || ls[1] != 3 || ls[2] != 5 {
		t.Fatalf("NewLockset dedupe/sort: %v", ls)
	}
	if !ls.Contains(3) || ls.Contains(4) {
		t.Error("Contains wrong")
	}
	sub := NewLockset(1, 5)
	if !sub.SubsetOf(ls) || ls.SubsetOf(sub) {
		t.Error("SubsetOf wrong")
	}
	if !NewLockset().SubsetOf(ls) || !NewLockset().SubsetOf(NewLockset()) {
		t.Error("empty set must be a subset of everything")
	}
	if !ls.Intersects(NewLockset(3, 9)) || ls.Intersects(NewLockset(2, 4)) {
		t.Error("Intersects wrong")
	}
	inter := ls.Intersect(NewLockset(3, 5, 7))
	if !inter.Equal(NewLockset(3, 5)) {
		t.Errorf("Intersect = %v", inter)
	}
	if ls.Equal(sub) || !ls.Equal(ls.Clone()) {
		t.Error("Equal wrong")
	}
}

// randomLockset builds a small lockset from the fuzz source.
func randomLockset(r *rand.Rand) Lockset {
	n := r.Intn(4)
	locks := make([]ObjID, n)
	for i := range locks {
		locks[i] = ObjID(r.Intn(6))
	}
	return NewLockset(locks...)
}

func randomAccess(r *rand.Rand, loc Loc) Access {
	k := Read
	if r.Intn(2) == 0 {
		k = Write
	}
	t := ThreadID(r.Intn(3))
	if r.Intn(8) == 0 {
		t = TBot
	}
	return Access{Loc: loc, Thread: t, Locks: randomLockset(r), Kind: k}
}

// TestWeakerThanTheorem1 is the paper's Theorem 1 as a property test:
// for all p, q, r: p ⊑ q ∧ IsRace(q, r) ⇒ IsRace(p, r).
// (r is a "future" access, so r.Thread is a real thread, never t⊥.)
func TestWeakerThanTheorem1(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	loc := Loc{Obj: 7, Slot: 0}
	for i := 0; i < 200000; i++ {
		p := randomAccess(r, loc)
		q := randomAccess(r, loc)
		fut := randomAccess(r, loc)
		if fut.Thread == TBot {
			fut.Thread = 2
		}
		if WeakerThan(p, q) && IsRace(q, fut) && !IsRace(p, fut) {
			t.Fatalf("Theorem 1 violated:\np = %v\nq = %v\nr = %v", p, q, fut)
		}
	}
}

// TestWeakerThanPartialOrder checks reflexivity and transitivity.
func TestWeakerThanPartialOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	loc := Loc{Obj: 7, Slot: 0}
	for i := 0; i < 100000; i++ {
		p := randomAccess(r, loc)
		q := randomAccess(r, loc)
		s := randomAccess(r, loc)
		if !WeakerThan(p, p) {
			t.Fatalf("not reflexive: %v", p)
		}
		if WeakerThan(p, q) && WeakerThan(q, s) && !WeakerThan(p, s) {
			t.Fatalf("not transitive:\np = %v\nq = %v\ns = %v", p, q, s)
		}
	}
}

func TestIsRaceRequiresAllConditions(t *testing.T) {
	base := Access{Loc: Loc{1, 0}, Thread: 1, Locks: NewLockset(), Kind: Write}
	other := Access{Loc: Loc{1, 0}, Thread: 2, Locks: NewLockset(), Kind: Read}
	if !IsRace(base, other) {
		t.Fatal("base case should race")
	}
	diffLoc := other
	diffLoc.Loc = Loc{2, 0}
	if IsRace(base, diffLoc) {
		t.Error("different locations cannot race")
	}
	sameThread := other
	sameThread.Thread = 1
	if IsRace(base, sameThread) {
		t.Error("same thread cannot race")
	}
	common := other
	common.Locks = NewLockset(9)
	b2 := base
	b2.Locks = NewLockset(9, 3)
	if IsRace(b2, common) {
		t.Error("common lock prevents the race")
	}
	twoReads := other
	twoReads.Kind = Read
	b3 := base
	b3.Kind = Read
	if IsRace(b3, twoReads) {
		t.Error("two reads cannot race")
	}
}

func TestSubsetIntersectConsistency(t *testing.T) {
	// Property: a ⊆ b ⇒ a ∩ b == a; and Intersects(a,b) ⇔ |a∩b| > 0.
	f := func(aRaw, bRaw []uint8) bool {
		toLS := func(raw []uint8) Lockset {
			ids := make([]ObjID, 0, len(raw))
			for _, x := range raw {
				ids = append(ids, ObjID(x%10))
			}
			return NewLockset(ids...)
		}
		a, b := toLS(aRaw), toLS(bRaw)
		inter := a.Intersect(b)
		if a.SubsetOf(b) && !inter.Equal(a) {
			return false
		}
		if a.Intersects(b) != (len(inter) > 0) {
			return false
		}
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoLocks(t *testing.T) {
	if PseudoLock(0) != -1 || PseudoLock(3) != -4 {
		t.Errorf("PseudoLock mapping: %v %v", PseudoLock(0), PseudoLock(3))
	}
	if !PseudoLock(0).IsPseudoLock() || ObjID(5).IsPseudoLock() {
		t.Error("IsPseudoLock wrong")
	}
	if PseudoLock(2).String() != "S2" {
		t.Errorf("String = %q", PseudoLock(2).String())
	}
}

func TestStaticSlotEncoding(t *testing.T) {
	if StaticSlot(0) != -2 || StaticSlot(3) != -5 {
		t.Error("StaticSlot mapping wrong")
	}
	// Static slots never collide with instance slots or ArraySlot.
	for i := 0; i < 10; i++ {
		if StaticSlot(i) >= ArraySlot {
			t.Fatalf("StaticSlot(%d) = %d not below ArraySlot", i, StaticSlot(i))
		}
	}
}

func TestLockTrackerScenario(t *testing.T) {
	lt := NewLockTracker()
	lt.ThreadStarted(0, NoThread)
	if !lt.Held(0).Equal(NewLockset(PseudoLock(0))) {
		t.Fatalf("main should hold S0: %v", lt.Held(0))
	}
	lt.ThreadStarted(1, 0)
	lt.MonitorEnter(1, 100, 1)
	lt.MonitorEnter(1, 200, 1)
	lt.MonitorEnter(1, 200, 2) // reentrant: ignored
	want := NewLockset(PseudoLock(1), 100, 200)
	if !lt.Held(1).Equal(want) {
		t.Fatalf("held = %v, want %v", lt.Held(1), want)
	}
	if top, ok := lt.Top(1); !ok || top != 200 {
		t.Fatalf("top = %v,%v", top, ok)
	}
	lt.MonitorExit(1, 200, 1) // still held once
	if !lt.Held(1).Equal(want) {
		t.Fatalf("nested exit must not release: %v", lt.Held(1))
	}
	lt.MonitorExit(1, 200, 0)
	if !lt.Held(1).Equal(NewLockset(PseudoLock(1), 100)) {
		t.Fatalf("after release: %v", lt.Held(1))
	}
	// Join: thread 0 gains S1 permanently.
	lt.ThreadFinished(1)
	lt.Joined(0, 1)
	if !lt.Held(0).Equal(NewLockset(PseudoLock(0), PseudoLock(1))) {
		t.Fatalf("after join: %v", lt.Held(0))
	}
	// Held memoization must invalidate on changes.
	lt.MonitorEnter(0, 300, 1)
	if !lt.Held(0).Contains(300) {
		t.Fatal("memoized lockset went stale")
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	var a, b counterSink
	ms := MultiSink{&a, &b}
	ms.ThreadStarted(1, 0)
	ms.MonitorEnter(1, 5, 1)
	ms.Access(Access{})
	ms.MonitorExit(1, 5, 0)
	ms.Joined(0, 1)
	ms.ThreadFinished(1)
	if a != b || a.total() != 6 {
		t.Errorf("fan-out mismatch: %+v vs %+v", a, b)
	}
}

type counterSink struct{ st, fin, join, ent, ext, acc int }

func (c *counterSink) ThreadStarted(_, _ ThreadID)       { c.st++ }
func (c *counterSink) ThreadFinished(ThreadID)           { c.fin++ }
func (c *counterSink) Joined(_, _ ThreadID)              { c.join++ }
func (c *counterSink) MonitorEnter(ThreadID, ObjID, int) { c.ent++ }
func (c *counterSink) MonitorExit(ThreadID, ObjID, int)  { c.ext++ }
func (c *counterSink) Access(Access)                     { c.acc++ }
func (c *counterSink) total() int                        { return c.st + c.fin + c.join + c.ent + c.ext + c.acc }
