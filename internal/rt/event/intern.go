// Lockset interning: hash-consing locksets into dense LocksetIDs so
// that access events carry one integer instead of a slice, equality is
// pointer-free ID comparison, and the subset/intersection relations the
// detector keeps re-deriving are answered from a memoized relation
// table. The intern table lives for one run (one Interner per detector
// back end), so IDs stay small and dense and the memo tables stay hot.
//
// Interned locksets are immutable: Lockset(id) returns the canonical
// slice itself, never a copy, and every consumer — report paths, the
// trie, the sharded workers — may retain it without cloning. This is
// what lets the detector stack drop its defensive lockset copies.
package event

// LocksetID is the dense identity of an interned lockset. ID 0 is
// always the empty lockset.
type LocksetID uint32

// EmptyLocksetID is the interned identity of the empty lockset.
const EmptyLocksetID LocksetID = 0

// Interner hash-conses locksets and memoizes the binary relations on
// them. It is not safe for concurrent use; each detector back end (and
// each shard worker) owns its own.
type Interner struct {
	sets    []Lockset              // id → canonical set; sets[0] = ∅
	buckets map[uint64][]LocksetID // content hash → candidate ids
	subset  map[uint64]bool        // pack(a,b) → a ⊆ b
	inter   map[uint64]bool        // pack(a,b) → a ∩ b ≠ ∅
	scratch Lockset                // canonicalization buffer (reused)
}

// NewInterner returns an interner holding only the empty lockset.
func NewInterner() *Interner {
	return &Interner{
		sets:    []Lockset{{}},
		buckets: make(map[uint64][]LocksetID),
	}
}

// Size returns the number of distinct interned locksets (including ∅).
func (it *Interner) Size() int { return len(it.sets) }

// Lockset returns the canonical set for id. The result is the intern
// table's own slice: callers must treat it as immutable and may retain
// it without copying.
func (it *Interner) Lockset(id LocksetID) Lockset { return it.sets[id] }

func locksetHash(ls []ObjID) uint64 {
	// FNV-1a over the lock words.
	h := uint64(14695981039346656037)
	for _, l := range ls {
		h ^= uint64(l)
		h *= 1099511628211
	}
	return h
}

// Intern canonicalizes locks (sorting and deduplicating into an
// internal scratch buffer) and returns the dense ID of the resulting
// set. Hitting an already-interned set allocates nothing.
func (it *Interner) Intern(locks []ObjID) LocksetID {
	it.scratch = append(it.scratch[:0], locks...)
	s := it.scratch
	// Insertion sort: lock stacks are tiny and mostly sorted already.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := s[:0]
	for i, l := range s {
		if i == 0 || s[i-1] != l {
			out = append(out, l)
		}
	}
	return it.InternCanonical(out)
}

// InternCanonical interns a lockset that is already sorted and
// duplicate-free. The slice is copied on first sight only.
func (it *Interner) InternCanonical(ls Lockset) LocksetID {
	if len(ls) == 0 {
		return EmptyLocksetID
	}
	h := locksetHash(ls)
	for _, id := range it.buckets[h] {
		if it.sets[id].Equal(ls) {
			return id
		}
	}
	id := LocksetID(len(it.sets))
	it.sets = append(it.sets, append(Lockset(nil), ls...))
	it.buckets[h] = append(it.buckets[h], id)
	return id
}

// pack builds the memo key for an ordered ID pair.
func pack(a, b LocksetID) uint64 { return uint64(a)<<32 | uint64(b) }

// Subset reports sets[a] ⊆ sets[b], memoized.
func (it *Interner) Subset(a, b LocksetID) bool {
	if a == b || a == EmptyLocksetID {
		return true
	}
	if it.subset == nil {
		it.subset = make(map[uint64]bool)
	}
	key := pack(a, b)
	if v, ok := it.subset[key]; ok {
		return v
	}
	v := it.sets[a].SubsetOf(it.sets[b])
	it.subset[key] = v
	return v
}

// Intersects reports sets[a] ∩ sets[b] ≠ ∅, memoized.
func (it *Interner) Intersects(a, b LocksetID) bool {
	if a == EmptyLocksetID || b == EmptyLocksetID {
		return false
	}
	if a == b {
		return true
	}
	if it.inter == nil {
		it.inter = make(map[uint64]bool)
	}
	key := pack(a, b)
	if v, ok := it.inter[key]; ok {
		return v
	}
	v := it.sets[a].Intersects(it.sets[b])
	it.inter[key] = v
	return v
}
