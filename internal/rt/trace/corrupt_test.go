package trace

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"racedet/internal/rt/event"
)

// craft hand-builds a minimal one-segment trace: one access block with
// one record, a two-entry lockset table (∅ and {5}), and a two-entry
// string table ("" and "f"). The ID arguments are written verbatim
// into the block, so out-of-range values produce a structurally valid
// trace whose payload references a missing table entry — exactly the
// corruption decodeSegment must reject.
func craft(lockID, fieldID, fileID uint64) []byte {
	var seg []byte
	seg = putUvarint(seg, opAccessBlock)
	seg = putZigzag(seg, 0) // thread 0
	seg = putUvarint(seg, lockID)
	seg = putUvarint(seg, 1) // one access
	seg = putUvarint(seg, fieldID<<1|1)
	seg = putZigzag(seg, 7) // obj
	seg = putZigzag(seg, 1) // slot
	seg = putUvarint(seg, fileID)
	seg = putZigzag(seg, 3) // line
	seg = putZigzag(seg, 2) // col

	var out []byte
	out = append(out, Magic[:]...)
	out = putUvarint(out, Version)
	out = putUvarint(out, uint64(len(seg)))
	out = putUvarint(out, 1) // events
	out = putUvarint(out, 1) // blocks
	payloadOff := uint64(len(out))
	out = append(out, seg...)

	locksetsOff := uint64(len(out))
	out = putUvarint(out, 2)
	out = putUvarint(out, 0) // lockset 0: ∅
	out = putUvarint(out, 1) // lockset 1: {5}
	out = putZigzag(out, 5)

	stringsOff := uint64(len(out))
	out = putUvarint(out, 2)
	out = putUvarint(out, 0) // ""
	out = putUvarint(out, 1) // "f"
	out = append(out, 'f')

	descsOff := uint64(len(out))
	out = putUvarint(out, 0) // no object descriptions

	indexOff := uint64(len(out))
	out = putUvarint(out, 1)
	out = putUvarint(out, payloadOff)
	out = putUvarint(out, uint64(len(seg)))
	out = putUvarint(out, 1)
	out = putUvarint(out, 1)

	out = binary.LittleEndian.AppendUint64(out, locksetsOff)
	out = binary.LittleEndian.AppendUint64(out, stringsOff)
	out = binary.LittleEndian.AppendUint64(out, descsOff)
	out = binary.LittleEndian.AppendUint64(out, indexOff)
	out = binary.LittleEndian.AppendUint64(out, 1) // total events
	out = append(out, EndMagic[:]...)
	return out
}

func TestCraftedTraceValid(t *testing.T) {
	r, err := NewReader(craft(1, 1, 1))
	if err != nil {
		t.Fatalf("NewReader on crafted trace: %v", err)
	}
	var c collector
	stats, err := r.Replay(&c, 1)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if stats.Events != 1 || stats.Accesses != 1 || len(c.lines) != 1 {
		t.Fatalf("stats=%+v, %d lines", stats, len(c.lines))
	}
	want := `A t=0 WRITE obj=7 slot=1 field="f" pos=f:3:2 locks={} lockid=0`
	if c.lines[0] != want {
		t.Fatalf("decoded access:\n got %s\nwant %s", c.lines[0], want)
	}
	if !r.Lockset(1).Contains(5) {
		t.Fatal("lockset 1 does not contain lock 5")
	}
}

func replayErr(t *testing.T, data []byte) error {
	t.Helper()
	r, err := NewReader(data)
	if err != nil {
		return err
	}
	for _, parallel := range []int{1, 4} {
		if _, rerr := r.Replay(event.NullSink{}, parallel); rerr != nil {
			err = rerr
		}
	}
	return err
}

func TestOutOfRangeLocksetID(t *testing.T) {
	err := replayErr(t, craft(9, 1, 1))
	if err == nil {
		t.Fatal("out-of-range lockset ID accepted")
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("error is %T, want *FormatError: %v", err, err)
	}
	if !strings.Contains(err.Error(), "lockset ID 9 out of range") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestOutOfRangeFieldStringID(t *testing.T) {
	err := replayErr(t, craft(1, 9, 1))
	if err == nil || !strings.Contains(err.Error(), "string ID 9 out of range") {
		t.Fatalf("want field string-ID error, got: %v", err)
	}
}

func TestOutOfRangeFileStringID(t *testing.T) {
	err := replayErr(t, craft(1, 1, 9))
	if err == nil || !strings.Contains(err.Error(), "string ID 9 out of range") {
		t.Fatalf("want file string-ID error, got: %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	data, _ := record(t, 0, 200)
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	_, err := NewReader(bad)
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("want bad-magic error, got: %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	data, _ := record(t, 0, 200)
	bad := append([]byte(nil), data...)
	bad[len(Magic)] = 0x7F // version 127
	_, err := NewReader(bad)
	if err == nil || !strings.Contains(err.Error(), "unsupported trace version 127") {
		t.Fatalf("want version error, got: %v", err)
	}
}

// TestTruncations checks that EVERY proper prefix of a valid trace is
// rejected with a structured error — the trailer is what marks a trace
// complete, so any truncation must read as "unfinalized", never panic,
// never decode garbage.
func TestTruncations(t *testing.T) {
	data, _ := record(t, 256, 400)
	for n := 0; n < len(data); n++ {
		_, err := NewReader(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncation to %d: error is %T, want *FormatError: %v", n, err, err)
		}
	}
}

// TestByteFlips corrupts every byte of a valid trace in turn and
// checks that open + replay never panic. A flip may surface as a
// *FormatError at any layer — or decode cleanly when it lands in
// string-table content — but it must always be handled.
func TestByteFlips(t *testing.T) {
	data, _ := record(t, 256, 400)
	bad := make([]byte, len(data))
	for i := range data {
		copy(bad, data)
		bad[i] ^= 0xFF
		r, err := NewReader(bad)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("flip at %d: NewReader error is %T, want *FormatError: %v", i, err, err)
			}
			continue
		}
		if _, err := r.Replay(event.NullSink{}, 1); err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("flip at %d: Replay error is %T, want *FormatError: %v", i, err, err)
			}
		}
	}
}

func TestFormatErrorRendering(t *testing.T) {
	if got := errf(42, "boom").Error(); !strings.Contains(got, "at byte 42") || !strings.Contains(got, "boom") {
		t.Fatalf("FormatError with offset renders %q", got)
	}
	if got := errf(-1, "boom").Error(); strings.Contains(got, "at byte") {
		t.Fatalf("FormatError without offset renders %q", got)
	}
}
