// Package trace defines the compact, versioned, mmap-able binary
// event-trace format (.mjtrace) and its record/replay engines: the
// "record once, analyze many" decoupling of §1/§2.6 of the paper.
//
// A trace captures the complete runtime event stream of one execution
// — thread lifecycle, monitor operations, and field/array accesses —
// exactly as the interpreter emitted it. Replaying the stream through
// a fresh detector back end (serial or sharded) therefore reproduces
// the live run's verdicts byte for byte, without the interpreter in
// the loop: the detectors reconstruct their lock environments from the
// recorded monitor/lifecycle events precisely as they do live.
//
// # Wire format (version 1)
//
//	header   magic "mjtrace\x00", uvarint version
//	body     segment*            (independently decodable chunks)
//	tables   lockset, string, object-description tables  (at Finalize)
//	index    per-segment offset/length/event counts
//	trailer  fixed 48 bytes: table offsets, totals, end magic "ecartjm\x00"
//
// Each segment is length-prefixed (uvarint payload length, event
// count, block count) and contains per-thread blocks. All varint
// delta-encoder state resets at segment boundaries, so segments decode
// independently — the parallel replay engine decodes N segments
// concurrently and feeds them downstream in order. A block is either a
// single control event (thread start/finish/join, monitor enter/exit)
// or a run of accesses by one thread under one lock environment — the
// same framing the live Batcher produces, which is why recording
// composes with the batched event pipeline at block granularity.
//
// Access records are delta-encoded: object and slot as zigzag varint
// deltas against the previous access of the block, source positions as
// a string-table file ID plus zigzag line/column deltas, field names
// as string-table IDs. Locksets are interned during recording
// (event.Interner) and each access block carries its lockset's dense
// ID; the table of interned locksets is serialized once in the
// trailer section. Replay does not need the recorded locksets —
// detectors re-derive them from the control events, which is what
// makes replayed verdicts identical by construction — but they make
// every block's lock environment available to segment-local consumers
// (the planned predictive layer) without a full replay.
//
// The object-description table maps each accessed object ID to its
// report rendering (e.g. "class Singleton", captured from the
// interpreter's heap at the end of the recording run), so replayed
// race reports are byte-identical to live ones — descriptions are the
// one report ingredient detectors cannot re-derive from the event
// stream alone.
//
// The trailer is written by Finalize. A truncated or unfinalized file
// is detected by its missing end magic and rejected with a structured
// *FormatError — never a panic — as is any out-of-range lockset or
// string ID, overlapping segment bound, or count mismatch.
package trace

import (
	"encoding/binary"
	"fmt"
)

// Format constants.
var (
	// Magic opens every trace file.
	Magic = [8]byte{'m', 'j', 't', 'r', 'a', 'c', 'e', 0}
	// EndMagic closes a finalized trace; its absence marks truncation.
	EndMagic = [8]byte{'e', 'c', 'a', 'r', 't', 'j', 'm', 0}
)

// Version is the current format version. Readers reject anything newer.
const Version = 1

// trailerSize is the fixed trailer: locksetsOff, stringsOff, descsOff,
// indexOff, totalEvents (uint64 little-endian each) + EndMagic.
const trailerSize = 5*8 + 8

// Block opcodes. opAccessBlock heads a run of accesses by one thread
// under one lock environment; the rest are single control events.
const (
	opAccessBlock = iota + 1
	opThreadStart
	opThreadFinish
	opJoin
	opMonEnter
	opMonExit
)

// FormatError is the structured decode failure: a malformed,
// truncated, or internally inconsistent trace. Every reader path
// returns it instead of panicking, so corrupt input is an ordinary
// error (CLI exit 3), never a crash.
type FormatError struct {
	// Off is the byte offset the failure was detected at (-1 when the
	// failure is not tied to one offset, e.g. a count mismatch).
	Off int64
	// Msg describes the defect.
	Msg string
}

func (e *FormatError) Error() string {
	if e.Off < 0 {
		return "trace: " + e.Msg
	}
	return fmt.Sprintf("trace: %s (at byte %d)", e.Msg, e.Off)
}

func errf(off int64, format string, args ...any) error {
	return &FormatError{Off: off, Msg: fmt.Sprintf(format, args...)}
}

// zigzag maps signed to unsigned so small negative deltas stay short
// varints (thread IDs, pseudolock object IDs, position deltas).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// putUvarint appends a varint to buf.
func putUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// putZigzag appends a zigzag varint to buf.
func putZigzag(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, zigzag(v))
}

// byteReader walks a byte slice with bounds-checked varint reads. All
// failures surface as *FormatError carrying the absolute offset (base
// + local position).
type byteReader struct {
	data []byte
	pos  int
	base int64 // absolute file offset of data[0], for diagnostics
}

func (r *byteReader) off() int64 { return r.base + int64(r.pos) }

func (r *byteReader) uvarint() (uint64, error) {
	// Delta encoding makes single-byte varints the overwhelmingly
	// common case; decode them without the binary.Uvarint loop. This
	// is the replay engine's innermost read (six per access record),
	// so the fast path is kept small enough to inline — the multi-byte
	// and error cases live in uvarintSlow.
	if r.pos < len(r.data) {
		if b := r.data[r.pos]; b < 0x80 {
			r.pos++
			return uint64(b), nil
		}
	}
	return r.uvarintSlow()
}

//go:noinline
func (r *byteReader) uvarintSlow() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errf(r.off(), "truncated or malformed varint")
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) zigzag() (int64, error) {
	if r.pos < len(r.data) {
		if b := r.data[r.pos]; b < 0x80 {
			r.pos++
			return int64(b>>1) ^ -int64(b&1), nil
		}
	}
	u, err := r.uvarintSlow()
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

func (r *byteReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.pos) {
		return nil, errf(r.off(), "truncated: need %d bytes, have %d", n, len(r.data)-r.pos)
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *byteReader) done() bool { return r.pos >= len(r.data) }
