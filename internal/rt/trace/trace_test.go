package trace

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"racedet/internal/lang/token"
	"racedet/internal/rt/event"
)

// collector renders every sink callback to one line, giving tests a
// byte-level view of an event stream for exact comparison.
type collector struct {
	lines []string
}

func (c *collector) add(format string, args ...any) {
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
}

func (c *collector) ThreadStarted(child, parent event.ThreadID) { c.add("S %d %d", child, parent) }
func (c *collector) ThreadFinished(t event.ThreadID)            { c.add("F %d", t) }
func (c *collector) Joined(joiner, joinee event.ThreadID)       { c.add("J %d %d", joiner, joinee) }
func (c *collector) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	c.add("+ %d %d %d", t, lock, depth)
}
func (c *collector) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	c.add("- %d %d %d", t, lock, depth)
}
func (c *collector) Access(a event.Access) {
	c.add("A t=%d %v obj=%d slot=%d field=%q pos=%s locks=%v lockid=%d",
		a.Thread, a.Kind, a.Loc.Obj, a.Loc.Slot, a.FieldName, a.Pos, a.Locks, a.LockID)
}

// drive emits a deterministic synthetic event stream: several threads,
// nested monitors, joins, pseudolock-shaped negative object IDs, and
// accesses spanning multiple files, fields, and slot kinds (instance,
// array, static). Returns the number of events emitted.
func drive(s event.Sink, accesses int) int {
	rng := rand.New(rand.NewSource(42))
	files := []string{"a.mj", "b.mj", ""}
	fields := []string{"Point.x", "Point.y", "[]", "Counter.n", ""}
	events := 0
	s.ThreadStarted(0, event.NoThread)
	events++
	for t := event.ThreadID(1); t <= 3; t++ {
		s.ThreadStarted(t, 0)
		events++
	}
	threads := []event.ThreadID{0, 1, 2, 3}
	depth := map[event.ThreadID]int{}
	for i := 0; i < accesses; i++ {
		t := threads[rng.Intn(len(threads))]
		switch rng.Intn(10) {
		case 0:
			lock := event.ObjID(rng.Intn(5) + 100)
			depth[t]++
			s.MonitorEnter(t, lock, depth[t])
			events++
		case 1:
			if depth[t] > 0 {
				lock := event.ObjID(rng.Intn(5) + 100)
				depth[t]--
				s.MonitorExit(t, lock, depth[t])
				events++
			}
		default:
			s.Access(event.Access{
				Loc: event.Loc{
					Obj:  event.ObjID(rng.Intn(1000) - 4), // includes negative pseudolock-range IDs
					Slot: []int32{0, 1, 7, event.ArraySlot, event.StaticSlot(2)}[rng.Intn(5)],
				},
				Pos: token.Pos{
					File: files[rng.Intn(len(files))],
					Line: int32(rng.Intn(500)),
					Col:  int32(rng.Intn(80)),
				},
				FieldName: fields[rng.Intn(len(fields))],
				Thread:    t,
				Kind:      event.Kind(rng.Intn(2)),
			})
			events++
		}
	}
	for t := event.ThreadID(3); t >= 1; t-- {
		s.ThreadFinished(t)
		s.Joined(0, t)
		events += 2
	}
	s.ThreadFinished(0)
	events++
	return events
}

// record drives the synthetic stream through a Writer and returns the
// finalized trace bytes.
func record(t *testing.T, segTarget, accesses int) ([]byte, int) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterSize(&buf, segTarget)
	n := drive(w, accesses)
	if err := w.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return buf.Bytes(), n
}

func TestRoundTrip(t *testing.T) {
	data, n := record(t, 512, 5000)

	var want collector
	drive(&want, 5000)

	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.Segments() < 2 {
		t.Fatalf("want a multi-segment trace with a 512-byte target, got %d segments", r.Segments())
	}
	if r.TotalEvents() != uint64(n) {
		t.Fatalf("TotalEvents = %d, want %d", r.TotalEvents(), n)
	}

	for _, parallel := range []int{1, 4} {
		var got collector
		stats, err := r.Replay(&got, parallel)
		if err != nil {
			t.Fatalf("Replay(parallel=%d): %v", parallel, err)
		}
		if stats.Events != uint64(n) {
			t.Errorf("parallel=%d: stats.Events = %d, want %d", parallel, stats.Events, n)
		}
		if stats.Segments != r.Segments() {
			t.Errorf("parallel=%d: stats.Segments = %d, want %d", parallel, stats.Segments, r.Segments())
		}
		if len(got.lines) != len(want.lines) {
			t.Fatalf("parallel=%d: %d events replayed, want %d", parallel, len(got.lines), len(want.lines))
		}
		for i := range want.lines {
			if got.lines[i] != want.lines[i] {
				t.Fatalf("parallel=%d: event %d:\n got %s\nwant %s", parallel, i, got.lines[i], want.lines[i])
			}
		}
	}
}

// TestRoundTripBatched delivers the access stream through a Batcher
// (as batched live runs do) and checks the decoded stream is identical
// to the unbatched recording: batching changes framing, never content.
func TestRoundTripBatched(t *testing.T) {
	var plain, batched bytes.Buffer
	wp := NewWriterSize(&plain, 2048)
	drive(wp, 3000)
	if err := wp.Finalize(); err != nil {
		t.Fatal(err)
	}
	wb := NewWriterSize(&batched, 2048)
	b := event.NewBatcher(wb, 16)
	drive(b, 3000)
	b.Close()
	if err := wb.Finalize(); err != nil {
		t.Fatal(err)
	}

	render := func(data []byte) []string {
		r, err := NewReader(data)
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		var c collector
		if _, err := r.Replay(&c, 1); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		return c.lines
	}
	p, q := render(plain.Bytes()), render(batched.Bytes())
	if len(p) != len(q) {
		t.Fatalf("batched recording has %d events, plain %d", len(q), len(p))
	}
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("event %d differs:\n plain   %s\n batched %s", i, p[i], q[i])
		}
	}
}

func TestLocksetTableRecorded(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.ThreadStarted(0, event.NoThread)
	w.MonitorEnter(0, 100, 1)
	w.Access(event.Access{Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 0, Kind: event.Write})
	w.MonitorExit(0, 100, 0)
	w.ThreadFinished(0)
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// The access ran under {pseudolock(0), lock 100}; that set must be
	// in the table and referenced by the block.
	found := false
	for id := 0; id < r.Locksets(); id++ {
		ls := r.Lockset(event.LocksetID(id))
		if ls.Contains(100) && ls.Contains(event.PseudoLock(0)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("lockset table %d entries, none contains {S0, o100}", r.Locksets())
	}
}

func TestDescriptionTable(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.ThreadStarted(0, event.NoThread)
	w.Access(event.Access{Loc: event.Loc{Obj: 3}, Thread: 0, Kind: event.Write})
	w.Access(event.Access{Loc: event.Loc{Obj: 11}, Thread: 0, Kind: event.Read})
	w.Access(event.Access{Loc: event.Loc{Obj: 3}, Thread: 0, Kind: event.Read}) // dup: one table entry
	w.SetDescribeObj(func(o event.ObjID) string { return fmt.Sprintf("obj#%d", o) })
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.DescribeObj(3); got != "obj#3" {
		t.Fatalf("DescribeObj(3) = %q", got)
	}
	if got := r.DescribeObj(11); got != "obj#11" {
		t.Fatalf("DescribeObj(11) = %q", got)
	}
	if got := r.DescribeObj(99); got != "" {
		t.Fatalf("DescribeObj(99) = %q, want empty", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("NewReader on empty trace: %v", err)
	}
	if r.Segments() != 0 || r.TotalEvents() != 0 {
		t.Fatalf("empty trace: %d segments, %d events", r.Segments(), r.TotalEvents())
	}
	var c collector
	stats, err := r.Replay(&c, 4)
	if err != nil || stats.Events != 0 || len(c.lines) != 0 {
		t.Fatalf("replaying empty trace: stats=%+v err=%v events=%d", stats, err, len(c.lines))
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	drive(w, 100)
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != size {
		t.Fatalf("second Finalize grew the trace: %d -> %d bytes", size, buf.Len())
	}
	// Post-finalize events must be dropped, not appended.
	w.Access(event.Access{Thread: 0})
	w.ThreadFinished(0)
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != size {
		t.Fatalf("post-Finalize events grew the trace: %d -> %d bytes", size, buf.Len())
	}
}

// failingWriter errors after n bytes.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterErrorSticky(t *testing.T) {
	w := NewWriterSize(&failingWriter{n: 100}, 64)
	drive(w, 2000)
	if err := w.Finalize(); err == nil {
		t.Fatal("Finalize on a failing writer returned nil")
	}
	if w.Err() == nil {
		t.Fatal("Err() is nil after a write failure")
	}
}

func TestOpenFile(t *testing.T) {
	data, n := record(t, 0, 2000)
	path := filepath.Join(t.TempDir(), "t.mjtrace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer r.Close()
	if r.TotalEvents() != uint64(n) {
		t.Fatalf("TotalEvents = %d, want %d", r.TotalEvents(), n)
	}
	var got, want collector
	drive(&want, 2000)
	if _, err := r.Replay(&got, 0); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got.lines) != len(want.lines) {
		t.Fatalf("replayed %d events, want %d", len(got.lines), len(want.lines))
	}
	for i := range want.lines {
		if got.lines[i] != want.lines[i] {
			t.Fatalf("event %d:\n got %s\nwant %s", i, got.lines[i], want.lines[i])
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.mjtrace")); err == nil {
		t.Fatal("OpenFile on a missing file returned nil error")
	}
}
