//go:build !linux

package trace

import (
	"errors"
	"os"
)

// mapFile is unavailable on this platform; OpenFile falls back to
// reading the file into memory.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("mmap unsupported on this platform")
}
