package trace

import (
	"bufio"
	"encoding/binary"
	"io"
	"sort"

	"racedet/internal/rt/event"
)

// DefaultSegmentTarget is the segment payload size a Writer cuts at
// (at the next block boundary). 64 KiB keeps segments small enough
// that parallel replay has work to spread and large enough that the
// per-segment framing and delta-state resets are noise.
const DefaultSegmentTarget = 64 << 10

// maxBlockEvents bounds one access block, so a long single-threaded
// run still produces segment cuts (and so a decoder can size buffers
// from the block header without trusting it unboundedly).
const maxBlockEvents = 4096

// Writer is the recording sink: it implements event.Sink (and
// event.BatchSink, so the live Batcher hands it whole per-thread runs)
// and streams the compact binary trace to an io.Writer. The caller
// must call Finalize when the run ends — the trailer it writes is what
// marks the trace complete; without it readers reject the file as
// truncated.
//
// The writer buffers internally; errors from the underlying writer are
// sticky and reported by Finalize (and Err).
type Writer struct {
	w   *bufio.Writer
	err error
	off int64 // bytes emitted so far (header + segments)

	headerDone bool
	finalized  bool

	intern *event.Interner
	track  *event.LockTracker

	stringIDs map[string]uint64
	strings   []string

	// Distinct accessed objects, in first-seen order, for the
	// description table; describe renders them at Finalize.
	seenObjs map[event.ObjID]struct{}
	objs     []event.ObjID
	describe func(event.ObjID) string

	segTarget int
	seg       []byte // current segment payload
	segEvents uint64
	segBlocks uint64
	index     []SegmentInfo

	// Pending access block: records already encoded into blk, header
	// written on close (the count is not known until then).
	blk       []byte
	blkThread event.ThreadID
	blkLock   event.LocksetID
	blkCount  uint64
	blkOpen   bool
	prevObj   int64
	prevSlot  int64
	prevLine  int64
	prevCol   int64

	totalEvents uint64
}

// SegmentInfo locates one segment: the absolute byte offset and length
// of its payload plus its event and block counts. The reader gets the
// same structure back from the trace's segment index.
type SegmentInfo struct {
	Off    uint64
	Len    uint64
	Events uint64
	Blocks uint64
}

// NewWriter returns a recording sink streaming to w with the default
// segment target.
func NewWriter(w io.Writer) *Writer { return NewWriterSize(w, 0) }

// NewWriterSize returns a recording sink cutting segments at about
// segTarget payload bytes (0 selects DefaultSegmentTarget). Tests use
// tiny targets to force multi-segment traces.
func NewWriterSize(w io.Writer, segTarget int) *Writer {
	if segTarget <= 0 {
		segTarget = DefaultSegmentTarget
	}
	intern := event.NewInterner()
	return &Writer{
		w:         bufio.NewWriterSize(w, 32<<10),
		intern:    intern,
		track:     event.NewLockTrackerInterned(intern),
		stringIDs: map[string]uint64{"": 0},
		strings:   []string{""},
		seenObjs:  map[event.ObjID]struct{}{},
		segTarget: segTarget,
	}
}

// SetDescribeObj installs the object renderer (typically the
// interpreter's DescribeObj) consulted at Finalize to build the
// description table. Install it after the run, before Finalize —
// descriptions reflect the heap's final state, matching when live
// detectors render their reports. Nil skips the table.
func (w *Writer) SetDescribeObj(fn func(event.ObjID) string) { w.describe = fn }

var _ event.BatchSink = (*Writer)(nil)

// Err returns the sticky write error, if any.
func (w *Writer) Err() error { return w.err }

// TotalEvents returns the number of events recorded so far.
func (w *Writer) TotalEvents() uint64 { return w.totalEvents }

func (w *Writer) write(b []byte) {
	if w.err != nil || w.finalized {
		return
	}
	n, err := w.w.Write(b)
	w.off += int64(n)
	if err != nil {
		w.err = err
	}
}

func (w *Writer) ensureHeader() {
	if w.headerDone {
		return
	}
	w.headerDone = true
	var hdr []byte
	hdr = append(hdr, Magic[:]...)
	hdr = putUvarint(hdr, Version)
	w.write(hdr)
}

func (w *Writer) stringID(s string) uint64 {
	if id, ok := w.stringIDs[s]; ok {
		return id
	}
	id := uint64(len(w.strings))
	w.stringIDs[s] = id
	w.strings = append(w.strings, s)
	return id
}

// closeBlock flushes the pending access block into the segment buffer.
func (w *Writer) closeBlock() {
	if !w.blkOpen {
		return
	}
	w.blkOpen = false
	w.seg = putUvarint(w.seg, opAccessBlock)
	w.seg = putZigzag(w.seg, int64(w.blkThread))
	w.seg = putUvarint(w.seg, uint64(w.blkLock))
	w.seg = putUvarint(w.seg, w.blkCount)
	w.seg = append(w.seg, w.blk...)
	w.blk = w.blk[:0]
	w.segEvents += w.blkCount
	w.segBlocks++
	w.blkCount = 0
	w.maybeCut()
}

// maybeCut flushes the segment when it passed the target size. Called
// only at block boundaries, so segments stay independently decodable.
func (w *Writer) maybeCut() {
	if len(w.seg) >= w.segTarget {
		w.flushSegment()
	}
}

func (w *Writer) flushSegment() {
	if w.segEvents == 0 {
		w.seg = w.seg[:0]
		w.segBlocks = 0
		return
	}
	w.ensureHeader()
	var hdr []byte
	hdr = putUvarint(hdr, uint64(len(w.seg)))
	hdr = putUvarint(hdr, w.segEvents)
	hdr = putUvarint(hdr, w.segBlocks)
	w.write(hdr)
	payloadOff := uint64(w.off)
	w.write(w.seg)
	w.index = append(w.index, SegmentInfo{
		Off:    payloadOff,
		Len:    uint64(len(w.seg)),
		Events: w.segEvents,
		Blocks: w.segBlocks,
	})
	w.totalEvents += w.segEvents
	w.seg = w.seg[:0]
	w.segEvents = 0
	w.segBlocks = 0
}

// control encodes a single control event (already a closed block).
func (w *Writer) control(op uint64, operands ...int64) {
	if w.finalized {
		return
	}
	w.closeBlock()
	w.seg = putUvarint(w.seg, op)
	for _, v := range operands {
		w.seg = putZigzag(w.seg, v)
	}
	w.segEvents++
	w.segBlocks++
	w.maybeCut()
}

// ThreadStarted implements event.Sink.
func (w *Writer) ThreadStarted(child, parent event.ThreadID) {
	w.control(opThreadStart, int64(child), int64(parent))
	w.track.ThreadStarted(child, parent)
}

// ThreadFinished implements event.Sink.
func (w *Writer) ThreadFinished(t event.ThreadID) {
	w.control(opThreadFinish, int64(t))
	w.track.ThreadFinished(t)
}

// Joined implements event.Sink.
func (w *Writer) Joined(joiner, joinee event.ThreadID) {
	w.control(opJoin, int64(joiner), int64(joinee))
	w.track.Joined(joiner, joinee)
}

// MonitorEnter implements event.Sink.
func (w *Writer) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	w.control(opMonEnter, int64(t), int64(lock), int64(depth))
	w.track.MonitorEnter(t, lock, depth)
}

// MonitorExit implements event.Sink.
func (w *Writer) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	w.control(opMonExit, int64(t), int64(lock), int64(depth))
	w.track.MonitorExit(t, lock, depth)
}

// Access implements event.Sink: append a delta-encoded record to the
// thread's pending block, opening one if needed.
func (w *Writer) Access(a event.Access) {
	if w.finalized {
		return
	}
	if w.blkOpen && (w.blkThread != a.Thread || w.blkCount >= maxBlockEvents) {
		w.closeBlock()
	}
	if !w.blkOpen {
		w.blkOpen = true
		w.blkThread = a.Thread
		w.blkLock = w.track.HeldID(a.Thread)
		w.prevObj, w.prevSlot, w.prevLine, w.prevCol = 0, 0, 0, 0
	}
	if _, ok := w.seenObjs[a.Loc.Obj]; !ok {
		w.seenObjs[a.Loc.Obj] = struct{}{}
		w.objs = append(w.objs, a.Loc.Obj)
	}
	fieldID := w.stringID(a.FieldName)
	fileID := w.stringID(a.Pos.File)
	w.blk = putUvarint(w.blk, fieldID<<1|uint64(a.Kind&1))
	obj, slot := int64(a.Loc.Obj), int64(a.Loc.Slot)
	line, col := int64(a.Pos.Line), int64(a.Pos.Col)
	w.blk = putZigzag(w.blk, obj-w.prevObj)
	w.blk = putZigzag(w.blk, slot-w.prevSlot)
	w.blk = putUvarint(w.blk, fileID)
	w.blk = putZigzag(w.blk, line-w.prevLine)
	w.blk = putZigzag(w.blk, col-w.prevCol)
	w.prevObj, w.prevSlot, w.prevLine, w.prevCol = obj, slot, line, col
	w.blkCount++
}

// AccessBatch implements event.BatchSink. A batch is one thread's run
// under one lock environment — exactly one trace block (or several,
// if it exceeds maxBlockEvents).
func (w *Writer) AccessBatch(batch []event.Access) {
	for _, a := range batch {
		w.Access(a)
	}
}

// Finalize flushes pending events and writes the lockset table, string
// table, segment index, and the fixed trailer that marks the trace
// complete. It must be called exactly when the run ends — including
// runs cut short by an error, so the partial trace is still a valid,
// replayable artifact. Idempotent; returns the first write error.
func (w *Writer) Finalize() error {
	if w.finalized {
		return w.err
	}
	w.closeBlock()
	w.flushSegment()
	w.ensureHeader()

	var buf []byte

	// Lockset table: every interned set, dense by ID, lock IDs
	// delta-encoded (canonical sets are sorted, so deltas past the
	// first are non-negative — but pseudolocks make the values
	// themselves negative, hence zigzag).
	locksetsOff := uint64(w.off)
	buf = putUvarint(buf[:0], uint64(w.intern.Size()))
	for id := 0; id < w.intern.Size(); id++ {
		ls := w.intern.Lockset(event.LocksetID(id))
		buf = putUvarint(buf, uint64(len(ls)))
		prev := int64(0)
		for _, l := range ls {
			buf = putZigzag(buf, int64(l)-prev)
			prev = int64(l)
		}
	}
	w.write(buf)

	// Object-description table, delta-encoded by object ID with the
	// renderings interned into the string table. Built before the
	// string table is written (it adds strings), sorted so the deltas
	// stay small and the output deterministic.
	var descBuf []byte
	if w.describe != nil {
		sort.Slice(w.objs, func(i, j int) bool { return w.objs[i] < w.objs[j] })
		descBuf = putUvarint(descBuf, uint64(len(w.objs)))
		prev := int64(0)
		for _, o := range w.objs {
			descBuf = putZigzag(descBuf, int64(o)-prev)
			prev = int64(o)
			descBuf = putUvarint(descBuf, w.stringID(w.describe(o)))
		}
	} else {
		descBuf = putUvarint(descBuf, 0)
	}

	// String table (field names, source files, object descriptions).
	stringsOff := uint64(w.off)
	buf = putUvarint(buf[:0], uint64(len(w.strings)))
	for _, s := range w.strings {
		buf = putUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	w.write(buf)

	descsOff := uint64(w.off)
	w.write(descBuf)

	// Segment index.
	indexOff := uint64(w.off)
	buf = putUvarint(buf[:0], uint64(len(w.index)))
	for _, s := range w.index {
		buf = putUvarint(buf, s.Off)
		buf = putUvarint(buf, s.Len)
		buf = putUvarint(buf, s.Events)
		buf = putUvarint(buf, s.Blocks)
	}
	w.write(buf)

	// Fixed trailer.
	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint64(buf, locksetsOff)
	buf = binary.LittleEndian.AppendUint64(buf, stringsOff)
	buf = binary.LittleEndian.AppendUint64(buf, descsOff)
	buf = binary.LittleEndian.AppendUint64(buf, indexOff)
	buf = binary.LittleEndian.AppendUint64(buf, w.totalEvents)
	buf = append(buf, EndMagic[:]...)
	w.write(buf)

	if ferr := w.w.Flush(); ferr != nil && w.err == nil {
		w.err = ferr
	}
	w.finalized = true
	return w.err
}
