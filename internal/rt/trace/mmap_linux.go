//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mapFile memory-maps f read-only. The returned closer releases the
// mapping. Zero-size files are refused (mmap would fail anyway) so
// OpenFile falls back to the read path and its structured error.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
