package trace

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sync"

	"racedet/internal/lang/token"
	"racedet/internal/rt/event"
)

// Reader is an open, validated trace. It is an index over an immutable
// byte slice (mmap-ed when possible), so opening a multi-gigabyte
// trace touches only the header, the trailer tables, and the segment
// index; segment payloads are faulted in as they are decoded. A Reader
// is safe for concurrent segment decoding — it is never mutated after
// NewReader returns.
type Reader struct {
	data    []byte
	unmap   func() error
	version uint64

	locksets []event.Lockset
	strings  []string
	descs    map[event.ObjID]string
	segs     []SegmentInfo
	total    uint64
}

// OpenFile opens and validates a trace file, memory-mapping it when
// the platform supports it and falling back to reading it into memory
// otherwise. Close releases the mapping.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if data, unmap, merr := mapFile(f, st.Size()); merr == nil {
		r, rerr := NewReader(data)
		if rerr != nil {
			unmap()
			return nil, rerr
		}
		r.unmap = unmap
		return r, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewReader(data)
}

// Close releases the file mapping, if any. The Reader (and any slices
// decoded from it) must not be used afterwards.
func (r *Reader) Close() error {
	if r.unmap != nil {
		u := r.unmap
		r.unmap = nil
		r.data = nil
		return u()
	}
	return nil
}

// Segments returns the number of independently decodable segments.
func (r *Reader) Segments() int { return len(r.segs) }

// SegmentInfo returns the index entry of segment i.
func (r *Reader) SegmentInfo(i int) SegmentInfo { return r.segs[i] }

// TotalEvents returns the recorded event count (control + access).
func (r *Reader) TotalEvents() uint64 { return r.total }

// Size returns the trace size in bytes.
func (r *Reader) Size() int64 { return int64(len(r.data)) }

// Version returns the trace format version.
func (r *Reader) Version() int { return int(r.version) }

// Locksets returns the number of interned locksets (including ∅).
func (r *Reader) Locksets() int { return len(r.locksets) }

// Lockset returns interned lockset id (the recording-side interner's
// dense identity, as referenced by access-block headers).
func (r *Reader) Lockset(id event.LocksetID) event.Lockset { return r.locksets[id] }

// NewReader validates data as a finalized trace and indexes it. It
// parses only the header, trailer, tables, and segment index; segment
// payloads are decoded lazily by Replay. Every defect — bad magic,
// missing trailer, out-of-range ID, inconsistent bound or count —
// returns a *FormatError; no input can make it panic.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(Magic)+1+trailerSize {
		return nil, errf(int64(len(data)), "file too small for a trace (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != string(Magic[:]) {
		return nil, errf(0, "bad magic: not a .mjtrace file")
	}
	hr := &byteReader{data: data, pos: len(Magic)}
	version, err := hr.uvarint()
	if err != nil {
		return nil, err
	}
	if version == 0 || version > Version {
		return nil, errf(int64(len(Magic)), "unsupported trace version %d (reader supports <= %d)", version, Version)
	}
	headerEnd := uint64(hr.pos)

	trailer := data[len(data)-trailerSize:]
	if string(trailer[5*8:]) != string(EndMagic[:]) {
		return nil, errf(int64(len(data)-8), "missing end-of-trace magic: truncated or unfinalized trace")
	}
	locksetsOff := binary.LittleEndian.Uint64(trailer[0:])
	stringsOff := binary.LittleEndian.Uint64(trailer[8:])
	descsOff := binary.LittleEndian.Uint64(trailer[16:])
	indexOff := binary.LittleEndian.Uint64(trailer[24:])
	total := binary.LittleEndian.Uint64(trailer[32:])
	tablesEnd := uint64(len(data) - trailerSize)
	if locksetsOff < headerEnd || stringsOff < locksetsOff || descsOff < stringsOff ||
		indexOff < descsOff || indexOff > tablesEnd {
		return nil, errf(int64(len(data)-trailerSize),
			"inconsistent trailer offsets (locksets=%d strings=%d descs=%d index=%d end=%d)",
			locksetsOff, stringsOff, descsOff, indexOff, tablesEnd)
	}

	r := &Reader{data: data, version: version, total: total}
	if err := r.parseLocksets(data[locksetsOff:stringsOff], int64(locksetsOff)); err != nil {
		return nil, err
	}
	if err := r.parseStrings(data[stringsOff:descsOff], int64(stringsOff)); err != nil {
		return nil, err
	}
	if err := r.parseDescs(data[descsOff:indexOff], int64(descsOff)); err != nil {
		return nil, err
	}
	if err := r.parseIndex(data[indexOff:tablesEnd], int64(indexOff), headerEnd, locksetsOff); err != nil {
		return nil, err
	}
	var sum uint64
	for _, s := range r.segs {
		sum += s.Events
	}
	if sum != total {
		return nil, errf(-1, "event count mismatch: index sums to %d, trailer says %d", sum, total)
	}
	return r, nil
}

func (r *Reader) parseLocksets(sec []byte, base int64) error {
	br := &byteReader{data: sec, base: base}
	count, err := br.uvarint()
	if err != nil {
		return err
	}
	if count == 0 || count > uint64(len(sec))+1 {
		return errf(base, "implausible lockset count %d for a %d-byte table", count, len(sec))
	}
	r.locksets = make([]event.Lockset, count)
	r.locksets[0] = event.Lockset{}
	for id := uint64(0); id < count; id++ {
		n, err := br.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(sec)) {
			return errf(br.off(), "implausible lockset size %d", n)
		}
		ls := make(event.Lockset, n)
		prev := int64(0)
		for i := range ls {
			d, err := br.zigzag()
			if err != nil {
				return err
			}
			prev += d
			ls[i] = event.ObjID(prev)
		}
		r.locksets[id] = ls
	}
	if !br.done() {
		return errf(br.off(), "trailing bytes after lockset table")
	}
	return nil
}

func (r *Reader) parseStrings(sec []byte, base int64) error {
	br := &byteReader{data: sec, base: base}
	count, err := br.uvarint()
	if err != nil {
		return err
	}
	if count == 0 || count > uint64(len(sec))+1 {
		return errf(base, "implausible string count %d for a %d-byte table", count, len(sec))
	}
	r.strings = make([]string, count)
	for id := uint64(0); id < count; id++ {
		n, err := br.uvarint()
		if err != nil {
			return err
		}
		b, err := br.bytes(n)
		if err != nil {
			return err
		}
		r.strings[id] = string(b)
	}
	if !br.done() {
		return errf(br.off(), "trailing bytes after string table")
	}
	return nil
}

func (r *Reader) parseDescs(sec []byte, base int64) error {
	br := &byteReader{data: sec, base: base}
	count, err := br.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(len(sec)) {
		return errf(base, "implausible description count %d for a %d-byte table", count, len(sec))
	}
	if count > 0 {
		r.descs = make(map[event.ObjID]string, count)
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, err := br.zigzag()
		if err != nil {
			return err
		}
		prev += d
		sid, err := br.uvarint()
		if err != nil {
			return err
		}
		if sid >= uint64(len(r.strings)) {
			return errf(br.off(), "description string ID %d out of range (table has %d)", sid, len(r.strings))
		}
		r.descs[event.ObjID(prev)] = r.strings[sid]
	}
	if !br.done() {
		return errf(br.off(), "trailing bytes after description table")
	}
	return nil
}

// DescribeObj renders an object for race reports from the recorded
// description table ("" when the recording had none). Plug it into a
// replay back end via SetDescribeObj so replayed reports match the
// live run's byte for byte.
func (r *Reader) DescribeObj(o event.ObjID) string { return r.descs[o] }

func (r *Reader) parseIndex(sec []byte, base int64, bodyStart, bodyEnd uint64) error {
	br := &byteReader{data: sec, base: base}
	count, err := br.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(len(sec)) {
		return errf(base, "implausible segment count %d for a %d-byte index", count, len(sec))
	}
	r.segs = make([]SegmentInfo, count)
	prevEnd := bodyStart
	for i := range r.segs {
		var s SegmentInfo
		if s.Off, err = br.uvarint(); err != nil {
			return err
		}
		if s.Len, err = br.uvarint(); err != nil {
			return err
		}
		if s.Events, err = br.uvarint(); err != nil {
			return err
		}
		if s.Blocks, err = br.uvarint(); err != nil {
			return err
		}
		if s.Off < prevEnd || s.Off > bodyEnd || s.Len > bodyEnd-s.Off {
			return errf(br.off(), "segment %d out of bounds: [%d,%d) not within body [%d,%d)",
				i, s.Off, s.Off+s.Len, prevEnd, bodyEnd)
		}
		// Every event and every block consumes at least one payload
		// byte, so these counts bound the decode buffers safely —
		// decodeSegment pre-allocates from them.
		if s.Events > s.Len || s.Blocks > s.Len {
			return errf(br.off(), "segment %d claims %d events in %d blocks for a %d-byte payload",
				i, s.Events, s.Blocks, s.Len)
		}
		prevEnd = s.Off + s.Len
		r.segs[i] = s
	}
	if !br.done() {
		return errf(br.off(), "trailing bytes after segment index")
	}
	return nil
}

// Op is one decoded control event or access block.
type Op struct {
	Kind    uint8 // opThreadStart..opMonExit, or opAccessBlock
	A, B    int64 // operands (thread IDs, lock object, joiner/joinee)
	Depth   int
	Lockset event.LocksetID // access blocks: recorded lock environment
	Start   int             // access blocks: range into decodedSeg.accesses
	N       int
}

// decodedSeg is one segment decoded into deliverable form. Buffers are
// pooled and reused across segments (and across Replay calls).
type decodedSeg struct {
	ops      []Op
	accesses []event.Access
}

var segPool = sync.Pool{New: func() any { return new(decodedSeg) }}

func (d *decodedSeg) reset() {
	d.ops = d.ops[:0]
	for i := range d.accesses {
		d.accesses[i] = event.Access{} // do not pin strings across pool reuse
	}
	d.accesses = d.accesses[:0]
}

// decodeSegment decodes segment i into d (which it resets first). All
// lockset and string IDs are validated against the trailer tables.
func (r *Reader) decodeSegment(i int, d *decodedSeg) error {
	d.reset()
	info := r.segs[i]
	// The index records exact per-segment counts, so the output
	// buffers can be sized once up front — no growslice (and no
	// 96-byte struct moves) in the decode loop. The counts are
	// cross-checked against the payload below, so a lying index
	// surfaces as a FormatError, not an over-allocation: NewReader
	// already bounded them against the file size.
	if uint64(cap(d.accesses)) < info.Events {
		d.accesses = make([]event.Access, 0, info.Events)
	}
	if uint64(cap(d.ops)) < info.Blocks {
		d.ops = make([]Op, 0, info.Blocks)
	}
	br := &byteReader{data: r.data[info.Off : info.Off+info.Len], base: int64(info.Off)}
	var events, blocks uint64
	for !br.done() {
		op, err := br.uvarint()
		if err != nil {
			return err
		}
		blocks++
		switch op {
		case opAccessBlock:
			thread, err := br.zigzag()
			if err != nil {
				return err
			}
			lockID, err := br.uvarint()
			if err != nil {
				return err
			}
			if lockID >= uint64(len(r.locksets)) {
				return errf(br.off(), "lockset ID %d out of range (table has %d)", lockID, len(r.locksets))
			}
			count, err := br.uvarint()
			if err != nil {
				return err
			}
			if events > info.Events || count > info.Events-events {
				return errf(br.off(), "access block of %d events exceeds segment's remaining %d",
					count, info.Events-events)
			}
			start := len(d.accesses)
			var obj, slot, line, col int64
			data := br.data
			for n := uint64(0); n < count; n++ {
				var hdr, fileID uint64
				var dObj, dSlot, dLine, dCol int64
				// Fast path: a record is six varints, and with delta
				// encoding almost all of them are single-byte — test
				// all six with one bounds check and one OR, decode
				// them without the per-varint method calls.
				if p := br.pos; p+6 <= len(data) &&
					data[p]|data[p+1]|data[p+2]|data[p+3]|data[p+4]|data[p+5] < 0x80 {
					hdr = uint64(data[p])
					dObj = unzigzag(uint64(data[p+1]))
					dSlot = unzigzag(uint64(data[p+2]))
					fileID = uint64(data[p+3])
					dLine = unzigzag(uint64(data[p+4]))
					dCol = unzigzag(uint64(data[p+5]))
					br.pos = p + 6
				} else {
					var err error
					if hdr, err = br.uvarint(); err != nil {
						return err
					}
					if dObj, err = br.zigzag(); err != nil {
						return err
					}
					if dSlot, err = br.zigzag(); err != nil {
						return err
					}
					if fileID, err = br.uvarint(); err != nil {
						return err
					}
					if dLine, err = br.zigzag(); err != nil {
						return err
					}
					if dCol, err = br.zigzag(); err != nil {
						return err
					}
				}
				fieldID := hdr >> 1
				if fieldID >= uint64(len(r.strings)) {
					return errf(br.off(), "field-name string ID %d out of range (table has %d)", fieldID, len(r.strings))
				}
				if fileID >= uint64(len(r.strings)) {
					return errf(br.off(), "file string ID %d out of range (table has %d)", fileID, len(r.strings))
				}
				obj += dObj
				slot += dSlot
				line += dLine
				col += dCol
				d.accesses = append(d.accesses, event.Access{
					Loc:       event.Loc{Obj: event.ObjID(obj), Slot: int32(slot)},
					Pos:       token.Pos{File: r.strings[fileID], Line: int32(line), Col: int32(col)},
					FieldName: r.strings[fieldID],
					Thread:    event.ThreadID(thread),
					Kind:      event.Kind(hdr & 1),
				})
			}
			d.ops = append(d.ops, Op{
				Kind:    opAccessBlock,
				A:       thread,
				Lockset: event.LocksetID(lockID),
				Start:   start,
				N:       int(count),
			})
			events += count
		case opThreadStart, opJoin:
			a, err := br.zigzag()
			if err != nil {
				return err
			}
			b, err := br.zigzag()
			if err != nil {
				return err
			}
			d.ops = append(d.ops, Op{Kind: uint8(op), A: a, B: b})
			events++
		case opThreadFinish:
			a, err := br.zigzag()
			if err != nil {
				return err
			}
			d.ops = append(d.ops, Op{Kind: uint8(op), A: a})
			events++
		case opMonEnter, opMonExit:
			t, err := br.zigzag()
			if err != nil {
				return err
			}
			lock, err := br.zigzag()
			if err != nil {
				return err
			}
			depth, err := br.zigzag()
			if err != nil {
				return err
			}
			d.ops = append(d.ops, Op{Kind: uint8(op), A: t, B: lock, Depth: int(depth)})
			events++
		default:
			return errf(br.off(), "unknown opcode %d", op)
		}
	}
	if events != info.Events || blocks != info.Blocks {
		return errf(int64(info.Off), "segment %d decodes to %d events in %d blocks; index says %d/%d",
			i, events, blocks, info.Events, info.Blocks)
	}
	return nil
}

// feed delivers one decoded segment to the sink in stream order.
// Access blocks go through AccessBatch when the sink supports it —
// block framing mirrors the live Batcher's, so the sink sees the
// granularity it is optimized for. Batch slices are only valid during
// the call (the buffers are pooled), matching the BatchSink contract.
func feed(d *decodedSeg, sink event.Sink, batch event.BatchSink) {
	for _, op := range d.ops {
		switch op.Kind {
		case opAccessBlock:
			run := d.accesses[op.Start : op.Start+op.N]
			if batch != nil {
				batch.AccessBatch(run)
			} else {
				for _, a := range run {
					sink.Access(a)
				}
			}
		case opThreadStart:
			sink.ThreadStarted(event.ThreadID(op.A), event.ThreadID(op.B))
		case opThreadFinish:
			sink.ThreadFinished(event.ThreadID(op.A))
		case opJoin:
			sink.Joined(event.ThreadID(op.A), event.ThreadID(op.B))
		case opMonEnter:
			sink.MonitorEnter(event.ThreadID(op.A), event.ObjID(op.B), op.Depth)
		case opMonExit:
			sink.MonitorExit(event.ThreadID(op.A), event.ObjID(op.B), op.Depth)
		}
	}
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Events is every delivered event; Accesses the access subset.
	Events   uint64
	Accesses uint64
	// Segments is the number of segments decoded; Bytes the trace size.
	Segments int
	Bytes    int64
}

// Replay streams the recorded events into sink in their original
// order. parallel bounds the segment-decode workers (<= 0 selects
// GOMAXPROCS); delivery to the sink is always sequential and in
// segment order, so the sink observes exactly the recorded stream
// regardless of parallelism — decoding is what fans out, not
// delivery. A Reader may be replayed any number of times,
// concurrently if each call uses its own sink.
func (r *Reader) Replay(sink event.Sink, parallel int) (ReplayStats, error) {
	stats := ReplayStats{Bytes: r.Size()}
	batch, _ := sink.(event.BatchSink)
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(r.segs) {
		parallel = len(r.segs)
	}

	account := func(d *decodedSeg) {
		stats.Segments++
		stats.Events += uint64(len(d.ops)) // control ops…
		for _, op := range d.ops {
			if op.Kind == opAccessBlock {
				stats.Events-- // …the block op itself is not an event
				stats.Events += uint64(op.N)
				stats.Accesses += uint64(op.N)
			}
		}
	}

	if parallel <= 1 {
		d := segPool.Get().(*decodedSeg)
		defer segPool.Put(d)
		for i := range r.segs {
			if err := r.decodeSegment(i, d); err != nil {
				return stats, err
			}
			account(d)
			feed(d, sink, batch)
		}
		return stats, nil
	}

	// Parallel decode, ordered delivery: a bounded window of futures
	// keeps up to `parallel` segments decoding ahead of the feeder.
	type segRes struct {
		d   *decodedSeg
		err error
	}
	futures := make(chan chan segRes, parallel)
	go func() {
		sem := make(chan struct{}, parallel)
		for i := range r.segs {
			ch := make(chan segRes, 1)
			futures <- ch
			sem <- struct{}{}
			go func(i int, ch chan segRes) {
				defer func() { <-sem }()
				d := segPool.Get().(*decodedSeg)
				if err := r.decodeSegment(i, d); err != nil {
					segPool.Put(d)
					ch <- segRes{nil, err}
					return
				}
				ch <- segRes{d, nil}
			}(i, ch)
		}
		close(futures)
	}()

	var firstErr error
	for ch := range futures {
		res := <-ch
		if firstErr != nil {
			if res.d != nil {
				segPool.Put(res.d)
			}
			continue // drain remaining futures; decoders already run
		}
		if res.err != nil {
			firstErr = res.err
			continue
		}
		account(res.d)
		feed(res.d, sink, batch)
		segPool.Put(res.d)
	}
	return stats, firstErr
}

// String renders a short human-readable summary.
func (r *Reader) String() string {
	return fmt.Sprintf("mjtrace v%d: %d events, %d segments, %d locksets, %d strings, %d bytes",
		r.version, r.total, len(r.segs), len(r.locksets), len(r.strings), len(r.data))
}
