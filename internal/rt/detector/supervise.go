// Worker supervision for the sharded back end: journaled replay,
// checkpoint/restore, bounded restarts with exponential backoff, and
// degradation to the Eraser lockset path when the retry budget runs
// out.
//
// The protocol per routed batch is write-ahead: if the journal is
// full, checkpoint (deep snapshot of the shard's trie state) and
// truncate; then append the batch; then process it under a recover
// wrapper. A panic triggers recoverFrom, which restarts the shard —
// restore a fresh clone of the checkpoint (or an empty trie if none
// was ever taken), replay the journal suffix — up to Options.
// RetryBudget times. Because the panicking batch was journaled before
// processing, replay re-delivers it, so a deterministic fault (the
// interesting kind: a detector bug tripped by a specific input) will
// re-fire during replay and consume another attempt; a transient
// fault recovers with state byte-identical to a run that never
// panicked. When the budget is exhausted — or the checkpoint fails
// validation — the shard degrades: it keeps the best reports it has
// and runs every remaining access through a self-contained Eraser
// lockset state machine that cannot panic, so the run always
// completes with an accounted degradation instead of a lost analysis.
//
// Buffer lifecycle: a supervised shard must keep routed batch buffers
// alive while they sit in the journal (replay re-reads them), so it
// recycles them to the router's freelist only when a checkpoint
// truncates the journal — the unsupervised worker recycles
// immediately after processing instead.
package detector

import (
	"fmt"
	"time"

	"racedet/internal/rt/event"
	"racedet/internal/rt/journal"
	"racedet/internal/rt/trie"
)

// FaultInjector is the deterministic fault-injection surface the
// sharded back end exposes for robustness testing; implementations
// live in internal/faultinject. All methods are called from hot paths
// — the router goroutine (QueueFull) and worker goroutines (the rest)
// — and must be safe for concurrent use.
type FaultInjector interface {
	// WorkerEvent fires on shard's n-th processed access (1-based,
	// counted per shard). It may panic (worker crash) or sleep (slow
	// worker); returning normally injects nothing.
	WorkerEvent(shard int, n uint64)
	// QueueFull reports whether the router should treat shard's queue
	// as full right now, forcing the backpressure path.
	QueueFull(shard int) bool
	// CorruptCheckpoint reports whether the checkpoint shard is about
	// to take should be marked corrupt, forcing restore to fail.
	CorruptCheckpoint(shard int) bool
}

// workerSnapshot is the checkpointed deep copy of a shard's state:
// the trie slice plus the report set and the fault-hook event
// counter. The cache and ownership layers live on the router and are
// untouched by worker faults; the lockset interner is deliberately
// not part of the snapshot either — interning is content-addressed
// and append-only, so entries added by a discarded attempt can never
// change what a later Intern returns.
type workerSnapshot struct {
	trie   history
	events uint64

	reports     []shardReport
	reportedLoc map[event.Loc]struct{}
	reportedObj map[event.ObjID]struct{}
}

// cloneHistory deep-copies any of the trie implementations behind the
// history interface. The constructors in freshState cover exactly
// these types, so an unknown one is an internal invariant violation.
func cloneHistory(h history) history {
	switch t := h.(type) {
	case *trie.Detector:
		return t.Clone()
	case *trie.Packed:
		return t.Clone()
	default:
		panic(fmt.Sprintf("detector: history type %T has no Clone", h))
	}
}

func cloneLocSet(m map[event.Loc]struct{}) map[event.Loc]struct{} {
	n := make(map[event.Loc]struct{}, len(m))
	for k := range m {
		n[k] = struct{}{}
	}
	return n
}

func cloneObjSet(m map[event.ObjID]struct{}) map[event.ObjID]struct{} {
	n := make(map[event.ObjID]struct{}, len(m))
	for k := range m {
		n[k] = struct{}{}
	}
	return n
}

// snapshot deep-copies the worker's state for a checkpoint.
func (w *worker) snapshot() workerSnapshot {
	return workerSnapshot{
		trie:        cloneHistory(w.trie),
		events:      w.events,
		reports:     append([]shardReport(nil), w.reports...),
		reportedLoc: cloneLocSet(w.reportedLoc),
		reportedObj: cloneObjSet(w.reportedObj),
	}
}

// handleSupervised is the supervised worker's per-batch protocol:
// checkpoint when the journal is full, journal the batch, process it
// under a recover wrapper, and run recovery on panic. Once the shard
// has degraded, batches flow straight to the Eraser path (and are
// recycled immediately — nothing journals them anymore).
func (w *worker) handleSupervised(batch shardBatch) {
	if w.degraded != nil {
		w.degraded.handle(w, batch)
		w.recycle(batch)
		return
	}
	if w.journal.Full() {
		w.checkpoint()
	}
	w.journal.Append(batch)
	if err := w.tryProcess(batch); err != nil {
		w.recoverFrom(err)
	}
}

// checkpoint snapshots the shard and truncates the journal. The
// truncated buffers have been fully absorbed by the snapshot (the
// trie and reports copy what they keep), so they are recycled to the
// router's freelist here — the supervised half of the zero-allocation
// steady state. The fault hook may mark the new checkpoint corrupt,
// which a later restore detects (and degrades on) instead of silently
// replaying onto bad state.
func (w *worker) checkpoint() {
	w.ckpt = journal.Capture(w.snapshot(), w.journal.Pos())
	w.rec.Checkpoints++
	if f := w.opts.Faults; f != nil && f.CorruptCheckpoint(w.idx) {
		w.ckpt.Corrupt()
	}
	w.journal.Each(w.recycle)
	w.journal.Truncate()
}

func (w *worker) tryProcess(batch shardBatch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("detector shard %d: panic: %v", w.idx, r)
		}
	}()
	w.process(batch)
	return nil
}

// restore rebuilds the worker's state from the last checkpoint — a
// fresh clone each time, so the checkpoint itself stays pristine for
// further restores — or from scratch when no checkpoint was ever
// taken. It returns false if the checkpoint exists but fails
// validation; the caller must then degrade rather than trust it.
func (w *worker) restore() bool {
	if !w.ckpt.Taken() {
		w.freshState()
		return true
	}
	if !w.ckpt.Valid() {
		return false
	}
	s := w.ckpt.State
	w.trie = cloneHistory(s.trie)
	w.events = s.events
	w.reports = append([]shardReport(nil), s.reports...)
	w.reportedLoc = cloneLocSet(s.reportedLoc)
	w.reportedObj = cloneObjSet(s.reportedObj)
	return true
}

func (w *worker) tryReplay() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("detector shard %d: panic during replay: %v", w.idx, r)
		}
	}()
	w.journal.Replay(w.process)
	return nil
}

// backoffDelay is the exponential restart backoff: 1ms doubling per
// attempt, capped at 100ms so a stuck shard cannot stall the run for
// long (the router ring is bounded, so the backpressure policy
// governs what happens upstream meanwhile).
func backoffDelay(attempt int) time.Duration {
	if attempt > 7 {
		return 100 * time.Millisecond
	}
	d := time.Millisecond << (attempt - 1)
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// recoverFrom drives the restart loop after a processing panic. Each
// attempt restores the checkpoint clone and replays the journal
// suffix; success means the shard's state is exactly what an
// undisturbed run would have — the panicking batch included, since it
// was journaled before processing. Budget exhaustion or a corrupt
// checkpoint degrades the shard instead of failing the run.
func (w *worker) recoverFrom(cause error) {
	for attempt := 1; ; attempt++ {
		if attempt > w.opts.RetryBudget {
			w.degrade(cause)
			return
		}
		w.rec.Restarts++
		time.Sleep(backoffDelay(attempt))
		if !w.restore() {
			w.rec.CheckpointCorruptions++
			w.degrade(cause)
			return
		}
		if err := w.tryReplay(); err != nil {
			cause = err
			continue
		}
		return
	}
}

// ---------------------------------------------------------------------------
// degraded mode: the Eraser lockset path

// degrade switches the shard to the Eraser path for the rest of the
// run. The shard keeps the most trustworthy reports available — the
// checkpoint's when it is valid (the current set may include effects
// of a poisoned partial attempt), the current best effort otherwise —
// and then pushes the journal suffix through the Eraser machine so
// the accesses since the checkpoint are still analyzed. The
// per-location dedup map carries over, so a location already reported
// by the trie is not re-reported by Eraser. The journaled buffers are
// not recycled — the journal is simply abandoned (bounded by
// JournalCap, a one-time cost on an already-degraded shard).
func (w *worker) degrade(cause error) {
	_ = cause // the run completes; Stats.Recovery carries the story
	w.degraded = &degradedShard{locs: make(map[event.Loc]*eraserLoc)}
	if w.ckpt.Valid() {
		s := w.ckpt.State
		w.reports = append([]shardReport(nil), s.reports...)
		w.reportedLoc = cloneLocSet(s.reportedLoc)
		w.reportedObj = cloneObjSet(s.reportedObj)
	}
	w.journal.Replay(func(b shardBatch) { w.degraded.handle(w, b) })
}

// eraserLoc is one location's Eraser state: Virgin → Exclusive →
// Shared / Shared-Modified with candidate-lockset intersection, as in
// internal/rt/eraser but over the router-materialized locksets the
// shard batches already carry. One deliberate deviation from classic
// Eraser: the first access's lockset participates in the candidate
// intersection (classic Eraser discards it to tolerate init
// patterns). The stream a degraded shard sees has already been
// deduplicated by the router's cache, so the redundant accesses that
// would normally drain the candidate set may never arrive; folding
// the first lockset in errs toward reporting — strictly more reports,
// never fewer, which is the degraded mode's contract.
type eraserLoc struct {
	state      int8
	firstT     event.ThreadID
	firstLocks event.Lockset
	candidate  event.Lockset
}

const (
	eraserVirgin int8 = iota
	eraserExclusive
	eraserShared
	eraserSharedModified
)

// degradedShard is the panic-free fallback detector for one shard. It
// deliberately calls no fault hooks and allocates only maps and small
// structs, so a degraded shard always drains its ring to completion.
type degradedShard struct {
	locs map[event.Loc]*eraserLoc
}

func (g *degradedShard) handle(w *worker, batch shardBatch) {
	for _, sa := range batch {
		g.access(w, sa)
	}
}

func (g *degradedShard) access(w *worker, sa shardAccess) {
	w.rec.DegradedEvents++
	a := sa.a
	ls := g.locs[a.Loc]
	if ls == nil {
		ls = &eraserLoc{state: eraserVirgin}
		g.locs[a.Loc] = ls
	}
	held := a.Locks // interned canonical slice, never mutated

	switch ls.state {
	case eraserVirgin:
		ls.state = eraserExclusive
		ls.firstT = a.Thread
		ls.firstLocks = held
	case eraserExclusive:
		if a.Thread == ls.firstT {
			return
		}
		ls.candidate = ls.firstLocks.Intersect(held)
		if a.Kind == event.Write {
			ls.state = eraserSharedModified
		} else {
			ls.state = eraserShared
		}
	case eraserShared:
		ls.candidate = ls.candidate.Intersect(held)
		if a.Kind == event.Write {
			ls.state = eraserSharedModified
		}
	case eraserSharedModified:
		ls.candidate = ls.candidate.Intersect(held)
	}

	if ls.state == eraserSharedModified && len(ls.candidate) == 0 {
		if _, dup := w.reportedLoc[a.Loc]; dup {
			return
		}
		w.reportedLoc[a.Loc] = struct{}{}
		w.reportedObj[a.Loc.Obj] = struct{}{}
		// Eraser knows no prior access: report the conservative bottom
		// (t⊥, empty lockset, write), the same shape a collapsed trie
		// summary produces.
		w.reports = append(w.reports, shardReport{
			rep: Report{
				Access:      a,
				PriorThread: event.TBot,
				PriorLocks:  event.Lockset{},
				PriorKind:   event.Write,
			},
			seq: sa.seq,
		})
	}
}
