// Package detector composes the paper's full runtime stack — join
// pseudolocks (§2.3), the ownership filter (§7), the per-thread access
// caches (§4), and the trie-based weaker-than detector (§3) — behind
// the event.Sink interface the interpreter feeds.
//
// The composition order per access is:
//
//	cache lookup → [hit: done]
//	ownership filter → [owned: cache insert, done; owned→shared:
//	                    evict location from all caches]
//	trie: weakness check → race check → update
//	cache insert
//
// Reporting follows Definition 1: the detector reports at least one
// racing access for every memory location involved in a datarace
// (deduplicated per location by default).
package detector

import (
	"fmt"
	"sort"

	"racedet/internal/rt/cache"
	"racedet/internal/rt/event"
	"racedet/internal/rt/ownership"
	"racedet/internal/rt/sitestate"
	"racedet/internal/rt/trie"
)

// Options selects which layers run; the zero value is the paper's
// "Full" runtime configuration.
type Options struct {
	// NoCache disables the §4 runtime optimizer (Table 2 "NoCache").
	NoCache bool
	// NoOwnership disables the §7 ownership filter (Table 3
	// "NoOwnership"): every location starts shared.
	NoOwnership bool
	// FieldsMerged collapses all instance fields (and the array
	// pseudo-field) of an object into one location (Table 3
	// "FieldsMerged"). Static fields of the same class stay distinct,
	// as in the paper.
	FieldsMerged bool
	// NoPseudoLocks disables the §2.3 join pseudolocks; used to
	// demonstrate the mtrt I/O-statistics false positive that
	// single-common-lock detectors report (§8.3).
	NoPseudoLocks bool
	// NoTBot stores exact thread sets in trie nodes instead of
	// collapsing to t⊥ (space ablation; see DESIGN.md §4).
	NoTBot bool
	// PackedTrie uses the §8.2 multi-location trie (one trie per
	// object, per-slot lattice entries) instead of one trie per
	// location. Mutually exclusive with NoTBot.
	PackedTrie bool
	// ReportAll reports every racing access event rather than one per
	// location (closer to FullRace; quadratic in the worst case).
	ReportAll bool
	// MaxTrieNodes bounds trie history memory (0 = unbounded). Over
	// budget, whole per-location histories collapse to a conservative
	// summary that reports strictly more races, never fewer. Only the
	// default per-location trie honors the bound; PackedTrie and NoTBot
	// ignore it (they are ablation configurations).
	MaxTrieNodes int
	// MaxCacheThreads bounds the number of live per-thread access
	// caches (0 = unbounded); over budget the least recently used
	// thread's caches are discarded (pure filtering loss).
	MaxCacheThreads int
	// MaxOwnerLocations bounds the ownership table (0 = unbounded);
	// overflow locations are treated as born-shared.
	MaxOwnerLocations int
	// DescribeObj renders an object for reports (e.g. "TspSolver#3
	// allocated at tsp.mj:12:9"); optional.
	DescribeObj func(event.ObjID) string

	// SampleK > 0 enables adaptive per-site throttling: a static access
	// site (source position + access kind) demotes to a counting-only
	// stub after K consecutive clean observations under an unchanged
	// lock environment, and re-arms on ownership contact (see
	// internal/rt/sitestate). Requires the ownership filter; ignored
	// under NoOwnership. Sampling disables the QuickCheck fast path so
	// the filter observes the complete event stream — which is what
	// makes a live sampled run byte-identical to replaying an
	// (unsampled) recorded trace with sampling on.
	SampleK int
	// SampleBudget > 0 additionally enables the target-overhead
	// controller: K is tightened/loosened each window to hold the
	// events-shipped ratio at the budget (0 < budget <= 1). With
	// SampleK == 0 the initial K is sitestate.DefaultK.
	SampleBudget float64

	// Priors seeds the throttle with per-site static lock-discipline
	// priors (see sitestate.Prior): high-prior sites are pinned armed,
	// low-prior sites demote early. Nil means no priors. InvertPriors
	// swaps high and low — the ablation mode. Both are ignored unless
	// sampling is enabled.
	Priors       map[sitestate.Key]sitestate.Prior
	InvertPriors bool

	// JournalCap enables fault tolerance in the sharded back end: each
	// shard keeps a bounded write-ahead journal of up to this many
	// routed messages and checkpoints its state when the journal fills,
	// so a panicked worker can be restarted from the checkpoint and
	// replayed (see supervise.go). 0 disables journaling — a worker
	// panic then surfaces through Err, the pre-supervision behavior.
	// The serial detector ignores it.
	JournalCap int
	// RetryBudget is the number of restart attempts per shard before
	// the shard degrades to the Eraser lockset path instead of failing
	// the run (meaningful only with JournalCap > 0). 0 degrades on the
	// first panic; the degradation is counted in Stats.Recovery.
	RetryBudget int
	// QueueDepth bounds each shard's router→worker queue in messages
	// (0 = DefaultQueueDepth). A full queue blocks the router unless
	// DropOnBackpressure is set, so a slow or restarting worker can
	// never grow router memory without bound.
	QueueDepth int
	// DropOnBackpressure drops access batches — with accounting in
	// Stats.Recovery — instead of blocking when a shard queue is full.
	// Dropped batches are pure detection loss (the run may then under-
	// report); control messages are never dropped, so the cache layers
	// stay sound. Off by default: blocking preserves byte-equivalence.
	DropOnBackpressure bool
	// Faults installs deterministic fault-injection hooks on the
	// sharded back end's hot paths (see internal/faultinject); nil in
	// production.
	Faults FaultInjector
}

// Report describes one reported datarace: the access that triggered
// the report plus what is known about a prior conflicting access.
type Report struct {
	Access      event.Access
	PriorThread event.ThreadID // may be t⊥ (§3.1)
	PriorLocks  event.Lockset
	PriorKind   event.Kind
	ObjDesc     string
}

func (r Report) String() string {
	prior := fmt.Sprintf("earlier %s by %s locks=%s", r.PriorKind, r.PriorThread, r.PriorLocks)
	desc := ""
	if r.ObjDesc != "" {
		desc = " on " + r.ObjDesc
	}
	return fmt.Sprintf("DATARACE %s (%s by %s locks=%s at %s)%s; %s",
		r.Access.FieldName, r.Access.Kind, r.Access.Thread, r.Access.Locks, r.Access.Pos, desc, prior)
}

// Stats aggregates work counters across the layers.
type Stats struct {
	Accesses   uint64 // trace events received
	CacheHits  uint64
	OwnerSkips uint64 // accesses absorbed by the ownership filter
	// Shipped counts accesses delivered to the trie stage — the
	// detection work the filter layers could not absorb. The accounting
	// invariant, sampled or not:
	//
	//	Accesses == Shipped + CacheHits + OwnerSkips + Sample.Suppressed
	Shipped uint64
	// Sample reports the per-site throttling layer's counters (all zero
	// unless SampleK/SampleBudget enabled it).
	Sample sitestate.Stats
	// OwnerLocations is the number of locations the ownership table
	// tracks — the detector-memory growth witness behind the paper's
	// mtrt/NoStatic out-of-memory observation.
	OwnerLocations int
	// OwnerOverflows counts accesses the bounded ownership table
	// forwarded as born-shared (0 in unbounded mode).
	OwnerOverflows uint64
	Trie           trie.Stats
	Cache          cache.Stats
	// Recovery quantifies the sharded back end's fault-tolerance work
	// (all zero for the serial detector and for undisturbed runs).
	Recovery RecoveryStats
}

// RecoveryStats accounts the fault-tolerant sharded back end's
// journal, checkpoint, restart, degradation, and backpressure
// activity. Non-zero DegradedShards or DroppedEvents mean the run's
// reports are best-effort for the affected shards; everything else is
// bookkeeping for runs that recovered exactly.
type RecoveryStats struct {
	// Journaled counts messages written to shard journals; Checkpoints
	// counts state snapshots taken; Replayed counts messages re-
	// delivered from journals during recovery.
	Journaled   uint64
	Checkpoints uint64
	Replayed    uint64
	// Restarts counts worker restart attempts after panics.
	Restarts uint64
	// CheckpointCorruptions counts restore attempts abandoned because
	// the checkpoint failed validation (each degrades the shard).
	CheckpointCorruptions uint64
	// DegradedShards counts shards that exhausted their retry budget
	// and fell back to the Eraser lockset path; DegradedEvents counts
	// the accesses that path handled.
	DegradedShards int
	DegradedEvents uint64
	// DroppedBatches/DroppedEvents count access batches discarded under
	// the drop backpressure policy; BackpressureStalls counts blocking
	// sends that found the queue full (including injected fullness).
	DroppedBatches     uint64
	DroppedEvents      uint64
	BackpressureStalls uint64
	// QueueHighWater is the maximum router-queue depth observed across
	// shards (in messages).
	QueueHighWater int
}

// history is the per-location access store: the per-location trie,
// its t⊥ ablation, or the §8.2 packed multi-location trie.
type history interface {
	Process(event.Access) (bool, trie.RaceInfo)
	Stats() trie.Stats
	NodeCount() int
	LocationCount() int
}

// Detector is the composed runtime detector.
type Detector struct {
	opts Options

	intern *event.Interner
	locks  *event.LockTracker
	cache  *cache.Cache
	owner  *ownership.Table
	trie   history
	sites  *sitestate.Table // non-nil iff per-site throttling is on
	stats  Stats
	parent map[event.ThreadID]event.ThreadID

	reports     []Report
	reportedLoc map[event.Loc]struct{}
	reportedObj map[event.ObjID]struct{}
}

var _ event.BatchSink = (*Detector)(nil)

// New builds a detector with the given options.
func New(opts Options) *Detector {
	it := event.NewInterner()
	d := &Detector{
		opts:        opts,
		intern:      it,
		locks:       event.NewLockTrackerInterned(it),
		cache:       cache.New(),
		owner:       ownership.New(),
		parent:      make(map[event.ThreadID]event.ThreadID),
		reportedLoc: make(map[event.Loc]struct{}),
		reportedObj: make(map[event.ObjID]struct{}),
	}
	if opts.MaxCacheThreads > 0 {
		d.cache = cache.NewBounded(opts.MaxCacheThreads)
	}
	if opts.MaxOwnerLocations > 0 {
		d.owner = ownership.NewBounded(opts.MaxOwnerLocations)
	}
	switch {
	case opts.PackedTrie:
		d.trie = trie.NewPacked()
	case opts.NoTBot:
		d.trie = trie.NewNoTBot()
	case opts.MaxTrieNodes > 0:
		d.trie = trie.NewBounded(opts.MaxTrieNodes)
	default:
		d.trie = trie.New()
	}
	if st, ok := d.trie.(interface {
		SetInterner(*event.Interner)
	}); ok {
		st.SetInterner(it)
	}
	if sc, on := samplingConfig(opts); on {
		d.sites = sitestate.New(sc)
		d.owner.SetOnContact(d.sites.Contact)
	}
	return d
}

// samplingConfig resolves the Options sampling knobs. Throttling needs
// the ownership filter's contact signal to stay over-report-never-miss,
// so NoOwnership disables it.
func samplingConfig(opts Options) (sitestate.Config, bool) {
	if opts.NoOwnership || (opts.SampleK <= 0 && opts.SampleBudget <= 0) {
		return sitestate.Config{}, false
	}
	return sitestate.Config{
		K:            opts.SampleK,
		Budget:       opts.SampleBudget,
		Priors:       opts.Priors,
		InvertPriors: opts.InvertPriors,
	}, true
}

// Interner exposes the per-run lockset intern table (read-only use:
// resolving LocksetIDs carried by reports).
func (d *Detector) Interner() *event.Interner { return d.intern }

// Err implements the Backend contract; the serial detector cannot fail
// asynchronously.
func (d *Detector) Err() error { return nil }

// Reports returns the datarace reports in detection order.
func (d *Detector) Reports() []Report { return d.reports }

// SetDescribeObj installs the object renderer used in reports. The
// runner sets it after the interpreter (which owns the heap) exists.
func (d *Detector) SetDescribeObj(fn func(event.ObjID) string) { d.opts.DescribeObj = fn }

// RacyObjects returns the distinct objects named in reports, sorted —
// the quantity Table 3 counts.
func (d *Detector) RacyObjects() []event.ObjID {
	objs := make([]event.ObjID, 0, len(d.reportedObj))
	for o := range d.reportedObj {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	return objs
}

// Stats returns the aggregated work counters.
func (d *Detector) Stats() Stats {
	s := d.stats
	s.OwnerLocations = d.owner.Locations()
	s.OwnerOverflows = d.owner.Overflows()
	s.Trie = d.trie.Stats()
	s.Cache = d.cache.Stats()
	if d.sites != nil {
		s.Sample = d.sites.Stats()
	}
	return s
}

// TrieNodeCount exposes the history size (space metric).
func (d *Detector) TrieNodeCount() int { return d.trie.NodeCount() }

// TrieLocationCount exposes the number of locations with history.
func (d *Detector) TrieLocationCount() int { return d.trie.LocationCount() }

// ---------------------------------------------------------------------------
// event.Sink implementation

// ThreadStarted implements event.Sink.
func (d *Detector) ThreadStarted(child, parent event.ThreadID) {
	d.parent[child] = parent
	if !d.opts.NoPseudoLocks {
		d.locks.ThreadStarted(child, parent)
	}
}

// ThreadFinished implements event.Sink.
func (d *Detector) ThreadFinished(t event.ThreadID) {
	if !d.opts.NoPseudoLocks {
		d.locks.ThreadFinished(t)
	}
	d.cache.ThreadFinished(t)
}

// Joined implements event.Sink.
func (d *Detector) Joined(joiner, joinee event.ThreadID) {
	if !d.opts.NoPseudoLocks {
		d.locks.Joined(joiner, joinee)
	}
}

// MonitorEnter implements event.Sink.
func (d *Detector) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	d.locks.MonitorEnter(t, lock, depth)
}

// MonitorExit implements event.Sink. Releasing a lock evicts the
// cache entries whose locksets contain it; reentrant exits are
// ignored, matching §4.2's note on nested locks.
func (d *Detector) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	d.locks.MonitorExit(t, lock, depth)
	if depth == 0 && !d.opts.NoCache {
		d.cache.LockReleased(t, lock)
	}
}

// QuickCheck is the inlined fast path of the §4 runtime optimizer:
// the paper compiles the cache lookup into the instrumented code so a
// hit never calls into the detector. The interpreter calls it before
// materializing a full access event; true means the access was
// absorbed by the cache.
func (d *Detector) QuickCheck(t event.ThreadID, loc event.Loc, kind event.Kind) bool {
	// Under sampling the fast path is off: the throttling layer must
	// observe the complete stream (site counters, touch accounting), and
	// a live sampled run must see exactly what a trace replay feeds it.
	if d.opts.NoCache || d.sites != nil {
		return false
	}
	if d.opts.FieldsMerged && loc.Slot >= event.ArraySlot {
		loc.Slot = 0
	}
	if d.cache.Lookup(t, loc, kind) {
		d.stats.Accesses++
		d.stats.CacheHits++
		return true
	}
	return false
}

// filter is the front half of the per-access pipeline — stats, field
// merging, cache lookup, ownership — shared by Access and AccessBatch.
// It returns the (possibly merged) location and whether the access
// survives to the trie stage; absorbed accesses are fully accounted
// (including the owner-skip cache insert) before it returns.
func (d *Detector) filter(t event.ThreadID, loc event.Loc, kind event.Kind) (event.Loc, bool) {
	d.stats.Accesses++
	// FieldsMerged collapses instance fields and the array pseudo-slot
	// (Slot >= ArraySlot) to one location per object; static slots
	// (Slot <= StaticSlotBase) stay distinct, as in the paper.
	if d.opts.FieldsMerged && loc.Slot >= event.ArraySlot {
		loc.Slot = 0
	}

	// 1. Cache.
	if !d.opts.NoCache {
		if d.cache.Lookup(t, loc, kind) {
			d.stats.CacheHits++
			return loc, false
		}
	}

	// 2. Ownership.
	if !d.opts.NoOwnership {
		forward, becameShared := d.owner.Filter(t, loc)
		if becameShared && !d.opts.NoCache {
			d.cache.EvictLocation(loc)
		}
		if !forward {
			d.stats.OwnerSkips++
			if !d.opts.NoCache {
				top, ok := d.locks.Top(t)
				d.cache.Insert(t, loc, kind, top, ok)
			}
			return loc, false
		}
	}
	return loc, true
}

// deliver is the back half of the pipeline for a filter survivor:
// materialize the (interned) lockset, run the trie, and insert into
// the cache so equal-or-stronger accesses short-circuit.
func (d *Detector) deliver(a event.Access, loc event.Loc) {
	d.stats.Shipped++
	a.Loc = loc
	a.Locks = d.locks.Held(a.Thread)
	a.LockID = d.locks.HeldID(a.Thread)
	race, info := d.trie.Process(a)
	if race {
		d.report(a, info)
	}
	if !d.opts.NoCache {
		top, ok := d.locks.Top(a.Thread)
		d.cache.Insert(a.Thread, loc, a.Kind, top, ok)
	}
}

// Access implements event.Sink: the full per-access pipeline. The
// interpreter only calls it after QuickCheck missed, so the cache
// lookup here is a second (cheap) miss except for sinks that do not
// use the fast path.
func (d *Detector) Access(a event.Access) {
	if d.sites != nil {
		d.sampledAccess(&a)
		return
	}
	loc, forward := d.filter(a.Thread, a.Loc, a.Kind)
	if forward {
		d.deliver(a, loc)
	}
}

// AccessBatch implements event.BatchSink: a batch is a run of accesses
// by one thread under one lock environment, so the tracker's memoized
// lockset is computed at most once for the whole batch. Iterating by
// pointer keeps the hot filter front free of the per-element 96-byte
// copy that calling Access in a loop would cost; the full event is
// copied only for filter survivors, which deliver owns by value. The
// batch slice itself is never retained or mutated (MultiSink hands
// the same slice to every batch-aware child).
func (d *Detector) AccessBatch(batch []event.Access) {
	if d.sites != nil {
		for i := range batch {
			d.sampledAccess(&batch[i])
		}
		return
	}
	for i := range batch {
		a := &batch[i]
		loc, forward := d.filter(a.Thread, a.Loc, a.Kind)
		if forward {
			d.deliver(*a, loc)
		}
	}
}

func (d *Detector) report(a event.Access, info trie.RaceInfo) {
	if !d.opts.ReportAll {
		if _, dup := d.reportedLoc[a.Loc]; dup {
			return
		}
	}
	d.reportedLoc[a.Loc] = struct{}{}
	d.reportedObj[a.Loc.Obj] = struct{}{}
	desc := ""
	if d.opts.DescribeObj != nil {
		desc = d.opts.DescribeObj(a.Loc.Obj)
	}
	d.reports = append(d.reports, Report{
		Access:      a,
		PriorThread: info.PriorThread,
		PriorLocks:  info.PriorLocks,
		PriorKind:   info.PriorKind,
		ObjDesc:     desc,
	})
}
