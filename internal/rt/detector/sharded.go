// Location-sharded parallel detection back end.
//
// The serial Detector's state is naturally partitioned by memory
// location: the trie is per location, the ownership table is per
// location, and cache entries are keyed by location. Sharded exploits
// that: a router (running on the interpreter's goroutine, as the
// event.Sink) snapshots each access's lock environment, stamps it with
// a global sequence number, and forwards it — batched — to one of N
// worker goroutines chosen by hash(ObjID, slot). Each worker owns the
// full detector stack (cache, ownership, trie) for its slice of the
// location space, so workers never share mutable state.
//
// Determinism contract: a location's accesses all hash to the same
// shard and arrive in global program order, so every per-location
// trie/ownership evolution is identical to the serial back end's. The
// per-shard caches partition differently than the serial cache, but a
// cache hit only ever absorbs an access that a weaker-or-equal stored
// access already subsumes — a trie no-op — so the set of reports is
// unaffected. Reports are recorded with their access's sequence number
// and merged in sequence order, which is exactly the serial back end's
// detection order. The merged reports are byte-identical to the serial
// ones (asserted corpus-wide by the differential tests).
//
// Bounded-memory options (MaxTrieNodes, MaxCacheThreads,
// MaxOwnerLocations) are split evenly across shards; collapse decisions
// then depend on per-shard occupancy, so bounded configurations trade
// the byte-equivalence guarantee for the usual "strictly over-reports,
// never misses" degradation.
package detector

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"racedet/internal/rt/cache"
	"racedet/internal/rt/event"
	"racedet/internal/rt/journal"
	"racedet/internal/rt/ownership"
	"racedet/internal/rt/trie"
)

// DefaultQueueDepth is the per-shard router→worker queue capacity in
// messages when Options.QueueDepth is zero.
const DefaultQueueDepth = 8

// Backend is what the pipeline needs from a detection back end; both
// the serial Detector and Sharded satisfy it.
type Backend interface {
	event.Sink
	Reports() []Report
	RacyObjects() []event.ObjID
	Stats() Stats
	TrieNodeCount() int
	TrieLocationCount() int
	SetDescribeObj(func(event.ObjID) string)
	// Err reports an asynchronous back-end failure (a worker panic);
	// valid after the run completes.
	Err() error
}

var (
	_ Backend = (*Detector)(nil)
	_ Backend = (*Sharded)(nil)
)

// shardAccess is one routed access: the event plus everything the
// worker needs that only the router can compute (the lock environment
// at access time and the global order stamp).
type shardAccess struct {
	a      event.Access
	top    event.ObjID // most recently acquired lock (cache insert key)
	hasTop bool
	seq    uint64
}

type msgKind uint8

const (
	msgBatch msgKind = iota
	msgLockReleased
	msgThreadFinished
)

type shardMsg struct {
	kind   msgKind
	batch  []shardAccess
	thread event.ThreadID
	lock   event.ObjID
}

// shardReport is a worker-side report stamped with the triggering
// access's sequence number for the deterministic merge.
type shardReport struct {
	rep Report
	seq uint64
}

// worker owns one shard's detector stack. All fields are goroutine-
// local; the router communicates only through ch.
type worker struct {
	idx     int
	nshards int
	opts    Options
	ch      chan shardMsg
	cache   *cache.Cache
	owner   *ownership.Table
	trie    history
	stats   Stats

	reports     []shardReport
	reportedLoc map[event.Loc]struct{}
	reportedObj map[event.ObjID]struct{}
	err         error

	// Supervision state (see supervise.go); journal is nil when
	// Options.JournalCap == 0 and the worker runs unsupervised.
	journal  *journal.Log[shardMsg]
	ckpt     journal.Checkpoint[workerSnapshot]
	events   uint64 // accesses processed, the fault-hook index
	rec      RecoveryStats
	degraded *degradedShard // non-nil once the shard fell back to Eraser
}

// Sharded is the parallel Backend. It implements event.Sink (and
// BatchSink) on the producer side; results become available once the
// event stream ends (the first result accessor finalizes the run).
type Sharded struct {
	opts    Options
	workers []*worker
	pending [][]shardAccess // per-shard router-side batch buffers
	batch   int

	intern *event.Interner
	locks  *event.LockTracker
	seq    uint64

	// Router-side backpressure accounting (producer goroutine only
	// until finalize merges it into stats.Recovery).
	depthHigh []int // per-shard queue high-water mark
	dropped   uint64
	droppedEv uint64
	stalls    uint64

	wg  sync.WaitGroup
	fin sync.Once

	reports []Report
	objs    []event.ObjID
	stats   Stats
	nodes   int
	locs    int
	err     error
}

// NewSharded builds a back end with n location-sharded workers
// (n >= 1) that consume access batches of up to batchSize events
// (<= 0 selects event.DefaultBatchSize). Options are interpreted as in
// New; memory bounds are split evenly across shards.
func NewSharded(opts Options, n, batchSize int) *Sharded {
	if n < 1 {
		n = 1
	}
	if batchSize <= 0 {
		batchSize = event.DefaultBatchSize
	}
	it := event.NewInterner()
	s := &Sharded{
		opts:      opts,
		pending:   make([][]shardAccess, n),
		batch:     batchSize,
		intern:    it,
		locks:     event.NewLockTrackerInterned(it),
		depthHigh: make([]int, n),
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	for i := 0; i < n; i++ {
		w := &worker{
			idx:     i,
			nshards: n,
			opts:    opts,
			ch:      make(chan shardMsg, depth),
		}
		w.freshState()
		if opts.JournalCap > 0 {
			w.journal = journal.New[shardMsg](opts.JournalCap)
		}
		s.pending[i] = make([]shardAccess, 0, batchSize)
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go w.run(&s.wg)
	}
	return s
}

// freshState (re)builds the worker's empty detector stack; used at
// construction and when a restart finds no checkpoint to restore.
func (w *worker) freshState() {
	w.cache = cache.New()
	w.owner = ownership.New()
	w.reportedLoc = make(map[event.Loc]struct{})
	w.reportedObj = make(map[event.ObjID]struct{})
	w.reports = nil
	w.stats = Stats{}
	w.events = 0
	if w.opts.MaxCacheThreads > 0 {
		w.cache = cache.NewBounded(w.opts.MaxCacheThreads)
	}
	if w.opts.MaxOwnerLocations > 0 {
		w.owner = ownership.NewBounded(splitBudget(w.opts.MaxOwnerLocations, w.nshards))
	}
	switch {
	case w.opts.PackedTrie:
		w.trie = trie.NewPacked()
	case w.opts.NoTBot:
		w.trie = trie.NewNoTBot()
	case w.opts.MaxTrieNodes > 0:
		w.trie = trie.NewBounded(splitBudget(w.opts.MaxTrieNodes, w.nshards))
	default:
		w.trie = trie.New()
	}
	if st, ok := w.trie.(interface {
		SetInterner(*event.Interner)
	}); ok {
		// Worker-local interner: workers must never touch the router's
		// intern table, which the producer goroutine keeps mutating.
		st.SetInterner(event.NewInterner())
	}
}

// splitBudget divides a global memory bound across n shards, never
// below 1 per shard.
func splitBudget(total, n int) int {
	b := total / n
	if b < 1 {
		b = 1
	}
	return b
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	if w.journal != nil {
		// Supervised: every message is journaled before processing and
		// a panic restarts the worker from its checkpoint (supervise.go).
		for msg := range w.ch {
			w.handleSupervised(msg)
		}
		return
	}
	defer func() {
		if r := recover(); r != nil {
			w.err = fmt.Errorf("detector shard %d: panic: %v", w.idx, r)
			// Keep draining so the router can never block on a full
			// channel after a shard dies.
			for range w.ch {
			}
		}
	}()
	for msg := range w.ch {
		w.process(msg)
	}
}

// process applies one routed message to the shard's detector stack.
func (w *worker) process(msg shardMsg) {
	switch msg.kind {
	case msgBatch:
		for _, sa := range msg.batch {
			w.access(sa)
		}
	case msgLockReleased:
		w.cache.LockReleased(msg.thread, msg.lock)
	case msgThreadFinished:
		w.cache.ThreadFinished(msg.thread)
	}
}

// access replicates Detector.Access with the lock environment already
// materialized by the router.
func (w *worker) access(sa shardAccess) {
	w.events++
	if f := w.opts.Faults; f != nil {
		// Fault-injection hook: may sleep (slow worker) or panic. A
		// panic here is indistinguishable from a detector bug, which is
		// exactly what the supervision tests need.
		f.WorkerEvent(w.idx, w.events)
	}
	a := sa.a
	w.stats.Accesses++
	if !w.opts.NoCache {
		if w.cache.Lookup(a.Thread, a.Loc, a.Kind) {
			w.stats.CacheHits++
			return
		}
	}
	if !w.opts.NoOwnership {
		forward, becameShared := w.owner.Filter(a.Thread, a.Loc)
		if becameShared && !w.opts.NoCache {
			w.cache.EvictLocation(a.Loc)
		}
		if !forward {
			w.stats.OwnerSkips++
			if !w.opts.NoCache {
				w.cache.Insert(a.Thread, a.Loc, a.Kind, sa.top, sa.hasTop)
			}
			return
		}
	}
	race, info := w.trie.Process(a)
	if race {
		w.report(sa, info)
	}
	if !w.opts.NoCache {
		w.cache.Insert(a.Thread, a.Loc, a.Kind, sa.top, sa.hasTop)
	}
}

func (w *worker) report(sa shardAccess, info trie.RaceInfo) {
	if !w.opts.ReportAll {
		if _, dup := w.reportedLoc[sa.a.Loc]; dup {
			return
		}
	}
	w.reportedLoc[sa.a.Loc] = struct{}{}
	w.reportedObj[sa.a.Loc.Obj] = struct{}{}
	// ObjDesc is filled at merge time: DescribeObj reads the
	// interpreter's heap, which is mutating while workers run.
	w.reports = append(w.reports, shardReport{
		rep: Report{
			Access:      sa.a,
			PriorThread: info.PriorThread,
			PriorLocks:  info.PriorLocks,
			PriorKind:   info.PriorKind,
		},
		seq: sa.seq,
	})
}

// shardOf hashes a location to a worker, using the same mixing
// constants as the access cache so related locations spread evenly.
func shardOf(loc event.Loc, n int) int {
	h := uint64(loc.Obj)*0x9E3779B97F4A7C15 + uint64(uint32(loc.Slot))*0x85EBCA6B
	return int((h >> 32) % uint64(n))
}

// ---------------------------------------------------------------------------
// producer side (event.Sink, router)

var _ event.BatchSink = (*Sharded)(nil)

func (s *Sharded) flushShard(i int) {
	if len(s.pending[i]) == 0 {
		return
	}
	ch := s.workers[i].ch
	if d := len(ch); d > s.depthHigh[i] {
		s.depthHigh[i] = d
	}
	full := len(ch) == cap(ch)
	if f := s.opts.Faults; f != nil && f.QueueFull(i) {
		full = true
	}
	if full {
		if s.opts.DropOnBackpressure {
			// Lossy policy: only access batches may be dropped (control
			// messages keep the caches sound) and every loss is
			// accounted, so a run can report exactly what it skipped.
			s.dropped++
			s.droppedEv += uint64(len(s.pending[i]))
			s.pending[i] = s.pending[i][:0]
			return
		}
		// Default policy: block until the worker drains. Counted so
		// operators can see router stalls and resize the queues.
		s.stalls++
	}
	ch <- shardMsg{kind: msgBatch, batch: s.pending[i]}
	s.pending[i] = make([]shardAccess, 0, s.batch)
}

func (s *Sharded) flushAll() {
	for i := range s.pending {
		s.flushShard(i)
	}
}

// broadcast flushes pending batches (order!) and sends msg to every
// worker.
func (s *Sharded) broadcast(msg shardMsg) {
	s.flushAll()
	for _, w := range s.workers {
		w.ch <- msg
	}
}

// Access implements event.Sink: snapshot the lock environment, stamp
// the global sequence number, and route by location.
func (s *Sharded) Access(a event.Access) {
	if s.opts.FieldsMerged && a.Loc.Slot >= event.ArraySlot {
		a.Loc.Slot = 0
	}
	a.Locks = s.locks.Held(a.Thread) // immutable canonical slice
	a.LockID = s.locks.HeldID(a.Thread)
	top, hasTop := s.locks.Top(a.Thread)
	s.seq++
	i := shardOf(a.Loc, len(s.workers))
	s.pending[i] = append(s.pending[i], shardAccess{a: a, top: top, hasTop: hasTop, seq: s.seq})
	if len(s.pending[i]) >= s.batch {
		s.flushShard(i)
	}
}

// AccessBatch implements event.BatchSink.
func (s *Sharded) AccessBatch(batch []event.Access) {
	for _, a := range batch {
		s.Access(a)
	}
}

// ThreadStarted implements event.Sink.
func (s *Sharded) ThreadStarted(child, parent event.ThreadID) {
	if !s.opts.NoPseudoLocks {
		s.locks.ThreadStarted(child, parent)
	}
}

// ThreadFinished implements event.Sink.
func (s *Sharded) ThreadFinished(t event.ThreadID) {
	if !s.opts.NoPseudoLocks {
		s.locks.ThreadFinished(t)
	}
	if !s.opts.NoCache {
		s.broadcast(shardMsg{kind: msgThreadFinished, thread: t})
	}
}

// Joined implements event.Sink.
func (s *Sharded) Joined(joiner, joinee event.ThreadID) {
	if !s.opts.NoPseudoLocks {
		s.locks.Joined(joiner, joinee)
	}
}

// MonitorEnter implements event.Sink. Lock acquisition only changes
// the router-side lock environment; workers see it through the
// snapshots attached to later accesses.
func (s *Sharded) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	s.locks.MonitorEnter(t, lock, depth)
}

// MonitorExit implements event.Sink. A full release invalidates cache
// entries guarded by the lock in every shard.
func (s *Sharded) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	s.locks.MonitorExit(t, lock, depth)
	if depth == 0 && !s.opts.NoCache {
		s.broadcast(shardMsg{kind: msgLockReleased, thread: t, lock: lock})
	}
}

// ---------------------------------------------------------------------------
// results (merge side)

// finalize ends the event stream: flush, close the channels, wait for
// the workers, and merge their results deterministically. Idempotent
// and safe under concurrent result accessors (sync.Once); triggered by
// the first accessor after the run.
func (s *Sharded) finalize() { s.fin.Do(s.doFinalize) }

func (s *Sharded) doFinalize() {
	// Final flush always blocks: the workers are about to drain their
	// channels to completion, so the send cannot deadlock, and dropping
	// the tail of the stream under the lossy policy would be pure loss.
	for i := range s.pending {
		if len(s.pending[i]) > 0 {
			s.workers[i].ch <- shardMsg{kind: msgBatch, batch: s.pending[i]}
			s.pending[i] = nil
		}
	}
	for _, w := range s.workers {
		close(w.ch)
	}
	s.wg.Wait()

	var all []shardReport
	var errs []error
	objSet := make(map[event.ObjID]struct{})
	rec := &s.stats.Recovery
	rec.DroppedBatches = s.dropped
	rec.DroppedEvents = s.droppedEv
	rec.BackpressureStalls = s.stalls
	for i, w := range s.workers {
		if w.err != nil {
			errs = append(errs, w.err)
		}
		if s.depthHigh[i] > rec.QueueHighWater {
			rec.QueueHighWater = s.depthHigh[i]
		}
		rec.Restarts += w.rec.Restarts
		rec.Checkpoints += w.rec.Checkpoints
		rec.CheckpointCorruptions += w.rec.CheckpointCorruptions
		if w.degraded != nil {
			rec.DegradedShards++
		}
		rec.DegradedEvents += w.rec.DegradedEvents
		if w.journal != nil {
			js := w.journal.Stats()
			rec.Journaled += js.Appended
			rec.Replayed += js.Replayed
		}
		all = append(all, w.reports...)
		for o := range w.reportedObj {
			objSet[o] = struct{}{}
		}
		st := w.stats
		s.stats.Accesses += st.Accesses
		s.stats.CacheHits += st.CacheHits
		s.stats.OwnerSkips += st.OwnerSkips
		s.stats.OwnerLocations += w.owner.Locations()
		s.stats.OwnerOverflows += w.owner.Overflows()
		addTrieStats(&s.stats.Trie, w.trie.Stats())
		addCacheStats(&s.stats.Cache, w.cache.Stats())
		s.nodes += w.trie.NodeCount()
		s.locs += w.trie.LocationCount()
	}
	// All worker failures are preserved, not just the first: a run that
	// lost several shards should say so.
	s.err = errors.Join(errs...)
	// Sequence order is the serial back end's detection order.
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	s.reports = make([]Report, len(all))
	for i, sr := range all {
		s.reports[i] = sr.rep
		if s.opts.DescribeObj != nil {
			s.reports[i].ObjDesc = s.opts.DescribeObj(sr.rep.Access.Loc.Obj)
		}
	}
	s.objs = make([]event.ObjID, 0, len(objSet))
	for o := range objSet {
		s.objs = append(s.objs, o)
	}
	sort.Slice(s.objs, func(i, j int) bool { return s.objs[i] < s.objs[j] })
}

func addTrieStats(dst *trie.Stats, src trie.Stats) {
	dst.Events += src.Events
	dst.WeaknessHits += src.WeaknessHits
	dst.RaceChecks += src.RaceChecks
	dst.NodesVisited += src.NodesVisited
	dst.Races += src.Races
	dst.NodesAllocated += src.NodesAllocated
	dst.NodesPruned += src.NodesPruned
	dst.LocationsStored += src.LocationsStored
	dst.Collapses += src.Collapses
	dst.NodesCollapsed += src.NodesCollapsed
	dst.CollapseHits += src.CollapseHits
}

func addCacheStats(dst *cache.Stats, src cache.Stats) {
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Evictions += src.Evictions
	dst.ThreadEvictions += src.ThreadEvictions
}

// Reports implements Backend: the merged reports, in the serial
// detection order.
func (s *Sharded) Reports() []Report {
	s.finalize()
	return s.reports
}

// RacyObjects implements Backend.
func (s *Sharded) RacyObjects() []event.ObjID {
	s.finalize()
	return s.objs
}

// Stats implements Backend: counters aggregated across shards.
func (s *Sharded) Stats() Stats {
	s.finalize()
	return s.stats
}

// TrieNodeCount implements Backend.
func (s *Sharded) TrieNodeCount() int {
	s.finalize()
	return s.nodes
}

// TrieLocationCount implements Backend.
func (s *Sharded) TrieLocationCount() int {
	s.finalize()
	return s.locs
}

// SetDescribeObj implements Backend. The renderer runs only at merge
// time, after the interpreter has finished, so it may read the heap.
func (s *Sharded) SetDescribeObj(fn func(event.ObjID) string) { s.opts.DescribeObj = fn }

// Err implements Backend: every unrecovered worker failure, joined.
// Supervised shards that recovered (or degraded to the Eraser path)
// contribute nothing here — the run completed and Stats().Recovery
// tells the story. Safe under concurrent polling: finalization runs
// exactly once and s.err is written before the Once releases waiters.
func (s *Sharded) Err() error {
	s.finalize()
	return s.err
}
