// Location-sharded parallel detection back end.
//
// The hot path is split by cost, not by layer symmetry. The router —
// running on the interpreter's goroutine, as the event.Sink — owns
// the cheap, high-hit-rate layers exactly as the serial detector
// does: the per-thread access caches (§4, including the inlined
// QuickCheck fast path) and the §7 ownership filter. Only accesses
// that survive both filters — the minority that actually needs trie
// work — are lockset-materialized, stamped with a global sequence
// number, batched, and pushed over a bounded SPSC ring buffer to one
// of N worker goroutines chosen by hash(ObjID, slot). Each worker
// owns the trie slice for its share of the location space and nothing
// else, so workers never share mutable state and no control messages
// (lock releases, thread lifecycle) ever cross the rings: the cache
// they would maintain lives upstream on the router.
//
// Determinism contract: the router runs the cache and ownership
// layers synchronously in event order, so their evolution — hits,
// evictions, ownership transitions, stats — is bit-identical to the
// serial back end's, and the stream of trie-bound accesses is exactly
// the stream the serial trie processes. A location's accesses all
// hash to the same shard and arrive in stream order, so every
// per-location trie evolution is identical too. Reports are recorded
// with their access's sequence number and merged in sequence order,
// which is exactly the serial detection order; the merged reports are
// byte-identical to the serial ones (asserted corpus-wide by the
// differential tests).
//
// Allocation discipline: batch buffers are recycled. Each worker
// returns processed buffers to the router over a second SPSC ring
// (the freelist); the supervised variant, which must keep buffers
// alive in its write-ahead journal, recycles them when a checkpoint
// truncates the journal. Buffers that miss the freelist fall back to
// a package-level pool shared across runs, so steady-state routing
// allocates nothing.
//
// Bounded-memory options: MaxCacheThreads and MaxOwnerLocations now
// apply to the single router-side cache and ownership table, exactly
// as in the serial back end. Only MaxTrieNodes is still split evenly
// across shards; bounded-trie collapse decisions then depend on
// per-shard occupancy, so that configuration trades the
// byte-equivalence guarantee for the usual "strictly over-reports,
// never misses" degradation.
package detector

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"racedet/internal/rt/cache"
	"racedet/internal/rt/event"
	"racedet/internal/rt/journal"
	"racedet/internal/rt/ownership"
	"racedet/internal/rt/sitestate"
	"racedet/internal/rt/spsc"
	"racedet/internal/rt/trie"
)

// DefaultQueueDepth is the per-shard router→worker ring capacity in
// batches when Options.QueueDepth is zero.
const DefaultQueueDepth = 8

// Backend is what the pipeline needs from a detection back end; both
// the serial Detector and Sharded satisfy it.
type Backend interface {
	event.Sink
	Reports() []Report
	RacyObjects() []event.ObjID
	Stats() Stats
	TrieNodeCount() int
	TrieLocationCount() int
	SetDescribeObj(func(event.ObjID) string)
	// Err reports an asynchronous back-end failure (a worker panic);
	// valid after the run completes.
	Err() error
}

var (
	_ Backend = (*Detector)(nil)
	_ Backend = (*Sharded)(nil)
)

// shardAccess is one routed access: the event — lockset already
// materialized by the router — plus the global order stamp for the
// deterministic report merge.
type shardAccess struct {
	a   event.Access
	seq uint64
}

// shardBatch is the unit that crosses a shard ring: a run of routed
// accesses in stream order. (All control events are absorbed by the
// router's cache and lock tracker; only access batches ever reach a
// worker.)
type shardBatch = []shardAccess

// batchPool recycles batch buffers across runs: buffers that miss a
// ring freelist at recycle time, and every buffer still owned at
// finalize, land here instead of in the garbage collector.
var batchPool = sync.Pool{New: func() any { return shardBatch(nil) }}

// getBatch returns an empty buffer with capacity >= want.
func getBatch(want int) shardBatch {
	b := batchPool.Get().(shardBatch)
	if cap(b) < want {
		return make(shardBatch, 0, want)
	}
	return b[:0]
}

// putBatch returns a buffer to the cross-run pool. Elements are
// cleared first so a pooled buffer cannot pin a dead run's interned
// locksets or report strings.
func putBatch(b shardBatch) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = shardAccess{}
	}
	batchPool.Put(b[:0])
}

// shardReport is a worker-side report stamped with the triggering
// access's sequence number for the deterministic merge.
type shardReport struct {
	rep Report
	seq uint64
}

// worker owns one shard's trie slice. All fields are goroutine-local;
// the router communicates only through the two rings.
type worker struct {
	idx     int
	nshards int
	opts    Options
	ring    *spsc.Ring[shardBatch] // router → worker: routed batches
	free    *spsc.Ring[shardBatch] // worker → router: recycled buffers
	trie    history

	reports     []shardReport
	reportedLoc map[event.Loc]struct{}
	reportedObj map[event.ObjID]struct{}
	err         error

	// Supervision state (see supervise.go); journal is nil when
	// Options.JournalCap == 0 and the worker runs unsupervised.
	journal  *journal.Log[shardBatch]
	ckpt     journal.Checkpoint[workerSnapshot]
	events   uint64 // accesses processed, the fault-hook index
	rec      RecoveryStats
	degraded *degradedShard // non-nil once the shard fell back to Eraser
}

// Sharded is the parallel Backend. It implements event.Sink (and
// BatchSink, and the interpreter's QuickCheck fast path) on the
// producer side; results become available once the event stream ends
// (the first result accessor finalizes the run).
type Sharded struct {
	opts    Options
	workers []*worker
	pending []shardBatch // per-shard router-side batch buffers
	batch   int

	intern *event.Interner
	locks  *event.LockTracker
	cache  *cache.Cache
	owner  *ownership.Table
	sites  *sitestate.Table // non-nil iff per-site throttling is on
	seq    uint64

	// Router-side filter accounting: Accesses/CacheHits/OwnerSkips are
	// counted here, in exactly the serial order, so they (and the
	// cache/ownership stats) match the serial back end bit for bit.
	stats Stats

	// Router-side backpressure accounting (producer goroutine only
	// until finalize merges it into stats.Recovery).
	depthHigh []int // per-shard ring high-water mark, in batches
	dropped   uint64
	droppedEv uint64
	stalls    uint64

	wg  sync.WaitGroup
	fin sync.Once

	reports []Report
	objs    []event.ObjID
	nodes   int
	locs    int
	err     error
}

// NewSharded builds a back end with n location-sharded workers
// (n >= 1) that consume access batches of up to batchSize events
// (<= 0 selects event.DefaultBatchSize). Options are interpreted as
// in New; the trie memory bound is split evenly across shards.
func NewSharded(opts Options, n, batchSize int) *Sharded {
	if n < 1 {
		n = 1
	}
	if batchSize <= 0 {
		batchSize = event.DefaultBatchSize
	}
	it := event.NewInterner()
	s := &Sharded{
		opts:      opts,
		pending:   make([]shardBatch, n),
		batch:     batchSize,
		intern:    it,
		locks:     event.NewLockTrackerInterned(it),
		cache:     cache.New(),
		owner:     ownership.New(),
		depthHigh: make([]int, n),
	}
	if opts.MaxCacheThreads > 0 {
		s.cache = cache.NewBounded(opts.MaxCacheThreads)
	}
	if opts.MaxOwnerLocations > 0 {
		s.owner = ownership.NewBounded(opts.MaxOwnerLocations)
	}
	if sc, on := samplingConfig(opts); on {
		// The throttling table lives router-side with the other filter
		// layers, so its evolution is serial-order deterministic and
		// untouched by worker restarts.
		s.sites = sitestate.New(sc)
		s.owner.SetOnContact(s.sites.Contact)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	for i := 0; i < n; i++ {
		w := &worker{
			idx:     i,
			nshards: n,
			opts:    opts,
			ring:    spsc.New[shardBatch](depth),
			// One spare lap of freelist slots beyond the ring depth:
			// every buffer in flight has a place to come home to, so
			// in steady state the freelist never overflows into the
			// pool.
			free: spsc.New[shardBatch](depth + 2),
		}
		w.freshState()
		if opts.JournalCap > 0 {
			w.journal = journal.New[shardBatch](opts.JournalCap)
		}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go w.run(&s.wg)
	}
	return s
}

// freshState (re)builds the worker's empty trie slice; used at
// construction and when a restart finds no checkpoint to restore.
func (w *worker) freshState() {
	w.reportedLoc = make(map[event.Loc]struct{})
	w.reportedObj = make(map[event.ObjID]struct{})
	w.reports = nil
	w.events = 0
	switch {
	case w.opts.PackedTrie:
		w.trie = trie.NewPacked()
	case w.opts.NoTBot:
		w.trie = trie.NewNoTBot()
	case w.opts.MaxTrieNodes > 0:
		w.trie = trie.NewBounded(splitBudget(w.opts.MaxTrieNodes, w.nshards))
	default:
		w.trie = trie.New()
	}
	if st, ok := w.trie.(interface {
		SetInterner(*event.Interner)
	}); ok {
		// Worker-local interner: workers must never touch the router's
		// intern table, which the producer goroutine keeps mutating.
		st.SetInterner(event.NewInterner())
	}
}

// splitBudget divides a global memory bound across n shards, never
// below 1 per shard.
func splitBudget(total, n int) int {
	b := total / n
	if b < 1 {
		b = 1
	}
	return b
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	if w.journal != nil {
		// Supervised: every batch is journaled before processing and a
		// panic restarts the worker from its checkpoint (supervise.go).
		// Buffers are recycled when a checkpoint truncates the journal,
		// not here.
		for {
			batch, ok := w.ring.Pop()
			if !ok {
				return
			}
			w.handleSupervised(batch)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			w.err = fmt.Errorf("detector shard %d: panic: %v", w.idx, r)
			// Keep draining so the router can never block on a full
			// ring after a shard dies.
			for {
				if _, ok := w.ring.Pop(); !ok {
					return
				}
			}
		}
	}()
	for {
		batch, ok := w.ring.Pop()
		if !ok {
			return
		}
		w.process(batch)
		w.recycle(batch)
	}
}

// process applies one routed batch to the shard's trie slice.
func (w *worker) process(batch shardBatch) {
	for _, sa := range batch {
		w.access(sa)
	}
}

// recycle hands a processed buffer back to the router via the
// freelist ring; when the freelist is full the buffer goes to the
// cross-run pool instead. Safe only once nothing references the
// buffer anymore (the trie and the reports copy what they keep).
func (w *worker) recycle(batch shardBatch) {
	if batch == nil {
		return
	}
	if !w.free.TryPush(batch[:0]) {
		putBatch(batch)
	}
}

// access replicates the trie stage of Detector.Access; the router has
// already run the cache and ownership layers and materialized the
// lock environment.
func (w *worker) access(sa shardAccess) {
	w.events++
	if f := w.opts.Faults; f != nil {
		// Fault-injection hook: may sleep (slow worker) or panic. A
		// panic here is indistinguishable from a detector bug, which is
		// exactly what the supervision tests need.
		f.WorkerEvent(w.idx, w.events)
	}
	race, info := w.trie.Process(sa.a)
	if race {
		w.report(sa, info)
	}
}

func (w *worker) report(sa shardAccess, info trie.RaceInfo) {
	if !w.opts.ReportAll {
		if _, dup := w.reportedLoc[sa.a.Loc]; dup {
			return
		}
	}
	w.reportedLoc[sa.a.Loc] = struct{}{}
	w.reportedObj[sa.a.Loc.Obj] = struct{}{}
	// ObjDesc is filled at merge time: DescribeObj reads the
	// interpreter's heap, which is mutating while workers run.
	w.reports = append(w.reports, shardReport{
		rep: Report{
			Access:      sa.a,
			PriorThread: info.PriorThread,
			PriorLocks:  info.PriorLocks,
			PriorKind:   info.PriorKind,
		},
		seq: sa.seq,
	})
}

// shardOf hashes a location to a worker, using the same mixing
// constants as the access cache so related locations spread evenly.
func shardOf(loc event.Loc, n int) int {
	h := uint64(loc.Obj)*0x9E3779B97F4A7C15 + uint64(uint32(loc.Slot))*0x85EBCA6B
	return int((h >> 32) % uint64(n))
}

// ---------------------------------------------------------------------------
// producer side (event.Sink, router)

var _ event.BatchSink = (*Sharded)(nil)

// QuickCheck is the inlined §4 fast path, identical to the serial
// detector's: a cache hit absorbs the access before the event is even
// materialized, so the parallel back end pays routing cost only for
// accesses that need trie work.
func (s *Sharded) QuickCheck(t event.ThreadID, loc event.Loc, kind event.Kind) bool {
	// Off under sampling, as in the serial detector: the throttling
	// layer needs the complete stream.
	if s.opts.NoCache || s.sites != nil {
		return false
	}
	if s.opts.FieldsMerged && loc.Slot >= event.ArraySlot {
		loc.Slot = 0
	}
	if s.cache.Lookup(t, loc, kind) {
		s.stats.Accesses++
		s.stats.CacheHits++
		return true
	}
	return false
}

// acquireBatch hands the router an empty buffer for shard i:
// freelist first (a buffer the worker already processed), then the
// cross-run pool.
func (s *Sharded) acquireBatch(i int) shardBatch {
	if b, ok := s.workers[i].free.TryPop(); ok {
		return b
	}
	return getBatch(s.batch)
}

func (s *Sharded) flushShard(i int) {
	if len(s.pending[i]) == 0 {
		return
	}
	w := s.workers[i]
	if d := w.ring.Len(); d > s.depthHigh[i] {
		s.depthHigh[i] = d
	}
	full := w.ring.Full()
	if f := s.opts.Faults; f != nil && f.QueueFull(i) {
		full = true
	}
	if full {
		if s.opts.DropOnBackpressure {
			// Lossy policy: batches may be dropped, but every loss is
			// accounted, so a run can report exactly what it skipped.
			s.dropped++
			s.droppedEv += uint64(len(s.pending[i]))
			s.pending[i] = s.pending[i][:0]
			return
		}
		// Default policy: block until the worker drains (Push parks the
		// router only while the ring is actually full). Counted so
		// operators can see router stalls and resize the rings.
		s.stalls++
	}
	w.ring.Push(s.pending[i])
	s.pending[i] = nil
}

// filter is the router-side front half of the pipeline — stats, field
// merging, cache lookup, ownership — shared by Access and AccessBatch.
// Order of operations (lookup → ownership/evict → insert) matches
// Detector.filter exactly, so cache state, stats, and the trie-bound
// stream are bit-identical to the serial back end's.
func (s *Sharded) filter(t event.ThreadID, loc event.Loc, kind event.Kind) (event.Loc, bool) {
	s.stats.Accesses++
	// FieldsMerged collapses instance fields and the array pseudo-slot
	// (Slot >= ArraySlot) to one location per object; static slots
	// (Slot <= StaticSlotBase) stay distinct, as in the paper.
	if s.opts.FieldsMerged && loc.Slot >= event.ArraySlot {
		loc.Slot = 0
	}

	// 1. Cache.
	if !s.opts.NoCache {
		if s.cache.Lookup(t, loc, kind) {
			s.stats.CacheHits++
			return loc, false
		}
	}

	// 2. Ownership.
	if !s.opts.NoOwnership {
		forward, becameShared := s.owner.Filter(t, loc)
		if becameShared && !s.opts.NoCache {
			s.cache.EvictLocation(loc)
		}
		if !forward {
			s.stats.OwnerSkips++
			if !s.opts.NoCache {
				top, ok := s.locks.Top(t)
				s.cache.Insert(t, loc, kind, top, ok)
			}
			return loc, false
		}
	}
	return loc, true
}

// route sends a filter survivor to the owning shard's trie:
// materialize the (interned) lockset, stamp the detection order,
// append to the shard's pending batch, and insert into the cache so
// equal-or-stronger accesses short-circuit (same order as
// Detector.deliver).
func (s *Sharded) route(a event.Access, loc event.Loc) {
	s.stats.Shipped++
	a.Loc = loc
	a.Locks = s.locks.Held(a.Thread) // immutable canonical slice
	a.LockID = s.locks.HeldID(a.Thread)
	s.seq++
	i := shardOf(loc, len(s.workers))
	if s.pending[i] == nil {
		s.pending[i] = s.acquireBatch(i)
	}
	s.pending[i] = append(s.pending[i], shardAccess{a: a, seq: s.seq})
	if len(s.pending[i]) >= s.batch {
		s.flushShard(i)
	}

	if !s.opts.NoCache {
		top, ok := s.locks.Top(a.Thread)
		s.cache.Insert(a.Thread, loc, a.Kind, top, ok)
	}
}

// Access implements event.Sink: the serial filter pipeline runs here
// on the router, and only survivors are routed.
func (s *Sharded) Access(a event.Access) {
	if s.sites != nil {
		s.sampledAccess(&a)
		return
	}
	loc, forward := s.filter(a.Thread, a.Loc, a.Kind)
	if forward {
		s.route(a, loc)
	}
}

// AccessBatch implements event.BatchSink: the Batcher's buffer flushes
// straight through the filter into the pending shard batches, with the
// per-element event copy paid only for filter survivors. The batch
// slice is never retained or mutated.
func (s *Sharded) AccessBatch(batch []event.Access) {
	if s.sites != nil {
		for i := range batch {
			s.sampledAccess(&batch[i])
		}
		return
	}
	for i := range batch {
		a := &batch[i]
		loc, forward := s.filter(a.Thread, a.Loc, a.Kind)
		if forward {
			s.route(*a, loc)
		}
	}
}

// ThreadStarted implements event.Sink.
func (s *Sharded) ThreadStarted(child, parent event.ThreadID) {
	if !s.opts.NoPseudoLocks {
		s.locks.ThreadStarted(child, parent)
	}
}

// ThreadFinished implements event.Sink. Purely router-side: the only
// consumer of thread lifecycle downstream of the lock tracker is the
// access cache, which lives here.
func (s *Sharded) ThreadFinished(t event.ThreadID) {
	if !s.opts.NoPseudoLocks {
		s.locks.ThreadFinished(t)
	}
	s.cache.ThreadFinished(t)
}

// Joined implements event.Sink.
func (s *Sharded) Joined(joiner, joinee event.ThreadID) {
	if !s.opts.NoPseudoLocks {
		s.locks.Joined(joiner, joinee)
	}
}

// MonitorEnter implements event.Sink. Lock acquisition only changes
// the router-side lock environment; workers see it through the
// locksets attached to later accesses.
func (s *Sharded) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	s.locks.MonitorEnter(t, lock, depth)
}

// MonitorExit implements event.Sink. A full release evicts the cache
// entries guarded by the lock — a synchronous router-side operation
// now that the cache lives upstream of the rings.
func (s *Sharded) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	s.locks.MonitorExit(t, lock, depth)
	if depth == 0 && !s.opts.NoCache {
		s.cache.LockReleased(t, lock)
	}
}

// ---------------------------------------------------------------------------
// results (merge side)

// finalize ends the event stream: flush, close the rings, wait for
// the workers, and merge their results deterministically. Idempotent
// and safe under concurrent result accessors (sync.Once); triggered
// by the first accessor after the run.
func (s *Sharded) finalize() { s.fin.Do(s.doFinalize) }

func (s *Sharded) doFinalize() {
	// Final flush always blocks: the workers are about to drain their
	// rings to completion, so the push cannot deadlock, and dropping
	// the tail of the stream under the lossy policy would be pure loss.
	for i := range s.pending {
		if len(s.pending[i]) > 0 {
			s.workers[i].ring.Push(s.pending[i])
			s.pending[i] = nil
		}
	}
	for _, w := range s.workers {
		w.ring.Close()
	}
	s.wg.Wait()

	var all []shardReport
	var errs []error
	objSet := make(map[event.ObjID]struct{})
	rec := &s.stats.Recovery
	rec.DroppedBatches = s.dropped
	rec.DroppedEvents = s.droppedEv
	rec.BackpressureStalls = s.stalls
	// The filter layers live on the router; their stats are already in
	// s.stats and match the serial back end exactly.
	s.stats.OwnerLocations = s.owner.Locations()
	s.stats.OwnerOverflows = s.owner.Overflows()
	s.stats.Cache = s.cache.Stats()
	if s.sites != nil {
		s.stats.Sample = s.sites.Stats()
	}
	for i, w := range s.workers {
		if w.err != nil {
			errs = append(errs, w.err)
		}
		if s.depthHigh[i] > rec.QueueHighWater {
			rec.QueueHighWater = s.depthHigh[i]
		}
		rec.Restarts += w.rec.Restarts
		rec.Checkpoints += w.rec.Checkpoints
		rec.CheckpointCorruptions += w.rec.CheckpointCorruptions
		if w.degraded != nil {
			rec.DegradedShards++
		}
		rec.DegradedEvents += w.rec.DegradedEvents
		if w.journal != nil {
			js := w.journal.Stats()
			rec.Journaled += js.Appended
			rec.Replayed += js.Replayed
		}
		all = append(all, w.reports...)
		for o := range w.reportedObj {
			objSet[o] = struct{}{}
		}
		addTrieStats(&s.stats.Trie, w.trie.Stats())
		s.nodes += w.trie.NodeCount()
		s.locs += w.trie.LocationCount()
		// Drain the freelist into the cross-run pool: the next run's
		// router starts with warm buffers instead of fresh allocations.
		for {
			b, ok := w.free.TryPop()
			if !ok {
				break
			}
			putBatch(b)
		}
	}
	// All worker failures are preserved, not just the first: a run that
	// lost several shards should say so.
	s.err = errors.Join(errs...)
	// Sequence order is the serial back end's detection order.
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	s.reports = make([]Report, len(all))
	for i, sr := range all {
		s.reports[i] = sr.rep
		if s.opts.DescribeObj != nil {
			s.reports[i].ObjDesc = s.opts.DescribeObj(sr.rep.Access.Loc.Obj)
		}
	}
	s.objs = make([]event.ObjID, 0, len(objSet))
	for o := range objSet {
		s.objs = append(s.objs, o)
	}
	sort.Slice(s.objs, func(i, j int) bool { return s.objs[i] < s.objs[j] })
}

func addTrieStats(dst *trie.Stats, src trie.Stats) {
	dst.Events += src.Events
	dst.WeaknessHits += src.WeaknessHits
	dst.RaceChecks += src.RaceChecks
	dst.NodesVisited += src.NodesVisited
	dst.Races += src.Races
	dst.NodesAllocated += src.NodesAllocated
	dst.NodesPruned += src.NodesPruned
	dst.LocationsStored += src.LocationsStored
	dst.Collapses += src.Collapses
	dst.NodesCollapsed += src.NodesCollapsed
	dst.CollapseHits += src.CollapseHits
}

// Reports implements Backend: the merged reports, in the serial
// detection order.
func (s *Sharded) Reports() []Report {
	s.finalize()
	return s.reports
}

// RacyObjects implements Backend.
func (s *Sharded) RacyObjects() []event.ObjID {
	s.finalize()
	return s.objs
}

// Stats implements Backend: router-side filter counters plus the trie
// counters aggregated across shards.
func (s *Sharded) Stats() Stats {
	s.finalize()
	return s.stats
}

// TrieNodeCount implements Backend.
func (s *Sharded) TrieNodeCount() int {
	s.finalize()
	return s.nodes
}

// TrieLocationCount implements Backend.
func (s *Sharded) TrieLocationCount() int {
	s.finalize()
	return s.locs
}

// SetDescribeObj implements Backend. The renderer runs only at merge
// time, after the interpreter has finished, so it may read the heap.
func (s *Sharded) SetDescribeObj(fn func(event.ObjID) string) { s.opts.DescribeObj = fn }

// Err implements Backend: every unrecovered worker failure, joined.
// Supervised shards that recovered (or degraded to the Eraser path)
// contribute nothing here — the run completed and Stats().Recovery
// tells the story. Safe under concurrent polling: finalization runs
// exactly once and s.err is written before the Once releases waiters.
func (s *Sharded) Err() error {
	s.finalize()
	return s.err
}
