package detector

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"racedet/internal/faultinject"
	"racedet/internal/rt/event"
)

// testInjector is a minimal FaultInjector for scenarios that need
// tighter control than the faultinject spec language offers (e.g.
// corrupting every checkpoint of one shard).
type testInjector struct {
	panicShard int
	panicAt    uint64 // 0 = never
	fired      atomic.Bool
	corruptAll bool
	slowEvery  uint64
	slowDelay  time.Duration
	queueFullN atomic.Int64
}

func (i *testInjector) WorkerEvent(shard int, n uint64) {
	if i.slowEvery > 0 && n%i.slowEvery == 0 {
		time.Sleep(i.slowDelay)
	}
	if i.panicAt != 0 && shard == i.panicShard && n == i.panicAt &&
		i.fired.CompareAndSwap(false, true) {
		panic("testInjector: injected worker panic")
	}
}

func (i *testInjector) QueueFull(shard int) bool { return i.queueFullN.Add(-1) >= 0 }

func (i *testInjector) CorruptCheckpoint(shard int) bool {
	return i.corruptAll && shard == i.panicShard
}

func compareReports(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d reports, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: report %d differs\ngot:  %s\nwant: %s", label, i, got[i], want[i])
		}
	}
}

// TestSupervisedPanicMatchesSerial is the core recovery guarantee: a
// worker panic at a seed-chosen shard and event index is recovered by
// checkpoint restore + journal replay, and the merged reports stay
// byte-identical to the serial detector's.
func TestSupervisedPanicMatchesSerial(t *testing.T) {
	anyFired := false
	for seed := int64(0); seed < 10; seed++ {
		serial := New(Options{})
		feedRandom(serial, seed, 3000)
		want := reportStrings(serial)

		plan := faultinject.PanicPlan(seed, 4, 200)
		sh := NewSharded(Options{JournalCap: 32, RetryBudget: 3, Faults: plan}, 4, 16)
		feedRandom(sh, seed, 3000)
		if err := sh.Err(); err != nil {
			t.Fatalf("seed %d: supervised run failed: %v", seed, err)
		}
		compareReports(t, "supervised", reportStrings(sh), want)

		rec := sh.Stats().Recovery
		if plan.Fired() > 0 {
			anyFired = true
			if rec.Restarts == 0 {
				t.Errorf("seed %d: panic fired but no restart recorded", seed)
			}
		}
		if rec.DegradedShards != 0 {
			t.Errorf("seed %d: shard degraded despite retry budget: %+v", seed, rec)
		}
		if rec.Journaled == 0 {
			t.Errorf("seed %d: nothing journaled in supervised mode", seed)
		}
	}
	if !anyFired {
		t.Fatal("no seed fired its panic; the test exercised nothing")
	}
}

// TestRetryBudgetZeroDegrades: with a zero budget the first panic must
// degrade the shard to the Eraser path — the run completes, Err stays
// nil, and the degradation is counted. Never a lost analysis.
func TestRetryBudgetZeroDegrades(t *testing.T) {
	inj := &testInjector{panicShard: 0, panicAt: 50}
	sh := NewSharded(Options{JournalCap: 32, RetryBudget: 0, Faults: inj}, 4, 16)
	feedRandom(sh, 2, 3000)
	if err := sh.Err(); err != nil {
		t.Fatalf("degraded run must not fail: %v", err)
	}
	rec := sh.Stats().Recovery
	if !inj.fired.Load() {
		t.Fatal("panic never fired; scenario too small")
	}
	if rec.DegradedShards != 1 {
		t.Fatalf("DegradedShards = %d, want 1 (%+v)", rec.DegradedShards, rec)
	}
	if rec.Restarts != 0 {
		t.Errorf("Restarts = %d, want 0 with zero budget", rec.Restarts)
	}
	if rec.DegradedEvents == 0 {
		t.Error("degraded shard processed no events; the Eraser path never ran")
	}
	// The merged result is still a usable analysis.
	if sh.Stats().Accesses == 0 {
		t.Error("stats lost after degradation")
	}
	_ = sh.Reports()
	_ = sh.RacyObjects()
}

// TestCheckpointCorruptionDegrades: a restore that finds its
// checkpoint corrupt must degrade (counted) rather than replay onto
// bad state — even with retry budget left.
func TestCheckpointCorruptionDegrades(t *testing.T) {
	inj := &testInjector{panicShard: 0, panicAt: 200, corruptAll: true}
	sh := NewSharded(Options{JournalCap: 4, RetryBudget: 3, Faults: inj}, 2, 4)
	feedRandom(sh, 5, 3000)
	if err := sh.Err(); err != nil {
		t.Fatalf("run must complete: %v", err)
	}
	rec := sh.Stats().Recovery
	if !inj.fired.Load() {
		t.Fatal("panic never fired")
	}
	if rec.Checkpoints == 0 {
		t.Fatal("no checkpoints taken; JournalCap too large for the stream")
	}
	if rec.CheckpointCorruptions != 1 {
		t.Errorf("CheckpointCorruptions = %d, want 1 (%+v)", rec.CheckpointCorruptions, rec)
	}
	if rec.DegradedShards != 1 {
		t.Errorf("DegradedShards = %d, want 1 (%+v)", rec.DegradedShards, rec)
	}
}

// TestDropPolicyAccounting: under the lossy backpressure policy,
// injected queue fullness drops access batches with exact accounting
// and the run still completes cleanly.
func TestDropPolicyAccounting(t *testing.T) {
	inj := &testInjector{}
	inj.queueFullN.Store(25)
	sh := NewSharded(Options{DropOnBackpressure: true, QueueDepth: 2, Faults: inj}, 2, 8)
	feedRandom(sh, 3, 3000)
	if err := sh.Err(); err != nil {
		t.Fatalf("drop-policy run failed: %v", err)
	}
	rec := sh.Stats().Recovery
	if rec.DroppedBatches == 0 || rec.DroppedEvents == 0 {
		t.Fatalf("injected fullness dropped nothing: %+v", rec)
	}
	if rec.DroppedEvents < rec.DroppedBatches {
		t.Errorf("accounting inconsistent: %d events < %d batches", rec.DroppedEvents, rec.DroppedBatches)
	}
	if rec.BackpressureStalls != 0 {
		t.Errorf("drop policy must not stall, got %d", rec.BackpressureStalls)
	}
}

// TestBlockPolicyStalls: with the default blocking policy, injected
// fullness is counted as stalls and never drops anything — the reports
// stay byte-identical to serial.
func TestBlockPolicyStalls(t *testing.T) {
	serial := New(Options{})
	feedRandom(serial, 4, 3000)
	want := reportStrings(serial)

	inj := &testInjector{}
	inj.queueFullN.Store(25)
	sh := NewSharded(Options{QueueDepth: 2, Faults: inj}, 2, 8)
	feedRandom(sh, 4, 3000)
	if err := sh.Err(); err != nil {
		t.Fatalf("block-policy run failed: %v", err)
	}
	compareReports(t, "block policy", reportStrings(sh), want)
	rec := sh.Stats().Recovery
	if rec.BackpressureStalls == 0 {
		t.Errorf("injected fullness produced no stall accounting: %+v", rec)
	}
	if rec.DroppedBatches != 0 || rec.DroppedEvents != 0 {
		t.Errorf("block policy dropped batches: %+v", rec)
	}
}

// TestSlowWorkerStillExact: a slow shard exercises real queue
// backpressure (bounded depth) without changing any result.
func TestSlowWorkerStillExact(t *testing.T) {
	serial := New(Options{})
	feedRandom(serial, 6, 2000)
	want := reportStrings(serial)

	inj := &testInjector{slowEvery: 100, slowDelay: time.Millisecond}
	sh := NewSharded(Options{JournalCap: 32, RetryBudget: 1, QueueDepth: 2, Faults: inj}, 2, 8)
	feedRandom(sh, 6, 2000)
	if err := sh.Err(); err != nil {
		t.Fatalf("slow-worker run failed: %v", err)
	}
	compareReports(t, "slow worker", reportStrings(sh), want)
}

// TestUnsupervisedPanicsAggregate: without journaling (JournalCap 0),
// worker panics are fatal per shard, and Err must surface every
// failure, not just the first.
func TestUnsupervisedPanicsAggregate(t *testing.T) {
	plan, err := faultinject.Parse("panic:shard=0,event=20;panic:shard=1,event=20")
	if err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(Options{Faults: plan}, 2, 8)
	feedRandom(sh, 1, 3000)
	got := sh.Err()
	if got == nil {
		t.Fatal("two dead shards but Err() == nil")
	}
	for _, frag := range []string{"shard 0", "shard 1"} {
		if !strings.Contains(got.Error(), frag) {
			t.Errorf("Err() = %q, missing %q", got, frag)
		}
	}
}

// TestErrConcurrentPolling: Err (and the other result accessors) must
// be safe to call from multiple goroutines — the first caller
// finalizes, the rest must neither race nor double-finalize.
func TestErrConcurrentPolling(t *testing.T) {
	sh := NewSharded(Options{JournalCap: 64, RetryBudget: 1}, 4, 16)
	feedRandom(sh, 8, 2000)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = sh.Err()
			_ = sh.Stats()
			_ = sh.Reports()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("poller %d: %v", i, err)
		}
	}
}

// TestJournalCheckpointCounters: an undisturbed supervised run still
// journals and checkpoints (that is the cost of the insurance), and
// remains byte-identical to serial.
func TestJournalCheckpointCounters(t *testing.T) {
	serial := New(Options{})
	feedRandom(serial, 9, 3000)
	want := reportStrings(serial)

	sh := NewSharded(Options{JournalCap: 8, RetryBudget: 2}, 2, 8)
	feedRandom(sh, 9, 3000)
	if err := sh.Err(); err != nil {
		t.Fatal(err)
	}
	compareReports(t, "supervised undisturbed", reportStrings(sh), want)
	rec := sh.Stats().Recovery
	if rec.Journaled == 0 || rec.Checkpoints == 0 {
		t.Fatalf("supervision bookkeeping missing: %+v", rec)
	}
	if rec.Restarts != 0 || rec.Replayed != 0 || rec.DegradedShards != 0 {
		t.Fatalf("undisturbed run recorded recovery work: %+v", rec)
	}
}

// TestDegradedStillReportsKnownRace: a deliberately racy fixed
// scenario must still be reported by a shard that degraded before the
// racing accesses — the Eraser path is a detector, not a bit bucket.
func TestDegradedStillReportsKnownRace(t *testing.T) {
	run := func(b Backend) {
		b.ThreadStarted(0, event.NoThread)
		b.ThreadStarted(1, 0)
		loc := event.Loc{Obj: 100, Slot: 0}
		for i := 0; i < 40; i++ {
			th := event.ThreadID(i % 2)
			b.Access(event.Access{Loc: loc, Thread: th, Kind: event.Write, FieldName: "X.f"})
		}
		b.ThreadFinished(1)
		b.ThreadFinished(0)
	}
	inj := &testInjector{panicShard: 0, panicAt: 1} // panic on the very first access
	sh := NewSharded(Options{JournalCap: 16, RetryBudget: 0, Faults: inj}, 1, 4)
	run(sh)
	if err := sh.Err(); err != nil {
		t.Fatal(err)
	}
	rec := sh.Stats().Recovery
	if rec.DegradedShards != 1 {
		t.Fatalf("shard did not degrade: %+v", rec)
	}
	if len(sh.Reports()) == 0 {
		t.Fatal("unprotected two-thread write-write race lost by the degraded path")
	}
}
