package detector

import (
	"reflect"
	"sync"
	"testing"

	"racedet/internal/faultinject"
)

// TestConcurrentBackendsErrIsolated is the multi-session isolation
// contract the daemon relies on: N sharded backends running
// concurrently (one per "session"), where one backend's worker
// panics, must keep the failure session-scoped. Only the faulted
// backend's Err() is non-nil; every healthy sibling reports Err() ==
// nil and verdicts identical to a serial reference. Run under -race
// this also proves Err/Reports/Stats are safe to call from concurrent
// scraper goroutines after finalize.
func TestConcurrentBackendsErrIsolated(t *testing.T) {
	const (
		sessions = 8
		faulted  = 3
		seed     = 42
		events   = 3000
	)

	// Serial reference for the shared event stream.
	ref := New(Options{})
	feedRandom(ref, seed, events)
	want := reportStrings(ref)
	if ref.Err() != nil {
		t.Fatalf("serial reference failed: %v", ref.Err())
	}

	plan, err := faultinject.Parse("panic:shard=*,event=10")
	if err != nil {
		t.Fatal(err)
	}

	backends := make([]Backend, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		opts := Options{}
		if i == faulted {
			// JournalCap stays 0: unsupervised, so the injected worker
			// panic must surface through Err(), not recovery.
			opts.Faults = plan
		}
		backends[i] = NewSharded(opts, 4, 16)
		wg.Add(1)
		go func() {
			defer wg.Done()
			feedRandom(backends[i], seed, events)
		}()
	}
	wg.Wait()

	// Hammer the finalize-gated accessors from several goroutines per
	// backend: the daemon's /metrics scraper does exactly this while
	// sessions finish.
	var readers sync.WaitGroup
	for _, b := range backends {
		for g := 0; g < 3; g++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				b.Reports()
				b.Err()
				b.Stats()
				b.RacyObjects()
			}()
		}
	}
	readers.Wait()

	for i, b := range backends {
		if i == faulted {
			if b.Err() == nil {
				t.Errorf("backend %d: injected worker panic did not surface via Err", i)
			}
			continue
		}
		if err := b.Err(); err != nil {
			t.Errorf("backend %d: sibling poisoned by backend %d's panic: %v", i, faulted, err)
		}
		if got := reportStrings(b); !reflect.DeepEqual(got, want) {
			t.Errorf("backend %d: reports diverge from serial reference:\ngot  %v\nwant %v", i, got, want)
		}
	}
	if plan.Fired() == 0 {
		t.Fatal("injected panic never fired")
	}
}

// TestConcurrentBackendsSupervisedIsolated is the same isolation
// check with supervision on: the faulted backend recovers (Err() ==
// nil, restart counted) and its reports — like every sibling's —
// still match the serial reference.
func TestConcurrentBackendsSupervisedIsolated(t *testing.T) {
	const (
		sessions = 6
		faulted  = 2
		seed     = 7
		events   = 3000
	)

	ref := New(Options{})
	feedRandom(ref, seed, events)
	want := reportStrings(ref)

	plan, err := faultinject.Parse("panic:shard=*,event=25")
	if err != nil {
		t.Fatal(err)
	}

	backends := make([]Backend, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		opts := Options{JournalCap: 64, RetryBudget: 3}
		if i == faulted {
			opts.Faults = plan
		}
		backends[i] = NewSharded(opts, 4, 16)
		wg.Add(1)
		go func() {
			defer wg.Done()
			feedRandom(backends[i], seed, events)
		}()
	}
	wg.Wait()

	for i, b := range backends {
		if err := b.Err(); err != nil {
			t.Errorf("backend %d: Err = %v, want nil (supervision must contain the panic)", i, err)
		}
		if got := reportStrings(b); !reflect.DeepEqual(got, want) {
			t.Errorf("backend %d: reports diverge from serial reference", i)
		}
		restarts := b.Stats().Recovery.Restarts
		if i == faulted && restarts == 0 {
			t.Errorf("backend %d: panic fired but no restart recorded", i)
		}
		if i != faulted && restarts != 0 {
			t.Errorf("backend %d: sibling recorded %d restarts without faults", i, restarts)
		}
	}
	if plan.Fired() == 0 {
		t.Fatal("injected panic never fired")
	}
}
