package detector

import (
	"testing"

	"racedet/internal/rt/event"
)

// script drives a detector through a thread lifecycle and access
// scenario without the interpreter.
type script struct {
	d *Detector
}

func newScript(opts Options) *script {
	d := New(opts)
	d.ThreadStarted(0, event.NoThread)
	return &script{d: d}
}

func (s *script) spawn(t event.ThreadID, parent event.ThreadID) { s.d.ThreadStarted(t, parent) }
func (s *script) finish(t event.ThreadID)                       { s.d.ThreadFinished(t) }
func (s *script) join(joiner, joinee event.ThreadID)            { s.d.Joined(joiner, joinee) }
func (s *script) lock(t event.ThreadID, l event.ObjID)          { s.d.MonitorEnter(t, l, 1) }
func (s *script) unlock(t event.ThreadID, l event.ObjID)        { s.d.MonitorExit(t, l, 0) }
func (s *script) access(t event.ThreadID, obj int64, slot int32, k event.Kind) {
	s.d.Access(event.Access{
		Loc:       event.Loc{Obj: event.ObjID(obj), Slot: slot},
		Thread:    t,
		Kind:      k,
		FieldName: "F.f",
	})
}

func TestFullPipelineDetectsRace(t *testing.T) {
	s := newScript(Options{})
	s.spawn(1, 0)
	s.spawn(2, 0)
	// Main initializes (owner), children write without locks.
	s.access(0, 10, 0, event.Write)
	s.access(1, 10, 0, event.Write) // shared transition
	s.access(2, 10, 0, event.Write) // race
	reports := s.d.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	if got := s.d.RacyObjects(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("racy objects = %v", got)
	}
}

func TestOwnershipAbsorbsHandoff(t *testing.T) {
	s := newScript(Options{})
	s.spawn(1, 0)
	// Main initializes, a single child uses it afterwards: no race.
	s.access(0, 10, 0, event.Write)
	s.access(0, 10, 0, event.Write)
	s.access(1, 10, 0, event.Write)
	s.access(1, 10, 0, event.Read)
	if n := len(s.d.Reports()); n != 0 {
		t.Fatalf("handoff must be quiet, got %d reports", n)
	}
	st := s.d.Stats()
	if st.OwnerSkips == 0 {
		t.Error("ownership filter never engaged")
	}
}

func TestNoOwnershipReportsHandoff(t *testing.T) {
	s := newScript(Options{NoOwnership: true})
	s.spawn(1, 0)
	s.access(0, 10, 0, event.Write)
	s.access(1, 10, 0, event.Read)
	if n := len(s.d.Reports()); n != 1 {
		t.Fatalf("NoOwnership should report the init handoff, got %d", n)
	}
}

func TestJoinPseudolocksSuppressPostJoinReads(t *testing.T) {
	// The §8.3 mtrt idiom: children write under a common lock, parent
	// reads after joining both, with no lock.
	run := func(opts Options) int {
		s := newScript(opts)
		s.spawn(1, 0)
		s.spawn(2, 0)
		const lock = 100
		// Both children touch the stats object under the common lock.
		s.lock(1, lock)
		s.access(1, 10, 0, event.Write)
		s.unlock(1, lock)
		s.lock(2, lock)
		s.access(2, 10, 0, event.Write)
		s.unlock(2, lock)
		s.finish(1)
		s.finish(2)
		s.join(0, 1)
		s.join(0, 2)
		// Parent reads with no lock.
		s.access(0, 10, 0, event.Read)
		return len(s.d.Reports())
	}
	if n := run(Options{}); n != 0 {
		t.Errorf("with pseudolocks: %d reports, want 0 (locksets are mutually intersecting)", n)
	}
	if n := run(Options{NoPseudoLocks: true}); n == 0 {
		t.Error("without pseudolocks the parent read must race")
	}
}

func TestFieldsMergedConflatesSlots(t *testing.T) {
	// Slot 0 written by T1 only, slot 1 read by T2 only: quiet per
	// field, racy when merged.
	run := func(opts Options) int {
		s := newScript(opts)
		s.spawn(1, 0)
		s.spawn(2, 0)
		s.access(1, 10, 0, event.Write)
		s.access(2, 10, 1, event.Read)
		s.access(1, 10, 0, event.Write)
		s.access(2, 10, 1, event.Read)
		return len(s.d.Reports())
	}
	if n := run(Options{}); n != 0 {
		t.Errorf("per-field: %d reports, want 0", n)
	}
	if n := run(Options{FieldsMerged: true}); n == 0 {
		t.Error("merged fields must conflate the slots into a race")
	}
}

func TestFieldsMergedKeepsStaticsDistinct(t *testing.T) {
	// Two static slots of the same class object, each used by one
	// thread: must stay quiet even under FieldsMerged.
	s := newScript(Options{FieldsMerged: true})
	s.spawn(1, 0)
	s.spawn(2, 0)
	s.access(1, 10, event.StaticSlot(0), event.Write)
	s.access(2, 10, event.StaticSlot(1), event.Write)
	s.access(1, 10, event.StaticSlot(0), event.Write)
	s.access(2, 10, event.StaticSlot(1), event.Write)
	if n := len(s.d.Reports()); n != 0 {
		t.Fatalf("static fields must stay distinct under FieldsMerged, got %d reports", n)
	}
}

func TestReportDedupPerLocation(t *testing.T) {
	s := newScript(Options{})
	s.spawn(1, 0)
	s.spawn(2, 0)
	for i := 0; i < 5; i++ {
		s.access(1, 10, 0, event.Write)
		s.access(2, 10, 0, event.Write)
	}
	if n := len(s.d.Reports()); n != 1 {
		t.Fatalf("default reporting is once per location, got %d", n)
	}

	// ReportAll reports each distinct racing access (accesses subsumed
	// by the weaker-than filter are still skipped — that is the
	// algorithm, not the reporting policy).
	scenario := func(opts Options) int {
		s := newScript(opts)
		s.spawn(1, 0)
		s.spawn(2, 0)
		s.access(0, 10, 0, event.Write) // main owns the location
		s.lock(1, 100)
		s.access(1, 10, 0, event.Write) // shared transition; stored under {100}
		s.unlock(1, 100)
		s.lock(2, 200)
		s.access(2, 10, 0, event.Write) // races; stored under {200}
		s.unlock(2, 200)
		s.access(1, 10, 0, event.Write) // new lockset {}: races again
		return len(s.d.Reports())
	}
	if n := scenario(Options{ReportAll: true}); n != 2 {
		t.Fatalf("ReportAll: got %d reports, want 2", n)
	}
	if n := scenario(Options{}); n != 1 {
		t.Fatalf("dedup: got %d reports, want 1", n)
	}
}

func TestCacheConsistencyAcrossConfigs(t *testing.T) {
	// §7.2's experimental claim: the same races are reported whether
	// the cache is enabled or not. Exercise a scenario with lock
	// acquire/release cycles and shared transitions.
	run := func(opts Options) []event.ObjID {
		s := newScript(opts)
		s.spawn(1, 0)
		s.spawn(2, 0)
		const lock = 100
		for i := 0; i < 4; i++ {
			s.access(0, 20, 0, event.Write) // main-owned
			s.lock(1, lock)
			s.access(1, 10, 0, event.Write)
			s.access(1, 20, 0, event.Read) // shares 20
			s.unlock(1, lock)
			s.access(2, 10, 0, event.Write) // no lock: races with T1's locked writes
			s.access(2, 20, 0, event.Read)
		}
		return s.d.RacyObjects()
	}
	with := run(Options{})
	without := run(Options{NoCache: true})
	if len(with) != len(without) {
		t.Fatalf("cache changes the reports: with=%v without=%v", with, without)
	}
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("cache changes the reports: with=%v without=%v", with, without)
		}
	}
	if len(with) == 0 {
		t.Fatal("scenario should produce at least one race")
	}
}

func TestSharedTransitionEvictsCaches(t *testing.T) {
	// The owner caches its accesses; when the location becomes shared
	// the cached entries must not suppress the owner's next access.
	s := newScript(Options{})
	s.spawn(1, 0)
	s.access(0, 10, 0, event.Write) // owner main, cached
	s.access(0, 10, 0, event.Write) // cache hit
	s.access(1, 10, 0, event.Write) // shared; must evict main's entry
	s.access(0, 10, 0, event.Write) // must reach the trie → race with T1
	if n := len(s.d.Reports()); n != 1 {
		t.Fatalf("reports = %d, want 1 (owner's post-share access must not be cache-suppressed)", n)
	}
}

func TestDescribeObjInReports(t *testing.T) {
	d := New(Options{NoOwnership: true})
	d.SetDescribeObj(func(o event.ObjID) string { return "OBJ" + o.String() })
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.Access(event.Access{Loc: event.Loc{Obj: 5, Slot: 0}, Thread: 0, Kind: event.Write})
	d.Access(event.Access{Loc: event.Loc{Obj: 5, Slot: 0}, Thread: 1, Kind: event.Write})
	reports := d.Reports()
	if len(reports) != 1 || reports[0].ObjDesc != "OBJo5" {
		t.Fatalf("reports = %v", reports)
	}
}

func TestStatsPlumbing(t *testing.T) {
	s := newScript(Options{})
	s.spawn(1, 0)
	s.access(0, 10, 0, event.Write)
	s.access(0, 10, 0, event.Write)
	st := s.d.Stats()
	if st.Accesses != 2 {
		t.Errorf("accesses = %d", st.Accesses)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache hits = %d (second identical access should hit)", st.CacheHits)
	}
}
