package detector

import (
	"math/rand"
	"testing"

	"racedet/internal/rt/event"
)

// feedRandom drives a sink through a pseudo-random but deterministic
// event stream with threads, locks, shared objects, and join edges —
// dense enough to exercise caches, ownership transitions, and the trie.
func feedRandom(s event.Sink, seed int64, events int) {
	rng := rand.New(rand.NewSource(seed))
	const nThreads = 4
	const nObjs = 12
	const nLocks = 3
	s.ThreadStarted(0, event.NoThread)
	for t := event.ThreadID(1); t < nThreads; t++ {
		s.ThreadStarted(t, 0)
	}
	held := make([][]event.ObjID, nThreads) // lock stacks per thread
	for i := 0; i < events; i++ {
		t := event.ThreadID(rng.Intn(nThreads))
		switch op := rng.Intn(10); {
		case op < 6: // access
			obj := event.ObjID(100 + rng.Intn(nObjs))
			slot := int32(rng.Intn(3))
			kind := event.Read
			if rng.Intn(2) == 0 {
				kind = event.Write
			}
			s.Access(event.Access{
				Loc:       event.Loc{Obj: obj, Slot: slot},
				Thread:    t,
				Kind:      kind,
				FieldName: "F.f",
			})
		case op < 8: // lock
			if len(held[t]) < 2 {
				l := event.ObjID(500 + rng.Intn(nLocks))
				dup := false
				for _, h := range held[t] {
					if h == l {
						dup = true
					}
				}
				if !dup {
					held[t] = append(held[t], l)
					s.MonitorEnter(t, l, 1)
				}
			}
		default: // unlock (LIFO)
			if n := len(held[t]); n > 0 {
				l := held[t][n-1]
				held[t] = held[t][:n-1]
				s.MonitorExit(t, l, 0)
			}
		}
	}
	for t := event.ThreadID(0); t < nThreads; t++ {
		for n := len(held[t]); n > 0; n-- {
			s.MonitorExit(t, held[t][n-1], 0)
		}
	}
	for t := event.ThreadID(1); t < nThreads; t++ {
		s.ThreadFinished(t)
		s.Joined(0, t)
	}
	s.ThreadFinished(0)
}

func reportStrings(b Backend) []string {
	var out []string
	for _, r := range b.Reports() {
		out = append(out, r.String())
	}
	return out
}

// TestShardedMatchesSerial is the back-end-level differential check:
// for several option sets, seeds, and shard counts, the sharded
// backend's merged reports must be byte-identical to the serial ones.
func TestShardedMatchesSerial(t *testing.T) {
	optSets := map[string]Options{
		"full":        {},
		"nocache":     {NoCache: true},
		"noownership": {NoOwnership: true},
		"reportall":   {ReportAll: true},
		"merged":      {FieldsMerged: true},
		"packed":      {PackedTrie: true},
	}
	for name, opts := range optSets {
		for seed := int64(0); seed < 5; seed++ {
			serial := New(opts)
			feedRandom(serial, seed, 3000)
			want := reportStrings(serial)
			wantObjs := serial.RacyObjects()
			for _, shards := range []int{1, 2, 8} {
				sh := NewSharded(opts, shards, 16)
				feedRandom(sh, seed, 3000)
				if err := sh.Err(); err != nil {
					t.Fatalf("%s/seed%d/%dshards: worker error: %v", name, seed, shards, err)
				}
				got := reportStrings(sh)
				if len(got) != len(want) {
					t.Fatalf("%s/seed%d/%dshards: %d reports, serial has %d\nsharded: %v\nserial: %v",
						name, seed, shards, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/seed%d/%dshards: report %d differs\nsharded: %s\nserial:  %s",
							name, seed, shards, i, got[i], want[i])
					}
				}
				gotObjs := sh.RacyObjects()
				if len(gotObjs) != len(wantObjs) {
					t.Fatalf("%s/seed%d/%dshards: racy objects %v, serial %v", name, seed, shards, gotObjs, wantObjs)
				}
				for i := range wantObjs {
					if gotObjs[i] != wantObjs[i] {
						t.Fatalf("%s/seed%d/%dshards: racy objects %v, serial %v", name, seed, shards, gotObjs, wantObjs)
					}
				}
			}
		}
	}
}

// TestShardedBatchedProducer checks the batched producer path: a
// Batcher in front of the sharded backend (the interpreter's BatchSize
// wiring) must not change the reports either.
func TestShardedBatchedProducer(t *testing.T) {
	serial := New(Options{})
	feedRandom(serial, 7, 3000)
	want := reportStrings(serial)

	sh := NewSharded(Options{}, 4, 8)
	b := event.NewBatcher(sh, 8)
	feedRandom(b, 7, 3000)
	b.Flush()
	if err := sh.Err(); err != nil {
		t.Fatalf("worker error: %v", err)
	}
	got := reportStrings(sh)
	if len(got) != len(want) {
		t.Fatalf("batched sharded: %d reports, serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("report %d differs\nbatched sharded: %s\nserial: %s", i, got[i], want[i])
		}
	}
}

// TestShardedStatsMatchSerial pins the strongest consequence of the
// router-side filter design: because the cache and ownership layers
// run synchronously on the router in exactly the serial order, every
// filter counter — and, since the trie-bound stream is identical, the
// summed trie counters too — matches the serial back end bit for bit.
func TestShardedStatsMatchSerial(t *testing.T) {
	serial := New(Options{})
	feedRandom(serial, 1, 2000)
	want := serial.Stats()

	sh := NewSharded(Options{}, 3, 16)
	feedRandom(sh, 1, 2000)
	got := sh.Stats()

	if got.Accesses != want.Accesses || got.CacheHits != want.CacheHits ||
		got.OwnerSkips != want.OwnerSkips {
		t.Fatalf("filter counters diverge from serial:\nsharded: %+v\nserial:  %+v", got, want)
	}
	if got.Cache != want.Cache {
		t.Fatalf("cache stats diverge from serial:\nsharded: %+v\nserial:  %+v", got.Cache, want.Cache)
	}
	if got.OwnerLocations != want.OwnerLocations || got.OwnerOverflows != want.OwnerOverflows {
		t.Fatalf("ownership stats diverge from serial:\nsharded: %+v\nserial:  %+v", got, want)
	}
	if got.Trie != want.Trie {
		t.Fatalf("summed trie stats diverge from serial:\nsharded: %+v\nserial:  %+v", got.Trie, want.Trie)
	}
	if sh.TrieNodeCount() != serial.TrieNodeCount() {
		t.Fatalf("trie nodes: sharded %d, serial %d", sh.TrieNodeCount(), serial.TrieNodeCount())
	}
	if sh.TrieLocationCount() != serial.TrieLocationCount() {
		t.Fatalf("trie locations: sharded %d, serial %d", sh.TrieLocationCount(), serial.TrieLocationCount())
	}
}

// TestShardedQuickCheckParity drives the inlined §4 fast path against
// both back ends with interleaved QuickCheck/Access calls, the way
// the interpreter does: hit/miss decisions, absorbed accesses, and
// final reports must all agree.
func TestShardedQuickCheckParity(t *testing.T) {
	serial := New(Options{})
	sh := NewSharded(Options{}, 4, 8)

	drive := func(qc interface {
		QuickCheck(event.ThreadID, event.Loc, event.Kind) bool
	}, s event.Sink) {
		s.ThreadStarted(0, event.NoThread)
		s.ThreadStarted(1, 0)
		for i := 0; i < 2000; i++ {
			th := event.ThreadID(i & 1)
			loc := event.Loc{Obj: event.ObjID(100 + i%7), Slot: int32(i % 3)}
			kind := event.Kind(i & 1)
			if qc.QuickCheck(th, loc, kind) {
				continue // absorbed, exactly like the interpreter
			}
			s.Access(event.Access{Loc: loc, Thread: th, Kind: kind, FieldName: "Q.f"})
		}
		s.ThreadFinished(1)
		s.ThreadFinished(0)
	}
	drive(serial, serial)
	drive(sh, sh)

	if err := sh.Err(); err != nil {
		t.Fatal(err)
	}
	want, got := reportStrings(serial), reportStrings(sh)
	compareReports(t, "quickcheck parity", got, want)
	ws, gs := serial.Stats(), sh.Stats()
	if gs.Accesses != ws.Accesses || gs.CacheHits != ws.CacheHits {
		t.Fatalf("fast-path counters diverge: sharded %+v, serial %+v", gs, ws)
	}
}

// TestShardedStarvedRing runs the differential check with ring depth
// 1 and tiny batches, forcing constant wraparound and park/unpark on
// both sides of every ring. Run under -race this is the ring-integration
// memory-ordering stress.
func TestShardedStarvedRing(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		serial := New(Options{})
		feedRandom(serial, seed, 3000)
		want := reportStrings(serial)

		sh := NewSharded(Options{QueueDepth: 1}, 4, 2)
		feedRandom(sh, seed, 3000)
		if err := sh.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		compareReports(t, "starved ring", reportStrings(sh), want)
	}
}

// TestPooledBuffersDoNotAliasReports pins the buffer-recycling
// contract: batch buffers are reused across flushes and across runs
// (the package pool), so an earlier run's reports must stay intact
// while a later run churns through recycled buffers. Reports hold
// value copies plus run-owned interned locksets; if anything ever
// pointed back into a recycled buffer, the second run would scribble
// over the first run's output.
func TestPooledBuffersDoNotAliasReports(t *testing.T) {
	first := NewSharded(Options{}, 2, 4)
	feedRandom(first, 11, 2000)
	before := reportStrings(first) // finalizes: buffers drain to the pool
	if len(before) == 0 {
		t.Fatal("scenario should produce reports")
	}

	for i := int64(0); i < 3; i++ {
		next := NewSharded(Options{}, 2, 4)
		feedRandom(next, 20+i, 2000)
		_ = next.Reports()
	}

	compareReports(t, "after pool reuse", reportStrings(first), before)
}

// TestShardedDescribeObjAtMerge verifies ObjDesc is filled during the
// deterministic merge, matching the serial reports.
func TestShardedDescribeObjAtMerge(t *testing.T) {
	desc := func(o event.ObjID) string { return "OBJ" + o.String() }

	serial := New(Options{NoOwnership: true})
	serial.SetDescribeObj(desc)
	feedRandom(serial, 3, 1000)

	sh := NewSharded(Options{NoOwnership: true}, 2, 16)
	sh.SetDescribeObj(desc)
	feedRandom(sh, 3, 1000)

	want, got := serial.Reports(), sh.Reports()
	if len(want) == 0 {
		t.Fatal("scenario should produce reports")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ObjDesc == "" || got[i].ObjDesc != want[i].ObjDesc {
			t.Fatalf("report %d ObjDesc = %q, want %q", i, got[i].ObjDesc, want[i].ObjDesc)
		}
	}
}
