// Adaptive per-site throttling: the sampled access pipelines of the
// serial detector and the sharded router.
//
// Both back ends run the same decision procedure, synchronously, in
// serial event order, against identical sitestate/ownership/cache
// state — so a sampled sharded run ships exactly the event stream the
// sampled serial run ships and their merged reports stay
// byte-identical (pinned by TestSampledShardedMatchesSerial and the
// corpus differentials).
//
// Per access at an ARMED site: the normal pipeline runs (cache →
// ownership → trie) and the outcome is recorded as a site observation;
// K consecutive observations with no intervening re-arm demote the
// site. Every shipped access — armed or stub — is recorded in the
// per-location shipped history and inserted into the per-thread cache
// (the unsampled pipeline caches every delivered access; the sampled
// one must too, or recurring racy-shaped traffic would re-ship on
// every repeat).
//
// Per access at a DEMOTED site, in order:
//
//  1. the location carries an armed marker (set by the ownership
//     table's contact callback) → re-arm the site and run the armed
//     pipeline;
//  2. otherwise run the ownership filter (its state must evolve
//     exactly as in the unsampled run — it is the re-arm signal):
//     - owned→shared transition: the first cross-thread contact is
//     never suppressed — re-arm and deliver (the Contact callback
//     has already re-armed every other site that touched the
//     location and armed the location itself);
//     - absorbed (still owned): identical to the unsampled pipeline,
//     counted as an owner skip;
//     - forwarded but not tracked as shared (bounded-table overflow,
//     born-shared): never suppressed — the unsampled run ships every
//     such access and overflow locations emit no contact signal;
//     - shared and suppressible (see sitestate.CanSuppress): suppress
//     and remember the touch;
//     - shared and racy-shaped: the site stays demoted and the access
//     rides the cache — a hit is absorbed exactly as in the
//     unsampled pipeline, a miss ships and is cached. No re-arm is
//     needed: shipped history only grows, so the location keeps
//     refusing suppression and the forwarded recurrences complete
//     any race pair in the trie.
//
// Throttling therefore suppresses two provably-redundant classes:
// repeat traffic that cannot complete a race pair (read-read sharing,
// sole-toucher traffic — judged against both suppressed and shipped
// history), and all traffic on locations whose shipped history already
// proves a race report (see shipEntry.proven). Stable (recurring)
// races survive; the residual one-shot blind spot is documented in
// sitestate and docs/performance.md.
package detector

import (
	"racedet/internal/rt/event"
	"racedet/internal/rt/ownership"
)

// sampledAccess is the serial detector's per-access pipeline when
// throttling is on (d.sites != nil). It never mutates *a.
func (d *Detector) sampledAccess(a *event.Access) {
	d.stats.Accesses++
	loc := a.Loc
	if d.opts.FieldsMerged && loc.Slot >= event.ArraySlot {
		loc.Slot = 0
	}
	t := a.Thread
	id := d.sites.SiteID(a.Pos, a.Kind)
	wr := a.Kind == event.Write

	if d.sites.Demoted(id) {
		switch {
		case d.sites.ConsumeArmed(loc):
			d.sites.Rearm(id)
		default:
			// Counting-only stub: ownership runs, the trie does not.
			forward, becameShared := d.owner.Filter(t, loc)
			switch {
			case becameShared:
				if !d.opts.NoCache {
					d.cache.EvictLocation(loc)
				}
				d.sites.Rearm(id)
				d.sites.ConsumeArmed(loc) // Contact armed it; this is the ship
				d.shipFromStub(a, loc, t, wr)
			case !forward:
				d.stats.OwnerSkips++
				d.sites.Skipped()
			case d.owner.StateOf(loc) != ownership.Shared:
				d.shipFromStub(a, loc, t, wr)
			case d.sites.Touch(id, loc, t, wr):
				d.sites.Suppress()
			default:
				// Racy-shaped against suppressed or shipped history: the
				// location is permanently unsuppressible (the shipped bits
				// only grow), so the site stays demoted and repeats ride
				// the cache exactly as in the unsampled pipeline. No
				// re-arm: the forwarded event itself completes the pair.
				if !d.opts.NoCache && d.cache.Lookup(t, loc, a.Kind) {
					d.stats.CacheHits++
					d.sites.Skipped()
					return
				}
				d.shipFromStub(a, loc, t, wr)
			}
			return
		}
	}

	// Armed pipeline: cache → ownership → trie, outcome observed.
	if !d.opts.NoCache && d.cache.Lookup(t, loc, a.Kind) {
		d.stats.CacheHits++
		d.sites.Observe(id, false)
		return
	}
	forward, becameShared := d.owner.Filter(t, loc)
	if becameShared && !d.opts.NoCache {
		d.cache.EvictLocation(loc)
	}
	if !forward {
		d.stats.OwnerSkips++
		if !d.opts.NoCache {
			top, ok := d.locks.Top(t)
			d.cache.Insert(t, loc, a.Kind, top, ok)
		}
		d.sites.Observe(id, false)
		return
	}
	d.sites.RecordShip(loc, t, wr, len(a.Locks) == 0)
	d.deliver(*a, loc)
	if !d.opts.NoCache {
		top, ok := d.locks.Top(t)
		d.cache.Insert(t, loc, a.Kind, top, ok)
	}
	d.sites.Observe(id, true)
}

// shipFromStub forwards an access the demoted stub may not suppress:
// record it in the shipped history, deliver it to the trie, and insert
// it into the per-thread cache (the unsampled pipeline caches every
// delivered access; the stub must too, or recurring racy-shaped
// traffic re-ships on every repeat).
func (d *Detector) shipFromStub(a *event.Access, loc event.Loc, t event.ThreadID, wr bool) {
	d.sites.RecordShip(loc, t, wr, len(a.Locks) == 0)
	d.deliver(*a, loc)
	if !d.opts.NoCache {
		top, ok := d.locks.Top(t)
		d.cache.Insert(t, loc, a.Kind, top, ok)
	}
	d.sites.ForcedShip()
}

// sampledAccess is the sharded router's twin of the serial pipeline
// above; survivors are routed to the owning shard instead of processed
// inline. Any change here must be mirrored there.
func (s *Sharded) sampledAccess(a *event.Access) {
	s.stats.Accesses++
	loc := a.Loc
	if s.opts.FieldsMerged && loc.Slot >= event.ArraySlot {
		loc.Slot = 0
	}
	t := a.Thread
	id := s.sites.SiteID(a.Pos, a.Kind)
	wr := a.Kind == event.Write

	if s.sites.Demoted(id) {
		switch {
		case s.sites.ConsumeArmed(loc):
			s.sites.Rearm(id)
		default:
			forward, becameShared := s.owner.Filter(t, loc)
			switch {
			case becameShared:
				if !s.opts.NoCache {
					s.cache.EvictLocation(loc)
				}
				s.sites.Rearm(id)
				s.sites.ConsumeArmed(loc)
				s.shipFromStub(a, loc, t, wr)
			case !forward:
				s.stats.OwnerSkips++
				s.sites.Skipped()
			case s.owner.StateOf(loc) != ownership.Shared:
				s.shipFromStub(a, loc, t, wr)
			case s.sites.Touch(id, loc, t, wr):
				s.sites.Suppress()
			default:
				// Racy-shaped: stays demoted, cache absorbs repeats (see
				// the serial twin for the rationale).
				if !s.opts.NoCache && s.cache.Lookup(t, loc, a.Kind) {
					s.stats.CacheHits++
					s.sites.Skipped()
					return
				}
				s.shipFromStub(a, loc, t, wr)
			}
			return
		}
	}

	if !s.opts.NoCache && s.cache.Lookup(t, loc, a.Kind) {
		s.stats.CacheHits++
		s.sites.Observe(id, false)
		return
	}
	forward, becameShared := s.owner.Filter(t, loc)
	if becameShared && !s.opts.NoCache {
		s.cache.EvictLocation(loc)
	}
	if !forward {
		s.stats.OwnerSkips++
		if !s.opts.NoCache {
			top, ok := s.locks.Top(t)
			s.cache.Insert(t, loc, a.Kind, top, ok)
		}
		s.sites.Observe(id, false)
		return
	}
	s.sites.RecordShip(loc, t, wr, len(a.Locks) == 0)
	s.route(*a, loc)
	if !s.opts.NoCache {
		top, ok := s.locks.Top(t)
		s.cache.Insert(t, loc, a.Kind, top, ok)
	}
	s.sites.Observe(id, true)
}

// shipFromStub is the sharded twin of the serial helper above.
func (s *Sharded) shipFromStub(a *event.Access, loc event.Loc, t event.ThreadID, wr bool) {
	s.sites.RecordShip(loc, t, wr, len(a.Locks) == 0)
	s.route(*a, loc)
	if !s.opts.NoCache {
		top, ok := s.locks.Top(t)
		s.cache.Insert(t, loc, a.Kind, top, ok)
	}
	s.sites.ForcedShip()
}
