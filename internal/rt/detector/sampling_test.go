package detector

import (
	"math/rand"
	"testing"

	"racedet/internal/faultinject"
	"racedet/internal/lang/token"
	"racedet/internal/rt/event"
)

// feedRandomSited is feedRandom with distinct source positions per
// (object, slot, kind) choice, so the throttling layer sees a realistic
// population of static sites instead of one merged site.
func feedRandomSited(s event.Sink, seed int64, events int) {
	rng := rand.New(rand.NewSource(seed))
	const nThreads = 4
	const nObjs = 12
	const nLocks = 3
	s.ThreadStarted(0, event.NoThread)
	for t := event.ThreadID(1); t < nThreads; t++ {
		s.ThreadStarted(t, 0)
	}
	held := make([][]event.ObjID, nThreads)
	for i := 0; i < events; i++ {
		t := event.ThreadID(rng.Intn(nThreads))
		switch op := rng.Intn(10); {
		case op < 6:
			obj := event.ObjID(100 + rng.Intn(nObjs))
			slot := int32(rng.Intn(3))
			kind := event.Read
			if rng.Intn(2) == 0 {
				kind = event.Write
			}
			// One "instruction" per (obj, slot): a plausible site count.
			line := int32(obj)*10 + slot
			s.Access(event.Access{
				Loc:       event.Loc{Obj: obj, Slot: slot},
				Thread:    t,
				Kind:      kind,
				FieldName: "F.f",
				Pos:       token.Pos{File: "rand.mj", Line: line, Col: 1},
			})
		case op < 8:
			if len(held[t]) < 2 {
				l := event.ObjID(500 + rng.Intn(nLocks))
				dup := false
				for _, h := range held[t] {
					if h == l {
						dup = true
					}
				}
				if !dup {
					held[t] = append(held[t], l)
					s.MonitorEnter(t, l, 1)
				}
			}
		default:
			if n := len(held[t]); n > 0 {
				l := held[t][n-1]
				held[t] = held[t][:n-1]
				s.MonitorExit(t, l, 0)
			}
		}
	}
	for t := event.ThreadID(0); t < nThreads; t++ {
		for n := len(held[t]); n > 0; n-- {
			s.MonitorExit(t, held[t][n-1], 0)
		}
	}
	for t := event.ThreadID(1); t < nThreads; t++ {
		s.ThreadFinished(t)
		s.Joined(0, t)
	}
	s.ThreadFinished(0)
}

// TestSampledShardedMatchesSerial pins the strongest sampling
// determinism property: the throttling table lives router-side and
// evolves in serial event order, so a sampled sharded run ships the
// exact stream the sampled serial run ships — reports, racy objects,
// and every sampling counter are identical across back ends.
func TestSampledShardedMatchesSerial(t *testing.T) {
	for _, opts := range []Options{
		{SampleK: 2},
		{SampleK: 8},
		{SampleK: 4, SampleBudget: 0.25},
		{SampleBudget: 0.1},
	} {
		for seed := int64(0); seed < 5; seed++ {
			serial := New(opts)
			feedRandomSited(serial, seed, 3000)
			want := reportStrings(serial)
			ws := serial.Stats()
			for _, shards := range []int{1, 2, 8} {
				sh := NewSharded(opts, shards, 16)
				feedRandomSited(sh, seed, 3000)
				if err := sh.Err(); err != nil {
					t.Fatalf("k%d/seed%d/%dshards: worker error: %v", opts.SampleK, seed, shards, err)
				}
				compareReports(t, "sampled sharded vs serial", reportStrings(sh), want)
				gs := sh.Stats()
				if gs.Accesses != ws.Accesses || gs.Shipped != ws.Shipped || gs.Sample != ws.Sample {
					t.Fatalf("k%d/seed%d/%dshards: sampling counters diverge\nsharded: %+v %+v\nserial:  %+v %+v",
						opts.SampleK, seed, shards, gs.Shipped, gs.Sample, ws.Shipped, ws.Sample)
				}
			}
		}
	}
}

// TestSamplingAccountingInvariant pins the documented invariant: every
// observed event is either shipped to the trie or absorbed by exactly
// one filter layer (cache, ownership, or the throttling stubs).
func TestSamplingAccountingInvariant(t *testing.T) {
	for _, opts := range []Options{
		{}, // unsampled runs satisfy it too (Suppressed = 0)
		{SampleK: 2},
		{SampleK: 4, SampleBudget: 0.2},
	} {
		for seed := int64(0); seed < 3; seed++ {
			d := New(opts)
			feedRandomSited(d, seed, 4000)
			s := d.Stats()
			if s.Accesses != s.Shipped+s.CacheHits+s.OwnerSkips+s.Sample.Suppressed {
				t.Fatalf("k%d/seed%d: invariant broken: accesses=%d shipped=%d cache=%d owner=%d suppressed=%d",
					opts.SampleK, seed, s.Accesses, s.Shipped, s.CacheHits, s.OwnerSkips, s.Sample.Suppressed)
			}
			// No suppression floor here: the random stream is write-heavy
			// cross-thread traffic, which is racy-shaped against the
			// shipped history and must keep shipping. The suppression win
			// is pinned by TestSamplingSuppressesHotStableTraffic.
		}
	}
}

// TestSamplingSuppressesHotStableTraffic drives the throttling win
// scenario: one thread hammering a shared location under lock churn
// (which defeats the §4 cache) must demote after K observations and
// stop shipping, while the accounting still adds up.
func TestSamplingSuppressesHotStableTraffic(t *testing.T) {
	d := New(Options{SampleK: 4})
	loc := event.Loc{Obj: 100, Slot: 0}
	site := token.Pos{File: "hot.mj", Line: 10, Col: 1}
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.ThreadStarted(2, 0)
	// Make the location shared (contact by thread 2, then back off).
	d.Access(event.Access{Loc: loc, Thread: 2, Kind: event.Write, Pos: token.Pos{File: "hot.mj", Line: 5, Col: 1}, FieldName: "H.f"})
	d.Access(event.Access{Loc: loc, Thread: 1, Kind: event.Write, Pos: site, FieldName: "H.f"})
	// Thread 1 hammers the shared location from one site; the lock
	// cycle evicts any cache entry between iterations.
	for i := 0; i < 100; i++ {
		d.MonitorEnter(1, 500, 1)
		d.Access(event.Access{Loc: loc, Thread: 1, Kind: event.Write, Pos: site, FieldName: "H.f"})
		d.MonitorExit(1, 500, 0)
	}
	s := d.Stats()
	if s.Sample.Demotions == 0 {
		t.Fatalf("hot stable site never demoted: %+v", s.Sample)
	}
	if s.Sample.Suppressed < 80 {
		t.Fatalf("suppressed only %d of ~100 hot accesses: %+v", s.Sample.Suppressed, s.Sample)
	}
	if s.Accesses != s.Shipped+s.CacheHits+s.OwnerSkips+s.Sample.Suppressed {
		t.Fatalf("invariant broken: %+v", s)
	}
}

// TestSamplingNeverMissesStableRaceAfterDemotion is the re-arm
// guarantee in miniature: a site demotes on owner-absorbed traffic,
// then a second thread races on the same location. The ownership
// contact arms the location, so the demoted site's next access ships
// and the race is reported — with the same verdict as the unsampled
// run.
func TestSamplingNeverMissesStableRaceAfterDemotion(t *testing.T) {
	run := func(opts Options) []string {
		d := New(opts)
		locX := event.Loc{Obj: 100, Slot: 0}
		s1 := token.Pos{File: "r.mj", Line: 1, Col: 1} // thread 1's site
		s2 := token.Pos{File: "r.mj", Line: 2, Col: 1} // thread 2's site
		d.ThreadStarted(0, event.NoThread)
		d.ThreadStarted(1, 0)
		d.ThreadStarted(2, 0)
		// Phase 1: thread 1 owns the location and hammers it; under
		// sampling, site s1 demotes (owner-absorbed clean observations).
		for i := 0; i < 10; i++ {
			d.Access(event.Access{Loc: locX, Thread: 1, Kind: event.Write, Pos: s1, FieldName: "R.x"})
		}
		// Phase 2: thread 2 touches it — contact — then thread 1's
		// demoted site writes again: must ship and race.
		d.Access(event.Access{Loc: locX, Thread: 2, Kind: event.Write, Pos: s2, FieldName: "R.x"})
		d.Access(event.Access{Loc: locX, Thread: 1, Kind: event.Write, Pos: s1, FieldName: "R.x"})
		return reportStrings(d)
	}
	want := run(Options{})
	if len(want) == 0 {
		t.Fatal("scenario must race unsampled")
	}
	got := run(Options{SampleK: 2})
	compareReports(t, "stable race under sampling", got, want)
}

// TestSamplingCrossThreadRefusalShips covers the already-shared side
// of the coverage guarantee: both racing sites demote while the
// location is already shared (so no ownership contact will ever fire
// again); the write-aware suppression rules must refuse to hide the
// cross-thread writes, so the recurring pair ships through the stubs
// and still reports.
func TestSamplingCrossThreadRefusalShips(t *testing.T) {
	d := New(Options{SampleK: 2})
	loc := event.Loc{Obj: 100, Slot: 0}
	s1 := token.Pos{File: "x.mj", Line: 1, Col: 1}
	s2 := token.Pos{File: "x.mj", Line: 2, Col: 1}
	lk := event.ObjID(500)
	d.ThreadStarted(0, event.NoThread)
	d.ThreadStarted(1, 0)
	d.ThreadStarted(2, 0)
	// Make the location shared under a common lock (no race yet), and
	// let both sites demote on their stable locked traffic.
	acc := func(t event.ThreadID, pos token.Pos) {
		d.MonitorEnter(t, lk, 1)
		d.Access(event.Access{Loc: loc, Thread: t, Kind: event.Write, Pos: pos, FieldName: "X.f"})
		d.MonitorExit(t, lk, 0)
	}
	for i := 0; i < 6; i++ {
		acc(1, s1)
	}
	for i := 0; i < 6; i++ {
		acc(2, s2)
	}
	// Both sites are now demoted. The race begins: thread 1 writes
	// without the lock from its demoted site — never suppressed
	// (thread 2's shipped writes are foreign history) — and thread 2's
	// locked writes keep shipping the same way. The unlocked/locked
	// pair meets in the trie and must report.
	d.Access(event.Access{Loc: loc, Thread: 1, Kind: event.Write, Pos: s1, FieldName: "X.f"})
	acc(2, s2)
	d.Access(event.Access{Loc: loc, Thread: 1, Kind: event.Write, Pos: s1, FieldName: "X.f"})
	if len(d.Reports()) == 0 {
		t.Fatalf("recurring unlocked/locked race lost under sampling: %+v", d.Stats().Sample)
	}
}

// TestSampledSupervisedRecovery proves throttling composes with the
// fault-tolerant sharded back end: the site table lives router-side,
// so worker panics, journal replay, and restarts neither corrupt it
// nor change the sampled verdict.
func TestSampledSupervisedRecovery(t *testing.T) {
	opts := Options{SampleK: 2}
	for seed := int64(0); seed < 3; seed++ {
		clean := NewSharded(opts, 4, 16)
		feedRandomSited(clean, seed, 3000)
		want := reportStrings(clean)
		wantStats := clean.Stats()

		faulted := opts
		faulted.JournalCap = 32
		faulted.RetryBudget = 3
		// The panic index must land below the per-shard shipped count,
		// which throttling (now with proven-race suppression) keeps small.
		faulted.Faults = faultinject.PanicPlan(seed, 4, 8)
		sh := NewSharded(faulted, 4, 16)
		feedRandomSited(sh, seed, 3000)
		if err := sh.Err(); err != nil {
			t.Fatalf("seed %d: supervised sampled run failed: %v", seed, err)
		}
		compareReports(t, "sampled supervised recovery", reportStrings(sh), want)
		gs := sh.Stats()
		if gs.Recovery.Restarts == 0 {
			t.Fatalf("seed %d: fault plan injected no restarts", seed)
		}
		if gs.Sample != wantStats.Sample {
			t.Fatalf("seed %d: worker restarts disturbed router-side sampling state:\nfaulted: %+v\nclean:   %+v",
				seed, gs.Sample, wantStats.Sample)
		}
	}
}

// TestSamplingQuickCheckDisabled: the interpreter's inlined fast path
// must be off under sampling so the filter sees the complete stream
// (live runs must match trace replays event for event).
func TestSamplingQuickCheckDisabled(t *testing.T) {
	d := New(Options{SampleK: 4})
	d.ThreadStarted(0, event.NoThread)
	loc := event.Loc{Obj: 100, Slot: 0}
	d.Access(event.Access{Loc: loc, Thread: 0, Kind: event.Read, FieldName: "Q.f"})
	if d.QuickCheck(0, loc, event.Read) {
		t.Fatal("serial QuickCheck must be disabled under sampling")
	}
	sh := NewSharded(Options{SampleK: 4}, 2, 8)
	sh.Access(event.Access{Loc: loc, Thread: 0, Kind: event.Read, FieldName: "Q.f"})
	if sh.QuickCheck(0, loc, event.Read) {
		t.Fatal("sharded QuickCheck must be disabled under sampling")
	}
	_ = sh.Reports()
}

// TestSamplingIgnoredUnderNoOwnership: without the ownership filter
// there is no contact signal, so throttling silently disables rather
// than degrade to maybe-miss.
func TestSamplingIgnoredUnderNoOwnership(t *testing.T) {
	d := New(Options{SampleK: 2, NoOwnership: true})
	if d.sites != nil {
		t.Fatal("sampling must be disabled under NoOwnership")
	}
	if _, on := samplingConfig(Options{SampleBudget: 0.5}); !on {
		t.Fatal("budget alone must enable sampling")
	}
}
