package deadlock

import (
	"strings"
	"testing"

	"racedet/internal/rt/event"
)

// lockSeq drives thread t through nested acquisitions of the given
// locks (acquire all in order, then release in reverse).
func lockSeq(d *Detector, t event.ThreadID, locks ...event.ObjID) {
	for _, l := range locks {
		d.MonitorEnter(t, l, 1)
	}
	for i := len(locks) - 1; i >= 0; i-- {
		d.MonitorExit(t, locks[i], 0)
	}
}

func TestABBACycleReported(t *testing.T) {
	d := New()
	lockSeq(d, 1, 10, 20) // T1: A then B
	lockSeq(d, 2, 20, 10) // T2: B then A
	reports := d.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want 1 AB-BA cycle", reports)
	}
	r := reports[0]
	if len(r.Cycle) != 2 || len(r.Threads) != 2 {
		t.Errorf("report = %+v", r)
	}
	if !strings.Contains(r.String(), "POTENTIAL DEADLOCK") {
		t.Errorf("render = %q", r.String())
	}
}

func TestConsistentOrderIsQuiet(t *testing.T) {
	d := New()
	lockSeq(d, 1, 10, 20)
	lockSeq(d, 2, 10, 20)
	lockSeq(d, 3, 10, 20)
	if reports := d.Reports(); len(reports) != 0 {
		t.Fatalf("consistent order must not report: %v", reports)
	}
}

func TestSingleThreadSuppression(t *testing.T) {
	// One thread acquiring in both orders (at different times) cannot
	// deadlock with itself.
	d := New()
	lockSeq(d, 1, 10, 20)
	lockSeq(d, 1, 20, 10)
	if reports := d.Reports(); len(reports) != 0 {
		t.Fatalf("single-thread cycle must be suppressed: %v", reports)
	}
}

func TestGateLockSuppression(t *testing.T) {
	// Both inversion sequences happen under a common gate lock G: the
	// gate serializes them, no deadlock is possible.
	d := New()
	const G, A, B = 5, 10, 20
	d.MonitorEnter(1, G, 1)
	lockSeq(d, 1, A, B)
	d.MonitorExit(1, G, 0)
	d.MonitorEnter(2, G, 1)
	lockSeq(d, 2, B, A)
	d.MonitorExit(2, G, 0)
	if reports := d.Reports(); len(reports) != 0 {
		t.Fatalf("gate-locked inversion must be suppressed: %v", reports)
	}
}

func TestGateMustCoverAllObservations(t *testing.T) {
	// The gate only suppresses if it covers EVERY observation of the
	// edges; here T2 repeats the inversion without the gate.
	d := New()
	const G, A, B = 5, 10, 20
	d.MonitorEnter(1, G, 1)
	lockSeq(d, 1, A, B)
	d.MonitorExit(1, G, 0)
	d.MonitorEnter(2, G, 1)
	lockSeq(d, 2, B, A)
	d.MonitorExit(2, G, 0)
	lockSeq(d, 2, B, A) // ungated
	lockSeq(d, 1, A, B) // ungated
	if reports := d.Reports(); len(reports) != 1 {
		t.Fatalf("partially gated inversion must be reported: %v", reports)
	}
}

func TestThreeLockCycle(t *testing.T) {
	d := New()
	lockSeq(d, 1, 10, 20)
	lockSeq(d, 2, 20, 30)
	lockSeq(d, 3, 30, 10)
	reports := d.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want one 3-cycle", reports)
	}
	if len(reports[0].Cycle) != 3 {
		t.Errorf("cycle = %v", reports[0].Cycle)
	}
}

func TestReentrancyIgnored(t *testing.T) {
	d := New()
	d.MonitorEnter(1, 10, 1)
	d.MonitorEnter(1, 10, 2) // reentrant
	d.MonitorEnter(1, 20, 1)
	d.MonitorExit(1, 20, 0)
	d.MonitorExit(1, 10, 1)
	d.MonitorExit(1, 10, 0)
	if d.EdgeCount() != 1 {
		t.Errorf("edges = %d, want just 10->20", d.EdgeCount())
	}
}

func TestCycleReportedOnce(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		lockSeq(d, 1, 10, 20)
		lockSeq(d, 2, 20, 10)
	}
	if reports := d.Reports(); len(reports) != 1 {
		t.Fatalf("duplicate cycle reports: %v", reports)
	}
}
