// Package deadlock implements the lock-order-graph potential-deadlock
// detector the paper lists as future work ("we plan to broaden the
// static/dynamic coanalysis approach to tackle other problems such as
// deadlock detection", §10), in the style of Goodlock.
//
// The detector observes the same runtime event stream as the race
// detectors. Whenever a thread acquires lock b while holding lock a,
// it records the edge a → b together with the acquiring thread and the
// gate locks held outside the pair. After the run, cycles in the
// lock-order graph are potential deadlocks; a cycle is suppressed when
// (a) all of its edges were created by one thread (a single thread
// cannot deadlock with itself under reentrant monitors), or (b) all
// edges share a common gate lock that serializes the two acquisition
// sequences.
package deadlock

import (
	"fmt"
	"sort"
	"strings"

	"racedet/internal/rt/event"
)

// edge is one observed ordered acquisition a → b.
type edge struct {
	from, to event.ObjID
}

// edgeInfo accumulates the contexts in which an edge was observed.
type edgeInfo struct {
	threads map[event.ThreadID]struct{}
	// gates is the intersection over all observations of the locks
	// held besides from/to — candidates for a serializing gate.
	gates    event.Lockset
	observed bool
}

// Report is one potential deadlock: a cycle in the lock-order graph.
type Report struct {
	// Cycle lists the locks in acquisition-cycle order (len >= 2).
	Cycle []event.ObjID
	// Threads are the distinct threads contributing edges.
	Threads []event.ThreadID
}

func (r Report) String() string {
	locks := make([]string, len(r.Cycle))
	for i, l := range r.Cycle {
		locks[i] = l.String()
	}
	threads := make([]string, len(r.Threads))
	for i, t := range r.Threads {
		threads[i] = t.String()
	}
	return fmt.Sprintf("POTENTIAL DEADLOCK: lock cycle %s (threads %s)",
		strings.Join(locks, " -> ")+" -> "+locks[0], strings.Join(threads, ","))
}

// Detector builds the lock-order graph from the event stream.
type Detector struct {
	locks *event.LockTracker
	edges map[edge]*edgeInfo
}

var _ event.Sink = (*Detector)(nil)

// New returns an empty deadlock detector.
func New() *Detector {
	return &Detector{
		locks: event.NewLockTracker(),
		edges: make(map[edge]*edgeInfo),
	}
}

// ThreadStarted implements event.Sink. Join pseudolocks never
// participate in deadlocks (they are not real monitors), so the
// tracker here runs without them.
func (d *Detector) ThreadStarted(child, parent event.ThreadID) {}

// ThreadFinished implements event.Sink.
func (d *Detector) ThreadFinished(t event.ThreadID) {}

// Joined implements event.Sink.
func (d *Detector) Joined(joiner, joinee event.ThreadID) {}

// MonitorEnter implements event.Sink: records lock-order edges.
func (d *Detector) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	if depth != 1 {
		return
	}
	held := d.locks.Stack(t)
	for _, prev := range held {
		e := edge{from: prev, to: lock}
		info := d.edges[e]
		if info == nil {
			info = &edgeInfo{threads: make(map[event.ThreadID]struct{})}
			d.edges[e] = info
		}
		info.threads[t] = struct{}{}
		// Gate locks: everything held except the edge's endpoints.
		var gates []event.ObjID
		for _, g := range held {
			if g != prev && g != lock {
				gates = append(gates, g)
			}
		}
		gl := event.NewLockset(gates...)
		if !info.observed {
			info.gates = gl
			info.observed = true
		} else {
			info.gates = info.gates.Intersect(gl)
		}
	}
	d.locks.MonitorEnter(t, lock, depth)
}

// MonitorExit implements event.Sink.
func (d *Detector) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	d.locks.MonitorExit(t, lock, depth)
}

// Access implements event.Sink (ignored; deadlock analysis only needs
// monitor events).
func (d *Detector) Access(a event.Access) {}

// Reports finds the cycles in the lock-order graph and returns the
// potential deadlocks after gate-lock and single-thread suppression.
// Each cycle is reported once, in canonical rotation.
func (d *Detector) Reports() []Report {
	// Adjacency list with deterministic ordering.
	adj := make(map[event.ObjID][]event.ObjID)
	for e := range d.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, tos := range adj {
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	}
	nodes := make([]event.ObjID, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	seen := map[string]bool{}
	var reports []Report

	// Bounded DFS cycle enumeration: lock-order graphs are tiny (one
	// node per lock object that ever nested).
	var path []event.ObjID
	onPath := map[event.ObjID]bool{}
	var dfs func(start, cur event.ObjID, depth int)
	dfs = func(start, cur event.ObjID, depth int) {
		if depth > 8 {
			return
		}
		for _, next := range adj[cur] {
			if next == start && len(path) >= 2 {
				cycle := append([]event.ObjID(nil), path...)
				if rep, ok := d.classify(cycle); ok {
					key := canonical(cycle)
					if !seen[key] {
						seen[key] = true
						reports = append(reports, rep)
					}
				}
				continue
			}
			if onPath[next] || next < start {
				// next < start: that cycle will be found from its own
				// smallest node, keeping enumeration canonical.
				continue
			}
			onPath[next] = true
			path = append(path, next)
			dfs(start, next, depth+1)
			path = path[:len(path)-1]
			delete(onPath, next)
		}
	}
	for _, n := range nodes {
		path = path[:0]
		onPath = map[event.ObjID]bool{n: true}
		path = append(path, n)
		dfs(n, n, 0)
	}
	return reports
}

// classify applies the suppression rules to a candidate cycle.
func (d *Detector) classify(cycle []event.ObjID) (Report, bool) {
	// Collect the edges of the cycle.
	infos := make([]*edgeInfo, len(cycle))
	for i := range cycle {
		from := cycle[i]
		to := cycle[(i+1)%len(cycle)]
		info := d.edges[edge{from, to}]
		if info == nil {
			return Report{}, false
		}
		infos[i] = info
	}

	// Single-thread suppression: if every edge can be attributed to
	// one common thread, the cycle cannot deadlock (reentrancy).
	common := map[event.ThreadID]struct{}{}
	for t := range infos[0].threads {
		common[t] = struct{}{}
	}
	for _, info := range infos[1:] {
		for t := range common {
			if _, ok := info.threads[t]; !ok {
				delete(common, t)
			}
		}
	}
	multiThreaded := false
	if len(common) == 0 {
		multiThreaded = true
	} else {
		// A common thread exists; the cycle is real only if some edge
		// was ALSO taken by a different thread.
		for _, info := range infos {
			if len(info.threads) > 1 {
				multiThreaded = true
			}
		}
	}
	if !multiThreaded {
		return Report{}, false
	}

	// Gate-lock suppression: a lock held around every edge serializes
	// the acquisition sequences.
	gates := infos[0].gates
	for _, info := range infos[1:] {
		gates = gates.Intersect(info.gates)
	}
	if len(gates) > 0 {
		return Report{}, false
	}

	// Gather the contributing threads for the report.
	tset := map[event.ThreadID]struct{}{}
	for _, info := range infos {
		for t := range info.threads {
			tset[t] = struct{}{}
		}
	}
	threads := make([]event.ThreadID, 0, len(tset))
	for t := range tset {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i] < threads[j] })
	return Report{Cycle: cycle, Threads: threads}, true
}

// canonical renders a cycle rotation-independently.
func canonical(cycle []event.ObjID) string {
	// Rotate so the smallest lock leads.
	min := 0
	for i, l := range cycle {
		if l < cycle[min] {
			min = i
		}
	}
	parts := make([]string, len(cycle))
	for i := range cycle {
		parts[i] = cycle[(min+i)%len(cycle)].String()
	}
	return strings.Join(parts, ">")
}

// EdgeCount reports the number of distinct lock-order edges observed.
func (d *Detector) EdgeCount() int { return len(d.edges) }
