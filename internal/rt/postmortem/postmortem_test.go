package postmortem

import (
	"strings"
	"testing"

	"racedet/internal/rt/detector"
	"racedet/internal/rt/event"
)

// drive sends a small scenario through a sink: main starts two
// children that write the same location without locks (a race), plus
// one lock-protected location (quiet).
func drive(s event.Sink) {
	s.ThreadStarted(0, event.NoThread)
	s.ThreadStarted(1, 0)
	s.ThreadStarted(2, 0)
	loc := event.Loc{Obj: 10, Slot: 0}
	safe := event.Loc{Obj: 20, Slot: 1}
	s.Access(event.Access{Loc: loc, Thread: 0, Kind: event.Write, FieldName: "D.f"})
	s.Access(event.Access{Loc: loc, Thread: 1, Kind: event.Write, FieldName: "D.f"})
	s.Access(event.Access{Loc: loc, Thread: 2, Kind: event.Write, FieldName: "D.f"})
	for _, t := range []event.ThreadID{1, 2} {
		s.MonitorEnter(t, 100, 1)
		s.MonitorEnter(t, 100, 2)
		s.MonitorExit(t, 100, 1)
		s.Access(event.Access{Loc: safe, Thread: t, Kind: event.Write, FieldName: "D.g"})
		s.MonitorExit(t, 100, 0)
	}
	s.ThreadFinished(1)
	s.ThreadFinished(2)
	s.Joined(0, 1)
	s.Joined(0, 2)
	s.Access(event.Access{Loc: safe, Thread: 0, Kind: event.Read, FieldName: "D.g"})
}

func record(t *testing.T) string {
	t.Helper()
	var buf strings.Builder
	rec := NewRecorder(&buf)
	drive(rec)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRecordReplayRoundTrip(t *testing.T) {
	log := record(t)

	// Replaying into a second recorder reproduces the log verbatim.
	var buf2 strings.Builder
	rec2 := NewRecorder(&buf2)
	n, err := Replay(strings.NewReader(log), rec2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec2.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != log {
		t.Fatalf("round trip differs:\n--- original ---\n%s--- replayed ---\n%s", log, buf2.String())
	}
	if n == 0 {
		t.Fatal("no events replayed")
	}
}

func TestOfflineDetectionMatchesOnline(t *testing.T) {
	// On-line: drive the detector directly.
	online := detector.New(detector.Options{})
	drive(online)

	// Off-line: record, then replay into a fresh detector.
	log := record(t)
	offline := detector.New(detector.Options{})
	if _, err := Replay(strings.NewReader(log), offline); err != nil {
		t.Fatal(err)
	}

	or, fr := online.Reports(), offline.Reports()
	if len(or) != len(fr) {
		t.Fatalf("online %d reports, offline %d", len(or), len(fr))
	}
	for i := range or {
		if or[i].Access.Loc != fr[i].Access.Loc || or[i].Access.Thread != fr[i].Access.Thread {
			t.Errorf("report %d differs: %v vs %v", i, or[i], fr[i])
		}
	}
	if len(or) != 1 {
		t.Fatalf("scenario should race once, got %d", len(or))
	}
}

func TestFullRaceReconstruction(t *testing.T) {
	log := record(t)
	pairs, err := FullRace(strings.NewReader(log), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The racy location sees writes by T0 (pre-start: races with both
	// children? T0's write is before the children start, but the log
	// has no ownership model — FullRace is the raw §2.4 definition
	// with pseudolocks: T0 holds only S0, children hold S1/S2, so all
	// three writes mutually race) → pairs: (T0,T1), (T0,T2), (T1,T2).
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3:\n%v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.First.Loc != (event.Loc{Obj: 10, Slot: 0}) {
			t.Errorf("unexpected racing location %v", p.First.Loc)
		}
		if p.First.Thread == p.Second.Thread {
			t.Errorf("pair within one thread: %v", p)
		}
	}
	// The locked location must produce no pairs: children share lock
	// 100, and the parent's read is covered by the join pseudolocks.
	for _, p := range pairs {
		if p.First.FieldName == "D.g" {
			t.Errorf("lock-protected location reconstructed as racy: %v", p)
		}
	}
}

func TestFullRaceMaxPairs(t *testing.T) {
	log := record(t)
	pairs, err := FullRace(strings.NewReader(log), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("maxPairs not honored: %d", len(pairs))
	}
}

func TestReplayMalformedLines(t *testing.T) {
	bad := []string{
		"X 1 2",
		"S 1",
		"A 1 2",
		"+ 1 2",
		"A a b c R f -",
		"A 1 2 3 Q f -",
	}
	for _, line := range bad {
		if _, err := Replay(strings.NewReader(line+"\n"), event.NullSink{}); err == nil {
			t.Errorf("no error for %q", line)
		}
	}
	// Blank lines and comments are fine.
	if _, err := Replay(strings.NewReader("\n# comment\nS 0 -1\n"), event.NullSink{}); err != nil {
		t.Errorf("comment handling: %v", err)
	}
}

func TestPosRoundTrip(t *testing.T) {
	var buf strings.Builder
	rec := NewRecorder(&buf)
	rec.ThreadStarted(0, event.NoThread)
	rec.Access(event.Access{
		Loc: event.Loc{Obj: 1, Slot: 0}, Thread: 0, Kind: event.Write,
		FieldName: "A.f",
		Pos:       parsePos("dir/prog.mj:12:5"),
	})
	rec.Flush()

	got := []event.Access{}
	sink := &captureSink{accesses: &got}
	if _, err := Replay(strings.NewReader(buf.String()), sink); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("accesses = %d", len(got))
	}
	if got[0].Pos.File != "dir/prog.mj" || got[0].Pos.Line != 12 || got[0].Pos.Col != 5 {
		t.Errorf("pos = %+v", got[0].Pos)
	}
}

type captureSink struct {
	event.NullSink
	accesses *[]event.Access
}

func (c *captureSink) Access(a event.Access) { *c.accesses = append(*c.accesses, a) }
