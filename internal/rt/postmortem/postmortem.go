// Package postmortem implements the paper's §1 remark that the
// approach "could be easily modified to perform post-mortem datarace
// detection by creating a log of access events during program
// execution and performing the final datarace detection phase
// off-line", and §2.6's note that the expensive reconstruction of
// FullRace can run during replay.
//
// A Recorder is an event.Sink that serializes the runtime event stream
// to an io.Writer in a compact line format. Replay feeds a recorded
// log back into any event.Sink (e.g. the full detector, or a baseline)
// off-line, and FullRace reconstructs every racing access pair — the
// O(N²) analysis the on-the-fly detector deliberately avoids
// (§2.5) — from the log.
package postmortem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"racedet/internal/lang/token"
	"racedet/internal/rt/event"
)

// Recorder logs every runtime event. The format is line-oriented and
// human-readable:
//
//	S <child> <parent>           thread started
//	F <thread>                   thread finished
//	J <joiner> <joinee>          join completed
//	+ <thread> <lock> <depth>    monitor enter
//	- <thread> <lock> <depth>    monitor exit
//	A <thread> <obj> <slot> <R|W> <field> <pos>
type Recorder struct {
	w   *bufio.Writer
	err error
	n   uint64
}

var _ event.Sink = (*Recorder)(nil)

// NewRecorder wraps w; call Flush when the execution ends.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriter(w)}
}

// Flush drains buffered log lines and reports any write error.
func (r *Recorder) Flush() error {
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

// Events returns the number of events recorded.
func (r *Recorder) Events() uint64 { return r.n }

func (r *Recorder) emit(format string, args ...interface{}) {
	if r.err != nil {
		return
	}
	r.n++
	if _, err := fmt.Fprintf(r.w, format+"\n", args...); err != nil {
		r.err = err
	}
}

// ThreadStarted implements event.Sink.
func (r *Recorder) ThreadStarted(child, parent event.ThreadID) {
	r.emit("S %d %d", child, parent)
}

// ThreadFinished implements event.Sink.
func (r *Recorder) ThreadFinished(t event.ThreadID) { r.emit("F %d", t) }

// Joined implements event.Sink.
func (r *Recorder) Joined(joiner, joinee event.ThreadID) { r.emit("J %d %d", joiner, joinee) }

// MonitorEnter implements event.Sink.
func (r *Recorder) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	r.emit("+ %d %d %d", t, lock, depth)
}

// MonitorExit implements event.Sink.
func (r *Recorder) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	r.emit("- %d %d %d", t, lock, depth)
}

// Access implements event.Sink.
func (r *Recorder) Access(a event.Access) {
	k := "R"
	if a.Kind == event.Write {
		k = "W"
	}
	field := a.FieldName
	if field == "" {
		field = "-"
	}
	pos := a.Pos.String()
	r.emit("A %d %d %d %s %s %s", a.Thread, a.Loc.Obj, a.Loc.Slot, k, field, pos)
}

// ---------------------------------------------------------------------------
// Replay

// Replay parses a recorded log and feeds every event into sink,
// returning the number of events replayed.
func Replay(r io.Reader, sink event.Sink) (uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var n uint64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		bad := func() (uint64, error) {
			return n, fmt.Errorf("postmortem: malformed log line %d: %q", line, text)
		}
		atoi := func(s string) (int64, bool) {
			v, err := strconv.ParseInt(s, 10, 64)
			return v, err == nil
		}
		switch fields[0] {
		case "S":
			if len(fields) != 3 {
				return bad()
			}
			c, ok1 := atoi(fields[1])
			p, ok2 := atoi(fields[2])
			if !ok1 || !ok2 {
				return bad()
			}
			sink.ThreadStarted(event.ThreadID(c), event.ThreadID(p))
		case "F":
			if len(fields) != 2 {
				return bad()
			}
			t, ok := atoi(fields[1])
			if !ok {
				return bad()
			}
			sink.ThreadFinished(event.ThreadID(t))
		case "J":
			if len(fields) != 3 {
				return bad()
			}
			a, ok1 := atoi(fields[1])
			b, ok2 := atoi(fields[2])
			if !ok1 || !ok2 {
				return bad()
			}
			sink.Joined(event.ThreadID(a), event.ThreadID(b))
		case "+", "-":
			if len(fields) != 4 {
				return bad()
			}
			t, ok1 := atoi(fields[1])
			l, ok2 := atoi(fields[2])
			d, ok3 := atoi(fields[3])
			if !ok1 || !ok2 || !ok3 {
				return bad()
			}
			if fields[0] == "+" {
				sink.MonitorEnter(event.ThreadID(t), event.ObjID(l), int(d))
			} else {
				sink.MonitorExit(event.ThreadID(t), event.ObjID(l), int(d))
			}
		case "A":
			if len(fields) < 6 {
				return bad()
			}
			t, ok1 := atoi(fields[1])
			o, ok2 := atoi(fields[2])
			s, ok3 := atoi(fields[3])
			if !ok1 || !ok2 || !ok3 {
				return bad()
			}
			kind := event.Read
			switch fields[4] {
			case "R":
			case "W":
				kind = event.Write
			default:
				return bad()
			}
			fieldName := fields[5]
			if fieldName == "-" {
				fieldName = ""
			}
			var pos token.Pos
			if len(fields) >= 7 {
				pos = parsePos(fields[6])
			}
			sink.Access(event.Access{
				Loc:       event.Loc{Obj: event.ObjID(o), Slot: int32(s)},
				Thread:    event.ThreadID(t),
				Kind:      kind,
				FieldName: fieldName,
				Pos:       pos,
			})
		default:
			return bad()
		}
		n++
	}
	return n, sc.Err()
}

// parsePos parses file:line:col (best effort; "-" yields a zero Pos).
func parsePos(s string) token.Pos {
	if s == "-" {
		return token.Pos{}
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return token.Pos{}
	}
	col := 0
	line := 0
	var file string
	if len(parts) >= 3 {
		file = strings.Join(parts[:len(parts)-2], ":")
		line, _ = strconv.Atoi(parts[len(parts)-2])
		col, _ = strconv.Atoi(parts[len(parts)-1])
	} else {
		line, _ = strconv.Atoi(parts[0])
		col, _ = strconv.Atoi(parts[1])
	}
	return token.Pos{File: file, Line: int32(line), Col: int32(col)}
}

// ---------------------------------------------------------------------------
// FullRace reconstruction

// RacePair is one element of FullRace: two accesses that satisfy
// IsRace.
type RacePair struct {
	First  event.Access
	Second event.Access
}

func (p RacePair) String() string {
	return fmt.Sprintf("%s  <races with>  %s", p.First, p.Second)
}

// FullRace replays a recorded log and reconstructs every racing access
// pair, the O(N²) set the on-the-fly detector deliberately summarizes
// to one report per location (§2.5). Locksets are reconstructed from
// the recorded monitor and lifecycle events, including the join
// pseudolocks. maxPairs bounds the output (0 = unlimited).
func FullRace(r io.Reader, maxPairs int) ([]RacePair, error) {
	collector := &fullRaceSink{
		locks:    event.NewLockTrackerInterned(event.NewInterner()),
		history:  make(map[event.Loc][]event.Access),
		maxPairs: maxPairs,
	}
	if _, err := Replay(r, collector); err != nil {
		return nil, err
	}
	return collector.pairs, nil
}

type fullRaceSink struct {
	locks    *event.LockTracker
	history  map[event.Loc][]event.Access
	pairs    []RacePair
	maxPairs int
}

func (f *fullRaceSink) ThreadStarted(c, p event.ThreadID) { f.locks.ThreadStarted(c, p) }
func (f *fullRaceSink) ThreadFinished(t event.ThreadID)   { f.locks.ThreadFinished(t) }
func (f *fullRaceSink) Joined(a, b event.ThreadID)        { f.locks.Joined(a, b) }
func (f *fullRaceSink) MonitorEnter(t event.ThreadID, l event.ObjID, d int) {
	f.locks.MonitorEnter(t, l, d)
}
func (f *fullRaceSink) MonitorExit(t event.ThreadID, l event.ObjID, d int) {
	f.locks.MonitorExit(t, l, d)
}

func (f *fullRaceSink) Access(a event.Access) {
	// The interned tracker hands out immutable canonical locksets, so
	// the access can keep a reference without copying; every identical
	// lockset in the history then shares one backing array.
	a.Locks = f.locks.Held(a.Thread)
	for _, prev := range f.history[a.Loc] {
		if event.IsRace(prev, a) {
			if f.maxPairs > 0 && len(f.pairs) >= f.maxPairs {
				return
			}
			f.pairs = append(f.pairs, RacePair{First: prev, Second: a})
		}
	}
	f.history[a.Loc] = append(f.history[a.Loc], a)
}
