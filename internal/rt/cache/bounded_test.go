package cache

import (
	"testing"

	"racedet/internal/rt/event"
)

func TestBoundedEvictsLRUThreadCache(t *testing.T) {
	c := NewBounded(2)
	loc := event.Loc{Obj: 1, Slot: 0}

	// Warm threads 1 and 2; thread 2 touched most recently.
	c.Insert(1, loc, event.Read, 0, false)
	c.Insert(2, loc, event.Read, 0, false)
	if !c.Lookup(1, loc, event.Read) || !c.Lookup(2, loc, event.Read) {
		t.Fatal("warm entries must hit")
	}

	// Thread 3 arrives: the LRU thread (1, touched before 2's lookup)
	// must be evicted; 2 and 3 survive.
	c.Insert(3, loc, event.Write, 0, false)
	if c.Stats().ThreadEvictions != 1 {
		t.Fatalf("ThreadEvictions = %d, want 1", c.Stats().ThreadEvictions)
	}
	if c.Lookup(1, loc, event.Read) {
		t.Error("thread 1's cache should have been discarded")
	}
	if !c.Lookup(2, loc, event.Read) {
		t.Error("thread 2's cache was evicted although it was not LRU")
	}
	if !c.Lookup(3, loc, event.Write) {
		t.Error("newest thread's entry lost")
	}
}

func TestBoundedEvictionOnlyLosesFiltering(t *testing.T) {
	// After eviction the thread's accesses simply miss again — the
	// caller forwards them to the detector and re-inserts, so no state
	// is corrupted.
	c := NewBounded(1)
	loc := event.Loc{Obj: 7, Slot: 2}
	c.Insert(1, loc, event.Read, 0, false)
	c.Insert(2, loc, event.Read, 0, false) // evicts thread 1
	if c.Lookup(1, loc, event.Read) {
		t.Fatal("stale hit after eviction")
	}
	c.Insert(1, loc, event.Read, 0, false) // re-inserting works (evicts 2)
	if !c.Lookup(1, loc, event.Read) {
		t.Fatal("re-inserted entry must hit")
	}
}

func TestBoundedThreadFinishedKeepsAccounting(t *testing.T) {
	c := NewBounded(2)
	loc := event.Loc{Obj: 1, Slot: 0}
	c.Insert(1, loc, event.Read, 0, false)
	c.Insert(2, loc, event.Read, 0, false)
	c.ThreadFinished(1)
	// With thread 1 retired, thread 3 fits without evicting thread 2.
	c.Insert(3, loc, event.Read, 0, false)
	if c.Stats().ThreadEvictions != 0 {
		t.Fatalf("eviction fired with a free slot: %+v", c.Stats())
	}
	if !c.Lookup(2, loc, event.Read) || !c.Lookup(3, loc, event.Read) {
		t.Error("live threads lost their caches")
	}
}

func TestUnboundedNeverEvictsThreads(t *testing.T) {
	c := New()
	loc := event.Loc{Obj: 1, Slot: 0}
	for th := event.ThreadID(0); th < 64; th++ {
		c.Insert(th, loc, event.Read, 0, false)
	}
	if c.Stats().ThreadEvictions != 0 {
		t.Fatalf("unbounded cache evicted threads: %+v", c.Stats())
	}
	for th := event.ThreadID(0); th < 64; th++ {
		if !c.Lookup(th, loc, event.Read) {
			t.Fatalf("thread %d lost its entry", th)
		}
	}
}
