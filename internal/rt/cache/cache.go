// Package cache implements the runtime optimizer of §4: per-thread
// direct-mapped caches that filter access events before they reach the
// trie detector.
//
// Each thread owns two caches — one for reads, one for writes —
// indexed by memory location. The design guarantees the §4.2 policy:
// if a lookup hits, the cached access p is weaker than the incoming
// access q:
//
//   - p.t = q.t because caches are per-thread;
//   - p.a = q.a because reads and writes use separate caches;
//   - p.L ⊆ q.L because every entry is evicted when any lock in its
//     lockset is released. The eviction exploits MJ's (and Java's)
//     nested locking discipline: an entry is linked onto the eviction
//     list of the lock that was most recently acquired when the entry
//     was created ("last in, first out"), so releasing a lock evicts
//     exactly the entries whose locksets contain it.
//
// Entries therefore store no thread, kind, or lockset at all — just
// the location — mirroring the paper's ten-instruction hit path.
package cache

import "racedet/internal/rt/event"

// Size is the number of entries per direct-mapped cache, matching the
// paper's 256-entry configuration.
const Size = 256

// entry is one cache slot. Entries form doubly-linked per-lock
// eviction lists so both lock-release eviction and conflict eviction
// are O(1) per entry.
type entry struct {
	loc   event.Loc
	valid bool
	lock  event.ObjID // owning eviction list; hasLock distinguishes "no locks held"
	hasL  bool
	prev  *entry
	next  *entry
}

// unlink removes the entry from its eviction list.
func (e *entry) unlink() {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	e.prev, e.next = nil, nil
}

// threadCache is the pair of direct-mapped caches for one thread plus
// its per-lock eviction lists.
type threadCache struct {
	read  [Size]entry
	write [Size]entry
	// lists maps a lock to the head of its eviction list. Heads are
	// dummy-free: the map points straight at the first entry.
	lists map[event.ObjID]*entry
	// lastUse is the logical time of the thread's most recent cache
	// operation; the bounded mode evicts the least recently used
	// thread cache when over budget.
	lastUse uint64
}

func newThreadCache() *threadCache {
	return &threadCache{lists: make(map[event.ObjID]*entry)}
}

// Stats counts cache work for the Table 2 harness.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // entries evicted by lock release or conflicts
	// ThreadEvictions counts whole per-thread caches discarded by the
	// bounded mode. Dropping a cache only loses filtering — the next
	// accesses miss and flow to the detector — so degradation costs
	// time, never a race.
	ThreadEvictions uint64
}

// Cache is the runtime optimizer: all threads' caches plus the policy
// hooks that keep them sound. Thread IDs are small dense ints, so the
// per-thread caches live in a slice — the lookup path stays a handful
// of instructions, mirroring the paper's ten-instruction hit path.
type Cache struct {
	threads []*threadCache
	stats   Stats

	// maxThreads caps live per-thread caches (0 = unbounded); tick is
	// the logical clock driving LRU eviction, live the current count.
	maxThreads int
	tick       uint64
	live       int
}

// New returns an empty cache layer.
func New() *Cache {
	return &Cache{}
}

// NewBounded returns a cache layer holding at most maxThreads live
// per-thread caches. When a new thread would exceed the budget, the
// least recently used thread's caches are discarded wholesale: that
// thread's next accesses simply miss and reach the detector, so the
// degradation is pure filtering loss — strictly more detector work,
// never a missed race.
func NewBounded(maxThreads int) *Cache {
	return &Cache{maxThreads: maxThreads}
}

// Stats returns a copy of the work counters.
func (c *Cache) Stats() Stats { return c.stats }

// Clone returns a deep copy of the cache layer for checkpointing. The
// eviction-list pointers of each thread cache point at entries inside
// that cache's own arrays, so cloning remaps them array-index-wise.
func (c *Cache) Clone() *Cache {
	nc := &Cache{
		threads:    make([]*threadCache, len(c.threads)),
		stats:      c.stats,
		maxThreads: c.maxThreads,
		tick:       c.tick,
		live:       c.live,
	}
	for i, tc := range c.threads {
		if tc != nil {
			nc.threads[i] = tc.clone()
		}
	}
	return nc
}

func (tc *threadCache) clone() *threadCache {
	nt := &threadCache{
		read:    tc.read,
		write:   tc.write,
		lastUse: tc.lastUse,
		lists:   make(map[event.ObjID]*entry, len(tc.lists)),
	}
	// Entry pointers (prev/next and list heads) always target entries
	// embedded in this thread cache's read/write arrays; map each old
	// address to its same-index counterpart in the copy (nil → nil).
	remap := make(map[*entry]*entry, 2*Size)
	for i := range tc.read {
		remap[&tc.read[i]] = &nt.read[i]
		remap[&tc.write[i]] = &nt.write[i]
	}
	for i := range nt.read {
		nt.read[i].prev = remap[nt.read[i].prev]
		nt.read[i].next = remap[nt.read[i].next]
		nt.write[i].prev = remap[nt.write[i].prev]
		nt.write[i].next = remap[nt.write[i].next]
	}
	for lock, head := range tc.lists {
		nt.lists[lock] = remap[head]
	}
	return nt
}

// index is the direct-mapped hash: multiply by a odd constant and take
// the upper bits (the paper multiplies the 32-bit address by a
// constant and keeps the upper 16 bits; we fold object ID and slot).
func index(loc event.Loc) int {
	h := uint64(loc.Obj)*0x9E3779B97F4A7C15 + uint64(uint32(loc.Slot))*0x85EBCA6B
	return int(h>>48) & (Size - 1)
}

func (c *Cache) forThread(t event.ThreadID) *threadCache {
	i := int(t)
	for i >= len(c.threads) {
		c.threads = append(c.threads, nil)
	}
	tc := c.threads[i]
	if tc == nil {
		tc = newThreadCache()
		c.threads[i] = tc
		c.live++
		if c.maxThreads > 0 && c.live > c.maxThreads {
			c.evictLRU(i)
		}
	}
	c.tick++
	tc.lastUse = c.tick
	return tc
}

// evictLRU discards the least recently used thread cache other than
// keep. Index order breaks lastUse ties, so eviction is deterministic.
func (c *Cache) evictLRU(keep int) {
	victim := -1
	for i, tc := range c.threads {
		if tc == nil || i == keep {
			continue
		}
		if victim == -1 || tc.lastUse < c.threads[victim].lastUse {
			victim = i
		}
	}
	if victim >= 0 {
		c.threads[victim] = nil
		c.live--
		c.stats.ThreadEvictions++
	}
}

// Lookup checks whether a weaker access for (t, loc, kind) is cached.
// On a hit the caller may discard the access entirely. On a miss the
// caller must forward the access to the detector and then call Insert.
func (c *Cache) Lookup(t event.ThreadID, loc event.Loc, kind event.Kind) bool {
	// A thread with no cache yet trivially misses; don't allocate one
	// here (in bounded mode that could even evict another thread), the
	// Insert after the detector call will.
	if i := int(t); i < len(c.threads) && c.threads[i] != nil {
		tc := c.threads[i]
		c.tick++
		tc.lastUse = c.tick
		e := tc.slot(loc, kind)
		if e.valid && e.loc == loc {
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

func (tc *threadCache) slot(loc event.Loc, kind event.Kind) *entry {
	if kind == event.Write {
		return &tc.write[index(loc)]
	}
	return &tc.read[index(loc)]
}

// Insert records the access in t's cache. top is the most recently
// acquired lock currently held by t (ok=false when t holds no locks);
// the entry joins that lock's eviction list, which under nested
// locking guarantees the entry dies no later than the first release of
// any lock in its lockset.
func (c *Cache) Insert(t event.ThreadID, loc event.Loc, kind event.Kind, top event.ObjID, ok bool) {
	tc := c.forThread(t)
	e := tc.slot(loc, kind)
	if e.valid {
		// Conflict eviction: drop the previous occupant from its list.
		if e.hasL && tc.lists[e.lock] == e {
			tc.lists[e.lock] = e.next
		}
		e.unlink()
		c.stats.Evictions++
	}
	e.loc = loc
	e.valid = true
	e.hasL = ok
	e.prev, e.next = nil, nil
	if ok {
		e.lock = top
		head := tc.lists[top]
		if head != nil {
			e.next = head
			head.prev = e
		}
		tc.lists[top] = e
	} else {
		e.lock = 0
	}
}

// LockReleased evicts every entry of thread t whose lockset contains
// lock. Thanks to the LIFO discipline these are exactly the entries on
// lock's eviction list.
func (c *Cache) LockReleased(t event.ThreadID, lock event.ObjID) {
	if int(t) >= len(c.threads) {
		return
	}
	tc := c.threads[t]
	if tc == nil {
		return
	}
	e := tc.lists[lock]
	for e != nil {
		next := e.next
		e.valid = false
		e.prev, e.next = nil, nil
		c.stats.Evictions++
		e = next
	}
	delete(tc.lists, lock)
}

// EvictLocation removes loc from every thread's caches (both kinds).
// The ownership model calls this when a location transitions from
// owned to shared (§7.2): entries cached while the location was owned
// no longer imply that a weaker access reached the detector.
func (c *Cache) EvictLocation(loc event.Loc) {
	for _, tc := range c.threads {
		if tc == nil {
			continue
		}
		for _, e := range []*entry{&tc.read[index(loc)], &tc.write[index(loc)]} {
			if e.valid && e.loc == loc {
				if e.hasL && tc.lists[e.lock] == e {
					tc.lists[e.lock] = e.next
				}
				e.unlink()
				e.valid = false
				c.stats.Evictions++
			}
		}
	}
}

// ThreadFinished discards the thread's caches.
func (c *Cache) ThreadFinished(t event.ThreadID) {
	if int(t) < len(c.threads) {
		if c.threads[t] != nil {
			c.live--
		}
		c.threads[t] = nil
	}
}
