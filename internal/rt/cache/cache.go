// Package cache implements the runtime optimizer of §4: per-thread
// direct-mapped caches that filter access events before they reach the
// trie detector.
//
// Each thread owns two caches — one for reads, one for writes —
// indexed by memory location. The design guarantees the §4.2 policy:
// if a lookup hits, the cached access p is weaker than the incoming
// access q:
//
//   - p.t = q.t because caches are per-thread;
//   - p.a = q.a because reads and writes use separate caches;
//   - p.L ⊆ q.L because every entry is evicted when any lock in its
//     lockset is released. The eviction exploits MJ's (and Java's)
//     nested locking discipline: an entry is linked onto the eviction
//     list of the lock that was most recently acquired when the entry
//     was created ("last in, first out"), so releasing a lock evicts
//     exactly the entries whose locksets contain it.
//
// Entries therefore store no thread, kind, or lockset at all — just
// the location — mirroring the paper's ten-instruction hit path.
package cache

import "racedet/internal/rt/event"

// Size is the number of entries per direct-mapped cache, matching the
// paper's 256-entry configuration.
const Size = 256

// entry is one cache slot. Entries form doubly-linked per-lock
// eviction lists so both lock-release eviction and conflict eviction
// are O(1) per entry. Links are 1-based indices into the owning
// threadCache's slots array (0 = none) rather than pointers: the
// arrays stay pointer-free, so the GC never scans them, link updates
// need no write barrier, and a zeroed threadCache is already fully
// initialized — which is what makes constructing one per thread (and
// per replay) cheap.
type entry struct {
	loc   event.Loc
	lock  event.ObjID // owning eviction list; hasL distinguishes "no locks held"
	prev  int32       // 1-based slots index; 0 = list end
	next  int32
	valid bool
	hasL  bool
}

// threadCache is the pair of direct-mapped caches for one thread plus
// its per-lock eviction lists. slots[:Size] is the read cache,
// slots[Size:] the write cache.
type threadCache struct {
	slots [2 * Size]entry
	// lists maps a lock to the 1-based slots index of its eviction
	// list head (0/absent = empty). Heads are dummy-free.
	lists map[event.ObjID]int32
	// lastUse is the logical time of the thread's most recent cache
	// operation; the bounded mode evicts the least recently used
	// thread cache when over budget.
	lastUse uint64
}

// unlink removes slot i from its eviction list (not from the map —
// callers fix the head first when i is the head).
func (tc *threadCache) unlink(i int32) {
	e := &tc.slots[i-1]
	if e.prev != 0 {
		tc.slots[e.prev-1].next = e.next
	}
	if e.next != 0 {
		tc.slots[e.next-1].prev = e.prev
	}
	e.prev, e.next = 0, 0
}

func newThreadCache() *threadCache {
	return &threadCache{lists: make(map[event.ObjID]int32)}
}

// Stats counts cache work for the Table 2 harness.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // entries evicted by lock release or conflicts
	// ThreadEvictions counts whole per-thread caches discarded by the
	// bounded mode. Dropping a cache only loses filtering — the next
	// accesses miss and flow to the detector — so degradation costs
	// time, never a race.
	ThreadEvictions uint64
}

// Cache is the runtime optimizer: all threads' caches plus the policy
// hooks that keep them sound. Thread IDs are small dense ints, so the
// per-thread caches live in a slice — the lookup path stays a handful
// of instructions, mirroring the paper's ten-instruction hit path.
type Cache struct {
	threads []*threadCache
	stats   Stats

	// maxThreads caps live per-thread caches (0 = unbounded); tick is
	// the logical clock driving LRU eviction, live the current count.
	maxThreads int
	tick       uint64
	live       int
}

// New returns an empty cache layer.
func New() *Cache {
	return &Cache{}
}

// NewBounded returns a cache layer holding at most maxThreads live
// per-thread caches. When a new thread would exceed the budget, the
// least recently used thread's caches are discarded wholesale: that
// thread's next accesses simply miss and reach the detector, so the
// degradation is pure filtering loss — strictly more detector work,
// never a missed race.
func NewBounded(maxThreads int) *Cache {
	return &Cache{maxThreads: maxThreads}
}

// Stats returns a copy of the work counters.
func (c *Cache) Stats() Stats { return c.stats }

// Clone returns a deep copy of the cache layer for checkpointing.
// Eviction-list links are slot indices local to each thread cache, so
// the per-thread copies are plain struct copies plus a map copy.
func (c *Cache) Clone() *Cache {
	nc := &Cache{
		threads:    make([]*threadCache, len(c.threads)),
		stats:      c.stats,
		maxThreads: c.maxThreads,
		tick:       c.tick,
		live:       c.live,
	}
	for i, tc := range c.threads {
		if tc != nil {
			nc.threads[i] = tc.clone()
		}
	}
	return nc
}

func (tc *threadCache) clone() *threadCache {
	// Links are slot indices, not pointers, so a struct copy of the
	// arrays is already a correct deep copy; only the map needs work.
	nt := &threadCache{
		slots:   tc.slots,
		lastUse: tc.lastUse,
		lists:   make(map[event.ObjID]int32, len(tc.lists)),
	}
	for lock, head := range tc.lists {
		nt.lists[lock] = head
	}
	return nt
}

// index is the direct-mapped hash: multiply by a odd constant and take
// the upper bits (the paper multiplies the 32-bit address by a
// constant and keeps the upper 16 bits; we fold object ID and slot).
func index(loc event.Loc) int {
	h := uint64(loc.Obj)*0x9E3779B97F4A7C15 + uint64(uint32(loc.Slot))*0x85EBCA6B
	return int(h>>48) & (Size - 1)
}

func (c *Cache) forThread(t event.ThreadID) *threadCache {
	i := int(t)
	for i >= len(c.threads) {
		c.threads = append(c.threads, nil)
	}
	tc := c.threads[i]
	if tc == nil {
		tc = newThreadCache()
		c.threads[i] = tc
		c.live++
		if c.maxThreads > 0 && c.live > c.maxThreads {
			c.evictLRU(i)
		}
	}
	c.tick++
	tc.lastUse = c.tick
	return tc
}

// evictLRU discards the least recently used thread cache other than
// keep. Index order breaks lastUse ties, so eviction is deterministic.
func (c *Cache) evictLRU(keep int) {
	victim := -1
	for i, tc := range c.threads {
		if tc == nil || i == keep {
			continue
		}
		if victim == -1 || tc.lastUse < c.threads[victim].lastUse {
			victim = i
		}
	}
	if victim >= 0 {
		c.threads[victim] = nil
		c.live--
		c.stats.ThreadEvictions++
	}
}

// Lookup checks whether a weaker access for (t, loc, kind) is cached.
// On a hit the caller may discard the access entirely. On a miss the
// caller must forward the access to the detector and then call Insert.
func (c *Cache) Lookup(t event.ThreadID, loc event.Loc, kind event.Kind) bool {
	// A thread with no cache yet trivially misses; don't allocate one
	// here (in bounded mode that could even evict another thread), the
	// Insert after the detector call will.
	if i := int(t); i < len(c.threads) && c.threads[i] != nil {
		tc := c.threads[i]
		c.tick++
		tc.lastUse = c.tick
		e := tc.slot(loc, kind)
		if e.valid && e.loc == loc {
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// slotIdx returns the 1-based slots index for (loc, kind).
func (tc *threadCache) slotIdx(loc event.Loc, kind event.Kind) int32 {
	i := int32(index(loc)) + 1
	if kind == event.Write {
		i += Size
	}
	return i
}

func (tc *threadCache) slot(loc event.Loc, kind event.Kind) *entry {
	return &tc.slots[tc.slotIdx(loc, kind)-1]
}

// Insert records the access in t's cache. top is the most recently
// acquired lock currently held by t (ok=false when t holds no locks);
// the entry joins that lock's eviction list, which under nested
// locking guarantees the entry dies no later than the first release of
// any lock in its lockset.
func (c *Cache) Insert(t event.ThreadID, loc event.Loc, kind event.Kind, top event.ObjID, ok bool) {
	tc := c.forThread(t)
	i := tc.slotIdx(loc, kind)
	e := &tc.slots[i-1]
	if e.valid {
		// Conflict eviction: drop the previous occupant from its list.
		if e.hasL && tc.lists[e.lock] == i {
			tc.lists[e.lock] = e.next
		}
		tc.unlink(i)
		c.stats.Evictions++
	}
	e.loc = loc
	e.valid = true
	e.hasL = ok
	e.prev, e.next = 0, 0
	if ok {
		e.lock = top
		if head := tc.lists[top]; head != 0 {
			e.next = head
			tc.slots[head-1].prev = i
		}
		tc.lists[top] = i
	} else {
		e.lock = 0
	}
}

// LockReleased evicts every entry of thread t whose lockset contains
// lock. Thanks to the LIFO discipline these are exactly the entries on
// lock's eviction list.
func (c *Cache) LockReleased(t event.ThreadID, lock event.ObjID) {
	if int(t) >= len(c.threads) {
		return
	}
	tc := c.threads[t]
	if tc == nil {
		return
	}
	i := tc.lists[lock]
	for i != 0 {
		e := &tc.slots[i-1]
		next := e.next
		e.valid = false
		e.prev, e.next = 0, 0
		c.stats.Evictions++
		i = next
	}
	delete(tc.lists, lock)
}

// EvictLocation removes loc from every thread's caches (both kinds).
// The ownership model calls this when a location transitions from
// owned to shared (§7.2): entries cached while the location was owned
// no longer imply that a weaker access reached the detector.
func (c *Cache) EvictLocation(loc event.Loc) {
	ri := int32(index(loc)) + 1
	for _, tc := range c.threads {
		if tc == nil {
			continue
		}
		for _, i := range [2]int32{ri, ri + Size} {
			e := &tc.slots[i-1]
			if e.valid && e.loc == loc {
				if e.hasL && tc.lists[e.lock] == i {
					tc.lists[e.lock] = e.next
				}
				tc.unlink(i)
				e.valid = false
				c.stats.Evictions++
			}
		}
	}
}

// ThreadFinished discards the thread's caches.
func (c *Cache) ThreadFinished(t event.ThreadID) {
	if int(t) < len(c.threads) {
		if c.threads[t] != nil {
			c.live--
		}
		c.threads[t] = nil
	}
}
