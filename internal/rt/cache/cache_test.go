package cache

import (
	"math/rand"
	"testing"

	"racedet/internal/rt/event"
)

func loc(o int64, s int32) event.Loc { return event.Loc{Obj: event.ObjID(o), Slot: s} }

func TestHitAfterInsert(t *testing.T) {
	c := New()
	l := loc(1, 0)
	if c.Lookup(0, l, event.Read) {
		t.Fatal("empty cache cannot hit")
	}
	c.Insert(0, l, event.Read, 0, false)
	if !c.Lookup(0, l, event.Read) {
		t.Fatal("expected hit after insert")
	}
}

func TestReadWriteCachesSeparate(t *testing.T) {
	c := New()
	l := loc(1, 0)
	c.Insert(0, l, event.Read, 0, false)
	if c.Lookup(0, l, event.Write) {
		t.Fatal("a cached read must not satisfy a write lookup")
	}
	c.Insert(0, l, event.Write, 0, false)
	if !c.Lookup(0, l, event.Write) || !c.Lookup(0, l, event.Read) {
		t.Fatal("both kinds should now hit")
	}
}

func TestCachesArePerThread(t *testing.T) {
	c := New()
	l := loc(1, 0)
	c.Insert(0, l, event.Read, 0, false)
	if c.Lookup(1, l, event.Read) {
		t.Fatal("thread 1 must not see thread 0's entries")
	}
}

func TestLockReleaseEviction(t *testing.T) {
	c := New()
	l1, l2, l3 := loc(1, 0), loc(2, 0), loc(3, 0)
	// l1 cached with no locks; l2 under lock A; l3 under locks A,B
	// (B innermost).
	c.Insert(0, l1, event.Read, 0, false)
	c.Insert(0, l2, event.Read, 100, true)
	c.Insert(0, l3, event.Read, 200, true)
	// Releasing B evicts only l3.
	c.LockReleased(0, 200)
	if c.Lookup(0, l3, event.Read) {
		t.Fatal("l3 should be evicted by releasing its innermost lock")
	}
	if !c.Lookup(0, l2, event.Read) || !c.Lookup(0, l1, event.Read) {
		t.Fatal("l1/l2 must survive releasing B")
	}
	// Releasing A evicts l2; l1 (no locks) survives forever.
	c.LockReleased(0, 100)
	if c.Lookup(0, l2, event.Read) {
		t.Fatal("l2 should be evicted by releasing A")
	}
	if !c.Lookup(0, l1, event.Read) {
		t.Fatal("lock-free entries are never evicted by releases")
	}
}

func TestEvictLocationClearsAllThreads(t *testing.T) {
	c := New()
	l := loc(9, 2)
	c.Insert(0, l, event.Read, 0, false)
	c.Insert(1, l, event.Write, 100, true)
	c.EvictLocation(l)
	if c.Lookup(0, l, event.Read) || c.Lookup(1, l, event.Write) {
		t.Fatal("EvictLocation must clear every thread's entries")
	}
	// The eviction list must stay consistent: releasing the lock later
	// must not corrupt anything.
	c.LockReleased(1, 100)
	c.Insert(1, l, event.Write, 100, true)
	if !c.Lookup(1, l, event.Write) {
		t.Fatal("cache unusable after EvictLocation + LockReleased")
	}
}

func TestConflictEvictionUnlinks(t *testing.T) {
	c := New()
	// Craft two locations that collide in the direct-mapped index.
	base := loc(1, 0)
	idx := index(base)
	var clash event.Loc
	found := false
	for o := int64(2); o < 100000; o++ {
		clash = loc(o, 0)
		if index(clash) == idx {
			found = true
			break
		}
	}
	if !found {
		t.Skip("no colliding location found in range")
	}
	c.Insert(0, base, event.Read, 100, true)
	c.Insert(0, clash, event.Read, 100, true) // evicts base by conflict
	if c.Lookup(0, base, event.Read) {
		t.Fatal("conflict eviction failed")
	}
	if !c.Lookup(0, clash, event.Read) {
		t.Fatal("new entry missing")
	}
	// Release must evict clash and not crash on the unlinked base.
	c.LockReleased(0, 100)
	if c.Lookup(0, clash, event.Read) {
		t.Fatal("release eviction after conflict failed")
	}
}

func TestThreadFinishedDropsCaches(t *testing.T) {
	c := New()
	l := loc(1, 0)
	c.Insert(2, l, event.Read, 0, false)
	c.ThreadFinished(2)
	if c.Lookup(2, l, event.Read) {
		t.Fatal("finished thread's cache must be gone")
	}
}

// TestPolicyInvariant drives a random schedule of accesses and lock
// operations through the cache alongside a reference model and checks
// the §4.2 guarantee: whenever Lookup hits, the reference confirms a
// previous access with the same (thread, location, kind) whose lockset
// is a subset of the thread's current lockset.
func TestPolicyInvariant(t *testing.T) {
	type refEntry struct {
		loc   event.Loc
		kind  event.Kind
		locks event.Lockset
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		// Per-thread lock stacks (nested discipline) and reference logs.
		stacks := map[event.ThreadID][]event.ObjID{}
		logs := map[event.ThreadID][]refEntry{}

		heldSet := func(tid event.ThreadID) event.Lockset {
			return event.NewLockset(stacks[tid]...)
		}

		for step := 0; step < 3000; step++ {
			tid := event.ThreadID(rng.Intn(3))
			switch op := rng.Intn(10); {
			case op < 2: // acquire a lock (nested)
				lk := event.ObjID(100 + rng.Intn(5))
				already := false
				for _, l := range stacks[tid] {
					if l == lk {
						already = true
					}
				}
				if !already {
					stacks[tid] = append(stacks[tid], lk)
				}
			case op < 4: // release the innermost lock
				st := stacks[tid]
				if len(st) > 0 {
					lk := st[len(st)-1]
					stacks[tid] = st[:len(st)-1]
					c.LockReleased(tid, lk)
					// Reference: drop log entries whose locksets
					// contain the released lock.
					var kept []refEntry
					for _, e := range logs[tid] {
						if !e.locks.Contains(lk) {
							kept = append(kept, e)
						}
					}
					logs[tid] = kept
				}
			default: // access
				l := loc(int64(rng.Intn(6)+1), int32(rng.Intn(2)))
				kind := event.Read
				if rng.Intn(2) == 0 {
					kind = event.Write
				}
				if c.Lookup(tid, l, kind) {
					// Verify against the reference.
					ok := false
					cur := heldSet(tid)
					for _, e := range logs[tid] {
						if e.loc == l && e.kind == kind && e.locks.SubsetOf(cur) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("seed %d step %d: cache hit for %v/%v by %v not justified by any prior weaker access",
							seed, step, l, kind, tid)
					}
				} else {
					st := stacks[tid]
					if len(st) > 0 {
						c.Insert(tid, l, kind, st[len(st)-1], true)
					} else {
						c.Insert(tid, l, kind, 0, false)
					}
					logs[tid] = append(logs[tid], refEntry{loc: l, kind: kind, locks: heldSet(tid)})
				}
			}
		}
	}
}

func TestStatsCount(t *testing.T) {
	c := New()
	l := loc(1, 0)
	c.Lookup(0, l, event.Read)
	c.Insert(0, l, event.Read, 0, false)
	c.Lookup(0, l, event.Read)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}
