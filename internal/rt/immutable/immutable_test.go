package immutable

import (
	"testing"

	"racedet/internal/rt/event"
)

func acc(t event.ThreadID, obj int64, field string, k event.Kind) event.Access {
	return event.Access{
		Loc:       event.Loc{Obj: event.ObjID(obj), Slot: 0},
		Thread:    t,
		Kind:      k,
		FieldName: field,
	}
}

func TestInitOnlyPublishIsImmutable(t *testing.T) {
	d := New()
	// Main writes, children only read: the publish idiom.
	d.Access(acc(0, 1, "Q.capacity", event.Write))
	d.Access(acc(1, 1, "Q.capacity", event.Read))
	d.Access(acc(2, 1, "Q.capacity", event.Read))
	fields := d.ImmutableFields()
	if len(fields) != 1 || fields[0] != "Q.capacity" {
		t.Fatalf("immutable fields = %v", fields)
	}
}

func TestWriteAfterShareIsMutable(t *testing.T) {
	d := New()
	d.Access(acc(0, 1, "Q.count", event.Write))
	d.Access(acc(1, 1, "Q.count", event.Read))
	d.Access(acc(1, 1, "Q.count", event.Write)) // post-share write
	reports := d.Reports()
	if len(reports) != 1 || reports[0].ObservedImmutable() {
		t.Fatalf("reports = %v", reports)
	}
}

func TestOwnerRewriteBeforeShareStaysImmutable(t *testing.T) {
	d := New()
	// The owner may write many times before publication.
	d.Access(acc(0, 1, "Q.cfg", event.Write))
	d.Access(acc(0, 1, "Q.cfg", event.Write))
	d.Access(acc(1, 1, "Q.cfg", event.Read))
	if len(d.ImmutableFields()) != 1 {
		t.Fatal("pre-share rewrites must not disqualify")
	}
}

func TestSecondThreadWriteOnFirstContact(t *testing.T) {
	d := New()
	d.Access(acc(0, 1, "Q.x", event.Read))
	d.Access(acc(1, 1, "Q.x", event.Write)) // the sharing access IS a write
	reports := d.Reports()
	if len(reports) != 1 || reports[0].ObservedImmutable() {
		t.Fatalf("a cross-thread write must mark the field mutable: %v", reports)
	}
}

func TestThreadLocalFieldsOmitted(t *testing.T) {
	d := New()
	d.Access(acc(1, 1, "W.scratch", event.Write))
	d.Access(acc(1, 1, "W.scratch", event.Read))
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("thread-local fields must be omitted, got %d reports", n)
	}
}

func TestFieldAggregatesAcrossObjects(t *testing.T) {
	d := New()
	// Two Q objects: object 1's capacity is init-only, object 2's is
	// written post-share → the field as a whole is not immutable.
	d.Access(acc(0, 1, "Q.capacity", event.Write))
	d.Access(acc(1, 1, "Q.capacity", event.Read))
	d.Access(acc(0, 2, "Q.capacity", event.Write))
	d.Access(acc(1, 2, "Q.capacity", event.Read))
	d.Access(acc(1, 2, "Q.capacity", event.Write))
	reports := d.Reports()
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	r := reports[0]
	if r.SharedLocs != 2 || r.Immutable != 1 || r.ObservedImmutable() {
		t.Fatalf("aggregate wrong: %+v", r)
	}
}
