// Package immutable implements the dynamic immutability analysis the
// paper lists as future work alongside deadlock detection (§10: "we
// plan to broaden the static/dynamic coanalysis approach to tackle
// other problems such as deadlock detection and immutability
// analysis").
//
// The analysis observes the same access-event stream as the race
// detectors and classifies each shared memory location:
//
//   - init-only: written only before it was ever read by a second
//     thread — the write-once publish idiom. Such locations can be
//     declared immutable (final), documenting why their unsynchronized
//     cross-thread reads are safe (the hedc LinkedQueue fields are the
//     paper's example of this idiom confusing coarse detectors);
//   - mutable-shared: written after becoming cross-thread visible —
//     these need synchronization and are exactly the locations the
//     race detector watches.
//
// Aggregation to fields: a field is reported observed-immutable when
// every shared location of that field is init-only. Thread-local
// locations (one thread only) are excluded from the aggregate — they
// say nothing about cross-thread immutability.
package immutable

import (
	"fmt"
	"sort"

	"racedet/internal/rt/event"
)

type locState struct {
	field       string
	firstThread event.ThreadID
	shared      bool // accessed by a second thread
	writesAfter bool // written after becoming shared
}

// Detector classifies location mutability from the event stream.
type Detector struct {
	locs map[event.Loc]*locState
}

var _ event.Sink = (*Detector)(nil)

// New returns an empty immutability analyzer.
func New() *Detector {
	return &Detector{locs: make(map[event.Loc]*locState)}
}

// ThreadStarted implements event.Sink.
func (d *Detector) ThreadStarted(child, parent event.ThreadID) {}

// ThreadFinished implements event.Sink.
func (d *Detector) ThreadFinished(t event.ThreadID) {}

// Joined implements event.Sink.
func (d *Detector) Joined(joiner, joinee event.ThreadID) {}

// MonitorEnter implements event.Sink.
func (d *Detector) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {}

// MonitorExit implements event.Sink.
func (d *Detector) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {}

// Access implements event.Sink.
func (d *Detector) Access(a event.Access) {
	st := d.locs[a.Loc]
	if st == nil {
		st = &locState{field: a.FieldName, firstThread: a.Thread}
		d.locs[a.Loc] = st
	}
	if !st.shared && a.Thread != st.firstThread {
		st.shared = true
	}
	if st.shared && a.Kind == event.Write {
		st.writesAfter = true
	}
}

// FieldReport summarizes one field's observed mutability.
type FieldReport struct {
	Field string
	// SharedLocs is how many of the field's locations were observed
	// cross-thread; Immutable of those were never written post-share.
	SharedLocs int
	Immutable  int
}

// ObservedImmutable reports whether every shared location was init-only.
func (r FieldReport) ObservedImmutable() bool {
	return r.SharedLocs > 0 && r.Immutable == r.SharedLocs
}

func (r FieldReport) String() string {
	verdict := "MUTABLE-SHARED"
	if r.ObservedImmutable() {
		verdict = "OBSERVED-IMMUTABLE"
	}
	return fmt.Sprintf("%s %s (%d/%d shared locations init-only)",
		verdict, r.Field, r.Immutable, r.SharedLocs)
}

// Reports aggregates the per-location states into per-field verdicts,
// sorted by field name; fields never observed cross-thread are
// omitted.
func (d *Detector) Reports() []FieldReport {
	byField := map[string]*FieldReport{}
	for _, st := range d.locs {
		if !st.shared {
			continue
		}
		r := byField[st.field]
		if r == nil {
			r = &FieldReport{Field: st.field}
			byField[st.field] = r
		}
		r.SharedLocs++
		if !st.writesAfter {
			r.Immutable++
		}
	}
	out := make([]FieldReport, 0, len(byField))
	for _, r := range byField {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Field < out[j].Field })
	return out
}

// ImmutableFields lists just the fields whose every shared location
// was init-only (candidates for a final/immutable annotation).
func (d *Detector) ImmutableFields() []string {
	var out []string
	for _, r := range d.Reports() {
		if r.ObservedImmutable() {
			out = append(out, r.Field)
		}
	}
	return out
}
