package eraser

import (
	"testing"

	"racedet/internal/rt/event"
)

func access(t event.ThreadID, obj int64, k event.Kind) event.Access {
	return event.Access{Loc: event.Loc{Obj: event.ObjID(obj), Slot: 0}, Thread: t, Kind: k, FieldName: "A.f"}
}

func TestStateProgression(t *testing.T) {
	d := New()
	l := event.Loc{Obj: 1, Slot: 0}
	d.Access(access(1, 1, event.Write))
	if s := d.locs[l].state; s != Exclusive {
		t.Fatalf("state = %v, want exclusive", s)
	}
	d.Access(access(2, 1, event.Read))
	if s := d.locs[l].state; s != Shared {
		t.Fatalf("state = %v, want shared", s)
	}
	d.Access(access(2, 1, event.Write))
	if s := d.locs[l].state; s != SharedModified {
		t.Fatalf("state = %v, want shared-modified", s)
	}
}

func TestCommonLockKeepsQuiet(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		tid := event.ThreadID(1 + i%2)
		d.MonitorEnter(tid, 100, 1)
		d.Access(access(tid, 1, event.Write))
		d.MonitorExit(tid, 100, 0)
	}
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("common lock discipline should be quiet, got %d reports", n)
	}
}

func TestEmptyCandidateSetReports(t *testing.T) {
	d := New()
	d.MonitorEnter(1, 100, 1)
	d.Access(access(1, 1, event.Write))
	d.MonitorExit(1, 100, 0)
	d.MonitorEnter(2, 200, 1)
	d.Access(access(2, 1, event.Write))
	d.MonitorExit(2, 200, 0)
	// The candidate set is initialized at the second thread's access
	// ({200}); the third access intersects it away.
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("candidate set still holds {200}; got %d reports", n)
	}
	d.MonitorEnter(1, 100, 1)
	d.Access(access(1, 1, event.Write))
	d.MonitorExit(1, 100, 0)
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("disjoint locks must empty the candidate set, got %d reports", n)
	}
	if objs := d.RacyObjects(); len(objs) != 1 || objs[0] != 1 {
		t.Fatalf("racy objects = %v", objs)
	}
}

func TestInitializationPatternFalsePositive(t *testing.T) {
	// Eraser's classic false positive: main initializes with no lock,
	// a child then uses the location under a lock. The candidate set
	// is initialized at the *second thread's* access (Eraser's
	// refinement), so this particular pattern is handled; but when the
	// child later accesses with a different lock, the set empties.
	d := New()
	d.Access(access(0, 1, event.Write)) // main, no lock
	d.MonitorEnter(1, 100, 1)
	d.Access(access(1, 1, event.Write)) // child under lock A
	d.MonitorExit(1, 100, 0)
	d.MonitorEnter(1, 200, 1)
	d.Access(access(1, 1, event.Write)) // child under lock B: empty candidate
	d.MonitorExit(1, 200, 0)
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("reports = %d, want 1", n)
	}
}

func TestReadSharedNeverReports(t *testing.T) {
	d := New()
	d.Access(access(1, 1, event.Read))
	d.Access(access(2, 1, event.Read))
	d.Access(access(3, 1, event.Read))
	if n := len(d.Reports()); n != 0 {
		t.Fatalf("read-only sharing must stay quiet, got %d", n)
	}
}

func TestNoJoinHandling(t *testing.T) {
	// The §8.3 idiom: Eraser reports it even though join makes it safe.
	d := New()
	d.MonitorEnter(1, 100, 1)
	d.Access(access(1, 1, event.Write))
	d.MonitorExit(1, 100, 0)
	d.MonitorEnter(2, 100, 1)
	d.Access(access(2, 1, event.Write))
	d.MonitorExit(2, 100, 0)
	d.Joined(0, 1)
	d.Joined(0, 2)
	d.Access(access(0, 1, event.Read)) // parent reads after join, no lock
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("Eraser lacks join handling and must report, got %d", n)
	}
}

func TestReportDedupPerLocation(t *testing.T) {
	d := New()
	for i := 0; i < 5; i++ {
		d.Access(access(1, 1, event.Write))
		d.Access(access(2, 1, event.Write))
	}
	if n := len(d.Reports()); n != 1 {
		t.Fatalf("reports = %d, want 1", n)
	}
}
