// Package eraser implements the Eraser lockset algorithm (Savage et
// al., TOCS 1997) as a baseline detector for the accuracy comparison
// in §8.3/§9 of the paper.
//
// Eraser enforces the discipline that every shared location is
// protected by a single common lock throughout the execution. Each
// location runs the state machine Virgin → Exclusive(t) → Shared →
// Shared-Modified; in the shared states the candidate lockset C(m) is
// refined by intersection with the accessing thread's lockset, and an
// empty C(m) in Shared-Modified reports a race.
//
// Two deliberate differences from the paper's detector (both noted in
// the paper): Eraser has no join pseudolocks, and its single-common-
// lock requirement is stricter than the pairwise-disjointness race
// condition — so it reports a superset of our races, e.g. the mtrt
// I/O-statistics idiom where three locksets are mutually intersecting
// without a single common lock.
package eraser

import (
	"fmt"
	"sort"

	"racedet/internal/rt/event"
)

// State is the Eraser per-location state.
type State int8

// Eraser states.
const (
	Virgin State = iota
	Exclusive
	Shared
	SharedModified
)

func (s State) String() string {
	switch s {
	case Virgin:
		return "virgin"
	case Exclusive:
		return "exclusive"
	case Shared:
		return "shared"
	case SharedModified:
		return "shared-modified"
	}
	return "?"
}

type locState struct {
	state     State
	firstT    event.ThreadID
	candidate event.Lockset // valid in Shared/SharedModified
	reported  bool
}

// Report is one Eraser race report.
type Report struct {
	Access event.Access
	State  State
}

func (r Report) String() string {
	return fmt.Sprintf("ERASER RACE %s at %s by %s (state %s, empty lockset)",
		r.Access.FieldName, r.Access.Pos, r.Access.Thread, r.State)
}

// Detector is the Eraser baseline.
type Detector struct {
	locks *event.LockTracker
	locs  map[event.Loc]*locState

	reports []Report
	objs    map[event.ObjID]struct{}
}

var _ event.Sink = (*Detector)(nil)

// New returns an empty Eraser detector.
func New() *Detector {
	return &Detector{
		locks: event.NewLockTrackerInterned(event.NewInterner()),
		locs:  make(map[event.Loc]*locState),
		objs:  make(map[event.ObjID]struct{}),
	}
}

// Reports returns the race reports in detection order.
func (d *Detector) Reports() []Report { return d.reports }

// RacyObjects returns distinct objects with reports, sorted.
func (d *Detector) RacyObjects() []event.ObjID {
	out := make([]event.ObjID, 0, len(d.objs))
	for o := range d.objs {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ThreadStarted implements event.Sink. Eraser has no join pseudolocks,
// so thread lifecycle only matters for lockset bookkeeping.
func (d *Detector) ThreadStarted(child, parent event.ThreadID) {}

// ThreadFinished implements event.Sink.
func (d *Detector) ThreadFinished(t event.ThreadID) {}

// Joined implements event.Sink (no-op: no join handling in Eraser).
func (d *Detector) Joined(joiner, joinee event.ThreadID) {}

// MonitorEnter implements event.Sink.
func (d *Detector) MonitorEnter(t event.ThreadID, lock event.ObjID, depth int) {
	d.locks.MonitorEnter(t, lock, depth)
}

// MonitorExit implements event.Sink.
func (d *Detector) MonitorExit(t event.ThreadID, lock event.ObjID, depth int) {
	d.locks.MonitorExit(t, lock, depth)
}

// Access implements event.Sink: the Eraser state machine.
func (d *Detector) Access(a event.Access) {
	ls := d.locs[a.Loc]
	if ls == nil {
		ls = &locState{state: Virgin}
		d.locs[a.Loc] = ls
	}
	held := d.locks.Held(a.Thread)

	switch ls.state {
	case Virgin:
		ls.state = Exclusive
		ls.firstT = a.Thread
	case Exclusive:
		if a.Thread == ls.firstT {
			return
		}
		// First second-thread access: initialize the candidate set.
		// held is an interned canonical set and never mutated, so it
		// can be stored without a defensive copy.
		ls.candidate = held
		if a.Kind == event.Write {
			ls.state = SharedModified
		} else {
			ls.state = Shared
		}
	case Shared:
		ls.candidate = ls.candidate.Intersect(held)
		if a.Kind == event.Write {
			ls.state = SharedModified
		}
	case SharedModified:
		ls.candidate = ls.candidate.Intersect(held)
	}

	if ls.state == SharedModified && len(ls.candidate) == 0 && !ls.reported {
		ls.reported = true
		a.Locks = held
		d.reports = append(d.reports, Report{Access: a, State: ls.state})
		d.objs[a.Loc.Obj] = struct{}{}
	}
}
