package lower

import (
	"testing"

	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
)

func lowerSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return Lower(sp)
}

func fn(t *testing.T, res *Result, name string) *ir.Func {
	t.Helper()
	f := res.Prog.FuncByName(name)
	if f == nil {
		t.Fatalf("no function %s; have %v", name, res.Prog.SortedFuncNames())
	}
	return f
}

// monitorBalance simulates every acyclic path through the CFG and
// checks that monitor enters and exits balance and nest properly
// (LIFO by lock register).
func monitorBalance(t *testing.T, f *ir.Func) {
	t.Helper()
	type state struct {
		block *ir.Block
		stack []int // lock registers
	}
	seen := map[string]bool{}
	var walk func(s state)
	key := func(s state) string {
		k := string(rune(s.block.ID))
		for _, l := range s.stack {
			k += ":" + string(rune(l))
		}
		return k
	}
	walk = func(s state) {
		if seen[key(s)] {
			return
		}
		seen[key(s)] = true
		stack := append([]int(nil), s.stack...)
		for _, in := range s.block.Instrs {
			switch in.Op {
			case ir.OpMonEnter:
				stack = append(stack, in.Src[0])
			case ir.OpMonExit:
				if len(stack) == 0 {
					t.Fatalf("%s: monexit with empty monitor stack in b%d", f.Name, s.block.ID)
				}
				top := stack[len(stack)-1]
				if top != in.Src[0] {
					t.Fatalf("%s: non-LIFO monexit in b%d: top r%d, exit r%d", f.Name, s.block.ID, top, in.Src[0])
				}
				stack = stack[:len(stack)-1]
			case ir.OpReturn:
				if len(stack) != 0 {
					t.Fatalf("%s: return with %d monitors held in b%d", f.Name, len(stack), s.block.ID)
				}
			}
		}
		for _, succ := range s.block.Succs {
			walk(state{block: succ, stack: stack})
		}
	}
	walk(state{block: f.Entry})
}

func TestSynchronizedMethodLowering(t *testing.T) {
	res := lowerSrc(t, `
class A {
    int f;
    synchronized void m(boolean c) {
        f = 1;
        if (c) { return; }
        f = 2;
    }
}
class M { static void main() { } }`)
	f := fn(t, res, "A.m")
	monitorBalance(t, f)
	enters := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpMonEnter })
	if enters != 1 {
		t.Errorf("monitorenter count = %d, want 1", enters)
	}
	// Two exits: one on the early return path, one at the end.
	exits := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpMonExit })
	if exits != 2 {
		t.Errorf("monitorexit count = %d, want 2", exits)
	}
	// Body instructions must be stamped with the method-level region.
	var stamped bool
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField && len(in.SyncRegions) == 1 {
				stamped = true
			}
		}
	}
	if !stamped {
		t.Error("field writes not stamped with the sync region")
	}
}

func TestStaticSynchronizedUsesClassRef(t *testing.T) {
	res := lowerSrc(t, `
class A {
    static int s;
    static synchronized void m() { s = 1; }
}
class M { static void main() { } }`)
	f := fn(t, res, "A.m")
	monitorBalance(t, f)
	if n := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpClassRef }); n != 1 {
		t.Errorf("classref count = %d, want 1", n)
	}
}

func TestNestedSyncBlocksAndBreak(t *testing.T) {
	res := lowerSrc(t, `
class A {
    int f;
    void m(A p, A q) {
        int i = 0;
        while (i < 10) {
            synchronized (p) {
                f = f + 1;
                synchronized (q) {
                    if (f > 5) { break; }
                    f = f + 2;
                }
            }
            i = i + 1;
        }
        synchronized (p) {
            if (f == 0) { return; }
            f = 9;
        }
    }
}
class M { static void main() { } }`)
	f := fn(t, res, "A.m")
	monitorBalance(t, f)

	// The innermost write must carry a two-deep region stack.
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField && len(in.SyncRegions) == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no access stamped with nested regions")
	}
	info := res.Infos[f]
	if len(info.Regions) != 3 {
		t.Errorf("region count = %d, want 3", len(info.Regions))
	}
}

func TestContinueExitsInnerMonitors(t *testing.T) {
	res := lowerSrc(t, `
class A {
    int f;
    void m(A p) {
        for (int i = 0; i < 5; i++) {
            synchronized (p) {
                if (i == 2) { continue; }
                f = i;
            }
        }
    }
}
class M { static void main() { } }`)
	monitorBalance(t, fn(t, res, "A.m"))
}

func TestCompoundAssignExpandsToReadWrite(t *testing.T) {
	res := lowerSrc(t, `
class A {
    int f;
    void m(int[] a) {
        f += 1;
        a[0] += 2;
        f++;
    }
}
class M { static void main() { } }`)
	f := fn(t, res, "A.m")
	gets := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpGetField })
	puts := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpPutField })
	if gets != 2 || puts != 2 {
		t.Errorf("getfield/putfield = %d/%d, want 2/2 (each compound is read+write)", gets, puts)
	}
	aloads := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpArrayLoad })
	astores := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpArrayStore })
	if aloads != 1 || astores != 1 {
		t.Errorf("aload/astore = %d/%d, want 1/1", aloads, astores)
	}
}

func TestShortCircuitLowering(t *testing.T) {
	res := lowerSrc(t, `
class A {
    boolean hot(int x) { return x > 0; }
    void m(int x) {
        if (x > 1 && hot(x)) { print(1); }
        if (x > 2 || hot(x)) { print(2); }
        boolean b = x > 3 && hot(x);
        print(b);
    }
}
class M { static void main() { } }`)
	f := fn(t, res, "A.m")
	// With short-circuiting, calls to hot appear on conditional paths:
	// exactly 3 call sites, and at least 3 branch instructions before
	// them (no eager evaluation).
	calls := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpCall })
	if calls != 3 {
		t.Errorf("call count = %d, want 3", calls)
	}
	branches := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpBranch })
	if branches < 5 {
		t.Errorf("branch count = %d, want >= 5 (short-circuit control flow)", branches)
	}
}

func TestThreadOpsLowering(t *testing.T) {
	res := lowerSrc(t, `
class W extends Thread {
    void run() { }
}
class M {
    static void main() {
        W w = new W();
        w.start();
        w.join();
    }
}`)
	f := fn(t, res, "M.main")
	if n := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpStart }); n != 1 {
		t.Errorf("start count = %d", n)
	}
	if n := f.CountInstrs(func(in *ir.Instr) bool { return in.Op == ir.OpJoin }); n != 1 {
		t.Errorf("join count = %d", n)
	}
}

func TestCtorCallAfterNew(t *testing.T) {
	res := lowerSrc(t, `
class A {
    int f;
    A(int x) { f = x; }
}
class M { static void main() { A a = new A(7); print(a.f); } }`)
	f := fn(t, res, "M.main")
	var sawNew, sawCtor bool
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpNew {
				sawNew = true
			}
			if in.Op == ir.OpCall && in.Callee.IsCtor {
				sawCtor = true
				if in.Virtual {
					t.Error("constructor call must not be virtual")
				}
			}
		}
	}
	if !sawNew || !sawCtor {
		t.Errorf("new=%v ctor=%v", sawNew, sawCtor)
	}
}

func TestEveryBlockTerminated(t *testing.T) {
	res := lowerSrc(t, `
class A {
    int f;
    int m(int x) {
        while (x > 0) {
            if (x == 3) { return x; }
            x = x - 1;
        }
        return f;
    }
}
class M { static void main() { } }`)
	for _, f := range res.Prog.Funcs {
		for _, b := range f.ReachableBlocks() {
			if b.Terminator() == nil {
				t.Errorf("%s: reachable block b%d lacks a terminator", f.Name, b.ID)
			}
		}
	}
}

func TestVirtualDispatchFlag(t *testing.T) {
	res := lowerSrc(t, `
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class M {
    static int helper() { return 0; }
    static void main() {
        A a = new B();
        print(a.m());
        print(helper());
    }
}`)
	f := fn(t, res, "M.main")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall || in.Callee.IsCtor {
				continue
			}
			wantVirtual := in.Callee.Name == "m"
			if in.Virtual != wantVirtual {
				t.Errorf("call %s virtual=%v, want %v", in.Callee.QualifiedName(), in.Virtual, wantVirtual)
			}
		}
	}
}

func TestWaitNotifyLowering(t *testing.T) {
	res := lowerSrc(t, `
class Box {
    boolean full;
    synchronized void put() {
        while (full) { this.wait(); }
        full = true;
        this.notify();
        this.notifyAll();
    }
}
class M { static void main() { } }`)
	f := fn(t, res, "Box.put")
	monitorBalance(t, f)
	count := func(op ir.Op) int {
		return f.CountInstrs(func(in *ir.Instr) bool { return in.Op == op })
	}
	if count(ir.OpWait) != 1 || count(ir.OpNotify) != 1 || count(ir.OpNotifyAll) != 1 {
		t.Errorf("wait/notify/notifyAll = %d/%d/%d, want 1/1/1",
			count(ir.OpWait), count(ir.OpNotify), count(ir.OpNotifyAll))
	}
	// They are call-like: the static weaker-than Exec must treat them
	// as barriers.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpWait && !in.IsCallLike() {
				t.Error("wait must be call-like")
			}
		}
	}
}
