// Package lower translates checked MJ ASTs into the register IR.
//
// Lowering fixes the aspects of evaluation the later phases depend on:
//
//   - synchronized methods become an explicit monitorenter on entry
//     (on `this`, or the class object for static methods) with a
//     matching monitorexit on every exit path;
//   - synchronized blocks become monitorenter/monitorexit pairs with
//     exits emitted on break/continue/return paths that leave them;
//   - && and || short-circuit via control flow;
//   - compound assignment and ++/-- on heap locations expand to an
//     explicit read followed by a write (two access events, matching
//     the paper's treatment of Java bytecode);
//   - every instruction carries the stack of lexical synchronized
//     regions enclosing it, which §6's outer() check consumes.
package lower

import (
	"fmt"

	"racedet/internal/ir"
	"racedet/internal/lang/ast"
	"racedet/internal/lang/sem"
	"racedet/internal/lang/token"
)

// SyncRegion describes one lexical synchronized region in a function.
type SyncRegion struct {
	ID          int
	LockReg     int // register holding the lock at entry
	MethodLevel bool
	Pos         token.Pos
}

// FuncInfo couples a lowered function with its synchronized regions.
type FuncInfo struct {
	F       *ir.Func
	Regions []*SyncRegion
}

// Result is the outcome of lowering a program.
type Result struct {
	Prog  *ir.Program
	Infos map[*ir.Func]*FuncInfo
}

// Lower lowers every user-declared method of the checked program.
func Lower(p *sem.Program) *Result {
	res := &Result{
		Prog: &ir.Program{
			Sem:    p,
			FuncOf: make(map[*sem.Method]*ir.Func),
		},
		Infos: make(map[*ir.Func]*FuncInfo),
	}
	for _, cl := range p.Order {
		if cl.Decl == nil {
			continue
		}
		for _, md := range cl.Decl.Methods {
			m := p.MethodOfAST[md]
			if m == nil {
				continue
			}
			lw := newLowerer(p, m)
			f := lw.lower()
			res.Prog.Funcs = append(res.Prog.Funcs, f)
			res.Prog.FuncOf[m] = f
			res.Infos[f] = &FuncInfo{F: f, Regions: lw.regions}
		}
	}
	return res
}

type lowerer struct {
	sem *sem.Program
	m   *sem.Method
	f   *ir.Func
	cur *ir.Block

	scopes []map[string]int // name -> register

	// Synchronized-region bookkeeping.
	monStack []monEntry
	regions  []*SyncRegion

	loops []loopCtx
}

type monEntry struct {
	lockReg  int
	regionID int
}

type loopCtx struct {
	continueTo *ir.Block
	breakTo    *ir.Block
	monDepth   int // monitor stack depth at loop entry
}

func newLowerer(p *sem.Program, m *sem.Method) *lowerer {
	numParams := len(m.Params)
	if !m.Static {
		numParams++ // register 0 = this
	}
	f := ir.NewFunc(m, m.QualifiedName(), numParams)
	return &lowerer{sem: p, m: m, f: f}
}

func (lw *lowerer) lower() *ir.Func {
	lw.cur = lw.f.NewBlock("entry")
	lw.pushScope()
	regOff := 0
	if !lw.m.Static {
		regOff = 1
	}
	for i, name := range lw.m.ParamNames {
		lw.scopes[0][name] = regOff + i
	}

	// Synchronized method: enter the monitor before the body.
	if lw.m.Synchronized {
		var lockReg int
		if lw.m.Static {
			lockReg = lw.f.NewReg()
			lw.emit(&ir.Instr{Op: ir.OpClassRef, Dst: lockReg, Class: lw.m.Class, Pos: lw.m.Decl.Pos()})
		} else {
			lockReg = 0 // this
		}
		lw.enterMonitor(lockReg, true, lw.m.Decl.Pos())
	}

	lw.block(lw.m.Decl.Body)

	// Implicit return at the end of a void method / constructor.
	if lw.cur.Terminator() == nil {
		lw.exitAllMonitors(lw.m.Decl.Pos())
		lw.emit(&ir.Instr{Op: ir.OpReturn, Dst: ir.NoReg, Pos: lw.m.Decl.Pos()})
	}
	lw.popScope()
	lw.f.SyncRegionCount = len(lw.regions)
	return lw.f
}

// ---------------------------------------------------------------------------
// Emission helpers

// emit appends the instruction to the current block, stamping the
// enclosing synchronized-region stack. After a terminator, emission
// continues into a fresh unreachable block so that dead trailing
// statements lower without special cases.
func (lw *lowerer) emit(in *ir.Instr) *ir.Instr {
	if lw.cur.Terminator() != nil {
		lw.cur = lw.f.NewBlock("dead")
	}
	in.SyncRegions = lw.regionStack()
	lw.cur.Instrs = append(lw.cur.Instrs, in)
	return in
}

func (lw *lowerer) regionStack() []int {
	ids := make([]int, len(lw.monStack))
	for i, m := range lw.monStack {
		ids[i] = m.regionID
	}
	return ids
}

func (lw *lowerer) jump(to *ir.Block, pos token.Pos) {
	if lw.cur.Terminator() != nil {
		return
	}
	in := lw.emit(&ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, Pos: pos})
	lw.f.SetTargets(lw.cur, in, to)
}

func (lw *lowerer) branch(cond int, yes, no *ir.Block, pos token.Pos) {
	in := lw.emit(&ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, Src: []int{cond}, Pos: pos})
	lw.f.SetTargets(lw.cur, in, yes, no)
}

func (lw *lowerer) enterMonitor(lockReg int, methodLevel bool, pos token.Pos) {
	region := &SyncRegion{ID: len(lw.regions), LockReg: lockReg, MethodLevel: methodLevel, Pos: pos}
	lw.regions = append(lw.regions, region)
	// The monitorenter itself is outside the region it creates.
	lw.emit(&ir.Instr{Op: ir.OpMonEnter, Dst: ir.NoReg, Src: []int{lockReg}, Pos: pos})
	lw.monStack = append(lw.monStack, monEntry{lockReg: lockReg, regionID: region.ID})
}

func (lw *lowerer) exitMonitor(pos token.Pos) {
	top := lw.monStack[len(lw.monStack)-1]
	lw.monStack = lw.monStack[:len(lw.monStack)-1]
	lw.emit(&ir.Instr{Op: ir.OpMonExit, Dst: ir.NoReg, Src: []int{top.lockReg}, Pos: pos})
}

// exitMonitorsDownTo emits monitorexits (innermost first) for all
// monitors above depth, without popping the logical stack — used when
// control leaves synchronized regions via break/continue/return while
// the lexical region continues for other paths.
func (lw *lowerer) exitMonitorsDownTo(depth int, pos token.Pos) {
	for i := len(lw.monStack) - 1; i >= depth; i-- {
		// Emit under the region stack that is still active at this point
		// of the exit sequence.
		saved := lw.monStack
		lw.monStack = lw.monStack[:i+1]
		in := &ir.Instr{Op: ir.OpMonExit, Dst: ir.NoReg, Src: []int{saved[i].lockReg}, Pos: pos}
		lw.emit(in)
		lw.monStack = saved
	}
}

func (lw *lowerer) exitAllMonitors(pos token.Pos) {
	lw.exitMonitorsDownTo(0, pos)
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]int{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) lookup(name string) (int, bool) {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if r, ok := lw.scopes[i][name]; ok {
			return r, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) block(b *ast.BlockStmt) {
	lw.pushScope()
	for _, s := range b.Stmts {
		lw.stmt(s)
	}
	lw.popScope()
}

func (lw *lowerer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		lw.block(s)
	case *ast.VarDeclStmt:
		reg := lw.f.NewReg()
		if s.Init != nil {
			v := lw.expr(s.Init)
			lw.emit(&ir.Instr{Op: ir.OpMove, Dst: reg, Src: []int{v}, Pos: s.Pos()})
		} else {
			lw.emitDefault(reg, s.Type, s.Pos())
		}
		lw.scopes[len(lw.scopes)-1][s.Name] = reg
	case *ast.AssignStmt:
		lw.assign(s)
	case *ast.IncDecStmt:
		op := token.PLUSASSIGN
		if s.Op == token.DEC {
			op = token.MINUSASSIGN
		}
		lw.assign(&ast.AssignStmt{TokPos: s.TokPos, LHS: s.LHS, Op: op,
			RHS: &ast.IntLit{TokPos: s.TokPos, Value: 1}})
	case *ast.IfStmt:
		lw.ifStmt(s)
	case *ast.WhileStmt:
		lw.whileStmt(s)
	case *ast.ForStmt:
		lw.forStmt(s)
	case *ast.ReturnStmt:
		var src []int
		if s.Value != nil {
			src = []int{lw.expr(s.Value)}
		}
		lw.exitMonitorsDownTo(0, s.Pos())
		lw.emit(&ir.Instr{Op: ir.OpReturn, Dst: ir.NoReg, Src: src, Pos: s.Pos()})
	case *ast.BreakStmt:
		l := lw.loops[len(lw.loops)-1]
		lw.exitMonitorsDownTo(l.monDepth, s.Pos())
		lw.jump(l.breakTo, s.Pos())
	case *ast.ContinueStmt:
		l := lw.loops[len(lw.loops)-1]
		lw.exitMonitorsDownTo(l.monDepth, s.Pos())
		lw.jump(l.continueTo, s.Pos())
	case *ast.ExprStmt:
		lw.expr(s.X)
	case *ast.SyncStmt:
		lock := lw.expr(s.Lock)
		lw.enterMonitor(lock, false, s.Pos())
		lw.block(s.Body)
		if lw.cur.Terminator() == nil {
			lw.exitMonitor(s.Pos())
		} else {
			// All paths inside returned/broke; the logical stack still
			// needs popping for the code that follows lexically.
			lw.monStack = lw.monStack[:len(lw.monStack)-1]
		}
	case *ast.PrintStmt:
		if str, ok := s.Value.(*ast.StringLit); ok {
			lw.emit(&ir.Instr{Op: ir.OpPrint, Dst: ir.NoReg, Str: str.Value, Pos: s.Pos()})
			return
		}
		v := lw.expr(s.Value)
		// Elem carries the operand's semantic type so the interpreter
		// renders booleans as true/false.
		lw.emit(&ir.Instr{Op: ir.OpPrint, Dst: ir.NoReg, Src: []int{v}, Elem: lw.sem.TypeOf[s.Value], Pos: s.Pos()})
	default:
		panic(fmt.Sprintf("lower: unhandled statement %T", s))
	}
}

func (lw *lowerer) emitDefault(reg int, t ast.Type, pos token.Pos) {
	switch tt := t.(type) {
	case *ast.PrimType:
		if tt.Kind == token.BOOLEAN {
			lw.emit(&ir.Instr{Op: ir.OpBoolConst, Dst: reg, Value: 0, Pos: pos})
		} else {
			lw.emit(&ir.Instr{Op: ir.OpConst, Dst: reg, Value: 0, Pos: pos})
		}
	default:
		lw.emit(&ir.Instr{Op: ir.OpNull, Dst: reg, Pos: pos})
	}
}

// assign lowers simple and compound assignment to locals, fields,
// statics, and array elements.
func (lw *lowerer) assign(s *ast.AssignStmt) {
	binOf := func(op token.Kind) ir.BinKind {
		switch op {
		case token.PLUSASSIGN:
			return ir.BinAdd
		case token.MINUSASSIGN:
			return ir.BinSub
		case token.STARASSIGN:
			return ir.BinMul
		case token.SLASHASSIGN:
			return ir.BinDiv
		}
		panic("lower: bad compound assign op")
	}

	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		ref := lw.sem.IdentRef[lhs]
		switch ref.Kind {
		case sem.RefLocal:
			reg, ok := lw.lookup(lhs.Name)
			if !ok {
				panic("lower: unresolved local " + lhs.Name)
			}
			if s.Op == token.ASSIGN {
				v := lw.expr(s.RHS)
				lw.emit(&ir.Instr{Op: ir.OpMove, Dst: reg, Src: []int{v}, Pos: s.Pos()})
			} else {
				v := lw.expr(s.RHS)
				lw.emit(&ir.Instr{Op: ir.OpBin, Dst: reg, Src: []int{reg, v}, Bin: binOf(s.Op), Pos: s.Pos()})
			}
		case sem.RefField:
			f := ref.Field
			if f.Static {
				lw.assignStatic(f, s, binOf)
			} else {
				lw.assignField(0, f, s, binOf) // implicit this
			}
		default:
			panic("lower: assignment to class name")
		}
	case *ast.FieldAccess:
		f := lw.sem.FieldOf[lhs]
		if f == nil {
			panic("lower: unresolved field access " + lhs.Field)
		}
		if f.Static {
			lw.assignStatic(f, s, binOf)
			return
		}
		obj := lw.expr(lhs.X)
		lw.assignField(obj, f, s, binOf)
	case *ast.IndexExpr:
		arr := lw.expr(lhs.X)
		idx := lw.expr(lhs.Index)
		if s.Op == token.ASSIGN {
			v := lw.expr(s.RHS)
			lw.emit(&ir.Instr{Op: ir.OpArrayStore, Dst: ir.NoReg, Src: []int{arr, idx, v}, Pos: s.Pos()})
			return
		}
		old := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpArrayLoad, Dst: old, Src: []int{arr, idx}, Pos: s.Pos()})
		v := lw.expr(s.RHS)
		res := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpBin, Dst: res, Src: []int{old, v}, Bin: binOf(s.Op), Pos: s.Pos()})
		lw.emit(&ir.Instr{Op: ir.OpArrayStore, Dst: ir.NoReg, Src: []int{arr, idx, res}, Pos: s.Pos()})
	default:
		panic(fmt.Sprintf("lower: invalid assignment target %T", s.LHS))
	}
}

func (lw *lowerer) assignField(obj int, f *sem.Field, s *ast.AssignStmt, binOf func(token.Kind) ir.BinKind) {
	if s.Op == token.ASSIGN {
		v := lw.expr(s.RHS)
		lw.emit(&ir.Instr{Op: ir.OpPutField, Dst: ir.NoReg, Src: []int{obj, v}, Field: f, Pos: s.Pos()})
		return
	}
	old := lw.f.NewReg()
	lw.emit(&ir.Instr{Op: ir.OpGetField, Dst: old, Src: []int{obj}, Field: f, Pos: s.Pos()})
	v := lw.expr(s.RHS)
	res := lw.f.NewReg()
	lw.emit(&ir.Instr{Op: ir.OpBin, Dst: res, Src: []int{old, v}, Bin: binOf(s.Op), Pos: s.Pos()})
	lw.emit(&ir.Instr{Op: ir.OpPutField, Dst: ir.NoReg, Src: []int{obj, res}, Field: f, Pos: s.Pos()})
}

func (lw *lowerer) assignStatic(f *sem.Field, s *ast.AssignStmt, binOf func(token.Kind) ir.BinKind) {
	if s.Op == token.ASSIGN {
		v := lw.expr(s.RHS)
		lw.emit(&ir.Instr{Op: ir.OpPutStatic, Dst: ir.NoReg, Src: []int{v}, Field: f, Pos: s.Pos()})
		return
	}
	old := lw.f.NewReg()
	lw.emit(&ir.Instr{Op: ir.OpGetStatic, Dst: old, Field: f, Pos: s.Pos()})
	v := lw.expr(s.RHS)
	res := lw.f.NewReg()
	lw.emit(&ir.Instr{Op: ir.OpBin, Dst: res, Src: []int{old, v}, Bin: binOf(s.Op), Pos: s.Pos()})
	lw.emit(&ir.Instr{Op: ir.OpPutStatic, Dst: ir.NoReg, Src: []int{res}, Field: f, Pos: s.Pos()})
}

func (lw *lowerer) ifStmt(s *ast.IfStmt) {
	thenB := lw.f.NewBlock("if.then")
	var elseB *ir.Block
	done := lw.f.NewBlock("if.done")
	if s.Else != nil {
		elseB = lw.f.NewBlock("if.else")
	} else {
		elseB = done
	}
	lw.cond(s.Cond, thenB, elseB)

	lw.cur = thenB
	lw.block(s.Then)
	lw.jump(done, s.Pos())

	if s.Else != nil {
		lw.cur = elseB
		lw.stmt(s.Else)
		lw.jump(done, s.Pos())
	}
	lw.cur = done
}

func (lw *lowerer) whileStmt(s *ast.WhileStmt) {
	condB := lw.f.NewBlock("while.cond")
	bodyB := lw.f.NewBlock("while.body")
	doneB := lw.f.NewBlock("while.done")
	lw.jump(condB, s.Pos())

	lw.cur = condB
	lw.cond(s.Cond, bodyB, doneB)

	lw.loops = append(lw.loops, loopCtx{continueTo: condB, breakTo: doneB, monDepth: len(lw.monStack)})
	lw.cur = bodyB
	lw.block(s.Body)
	lw.jump(condB, s.Pos())
	lw.loops = lw.loops[:len(lw.loops)-1]

	lw.cur = doneB
}

func (lw *lowerer) forStmt(s *ast.ForStmt) {
	lw.pushScope()
	if s.Init != nil {
		lw.stmt(s.Init)
	}
	condB := lw.f.NewBlock("for.cond")
	bodyB := lw.f.NewBlock("for.body")
	postB := lw.f.NewBlock("for.post")
	doneB := lw.f.NewBlock("for.done")
	lw.jump(condB, s.Pos())

	lw.cur = condB
	if s.Cond != nil {
		lw.cond(s.Cond, bodyB, doneB)
	} else {
		lw.jump(bodyB, s.Pos())
	}

	lw.loops = append(lw.loops, loopCtx{continueTo: postB, breakTo: doneB, monDepth: len(lw.monStack)})
	lw.cur = bodyB
	lw.block(s.Body)
	lw.jump(postB, s.Pos())
	lw.loops = lw.loops[:len(lw.loops)-1]

	lw.cur = postB
	if s.Post != nil {
		lw.stmt(s.Post)
	}
	lw.jump(condB, s.Pos())

	lw.cur = doneB
	lw.popScope()
}

// ---------------------------------------------------------------------------
// Expressions

// cond lowers a boolean expression as control flow into yes/no,
// short-circuiting && and ||.
func (lw *lowerer) cond(e ast.Expr, yes, no *ir.Block) {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AND:
			mid := lw.f.NewBlock("and.rhs")
			lw.cond(e.X, mid, no)
			lw.cur = mid
			lw.cond(e.Y, yes, no)
			return
		case token.OR:
			mid := lw.f.NewBlock("or.rhs")
			lw.cond(e.X, yes, mid)
			lw.cur = mid
			lw.cond(e.Y, yes, no)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			lw.cond(e.X, no, yes)
			return
		}
	}
	v := lw.expr(e)
	lw.branch(v, yes, no, e.Pos())
}

// expr lowers an expression, returning the register holding its value.
func (lw *lowerer) expr(e ast.Expr) int {
	switch e := e.(type) {
	case *ast.IntLit:
		r := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpConst, Dst: r, Value: e.Value, Pos: e.Pos()})
		return r
	case *ast.BoolLit:
		r := lw.f.NewReg()
		v := int64(0)
		if e.Value {
			v = 1
		}
		lw.emit(&ir.Instr{Op: ir.OpBoolConst, Dst: r, Value: v, Pos: e.Pos()})
		return r
	case *ast.StringLit:
		r := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpStrConst, Dst: r, Str: e.Value, Pos: e.Pos()})
		return r
	case *ast.NullLit:
		r := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpNull, Dst: r, Pos: e.Pos()})
		return r
	case *ast.ThisExpr:
		return 0
	case *ast.Ident:
		ref := lw.sem.IdentRef[e]
		switch ref.Kind {
		case sem.RefLocal:
			reg, ok := lw.lookup(e.Name)
			if !ok {
				panic("lower: unresolved local " + e.Name)
			}
			return reg
		case sem.RefField:
			f := ref.Field
			r := lw.f.NewReg()
			if f.Static {
				lw.emit(&ir.Instr{Op: ir.OpGetStatic, Dst: r, Field: f, Pos: e.Pos()})
			} else {
				lw.emit(&ir.Instr{Op: ir.OpGetField, Dst: r, Src: []int{0}, Field: f, Pos: e.Pos()})
			}
			return r
		case sem.RefClass:
			r := lw.f.NewReg()
			lw.emit(&ir.Instr{Op: ir.OpClassRef, Dst: r, Class: ref.Class, Pos: e.Pos()})
			return r
		}
		panic("lower: unresolved identifier " + e.Name)
	case *ast.FieldAccess:
		f := lw.sem.FieldOf[e]
		if f == nil {
			panic("lower: unresolved field " + e.Field)
		}
		r := lw.f.NewReg()
		if f.Static {
			lw.emit(&ir.Instr{Op: ir.OpGetStatic, Dst: r, Field: f, Pos: e.Pos()})
		} else {
			obj := lw.expr(e.X)
			lw.emit(&ir.Instr{Op: ir.OpGetField, Dst: r, Src: []int{obj}, Field: f, Pos: e.Pos()})
		}
		return r
	case *ast.IndexExpr:
		arr := lw.expr(e.X)
		idx := lw.expr(e.Index)
		r := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpArrayLoad, Dst: r, Src: []int{arr, idx}, Pos: e.Pos()})
		return r
	case *ast.LenExpr:
		arr := lw.expr(e.X)
		r := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpArrayLen, Dst: r, Src: []int{arr}, Pos: e.Pos()})
		return r
	case *ast.CallExpr:
		return lw.call(e)
	case *ast.NewExpr:
		return lw.newExpr(e)
	case *ast.NewArrayExpr:
		n := lw.expr(e.Len)
		r := lw.f.NewReg()
		elem := lw.resolveElemType(e.Elem)
		lw.emit(&ir.Instr{Op: ir.OpNewArray, Dst: r, Src: []int{n}, Elem: elem, Pos: e.Pos()})
		return r
	case *ast.UnaryExpr:
		x := lw.expr(e.X)
		r := lw.f.NewReg()
		op := ir.OpNeg
		if e.Op == token.NOT {
			op = ir.OpNot
		}
		lw.emit(&ir.Instr{Op: op, Dst: r, Src: []int{x}, Pos: e.Pos()})
		return r
	case *ast.BinaryExpr:
		if e.Op == token.AND || e.Op == token.OR {
			// Materialize the short-circuit result into a register.
			r := lw.f.NewReg()
			yes := lw.f.NewBlock("bool.true")
			no := lw.f.NewBlock("bool.false")
			done := lw.f.NewBlock("bool.done")
			lw.cond(e, yes, no)
			lw.cur = yes
			lw.emit(&ir.Instr{Op: ir.OpBoolConst, Dst: r, Value: 1, Pos: e.Pos()})
			lw.jump(done, e.Pos())
			lw.cur = no
			lw.emit(&ir.Instr{Op: ir.OpBoolConst, Dst: r, Value: 0, Pos: e.Pos()})
			lw.jump(done, e.Pos())
			lw.cur = done
			return r
		}
		x := lw.expr(e.X)
		y := lw.expr(e.Y)
		r := lw.f.NewReg()
		lw.emit(&ir.Instr{Op: ir.OpBin, Dst: r, Src: []int{x, y}, Bin: binKind(e.Op), Pos: e.Pos()})
		return r
	}
	panic(fmt.Sprintf("lower: unhandled expression %T", e))
}

func binKind(op token.Kind) ir.BinKind {
	switch op {
	case token.PLUS:
		return ir.BinAdd
	case token.MINUS:
		return ir.BinSub
	case token.STAR:
		return ir.BinMul
	case token.SLASH:
		return ir.BinDiv
	case token.PERCENT:
		return ir.BinMod
	case token.EQ:
		return ir.BinEq
	case token.NEQ:
		return ir.BinNeq
	case token.LT:
		return ir.BinLt
	case token.LEQ:
		return ir.BinLeq
	case token.GT:
		return ir.BinGt
	case token.GEQ:
		return ir.BinGeq
	}
	panic("lower: bad binary op " + op.String())
}

func (lw *lowerer) resolveElemType(t ast.Type) sem.Type {
	switch t := t.(type) {
	case *ast.PrimType:
		if t.Kind == token.BOOLEAN {
			return sem.TypBool
		}
		return sem.TypInt
	case *ast.NamedType:
		if cl, ok := lw.sem.Classes[t.Name]; ok {
			return &sem.ClassType{Class: cl}
		}
	case *ast.ArrayType:
		return &sem.ArrayType{Elem: lw.resolveElemType(t.Elem)}
	}
	return sem.TypInt
}

func (lw *lowerer) call(e *ast.CallExpr) int {
	m := lw.sem.Callee[e]
	if m == nil {
		panic("lower: unresolved call " + e.Method)
	}

	// Built-in thread and monitor operations.
	switch m.Builtin {
	case sem.BuiltinStart, sem.BuiltinJoin:
		recv := lw.receiverReg(e, m)
		op := ir.OpStart
		if m.Builtin == sem.BuiltinJoin {
			op = ir.OpJoin
		}
		lw.emit(&ir.Instr{Op: op, Dst: ir.NoReg, Src: []int{recv}, Pos: e.Pos()})
		return ir.NoReg
	case sem.BuiltinWait, sem.BuiltinNotify, sem.BuiltinNotifyAll:
		recv := lw.receiverReg(e, m)
		op := ir.OpWait
		switch m.Builtin {
		case sem.BuiltinNotify:
			op = ir.OpNotify
		case sem.BuiltinNotifyAll:
			op = ir.OpNotifyAll
		}
		lw.emit(&ir.Instr{Op: op, Dst: ir.NoReg, Src: []int{recv}, Pos: e.Pos()})
		return ir.NoReg
	case sem.BuiltinRunStub:
		// Calling run() explicitly on a class that never overrides it
		// is a no-op.
		lw.receiverReg(e, m)
		return ir.NoReg
	}

	var src []int
	if !m.Static {
		src = append(src, lw.receiverReg(e, m))
	}
	for _, a := range e.Args {
		src = append(src, lw.expr(a))
	}
	dst := ir.NoReg
	if !sem.Same(m.Return, sem.TypVoid) {
		dst = lw.f.NewReg()
	}
	lw.emit(&ir.Instr{
		Op: ir.OpCall, Dst: dst, Src: src,
		Callee: m, Virtual: !m.Static && !m.IsCtor,
		Pos: e.Pos(),
	})
	return dst
}

// receiverReg evaluates the receiver of a call (explicit or implicit
// this).
func (lw *lowerer) receiverReg(e *ast.CallExpr, m *sem.Method) int {
	if m.Static {
		return ir.NoReg
	}
	if e.Recv == nil {
		return 0 // implicit this
	}
	return lw.expr(e.Recv)
}

func (lw *lowerer) newExpr(e *ast.NewExpr) int {
	cl := lw.sem.ClassOfNew[e]
	if cl == nil {
		panic("lower: unresolved new " + e.Class)
	}
	r := lw.f.NewReg()
	lw.emit(&ir.Instr{Op: ir.OpNew, Dst: r, Class: cl, Pos: e.Pos()})
	if ctor := lw.sem.CtorOf[e]; ctor != nil {
		src := []int{r}
		for _, a := range e.Args {
			src = append(src, lw.expr(a))
		}
		lw.emit(&ir.Instr{
			Op: ir.OpCall, Dst: ir.NoReg, Src: src,
			Callee: ctor, Virtual: false,
			Pos: e.Pos(),
		})
	}
	return r
}
