// Package harness implements schedule exploration: running one
// compiled program under many scheduler seeds in parallel, unioning
// the reported dataraces, and classifying each as stable (reported on
// every schedule) or schedule-dependent (reported only on some).
//
// The lockset detector underneath is largely schedule-insensitive by
// design — §2.5 of the paper argues a race is reported as long as the
// racing accesses execute at all — but control flow that depends on
// timing (a reader that only touches shared state when it observes a
// half-published flag, a work queue drained before the racing consumer
// starts) can keep an access from executing on a given interleaving.
// Sweeping seeds exposes those races, and the schedule trace recorded
// with each run (see interp.ScheduleTrace) turns every finding into a
// deterministically replayable artifact.
//
// The harness is also where the robustness machinery composes: every
// run is bounded by a wall-clock watchdog, a step budget, and the
// livelock heuristic, so one pathological schedule cannot hang the
// sweep; failed runs are reported per seed, not silently dropped.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"racedet/internal/core"
	"racedet/internal/interp"
	"racedet/internal/rt/detector"
)

// Options configures an exploration sweep. The zero value explores 8
// seeds (0..7) on one worker per CPU with a 30s per-run watchdog.
type Options struct {
	// Config is the base pipeline configuration; the harness overrides
	// its Seed per run and always records schedules. Runtime bounds set
	// here (Timeout, LivelockWindow, MaxSteps, detector budgets) apply
	// to every run unless overridden below.
	Config core.Config

	// Seeds lists the scheduler seeds to explore. When nil, seeds
	// 0..Count-1 are used (Count defaulting to 8). Seed 0 is the fixed
	// round-robin schedule, so the default sweep always includes the
	// deterministic baseline.
	Seeds []int64
	Count int

	// Workers bounds parallelism (default: GOMAXPROCS, capped at the
	// seed count). Each worker runs complete executions, so results are
	// independent of worker count and completion order.
	Workers int

	// Timeout is the per-run wall-clock watchdog (default 30s; negative
	// disables). Zero in both this field and Config.Timeout means the
	// default applies.
	Timeout time.Duration

	// LivelockWindow is the per-run no-progress bound in scheduler
	// slices (default 100000; negative disables).
	LivelockWindow int
}

func (o *Options) seeds() []int64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	n := o.Count
	if n <= 0 {
		n = 8
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	return seeds
}

// DefaultTimeout bounds one run's wall-clock time unless overridden.
const DefaultTimeout = 30 * time.Second

// DefaultLivelockWindow is the default no-progress bound in slices.
const DefaultLivelockWindow = 100_000

// RunOutcome is one seed's execution outcome.
type RunOutcome struct {
	Seed     int64
	Races    int
	Output   string
	Steps    uint64
	Duration time.Duration
	// Err is the run's terminal error (deadlock, watchdog, livelock,
	// panic...), nil for a clean exit. Races found before the error are
	// still counted and aggregated.
	Err error
	// Schedule is the recorded decision sequence of this run.
	Schedule *interp.ScheduleTrace
}

// Finding is one distinct race aggregated across the sweep. Races are
// keyed by field name: the same unsynchronized field access reported
// at different positions on different schedules is one finding.
type Finding struct {
	// Field is the raced location's name ("Class.field" or "[]").
	Field string
	// Report is the detector report from the smallest exposing seed —
	// the canonical witness. Its position is deterministic under replay
	// of Trace.
	Report detector.Report
	// Seeds lists every seed whose run reported the race, sorted.
	Seeds []int64
	// MinSeed is the smallest exposing seed.
	MinSeed int64
	// Stable reports whether every completed run exposed the race;
	// false marks a schedule-dependent race.
	Stable bool
	// Trace is the witness schedule from the MinSeed run; replaying it
	// reproduces the race deterministically.
	Trace *interp.ScheduleTrace
}

// Summary aggregates one exploration sweep.
type Summary struct {
	// Findings is the union of races over all runs, stable findings
	// first, then by ascending MinSeed, then by field name.
	Findings []Finding
	// Outcomes holds one entry per seed, in Options.Seeds order.
	Outcomes []RunOutcome
	// Completed counts runs that terminated without a runtime error;
	// Failed counts the rest (each Outcome carries its error).
	Completed int
	Failed    int
}

// Stable returns the findings reported on every completed schedule.
func (s *Summary) Stable() []Finding { return s.filter(true) }

// ScheduleDependent returns the findings missed by at least one
// completed schedule.
func (s *Summary) ScheduleDependent() []Finding { return s.filter(false) }

func (s *Summary) filter(stable bool) []Finding {
	var out []Finding
	for _, f := range s.Findings {
		if f.Stable == stable {
			out = append(out, f)
		}
	}
	return out
}

// Explore runs the compiled program once per seed and aggregates the
// findings. Individual run failures (deadlock, watchdog, livelock,
// interpreter panic) are recorded in the per-seed outcome and do not
// abort the sweep; Explore itself only fails on harness-level misuse.
func Explore(pipe *core.Pipeline, opts Options) (*Summary, error) {
	seeds := opts.seeds()
	for i, s := range seeds {
		for _, t := range seeds[:i] {
			if s == t {
				return nil, fmt.Errorf("harness: duplicate seed %d", s)
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	base := opts.Config
	base.RecordSchedule = true
	base.ReplaySchedule = nil
	if opts.Timeout != 0 {
		base.Timeout = opts.Timeout
	} else if base.Timeout == 0 {
		base.Timeout = DefaultTimeout
	}
	if base.Timeout < 0 {
		base.Timeout = 0
	}
	if opts.LivelockWindow != 0 {
		base.LivelockWindow = opts.LivelockWindow
	} else if base.LivelockWindow == 0 {
		base.LivelockWindow = DefaultLivelockWindow
	}
	if base.LivelockWindow < 0 {
		base.LivelockWindow = 0
	}

	// Workers pull seed indices from a shared counter; each run uses a
	// private Config copy, so the only shared state is the compiled
	// (read-only) Pipeline.
	outcomes := make([]RunOutcome, len(seeds))
	results := make([]*core.RunResult, len(seeds))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(seeds) {
					return
				}
				cfg := base
				cfg.Seed = seeds[i]
				rr, err := pipe.RunConfig(cfg)
				oc := RunOutcome{Seed: seeds[i], Err: err}
				if rr != nil {
					oc.Races = len(rr.Reports)
					oc.Output = rr.Output
					oc.Steps = rr.Interp.Steps
					oc.Duration = rr.Duration
					oc.Schedule = rr.Schedule
					if err == nil {
						oc.Err = rr.Err
					}
				}
				outcomes[i], results[i] = oc, rr
			}
		}()
	}
	wg.Wait()

	sum := &Summary{Outcomes: outcomes}
	for _, oc := range outcomes {
		if oc.Err == nil {
			sum.Completed++
		} else {
			sum.Failed++
		}
	}

	// Union the reports across runs, keyed by field name. The witness
	// (report + schedule trace) comes from the smallest exposing seed
	// so reproduction instructions are deterministic across sweeps.
	byField := make(map[string]*Finding)
	for i, rr := range results {
		if rr == nil {
			continue
		}
		for _, rep := range rr.Reports {
			f := byField[rep.Access.FieldName]
			if f == nil {
				f = &Finding{Field: rep.Access.FieldName, MinSeed: seeds[i],
					Report: rep, Trace: rr.Schedule}
				byField[rep.Access.FieldName] = f
			}
			f.Seeds = append(f.Seeds, seeds[i])
			if seeds[i] < f.MinSeed {
				f.MinSeed = seeds[i]
				f.Report = rep
				f.Trace = rr.Schedule
			}
		}
	}
	for _, f := range byField {
		sort.Slice(f.Seeds, func(i, j int) bool { return f.Seeds[i] < f.Seeds[j] })
		// Stable = exposed by every run that ran to completion. Failed
		// runs don't count against stability: their reports are a
		// prefix of what the full run would have found.
		exposedCompleted := 0
		for _, oc := range outcomes {
			if oc.Err == nil && containsSeed(f.Seeds, oc.Seed) {
				exposedCompleted++
			}
		}
		f.Stable = sum.Completed > 0 && exposedCompleted == sum.Completed
		sum.Findings = append(sum.Findings, *f)
	}
	sort.Slice(sum.Findings, func(i, j int) bool {
		a, b := sum.Findings[i], sum.Findings[j]
		if a.Stable != b.Stable {
			return a.Stable
		}
		if a.MinSeed != b.MinSeed {
			return a.MinSeed < b.MinSeed
		}
		return a.Field < b.Field
	})
	return sum, nil
}

func containsSeed(seeds []int64, s int64) bool {
	for _, t := range seeds {
		if t == s {
			return true
		}
	}
	return false
}

// ExploreSource compiles src and explores it in one step.
func ExploreSource(file, src string, opts Options) (*Summary, error) {
	pipe, err := core.Compile(file, src, opts.Config)
	if err != nil {
		return nil, err
	}
	return Explore(pipe, opts)
}
