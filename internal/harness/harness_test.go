package harness

import (
	"strings"
	"testing"
	"time"

	"racedet/internal/core"
)

// stableRacy always races: two threads write the same unguarded field
// on every schedule.
const stableRacy = `
class Counter { int n; }
class Inc extends Thread {
    Counter c;
    Inc(Counter c0) { c = c0; }
    void run() { for (int i = 0; i < 50; i++) { c.n = c.n + 1; } }
}
class Main {
    static void main() {
        Counter c = new Counter();
        c.n = 0;
        Inc a = new Inc(c); Inc b = new Inc(c);
        a.start(); b.start(); a.join(); b.join();
        print(c.n);
    }
}`

// schedDepRacy is the publication-window program (see the corpus entry
// racy_publish_window.mj): the racing write only executes on schedules
// where Racer samples the flag before Setter publishes it, so seed 0's
// fixed round-robin misses the race and jittered seeds expose it.
const schedDepRacy = `
class Shared { int flag; int data; }
class Mutex { int x; }
class Setter extends Thread {
    Shared s; Mutex m;
    Setter(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        synchronized (m) { s.flag = 1; }
        s.data = 2;
    }
}
class Racer extends Thread {
    Shared s; Mutex m;
    Racer(Shared s0, Mutex m0) { s = s0; m = m0; }
    void run() {
        int f;
        synchronized (m) { f = s.flag; }
        if (f == 0) { s.data = 1; }
    }
}
class Main {
    static void main() {
        Shared s = new Shared();
        Mutex m = new Mutex();
        s.data = 0;
        Setter a = new Setter(s, m);
        Racer b = new Racer(s, m);
        a.start(); b.start(); a.join(); b.join();
        print(s.data);
    }
}`

func explore(t *testing.T, src string, opts Options) *Summary {
	t.Helper()
	sum, err := ExploreSource("t.mj", src, opts)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	return sum
}

func findField(sum *Summary, field string) *Finding {
	for i := range sum.Findings {
		if sum.Findings[i].Field == field {
			return &sum.Findings[i]
		}
	}
	return nil
}

func TestExploreClassifiesStableRace(t *testing.T) {
	sum := explore(t, stableRacy, Options{Config: core.Full(), Count: 8})
	if sum.Failed != 0 {
		t.Fatalf("failed runs: %+v", sum.Outcomes)
	}
	f := findField(sum, "Counter.n")
	if f == nil {
		t.Fatalf("race on Counter.n not found; findings = %+v", sum.Findings)
	}
	if !f.Stable {
		t.Errorf("Counter.n races on every schedule but classified schedule-dependent (seeds %v)", f.Seeds)
	}
	if len(f.Seeds) != 8 || f.MinSeed != 0 {
		t.Errorf("seeds = %v, MinSeed = %d; want all 8 seeds from 0", f.Seeds, f.MinSeed)
	}
	if f.Trace == nil || len(f.Trace.Slices) == 0 {
		t.Error("finding carries no witness schedule")
	}
}

func TestExploreClassifiesScheduleDependentRace(t *testing.T) {
	sum := explore(t, schedDepRacy, Options{Config: core.Full(), Count: 16})
	if sum.Failed != 0 {
		t.Fatalf("failed runs: %+v", sum.Outcomes)
	}
	f := findField(sum, "Shared.data")
	if f == nil {
		t.Fatalf("16-seed sweep never exposed Shared.data; findings = %+v", sum.Findings)
	}
	if f.Stable {
		t.Errorf("Shared.data classified stable although seed 0 misses it (seeds %v)", f.Seeds)
	}
	if containsSeed(f.Seeds, 0) {
		t.Errorf("seed 0 (fixed round-robin) reported the race: %v — program no longer schedule-dependent", f.Seeds)
	}
	if f.MinSeed != f.Seeds[0] {
		t.Errorf("MinSeed = %d, seeds = %v", f.MinSeed, f.Seeds)
	}
	if len(sum.ScheduleDependent()) == 0 || len(sum.Stable()) != 0 {
		t.Errorf("classification accessors wrong: stable=%d dep=%d", len(sum.Stable()), len(sum.ScheduleDependent()))
	}
}

func TestExploreWitnessReplaysDeterministically(t *testing.T) {
	// The acceptance bar for the whole harness: the witness trace of a
	// schedule-dependent finding, replayed repeatedly, reproduces the
	// same race at the same source position every time.
	pipe, err := core.Compile("t.mj", schedDepRacy, core.Full())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Explore(pipe, Options{Config: core.Full(), Count: 16})
	if err != nil {
		t.Fatal(err)
	}
	f := findField(sum, "Shared.data")
	if f == nil || f.Trace == nil {
		t.Fatalf("no witness for Shared.data: %+v", sum.Findings)
	}
	wantPos := f.Report.Access.Pos.String()
	for i := 0; i < 5; i++ {
		cfg := core.Full()
		cfg.ReplaySchedule = f.Trace
		rr, err := pipe.RunConfig(cfg)
		if err != nil || rr.Err != nil {
			t.Fatalf("replay %d: %v / %v", i, err, rr.Err)
		}
		var got string
		for _, rep := range rr.Reports {
			if rep.Access.FieldName == "Shared.data" {
				got = rep.Access.Pos.String()
			}
		}
		if got == "" {
			t.Fatalf("replay %d did not reproduce the race", i)
		}
		if got != wantPos {
			t.Fatalf("replay %d reported at %s, witness at %s", i, got, wantPos)
		}
	}
}

func TestExploreWorkerCountInvariance(t *testing.T) {
	one := explore(t, schedDepRacy, Options{Config: core.Full(), Count: 12, Workers: 1})
	many := explore(t, schedDepRacy, Options{Config: core.Full(), Count: 12, Workers: 4})
	if len(one.Findings) != len(many.Findings) {
		t.Fatalf("findings differ by worker count: %d vs %d", len(one.Findings), len(many.Findings))
	}
	for i := range one.Findings {
		a, b := one.Findings[i], many.Findings[i]
		if a.Field != b.Field || a.Stable != b.Stable || a.MinSeed != b.MinSeed ||
			len(a.Seeds) != len(b.Seeds) {
			t.Errorf("finding %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range one.Outcomes {
		if one.Outcomes[i].Races != many.Outcomes[i].Races {
			t.Errorf("seed %d outcome differs by worker count", one.Outcomes[i].Seed)
		}
	}
}

func TestExploreSurvivesFailingRuns(t *testing.T) {
	// Every schedule of this program deadlocks; the sweep must record
	// the failures per seed and return normally.
	deadlock := `
class A { int f; }
class W extends Thread {
    A p; A q;
    W(A p0, A q0) { p = p0; q = q0; }
    void run() {
        for (int i = 0; i < 200; i++) {
            synchronized (p) { synchronized (q) { p.f = p.f + 1; } }
        }
    }
}
class Main {
    static void main() {
        A x = new A(); A y = new A();
        W a = new W(x, y); W b = new W(y, x);
        a.start(); b.start(); a.join(); b.join();
    }
}`
	cfg := core.Full()
	cfg.Quantum = 3
	sum := explore(t, deadlock, Options{Config: cfg, Count: 8})
	if sum.Failed == 0 {
		t.Fatal("no failures recorded for a deadlocking program")
	}
	for _, oc := range sum.Outcomes {
		if oc.Err == nil {
			continue
		}
		if !strings.Contains(oc.Err.Error(), "deadlock") {
			t.Errorf("seed %d: error is not a structured deadlock: %v", oc.Seed, oc.Err)
		}
	}
}

func TestExploreLivelockWatchdogBoundsRuns(t *testing.T) {
	spin := `
class Flag { int go; }
class Spinner extends Thread {
    Flag f;
    Spinner(Flag f0) { f = f0; }
    void run() { while (f.go == 0) { int x = 1; } }
}
class Main {
    static void main() {
        Flag f = new Flag();
        Spinner s = new Spinner(f);
        s.start(); s.join();
    }
}`
	start := time.Now()
	sum := explore(t, spin, Options{Config: core.Full(), Count: 4, LivelockWindow: 500})
	if sum.Failed != 4 {
		t.Fatalf("all 4 spinning runs should fail, got %d failures", sum.Failed)
	}
	for _, oc := range sum.Outcomes {
		if oc.Err == nil || !strings.Contains(oc.Err.Error(), "livelock") {
			t.Errorf("seed %d: want livelock error, got %v", oc.Seed, oc.Err)
		}
		if oc.Steps > 1_000_000 {
			t.Errorf("seed %d burned %d steps; livelock window should bound it", oc.Seed, oc.Steps)
		}
	}
	if time.Since(start) > 30*time.Second {
		t.Error("sweep of livelocking program took too long")
	}
}

func TestExploreRejectsDuplicateSeeds(t *testing.T) {
	if _, err := ExploreSource("t.mj", stableRacy, Options{Config: core.Full(), Seeds: []int64{1, 2, 1}}); err == nil {
		t.Fatal("duplicate seeds accepted")
	}
}
