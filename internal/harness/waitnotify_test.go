package harness

import (
	"strings"
	"testing"

	"racedet/internal/core"
)

// The wait/notify edge cases below are classic interpreter bug nests:
// notifications with an empty wait set, wakeups that must restore a
// reentrant lock depth, and joins on already-dead threads. Each
// program is correct (clean and deterministic in its printed result),
// so the harness assertion is uniform: every one of the ≥8 schedules
// terminates, agrees on the output, and reports no races.

func exploreClean(t *testing.T, name, src, want string) {
	t.Helper()
	sum := explore(t, src, Options{Config: core.Full(), Count: 10})
	if sum.Failed != 0 {
		for _, oc := range sum.Outcomes {
			if oc.Err != nil {
				t.Errorf("%s: seed %d failed: %v", name, oc.Seed, oc.Err)
			}
		}
		t.FailNow()
	}
	for _, oc := range sum.Outcomes {
		if got := strings.TrimSpace(oc.Output); got != want {
			t.Errorf("%s: seed %d printed %q, want %q", name, oc.Seed, got, want)
		}
	}
	if len(sum.Findings) != 0 {
		t.Errorf("%s: clean program reported races: %+v", name, sum.Findings)
	}
}

func TestNotifyWithNoWaiter(t *testing.T) {
	// The producer may notify before the consumer ever waits — the
	// notification then targets an empty wait set and is dropped. The
	// guarded loop makes the program correct regardless: the consumer
	// re-checks the flag and only waits while it is unset.
	src := `
class Box {
    boolean ready;
    int value;
    synchronized void publish(int v) {
        value = v;
        ready = true;
        this.notify();
    }
    synchronized int consume() {
        while (!ready) { this.wait(); }
        return value;
    }
}
class Producer extends Thread {
    Box b;
    Producer(Box b0) { b = b0; }
    void run() { b.publish(42); }
}
class Consumer extends Thread {
    Box b; int got;
    Consumer(Box b0) { b = b0; }
    void run() { got = b.consume(); }
}
class Main {
    static void main() {
        Box b = new Box();
        Producer p = new Producer(b);
        Consumer c = new Consumer(b);
        p.start();
        c.start();
        p.join(); c.join();
        print(c.got);
    }
}`
	exploreClean(t, "notify-no-waiter", src, "42")
}

func TestNotifyAllWakesReentrantWaiter(t *testing.T) {
	// The waiter calls wait() through two nested synchronized methods,
	// so it sleeps holding the monitor at depth 2. Wakeup must restore
	// that depth — the waiter then still owns the lock while it reads
	// the value, and both inner exits must happen before the monitor is
	// actually free.
	src := `
class Gate {
    boolean open;
    int value;
    synchronized int awaitOuter() {
        return this.awaitInner();
    }
    synchronized int awaitInner() {
        while (!open) { this.wait(); }
        return value;
    }
    synchronized void release(int v) {
        value = v;
        open = true;
        this.notifyAll();
    }
}
class Waiter extends Thread {
    Gate g; int got;
    Waiter(Gate g0) { g = g0; }
    void run() { got = g.awaitOuter(); }
}
class Main {
    static void main() {
        Gate g = new Gate();
        Waiter a = new Waiter(g);
        Waiter b = new Waiter(g);
        a.start(); b.start();
        g.release(7);
        a.join(); b.join();
        print(a.got + b.got);
    }
}`
	exploreClean(t, "notifyAll-reentrant", src, "14")
}

func TestJoinAfterFinish(t *testing.T) {
	// Joining a thread that already terminated must return immediately
	// on every schedule — including ones where the joiner runs long
	// after the joinee's slot was recycled, and repeated joins on the
	// same dead thread.
	src := `
class Work extends Thread {
    int out;
    void run() { out = 21; }
}
class Main {
    static void main() {
        Work w = new Work();
        w.start();
        for (int i = 0; i < 2000; i++) { int x = i; }
        w.join();
        w.join();
        Work v = new Work();
        v.start();
        v.join();
        print(w.out + v.out);
    }
}`
	exploreClean(t, "join-after-finish", src, "42")
}
