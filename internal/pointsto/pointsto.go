// Package pointsto implements the flow-insensitive, whole-program
// points-to analysis of §5.3: Andersen-style inclusion constraints
// over allocation-site abstract objects, with an on-the-fly call graph
// (virtual call targets are resolved from the receiver's points-to
// set), plus the paper's simple must points-to analysis based on
// single-instance statements.
package pointsto

import (
	"fmt"
	"sort"
	"strings"

	"racedet/internal/ir"
	"racedet/internal/lang/sem"
)

// AbsObj is an abstract object: all concrete objects created at one
// allocation site (or a class object, or the synthetic main-thread
// object).
type AbsObj struct {
	ID    int
	Site  *ir.Instr  // OpNew / OpNewArray; nil for synthetic objects
	Fn    *ir.Func   // function containing the site
	Class *sem.Class // instance class; nil for arrays
	Kind  ObjKind

	// SingleInstance reports that the allocation site executes at most
	// once per program run (§5.3), making this a must-points-to
	// candidate.
	SingleInstance bool
}

// ObjKind classifies abstract objects.
type ObjKind int

// Abstract object kinds.
const (
	ObjAlloc ObjKind = iota // OpNew site
	ObjArray                // OpNewArray site
	ObjClass                // per-class class object
	ObjMain                 // the synthetic main-thread object
)

// String renders the object for dumps.
func (o *AbsObj) String() string {
	switch o.Kind {
	case ObjClass:
		return fmt.Sprintf("class:%s", o.Class.Name)
	case ObjMain:
		return "mainthread"
	case ObjArray:
		return fmt.Sprintf("arr@%s#%d", o.Fn.Name, o.ID)
	default:
		return fmt.Sprintf("%s@%s#%d", o.Class.Name, o.Fn.Name, o.ID)
	}
}

// ObjSet is a small sorted set of abstract objects.
type ObjSet map[*AbsObj]struct{}

// Has reports membership.
func (s ObjSet) Has(o *AbsObj) bool { _, ok := s[o]; return ok }

// Intersects reports a non-empty intersection.
func (s ObjSet) Intersects(t ObjSet) bool {
	if len(s) > len(t) {
		s, t = t, s
	}
	for o := range s {
		if t.Has(o) {
			return true
		}
	}
	return false
}

// Sorted returns the members ordered by ID (deterministic dumps).
func (s ObjSet) Sorted() []*AbsObj {
	out := make([]*AbsObj, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// varKey names a points-to variable: a register of a function.
type varKey struct {
	fn  *ir.Func
	reg int
}

// fieldKey names a field of an abstract object (Slot -1 = array elems).
type fieldKey struct {
	obj  *AbsObj
	slot int
}

// Result is the fixed point of the analysis.
type Result struct {
	prog *ir.Program

	objs    []*AbsObj
	siteObj map[*ir.Instr]*AbsObj
	classOb map[*sem.Class]*AbsObj
	mainObj *AbsObj

	varPts   map[varKey]ObjSet
	fieldPts map[fieldKey]ObjSet
	retPts   map[*ir.Func]ObjSet

	// Callees maps each call/start instruction to its resolved target
	// functions (the on-the-fly call graph).
	Callees map[*ir.Instr][]*ir.Func

	// StartTargets maps each OpStart instruction to the run methods it
	// may invoke.
	StartTargets map[*ir.Instr][]*ir.Func

	// singleFn marks functions that execute at most once per run.
	singleFn map[*ir.Func]bool
	// loopy marks blocks that lie on a CFG cycle (per function).
	loopy map[*ir.Block]bool
}

// MainObj returns the synthetic main-thread abstract object.
func (r *Result) MainObj() *AbsObj { return r.mainObj }

// ClassObj returns the abstract class object for cl.
func (r *Result) ClassObj(cl *sem.Class) *AbsObj { return r.classOb[cl] }

// SiteObj returns the abstract object of an allocation instruction.
func (r *Result) SiteObj(in *ir.Instr) *AbsObj { return r.siteObj[in] }

// Objects returns all abstract objects.
func (r *Result) Objects() []*AbsObj { return r.objs }

// VarPts returns MayPT(reg) in fn; never nil.
func (r *Result) VarPts(fn *ir.Func, reg int) ObjSet {
	if s := r.varPts[varKey{fn, reg}]; s != nil {
		return s
	}
	return ObjSet{}
}

// FieldPts returns the may points-to set of o.slot (ArrayElemSlot for
// elements); never nil.
func (r *Result) FieldPts(o *AbsObj, slot int) ObjSet {
	if s := r.fieldPts[fieldKey{o, slot}]; s != nil {
		return s
	}
	return ObjSet{}
}

// ArrayElemSlot is the field slot of array elements.
const ArrayElemSlot = -1

// MustPts returns MustPT(reg): the singleton abstract object if the
// may set is a singleton whose object is single-instance, else nil
// (§5.3's conservative must points-to).
func (r *Result) MustPts(fn *ir.Func, reg int) *AbsObj {
	s := r.VarPts(fn, reg)
	if len(s) != 1 {
		return nil
	}
	for o := range s {
		if o.SingleInstance {
			return o
		}
	}
	return nil
}

// SingleInstanceFn reports whether fn executes at most once per run.
func (r *Result) SingleInstanceFn(fn *ir.Func) bool { return r.singleFn[fn] }

// InLoop reports whether b lies on an intraprocedural CFG cycle.
func (r *Result) InLoop(b *ir.Block) bool { return r.loopy[b] }

// SingleInstanceInstr reports whether the instruction executes at most
// once per run: its function is single-instance and its block is not
// in a loop.
func (r *Result) SingleInstanceInstr(fn *ir.Func, b *ir.Block) bool {
	return r.singleFn[fn] && !r.loopy[b]
}

// Analyze runs the analysis to a fixed point.
func Analyze(prog *ir.Program) *Result {
	r := &Result{
		prog:         prog,
		siteObj:      make(map[*ir.Instr]*AbsObj),
		classOb:      make(map[*sem.Class]*AbsObj),
		varPts:       make(map[varKey]ObjSet),
		fieldPts:     make(map[fieldKey]ObjSet),
		retPts:       make(map[*ir.Func]ObjSet),
		Callees:      make(map[*ir.Instr][]*ir.Func),
		StartTargets: make(map[*ir.Instr][]*ir.Func),
		singleFn:     make(map[*ir.Func]bool),
		loopy:        make(map[*ir.Block]bool),
	}
	r.collectObjects()
	r.markLoops()
	r.solve()
	r.finish()
	return r
}

// finish runs the post-fixpoint phases shared by the serial and
// parallel solvers.
func (r *Result) finish() {
	r.sortCallGraph()
	r.computeSingleInstance()
	r.markSingleObjects()
}

// sortCallGraph orders every resolved callee slice by function name.
// resolveCall and resolveStart accumulate targets in points-to-set
// iteration order (a Go map), so without this the call-graph slices —
// and everything downstream that prints or digests them — would vary
// between runs.
func (r *Result) sortCallGraph() {
	byName := func(fs []*ir.Func) {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
	}
	for _, fs := range r.Callees {
		byName(fs)
	}
	for _, fs := range r.StartTargets {
		byName(fs)
	}
}

func (r *Result) newObj(o *AbsObj) *AbsObj {
	o.ID = len(r.objs)
	r.objs = append(r.objs, o)
	return o
}

func (r *Result) collectObjects() {
	r.mainObj = r.newObj(&AbsObj{Kind: ObjMain})
	for _, cl := range r.prog.Sem.Order {
		r.classOb[cl] = r.newObj(&AbsObj{Kind: ObjClass, Class: cl})
	}
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpNew:
					r.siteObj[in] = r.newObj(&AbsObj{Site: in, Fn: fn, Class: in.Class, Kind: ObjAlloc})
				case ir.OpNewArray:
					r.siteObj[in] = r.newObj(&AbsObj{Site: in, Fn: fn, Kind: ObjArray})
				}
			}
		}
	}
}

// markLoops marks blocks on CFG cycles (back-edge reachability).
func (r *Result) markLoops() {
	for _, fn := range r.prog.Funcs {
		// A block is loopy iff it can reach itself.
		n := len(fn.Blocks)
		for _, b := range fn.Blocks {
			seen := make([]bool, n)
			stack := append([]*ir.Block(nil), b.Succs...)
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if x == b {
					r.loopy[b] = true
					break
				}
				if seen[x.ID] {
					continue
				}
				seen[x.ID] = true
				stack = append(stack, x.Succs...)
			}
		}
	}
}

// addVar adds o to pts(fn, reg); reports change.
func (r *Result) addVar(fn *ir.Func, reg int, o *AbsObj) bool {
	k := varKey{fn, reg}
	s := r.varPts[k]
	if s == nil {
		s = ObjSet{}
		r.varPts[k] = s
	}
	if s.Has(o) {
		return false
	}
	s[o] = struct{}{}
	return true
}

func (r *Result) addField(o *AbsObj, slot int, target *AbsObj) bool {
	k := fieldKey{o, slot}
	s := r.fieldPts[k]
	if s == nil {
		s = ObjSet{}
		r.fieldPts[k] = s
	}
	if s.Has(target) {
		return false
	}
	s[target] = struct{}{}
	return true
}

func (r *Result) addRet(fn *ir.Func, o *AbsObj) bool {
	s := r.retPts[fn]
	if s == nil {
		s = ObjSet{}
		r.retPts[fn] = s
	}
	if s.Has(o) {
		return false
	}
	s[o] = struct{}{}
	return true
}

// solve iterates all constraints to a fixed point. The benchmarks are
// small, so a simple whole-program sweep loop is plenty fast and keeps
// the code auditable.
func (r *Result) solve() {
	// Seed the main thread's receiver: main is static, so there is no
	// register; MustThread handles main via mainObj directly.
	changed := true
	for changed {
		changed = false
		for _, fn := range r.prog.Funcs {
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					if r.apply(fn, in) {
						changed = true
					}
				}
			}
		}
	}
}

// apply processes one instruction's constraints; reports change.
func (r *Result) apply(fn *ir.Func, in *ir.Instr) bool {
	changed := false
	copyInto := func(dst int, src ObjSet) {
		for o := range src {
			if r.addVar(fn, dst, o) {
				changed = true
			}
		}
	}
	switch in.Op {
	case ir.OpNew, ir.OpNewArray:
		if r.addVar(fn, in.Dst, r.siteObj[in]) {
			changed = true
		}
	case ir.OpClassRef:
		if r.addVar(fn, in.Dst, r.classOb[in.Class]) {
			changed = true
		}
	case ir.OpMove:
		copyInto(in.Dst, r.VarPts(fn, in.Src[0]))
	case ir.OpGetField:
		for o := range r.VarPts(fn, in.Src[0]) {
			copyInto(in.Dst, r.FieldPts(o, in.Field.Index))
		}
	case ir.OpPutField:
		vals := r.VarPts(fn, in.Src[1])
		for o := range r.VarPts(fn, in.Src[0]) {
			for v := range vals {
				if r.addField(o, in.Field.Index, v) {
					changed = true
				}
			}
		}
	case ir.OpGetStatic:
		co := r.classOb[in.Field.Class]
		copyInto(in.Dst, r.FieldPts(co, StaticSlotKey(in.Field)))
	case ir.OpPutStatic:
		co := r.classOb[in.Field.Class]
		for v := range r.VarPts(fn, in.Src[0]) {
			if r.addField(co, StaticSlotKey(in.Field), v) {
				changed = true
			}
		}
	case ir.OpArrayLoad:
		for o := range r.VarPts(fn, in.Src[0]) {
			copyInto(in.Dst, r.FieldPts(o, ArrayElemSlot))
		}
	case ir.OpArrayStore:
		vals := r.VarPts(fn, in.Src[2])
		for o := range r.VarPts(fn, in.Src[0]) {
			for v := range vals {
				if r.addField(o, ArrayElemSlot, v) {
					changed = true
				}
			}
		}
	case ir.OpCall:
		for _, callee := range r.resolveCall(fn, in) {
			if r.linkCall(fn, in, callee) {
				changed = true
			}
		}
	case ir.OpStart:
		for _, runFn := range r.resolveStart(fn, in) {
			// The thread object flows to run's receiver.
			for o := range r.VarPts(fn, in.Src[0]) {
				if o.Class == nil || !o.Class.IsThread() {
					continue
				}
				if runFn.Method.Class != nil && o.Class.ResolveOverride("run") == runFn.Method {
					if r.addVar(runFn, 0, o) {
						changed = true
					}
				}
			}
		}
	case ir.OpReturn:
		if len(in.Src) > 0 {
			for o := range r.VarPts(fn, in.Src[0]) {
				if r.addRet(fn, o) {
					changed = true
				}
			}
		}
	}
	return changed
}

// StaticSlotKey maps static fields to negative field keys on the class
// object so they never collide with instance slots.
func StaticSlotKey(f *sem.Field) int { return -2 - f.Index }

// resolveCall computes (and caches) the callee set of a call site.
func (r *Result) resolveCall(fn *ir.Func, in *ir.Instr) []*ir.Func {
	var out []*ir.Func
	add := func(f *ir.Func) {
		for _, x := range out {
			if x == f {
				return
			}
		}
		out = append(out, f)
	}
	if !in.Virtual {
		if f := r.prog.FuncOf[in.Callee]; f != nil {
			add(f)
		}
	} else {
		for o := range r.VarPts(fn, in.Src[0]) {
			if o.Class == nil {
				continue
			}
			m := o.Class.ResolveOverride(in.Callee.Name)
			if m == nil || m.Builtin != sem.NotBuiltin {
				continue
			}
			if f := r.prog.FuncOf[m]; f != nil {
				add(f)
			}
		}
	}
	r.Callees[in] = out
	return out
}

// resolveStart computes the run methods an OpStart may invoke.
func (r *Result) resolveStart(fn *ir.Func, in *ir.Instr) []*ir.Func {
	var out []*ir.Func
	add := func(f *ir.Func) {
		for _, x := range out {
			if x == f {
				return
			}
		}
		out = append(out, f)
	}
	for o := range r.VarPts(fn, in.Src[0]) {
		if o.Class == nil || !o.Class.IsThread() {
			continue
		}
		m := o.Class.ResolveOverride("run")
		if m == nil || m.Builtin != sem.NotBuiltin {
			continue
		}
		if f := r.prog.FuncOf[m]; f != nil {
			add(f)
		}
	}
	r.StartTargets[in] = out
	return out
}

// linkCall propagates arguments and return values along one call edge.
func (r *Result) linkCall(fn *ir.Func, in *ir.Instr, callee *ir.Func) bool {
	changed := false
	// in.Src aligns with callee registers 0..: receiver first for
	// instance methods.
	n := callee.NumParams
	if len(in.Src) < n {
		n = len(in.Src)
	}
	for i := 0; i < n; i++ {
		for o := range r.VarPts(fn, in.Src[i]) {
			if r.addVar(callee, i, o) {
				changed = true
			}
		}
	}
	if in.HasDst() {
		for o := range r.retPts[callee] {
			if r.addVar(fn, in.Dst, o) {
				changed = true
			}
		}
	}
	return changed
}

// computeSingleInstance marks functions that run at most once: main,
// plus functions whose every call/start site is itself single-instance
// (not in a loop, in a single-instance function, and the only site).
func (r *Result) computeSingleInstance() {
	mainFn := r.prog.FuncOf[r.prog.Sem.Main]

	// Gather call sites per function.
	type site struct {
		fn *ir.Func
		b  *ir.Block
	}
	sites := make(map[*ir.Func][]site)
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCall:
					for _, callee := range r.Callees[in] {
						sites[callee] = append(sites[callee], site{fn, b})
					}
				case ir.OpStart:
					for _, runFn := range r.StartTargets[in] {
						sites[runFn] = append(sites[runFn], site{fn, b})
					}
				}
			}
		}
	}

	// Iterate: start optimistic for main only, grow pessimistically.
	r.singleFn = map[*ir.Func]bool{}
	if mainFn != nil {
		r.singleFn[mainFn] = true
	}
	changed := true
	for changed {
		changed = false
		for _, fn := range r.prog.Funcs {
			if r.singleFn[fn] || fn == mainFn {
				continue
			}
			ss := sites[fn]
			if len(ss) != 1 {
				continue
			}
			s := ss[0]
			if s.fn == fn {
				continue // self recursion
			}
			if r.singleFn[s.fn] && !r.loopy[s.b] {
				r.singleFn[fn] = true
				changed = true
			}
		}
	}
}

// Dump renders the entire fixed point deterministically — every
// non-empty variable, field, and return points-to set plus the
// resolved call graph, in program and ID order — so two Results can be
// compared byte-for-byte (the serial-vs-parallel solver tests) and the
// fact cache can digest analysis summaries stably.
func (r *Result) Dump() string {
	var sb strings.Builder
	set := func(s ObjSet) string {
		parts := make([]string, 0, len(s))
		for _, o := range s.Sorted() {
			parts = append(parts, o.String())
		}
		return strings.Join(parts, ", ")
	}
	for _, fn := range r.prog.Funcs {
		for reg := 0; reg < fn.NumRegs; reg++ {
			if s := r.varPts[varKey{fn, reg}]; len(s) > 0 {
				fmt.Fprintf(&sb, "var %s r%d = {%s}\n", fn.Name, reg, set(s))
			}
		}
		if s := r.retPts[fn]; len(s) > 0 {
			fmt.Fprintf(&sb, "ret %s = {%s}\n", fn.Name, set(s))
		}
	}
	fks := make([]fieldKey, 0, len(r.fieldPts))
	for k := range r.fieldPts {
		fks = append(fks, k)
	}
	sort.Slice(fks, func(i, j int) bool {
		if fks[i].obj.ID != fks[j].obj.ID {
			return fks[i].obj.ID < fks[j].obj.ID
		}
		return fks[i].slot < fks[j].slot
	})
	for _, k := range fks {
		if s := r.fieldPts[k]; len(s) > 0 {
			fmt.Fprintf(&sb, "field %s.%d = {%s}\n", k.obj, k.slot, set(s))
		}
	}
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				var fs []*ir.Func
				var tag string
				switch in.Op {
				case ir.OpCall:
					fs, tag = r.Callees[in], "call"
				case ir.OpStart:
					fs, tag = r.StartTargets[in], "start"
				default:
					continue
				}
				names := make([]string, 0, len(fs))
				for _, f := range fs {
					names = append(names, f.Name)
				}
				sort.Strings(names)
				fmt.Fprintf(&sb, "%s %s b%d = [%s]\n", tag, fn.Name, b.ID, strings.Join(names, ", "))
			}
		}
	}
	return sb.String()
}

// markSingleObjects stamps SingleInstance on abstract objects whose
// allocation site executes at most once. Class objects and the main
// thread object are single-instance by construction.
func (r *Result) markSingleObjects() {
	for _, o := range r.objs {
		switch o.Kind {
		case ObjClass, ObjMain:
			o.SingleInstance = true
		case ObjAlloc, ObjArray:
			// Find the block containing the site.
			for _, b := range o.Fn.Blocks {
				for _, in := range b.Instrs {
					if in == o.Site {
						o.SingleInstance = r.SingleInstanceInstr(o.Fn, b)
					}
				}
			}
		}
	}
}
