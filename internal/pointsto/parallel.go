package pointsto

import (
	"runtime"
	"sort"
	"sync"

	"racedet/internal/ir"
	"racedet/internal/lang/sem"
)

// AnalyzeParallel computes the same fixed point as Analyze with a
// parallel worklist solver: the constraint system is lowered onto a
// dense node graph (one node per register, per function return, and
// per abstract-object field slot), copy-edge cycles are collapsed
// offline with Tarjan's SCC algorithm, and propagation is
// difference-based — each round only ships the objects a node gained
// since it was last processed. Rounds are bulk-synchronous: workers
// own nodes by id modulo the worker count, write cross-shard effects
// into per-(sender, receiver) outboxes, and apply them after a
// barrier, so no node state is ever touched by two goroutines without
// an intervening barrier. Inclusion constraints have a unique least
// fixed point, so the result is identical to the serial solver's
// regardless of scheduling; the call-graph slices are ordered by
// finish() exactly as in the serial path.
func AnalyzeParallel(prog *ir.Program, workers int) *Result {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	r := &Result{
		prog:         prog,
		siteObj:      make(map[*ir.Instr]*AbsObj),
		classOb:      make(map[*sem.Class]*AbsObj),
		varPts:       make(map[varKey]ObjSet),
		fieldPts:     make(map[fieldKey]ObjSet),
		retPts:       make(map[*ir.Func]ObjSet),
		Callees:      make(map[*ir.Instr][]*ir.Func),
		StartTargets: make(map[*ir.Instr][]*ir.Func),
		singleFn:     make(map[*ir.Func]bool),
		loopy:        make(map[*ir.Block]bool),
	}
	r.collectObjects()
	r.markLoops()
	newPSolver(r, workers).run()
	r.finish()
	return r
}

// bitset is a fixed-capacity set of abstract-object ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// ids appends the set members to out in ascending order.
func (b bitset) ids(out []int32) []int32 {
	for wi, w := range b {
		for w != 0 {
			bit := w & -w
			out = append(out, int32(wi*64+popTrailing(w)))
			w &^= bit
		}
	}
	return out
}

// popTrailing returns the index of the lowest set bit of w (w != 0).
func popTrailing(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// ptrigger is a complex constraint watching one node: a field access
// whose base set grew, or a virtual call / thread start whose receiver
// set grew.
type ptrigger struct {
	fn *ir.Func
	in *ir.Instr
}

// psolver carries the dense constraint graph between build, collapse,
// and the BSP propagation rounds.
type psolver struct {
	r       *Result
	workers int

	nobj  int
	nodes int

	varBase   map[*ir.Func]int32
	retID     map[*ir.Func]int32
	slotIdx   map[int]int
	nslots    int
	fieldBase int32

	rep []int32 // SCC representative of each node (identity outside cycles)

	cur, pend []bitset
	succ      [][]int32
	succSet   []map[int32]struct{}
	trigs     [][]ptrigger

	staticEdges [][2]int32
	seeds       [][2]int32 // (node, objID)
	trigBuild   [][]ptrigger
}

func newPSolver(r *Result, workers int) *psolver {
	p := &psolver{r: r, workers: workers, nobj: len(r.objs)}
	p.layout()
	p.buildConstraints()
	p.collapse()
	return p
}

// layout assigns dense node ids: registers and a return node per
// function in program order, then one node per (object, slot) pair for
// every field slot mentioned anywhere in the program. Eager allocation
// over-approximates the slots any given object can host, but unused
// nodes stay empty and cost one bitset each.
func (p *psolver) layout() {
	p.varBase = make(map[*ir.Func]int32)
	p.retID = make(map[*ir.Func]int32)
	next := int32(0)
	for _, fn := range p.r.prog.Funcs {
		p.varBase[fn] = next
		next += int32(fn.NumRegs)
		p.retID[fn] = next
		next++
	}
	slotSet := map[int]bool{}
	for _, fn := range p.r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpGetField, ir.OpPutField:
					slotSet[in.Field.Index] = true
				case ir.OpGetStatic, ir.OpPutStatic:
					slotSet[StaticSlotKey(in.Field)] = true
				case ir.OpArrayLoad, ir.OpArrayStore:
					slotSet[ArrayElemSlot] = true
				}
			}
		}
	}
	slots := make([]int, 0, len(slotSet))
	for s := range slotSet {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	p.slotIdx = make(map[int]int, len(slots))
	for i, s := range slots {
		p.slotIdx[s] = i
	}
	p.nslots = len(slots)
	p.fieldBase = next
	next += int32(p.nobj * p.nslots)
	p.nodes = int(next)
}

func (p *psolver) varNode(fn *ir.Func, reg int) int32 { return p.varBase[fn] + int32(reg) }

func (p *psolver) fieldNode(objID, slot int) int32 {
	return p.fieldBase + int32(objID*p.nslots+p.slotIdx[slot])
}

func (p *psolver) edge(src, dst int32) {
	p.staticEdges = append(p.staticEdges, [2]int32{src, dst})
}

func (p *psolver) addTrig(node int32, fn *ir.Func, in *ir.Instr) {
	p.trigBuild[node] = append(p.trigBuild[node], ptrigger{fn, in})
}

// buildConstraints walks the program once, splitting every instruction
// into seeds (allocation sites), static copy edges (moves, statics,
// returns, non-virtual calls), and triggers (field accesses, virtual
// calls, thread starts — constraints that depend on a points-to set).
func (p *psolver) buildConstraints() {
	p.trigBuild = make([][]ptrigger, p.nodes)
	r := p.r
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpNew, ir.OpNewArray:
					p.seeds = append(p.seeds, [2]int32{p.varNode(fn, in.Dst), int32(r.siteObj[in].ID)})
				case ir.OpClassRef:
					p.seeds = append(p.seeds, [2]int32{p.varNode(fn, in.Dst), int32(r.classOb[in.Class].ID)})
				case ir.OpMove:
					p.edge(p.varNode(fn, in.Src[0]), p.varNode(fn, in.Dst))
				case ir.OpGetField, ir.OpPutField, ir.OpArrayLoad, ir.OpArrayStore:
					p.addTrig(p.varNode(fn, in.Src[0]), fn, in)
				case ir.OpGetStatic:
					co := r.classOb[in.Field.Class]
					p.edge(p.fieldNode(co.ID, StaticSlotKey(in.Field)), p.varNode(fn, in.Dst))
				case ir.OpPutStatic:
					co := r.classOb[in.Field.Class]
					p.edge(p.varNode(fn, in.Src[0]), p.fieldNode(co.ID, StaticSlotKey(in.Field)))
				case ir.OpCall:
					r.Callees[in] = nil
					if !in.Virtual {
						if f := r.prog.FuncOf[in.Callee]; f != nil {
							r.Callees[in] = []*ir.Func{f}
							p.linkEdges(fn, in, f)
						}
					} else {
						p.addTrig(p.varNode(fn, in.Src[0]), fn, in)
					}
				case ir.OpStart:
					r.StartTargets[in] = nil
					p.addTrig(p.varNode(fn, in.Src[0]), fn, in)
				case ir.OpReturn:
					if len(in.Src) > 0 {
						p.edge(p.varNode(fn, in.Src[0]), p.retID[fn])
					}
				}
			}
		}
	}
}

// linkEdges adds the argument and return copy edges of one call edge.
func (p *psolver) linkEdges(fn *ir.Func, in *ir.Instr, callee *ir.Func) {
	n := callee.NumParams
	if len(in.Src) < n {
		n = len(in.Src)
	}
	for i := 0; i < n; i++ {
		p.edge(p.varNode(fn, in.Src[i]), p.varNode(callee, i))
	}
	if in.HasDst() {
		p.edge(p.retID[callee], p.varNode(fn, in.Dst))
	}
}

// collapse runs Tarjan over the static copy edges, remaps every edge,
// trigger, and seed onto SCC representatives, and allocates the
// per-representative solver state. Edges discovered during solving
// (from triggers) are representative-mapped at emission but never
// merge nodes; members of a copy cycle provably converge to equal
// sets, so reading a member through its representative is exact.
func (p *psolver) collapse() {
	adj := make([][]int32, p.nodes)
	for _, e := range p.staticEdges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	p.rep = tarjanReps(p.nodes, adj)

	p.succ = make([][]int32, p.nodes)
	p.succSet = make([]map[int32]struct{}, p.nodes)
	p.trigs = make([][]ptrigger, p.nodes)
	p.cur = make([]bitset, p.nodes)
	p.pend = make([]bitset, p.nodes)
	for i := 0; i < p.nodes; i++ {
		if p.rep[i] != int32(i) {
			continue
		}
		p.succSet[i] = make(map[int32]struct{})
		p.cur[i] = newBitset(p.nobj)
		p.pend[i] = newBitset(p.nobj)
	}
	for _, e := range p.staticEdges {
		s, d := p.rep[e[0]], p.rep[e[1]]
		if s == d {
			continue
		}
		if _, ok := p.succSet[s][d]; ok {
			continue
		}
		p.succSet[s][d] = struct{}{}
		p.succ[s] = append(p.succ[s], d)
	}
	for n, ts := range p.trigBuild {
		if len(ts) == 0 {
			continue
		}
		rn := p.rep[n]
		p.trigs[rn] = append(p.trigs[rn], ts...)
	}
	p.trigBuild = nil
	for _, s := range p.seeds {
		rn := p.rep[s[0]]
		oid := int(s[1])
		if !p.cur[rn].has(oid) {
			p.cur[rn].set(oid)
			p.pend[rn].set(oid)
		}
	}
}

// tarjanReps computes SCC representatives (iterative Tarjan; the
// representative is the DFS root of each component).
func tarjanReps(n int, adj [][]int32) []int32 {
	rep := make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onstack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var next int32
	type frame struct {
		v  int32
		ei int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		dfs = append(dfs[:0], frame{int32(root), 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onstack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onstack[w] = true
					dfs = append(dfs, frame{w, 0})
				} else if onstack[w] && low[v] > index[w] {
					low[v] = index[w]
				}
				continue
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				pv := dfs[len(dfs)-1].v
				if low[pv] > low[v] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					rep[w] = v
					if w == v {
						break
					}
				}
			}
		}
	}
	return rep
}

// pupdate ships newly discovered objects to a node; pedge requests a
// new copy edge discovered by a trigger.
type pupdate struct {
	dst  int32
	objs []int32
}

type pedge struct {
	src, dst int32
}

// run iterates BSP rounds to the fixed point. Each round: (A) every
// worker drains the pending deltas of its nodes, writing propagations
// and trigger effects into outboxes; (B1) edge requests are applied by
// the owner of the edge's source, seeding the new successor with the
// source's current set; (B2) object updates are applied by the owner
// of the target, growing cur and pend. The loop ends when a round
// grows nothing.
func (p *psolver) run() {
	w := p.workers
	outU := make([][][]pupdate, w)
	outE := make([][][]pedge, w)
	for i := 0; i < w; i++ {
		outU[i] = make([][]pupdate, w)
		outE[i] = make([][]pedge, w)
	}
	calleeAcc := make([]map[*ir.Instr][]*ir.Func, w)
	startAcc := make([]map[*ir.Instr][]*ir.Func, w)
	for i := 0; i < w; i++ {
		calleeAcc[i] = make(map[*ir.Instr][]*ir.Func)
		startAcc[i] = make(map[*ir.Instr][]*ir.Func)
	}
	active := make([]bool, w)

	owner := func(n int32) int { return int(n) % w }
	parallel := func(f func(me int)) {
		var wg sync.WaitGroup
		for me := 0; me < w; me++ {
			wg.Add(1)
			go func(me int) {
				defer wg.Done()
				f(me)
			}(me)
		}
		wg.Wait()
	}

	for {
		// Phase A: drain deltas, emit propagations and trigger effects.
		parallel(func(me int) {
			emitObj := func(dst, oid int32) {
				outU[me][owner(dst)] = append(outU[me][owner(dst)], pupdate{dst, []int32{oid}})
			}
			emitEdge := func(src, dst int32) {
				outE[me][owner(src)] = append(outE[me][owner(src)], pedge{src, dst})
			}
			for n := int32(me); int(n) < p.nodes; n += int32(w) {
				if p.rep[n] != n || p.pend[n].empty() {
					continue
				}
				ids := p.pend[n].ids(nil)
				p.pend[n].clear()
				for _, s := range p.succ[n] {
					outU[me][owner(s)] = append(outU[me][owner(s)], pupdate{s, ids})
				}
				for _, t := range p.trigs[n] {
					p.fire(t, ids, emitObj, emitEdge, calleeAcc[me], startAcc[me])
				}
			}
		})

		// Phase B1: install new edges (owner of the edge source), and
		// seed each fresh successor with the source's current set.
		parallel(func(me int) {
			for from := 0; from < w; from++ {
				for _, e := range outE[from][me] {
					if e.src == e.dst {
						continue
					}
					if _, ok := p.succSet[e.src][e.dst]; ok {
						continue
					}
					p.succSet[e.src][e.dst] = struct{}{}
					p.succ[e.src] = append(p.succ[e.src], e.dst)
					if ids := p.cur[e.src].ids(nil); len(ids) > 0 {
						outU[me][owner(e.dst)] = append(outU[me][owner(e.dst)], pupdate{e.dst, ids})
					}
				}
				outE[from][me] = outE[from][me][:0]
			}
		})

		// Phase B2: apply object updates (owner of the target).
		parallel(func(me int) {
			act := false
			for from := 0; from < w; from++ {
				for _, u := range outU[from][me] {
					cur, pd := p.cur[u.dst], p.pend[u.dst]
					for _, oid := range u.objs {
						if !cur.has(int(oid)) {
							cur.set(int(oid))
							pd.set(int(oid))
							act = true
						}
					}
				}
				outU[from][me] = outU[from][me][:0]
			}
			active[me] = act
		})

		anyAct := false
		for _, a := range active {
			anyAct = anyAct || a
		}
		if !anyAct {
			break
		}
	}

	p.publish(calleeAcc, startAcc)
}

// fire evaluates one trigger against the freshly added objects.
func (p *psolver) fire(t ptrigger, ids []int32, emitObj func(dst, oid int32), emitEdge func(src, dst int32), callees, starts map[*ir.Instr][]*ir.Func) {
	r := p.r
	in, fn := t.in, t.fn
	switch in.Op {
	case ir.OpGetField:
		dst := p.rep[p.varNode(fn, in.Dst)]
		for _, oid := range ids {
			emitEdge(p.rep[p.fieldNode(int(oid), in.Field.Index)], dst)
		}
	case ir.OpPutField:
		val := p.rep[p.varNode(fn, in.Src[1])]
		for _, oid := range ids {
			emitEdge(val, p.rep[p.fieldNode(int(oid), in.Field.Index)])
		}
	case ir.OpArrayLoad:
		dst := p.rep[p.varNode(fn, in.Dst)]
		for _, oid := range ids {
			emitEdge(p.rep[p.fieldNode(int(oid), ArrayElemSlot)], dst)
		}
	case ir.OpArrayStore:
		val := p.rep[p.varNode(fn, in.Src[2])]
		for _, oid := range ids {
			emitEdge(val, p.rep[p.fieldNode(int(oid), ArrayElemSlot)])
		}
	case ir.OpCall:
		for _, oid := range ids {
			o := r.objs[oid]
			if o.Class == nil {
				continue
			}
			m := o.Class.ResolveOverride(in.Callee.Name)
			if m == nil || m.Builtin != sem.NotBuiltin {
				continue
			}
			f := r.prog.FuncOf[m]
			if f == nil {
				continue
			}
			addTarget(callees, in, f)
			n := f.NumParams
			if len(in.Src) < n {
				n = len(in.Src)
			}
			for i := 0; i < n; i++ {
				emitEdge(p.rep[p.varNode(fn, in.Src[i])], p.rep[p.varNode(f, i)])
			}
			if in.HasDst() {
				emitEdge(p.rep[p.retID[f]], p.rep[p.varNode(fn, in.Dst)])
			}
		}
	case ir.OpStart:
		for _, oid := range ids {
			o := r.objs[oid]
			if o.Class == nil || !o.Class.IsThread() {
				continue
			}
			m := o.Class.ResolveOverride("run")
			if m == nil || m.Builtin != sem.NotBuiltin {
				continue
			}
			f := r.prog.FuncOf[m]
			if f == nil {
				continue
			}
			addTarget(starts, in, f)
			if f.Method.Class != nil {
				// The thread object itself flows to run's receiver.
				emitObj(p.rep[p.varNode(f, 0)], oid)
			}
		}
	}
}

func addTarget(m map[*ir.Instr][]*ir.Func, in *ir.Instr, f *ir.Func) {
	for _, x := range m[in] {
		if x == f {
			return
		}
	}
	m[in] = append(m[in], f)
}

// publish converts the dense fixed point back into the Result maps,
// creating entries only for non-empty sets (matching the lazy serial
// solver), and merges the per-worker call-graph accumulators.
func (p *psolver) publish(calleeAcc, startAcc []map[*ir.Instr][]*ir.Func) {
	r := p.r
	for _, fn := range r.prog.Funcs {
		for reg := 0; reg < fn.NumRegs; reg++ {
			if s := p.toSet(p.rep[p.varNode(fn, reg)]); len(s) > 0 {
				r.varPts[varKey{fn, reg}] = s
			}
		}
		if s := p.toSet(p.rep[p.retID[fn]]); len(s) > 0 {
			r.retPts[fn] = s
		}
	}
	for _, o := range r.objs {
		for slot := range p.slotIdx {
			if s := p.toSet(p.rep[p.fieldNode(o.ID, slot)]); len(s) > 0 {
				r.fieldPts[fieldKey{o, slot}] = s
			}
		}
	}
	// Merge in program order so the pre-sort slice order is stable;
	// finish() then orders every slice by name exactly as the serial
	// path does.
	for _, fn := range r.prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCall:
					for _, acc := range calleeAcc {
						for _, f := range acc[in] {
							addCallee(r.Callees, in, f)
						}
					}
				case ir.OpStart:
					for _, acc := range startAcc {
						for _, f := range acc[in] {
							addCallee(r.StartTargets, in, f)
						}
					}
				}
			}
		}
	}
}

func addCallee(m map[*ir.Instr][]*ir.Func, in *ir.Instr, f *ir.Func) {
	for _, x := range m[in] {
		if x == f {
			return
		}
	}
	m[in] = append(m[in], f)
}

func (p *psolver) toSet(node int32) ObjSet {
	s := p.cur[node]
	if s == nil || s.empty() {
		return nil
	}
	out := ObjSet{}
	for _, oid := range s.ids(nil) {
		out[p.r.objs[oid]] = struct{}{}
	}
	return out
}
