package pointsto

import (
	"testing"

	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
)

func analyze(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	low := lower.Lower(sp)
	return low.Prog, Analyze(low.Prog)
}

// objNames renders an ObjSet's classes for matching.
func classNames(s ObjSet) map[string]int {
	out := map[string]int{}
	for o := range s {
		name := "?"
		switch {
		case o.Kind == ObjClass:
			name = "class:" + o.Class.Name
		case o.Kind == ObjMain:
			name = "main"
		case o.Kind == ObjArray:
			name = "array"
		case o.Class != nil:
			name = o.Class.Name
		}
		out[name]++
	}
	return out
}

func TestFlowThroughFieldsAndCalls(t *testing.T) {
	src := `
class Box { Item item; }
class Item { int v; }
class M {
    static Box make() {
        Box b = new Box();
        b.item = new Item();
        return b;
    }
    static void main() {
        Box b1 = make();
        Box b2 = make();
        Item i = b1.item;
        i.v = 1;
    }
}`
	prog, res := analyze(t, src)
	main := prog.FuncByName("M.main")
	// Find the putfield Item.v; its receiver must point to the Item
	// allocation site.
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField && in.Field.Name == "v" {
				got := classNames(res.VarPts(main, in.Src[0]))
				if got["Item"] != 1 || len(got) != 1 {
					t.Errorf("pts(i) = %v, want exactly the Item site", got)
				}
			}
		}
	}
}

func TestVirtualCallResolution(t *testing.T) {
	src := `
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class C extends A { int m() { return 3; } }
class M {
    static void main() {
        A x = new B();
        print(x.m());
        A y = new C();
        print(y.m());
    }
}`
	prog, res := analyze(t, src)
	main := prog.FuncByName("M.main")
	var targets []string
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				for _, callee := range res.Callees[in] {
					targets = append(targets, callee.Name)
				}
			}
		}
	}
	if len(targets) != 2 || targets[0] != "B.m" || targets[1] != "C.m" {
		t.Errorf("call targets = %v, want [B.m C.m] (points-to-based devirtualization)", targets)
	}
}

func TestStartTargetsAndThreadReceiver(t *testing.T) {
	src := `
class W extends Thread {
    int n;
    void run() { n = 1; }
}
class M {
    static void main() {
        W w = new W();
        w.start();
        w.join();
    }
}`
	prog, res := analyze(t, src)
	main := prog.FuncByName("M.main")
	runFn := prog.FuncByName("W.run")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStart {
				targets := res.StartTargets[in]
				if len(targets) != 1 || targets[0] != runFn {
					t.Fatalf("start targets = %v", targets)
				}
			}
		}
	}
	// The thread object must flow into run's receiver.
	got := classNames(res.VarPts(runFn, 0))
	if got["W"] != 1 {
		t.Errorf("run's this = %v", got)
	}
}

func TestArrayElementFlow(t *testing.T) {
	src := `
class Item { int v; }
class M {
    static void main() {
        Item[] items = new Item[2];
        items[0] = new Item();
        Item x = items[1];
        x.v = 1;
    }
}`
	prog, res := analyze(t, src)
	main := prog.FuncByName("M.main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField {
				got := classNames(res.VarPts(main, in.Src[0]))
				if got["Item"] != 1 {
					t.Errorf("array element flow lost: %v", got)
				}
			}
		}
	}
}

func TestStaticFieldFlow(t *testing.T) {
	src := `
class G { static G instance; int v; }
class M {
    static void main() {
        G.instance = new G();
        G g = G.instance;
        g.v = 1;
    }
}`
	prog, res := analyze(t, src)
	main := prog.FuncByName("M.main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField && in.Field.Name == "v" {
				got := classNames(res.VarPts(main, in.Src[0]))
				if got["G"] != 1 {
					t.Errorf("static flow lost: %v", got)
				}
			}
		}
	}
}

func TestSingleInstance(t *testing.T) {
	src := `
class A { int v; }
class M {
    static A once() { return new A(); }
    static A many() { return new A(); }
    static void main() {
        A a = once();            // single-instance site (one call, no loop)
        for (int i = 0; i < 3; i++) {
            A b = many();        // called from a loop: multi-instance
            b.v = i;
        }
        a.v = 9;
    }
}`
	prog, res := analyze(t, src)
	onceFn := prog.FuncByName("M.once")
	manyFn := prog.FuncByName("M.many")
	if !res.SingleInstanceFn(onceFn) {
		t.Error("once() must be single-instance")
	}
	if res.SingleInstanceFn(manyFn) {
		t.Error("many() is called from a loop: not single-instance")
	}
	// MustPts: the receiver of a.v write must be a must pointer.
	main := prog.FuncByName("M.main")
	var aWrite, bWrite *ir.Instr
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField && in.Field.Name == "v" {
				if in.Value == 0 { // disambiguate by checking operand counts later
				}
				// The write of 9 is a.v; the loop write is b.v.
				if len(res.VarPts(main, in.Src[0])) == 1 {
					for o := range res.VarPts(main, in.Src[0]) {
						if o.SingleInstance {
							aWrite = in
						} else {
							bWrite = in
						}
					}
				}
			}
		}
	}
	if aWrite == nil {
		t.Fatal("no single-instance write found")
	}
	if res.MustPts(main, aWrite.Src[0]) == nil {
		t.Error("a's receiver should be a must points-to")
	}
	if bWrite != nil && res.MustPts(main, bWrite.Src[0]) != nil {
		t.Error("loop-allocated object must not be a must points-to")
	}
}

func TestRecursionIsNotSingleInstance(t *testing.T) {
	src := `
class M {
    static int f(int n) {
        if (n <= 0) { return 0; }
        return f(n - 1) + 1;
    }
    static void main() { print(f(3)); }
}`
	prog, res := analyze(t, src)
	f := prog.FuncByName("M.f")
	if res.SingleInstanceFn(f) {
		t.Error("recursive function cannot be single-instance")
	}
}

func TestLoopyBlocks(t *testing.T) {
	src := `
class M {
    static void main() {
        int before = 1;
        for (int i = 0; i < 3; i++) { before = before + i; }
        print(before);
    }
}`
	prog, res := analyze(t, src)
	main := prog.FuncByName("M.main")
	loopy, straight := 0, 0
	for _, b := range main.ReachableBlocks() {
		if res.InLoop(b) {
			loopy++
		} else {
			straight++
		}
	}
	if loopy == 0 || straight == 0 {
		t.Errorf("loopy=%d straight=%d; both kinds expected", loopy, straight)
	}
}

func TestClassObjectsAndMainObj(t *testing.T) {
	src := `class M { static void main() { } }`
	prog, res := analyze(t, src)
	if res.MainObj() == nil || !res.MainObj().SingleInstance {
		t.Error("main thread object must exist and be single-instance")
	}
	mcl := prog.Sem.Classes["M"]
	if res.ClassObj(mcl) == nil || !res.ClassObj(mcl).SingleInstance {
		t.Error("class objects must exist and be single-instance")
	}
}
