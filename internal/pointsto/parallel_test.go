package pointsto_test

import (
	"os"
	"path/filepath"
	"testing"

	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
	"racedet/internal/pointsto"
)

// loadPrograms compiles every corpus and benchmark program to IR.
func loadPrograms(t *testing.T) map[string]*lower.Result {
	t.Helper()
	out := map[string]*lower.Result{}
	for _, dir := range []string{"../corpus/testdata", "../bench/testdata"} {
		paths, err := filepath.Glob(filepath.Join(dir, "*.mj"))
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range paths {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.Parse(filepath.Base(path), string(src))
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			sp, err := sem.Check(prog)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			out[filepath.Base(path)] = lower.Lower(sp)
		}
	}
	if len(out) == 0 {
		t.Fatal("no test programs found")
	}
	return out
}

// TestParallelMatchesSerial checks the acceptance criterion that the
// parallel solver computes the identical fixed point — points-to sets
// and call graph — on every corpus and benchmark program, across
// worker counts including degenerate ones.
func TestParallelMatchesSerial(t *testing.T) {
	progs := loadPrograms(t)
	for name, lr := range progs {
		want := pointsto.Analyze(lr.Prog).Dump()
		if want == "" {
			t.Fatalf("%s: empty serial dump", name)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got := pointsto.AnalyzeParallel(lr.Prog, workers).Dump()
			if got != want {
				t.Errorf("%s: parallel(workers=%d) differs from serial\nserial:\n%s\nparallel:\n%s",
					name, workers, want, got)
			}
		}
	}
}

// TestParallelDeterministic re-runs the parallel solver and requires a
// byte-identical dump: scheduling must not leak into the result.
func TestParallelDeterministic(t *testing.T) {
	progs := loadPrograms(t)
	for name, lr := range progs {
		first := pointsto.AnalyzeParallel(lr.Prog, 4).Dump()
		for i := 0; i < 3; i++ {
			if got := pointsto.AnalyzeParallel(lr.Prog, 4).Dump(); got != first {
				t.Errorf("%s: parallel dump differs between runs", name)
			}
		}
	}
}
