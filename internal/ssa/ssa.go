package ssa

import "racedet/internal/ir"

// DefID identifies one SSA definition: a parameter, an instruction
// definition, or a phi. The overlay never rewrites the IR; it only
// names values so GVN can compare them.
type DefID int

// NoDef marks an operand whose reaching definition is unknown (e.g. a
// use in an unreachable block).
const NoDef DefID = -1

// Overlay is the SSA view of a function: for every instruction operand
// it records which SSA definition reaches that use.
type Overlay struct {
	Fn  *ir.Func
	Dom *DomTree

	// UseDef maps (instruction, operand index) to the reaching DefID.
	UseDef map[*ir.Instr][]DefID

	// DefOf maps an instruction that defines a register to its DefID.
	DefOf map[*ir.Instr]DefID

	// Phis lists the phi nodes per block (by block ID): each phi
	// merges one register.
	Phis map[*ir.Block][]*Phi

	// ParamDef holds the DefIDs of the function parameters.
	ParamDef []DefID

	nextDef DefID
	defKind []defKind // indexed by DefID
	defInst []*ir.Instr
	defPhi  []*Phi
}

// Phi is a virtual phi node merging definitions of Reg at the head of
// Block. Args are per-predecessor reaching definitions.
type Phi struct {
	Block *ir.Block
	Reg   int
	Args  []DefID
	ID    DefID
}

type defKind uint8

const (
	defParam defKind = iota
	defInstr
	defPhiKind
)

// Build computes the SSA overlay using the standard Cytron phi
// placement on dominance frontiers followed by dominator-tree renaming.
func Build(fn *ir.Func, dom *DomTree) *Overlay {
	ov := &Overlay{
		Fn:     fn,
		Dom:    dom,
		UseDef: make(map[*ir.Instr][]DefID),
		DefOf:  make(map[*ir.Instr]DefID),
		Phis:   make(map[*ir.Block][]*Phi),
	}

	// 1. Collect definition sites per register.
	defBlocks := make([][]*ir.Block, fn.NumRegs)
	for _, b := range dom.RPO() {
		for _, in := range b.Instrs {
			if in.HasDst() {
				defBlocks[in.Dst] = append(defBlocks[in.Dst], b)
			}
		}
	}

	// 2. Phi placement at iterated dominance frontiers for registers
	// with more than one definition site (parameters count as a def in
	// the entry block).
	df := dom.Frontiers()
	entry := fn.Entry
	hasPhi := make(map[*ir.Block]map[int]*Phi)
	for reg := 0; reg < fn.NumRegs; reg++ {
		sites := defBlocks[reg]
		if reg < fn.NumParams {
			sites = append(sites, entry)
		}
		if len(sites) < 2 {
			continue
		}
		work := append([]*ir.Block(nil), sites...)
		inWork := make(map[*ir.Block]bool)
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, f := range df[b] {
				if hasPhi[f] == nil {
					hasPhi[f] = make(map[int]*Phi)
				}
				if hasPhi[f][reg] != nil {
					continue
				}
				phi := &Phi{Block: f, Reg: reg, Args: make([]DefID, len(f.Preds))}
				hasPhi[f][reg] = phi
				ov.Phis[f] = append(ov.Phis[f], phi)
				if !inWork[f] {
					inWork[f] = true
					work = append(work, f)
				}
			}
		}
	}

	// Assign DefIDs to phis now that placement is fixed (deterministic
	// order: block RPO, then per-block placement order).
	for _, b := range dom.RPO() {
		for _, phi := range ov.Phis[b] {
			phi.ID = ov.newDef(defPhiKind, nil, phi)
		}
	}

	// Parameters.
	ov.ParamDef = make([]DefID, fn.NumParams)
	for i := range ov.ParamDef {
		ov.ParamDef[i] = ov.newDef(defParam, nil, nil)
	}

	// 3. Renaming walk over the dominator tree.
	stacks := make([][]DefID, fn.NumRegs)
	for i := 0; i < fn.NumParams; i++ {
		stacks[i] = append(stacks[i], ov.ParamDef[i])
	}
	ov.rename(entry, stacks)
	return ov
}

func (ov *Overlay) newDef(k defKind, in *ir.Instr, phi *Phi) DefID {
	id := ov.nextDef
	ov.nextDef++
	ov.defKind = append(ov.defKind, k)
	ov.defInst = append(ov.defInst, in)
	ov.defPhi = append(ov.defPhi, phi)
	return id
}

func top(stack []DefID) DefID {
	if len(stack) == 0 {
		return NoDef
	}
	return stack[len(stack)-1]
}

func (ov *Overlay) rename(b *ir.Block, stacks [][]DefID) {
	type pushed struct{ reg int }
	var pushes []pushed
	push := func(reg int, id DefID) {
		stacks[reg] = append(stacks[reg], id)
		pushes = append(pushes, pushed{reg})
	}

	// Phis at block head define their registers.
	for _, phi := range ov.Phis[b] {
		push(phi.Reg, phi.ID)
	}

	for _, in := range b.Instrs {
		uses := make([]DefID, len(in.Src))
		for i, r := range in.Src {
			uses[i] = top(stacks[r])
		}
		ov.UseDef[in] = uses
		if in.HasDst() {
			id := ov.newDef(defInstr, in, nil)
			ov.DefOf[in] = id
			push(in.Dst, id)
		}
	}

	// Fill phi arguments in successors.
	for _, s := range b.Succs {
		// Which predecessor index is b?
		for pi, p := range s.Preds {
			if p != b {
				continue
			}
			for _, phi := range ov.Phis[s] {
				phi.Args[pi] = top(stacks[phi.Reg])
			}
		}
	}

	for _, c := range ov.Dom.Children(b) {
		ov.rename(c, stacks)
	}

	for i := len(pushes) - 1; i >= 0; i-- {
		reg := pushes[i].reg
		stacks[reg] = stacks[reg][:len(stacks[reg])-1]
	}
}

// Use returns the reaching definition of operand idx of instruction in.
func (ov *Overlay) Use(in *ir.Instr, idx int) DefID {
	uses := ov.UseDef[in]
	if idx >= len(uses) {
		return NoDef
	}
	return uses[idx]
}
