// Package ssa provides the dataflow machinery the compile-time
// optimizations of §6 need: dominator trees, dominance frontiers, an
// SSA overlay (reaching-definition identities without rewriting the
// executable IR), and hash-based global value numbering.
//
// The paper performs its static weaker-than elimination inside
// Jalapeño after conversion to SSA form, "utilizing an existing value
// numbering phase"; this package is the equivalent infrastructure for
// the MJ IR.
package ssa

import "racedet/internal/ir"

// DomTree is the dominator tree of a function's CFG, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over a reverse postorder.
type DomTree struct {
	fn *ir.Func

	// rpo lists reachable blocks in reverse postorder; rpoIndex maps
	// block ID to its position (-1 for unreachable blocks).
	rpo      []*ir.Block
	rpoIndex []int

	// idom maps block ID to the immediate dominator (nil for entry and
	// unreachable blocks).
	idom []*ir.Block

	// children is the dominator tree adjacency (block ID → dominated).
	children [][]*ir.Block
}

// BuildDomTree computes the dominator tree for fn.
func BuildDomTree(fn *ir.Func) *DomTree {
	t := &DomTree{fn: fn}
	t.rpo = fn.ReachableBlocks()
	n := len(fn.Blocks)
	t.rpoIndex = make([]int, n)
	for i := range t.rpoIndex {
		t.rpoIndex[i] = -1
	}
	for i, b := range t.rpo {
		t.rpoIndex[b.ID] = i
	}
	t.idom = make([]*ir.Block, n)

	if len(t.rpo) == 0 {
		t.children = make([][]*ir.Block, n)
		return t
	}
	entry := t.rpo[0]
	t.idom[entry.ID] = entry

	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if t.rpoIndex[p.ID] < 0 || t.idom[p.ID] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	// Entry's idom is conventionally nil for clients.
	t.idom[entry.ID] = nil

	t.children = make([][]*ir.Block, n)
	for _, b := range t.rpo {
		if id := t.idom[b.ID]; id != nil {
			t.children[id.ID] = append(t.children[id.ID], b)
		}
	}
	return t
}

func (t *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for t.rpoIndex[a.ID] > t.rpoIndex[b.ID] {
			a = t.idom[a.ID]
		}
		for t.rpoIndex[b.ID] > t.rpoIndex[a.ID] {
			b = t.idom[b.ID]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (nil for the entry block).
func (t *DomTree) Idom(b *ir.Block) *ir.Block { return t.idom[b.ID] }

// Children returns the blocks immediately dominated by b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b.ID] }

// RPO returns reachable blocks in reverse postorder (entry first).
func (t *DomTree) RPO() []*ir.Block { return t.rpo }

// Reachable reports whether b is reachable from entry.
func (t *DomTree) Reachable(b *ir.Block) bool { return t.rpoIndex[b.ID] >= 0 }

// Dominates reports whether a dominates b (reflexive).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	for x := b; x != nil; x = t.idom[x.ID] {
		if x == a {
			return true
		}
	}
	return false
}

// DominatesInstr reports whether instruction i (in block bi, position
// pi) dominates instruction j (in block bj, position pj): either i
// precedes j in the same block, or i's block strictly dominates j's.
func (t *DomTree) DominatesInstr(bi *ir.Block, pi int, bj *ir.Block, pj int) bool {
	if bi == bj {
		return pi < pj
	}
	return t.Dominates(bi, bj)
}

// Frontiers computes dominance frontiers (Cytron et al.): DF(b) is the
// set of blocks where b's dominance stops, the phi-placement sites.
func (t *DomTree) Frontiers() map[*ir.Block][]*ir.Block {
	df := make(map[*ir.Block][]*ir.Block)
	seen := make(map[*ir.Block]map[*ir.Block]bool)
	add := func(b, f *ir.Block) {
		if seen[b] == nil {
			seen[b] = make(map[*ir.Block]bool)
		}
		if !seen[b][f] {
			seen[b][f] = true
			df[b] = append(df[b], f)
		}
	}
	for _, b := range t.rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !t.Reachable(p) {
				continue
			}
			runner := p
			for runner != nil && runner != t.idom[b.ID] {
				add(runner, b)
				runner = t.idom[runner.ID]
			}
		}
	}
	return df
}
