package ssa

import (
	"math/rand"
	"testing"

	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
)

// buildFn lowers src and returns the named function.
func buildFn(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res := lower.Lower(sp)
	f := res.Prog.FuncByName(name)
	if f == nil {
		t.Fatalf("no function %s", name)
	}
	return f
}

// bruteDominates checks dominance by exhaustive path enumeration: a
// dominates b iff removing a makes b unreachable from entry.
func bruteDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := map[*ir.Block]bool{a: true} // block a is "removed"
	var stack []*ir.Block
	if f.Entry != a {
		stack = append(stack, f.Entry)
		seen[f.Entry] = true
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return false // reached b without passing a
		}
		for _, s := range x.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

const cfgHeavy = `
class A {
    int f;
    int m(int x, boolean c) {
        int r = 0;
        if (c) { r = x; } else { r = -x; }
        while (r > 0) {
            if (r % 2 == 0) { r = r / 2; } else { r = r - 1; }
            for (int i = 0; i < 3; i++) {
                if (i == x) { break; }
                r = r + i;
                if (r > 100) { continue; }
                r = r - 1;
            }
        }
        if (c && x > 0 || !c) { r = r + 1; }
        return r;
    }
}
class M { static void main() { } }`

func TestDominatorsAgainstBruteForce(t *testing.T) {
	f := buildFn(t, cfgHeavy, "A.m")
	dom := BuildDomTree(f)
	blocks := dom.RPO()
	for _, a := range blocks {
		for _, b := range blocks {
			want := bruteDominates(f, a, b)
			got := dom.Dominates(a, b)
			if got != want {
				t.Errorf("Dominates(b%d, b%d) = %v, want %v", a.ID, b.ID, got, want)
			}
		}
	}
}

func TestIdomProperties(t *testing.T) {
	f := buildFn(t, cfgHeavy, "A.m")
	dom := BuildDomTree(f)
	for _, b := range dom.RPO() {
		id := dom.Idom(b)
		if b == f.Entry {
			if id != nil {
				t.Error("entry must have no idom")
			}
			continue
		}
		if id == nil {
			t.Errorf("b%d lacks an idom", b.ID)
			continue
		}
		if !dom.Dominates(id, b) || id == b {
			t.Errorf("idom(b%d)=b%d does not strictly dominate it", b.ID, id.ID)
		}
		// The idom must be dominated by every other dominator of b.
		for _, d := range dom.RPO() {
			if d != b && dom.Dominates(d, b) && !dom.Dominates(d, id) {
				t.Errorf("b%d dominates b%d but not its idom b%d", d.ID, b.ID, id.ID)
			}
		}
	}
}

func TestFrontiersDefinition(t *testing.T) {
	f := buildFn(t, cfgHeavy, "A.m")
	dom := BuildDomTree(f)
	df := dom.Frontiers()
	// DF(b) = {y : b dominates a pred of y, b does not strictly
	// dominate y}. Verify against the definition.
	for _, b := range dom.RPO() {
		want := map[*ir.Block]bool{}
		for _, y := range dom.RPO() {
			for _, p := range y.Preds {
				if !dom.Reachable(p) {
					continue
				}
				if dom.Dominates(b, p) && (y == b || !dom.Dominates(b, y)) {
					want[y] = true
				}
			}
		}
		got := map[*ir.Block]bool{}
		for _, y := range df[b] {
			got[y] = true
		}
		if len(got) != len(want) {
			t.Errorf("DF(b%d): got %d entries, want %d", b.ID, len(got), len(want))
			continue
		}
		for y := range want {
			if !got[y] {
				t.Errorf("DF(b%d) missing b%d", b.ID, y.ID)
			}
		}
	}
}

func TestSSAUseDefDominance(t *testing.T) {
	// Every use's reaching definition must dominate the use (for
	// instruction defs) or be a phi at a dominating block head.
	f := buildFn(t, cfgHeavy, "A.m")
	dom := BuildDomTree(f)
	ov := Build(f, dom)

	instrBlock := map[*ir.Instr]*ir.Block{}
	instrPos := map[*ir.Instr]int{}
	for _, b := range dom.RPO() {
		for i, in := range b.Instrs {
			instrBlock[in] = b
			instrPos[in] = i
		}
	}

	for _, b := range dom.RPO() {
		for i, in := range b.Instrs {
			for idx := range in.Src {
				def := ov.Use(in, idx)
				if def == NoDef {
					t.Errorf("%s b%d[%d] operand %d has no reaching def", f.Name, b.ID, i, idx)
					continue
				}
				switch ov.defKind[def] {
				case defInstr:
					di := ov.defInst[def]
					if !dom.DominatesInstr(instrBlock[di], instrPos[di], b, i) {
						t.Errorf("def %s does not dominate use in b%d[%d]", f.InstrString(di), b.ID, i)
					}
				case defPhiKind:
					phi := ov.defPhi[def]
					if !dom.Dominates(phi.Block, b) {
						t.Errorf("phi at b%d does not dominate use in b%d", phi.Block.ID, b.ID)
					}
				case defParam:
					// Always fine.
				}
			}
		}
	}
}

func TestSSAInterpretationAgreement(t *testing.T) {
	// Randomized: simulate the IR concretely while tracking which
	// DefID produced each register's current value; at every use the
	// overlay's reaching def must match the def that actually produced
	// the value. This validates phi placement and renaming end to end.
	f := buildFn(t, cfgHeavy, "A.m")
	dom := BuildDomTree(f)
	ov := Build(f, dom)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		// Concrete state: per register the concrete value and the
		// SSA def that produced it.
		vals := make([]int64, f.NumRegs)
		defs := make([]DefID, f.NumRegs)
		for i := range defs {
			defs[i] = NoDef
		}
		vals[1] = int64(rng.Intn(20) - 5) // x
		if rng.Intn(2) == 0 {
			vals[2] = 1 // c
		}
		for i := 0; i < f.NumParams; i++ {
			defs[i] = ov.ParamDef[i]
		}

		block := f.Entry
		var prevBlock *ir.Block
		steps := 0
		for steps < 10000 {
			// Apply phis for this block first: their reaching def is
			// the phi itself.
			for _, phi := range ov.Phis[block] {
				// Determine which pred we came from to fetch the
				// matching arg; the arg's def must equal defs[reg].
				if prevBlock != nil {
					for pi, p := range block.Preds {
						if p == prevBlock && phi.Args[pi] != NoDef {
							if phi.Args[pi] != defs[phi.Reg] {
								t.Fatalf("phi arg mismatch at b%d reg r%d: overlay says %d, execution had %d",
									block.ID, phi.Reg, phi.Args[pi], defs[phi.Reg])
							}
						}
					}
				}
				defs[phi.Reg] = phi.ID
			}
			terminated := false
			for i, in := range block.Instrs {
				steps++
				// Check operands.
				for idx, r := range in.Src {
					want := ov.Use(in, idx)
					if want != defs[r] {
						t.Fatalf("use mismatch at %s b%d[%d] operand %d: overlay %d, execution %d",
							f.Name, block.ID, i, idx, want, defs[r])
					}
				}
				// Execute enough semantics to drive control flow.
				switch in.Op {
				case ir.OpConst, ir.OpBoolConst:
					vals[in.Dst] = in.Value
				case ir.OpMove:
					vals[in.Dst] = vals[in.Src[0]]
				case ir.OpNeg:
					vals[in.Dst] = -vals[in.Src[0]]
				case ir.OpNot:
					if vals[in.Src[0]] == 0 {
						vals[in.Dst] = 1
					} else {
						vals[in.Dst] = 0
					}
				case ir.OpBin:
					a, c := vals[in.Src[0]], vals[in.Src[1]]
					var v int64
					switch in.Bin {
					case ir.BinAdd:
						v = a + c
					case ir.BinSub:
						v = a - c
					case ir.BinMul:
						v = a * c
					case ir.BinDiv:
						if c != 0 {
							v = a / c
						}
					case ir.BinMod:
						if c != 0 {
							v = a % c
						}
					case ir.BinEq:
						if a == c {
							v = 1
						}
					case ir.BinNeq:
						if a != c {
							v = 1
						}
					case ir.BinLt:
						if a < c {
							v = 1
						}
					case ir.BinLeq:
						if a <= c {
							v = 1
						}
					case ir.BinGt:
						if a > c {
							v = 1
						}
					case ir.BinGeq:
						if a >= c {
							v = 1
						}
					}
					vals[in.Dst] = v
				case ir.OpGetField:
					vals[in.Dst] = int64(rng.Intn(5))
				case ir.OpPutField:
					// no-op
				case ir.OpJump:
					prevBlock = block
					block = f.Targets(in)[0]
					terminated = true
				case ir.OpBranch:
					prevBlock = block
					if vals[in.Src[0]] != 0 {
						block = f.Targets(in)[0]
					} else {
						block = f.Targets(in)[1]
					}
					terminated = true
				case ir.OpReturn:
					terminated = true
					block = nil
				}
				if in.HasDst() {
					defs[in.Dst] = ov.DefOf[in]
				}
				if terminated {
					break
				}
			}
			if block == nil {
				break
			}
			if !terminated {
				t.Fatalf("block b%d did not terminate", block.ID)
			}
		}
	}
}

func TestGVNBasics(t *testing.T) {
	src := `
class A {
    int f;
    void m(A p) {
        A q = p;        // move: same VN as p
        int a = 1 + 2;
        int b = 1 + 2;  // same expression: same VN
        int c = 2 + 1;  // different operand order: (conservatively) different
        p.f = a;
        q.f = b;
    }
}
class M { static void main() { } }`
	f := buildFn(t, src, "A.m")
	dom := BuildDomTree(f)
	ov := Build(f, dom)
	gvn := BuildGVN(ov)

	// Collect the putfield instructions; their object operands p and q
	// must share a value number.
	var puts []*ir.Instr
	for _, b := range dom.RPO() {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPutField {
				puts = append(puts, in)
			}
		}
	}
	if len(puts) != 2 {
		t.Fatalf("putfields = %d", len(puts))
	}
	v1 := gvn.OperandVN(puts[0], 0)
	v2 := gvn.OperandVN(puts[1], 0)
	if v1 == NoVN || v1 != v2 {
		t.Errorf("p and q must share a VN: %v vs %v", v1, v2)
	}
	// The stored values a and b (1+2 twice) must share a VN as well.
	a := gvn.OperandVN(puts[0], 1)
	b := gvn.OperandVN(puts[1], 1)
	if a == NoVN || a != b {
		t.Errorf("identical expressions must share a VN: %v vs %v", a, b)
	}
}

func TestGVNHeapLoadsAreFresh(t *testing.T) {
	src := `
class A {
    A next;
    void m(A p) {
        A x = p.next;
        A y = p.next;  // a second load: must NOT share x's VN
        x.next = y;
    }
}
class M { static void main() { } }`
	f := buildFn(t, src, "A.m")
	dom := BuildDomTree(f)
	ov := Build(f, dom)
	gvn := BuildGVN(ov)
	var loads []*ir.Instr
	for _, b := range dom.RPO() {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGetField {
				loads = append(loads, in)
			}
		}
	}
	if len(loads) != 2 {
		t.Fatalf("loads = %d", len(loads))
	}
	if gvn.DefVN(loads[0]) == gvn.DefVN(loads[1]) {
		t.Error("two heap loads must have distinct VNs (no unsound CSE)")
	}
}

func TestGVNDistinctConstsDiffer(t *testing.T) {
	src := `
class A {
    void m(int[] a) {
        a[1] = 7;
        a[2] = 8;
    }
}
class M { static void main() { } }`
	f := buildFn(t, src, "A.m")
	dom := BuildDomTree(f)
	ov := Build(f, dom)
	gvn := BuildGVN(ov)
	var consts []*ir.Instr
	for _, b := range dom.RPO() {
		for _, in := range b.Instrs {
			if in.Op == ir.OpConst && (in.Value == 7 || in.Value == 8) {
				consts = append(consts, in)
			}
		}
	}
	if len(consts) != 2 {
		t.Fatalf("consts = %d", len(consts))
	}
	if gvn.DefVN(consts[0]) == gvn.DefVN(consts[1]) {
		t.Error("different constants must differ in VN")
	}
}
