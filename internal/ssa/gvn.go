package ssa

import (
	"fmt"

	"racedet/internal/ir"
	"racedet/internal/lang/sem"
)

// VN is a value number: SSA definitions with the same VN are known to
// hold the same value in every execution.
type VN int

// NoVN marks an operand with no value number (unreachable use).
const NoVN VN = -1

// ValueNumbering assigns value numbers to the SSA definitions of one
// function. It is deliberately conservative about the heap: loads
// (getfield/aload/getstatic) and allocations always receive fresh
// numbers, so two loads of the same field never alias by value number
// — what the §6 weaker-than elimination needs is only that *register
// copies and recomputations* of the same object reference are
// recognized, which Move propagation and hashing of pure expressions
// provide.
type ValueNumbering struct {
	ov     *Overlay
	vn     map[DefID]VN
	nxt    VN
	exp    map[string]VN // hash-cons table for pure expressions
	stable func(*sem.Field) bool
}

// BuildGVN computes value numbers for the overlay.
func BuildGVN(ov *Overlay) *ValueNumbering {
	return BuildGVNStable(ov, nil)
}

// BuildGVNStable is BuildGVN extended with stable-field load merging:
// a getfield of a field for which stable returns true is numbered by
// hashing the field and the receiver's value number, so two loads of
// the same init-only field off the same receiver share a number. The
// caller vouches that every write to a stable field targets `this`
// inside a constructor — under the constructor-publication
// happens-before assumption the §5.4 escape pruning already makes,
// such a field has one value for the object's published lifetime, so
// merging loads is sound. A nil stable is BuildGVN exactly.
func BuildGVNStable(ov *Overlay, stable func(*sem.Field) bool) *ValueNumbering {
	g := &ValueNumbering{
		ov:     ov,
		vn:     make(map[DefID]VN),
		exp:    make(map[string]VN),
		stable: stable,
	}
	// Parameters are definitions too: each gets its own fresh number.
	for _, pd := range ov.ParamDef {
		g.assign(pd, g.fresh())
	}
	// One RPO pass; assignments are write-once. An operand that is not
	// yet numbered (it flows around a loop back-edge) forces a fresh
	// number — conservative, never unsound: a fresh number can only
	// prevent the elimination from seeing an equality, not invent one.
	for _, b := range ov.Dom.RPO() {
		for _, phi := range ov.Phis[b] {
			g.numberPhi(phi)
		}
		for _, in := range b.Instrs {
			if id, ok := ov.DefOf[in]; ok {
				g.numberInstr(id, in)
			}
		}
	}
	return g
}

func (g *ValueNumbering) fresh() VN {
	v := g.nxt
	g.nxt++
	return v
}

// assign sets the value number of a definition; write-once.
func (g *ValueNumbering) assign(id DefID, v VN) {
	if _, done := g.vn[id]; done {
		return
	}
	g.vn[id] = v
}

func (g *ValueNumbering) numberPhi(phi *Phi) {
	// A phi whose arguments all carry the same (already final) VN,
	// ignoring self references, is a copy of that value. Arguments not
	// yet numbered flow around back-edges; collapsing on them would
	// risk using a number that is not final, so they block collapsing.
	var common VN = NoVN
	collapsed := true
	for _, a := range phi.Args {
		if a == phi.ID || a == NoDef {
			continue
		}
		av, ok := g.vn[a]
		if !ok {
			collapsed = false
			break
		}
		if common == NoVN {
			common = av
		} else if common != av {
			collapsed = false
			break
		}
	}
	if collapsed && common != NoVN {
		g.assign(phi.ID, common)
		return
	}
	g.assign(phi.ID, g.fresh())
}

func (g *ValueNumbering) numberInstr(id DefID, in *ir.Instr) {
	if _, done := g.vn[id]; done {
		return
	}
	switch in.Op {
	case ir.OpConst:
		g.assign(id, g.hash(fmt.Sprintf("ic:%d", in.Value)))
	case ir.OpBoolConst:
		g.assign(id, g.hash(fmt.Sprintf("bc:%d", in.Value)))
	case ir.OpNull:
		g.assign(id, g.hash("null"))
	case ir.OpStrConst:
		g.assign(id, g.hash("str:"+in.Str))
	case ir.OpClassRef:
		g.assign(id, g.hash("class:"+in.Class.Name))
	case ir.OpMove:
		src := g.useVN(in, 0)
		if src != NoVN {
			g.assign(id, src)
		} else if _, ok := g.vn[id]; !ok {
			g.assign(id, g.fresh())
		}
	case ir.OpBin:
		a, b := g.useVN(in, 0), g.useVN(in, 1)
		if a != NoVN && b != NoVN {
			g.assign(id, g.hash(fmt.Sprintf("bin:%d:%d:%d", in.Bin, a, b)))
		} else if _, ok := g.vn[id]; !ok {
			g.assign(id, g.fresh())
		}
	case ir.OpNeg, ir.OpNot:
		a := g.useVN(in, 0)
		if a != NoVN {
			g.assign(id, g.hash(fmt.Sprintf("un:%d:%d", in.Op, a)))
		} else if _, ok := g.vn[id]; !ok {
			g.assign(id, g.fresh())
		}
	case ir.OpGetField:
		if g.stable != nil && g.stable(in.Field) {
			if recv := g.useVN(in, 0); recv != NoVN {
				g.assign(id, g.hash(fmt.Sprintf("gf:%s:%d", in.Field.QualifiedName(), recv)))
				return
			}
		}
		if _, ok := g.vn[id]; !ok {
			g.assign(id, g.fresh())
		}
	case ir.OpArrayLen:
		a := g.useVN(in, 0)
		if a != NoVN {
			// Array length is immutable: len of the same array is the
			// same value.
			g.assign(id, g.hash(fmt.Sprintf("len:%d", a)))
		} else if _, ok := g.vn[id]; !ok {
			g.assign(id, g.fresh())
		}
	default:
		// Heap loads, allocations, calls: a fresh, final number.
		if _, ok := g.vn[id]; !ok {
			g.assign(id, g.fresh())
		}
	}
}

func (g *ValueNumbering) hash(key string) VN {
	if v, ok := g.exp[key]; ok {
		return v
	}
	v := g.fresh()
	g.exp[key] = v
	return v
}

func (g *ValueNumbering) useVN(in *ir.Instr, idx int) VN {
	d := g.ov.Use(in, idx)
	if d == NoDef {
		return NoVN
	}
	v, ok := g.vn[d]
	if !ok {
		return NoVN
	}
	return v
}

// OperandVN returns the value number of operand idx of instruction in,
// or NoVN if unknown. This is what the weaker-than elimination calls
// to compare valnum(o_i) with valnum(o_j).
func (g *ValueNumbering) OperandVN(in *ir.Instr, idx int) VN { return g.useVN(in, idx) }

// ParamVN returns the value number of parameter i's entry definition
// (register i at function entry), or NoVN if out of range.
func (g *ValueNumbering) ParamVN(i int) VN {
	if i < 0 || i >= len(g.ov.ParamDef) {
		return NoVN
	}
	v, ok := g.vn[g.ov.ParamDef[i]]
	if !ok {
		return NoVN
	}
	return v
}

// DefVN returns the value number of the definition made by in.
func (g *ValueNumbering) DefVN(in *ir.Instr) VN {
	id, ok := g.ov.DefOf[in]
	if !ok {
		return NoVN
	}
	v, ok := g.vn[id]
	if !ok {
		return NoVN
	}
	return v
}
