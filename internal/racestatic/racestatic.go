// Package racestatic implements the static datarace analysis of §5:
// the conservative formulation
//
//	IsMayRace(x, y) ⟺ AccMayConflict(x, y)
//	                  ∧ ¬MustSameThread(x, y)
//	                  ∧ ¬MustCommonSync(x, y)
//
// over all pairs of heap-access instructions, refined by the escape
// analysis of §5.4 (thread-local and thread-specific accesses are
// discarded up front). Its product, the static datarace set, drives
// the instrumentation phase: accesses outside the set are provably
// race-free and are never traced.
package racestatic

import (
	"fmt"
	"sort"

	"racedet/internal/escape"
	"racedet/internal/icfg"
	"racedet/internal/ir"
	"racedet/internal/pointsto"
)

// AccessSite is one heap-access instruction with its context.
type AccessSite struct {
	Fn    *ir.Func
	Block *ir.Block
	Instr *ir.Instr
}

func (a AccessSite) String() string {
	return fmt.Sprintf("%s@%s", a.Fn.InstrString(a.Instr), a.Instr.Pos)
}

// Result is the static datarace set plus the per-site classification.
type Result struct {
	// InRaceSet maps access instructions that may participate in a
	// datarace; everything else needs no instrumentation.
	InRaceSet map[*ir.Instr]bool

	// Pairs lists the may-race statement pairs (for reporting and
	// debugging; Definition 1's guarantee only needs the set).
	Pairs [][2]AccessSite

	// Sites lists every heap access site seen.
	Sites []AccessSite

	// Verdicts explains, per access site, which §5 condition kept or
	// killed its instrumentation (the -explain-static report).
	Verdicts map[*ir.Instr]*SiteVerdict

	// PrunedThreadLocal counts accesses discarded by escape analysis;
	// PrunedSameThread and PrunedCommonSync count pair-level proofs.
	// PrunedCommonSyncFlow is the subset of the CommonSync proofs that
	// needed the flow-sensitive must-lock dataflow (zero without it).
	PrunedThreadLocal    int
	PrunedSameThread     int
	PrunedCommonSync     int
	PrunedCommonSyncFlow int
}

// SiteVerdict counts, for one access site, how its candidate pairs
// were resolved. A site stays instrumented iff Racy > 0.
type SiteVerdict struct {
	ThreadLocal bool // discarded up front by escape analysis (§5.4)
	Pairs       int  // conflict-group pairs examined (excluding read/read)
	NoConflict  int  // pairs dismissed by AccMayConflict
	SameThread  int  // pairs proven MustSameThread
	CommonSync  int  // pairs proven MustCommonSync (either form)
	FlowSync    int  // CommonSync proofs that needed the must-lock dataflow
	Racy        int  // surviving may-race pairs
}

// Options selects the optional strengthenings of the §5 conditions.
type Options struct {
	// MustLock, when non-nil, strengthens MustCommonSync with the
	// flow-sensitive must-held-lockset dataflow of icfg.BuildMustLock
	// (locks held across call boundaries); nil reproduces the
	// region-based check alone.
	MustLock *icfg.MustLock
}

// Filter adapts the race set to the instrumentation phase.
func (r *Result) Filter() func(*ir.Instr) bool {
	return func(in *ir.Instr) bool { return r.InRaceSet[in] }
}

// Analyze computes the static datarace set with the baseline §5
// conditions (no interprocedural strengthening).
func Analyze(prog *ir.Program, pts *pointsto.Result, g *icfg.Graph, esc *escape.Result) *Result {
	return AnalyzeOpts(prog, pts, g, esc, Options{})
}

// AnalyzeOpts computes the static datarace set.
func AnalyzeOpts(prog *ir.Program, pts *pointsto.Result, g *icfg.Graph, esc *escape.Result, opt Options) *Result {
	r := &Result{
		InRaceSet: make(map[*ir.Instr]bool),
		Verdicts:  make(map[*ir.Instr]*SiteVerdict),
	}

	// Collect candidate sites, pruning thread-local/thread-specific
	// accesses immediately (§5.4).
	var sites []AccessSite
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if !in.IsAccess() {
					continue
				}
				site := AccessSite{Fn: fn, Block: b, Instr: in}
				r.Sites = append(r.Sites, site)
				r.Verdicts[in] = &SiteVerdict{}
				if esc.ThreadLocalAccess(fn, in) {
					r.PrunedThreadLocal++
					r.Verdicts[in].ThreadLocal = true
					continue
				}
				sites = append(sites, site)
			}
		}
	}

	// Group sites by conflict key to avoid the full quadratic sweep:
	// field accesses can only conflict on the same field; array
	// accesses only with array accesses.
	groups := make(map[string][]AccessSite)
	for _, s := range sites {
		groups[conflictKey(s.Instr)] = append(groups[conflictKey(s.Instr)], s)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	inPairs := make(map[*ir.Instr]bool)
	for _, k := range keys {
		group := groups[k]
		for i := 0; i < len(group); i++ {
			for j := i; j < len(group); j++ {
				x, y := group[i], group[j]
				xKind, _, _, _ := x.Instr.AccessInfo()
				yKind, _, _, _ := y.Instr.AccessInfo()
				if xKind != ir.Write && yKind != ir.Write {
					continue // two reads never race
				}
				tally := func(f func(*SiteVerdict)) {
					f(r.Verdicts[x.Instr])
					if y.Instr != x.Instr {
						f(r.Verdicts[y.Instr])
					}
				}
				tally(func(v *SiteVerdict) { v.Pairs++ })
				if !accMayConflict(pts, x, y) {
					tally(func(v *SiteVerdict) { v.NoConflict++ })
					continue
				}
				if mustSameThread(g, x, y) {
					r.PrunedSameThread++
					tally(func(v *SiteVerdict) { v.SameThread++ })
					continue
				}
				if mustCommonSync(g, x, y) {
					r.PrunedCommonSync++
					tally(func(v *SiteVerdict) { v.CommonSync++ })
					continue
				}
				if opt.MustLock != nil && mustCommonSyncFlow(opt.MustLock, g, x, y) {
					r.PrunedCommonSync++
					r.PrunedCommonSyncFlow++
					tally(func(v *SiteVerdict) { v.CommonSync++; v.FlowSync++ })
					continue
				}
				r.Pairs = append(r.Pairs, [2]AccessSite{x, y})
				tally(func(v *SiteVerdict) { v.Racy++ })
				inPairs[x.Instr] = true
				inPairs[y.Instr] = true
			}
		}
	}
	r.InRaceSet = inPairs
	r.normalize()
	return r
}

// normalize puts Sites and Pairs into a canonical (file, line, col,
// kind) order once at build time, so every downstream report —
// -explain-static, the hint index, the lock-discipline tiers — is
// byte-stable without per-caller sorting. Each pair is reordered so
// its lesser site comes first.
func (r *Result) normalize() {
	sort.SliceStable(r.Sites, func(i, j int) bool {
		return siteLess(r.Sites[i], r.Sites[j])
	})
	for i, p := range r.Pairs {
		if siteLess(p[1], p[0]) {
			r.Pairs[i] = [2]AccessSite{p[1], p[0]}
		}
	}
	sort.SliceStable(r.Pairs, func(i, j int) bool {
		if siteLess(r.Pairs[i][0], r.Pairs[j][0]) {
			return true
		}
		if siteLess(r.Pairs[j][0], r.Pairs[i][0]) {
			return false
		}
		return siteLess(r.Pairs[i][1], r.Pairs[j][1])
	})
}

// siteLess orders access sites by (file, line, col, kind): reads
// before writes at the same position, function name as a last resort
// for cloned positions (loop peeling duplicates source locations).
func siteLess(a, b AccessSite) bool {
	ap, bp := a.Instr.Pos, b.Instr.Pos
	if ap.File != bp.File {
		return ap.File < bp.File
	}
	if ap.Line != bp.Line {
		return ap.Line < bp.Line
	}
	if ap.Col != bp.Col {
		return ap.Col < bp.Col
	}
	aKind, _, _, _ := a.Instr.AccessInfo()
	bKind, _, _, _ := b.Instr.AccessInfo()
	if aKind != bKind {
		return aKind < bKind
	}
	return a.Fn.Name < b.Fn.Name
}

// conflictKey buckets sites that could possibly access the same
// location: per-field for field accesses, one bucket for all arrays.
func conflictKey(in *ir.Instr) string {
	_, isArray, _, field := in.AccessInfo()
	if isArray {
		return "[]"
	}
	return field.QualifiedName()
}

// accMayConflict implements Equation 2: the may points-to sets of the
// accessed objects overlap and the fields match (the grouping already
// guaranteed field equality; statics of the same field always
// conflict).
func accMayConflict(pts *pointsto.Result, x, y AccessSite) bool {
	_, xArr, xReg, xField := x.Instr.AccessInfo()
	_, _, yReg, yField := y.Instr.AccessInfo()
	if xField != nil && xField.Static {
		return true // same static field = same location
	}
	_ = xArr
	xSet := pts.VarPts(x.Fn, xReg)
	ySet := pts.VarPts(y.Fn, yReg)
	_ = yField
	return xSet.Intersects(ySet)
}

// mustSameThread implements Equation 3.
func mustSameThread(g *icfg.Graph, x, y AccessSite) bool {
	return g.MustThreadOf(x.Fn).Intersects(g.MustThreadOf(y.Fn))
}

// mustCommonSync implements Equation 4 with the region-based SO sets.
func mustCommonSync(g *icfg.Graph, x, y AccessSite) bool {
	return g.MustSyncOf(x.Fn, x.Instr).Intersects(g.MustSyncOf(y.Fn, y.Instr))
}

// mustCommonSyncFlow is Equation 4 over the union of the region-based
// SO sets and the flow-sensitive must-held locksets, which can prove a
// common lock across call boundaries (a callee access covered by a
// caller's monitor).
func mustCommonSyncFlow(ml *icfg.MustLock, g *icfg.Graph, x, y AccessSite) bool {
	held := func(s AccessSite) pointsto.ObjSet {
		out := pointsto.ObjSet{}
		for o := range g.MustSyncOf(s.Fn, s.Instr) {
			out[o] = struct{}{}
		}
		for o := range ml.At(s.Instr) {
			out[o] = struct{}{}
		}
		return out
	}
	return held(x).Intersects(held(y))
}
