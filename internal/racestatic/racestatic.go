// Package racestatic implements the static datarace analysis of §5:
// the conservative formulation
//
//	IsMayRace(x, y) ⟺ AccMayConflict(x, y)
//	                  ∧ ¬MustSameThread(x, y)
//	                  ∧ ¬MustCommonSync(x, y)
//
// over all pairs of heap-access instructions, refined by the escape
// analysis of §5.4 (thread-local and thread-specific accesses are
// discarded up front). Its product, the static datarace set, drives
// the instrumentation phase: accesses outside the set are provably
// race-free and are never traced.
package racestatic

import (
	"fmt"
	"sort"

	"racedet/internal/escape"
	"racedet/internal/icfg"
	"racedet/internal/ir"
	"racedet/internal/pointsto"
)

// AccessSite is one heap-access instruction with its context.
type AccessSite struct {
	Fn    *ir.Func
	Block *ir.Block
	Instr *ir.Instr
}

func (a AccessSite) String() string {
	return fmt.Sprintf("%s@%s", a.Fn.InstrString(a.Instr), a.Instr.Pos)
}

// Result is the static datarace set plus the per-site classification.
type Result struct {
	// InRaceSet maps access instructions that may participate in a
	// datarace; everything else needs no instrumentation.
	InRaceSet map[*ir.Instr]bool

	// Pairs lists the may-race statement pairs (for reporting and
	// debugging; Definition 1's guarantee only needs the set).
	Pairs [][2]AccessSite

	// Sites lists every heap access site seen.
	Sites []AccessSite

	// PrunedThreadLocal counts accesses discarded by escape analysis;
	// PrunedSameThread and PrunedCommonSync count pair-level proofs.
	PrunedThreadLocal int
	PrunedSameThread  int
	PrunedCommonSync  int
}

// Filter adapts the race set to the instrumentation phase.
func (r *Result) Filter() func(*ir.Instr) bool {
	return func(in *ir.Instr) bool { return r.InRaceSet[in] }
}

// Analyze computes the static datarace set.
func Analyze(prog *ir.Program, pts *pointsto.Result, g *icfg.Graph, esc *escape.Result) *Result {
	r := &Result{InRaceSet: make(map[*ir.Instr]bool)}

	// Collect candidate sites, pruning thread-local/thread-specific
	// accesses immediately (§5.4).
	var sites []AccessSite
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if !in.IsAccess() {
					continue
				}
				site := AccessSite{Fn: fn, Block: b, Instr: in}
				r.Sites = append(r.Sites, site)
				if esc.ThreadLocalAccess(fn, in) {
					r.PrunedThreadLocal++
					continue
				}
				sites = append(sites, site)
			}
		}
	}

	// Group sites by conflict key to avoid the full quadratic sweep:
	// field accesses can only conflict on the same field; array
	// accesses only with array accesses.
	groups := make(map[string][]AccessSite)
	for _, s := range sites {
		groups[conflictKey(s.Instr)] = append(groups[conflictKey(s.Instr)], s)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	inPairs := make(map[*ir.Instr]bool)
	for _, k := range keys {
		group := groups[k]
		for i := 0; i < len(group); i++ {
			for j := i; j < len(group); j++ {
				x, y := group[i], group[j]
				xKind, _, _, _ := x.Instr.AccessInfo()
				yKind, _, _, _ := y.Instr.AccessInfo()
				if xKind != ir.Write && yKind != ir.Write {
					continue // two reads never race
				}
				if !accMayConflict(pts, x, y) {
					continue
				}
				if mustSameThread(g, x, y) {
					r.PrunedSameThread++
					continue
				}
				if mustCommonSync(g, x, y) {
					r.PrunedCommonSync++
					continue
				}
				r.Pairs = append(r.Pairs, [2]AccessSite{x, y})
				inPairs[x.Instr] = true
				inPairs[y.Instr] = true
			}
		}
	}
	r.InRaceSet = inPairs
	return r
}

// conflictKey buckets sites that could possibly access the same
// location: per-field for field accesses, one bucket for all arrays.
func conflictKey(in *ir.Instr) string {
	_, isArray, _, field := in.AccessInfo()
	if isArray {
		return "[]"
	}
	return field.QualifiedName()
}

// accMayConflict implements Equation 2: the may points-to sets of the
// accessed objects overlap and the fields match (the grouping already
// guaranteed field equality; statics of the same field always
// conflict).
func accMayConflict(pts *pointsto.Result, x, y AccessSite) bool {
	_, xArr, xReg, xField := x.Instr.AccessInfo()
	_, _, yReg, yField := y.Instr.AccessInfo()
	if xField != nil && xField.Static {
		return true // same static field = same location
	}
	_ = xArr
	xSet := pts.VarPts(x.Fn, xReg)
	ySet := pts.VarPts(y.Fn, yReg)
	_ = yField
	return xSet.Intersects(ySet)
}

// mustSameThread implements Equation 3.
func mustSameThread(g *icfg.Graph, x, y AccessSite) bool {
	return g.MustThreadOf(x.Fn).Intersects(g.MustThreadOf(y.Fn))
}

// mustCommonSync implements Equation 4.
func mustCommonSync(g *icfg.Graph, x, y AccessSite) bool {
	return g.MustSyncOf(x.Fn, x.Instr).Intersects(g.MustSyncOf(y.Fn, y.Instr))
}
