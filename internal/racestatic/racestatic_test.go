package racestatic

import (
	"testing"

	"racedet/internal/escape"
	"racedet/internal/icfg"
	"racedet/internal/ir"
	"racedet/internal/lang/parser"
	"racedet/internal/lang/sem"
	"racedet/internal/lower"
	"racedet/internal/pointsto"
)

func analyze(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog, err := parser.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	low := lower.Lower(sp)
	pts := pointsto.Analyze(low.Prog)
	g := icfg.Build(low.Prog, low, pts)
	esc := escape.Analyze(low.Prog, pts)
	return low.Prog, Analyze(low.Prog, pts, g, esc)
}

// raceSetFields lists the field names of accesses in the race set.
func raceSetFields(res *Result) map[string]bool {
	out := map[string]bool{}
	for in := range res.InRaceSet {
		_, isArray, _, field := in.AccessInfo()
		if isArray {
			out["[]"] = true
		} else {
			out[field.QualifiedName()] = true
		}
	}
	return out
}

func TestUnprotectedSharedWriteIsInRaceSet(t *testing.T) {
	_, res := analyze(t, `
class Data { int f; }
class W extends Thread {
    Data d;
    W(Data d0) { d = d0; }
    void run() { d.f = d.f + 1; }
}
class M {
    static void main() {
        Data x = new Data();
        W w1 = new W(x);
        W w2 = new W(x);
        w1.start(); w2.start(); w1.join(); w2.join();
        print(x.f);
    }
}`)
	fields := raceSetFields(res)
	if !fields["Data.f"] {
		t.Errorf("Data.f must be in the static race set; got %v", fields)
	}
}

func TestCommonLockPrunes(t *testing.T) {
	_, res := analyze(t, `
class Data { int f; }
class W extends Thread {
    Data d;
    W(Data d0) { d = d0; }
    void run() {
        synchronized (d) { d.f = d.f + 1; }
    }
}
class M {
    static void main() {
        Data x = new Data();
        W w1 = new W(x);
        W w2 = new W(x);
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`)
	fields := raceSetFields(res)
	// The single-instance Data object is a must-lock for both writes;
	// MustCommonSync prunes the pair. Main's print is gone too.
	if fields["Data.f"] {
		t.Errorf("lock-protected accesses must be pruned: %v, pruned common-sync = %d",
			fields, res.PrunedCommonSync)
	}
	if res.PrunedCommonSync == 0 {
		t.Error("expected common-sync pruning to fire")
	}
}

func TestSingleThreadProgramHasEmptyRaceSet(t *testing.T) {
	_, res := analyze(t, `
class A { int f; }
class M {
    static void main() {
        A a = new A();
        for (int i = 0; i < 10; i++) { a.f = a.f + i; }
        print(a.f);
    }
}`)
	if len(res.InRaceSet) != 0 {
		t.Errorf("no second thread: race set must be empty, got %d", len(res.InRaceSet))
	}
}

func TestThreadLocalScratchPruned(t *testing.T) {
	_, res := analyze(t, `
class Vec { int x; int y; }
class W extends Thread {
    int out;
    void run() {
        for (int i = 0; i < 10; i++) {
            Vec v = new Vec();
            v.x = i;
            v.y = i * 2;
            out = out + v.x + v.y;
        }
    }
}
class M {
    static void main() {
        W w1 = new W();
        W w2 = new W();
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`)
	fields := raceSetFields(res)
	if fields["Vec.x"] || fields["Vec.y"] {
		t.Errorf("per-iteration scratch must be pruned as thread-local: %v", fields)
	}
	if res.PrunedThreadLocal == 0 {
		t.Error("thread-local pruning should have fired")
	}
}

func TestMainOnlyAccessesPrunedBySameThread(t *testing.T) {
	_, res := analyze(t, `
class A { int f; }
class G { static A shared; }
class W extends Thread {
    void run() { }
}
class M {
    static void main() {
        G.shared = new A();
        G.shared.f = 1;       // escapes (static), but only main touches it
        W w = new W();
        w.start();
        w.join();
        print(G.shared.f);
    }
}`)
	fields := raceSetFields(res)
	if fields["A.f"] {
		t.Errorf("accesses only ever executed by main must be pruned (MustSameThread): %v", fields)
	}
	if res.PrunedSameThread == 0 {
		t.Error("same-thread pruning should have fired")
	}
}

func TestReadsOnlyNeverRace(t *testing.T) {
	_, res := analyze(t, `
class Config { int limit; }
class W extends Thread {
    Config c;
    int acc;
    W(Config c0) { c = c0; }
    void run() { acc = c.limit; }
}
class M {
    static void main() {
        Config c = new Config();
        c.limit = 10;
        W w1 = new W(c);
        W w2 = new W(c);
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`)
	// c.limit: main writes it before start; both threads only read.
	// The pair (main write, child read) conflicts and is not same-
	// thread, not common-sync — so it IS in the static race set (the
	// static phase has no happens-before model; the runtime ownership
	// filter is what keeps it quiet). Read-read pairs alone must not
	// put the reads in the set, so remove main's write and re-check.
	_, res2 := analyze(t, `
class Config { int limit; }
class W extends Thread {
    Config c;
    int acc;
    W(Config c0) { c = c0; }
    void run() { acc = c.limit; }
}
class M {
    static void main() {
        Config c = new Config();
        W w1 = new W(c);
        W w2 = new W(c);
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`)
	fields2 := raceSetFields(res2)
	if fields2["Config.limit"] {
		t.Errorf("read-only sharing must not enter the race set: %v", fields2)
	}
	_ = res
}

func TestStaticFieldConflict(t *testing.T) {
	_, res := analyze(t, `
class G { static int counter; }
class W extends Thread {
    void run() { G.counter = G.counter + 1; }
}
class M {
    static void main() {
        W w1 = new W();
        W w2 = new W();
        w1.start(); w2.start(); w1.join(); w2.join();
        print(G.counter);
    }
}`)
	fields := raceSetFields(res)
	if !fields["G.counter"] {
		t.Errorf("racing static accesses must be in the set: %v", fields)
	}
}

func TestFilterMatchesSet(t *testing.T) {
	_, res := analyze(t, `
class G { static int counter; }
class W extends Thread {
    void run() { G.counter = G.counter + 1; }
}
class M {
    static void main() {
        W w1 = new W();
        W w2 = new W();
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`)
	f := res.Filter()
	for in := range res.InRaceSet {
		if !f(in) {
			t.Fatal("Filter disagrees with InRaceSet")
		}
	}
}

func TestDistinctFieldsNeverConflict(t *testing.T) {
	_, res := analyze(t, `
class Data { int a; int b; }
class W1 extends Thread {
    Data d;
    W1(Data d0) { d = d0; }
    void run() { d.a = 1; }
}
class W2 extends Thread {
    Data d;
    W2(Data d0) { d = d0; }
    void run() { d.b = 2; }
}
class M {
    static void main() {
        Data x = new Data();
        W1 w1 = new W1(x);
        W2 w2 = new W2(x);
        w1.start(); w2.start(); w1.join(); w2.join();
    }
}`)
	for _, pair := range res.Pairs {
		k0 := conflictKey(pair[0].Instr)
		k1 := conflictKey(pair[1].Instr)
		if k0 != k1 {
			t.Fatalf("pair across distinct fields: %v vs %v", pair[0], pair[1])
		}
	}
}
