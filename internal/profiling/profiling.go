// Package profiling is the tiny pprof plumbing shared by the CLI
// tools: start a CPU profile and/or schedule a heap profile, and get
// back one stop function to call before exiting.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges
// for an allocation profile to be written to memPath (if non-empty)
// when the returned stop function runs. The stop function is safe to
// call exactly once; with both paths empty it is a no-op.
//
// The heap profile is written with the default sample rate; inspect
// allocation counts with
//
//	go tool pprof -sample_index=alloc_objects <binary> <memPath>
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so live-heap numbers are accurate
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
